#!/usr/bin/env python3
"""det_lint — structural determinism lint for the dex reproduction.

Every result this repo reports rides on byte-identical traces across
--jobs/--trial-jobs/--shards and on the three static_assert-pinned RNG
stream salts. Those contracts are enforced dynamically by the byte-compare
CI jobs and the scenario fuzzer; this tool enforces them *statically*, so a
careless `unordered_map` range-for or a wall-clock read in a hot path fails
the lint gate instead of waiting for a fuzzer seed to hit it.

Rules (docs/ARCHITECTURE.md "Determinism discipline" is the prose spec):

  DET001 unordered-iteration   range-for / begin() iteration over a
                               std::unordered_map / std::unordered_set.
                               Iteration order is unspecified and differs
                               across libstdc++ versions; sort into a vector
                               first, or allowlist the audited site.
  DET002 banned-nondet-source  rand()/srand(), std::random_device,
                               time()/clock(), std::chrono::*::now(),
                               getenv: wall-clock and environment inputs
                               outside audited instrumentation sites.
  DET003 pointer-keyed         map/set keyed by a pointer type: ASLR makes
                               the ordering (and hashing) run-dependent.
  DET004 rng-discipline        std:: random engines / distributions are
                               banned everywhere (their streams are
                               implementation-defined); support::Rng must be
                               constructed from a seed/salt/split/mix64
                               expression, i.e. derive from the TrialSpec
                               seed path.
  DET005 salt-registry         every `k*SeedSalt` constant must be constexpr
                               and every *pair* of salts must be pinned
                               distinct by a static_assert (a != b).
  DET006 parallel-float-accum  `double/float x += ...` inside a parallel_for
                               callback: cross-thread accumulation order is
                               nondeterministic.
  DET900 stale-allowlist       allowlist entry matches no site (burn it).
  DET901 missing-justification allowlisted site lacks a `// det:` comment.

Allowlist format (tools/det_lint_allow.txt): `RULE PATH TOKEN` per line,
`#` comments. An allowlisted site must still carry a `// det: <why>` comment
on the flagged line or within the three lines above it — the allowlist says
*who* audited, the comment says *why* the site is order-independent.

Usage: det_lint.py [--root DIR] [--scan DIR ...] [--allowlist FILE]
Exit status: 0 clean, 1 findings, 2 usage/config error.
"""

import argparse
import bisect
import os
import re
import sys

SCAN_DIRS_DEFAULT = ["src", "tools", "examples"]
EXTENSIONS = (".h", ".cpp")

# DET002: banned nondeterminism sources. token -> (regex, message)
BANNED_SOURCES = [
    ("random_device", re.compile(r"\brandom_device\b"),
     "std::random_device is a nondeterministic seed source"),
    ("rand", re.compile(r"\b(?:s?rand)\s*\("),
     "rand()/srand() draw from hidden global state"),
    ("time", re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time() reads the wall clock"),
    ("clock", re.compile(r"\bclock\s*\(\s*\)"),
     "clock() reads the process clock"),
    ("now", re.compile(r"::\s*now\s*\(\s*\)"),
     "std::chrono::*::now() reads a clock"),
    ("getenv", re.compile(r"\bgetenv\s*\("),
     "getenv() makes behavior depend on the environment"),
]

# DET004: implementation-defined std <random> machinery (engines AND
# distributions: libstdc++ and libc++ produce different streams).
STD_RANDOM = re.compile(
    r"\bstd::(mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux\w*|knuth_b|subtract_with_carry_engine"
    r"|\w+_distribution)\b")

RNG_CTOR = re.compile(r"\bRng\s+([A-Za-z_]\w*)\s*\(")
SEEDISH = re.compile(r"seed|salt|split|mix64", re.IGNORECASE)

SALT_DECL = re.compile(r"\b(k\w*SeedSalt)\b")
IDENT = re.compile(r"[A-Za-z_]\w*")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literal *contents*, preserving
    offsets and newlines so line numbers survive."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j = j + 2 if text[j] == "\\" else j + 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = min(j, n) + 1
        else:
            i += 1
    return "".join(out)


def balance(text, start, open_ch, close_ch):
    """Index one past the matching close for the open bracket at `start`."""
    depth = 0
    i = start
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        elif open_ch == "<" and c in ";{":
            return -1  # not a template argument list after all
        i += 1
    return -1


class SourceFile:
    def __init__(self, root, rel):
        self.rel = rel
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            self.raw = f.read()
        self.text = strip_comments_and_strings(self.raw)
        self.raw_lines = self.raw.split("\n")
        self.newlines = [m.start() for m in re.finditer("\n", self.text)]

    def line_of(self, offset):
        return bisect.bisect_right(self.newlines, offset - 1) + 1

    def has_justification(self, line):
        lo = max(0, line - 4)
        return any("det:" in self.raw_lines[k] for k in range(lo, line))


def unordered_vars(sf):
    """Names declared (anywhere in the file) with an unordered_map/set type."""
    names = set()
    for m in re.finditer(r"\bunordered_(?:map|set)\s*<", sf.text):
        close = balance(sf.text, m.end() - 1, "<", ">")
        if close == -1:
            continue
        tail = sf.text[close:close + 160]
        dm = re.match(r"\s*[&*]*\s*(?:const\s+)?([A-Za-z_]\w*)\s*[;={(,)\[]",
                      tail)
        if dm and dm.group(1) not in ("const", "final", "override"):
            names.add(dm.group(1))
    return names


def range_for_headers(sf):
    """Yield (line, container_expr) for every range-based for in the file."""
    for m in re.finditer(r"\bfor\s*\(", sf.text):
        close = balance(sf.text, m.end() - 1, "(", ")")
        if close == -1:
            continue
        header = sf.text[m.end():close - 1]
        if ";" in header:
            continue
        depth = 0
        split = -1
        for i, c in enumerate(header):
            if c in "(<[{":
                depth += 1
            elif c in ")>]}":
                depth -= 1
            elif c == ":" and depth == 0:
                if i > 0 and header[i - 1] == ":":
                    continue
                if i + 1 < len(header) and header[i + 1] == ":":
                    continue
                split = i
                break
        if split == -1:
            continue
        yield sf.line_of(m.start()), header[split + 1:]


class Linter:
    def __init__(self, allowlist):
        self.allowlist = allowlist  # set of (rule, path, token)
        self.used_allow = set()
        self.findings = []

    def report(self, sf, line, rule, token, message, hint):
        key = (rule, sf.rel, token)
        if key in self.allowlist:
            self.used_allow.add(key)
            if not sf.has_justification(line):
                self.findings.append(
                    (sf.rel, line, "DET901",
                     "allowlisted site '%s' (%s) has no `// det:` "
                     "justification comment" % (token, rule),
                     "state *why* the site is order-independent in a "
                     "`// det: ...` comment on or just above the line"))
            return
        self.findings.append((sf.rel, line, rule, message, hint))

    # ------------------------------------------------------------- rules
    def lint_file(self, sf, member_vars_from=None, pair_text=""):
        uvars = unordered_vars(sf)
        if member_vars_from is not None:
            uvars |= member_vars_from
        self.rule_unordered_iteration(sf, uvars)
        self.rule_banned_sources(sf)
        self.rule_pointer_keys(sf)
        self.rule_rng_discipline(sf, pair_text)
        self.rule_parallel_float(sf)
        return uvars

    def rule_unordered_iteration(self, sf, uvars):
        # Only whole-object iteration is order-sensitive: `m[key]` /
        # `m.at(key)` range-fors walk the *mapped* value, not the map.
        whole = re.compile(r"^(?:\w+(?:\.|->))*([A-Za-z_]\w*)$")
        for line, container in range_for_headers(sf):
            m = whole.match(container.strip())
            if m and m.group(1) in uvars:
                self.report(
                    sf, line, "DET001", m.group(1),
                    "range-for over unordered container '%s' — "
                    "iteration order is unspecified" % m.group(1),
                    "iterate a sorted vector of keys instead, or "
                    "allowlist the audited site in "
                    "tools/det_lint_allow.txt")
        for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\.\s*c?r?begin\s*\(", sf.text):
            if m.group(1) in uvars:
                self.report(
                    sf, sf.line_of(m.start()), "DET001", m.group(1),
                    "iterator walk over unordered container '%s' — "
                    "visit order is unspecified" % m.group(1),
                    "materialize + sort before iterating, or allowlist "
                    "the audited site")

    def rule_banned_sources(self, sf):
        for token, rx, why in BANNED_SOURCES:
            for m in rx.finditer(sf.text):
                self.report(
                    sf, sf.line_of(m.start()), "DET002", token,
                    why + " — banned outside audited instrumentation sites",
                    "derive randomness from the TrialSpec seed path and "
                    "timestamps from sim vtime; allowlist pure "
                    "instrumentation")

    def rule_pointer_keys(self, sf):
        for m in re.finditer(
                r"\b(?:unordered_)?(?:map|set)\s*<\s*[^,<>;]*\*", sf.text):
            self.report(
                sf, sf.line_of(m.start()), "DET003", "pointer-key",
                "container keyed by a pointer — ASLR makes ordering and "
                "hashing run-dependent",
                "key by a stable id (NodeId, index) instead")

    def rule_rng_discipline(self, sf, pair_text=""):
        if sf.rel.replace(os.sep, "/").endswith("support/prng.h"):
            return
        for m in STD_RANDOM.finditer(sf.text):
            self.report(
                sf, sf.line_of(m.start()), "DET004", m.group(1),
                "std::%s has an implementation-defined stream" % m.group(1),
                "use support::Rng seeded from the TrialSpec seed path")
        for m in re.finditer(r"\bRng\s+([A-Za-z_]\w*)\s*;", sf.text):
            # A bare member declaration (`Rng rng_;`) is fine when the
            # header/source pair seeds it in a ctor init-list with a
            # seed-derived expression (`rng_(seed ^ kSalt)`).
            init = re.compile(r"\b%s\s*\(([^()]*)\)" % re.escape(m.group(1)))
            if any(SEEDISH.search(im.group(1) or "")
                   for text in (sf.text, pair_text)
                   for im in init.finditer(text)):
                continue
            self.report(
                sf, sf.line_of(m.start()), "DET004", m.group(1),
                "Rng '%s' is default-seeded — every stream must derive "
                "from a seed/salt expression" % m.group(1),
                "thread the TrialSpec seed (xor a distinct salt) into "
                "the constructor")
        for m in RNG_CTOR.finditer(sf.text):
            close = balance(sf.text, m.end() - 1, "(", ")")
            if close == -1:
                continue
            args = sf.text[m.end():close - 1]
            if args.strip() and SEEDISH.search(args):
                continue
            what = ("default-seeded" if not args.strip()
                    else "seeded off the trial path")
            self.report(
                sf, sf.line_of(m.start()), "DET004", m.group(1),
                "Rng '%s' is %s — every stream must derive from a "
                "seed/salt expression" % (m.group(1), what),
                "thread the TrialSpec seed (xor a distinct salt) into "
                "the constructor")

    def rule_parallel_float(self, sf):
        floats = set(re.findall(r"\b(?:double|float)\s+([A-Za-z_]\w*)",
                                sf.text))
        if not floats:
            return
        for m in re.finditer(r"\bparallel_for\s*\(", sf.text):
            close = balance(sf.text, m.end() - 1, "(", ")")
            if close == -1:
                continue
            body = sf.text[m.end():close - 1]
            for am in re.finditer(r"\b([A-Za-z_]\w*)\s*[+\-]=", body):
                if am.group(1) in floats:
                    self.report(
                        sf, sf.line_of(m.end() + am.start()), "DET006",
                        am.group(1),
                        "float accumulation into '%s' inside a parallel_for "
                        "callback — summation order depends on thread "
                        "interleaving" % am.group(1),
                        "accumulate per-index into a vector and reduce "
                        "sequentially after the join")

    # ------------------------------------------------- cross-file: salts
    def rule_salt_registry(self, files):
        decls = {}    # salt -> (rel, line, is_constexpr)
        pinned = set()  # frozenset({a, b}) pairs asserted distinct
        pair_rx = re.compile(r"^\s*(k\w*SeedSalt)\s*!=\s*(k\w*SeedSalt)\s*$")
        for sf in files:
            for m in SALT_DECL.finditer(sf.text):
                tail = sf.text[m.end():m.end() + 80]
                if re.match(r"\s*=", tail):
                    lo = max(0, m.start() - 120)
                    head = sf.text[lo:m.start()]
                    decls.setdefault(
                        m.group(1),
                        (sf.rel, sf.line_of(m.start()),
                         "constexpr" in head.split("\n")[-1]))
            for m in re.finditer(r"\bstatic_assert\s*\(", sf.text):
                close = balance(sf.text, m.end() - 1, "(", ")")
                if close == -1:
                    continue
                # Only an *exact* `a != b` assert pins a pair: a compound
                # expression (e.g. `a != (b ^ c)`) mentions the names without
                # guaranteeing their distinctness.
                pm = pair_rx.match(sf.text[m.end():close - 1])
                if pm:
                    pinned.add(frozenset({pm.group(1), pm.group(2)}))
        for salt in sorted(decls):
            rel, line, is_constexpr = decls[salt]
            if not is_constexpr:
                self.findings.append(
                    (rel, line, "DET005",
                     "%s is not declared constexpr — salts must be "
                     "compile-time constants so static_assert can pin "
                     "them" % salt,
                     "declare it `inline constexpr std::uint64_t`"))
        salts = sorted(decls)
        for i, a in enumerate(salts):
            for b in salts[i + 1:]:
                if frozenset({a, b}) in pinned:
                    continue
                rel, line, _ = decls[b]
                self.findings.append(
                    (rel, line, "DET005",
                     "no static_assert pins %s != %s — colliding salts "
                     "would silently fold two RNG streams into one" % (a, b),
                     "add `static_assert(%s != %s);` next to the other "
                     "salt-registry asserts" % (a, b)))

    def stale_allowlist(self):
        for rule, path, token in sorted(self.allowlist - self.used_allow):
            self.findings.append(
                (path, 0, "DET900",
                 "allowlist entry '%s %s %s' matches no site" %
                 (rule, path, token),
                 "the audited site is gone — delete the entry from the "
                 "allowlist"))


def load_allowlist(path):
    entries = set()
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 3:
                sys.stderr.write(
                    "det_lint: %s:%d: malformed allowlist entry (want "
                    "`RULE PATH TOKEN`)\n" % (path, lineno))
                sys.exit(2)
            entries.add((parts[0], parts[1].replace("/", os.sep), parts[2]))
    return {(r, p.replace(os.sep, "/"), t) for r, p, t in entries}


def collect_files(root, scan_dirs):
    rels = []
    for d in scan_dirs:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, _, names in os.walk(top):
            for name in names:
                if name.endswith(EXTENSIONS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    rels.append(rel.replace(os.sep, "/"))
    return sorted(rels)


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("--scan", nargs="*", default=None,
                    help="directories under root to scan (default: %s)" %
                    " ".join(SCAN_DIRS_DEFAULT))
    ap.add_argument("--allowlist", default=None,
                    help="allowlist file (default: tools/det_lint_allow.txt "
                    "under root)")
    args = ap.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    scan_dirs = args.scan if args.scan is not None else SCAN_DIRS_DEFAULT
    allow_path = args.allowlist or os.path.join(root, "tools",
                                                "det_lint_allow.txt")

    linter = Linter(load_allowlist(allow_path))
    files = []
    by_rel = {}
    for rel in collect_files(root, scan_dirs):
        sf = SourceFile(root, rel)
        files.append(sf)
        by_rel[rel] = sf

    # Member containers are declared in headers and iterated in the paired
    # .cpp: fold the header's unordered names into the sibling source file.
    header_vars = {rel: unordered_vars(sf) for rel, sf in by_rel.items()
                   if rel.endswith(".h")}
    for sf in files:
        inherited = set()
        pair_text = ""
        if sf.rel.endswith(".cpp"):
            paired = sf.rel[:-len(".cpp")] + ".h"
            inherited = header_vars.get(paired, set())
        else:
            paired = sf.rel[:-len(".h")] + ".cpp"
        if paired in by_rel:
            pair_text = by_rel[paired].text
        linter.lint_file(sf, inherited, pair_text)

    linter.rule_salt_registry(files)
    linter.stale_allowlist()

    if not linter.findings:
        print("det_lint: %d files clean" % len(files))
        return 0
    for rel, line, rule, message, hint in sorted(linter.findings):
        print("%s:%d: %s: %s" % (rel, line, rule, message))
        print("    hint: %s" % hint)
    print("det_lint: %d finding(s) in %d files" %
          (len(linter.findings), len(files)))
    return 1


if __name__ == "__main__":
    sys.exit(main())
