// Property-based scenario fuzzer: generates random adversary campaigns
// (adversary/campaign.h) across every overlay backend and both engines,
// runs each through the real ScenarioRunner, and checks the repo's
// cross-cutting invariants on the result:
//
//   determinism     same case run twice -> byte-identical trace + summary
//   trial-jobs      intra-step threads (set_intra_jobs) never change bytes
//   engines         event @ fixed:0 / loss 0 byte-matches the sync engine
//   sweep-jobs      Executor --jobs 1 vs 4 emit byte-identical sink streams
//   conservation    completed + shed == the campaign's offered-op budget
//   acked-keys      no acked key lost: zero failed lookups/writes without
//                   departures, deletion-bounded blips with them
//   structure       trace covers every step; population never below 3;
//                   sampled spectral gap never negative
//   csr             DEX_CHECK_CSR=1 is exported before the first run, so
//                   every CachedView::advance() cross-checks patch==rebuild
//                   (a mismatch aborts loudly rather than returning)
//
// A failing case is shrunk greedily (drop phases, sync engine, no serve, no
// traffic, fewer steps, smaller network) to a one-line repro that replays
// with `scenario_fuzzer --case 'LINE'` and is restated as an equivalent
// dex_sim_cli command. `--inject-bug conservation` deliberately breaks the
// conservation check's observed count by one — the self-test that the
// fuzzer finds and shrinks a real violation end to end.
//
// Every generated case is printed to stdout as `ok <case-line>` (stderr
// carries progress), so stdout is deterministic for a fixed --seed/--budget
// and doubles as a seed-corpus source (tests/fuzz_corpus.txt is made of
// these lines; `--replay FILE` re-checks them in CI).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/campaign.h"
#include "sim/experiment.h"
#include "sim/scenario.h"
#include "sim/sinks.h"
#include "support/prng.h"

namespace {

using dex::sim::ScenarioResult;
using dex::sim::ScenarioSpec;

// ------------------------------------------------------------------ cases

/// Everything one fuzz case needs to rebuild its trial: the knobs are a
/// strict subset of what dex_sim_cli exposes, so every case restates as a
/// CLI command.
struct FuzzCase {
  std::uint64_t seed = 1;
  std::string backend = "dex-worstcase";
  bool event = false;
  std::string latency = "fixed:0";  // LatencyModel canonical spelling
  double loss = 0.0;
  std::size_t n0 = 32;
  std::size_t steps = 16;
  std::size_t batch = 2;
  std::string workload;  // empty = no traffic
  std::size_t ops = 8;
  bool serve = false;
  std::size_t clients = 4;
  std::size_t qdepth = 8;
  std::string campaign = "churn:0-";
};

std::string to_line(const FuzzCase& c) {
  std::ostringstream os;
  os << "seed=" << c.seed << " backend=" << c.backend
     << " engine=" << (c.event ? "event" : "sync") << " latency=" << c.latency
     << " loss=" << c.loss << " n0=" << c.n0 << " steps=" << c.steps
     << " batch=" << c.batch
     << " workload=" << (c.workload.empty() ? "none" : c.workload)
     << " ops=" << c.ops << " serve=" << (c.serve ? 1 : 0)
     << " clients=" << c.clients << " qdepth=" << c.qdepth << " campaign=\""
     << c.campaign << '"';
  return os.str();
}

/// Parses a to_line() line back into a case. The campaign is the quoted
/// tail; everything before it is whitespace-separated key=value. Returns
/// nullopt with a one-line message on anything malformed.
std::optional<FuzzCase> from_line(const std::string& line,
                                  std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<FuzzCase> {
    if (error) *error = msg;
    return std::nullopt;
  };
  const std::string tag = "campaign=\"";
  const auto cpos = line.find(tag);
  if (cpos == std::string::npos) return fail("missing campaign=\"...\"");
  const auto cend = line.rfind('"');
  if (cend <= cpos + tag.size() - 1) return fail("unterminated campaign");
  FuzzCase c;
  c.campaign = line.substr(cpos + tag.size(), cend - cpos - tag.size());
  std::istringstream head(line.substr(0, cpos));
  std::string tok;
  while (head >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos) return fail("bad token '" + tok + "'");
    const std::string k = tok.substr(0, eq);
    const std::string v = tok.substr(eq + 1);
    try {
      if (k == "seed") {
        c.seed = std::stoull(v);
      } else if (k == "backend") {
        c.backend = v;
      } else if (k == "engine") {
        if (v != "sync" && v != "event") return fail("engine must be sync|event");
        c.event = v == "event";
      } else if (k == "latency") {
        c.latency = v;
      } else if (k == "loss") {
        c.loss = std::stod(v);
      } else if (k == "n0") {
        c.n0 = std::stoull(v);
      } else if (k == "steps") {
        c.steps = std::stoull(v);
      } else if (k == "batch") {
        c.batch = std::stoull(v);
      } else if (k == "workload") {
        c.workload = v == "none" ? "" : v;
      } else if (k == "ops") {
        c.ops = std::stoull(v);
      } else if (k == "serve") {
        c.serve = v != "0";
      } else if (k == "clients") {
        c.clients = std::stoull(v);
      } else if (k == "qdepth") {
        c.qdepth = std::stoull(v);
      } else {
        return fail("unknown key '" + k + "'");
      }
    } catch (const std::exception&) {
      return fail("bad value for '" + k + "': '" + v + "'");
    }
  }
  return c;
}

ScenarioSpec to_spec(const FuzzCase& c) {
  ScenarioSpec spec;
  spec.seed = c.seed;
  spec.steps = c.steps;
  spec.batch_size = c.batch;
  spec.gap_every = 4;
  spec.campaign = c.campaign;
  spec.label = "fuzz";
  if (!c.workload.empty()) {
    spec.traffic.workload = c.workload;
    spec.traffic.ops_per_step = c.ops;
    spec.traffic.keyspace = 512;
  }
  if (c.event) {
    spec.event.enabled = true;
    spec.event.latency = *dex::sim::LatencyModel::parse(c.latency);
    spec.event.loss_rate = c.loss;
  }
  if (c.serve) {
    spec.serve.enabled = true;
    spec.serve.clients = c.clients;
    spec.serve.queue_depth = c.qdepth;
  }
  return spec;
}

std::string to_cli_command(const FuzzCase& c) {
  std::ostringstream os;
  os << "dex_sim_cli --backend " << c.backend << " --n0 " << c.n0
     << " --seed " << c.seed << " --steps " << c.steps << " --batch-size "
     << c.batch << " --gap-every 4 --campaign '" << c.campaign << '\'';
  if (c.event) {
    os << " --engine event --latency " << c.latency << " --loss " << c.loss;
  }
  if (!c.workload.empty()) {
    os << " --workload " << c.workload << " --ops-per-step " << c.ops
       << " --keys 512";
  }
  if (c.serve) {
    os << " --serve --clients " << c.clients << " --queue-depth "
       << c.qdepth;
  }
  return os.str();
}

// ------------------------------------------------------------- generation

const std::vector<std::string>& phase_pool() {
  // greedy-spectral is excluded: its per-event candidate scoring is too
  // slow for a smoke budget. Everything else in the registry is fair game.
  static const std::vector<std::string> pool = [] {
    std::vector<std::string> p;
    for (const auto& s : dex::sim::known_strategies()) {
      if (s != "greedy-spectral") p.push_back(s);
    }
    return p;
  }();
  return pool;
}

std::string random_phase_body(dex::support::Rng& rng) {
  const auto& pool = phase_pool();
  if (rng.below(4) == 0) {  // mix of two strategies with small weights
    const auto& a = pool[rng.below(pool.size())];
    const auto& b = pool[rng.below(pool.size())];
    std::ostringstream os;
    os << "mix(" << a << '*' << (1 + rng.below(3)) << '+' << b << '*'
       << (1 + rng.below(3)) << ')';
    return os.str();
  }
  return pool[rng.below(pool.size())];
}

std::string random_campaign(dex::support::Rng& rng, std::size_t steps) {
  const std::size_t phases = 1 + rng.below(3);
  std::ostringstream os;
  std::size_t begin = 0;
  for (std::size_t p = 0; p < phases; ++p) {
    if (p) os << ';';
    os << random_phase_body(rng) << ':' << begin;
    os << '-';
    if (p + 1 < phases) {
      const std::size_t len = 1 + rng.below(std::max<std::size_t>(steps / phases, 2));
      begin += len;
      os << begin;
    }
    switch (rng.below(6)) {
      case 0:
        os << ",rate=0." << (25 * (1 + rng.below(3)));
        break;
      case 1:
        os << ",load=" << (2 + rng.below(2));
        break;
      case 2:
        os << ",load=2,diurnal=" << (4 + 2 * rng.below(3));
        break;
      default:
        break;
    }
  }
  return os.str();
}

FuzzCase random_case(std::uint64_t run_seed, std::size_t index) {
  dex::support::Rng rng(dex::support::mix64(
      run_seed ^ (0x9e3779b97f4a7c15ULL * (index + 1))));
  FuzzCase c;
  c.seed = 1 + rng.below(1u << 16);
  const auto& backends = dex::sim::known_overlays();
  c.backend = backends[rng.below(backends.size())];
  c.n0 = 24 + 8 * rng.below(4);  // 24..48
  c.steps = 16 + 8 * rng.below(3);
  c.batch = std::size_t{1} << rng.below(4);  // 1,2,4,8
  c.event = rng.below(2) == 0;
  if (c.event) {
    static const char* kLatencies[] = {"fixed:0", "fixed:2", "uniform:1,3",
                                       "exp:2"};
    c.latency = kLatencies[rng.below(4)];
    static const double kLoss[] = {0.0, 0.0, 0.05, 0.2};
    c.loss = kLoss[rng.below(4)];
  }
  if (rng.below(4) != 0) {
    static const char* kWorkloads[] = {"uniform", "zipf", "hotspot"};
    c.workload = kWorkloads[rng.below(3)];
    c.ops = std::size_t{4} << rng.below(3);  // 4,8,16
    if (c.event && rng.below(3) == 0) {
      c.serve = true;
      c.clients = std::size_t{2} << rng.below(3);
      c.qdepth = std::size_t{4} << rng.below(3);
    }
  }
  c.campaign = random_campaign(rng, c.steps);
  return c;
}

// -------------------------------------------------------------- execution

struct RunOutput {
  std::string trace;
  std::string summary;
  ScenarioResult result;
};

RunOutput run_case(const FuzzCase& c, unsigned trial_jobs = 1) {
  auto overlay = dex::sim::make_overlay(c.backend, c.n0,
                                        dex::sim::overlay_seed(c.seed));
  if (trial_jobs > 1) overlay->set_intra_jobs(trial_jobs);
  auto strategy = dex::sim::make_campaign_strategy(c.campaign);
  dex::sim::ScenarioRunner runner(*overlay, *strategy, to_spec(c));
  RunOutput out;
  out.result = runner.run();
  out.trace = dex::sim::trace_csv(out.result);
  out.summary = dex::sim::summary_json(out.result);
  return out;
}

/// The sweep-jobs probe: the case as a 2-seed ExperimentPlan through the
/// Executor, trace + summary streamed into strings. Byte-identical for any
/// jobs value or it is a violation.
std::string run_sweep(const FuzzCase& c, std::size_t jobs) {
  dex::sim::ExperimentPlan plan;
  plan.backends = {c.backend};
  plan.scenarios = {"churn"};  // ignored: base.campaign overrides it
  plan.populations = {c.n0};
  plan.batch_sizes = {c.batch};
  plan.seeds = {c.seed, c.seed + 1};
  plan.base = to_spec(c);
  std::ostringstream csv, json;
  dex::sim::CsvTraceSink trace_sink(csv);
  dex::sim::JsonSummarySink summary_sink(json);
  dex::sim::Executor exec({jobs, 1, true, false});
  exec.add_sink(trace_sink);
  exec.add_sink(summary_sink);
  exec.run(plan.expand());
  return csv.str() + json.str();
}

struct Violation {
  std::string invariant;
  std::string detail;
};

struct CheckOptions {
  bool inject_conservation = false;
  bool sweep_probe = false;  // the (slower) Executor jobs probe
};

/// Runs one case and checks every applicable invariant. nullopt = clean.
std::optional<Violation> check_case(const FuzzCase& c,
                                    const CheckOptions& opt) {
  std::string parse_error;
  const auto campaign = dex::sim::parse_campaign_spec(c.campaign,
                                                      &parse_error);
  if (!campaign) {
    return Violation{"campaign-parse", parse_error};
  }

  const RunOutput a = run_case(c);
  const RunOutput b = run_case(c);
  if (a.trace != b.trace || a.summary != b.summary) {
    return Violation{"determinism", "re-run produced different bytes"};
  }
  const RunOutput tj = run_case(c, /*trial_jobs=*/2);
  if (a.trace != tj.trace || a.summary != tj.summary) {
    return Violation{"trial-jobs", "set_intra_jobs(2) changed bytes"};
  }

  // Engine conformance: at fixed:0 / loss 0 with no serve front-end the
  // event engine must reproduce the sync trace byte for byte.
  if (c.event && c.latency == "fixed:0" && c.loss == 0.0 && !c.serve) {
    FuzzCase sync = c;
    sync.event = false;
    const RunOutput s = run_case(sync);
    if (a.trace != s.trace) {
      return Violation{"engines", "event @ fixed:0/loss 0 != sync trace"};
    }
  }

  if (!c.workload.empty()) {
    const std::size_t offered = campaign->total_ops(c.ops, c.steps);
    std::size_t got = c.serve
                          ? a.result.serve_completed + a.result.serve_shed
                          : a.result.total_ops;
    if (opt.inject_conservation) ++got;  // the self-test's planted bug
    if (got != offered) {
      std::ostringstream os;
      os << "completed+shed " << got << " != offered " << offered;
      return Violation{"conservation", os.str()};
    }
    // Durability: with no departures every route stays intact, so the
    // failure counters must be exactly zero (the serve suite pins the same
    // thing for insert-only churn). Departures may sever the occasional
    // route mid-heal — the repo's contract bounds those blips, it does not
    // forbid them — so with deletions the counters only get a
    // deletion-scaled ceiling; a durability bug (acked keys lost wholesale)
    // still blows through it.
    const std::size_t failures =
        a.result.total_failed_lookups + a.result.total_failed_writes;
    const std::size_t failure_cap =
        a.result.total_deletes == 0 ? 0 : 2 * a.result.total_deletes + 4;
    if (failures > failure_cap) {
      std::ostringstream os;
      os << "lost acked keys: failed_lookups="
         << a.result.total_failed_lookups
         << " failed_writes=" << a.result.total_failed_writes << " (cap "
         << failure_cap << " for " << a.result.total_deletes << " deletes)";
      return Violation{"acked-keys", os.str()};
    }
  }

  if (a.result.trace.size() != c.steps) {
    std::ostringstream os;
    os << "trace rows " << a.result.trace.size() << " != steps " << c.steps;
    return Violation{"structure", os.str()};
  }
  if (a.result.final_n < 3) {
    return Violation{"structure", "population fell below 3"};
  }
  if (a.result.min_gap < 0.0) {
    std::ostringstream os;
    os << "sampled spectral gap went negative: " << a.result.min_gap;
    return Violation{"structure", os.str()};
  }

  if (opt.sweep_probe) {
    const std::string one = run_sweep(c, 1);
    const std::string four = run_sweep(c, 4);
    if (one != four) {
      return Violation{"sweep-jobs", "Executor jobs=1 vs jobs=4 bytes differ"};
    }
  }
  return std::nullopt;
}

// -------------------------------------------------------------- shrinking

/// Drops the last campaign phase and re-opens the new last phase's range
/// (BEGIN-END -> BEGIN-). nullopt when only one phase remains.
std::optional<std::string> drop_last_phase(const std::string& campaign) {
  const auto semi = campaign.rfind(';');
  if (semi == std::string::npos) return std::nullopt;
  std::string head = campaign.substr(0, semi);
  const auto last_semi = head.rfind(';');
  const auto phase_at = last_semi == std::string::npos ? 0 : last_semi + 1;
  const auto colon = head.find(':', phase_at);
  if (colon == std::string::npos) return std::nullopt;
  const auto dash = head.find('-', colon);
  if (dash == std::string::npos) return std::nullopt;
  // Keep "BEGIN-", drop the END and any ",opt=..." tail of the range token.
  auto end = head.find(',', dash);
  head.erase(dash + 1, (end == std::string::npos ? head.size() : end) -
                           (dash + 1));
  return head;
}

/// Greedy shrink: apply each reduction, keep it iff the case still fails
/// the same invariant, loop until a full pass changes nothing.
FuzzCase shrink_case(FuzzCase c, const std::string& invariant,
                     const CheckOptions& opt) {
  auto still_fails = [&](const FuzzCase& cand) {
    const auto v = check_case(cand, opt);
    return v && v->invariant == invariant;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<FuzzCase> candidates;
    if (const auto fewer = drop_last_phase(c.campaign)) {
      FuzzCase cand = c;
      cand.campaign = *fewer;
      candidates.push_back(cand);
    }
    if (c.serve) {
      FuzzCase cand = c;
      cand.serve = false;
      candidates.push_back(cand);
    }
    if (c.event) {
      FuzzCase cand = c;
      cand.event = false;
      cand.serve = false;
      cand.latency = "fixed:0";
      cand.loss = 0.0;
      candidates.push_back(cand);
    }
    if (c.loss != 0.0) {
      FuzzCase cand = c;
      cand.loss = 0.0;
      candidates.push_back(cand);
    }
    if (c.latency != "fixed:0") {
      FuzzCase cand = c;
      cand.latency = "fixed:0";
      candidates.push_back(cand);
    }
    if (!c.workload.empty() && invariant != "conservation" &&
        invariant != "acked-keys") {
      FuzzCase cand = c;
      cand.workload.clear();
      cand.serve = false;
      candidates.push_back(cand);
    }
    if (c.steps > 8) {
      FuzzCase cand = c;
      cand.steps = std::max<std::size_t>(c.steps / 2, 8);
      candidates.push_back(cand);
    }
    if (c.n0 > 24) {
      FuzzCase cand = c;
      cand.n0 = 24;
      candidates.push_back(cand);
    }
    if (c.batch > 1) {
      FuzzCase cand = c;
      cand.batch = 1;
      candidates.push_back(cand);
    }
    if (c.serve && (c.clients > 2 || c.qdepth > 4)) {
      FuzzCase cand = c;
      cand.clients = 2;
      cand.qdepth = 4;
      candidates.push_back(cand);
    }
    for (const auto& cand : candidates) {
      if (still_fails(cand)) {
        c = cand;
        changed = true;
        break;  // restart the pass from the shrunk case
      }
    }
  }
  return c;
}

// ------------------------------------------------------------------- main

void report_violation(const FuzzCase& found, const Violation& v,
                      const CheckOptions& opt, const char* repro_out) {
  const FuzzCase shrunk = shrink_case(found, v.invariant, opt);
  std::printf("VIOLATION invariant=%s detail=%s\n", v.invariant.c_str(),
              v.detail.c_str());
  std::printf("found:  %s\n", to_line(found).c_str());
  std::printf("shrunk: %s\n", to_line(shrunk).c_str());
  std::printf("replay: scenario_fuzzer --case '%s'\n",
              to_line(shrunk).c_str());
  std::printf("cli:    %s\n", to_cli_command(shrunk).c_str());
  if (repro_out) {
    std::ofstream out(repro_out);
    out << to_line(shrunk) << '\n';
  }
}

int usage(std::FILE* os, int code) {
  std::fprintf(
      os,
      "usage: scenario_fuzzer [--seed S] [--budget N] [--replay FILE]\n"
      "                       [--case 'LINE'] [--inject-bug conservation]\n"
      "                       [--repro-out FILE]\n"
      "\n"
      "Generates N random campaign scenarios from seed S, runs each across\n"
      "the real engines and checks determinism, engine conformance, op\n"
      "conservation, acked-key durability and structural invariants.\n"
      "Prints `ok <case>` per clean case (a corpus source); on the first\n"
      "violation shrinks to a one-line repro and exits 1.\n"
      "\n"
      "  --replay FILE   re-check the case lines in FILE (the seed corpus)\n"
      "  --case 'LINE'   re-check one serialized case line\n"
      "  --inject-bug conservation\n"
      "                  break the conservation check's observed count by\n"
      "                  one (self-test: the fuzzer must find + shrink it)\n"
      "  --repro-out F   also write the shrunk repro line to F\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  // Latch the CSR cross-check before any CachedView::advance() runs: every
  // fuzz case then verifies patch==rebuild on every step, for free.
  setenv("DEX_CHECK_CSR", "1", 1);

  std::uint64_t seed = 1;
  std::size_t budget = 50;
  std::string replay_path;
  std::string case_line;
  const char* repro_out = nullptr;
  CheckOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--budget") {
      budget = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--replay") {
      replay_path = value();
    } else if (arg == "--case") {
      case_line = value();
    } else if (arg == "--inject-bug") {
      const std::string which = value();
      if (which != "conservation") {
        std::fprintf(stderr, "unknown bug '%s' (valid: conservation)\n",
                     which.c_str());
        return 2;
      }
      opt.inject_conservation = true;
    } else if (arg == "--repro-out") {
      repro_out = value();
    } else if (arg == "--help" || arg == "-h") {
      return usage(stdout, 0);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return usage(stderr, 2);
    }
  }

  // Replay modes: corpus file or a single case line.
  if (!replay_path.empty() || !case_line.empty()) {
    std::vector<std::string> lines;
    if (!case_line.empty()) lines.push_back(case_line);
    if (!replay_path.empty()) {
      std::ifstream in(replay_path);
      if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", replay_path.c_str());
        return 2;
      }
      std::string line;
      while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty() || line[0] == '#') continue;
        if (line.rfind("ok ", 0) == 0) line = line.substr(3);
        lines.push_back(line);
      }
    }
    std::size_t index = 0;
    for (const auto& line : lines) {
      ++index;
      std::string error;
      const auto c = from_line(line, &error);
      if (!c) {
        std::fprintf(stderr, "line %zu: %s\n", index, error.c_str());
        return 2;
      }
      CheckOptions replay_opt = opt;
      replay_opt.sweep_probe = true;  // corpus is small; probe every case
      if (const auto v = check_case(*c, replay_opt)) {
        report_violation(*c, *v, replay_opt, repro_out);
        return 1;
      }
      std::printf("ok %s\n", to_line(*c).c_str());
    }
    std::fprintf(stderr, "replayed %zu case(s), all clean\n", lines.size());
    return 0;
  }

  for (std::size_t i = 0; i < budget; ++i) {
    const FuzzCase c = random_case(seed, i);
    CheckOptions case_opt = opt;
    case_opt.sweep_probe = (i % 4) == 3;  // the Executor probe is ~6x a run
    std::fprintf(stderr, "[%zu/%zu] %s\n", i + 1, budget,
                 to_line(c).c_str());
    if (const auto v = check_case(c, case_opt)) {
      report_violation(c, *v, case_opt, repro_out);
      return 1;
    }
    std::printf("ok %s\n", to_line(c).c_str());
  }
  std::fprintf(stderr, "%zu case(s), all invariants held\n", budget);
  return 0;
}
