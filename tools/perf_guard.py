#!/usr/bin/env python3
"""Perf regression gate over bench_scale's phase-timing rows.

bench_scale appends "kind": "phase_timing" JSONL rows to BENCH_scale.json —
one per timed single trial, carrying wall-clock us/op and per-phase us/step.
This script compares them against the checked-in baseline
(tools/perf_baseline.json) and fails when any configuration's us/op exceeds
the baseline by more than the allowed factor (default 2x, absorbing normal
CI-runner jitter; a hot-path regression is an order of magnitude).
Configurations are keyed by (backend, n0, engine) — "engine" distinguishes
the lockstep rows from the discrete-event core's (rows without the field
predate the event engine and count as sync).

Baseline configurations absent from the bench output are skipped (CI runs a
reduced max_n, so the large sizes only exist in full local runs); bench rows
absent from the baseline are reported informationally so new configurations
get pinned on the next baseline refresh.

Usage: perf_guard.py BENCH_scale.json [baseline.json] [--factor F]
"""

import json
import os
import sys


def load_phase_rows(path):
    rows = {}
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue  # not JSONL we own
            if obj.get("kind") != "phase_timing":
                continue
            rows[row_key(obj)] = obj
    return rows


def row_key(obj):
    # Rows written before the event engine existed carry no "engine" field;
    # they are sync-engine rows by definition.
    return (obj["backend"], int(obj["n0"]), obj.get("engine", "sync"))


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    factor = 2.0
    for a in argv[1:]:
        if a.startswith("--factor"):
            factor = float(a.split("=", 1)[1])
    if not args:
        print(__doc__.strip())
        return 2
    bench_path = args[0]
    baseline_path = (
        args[1]
        if len(args) > 1
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "perf_baseline.json")
    )

    rows = load_phase_rows(bench_path)
    if not rows:
        print(f"perf_guard: no phase_timing rows in {bench_path}")
        return 1
    with open(baseline_path, "r", encoding="utf-8") as f:
        baseline = json.load(f)

    failures = []
    checked = 0
    for entry in baseline["rows"]:
        key = row_key(entry)
        row = rows.get(key)
        if row is None:
            continue  # reduced run: this size was not swept
        checked += 1
        base = float(entry["us_per_op"])
        got = float(row["us_per_op"])
        verdict = "ok"
        if got > factor * base:
            verdict = "REGRESSION"
            failures.append(key)
        print(
            f"perf_guard: {key[0]:>14} n0={key[1]:<8} engine={key[2]:<5} "
            f"us/op {got:8.2f} vs baseline {base:8.2f} "
            f"(allowed {factor * base:8.2f}) {verdict}"
        )

    for key in sorted(set(rows) - {row_key(e) for e in baseline["rows"]}):
        print(f"perf_guard: note: {key[0]} n0={key[1]} engine={key[2]} "
              f"has no baseline pin")

    if checked == 0:
        print("perf_guard: no baseline configuration matched the bench run")
        return 1
    if failures:
        print(f"perf_guard: FAIL — {len(failures)} configuration(s) regressed "
              f">{factor}x")
        return 1
    print(f"perf_guard: OK — {checked} configuration(s) within {factor}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
