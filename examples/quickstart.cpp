// Quickstart: build a DEX network, churn it with an adaptive adversary, and
// watch the paper's guarantees hold — constant degree, constant spectral
// gap, O(log n) recovery cost per step.
//
//   $ ./quickstart [steps=2000] [seed=7]

#include <cstdio>
#include <cstdlib>

#include "adversary/adversary.h"
#include "dex/network.h"
#include "graph/spectral.h"
#include "metrics/stats.h"

int main(int argc, char** argv) {
  const std::size_t steps = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                     : 2000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 7;

  dex::Params params;
  params.seed = seed;
  params.mode = dex::RecoveryMode::WorstCase;
  dex::DexNetwork net(64, params);

  dex::adversary::RandomChurn strategy(0.55);  // mild growth bias
  dex::adversary::AdversaryView view{
      [&] { return net.n(); },
      [&] { return net.alive_nodes(); },
      [&] { return net.snapshot(); },
      [&] { return net.alive_mask(); },
      [&](dex::NodeId u) { return static_cast<std::size_t>(net.total_load(u)); },
      [&] { return net.coordinator(); },
      {},
  };
  dex::support::Rng adv_rng(seed ^ 0xadull);

  std::vector<double> rounds, messages, topo;
  double min_gap = 1.0;
  for (std::size_t t = 0; t < steps; ++t) {
    const auto action = strategy.next(view, adv_rng, 16, 100000);
    if (action.insert) {
      net.insert(action.target);
    } else {
      net.remove(action.target);
    }
    const auto& rep = net.last_report();
    rounds.push_back(static_cast<double>(rep.cost.rounds));
    messages.push_back(static_cast<double>(rep.cost.messages));
    topo.push_back(static_cast<double>(rep.cost.topology_changes));
    if (t % 250 == 0) {
      const auto spec = dex::graph::spectral_gap(net.snapshot(),
                                                 net.alive_mask());
      if (spec.gap < min_gap) min_gap = spec.gap;
      std::printf(
          "step %5zu  n=%5zu  p=%7llu  gap=%.3f  staggered=%d  "
          "rounds=%llu msgs=%llu\n",
          t, net.n(), static_cast<unsigned long long>(net.p()), spec.gap,
          net.staggered_active() ? 1 : 0,
          static_cast<unsigned long long>(rep.cost.rounds),
          static_cast<unsigned long long>(rep.cost.messages));
    }
  }
  net.check_invariants();

  const auto r = dex::metrics::summarize(rounds);
  const auto m = dex::metrics::summarize(messages);
  const auto c = dex::metrics::summarize(topo);
  std::printf("\nAfter %zu adversarial steps (final n=%zu):\n", steps,
              net.n());
  std::printf("  rounds/step    mean=%.1f p99=%.0f max=%.0f\n", r.mean, r.p99,
              r.max);
  std::printf("  messages/step  mean=%.1f p99=%.0f max=%.0f\n", m.mean, m.p99,
              m.max);
  std::printf("  topo-changes   mean=%.1f p99=%.0f max=%.0f\n", c.mean, c.p99,
              c.max);
  std::printf("  min sampled spectral gap = %.3f (stays constant)\n", min_gap);
  std::printf("  inflations=%llu deflations=%llu forced_sync=%llu\n",
              static_cast<unsigned long long>(net.inflation_count()),
              static_cast<unsigned long long>(net.deflation_count()),
              static_cast<unsigned long long>(net.forced_sync_type2()));
  return 0;
}
