// Serving front-end demo on real threads: the same shard/queue/admission
// discipline the deterministic event engine enforces (src/serve/serve.h),
// realized by ShardedKvServer's thread-per-shard workers and a real clock.
// A handful of producer threads fire put/get requests at bounded shard
// queues; the run prints the conservation check (submitted == completed +
// shed), the shed count (squeeze --queue-depth to watch admission engage)
// and wall-clock queue+service latency quantiles from the same mergeable
// histogram the simulator reports virtual-tick quantiles with.
//
//   $ ./serve_demo [shards] [queue_depth] [producers] [ops_per_producer]
//   $ ./serve_demo 4 8 8 20000      # shallow queues: expect nonzero shed
//
// Latencies here are microseconds and vary run to run — this binary
// demonstrates the contract; the byte-stable numbers come from
// dex_sim_cli --serve.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "support/prng.h"

int main(int argc, char** argv) {
  dex::serve::ShardedKvServer::Config cfg;
  cfg.shards = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
  cfg.queue_depth = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const std::size_t producers =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
  const std::size_t ops_each =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 10000;
  if (cfg.shards == 0 || cfg.queue_depth == 0 || producers == 0) {
    std::fprintf(stderr,
                 "usage: serve_demo [shards] [queue_depth] [producers] "
                 "[ops_per_producer]\n");
    return 2;
  }

  dex::serve::ShardedKvServer server(cfg);
  std::atomic<std::uint64_t> submitted{0};
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      constexpr std::uint64_t kProducerSeed = 0x5e12e;
      dex::support::Rng rng(kProducerSeed + p);
      for (std::size_t i = 0; i < ops_each; ++i) {
        dex::serve::ShardedKvServer::Request req;
        req.read = rng.chance(0.5);
        req.key = rng.below(4096);
        req.value = rng.below(~std::uint64_t{0});
        ++submitted;
        (void)server.submit(req);
      }
    });
  }
  for (auto& t : threads) t.join();
  server.drain();

  const std::uint64_t completed = server.completed();
  const std::uint64_t shed = server.shed();
  const auto lat = server.latency();
  const bool conserved = completed + shed == submitted.load();
  std::printf(
      "shards=%zu queue_depth=%zu producers=%zu\n"
      "submitted=%llu completed=%llu shed=%llu conservation=%s\n"
      "latency_us: p50=%llu p99=%llu p999=%llu max=%llu\n",
      cfg.shards, cfg.queue_depth, producers,
      static_cast<unsigned long long>(submitted.load()),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(shed), conserved ? "ok" : "VIOLATED",
      static_cast<unsigned long long>(lat.quantile(0.50)),
      static_cast<unsigned long long>(lat.quantile(0.99)),
      static_cast<unsigned long long>(lat.quantile(0.999)),
      static_cast<unsigned long long>(lat.max()));
  return conserved ? 0 : 1;
}
