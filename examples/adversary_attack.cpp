// Adaptive-adversary duel: the same unbounded greedy spectral-deletion
// adversary (it inspects the full topology and evaluates candidate
// deletions' post-healing spectral gap) attacks a probabilistic overlay
// (Law–Siu) and DEX side by side — the contrast that motivates the paper.
// Both duels are the same ScenarioRunner call; only the overlay differs.
//
//   $ ./adversary_attack [deletions=120] [seed=5]

#include <cstdio>
#include <cstdlib>

#include "graph/spectral.h"
#include "sim/overlay.h"
#include "sim/scenario.h"

namespace sim = dex::sim;

namespace {

void duel(sim::HealingOverlay& overlay, std::size_t deletions,
          std::uint64_t seed, std::size_t n0) {
  std::printf("  after %3zu deletions: n=%3zu  gap=%.4f\n",
              std::size_t{0}, overlay.n(),
              dex::graph::spectral_gap(overlay.snapshot(),
                                       overlay.alive_mask())
                  .gap);
  dex::adversary::GreedySpectralDeletion attack(24);
  sim::ScenarioSpec spec;
  spec.seed = seed;
  spec.steps = deletions;
  spec.min_n = 40;
  spec.max_n = 4 * n0;
  sim::ScenarioRunner runner(overlay, attack, spec);
  runner.set_observer(
      [](const sim::StepRecord& rec, sim::HealingOverlay& o) {
        if ((rec.step + 1) % 20 == 0) {
          std::printf("  after %3llu deletions: n=%3zu  gap=%.4f\n",
                      static_cast<unsigned long long>(rec.step + 1), rec.n,
                      dex::graph::spectral_gap(o.snapshot(), o.alive_mask())
                          .gap);
        }
      });
  runner.run();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t deletions =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;
  const std::size_t n0 = 200;

  std::printf("target: union of 2 random Hamiltonian cycles (Law-Siu)\n");
  {
    sim::LawSiuOverlay overlay(n0, 2, seed);
    duel(overlay, deletions, seed + 1, n0);
  }

  std::printf("\ntarget: DEX (worst-case mode), same adversary\n");
  {
    dex::Params prm;
    prm.seed = seed;
    prm.mode = dex::RecoveryMode::WorstCase;
    sim::DexOverlay overlay(n0, prm);
    duel(overlay, deletions, seed + 2, n0);
    overlay.check_invariants();
  }

  std::printf(
      "\nThe probabilistic overlay's expansion decays monotonically under\n"
      "the adaptive attack and never recovers; DEX re-balances after every\n"
      "deletion, so the same adversary cannot push it below its\n"
      "deterministic floor.\n");
  return 0;
}
