// Adaptive-adversary duel: the same unbounded greedy spectral-deletion
// adversary (it inspects the full topology and evaluates candidate
// deletions' post-healing spectral gap) attacks a probabilistic overlay
// (Law–Siu) and DEX side by side — the contrast that motivates the paper.
//
//   $ ./adversary_attack [deletions=120] [seed=5]

#include <cstdio>
#include <cstdlib>

#include "adversary/adversary.h"
#include "baselines/law_siu.h"
#include "dex/network.h"
#include "graph/spectral.h"
#include "support/prng.h"

namespace adv = dex::adversary;

int main(int argc, char** argv) {
  const std::size_t deletions =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;
  const std::size_t n0 = 200;

  std::printf("target: union of 2 random Hamiltonian cycles (Law-Siu)\n");
  dex::baselines::LawSiuNetwork ls(n0, 2, seed);
  adv::AdversaryView lv{
      [&] { return ls.n(); },
      [&] { return ls.alive_nodes(); },
      [&] { return ls.snapshot(); },
      [&] { return ls.alive_mask(); },
      [&](adv::NodeId u) { return ls.degree(u); },
      [] { return dex::graph::kInvalidNode; },
      [&](adv::NodeId u) { return ls.snapshot_without(u); },
  };
  adv::GreedySpectralDeletion attack_ls(24);
  dex::support::Rng rng(seed + 1);
  for (std::size_t t = 0; t <= deletions; ++t) {
    if (t % 20 == 0) {
      std::printf("  after %3zu deletions: n=%3zu  gap=%.4f\n", t, ls.n(),
                  dex::graph::spectral_gap(ls.snapshot(), ls.alive_mask())
                      .gap);
    }
    if (t < deletions) {
      const auto a = attack_ls.next(lv, rng, 40, 4 * n0);
      if (a.insert) {
        ls.insert();
      } else {
        ls.remove(a.target);
      }
    }
  }

  std::printf("\ntarget: DEX (worst-case mode), same adversary\n");
  dex::Params prm;
  prm.seed = seed;
  prm.mode = dex::RecoveryMode::WorstCase;
  dex::DexNetwork net(n0, prm);
  adv::AdversaryView dv{
      [&] { return net.n(); },
      [&] { return net.alive_nodes(); },
      [&] { return net.snapshot(); },
      [&] { return net.alive_mask(); },
      [&](adv::NodeId u) {
        return static_cast<std::size_t>(net.total_load(u));
      },
      [&] { return net.coordinator(); },
      {},
  };
  adv::GreedySpectralDeletion attack_dex(24);
  for (std::size_t t = 0; t <= deletions; ++t) {
    if (t % 20 == 0) {
      std::printf("  after %3zu deletions: n=%3zu  gap=%.4f\n", t, net.n(),
                  dex::graph::spectral_gap(net.snapshot(), net.alive_mask())
                      .gap);
    }
    if (t < deletions) {
      const auto a = attack_dex.next(dv, rng, 40, 4 * n0);
      if (a.insert) {
        net.insert(a.target);
      } else {
        net.remove(a.target);
      }
    }
  }
  net.check_invariants();
  std::printf(
      "\nThe probabilistic overlay's expansion decays monotonically under\n"
      "the adaptive attack and never recovers; DEX re-balances after every\n"
      "deletion, so the same adversary cannot push it below its\n"
      "deterministic floor.\n");
  return 0;
}
