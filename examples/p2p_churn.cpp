// P2P overlay under heavy, bursty churn — the workload that motivates the
// paper's introduction: peers join in flash crowds and leave in waves, and
// the overlay must keep (a) constant node degree (cheap links), (b) constant
// expansion (fast broadcast, robust routing), and (c) O(log n) maintenance
// per event.
//
// Simulates a day of "flash crowd / mass exodus" cycles and prints overlay
// health after each phase.
//
//   $ ./p2p_churn [phases=6] [seed=42]

#include <cstdio>
#include <cstdlib>

#include "dex/network.h"
#include "graph/bfs.h"
#include "graph/spectral.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "support/prng.h"

int main(int argc, char** argv) {
  const std::size_t phases =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  dex::Params prm;
  prm.seed = seed;
  prm.mode = dex::RecoveryMode::WorstCase;
  dex::DexNetwork net(64, prm);
  dex::support::Rng rng(seed * 31 + 7);

  dex::metrics::Table t({"phase", "event", "n", "p", "diameter", "gap",
                        "max degree", "msgs/step (p99)", "rebuilds"});

  std::uint64_t rebuilds_seen = 0;
  for (std::size_t phase = 0; phase < phases; ++phase) {
    const bool flash_crowd = phase % 2 == 0;
    std::vector<double> msgs;
    // Each phase roughly doubles or halves the population.
    const std::size_t target = flash_crowd ? net.n() * 2 : net.n() / 2;
    while (flash_crowd ? net.n() < target
                       : net.n() > std::max<std::size_t>(target, 16)) {
      const auto nodes = net.alive_nodes();
      if (flash_crowd) {
        net.insert(nodes[rng.below(nodes.size())]);
      } else {
        net.remove(nodes[rng.below(nodes.size())]);
      }
      msgs.push_back(static_cast<double>(net.last_report().cost.messages));
      if (net.last_report().type2_event) ++rebuilds_seen;
    }
    net.check_invariants();

    const auto g = net.snapshot();
    const auto mask = net.alive_mask();
    std::size_t max_deg = 0;
    for (auto u : net.alive_nodes()) max_deg = std::max(max_deg, g.degree(u));
    const auto spec = dex::graph::spectral_gap(g, mask);
    const auto diam = dex::graph::diameter_estimate(g, mask);
    t.add_row({std::to_string(phase),
               flash_crowd ? "flash crowd (x2)" : "mass exodus (/2)",
               std::to_string(net.n()), std::to_string(net.p()),
               std::to_string(diam), dex::metrics::Table::num(spec.gap, 3),
               std::to_string(max_deg),
               dex::metrics::Table::num(dex::metrics::summarize(msgs).p99, 0),
               std::to_string(rebuilds_seen)});
  }
  t.print();
  std::printf(
      "\nOverlay health held through %zu doubling/halving phases:\n"
      "constant degree, logarithmic diameter, gap bounded away from zero,\n"
      "and %llu staggered rebuild(s) absorbed without a cost spike.\n",
      phases, static_cast<unsigned long long>(rebuilds_seen));
  return 0;
}
