// P2P overlay under heavy, bursty churn — the workload that motivates the
// paper's introduction: peers join in flash crowds and leave in waves, and
// the overlay must keep (a) constant node degree (cheap links), (b) constant
// expansion (fast broadcast, robust routing), and (c) O(log n) maintenance
// per event.
//
// Simulates a day of "flash crowd / mass exodus" cycles — each phase is one
// ScenarioRunner run (insert-only to double, delete-only to halve) — and
// prints overlay health after each phase.
//
//   $ ./p2p_churn [phases=6] [seed=42]

#include <cstdio>
#include <cstdlib>

#include "graph/bfs.h"
#include "graph/spectral.h"
#include "metrics/table.h"
#include "sim/overlay.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  const std::size_t phases =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  dex::Params prm;
  prm.seed = seed;
  prm.mode = dex::RecoveryMode::WorstCase;
  dex::sim::DexOverlay overlay(64, prm);

  dex::metrics::Table t({"phase", "event", "n", "p", "diameter", "gap",
                        "max degree", "msgs/step (p99)", "rebuilds"});

  std::uint64_t rebuilds_seen = 0;
  for (std::size_t phase = 0; phase < phases; ++phase) {
    const bool flash_crowd = phase % 2 == 0;
    // Each phase roughly doubles or halves the population.
    const std::size_t target =
        flash_crowd ? overlay.n() * 2
                    : std::max<std::size_t>(overlay.n() / 2, 16);
    const std::size_t steps =
        flash_crowd ? target - overlay.n() : overlay.n() - target;

    dex::adversary::InsertOnly grow;
    dex::adversary::DeleteOnly shrink;
    dex::sim::ScenarioSpec spec;
    spec.seed = seed * 31 + 7 + phase;
    spec.steps = steps;
    spec.min_n = 8;
    spec.max_n = 4 * target + 8;
    dex::sim::ScenarioRunner runner(
        overlay,
        flash_crowd ? static_cast<dex::adversary::Strategy&>(grow)
                    : static_cast<dex::adversary::Strategy&>(shrink),
        spec);
    runner.set_observer(
        [&](const dex::sim::StepRecord&, dex::sim::HealingOverlay&) {
          if (overlay.net().last_report().type2_event) ++rebuilds_seen;
        });
    const auto res = runner.run();
    overlay.check_invariants();

    const auto g = overlay.snapshot();
    const auto mask = overlay.alive_mask();
    std::size_t max_deg = 0;
    for (auto u : overlay.alive_nodes())
      max_deg = std::max(max_deg, g.degree(u));
    const auto spec_gap = dex::graph::spectral_gap(g, mask);
    const auto diam = dex::graph::diameter_estimate(g, mask);
    t.add_row({std::to_string(phase),
               flash_crowd ? "flash crowd (x2)" : "mass exodus (/2)",
               std::to_string(overlay.n()),
               std::to_string(overlay.net().p()), std::to_string(diam),
               dex::metrics::Table::num(spec_gap.gap, 3),
               std::to_string(max_deg),
               dex::metrics::Table::num(res.messages.p99, 0),
               std::to_string(rebuilds_seen)});
  }
  t.print();
  std::printf(
      "\nOverlay health held through %zu doubling/halving phases:\n"
      "constant degree, logarithmic diameter, gap bounded away from zero,\n"
      "and %llu staggered rebuild(s) absorbed without a cost spike.\n",
      phases, static_cast<unsigned long long>(rebuilds_seen));
  return 0;
}
