// Scripted simulator CLI — drive a DexNetwork from a churn script (stdin or
// file), for reproducing traces, debugging adversarial sequences, and
// piping experiments from other tooling.
//
// Commands (one per line, '#' comments):
//   INIT <n0> [seed] [worstcase|amortized]   (re)create the network
//   INSERT <attach_id>                       insert a node
//   DELETE <id>                              delete a node
//   CHURN <steps> <insert_prob>              random churn burst
//   KILL_COORDINATOR                         delete the coordinator
//   PUT <key> <value>       GET <key>        DHT operations
//   STATS                                    n/p/gap/degree/cost summary
//   AUDIT                                    run check_invariants()
//   DOT                                      Graphviz of the real network
//
//   $ printf 'INIT 32 7\nCHURN 100 0.6\nSTATS\nAUDIT\n' | ./dex_sim_cli

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "dex/dht.h"
#include "dex/network.h"
#include "graph/bfs.h"
#include "graph/spectral.h"
#include "support/prng.h"

namespace {

struct Session {
  std::unique_ptr<dex::DexNetwork> net;
  std::unique_ptr<dex::Dht> dht;
  std::unique_ptr<dex::support::Rng> rng;
};

void cmd_stats(Session& s) {
  auto& net = *s.net;
  const auto g = net.snapshot();
  const auto mask = net.alive_mask();
  std::size_t max_deg = 0;
  for (auto u : net.alive_nodes()) max_deg = std::max(max_deg, g.degree(u));
  const auto spec = dex::graph::spectral_gap(g, mask);
  std::printf(
      "n=%zu p=%llu gap=%.4f max_degree=%zu coordinator=%u staggered=%d\n"
      "totals: rounds=%llu messages=%llu topology_changes=%llu "
      "inflations=%llu deflations=%llu\n",
      net.n(), static_cast<unsigned long long>(net.p()), spec.gap, max_deg,
      net.coordinator(), net.staggered_active() ? 1 : 0,
      static_cast<unsigned long long>(net.meter().total().rounds),
      static_cast<unsigned long long>(net.meter().total().messages),
      static_cast<unsigned long long>(net.meter().total().topology_changes),
      static_cast<unsigned long long>(net.inflation_count()),
      static_cast<unsigned long long>(net.deflation_count()));
}

void cmd_dot(Session& s) {
  auto& net = *s.net;
  std::printf("graph dex {\n");
  std::map<std::pair<dex::NodeId, dex::NodeId>, int> mult;
  net.cycle().for_each_edge([&](dex::Vertex x, dex::Vertex y) {
    auto a = net.mapping().owner(x);
    auto b = net.mapping().owner(y);
    if (a > b) std::swap(a, b);
    ++mult[{a, b}];
  });
  for (const auto& [e, m] : mult)
    std::printf("  n%u -- n%u [label=%d];\n", e.first, e.second, m);
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::istream* in = &std::cin;
  std::ifstream file;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    in = &file;
  }

  Session s;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(*in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd)) continue;

    if (cmd == "INIT") {
      std::size_t n0 = 16;
      std::uint64_t seed = 1;
      std::string m = "worstcase";
      ss >> n0 >> seed >> m;
      dex::Params prm;
      prm.seed = seed;
      prm.mode = m == "amortized" ? dex::RecoveryMode::Amortized
                                  : dex::RecoveryMode::WorstCase;
      s.net = std::make_unique<dex::DexNetwork>(n0, prm);
      s.dht = std::make_unique<dex::Dht>(*s.net);
      s.rng = std::make_unique<dex::support::Rng>(seed ^ 0xc11);
      std::printf("ok INIT n=%zu p=%llu\n", s.net->n(),
                  static_cast<unsigned long long>(s.net->p()));
      continue;
    }
    if (!s.net) {
      std::fprintf(stderr, "line %zu: INIT first\n", lineno);
      return 1;
    }

    if (cmd == "INSERT") {
      unsigned a = 0;
      ss >> a;
      if (!s.net->alive(a)) {
        std::fprintf(stderr, "line %zu: node %u not alive\n", lineno, a);
        return 1;
      }
      const auto u = s.net->insert(a);
      const auto& c = s.net->last_report().cost;
      std::printf("ok INSERT -> node %u (rounds=%llu msgs=%llu)\n", u,
                  static_cast<unsigned long long>(c.rounds),
                  static_cast<unsigned long long>(c.messages));
    } else if (cmd == "DELETE") {
      unsigned v = 0;
      ss >> v;
      if (!s.net->alive(v) || s.net->n() < 3) {
        std::fprintf(stderr, "line %zu: cannot delete %u\n", lineno, v);
        return 1;
      }
      s.net->remove(v);
      const auto& c = s.net->last_report().cost;
      std::printf("ok DELETE %u (rounds=%llu msgs=%llu)\n", v,
                  static_cast<unsigned long long>(c.rounds),
                  static_cast<unsigned long long>(c.messages));
    } else if (cmd == "CHURN") {
      std::size_t steps = 0;
      double prob = 0.5;
      ss >> steps >> prob;
      for (std::size_t i = 0; i < steps; ++i) {
        const auto nodes = s.net->alive_nodes();
        if (s.rng->chance(prob) || s.net->n() < 4) {
          s.net->insert(nodes[s.rng->below(nodes.size())]);
        } else {
          s.net->remove(nodes[s.rng->below(nodes.size())]);
        }
      }
      std::printf("ok CHURN %zu steps -> n=%zu\n", steps, s.net->n());
    } else if (cmd == "KILL_COORDINATOR") {
      const auto c = s.net->coordinator();
      s.net->remove(c);
      std::printf("ok KILL_COORDINATOR %u -> new coordinator %u\n", c,
                  s.net->coordinator());
    } else if (cmd == "PUT") {
      std::uint64_t k = 0, v = 0;
      ss >> k >> v;
      s.dht->put(k, v);
      std::printf("ok PUT %llu (msgs=%llu)\n",
                  static_cast<unsigned long long>(k),
                  static_cast<unsigned long long>(s.dht->last_cost().messages));
    } else if (cmd == "GET") {
      std::uint64_t k = 0;
      ss >> k;
      const auto v = s.dht->get(k);
      if (v) {
        std::printf("ok GET %llu = %llu (msgs=%llu)\n",
                    static_cast<unsigned long long>(k),
                    static_cast<unsigned long long>(*v),
                    static_cast<unsigned long long>(
                        s.dht->last_cost().messages));
      } else {
        std::printf("ok GET %llu = <absent>\n",
                    static_cast<unsigned long long>(k));
      }
    } else if (cmd == "STATS") {
      cmd_stats(s);
    } else if (cmd == "AUDIT") {
      s.net->check_invariants();
      std::printf("ok AUDIT (all invariants hold)\n");
    } else if (cmd == "DOT") {
      cmd_dot(s);
    } else {
      std::fprintf(stderr, "line %zu: unknown command '%s'\n", lineno,
                   cmd.c_str());
      return 1;
    }
  }
  return 0;
}
