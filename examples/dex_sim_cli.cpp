// Simulator CLI. Two modes:
//
// (1) Scenario/sweep mode — any backends x any adversaries x any sizes from
//     one binary, driven by the declarative ExperimentPlan + parallel
//     Executor (sim/experiment.h); per-step traces stream as CSV (stdout or
//     --csv FILE) and per-trial summaries as JSON lines (stderr or --json
//     FILE) through MetricSinks, so memory stays flat however long the run:
//
//   $ ./dex_sim_cli --backend=flood --scenario=churn --n0=64 --steps=200
//   $ ./dex_sim_cli --backend dex-worstcase --scenario churn --batch-size 16
//   $ ./dex_sim_cli --sweep --backend all --scenario churn,burst
//        --seed 1,2,3,4 --jobs 8 --no-trace --json BENCH_sweep.json
//
//     Flags (both --flag=VALUE and --flag VALUE forms work):
//            --backend=NAMES  (dex-amortized, dex-worstcase, flood, lawsiu,
//                              randomflip, xheal; with --sweep a comma list
//                              or "all")
//            --scenario=NAMES (churn, insert-only, delete-only, oscillate,
//                              targeted, load-attack, spectral,
//                              greedy-spectral, burst, flash-crowd,
//                              mass-failure, oracle-bust, chord-cut,
//                              spectral-batch; comma list with --sweep)
//            --campaign=SPEC  phased adversary campaign replacing the single
//                             --scenario strategy: ;-separated phases of
//                             strategy[:BEGIN-END][,rate=R][,load=L]
//                             [,diurnal=P], plus mix(a*2+b) bodies and
//                             replay(trace.csv) (adversary/campaign.h)
//            --n0=N --seed=S  (comma lists with --sweep: grid axes)
//            --batch-size=B   events per step (§5 batches; default 1;
//                              comma list with --sweep)
//            --steps=N --min-n=N --max-n=N --warmup=N
//            --insert-prob=P --gap-every=K --no-trace
//            --burst=K        burst batch_size every K steps, single events
//                             between (default 0 = batch every step)
//            --workload=NAME  serve key-value traffic between churn steps
//                             (uniform, zipf, hotspot); requests route via
//                             p-cycle paths on DEX, BFS on the baselines
//            --ops-per-step=N --keys=K --zipf=S --read-frac=P
//                             traffic knobs (requests/step, keyspace, zipf
//                             exponent, read share)
//            --engine=NAME    sync (lockstep rounds, default) or event
//                             (deterministic discrete-event core with
//                             latency/loss/stragglers, sim/event/)
//            --latency=MODEL  per-message latency: fixed:T, uniform:A,B,
//                             exp:MEAN (virtual ticks; event engine only)
//            --loss=P --stragglers=F --straggler-factor=K --period=T
//                             i.i.d. delivery loss, straggling-node
//                             fraction and multiplier, ticks between
//                             batch injections (event engine only)
//            --sweep          expand the comma-list axes into a full grid
//                             (backends x scenarios x n0s x batch sizes x
//                             seeds) and prepend a trial column/field
//            --jobs=J         worker threads for the sweep (0 = all cores);
//                             output is byte-identical for every J
//            --csv=FILE --json=FILE   redirect the two streams to files
//
// (2) Scripted mode (legacy) — drive a DexNetwork from a churn script
//     (stdin or file), for reproducing traces, debugging adversarial
//     sequences, and piping experiments from other tooling.
//
// Script commands (one per line, '#' comments):
//   INIT <n0> [seed] [worstcase|amortized]   (re)create the network
//   INSERT <attach_id>                       insert a node
//   DELETE <id>                              delete a node
//   CHURN <steps> <insert_prob>              random churn burst
//   KILL_COORDINATOR                         delete the coordinator
//   PUT <key> <value>       GET <key>        DHT operations
//   STATS                                    n/p/gap/degree/cost summary
//   AUDIT                                    run check_invariants()
//   DOT                                      Graphviz of the real network
//
//   $ printf 'INIT 32 7\nCHURN 100 0.6\nSTATS\nAUDIT\n' | ./dex_sim_cli

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include <vector>

#include "dex/dht.h"
#include "dex/network.h"
#include "graph/bfs.h"
#include "graph/spectral.h"
#include "sim/experiment.h"
#include "sim/overlay.h"
#include "sim/scenario.h"
#include "sim/sinks.h"
#include "support/prng.h"

namespace {

// ------------------------------------------------------------ scenario mode

struct ScenarioArgs {
  bool sweep = false;
  std::vector<std::string> backends{"dex-worstcase"};
  std::vector<std::string> scenarios{"churn"};
  std::vector<std::size_t> n0s{64};
  std::vector<std::uint64_t> seeds{1};
  std::vector<std::size_t> batch_sizes{1};
  std::size_t jobs = 1;
  unsigned trial_jobs = 1;
  std::string csv_path;
  std::string json_path;
  dex::sim::ScenarioSpec spec;
  dex::sim::StrategyOptions opts;
  bool trace = true;
};

/// Accepts both `--name=value` and `--name value`: when arg is exactly
/// `--name`, the value is consumed from the next argv slot (advancing i).
bool parse_flag(int argc, char** argv, int& i, const char* name,
                std::string& out) {
  const std::string arg = argv[i];
  const std::string flag = std::string("--") + name;
  if (arg == flag) {
    if (i + 1 >= argc)
      throw std::invalid_argument("missing value for " + flag);
    out = argv[++i];
    return true;
  }
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

/// stoull that rejects what std::stoull silently accepts or reports badly:
/// negative input (wrapped to huge values), trailing garbage ("1e3"
/// parsing as 1), and non-numeric input (bare "stoull" exception text).
std::uint64_t parse_u64(const std::string& v) try {
  std::size_t pos = 0;
  std::uint64_t out = 0;
  // Require a leading digit: stoull itself skips whitespace and accepts a
  // sign, which would let " -1" wrap to 2^64-1.
  if (!v.empty() && std::isdigit(static_cast<unsigned char>(v[0]))) {
    out = std::stoull(v, &pos);
  }
  if (pos != v.size() || v.empty()) throw std::invalid_argument(v);
  return out;
} catch (const std::exception&) {  // invalid_argument or out_of_range
  throw std::invalid_argument("expected a non-negative integer, got '" + v +
                              "'");
}

/// stod with the same strictness (rejects "0.5x", clean message for "abc").
double parse_double(const std::string& v) try {
  std::size_t pos = 0;
  const double out = v.empty() ? 0.0 : std::stod(v, &pos);
  if (pos != v.size() || v.empty()) throw std::invalid_argument(v);
  return out;
} catch (const std::exception&) {  // invalid_argument or out_of_range
  throw std::invalid_argument("expected a number, got '" + v + "'");
}

/// Splits a comma list; "all" (backends axis) expands via the registry.
std::vector<std::string> split_csv(const std::string& v) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= v.size()) {
    const std::size_t comma = v.find(',', start);
    const std::size_t end = comma == std::string::npos ? v.size() : comma;
    if (end > start) out.push_back(v.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("empty list: '" + v + "'");
  return out;
}

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: dex_sim_cli [--backend=NAMES] [--scenario=NAMES] [--n0=N,..]\n"
      "                   [--campaign=SPEC]\n"
      "                   [--steps=N] [--seed=S,..] [--min-n=N] [--max-n=N]\n"
      "                   [--warmup=N] [--insert-prob=P] [--gap-every=K]\n"
      "                   [--batch-size=B,..] [--burst=K] [--no-trace]\n"
      "                   [--workload=NAME] [--ops-per-step=N] [--keys=K]\n"
      "                   [--zipf=S] [--read-frac=P]\n"
      "                   [--engine=sync|event] [--latency=MODEL] [--loss=P]\n"
      "                   [--stragglers=F] [--straggler-factor=K]\n"
      "                   [--period=T]\n"
      "                   [--serve] [--clients=C] [--think=T]\n"
      "                   [--queue-depth=D] [--shards=S] [--service=T]\n"
      "                   [--op-timeout=T]\n"
      "                   [--sweep] [--jobs=J] [--trial-jobs=J]\n"
      "                   [--csv=FILE] [--json=FILE]\n"
      "       dex_sim_cli [script-file]        (legacy scripted mode)\n"
      "\n"
      "Every flag accepts both the =VALUE form and a following VALUE arg.\n"
      "backends:  %s\n"
      "scenarios: %s\n"
      "workloads: %s\n"
      "\n"
      "--batch-size drives B churn events per step through the batch-first\n"
      "apply() surface (DEX heals feasible batches with parallel walks,\n"
      "Cor. 2); --burst=K bursts only every K-th step. The per-step CSV\n"
      "trace streams to stdout (or --csv FILE) and one JSON summary per\n"
      "trial to stderr (or --json FILE). Same --seed => same adversary\n"
      "decision sequence across backends.\n"
      "\n"
      "--campaign runs a *phased* adversary instead of one --scenario\n"
      "strategy: ';'-separated phases of NAME[:BEGIN-END][,rate=R][,load=L]\n"
      "[,diurnal=P] — half-open step ranges (omitted = chained after the\n"
      "previous phase; END omitted = open), rate in [0,1] thins the phase's\n"
      "batch budget, load scales the traffic stream while the phase is\n"
      "active (diurnal=P makes it the peak of a P-step triangle wave).\n"
      "Bodies can also be mix(a*2+b*1) — per-step weighted draw — or\n"
      "replay(trace.csv), replaying a recorded churn trace's op/target\n"
      "columns. Example:\n"
      "  --campaign 'flash-crowd:0-50;mass-failure:50-60,rate=0.3;burst:60-'\n"
      "Steps covered by no phase are quiet (no churn, unit load). The\n"
      "campaign string is archived in the summary's campaign field, and all\n"
      "byte-determinism contracts (--jobs/--trial-jobs/--shards, engine\n"
      "equivalence at fixed:0/loss 0) hold under campaigns unchanged.\n"
      "\n"
      "--workload serves key-value traffic through every overlay between\n"
      "churn steps (requests route via p-cycle paths on DEX, BFS on the\n"
      "baselines): --ops-per-step requests per step over --keys distinct\n"
      "keys, --zipf exponent for the zipf/hotspot rank distribution,\n"
      "--read-frac read share. The trace gains ops/op_hops/opt_hops/\n"
      "failed_lookups/stretch/moved_keys/rehash_messages columns and the\n"
      "summary their totals.\n"
      "\n"
      "--engine event runs the same trial through the deterministic\n"
      "discrete-event core: churn constituents, walk settlement and KV\n"
      "requests become timestamped deliveries under --latency (fixed:T,\n"
      "uniform:A,B or exp:MEAN ticks), i.i.d. --loss (lost deliveries\n"
      "retransmit and count in the dropped column), --stragglers fraction\n"
      "of nodes at --straggler-factor x latency, and --period ticks between\n"
      "batch injections — latency above the period makes healing race\n"
      "churn. The trace gains vtime/in_flight/dropped columns; at\n"
      "--latency fixed:0 --loss 0 the output byte-matches the sync engine,\n"
      "and every --jobs/--trial-jobs value stays byte-identical.\n"
      "\n"
      "--serve (event engine + workload only) replaces the per-step request\n"
      "batches with the concurrent serving front-end: --clients closed-loop\n"
      "clients (issue -> routed request -> bounded per-home queue -> service\n"
      "-> routed response -> --think ticks -> reissue) share the same total\n"
      "op budget (steps x ops-per-step); a request arriving at a queue\n"
      "already --queue-depth deep is shed, churn-moved keys become rehash\n"
      "jobs occupying the same queues, --service ticks per op, and\n"
      "completions slower than --op-timeout ticks count as timeouts. The\n"
      "trace gains shed/timeouts/qdepth columns and the summary a serve\n"
      "block with p50/p99/p999 latency and throughput; --shards only groups\n"
      "per-shard histograms (merge-exact), so output stays byte-identical\n"
      "across shard counts.\n"
      "\n"
      "--sweep expands comma-listed --backend/--scenario/--n0/--batch-size/\n"
      "--seed axes into a grid (--backend all = every backend) and runs the\n"
      "trials on --jobs threads; rows gain a leading trial column and the\n"
      "output is byte-identical for every --jobs value. --trial-jobs adds\n"
      "threads *inside* each trial (parallel walk-port enumeration on DEX;\n"
      "also byte-identical) — raise it for few-but-huge trials instead of\n"
      "--jobs.\n",
      dex::sim::overlay_names(), dex::sim::strategy_names(),
      dex::sim::workload_names());
}

int run_scenario(int argc, char** argv) {
  ScenarioArgs a;
  a.spec.steps = 256;
  bool traffic_knob = false;
  bool event_knob = false;
  bool serve_knob = false;
  bool scenario_knob = false;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      std::string v;
      if (parse_flag(argc, argv, i, "backend", v)) {
        a.backends = split_csv(v);
      } else if (parse_flag(argc, argv, i, "scenario", v)) {
        a.scenarios = split_csv(v);
        scenario_knob = true;
      } else if (parse_flag(argc, argv, i, "campaign", v)) {
        a.spec.campaign = v;
      } else if (parse_flag(argc, argv, i, "n0", v)) {
        a.n0s.clear();
        for (const auto& s : split_csv(v)) a.n0s.push_back(parse_u64(s));
      } else if (parse_flag(argc, argv, i, "seed", v)) {
        a.seeds.clear();
        for (const auto& s : split_csv(v)) a.seeds.push_back(parse_u64(s));
      } else if (parse_flag(argc, argv, i, "batch-size", v)) {
        a.batch_sizes.clear();
        for (const auto& s : split_csv(v)) {
          a.batch_sizes.push_back(parse_u64(s));
          if (a.batch_sizes.back() == 0) {
            throw std::invalid_argument("--batch-size must be >= 1");
          }
        }
      } else if (parse_flag(argc, argv, i, "steps", v)) {
        a.spec.steps = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "min-n", v)) {
        a.spec.min_n = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "max-n", v)) {
        a.spec.max_n = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "warmup", v)) {
        a.spec.warmup_steps = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "insert-prob", v)) {
        a.opts.insert_prob = parse_double(v);
        if (!(a.opts.insert_prob >= 0.0 && a.opts.insert_prob <= 1.0)) {
          throw std::invalid_argument("--insert-prob must be in [0, 1], got " +
                                      v);
        }
      } else if (parse_flag(argc, argv, i, "gap-every", v)) {
        a.spec.gap_every = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "burst", v)) {
        a.spec.burst_every = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "workload", v)) {
        a.spec.traffic.workload = v;
      } else if (parse_flag(argc, argv, i, "ops-per-step", v)) {
        a.spec.traffic.ops_per_step = parse_u64(v);
        traffic_knob = true;
      } else if (parse_flag(argc, argv, i, "keys", v)) {
        a.spec.traffic.keyspace = parse_u64(v);
        traffic_knob = true;
      } else if (parse_flag(argc, argv, i, "zipf", v)) {
        a.spec.traffic.zipf_s = parse_double(v);
        traffic_knob = true;
      } else if (parse_flag(argc, argv, i, "read-frac", v)) {
        a.spec.traffic.read_fraction = parse_double(v);
        traffic_knob = true;
      } else if (parse_flag(argc, argv, i, "engine", v)) {
        if (v != "sync" && v != "event") {
          throw std::invalid_argument("--engine must be sync or event, got '" +
                                      v + "'");
        }
        a.spec.event.enabled = v == "event";
      } else if (parse_flag(argc, argv, i, "latency", v)) {
        const auto model = dex::sim::LatencyModel::parse(v);
        if (!model) {
          throw std::invalid_argument(
              "--latency must be fixed:T, uniform:A,B or exp:MEAN, got '" + v +
              "'");
        }
        a.spec.event.latency = *model;
        event_knob = true;
      } else if (parse_flag(argc, argv, i, "loss", v)) {
        a.spec.event.loss_rate = parse_double(v);
        event_knob = true;
      } else if (parse_flag(argc, argv, i, "stragglers", v)) {
        a.spec.event.straggler_fraction = parse_double(v);
        event_knob = true;
      } else if (parse_flag(argc, argv, i, "straggler-factor", v)) {
        a.spec.event.straggler_factor = parse_u64(v);
        event_knob = true;
      } else if (parse_flag(argc, argv, i, "period", v)) {
        a.spec.event.period = parse_u64(v);
        event_knob = true;
      } else if (parse_flag(argc, argv, i, "clients", v)) {
        a.spec.serve.clients = parse_u64(v);
        serve_knob = true;
      } else if (parse_flag(argc, argv, i, "think", v)) {
        a.spec.serve.think_ticks = parse_u64(v);
        serve_knob = true;
      } else if (parse_flag(argc, argv, i, "queue-depth", v)) {
        a.spec.serve.queue_depth = parse_u64(v);
        serve_knob = true;
      } else if (parse_flag(argc, argv, i, "shards", v)) {
        a.spec.serve.shards = parse_u64(v);
        serve_knob = true;
      } else if (parse_flag(argc, argv, i, "service", v)) {
        a.spec.serve.service_ticks = parse_u64(v);
        serve_knob = true;
      } else if (parse_flag(argc, argv, i, "op-timeout", v)) {
        a.spec.serve.op_timeout = parse_u64(v);
        serve_knob = true;
      } else if (parse_flag(argc, argv, i, "jobs", v)) {
        a.jobs = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "trial-jobs", v)) {
        a.trial_jobs = static_cast<unsigned>(parse_u64(v));
      } else if (parse_flag(argc, argv, i, "csv", v)) {
        a.csv_path = v;
      } else if (parse_flag(argc, argv, i, "json", v)) {
        a.json_path = v;
      } else if (arg == "--serve") {
        a.spec.serve.enabled = true;
      } else if (arg == "--sweep") {
        a.sweep = true;
      } else if (arg == "--no-trace") {
        a.trace = false;
      } else if (arg == "--help" || arg == "-h") {
        print_usage(stdout);
        return 0;
      } else {
        std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
        print_usage(stderr);
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad flag value: %s\n", e.what());
    return 2;
  }

  // "all" expands from the registry; only meaningful as a sweep axis.
  if (a.backends.size() == 1 && a.backends[0] == "all") {
    a.backends = dex::sim::known_overlays();
  }
  if (!a.sweep && (a.backends.size() > 1 || a.scenarios.size() > 1 ||
                   a.n0s.size() > 1 || a.seeds.size() > 1 ||
                   a.batch_sizes.size() > 1)) {
    std::fprintf(stderr,
                 "comma-listed axes expand to a grid only with --sweep\n");
    return 2;
  }
  const auto& overlays = dex::sim::known_overlays();
  for (const auto& b : a.backends) {
    if (std::find(overlays.begin(), overlays.end(), b) == overlays.end()) {
      std::fprintf(stderr, "unknown backend '%s' (valid: %s)\n", b.c_str(),
                   dex::sim::overlay_names());
      return 2;
    }
  }
  const auto& strategies = dex::sim::known_strategies();
  for (const auto& s : a.scenarios) {
    if (std::find(strategies.begin(), strategies.end(), s) ==
        strategies.end()) {
      std::fprintf(stderr, "unknown scenario '%s' (valid: %s)\n", s.c_str(),
                   dex::sim::strategy_names());
      return 2;
    }
  }
  if (!a.spec.campaign.empty()) {
    // The campaign's phases name their own strategies, so a scenario axis
    // next to it would be dead weight at best and contradictory at worst.
    if (scenario_knob) {
      std::fprintf(stderr,
                   "--campaign replaces --scenario; give one or the other\n");
      return 2;
    }
    std::string campaign_err;
    if (!dex::sim::parse_campaign_spec(a.spec.campaign, &campaign_err)) {
      std::fprintf(stderr, "bad --campaign: %s\n", campaign_err.c_str());
      return 2;
    }
  }
  const auto& workloads = dex::sim::known_workloads();
  if (a.spec.traffic.enabled()) {
    const auto& t = a.spec.traffic;
    if (std::find(workloads.begin(), workloads.end(), t.workload) ==
        workloads.end()) {
      std::fprintf(stderr, "unknown workload '%s' (valid: %s)\n",
                   t.workload.c_str(), dex::sim::workload_names());
      return 2;
    }
    if (t.ops_per_step == 0 || t.keyspace == 0) {
      std::fprintf(stderr,
                   "--ops-per-step and --keys must be >= 1 with a workload\n");
      return 2;
    }
    if (!(t.zipf_s > 0.0)) {
      std::fprintf(stderr, "--zipf must be > 0\n");
      return 2;
    }
    if (!(t.read_fraction >= 0.0 && t.read_fraction <= 1.0)) {
      std::fprintf(stderr, "--read-frac must be in [0, 1]\n");
      return 2;
    }
  } else if (traffic_knob) {
    std::fprintf(stderr,
                 "traffic flags (--ops-per-step/--keys/--zipf/--read-frac) "
                 "need --workload\n");
    return 2;
  }
  if (a.spec.event.enabled) {
    // Same predicate the engine asserts, surfaced as a usage error.
    if (!a.spec.event.valid()) {
      std::fprintf(stderr,
                   "event spec out of range: --loss in [0, 1), --stragglers "
                   "in [0, 1], --straggler-factor >= 1, --period >= 1\n");
      return 2;
    }
  } else if (event_knob) {
    std::fprintf(stderr,
                 "event flags (--latency/--loss/--stragglers/"
                 "--straggler-factor/--period) need --engine event\n");
    return 2;
  }
  if (a.spec.serve.enabled) {
    // Closed-loop clients live on the event clock and issue the workload's
    // requests; both prerequisites are hard.
    if (!a.spec.event.enabled || !a.spec.traffic.enabled()) {
      std::fprintf(stderr,
                   "--serve needs --engine event and a --workload\n");
      return 2;
    }
    // Same predicate the engine asserts, surfaced as a usage error.
    if (!a.spec.serve.valid()) {
      std::fprintf(stderr,
                   "serve spec out of range: --clients, --queue-depth, "
                   "--shards and --service must be >= 1\n");
      return 2;
    }
  } else if (serve_knob) {
    std::fprintf(stderr,
                 "serve flags (--clients/--think/--queue-depth/--shards/"
                 "--service/--op-timeout) need --serve\n");
    return 2;
  }
  if (a.spec.burst_every > 0 &&
      *std::max_element(a.batch_sizes.begin(), a.batch_sizes.end()) <= 1) {
    std::fprintf(stderr,
                 "--burst only paces batches; give it something to pace "
                 "with --batch-size > 1\n");
    return 2;
  }
  // Validate against the bounds the runner will actually use (a flag left
  // at 0 means "derive from n0" — see sim::resolve_bounds).
  for (std::size_t n0 : a.n0s) {
    const auto bounds = dex::sim::resolve_bounds(a.spec, n0);
    if (!bounds.valid()) {
      std::fprintf(stderr,
                   "population bounds must satisfy 3 <= min < max (got "
                   "min=%zu max=%zu for n0=%zu; defaults derive from --n0)\n",
                   bounds.min_n, bounds.max_n, n0);
      return 2;
    }
  }

  // One declarative plan covers both modes: the classic single run is a
  // one-trial grid. Every trial owns its overlay/strategy/RNG (spec.seed
  // drives the adversary; the overlay gets a salted derivation — §2 hides
  // only the algorithm's future flips), so the Executor can run them on any
  // number of threads with byte-identical output.
  dex::sim::ExperimentPlan plan;
  plan.backends = a.backends;
  plan.scenarios = a.scenarios;
  plan.populations = a.n0s;
  plan.batch_sizes = a.batch_sizes;
  plan.seeds = a.seeds;
  plan.base = a.spec;
  // One flag controls churn bias everywhere it applies.
  plan.base.warmup_insert_prob = a.opts.insert_prob;
  // The per-step degree scan only pays off when the trace is emitted.
  plan.base.measure_degree = a.trace;
  plan.opts = a.opts;
  // Fold the strategy knob into the label so the archived summary records
  // the full workload, not just its name.
  // A campaign supersedes the scenario axis: the unused default scenario
  // name must not leak into the archived label (the campaign string itself
  // is echoed as the summary's `campaign` field).
  if (!a.spec.campaign.empty()) plan.base.label = "campaign";
  plan.customize = [&a](dex::sim::TrialSpec& t) {
    if (t.spec.campaign.empty() &&
        (t.scenario == "churn" || t.scenario == "burst")) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "(insert_prob=%g)", a.opts.insert_prob);
      t.spec.label += buf;
    }
  };

  std::ofstream csv_file, json_file;
  std::ostream* csv_os = &std::cout;
  if (!a.csv_path.empty()) {
    csv_file.open(a.csv_path);
    if (!csv_file) {
      std::fprintf(stderr, "cannot open %s\n", a.csv_path.c_str());
      return 1;
    }
    csv_os = &csv_file;
  }
  std::ostream* json_os = &std::cerr;
  if (!a.json_path.empty()) {
    json_file.open(a.json_path);
    if (!json_file) {
      std::fprintf(stderr, "cannot open %s\n", a.json_path.c_str());
      return 1;
    }
    json_os = &json_file;
  }

  // Streaming emission: rows/summaries leave through the sinks as trials
  // deliver — no trace, and with --no-trace no per-step buffering at all.
  // Without --sweep the sinks drop the trial column/field, so single-run
  // output keeps the classic single-trial shape. (Column *values* are not
  // frozen across versions: e.g. used_type2/type2_steps now populate on
  // single-event DEX steps, where the pre-sweep CLI always emitted 0.)
  dex::sim::CsvTraceSink csv_sink(*csv_os, /*trial_column=*/a.sweep);
  dex::sim::JsonSummarySink json_sink(*json_os, /*trial_field=*/a.sweep);
  dex::sim::ExecutorOptions opts;
  opts.jobs = a.sweep ? a.jobs : 1;
  opts.trial_jobs = a.trial_jobs;
  opts.stream_steps = a.trace;
  opts.collect_results = false;
  dex::sim::Executor executor(opts);
  if (a.trace) executor.add_sink(csv_sink);
  executor.add_sink(json_sink);
  executor.run(plan.expand());
  return 0;
}

// ------------------------------------------------------------ script mode

struct Session {
  std::unique_ptr<dex::DexNetwork> net;
  std::unique_ptr<dex::Dht> dht;
  std::unique_ptr<dex::support::Rng> rng;
};

void cmd_stats(Session& s) {
  auto& net = *s.net;
  const auto g = net.snapshot();
  const auto mask = net.alive_mask();
  std::size_t max_deg = 0;
  for (auto u : net.alive_nodes()) max_deg = std::max(max_deg, g.degree(u));
  const auto spec = dex::graph::spectral_gap(g, mask);
  std::printf(
      "n=%zu p=%llu gap=%.4f max_degree=%zu coordinator=%u staggered=%d\n"
      "totals: rounds=%llu messages=%llu topology_changes=%llu "
      "inflations=%llu deflations=%llu\n",
      net.n(), static_cast<unsigned long long>(net.p()), spec.gap, max_deg,
      net.coordinator(), net.staggered_active() ? 1 : 0,
      static_cast<unsigned long long>(net.meter().total().rounds),
      static_cast<unsigned long long>(net.meter().total().messages),
      static_cast<unsigned long long>(net.meter().total().topology_changes),
      static_cast<unsigned long long>(net.inflation_count()),
      static_cast<unsigned long long>(net.deflation_count()));
}

void cmd_dot(Session& s) {
  auto& net = *s.net;
  std::printf("graph dex {\n");
  std::map<std::pair<dex::NodeId, dex::NodeId>, int> mult;
  net.cycle().for_each_edge([&](dex::Vertex x, dex::Vertex y) {
    auto a = net.mapping().owner(x);
    auto b = net.mapping().owner(y);
    if (a > b) std::swap(a, b);
    ++mult[{a, b}];
  });
  for (const auto& [e, m] : mult)
    std::printf("  n%u -- n%u [label=%d];\n", e.first, e.second, m);
  std::printf("}\n");
}

int run_script(int argc, char** argv) {
  std::istream* in = &std::cin;
  std::ifstream file;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    in = &file;
  }

  Session s;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(*in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd)) continue;

    if (cmd == "INIT") {
      std::size_t n0 = 16;
      std::uint64_t seed = 1;
      std::string m = "worstcase";
      ss >> n0 >> seed >> m;
      dex::Params prm;
      prm.seed = seed;
      prm.mode = m == "amortized" ? dex::RecoveryMode::Amortized
                                  : dex::RecoveryMode::WorstCase;
      s.net = std::make_unique<dex::DexNetwork>(n0, prm);
      s.dht = std::make_unique<dex::Dht>(*s.net);
      s.rng = std::make_unique<dex::support::Rng>(seed ^ 0xc11);
      std::printf("ok INIT n=%zu p=%llu\n", s.net->n(),
                  static_cast<unsigned long long>(s.net->p()));
      continue;
    }
    if (!s.net) {
      std::fprintf(stderr, "line %zu: INIT first\n", lineno);
      return 1;
    }

    if (cmd == "INSERT") {
      unsigned a = 0;
      ss >> a;
      if (!s.net->alive(a)) {
        std::fprintf(stderr, "line %zu: node %u not alive\n", lineno, a);
        return 1;
      }
      const auto u = s.net->insert(a);
      const auto& c = s.net->last_report().cost;
      std::printf("ok INSERT -> node %u (rounds=%llu msgs=%llu)\n", u,
                  static_cast<unsigned long long>(c.rounds),
                  static_cast<unsigned long long>(c.messages));
    } else if (cmd == "DELETE") {
      unsigned v = 0;
      ss >> v;
      if (!s.net->alive(v) || s.net->n() < 3) {
        std::fprintf(stderr, "line %zu: cannot delete %u\n", lineno, v);
        return 1;
      }
      s.net->remove(v);
      const auto& c = s.net->last_report().cost;
      std::printf("ok DELETE %u (rounds=%llu msgs=%llu)\n", v,
                  static_cast<unsigned long long>(c.rounds),
                  static_cast<unsigned long long>(c.messages));
    } else if (cmd == "CHURN") {
      std::size_t steps = 0;
      double prob = 0.5;
      ss >> steps >> prob;
      for (std::size_t i = 0; i < steps; ++i) {
        const auto nodes = s.net->alive_nodes();
        if (s.rng->chance(prob) || s.net->n() < 4) {
          s.net->insert(nodes[s.rng->below(nodes.size())]);
        } else {
          s.net->remove(nodes[s.rng->below(nodes.size())]);
        }
      }
      std::printf("ok CHURN %zu steps -> n=%zu\n", steps, s.net->n());
    } else if (cmd == "KILL_COORDINATOR") {
      const auto c = s.net->coordinator();
      s.net->remove(c);
      std::printf("ok KILL_COORDINATOR %u -> new coordinator %u\n", c,
                  s.net->coordinator());
    } else if (cmd == "PUT") {
      std::uint64_t k = 0, v = 0;
      ss >> k >> v;
      s.dht->put(k, v);
      std::printf("ok PUT %llu (msgs=%llu)\n",
                  static_cast<unsigned long long>(k),
                  static_cast<unsigned long long>(s.dht->last_cost().messages));
    } else if (cmd == "GET") {
      std::uint64_t k = 0;
      ss >> k;
      const auto v = s.dht->get(k);
      if (v) {
        std::printf("ok GET %llu = %llu (msgs=%llu)\n",
                    static_cast<unsigned long long>(k),
                    static_cast<unsigned long long>(*v),
                    static_cast<unsigned long long>(
                        s.dht->last_cost().messages));
      } else {
        std::printf("ok GET %llu = <absent>\n",
                    static_cast<unsigned long long>(k));
      }
    } else if (cmd == "STATS") {
      cmd_stats(s);
    } else if (cmd == "AUDIT") {
      s.net->check_invariants();
      std::printf("ok AUDIT (all invariants hold)\n");
    } else if (cmd == "DOT") {
      cmd_dot(s);
    } else {
      std::fprintf(stderr, "line %zu: unknown command '%s'\n", lineno,
                   cmd.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && (std::strncmp(argv[1], "--", 2) == 0 ||
                   std::strcmp(argv[1], "-h") == 0)) {
    return run_scenario(argc, argv);
  }
  return run_script(argc, argv);
}
