// Simulator CLI. Two modes:
//
// (1) Scenario mode — any backend x any adversary x any size from one
//     binary, driven by the ScenarioRunner; the per-step trace goes to
//     stdout as CSV and the aggregate summary to stderr as JSON:
//
//   $ ./dex_sim_cli --backend=flood --scenario=churn --n0=64 --steps=200
//   $ ./dex_sim_cli --backend dex-worstcase --scenario churn --batch-size 16
//
//     Flags (both --flag=VALUE and --flag VALUE forms work):
//            --backend=NAME   (dex-amortized, dex-worstcase, flood, lawsiu,
//                              randomflip, xheal)
//            --scenario=NAME  (churn, insert-only, delete-only, oscillate,
//                              targeted, load-attack, spectral,
//                              greedy-spectral, burst, flash-crowd,
//                              mass-failure)
//            --n0=N --steps=N --seed=S --min-n=N --max-n=N --warmup=N
//            --insert-prob=P --gap-every=K --no-trace
//            --batch-size=B   events per step (§5 batches; default 1)
//            --burst=K        burst batch_size every K steps, single events
//                             between (default 0 = batch every step)
//
// (2) Scripted mode (legacy) — drive a DexNetwork from a churn script
//     (stdin or file), for reproducing traces, debugging adversarial
//     sequences, and piping experiments from other tooling.
//
// Script commands (one per line, '#' comments):
//   INIT <n0> [seed] [worstcase|amortized]   (re)create the network
//   INSERT <attach_id>                       insert a node
//   DELETE <id>                              delete a node
//   CHURN <steps> <insert_prob>              random churn burst
//   KILL_COORDINATOR                         delete the coordinator
//   PUT <key> <value>       GET <key>        DHT operations
//   STATS                                    n/p/gap/degree/cost summary
//   AUDIT                                    run check_invariants()
//   DOT                                      Graphviz of the real network
//
//   $ printf 'INIT 32 7\nCHURN 100 0.6\nSTATS\nAUDIT\n' | ./dex_sim_cli

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "dex/dht.h"
#include "dex/network.h"
#include "graph/bfs.h"
#include "graph/spectral.h"
#include "sim/overlay.h"
#include "sim/scenario.h"
#include "support/prng.h"

namespace {

// ------------------------------------------------------------ scenario mode

struct ScenarioArgs {
  std::string backend = "dex-worstcase";
  std::string scenario = "churn";
  std::size_t n0 = 64;
  std::uint64_t seed = 1;
  dex::sim::ScenarioSpec spec;
  dex::sim::StrategyOptions opts;
  bool trace = true;
};

/// Accepts both `--name=value` and `--name value`: when arg is exactly
/// `--name`, the value is consumed from the next argv slot (advancing i).
bool parse_flag(int argc, char** argv, int& i, const char* name,
                std::string& out) {
  const std::string arg = argv[i];
  const std::string flag = std::string("--") + name;
  if (arg == flag) {
    if (i + 1 >= argc)
      throw std::invalid_argument("missing value for " + flag);
    out = argv[++i];
    return true;
  }
  const std::string prefix = flag + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

/// stoull that rejects what std::stoull silently accepts or reports badly:
/// negative input (wrapped to huge values), trailing garbage ("1e3"
/// parsing as 1), and non-numeric input (bare "stoull" exception text).
std::uint64_t parse_u64(const std::string& v) try {
  std::size_t pos = 0;
  std::uint64_t out = 0;
  // Require a leading digit: stoull itself skips whitespace and accepts a
  // sign, which would let " -1" wrap to 2^64-1.
  if (!v.empty() && std::isdigit(static_cast<unsigned char>(v[0]))) {
    out = std::stoull(v, &pos);
  }
  if (pos != v.size() || v.empty()) throw std::invalid_argument(v);
  return out;
} catch (const std::exception&) {  // invalid_argument or out_of_range
  throw std::invalid_argument("expected a non-negative integer, got '" + v +
                              "'");
}

/// stod with the same strictness (rejects "0.5x", clean message for "abc").
double parse_double(const std::string& v) try {
  std::size_t pos = 0;
  const double out = v.empty() ? 0.0 : std::stod(v, &pos);
  if (pos != v.size() || v.empty()) throw std::invalid_argument(v);
  return out;
} catch (const std::exception&) {  // invalid_argument or out_of_range
  throw std::invalid_argument("expected a number, got '" + v + "'");
}

void print_usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: dex_sim_cli [--backend=NAME] [--scenario=NAME] [--n0=N]\n"
      "                   [--steps=N] [--seed=S] [--min-n=N] [--max-n=N]\n"
      "                   [--warmup=N] [--insert-prob=P] [--gap-every=K]\n"
      "                   [--batch-size=B] [--burst=K] [--no-trace]\n"
      "       dex_sim_cli [script-file]        (legacy scripted mode)\n"
      "\n"
      "Flags take --flag=VALUE or --flag VALUE.\n"
      "backends:  %s\n"
      "scenarios: %s\n"
      "\n"
      "--batch-size drives B churn events per step through the batch-first\n"
      "apply() surface (DEX heals feasible batches with parallel walks,\n"
      "Cor. 2); --burst=K bursts only every K-th step. Scenario mode prints\n"
      "the per-step CSV trace on stdout and a JSON summary on stderr. Same\n"
      "--seed => same adversary decision sequence across backends.\n",
      dex::sim::overlay_names(), dex::sim::strategy_names());
}

int run_scenario(int argc, char** argv) {
  ScenarioArgs a;
  a.spec.steps = 256;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      std::string v;
      if (parse_flag(argc, argv, i, "backend", v)) {
        a.backend = v;
      } else if (parse_flag(argc, argv, i, "scenario", v)) {
        a.scenario = v;
      } else if (parse_flag(argc, argv, i, "n0", v)) {
        a.n0 = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "seed", v)) {
        a.seed = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "steps", v)) {
        a.spec.steps = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "min-n", v)) {
        a.spec.min_n = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "max-n", v)) {
        a.spec.max_n = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "warmup", v)) {
        a.spec.warmup_steps = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "insert-prob", v)) {
        a.opts.insert_prob = parse_double(v);
        if (!(a.opts.insert_prob >= 0.0 && a.opts.insert_prob <= 1.0)) {
          throw std::invalid_argument("--insert-prob must be in [0, 1], got " +
                                      v);
        }
      } else if (parse_flag(argc, argv, i, "gap-every", v)) {
        a.spec.gap_every = parse_u64(v);
      } else if (parse_flag(argc, argv, i, "batch-size", v)) {
        a.spec.batch_size = parse_u64(v);
        if (a.spec.batch_size == 0) {
          throw std::invalid_argument("--batch-size must be >= 1");
        }
      } else if (parse_flag(argc, argv, i, "burst", v)) {
        a.spec.burst_every = parse_u64(v);
      } else if (arg == "--no-trace") {
        a.trace = false;
      } else if (arg == "--help" || arg == "-h") {
        print_usage(stdout);
        return 0;
      } else {
        std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
        print_usage(stderr);
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bad flag value: %s\n", e.what());
    return 2;
  }
  // The adversary's random stream must be independent of the backend's
  // internal coins (the §2 model hides only the algorithm's future flips),
  // so the overlay gets a salted derivation of the user seed while the
  // runner — whose spec.seed lands in the emitted summary and must
  // reproduce the run — keeps the seed the user typed.
  a.spec.seed = a.seed;
  // Fold the strategy knob into the label so the archived summary records
  // the full workload, not just its name.
  a.spec.label = a.scenario;
  if (a.scenario == "churn" || a.scenario == "burst") {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "(insert_prob=%g)", a.opts.insert_prob);
    a.spec.label += buf;
  }
  // One flag controls churn bias everywhere it applies.
  a.spec.warmup_insert_prob = a.opts.insert_prob;
  // The per-step degree scan only pays off when the trace is emitted.
  a.spec.measure_degree = a.trace;
  a.spec.record_trace = a.trace;
  if (a.spec.burst_every > 0 && a.spec.batch_size <= 1) {
    std::fprintf(stderr,
                 "--burst only paces batches; give it something to pace "
                 "with --batch-size > 1\n");
    return 2;
  }
  // Validate against the bounds the runner will actually use (a flag left
  // at 0 means "derive from n0" — see sim::resolve_bounds).
  const auto bounds = dex::sim::resolve_bounds(a.spec, a.n0);
  if (!bounds.valid()) {
    std::fprintf(stderr,
                 "population bounds must satisfy 3 <= min < max (got "
                 "min=%zu max=%zu; defaults derive from --n0)\n",
                 bounds.min_n, bounds.max_n);
    return 2;
  }

  auto overlay = dex::sim::make_overlay(a.backend, a.n0,
                                        a.seed ^ 0x9e3779b97f4a7c15ULL);
  if (!overlay) {
    std::fprintf(stderr, "unknown backend '%s' (valid: %s)\n",
                 a.backend.c_str(), dex::sim::overlay_names());
    return 2;
  }
  auto strategy = dex::sim::make_strategy(a.scenario, a.opts);
  if (!strategy) {
    std::fprintf(stderr, "unknown scenario '%s' (valid: %s)\n",
                 a.scenario.c_str(), dex::sim::strategy_names());
    return 2;
  }

  dex::sim::ScenarioRunner runner(*overlay, *strategy, a.spec);
  const auto result = runner.run();
  if (a.trace) std::fputs(dex::sim::trace_csv(result).c_str(), stdout);
  std::fprintf(stderr, "%s\n", dex::sim::summary_json(result).c_str());
  return 0;
}

// ------------------------------------------------------------ script mode

struct Session {
  std::unique_ptr<dex::DexNetwork> net;
  std::unique_ptr<dex::Dht> dht;
  std::unique_ptr<dex::support::Rng> rng;
};

void cmd_stats(Session& s) {
  auto& net = *s.net;
  const auto g = net.snapshot();
  const auto mask = net.alive_mask();
  std::size_t max_deg = 0;
  for (auto u : net.alive_nodes()) max_deg = std::max(max_deg, g.degree(u));
  const auto spec = dex::graph::spectral_gap(g, mask);
  std::printf(
      "n=%zu p=%llu gap=%.4f max_degree=%zu coordinator=%u staggered=%d\n"
      "totals: rounds=%llu messages=%llu topology_changes=%llu "
      "inflations=%llu deflations=%llu\n",
      net.n(), static_cast<unsigned long long>(net.p()), spec.gap, max_deg,
      net.coordinator(), net.staggered_active() ? 1 : 0,
      static_cast<unsigned long long>(net.meter().total().rounds),
      static_cast<unsigned long long>(net.meter().total().messages),
      static_cast<unsigned long long>(net.meter().total().topology_changes),
      static_cast<unsigned long long>(net.inflation_count()),
      static_cast<unsigned long long>(net.deflation_count()));
}

void cmd_dot(Session& s) {
  auto& net = *s.net;
  std::printf("graph dex {\n");
  std::map<std::pair<dex::NodeId, dex::NodeId>, int> mult;
  net.cycle().for_each_edge([&](dex::Vertex x, dex::Vertex y) {
    auto a = net.mapping().owner(x);
    auto b = net.mapping().owner(y);
    if (a > b) std::swap(a, b);
    ++mult[{a, b}];
  });
  for (const auto& [e, m] : mult)
    std::printf("  n%u -- n%u [label=%d];\n", e.first, e.second, m);
  std::printf("}\n");
}

int run_script(int argc, char** argv) {
  std::istream* in = &std::cin;
  std::ifstream file;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    in = &file;
  }

  Session s;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(*in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ss(line);
    std::string cmd;
    if (!(ss >> cmd)) continue;

    if (cmd == "INIT") {
      std::size_t n0 = 16;
      std::uint64_t seed = 1;
      std::string m = "worstcase";
      ss >> n0 >> seed >> m;
      dex::Params prm;
      prm.seed = seed;
      prm.mode = m == "amortized" ? dex::RecoveryMode::Amortized
                                  : dex::RecoveryMode::WorstCase;
      s.net = std::make_unique<dex::DexNetwork>(n0, prm);
      s.dht = std::make_unique<dex::Dht>(*s.net);
      s.rng = std::make_unique<dex::support::Rng>(seed ^ 0xc11);
      std::printf("ok INIT n=%zu p=%llu\n", s.net->n(),
                  static_cast<unsigned long long>(s.net->p()));
      continue;
    }
    if (!s.net) {
      std::fprintf(stderr, "line %zu: INIT first\n", lineno);
      return 1;
    }

    if (cmd == "INSERT") {
      unsigned a = 0;
      ss >> a;
      if (!s.net->alive(a)) {
        std::fprintf(stderr, "line %zu: node %u not alive\n", lineno, a);
        return 1;
      }
      const auto u = s.net->insert(a);
      const auto& c = s.net->last_report().cost;
      std::printf("ok INSERT -> node %u (rounds=%llu msgs=%llu)\n", u,
                  static_cast<unsigned long long>(c.rounds),
                  static_cast<unsigned long long>(c.messages));
    } else if (cmd == "DELETE") {
      unsigned v = 0;
      ss >> v;
      if (!s.net->alive(v) || s.net->n() < 3) {
        std::fprintf(stderr, "line %zu: cannot delete %u\n", lineno, v);
        return 1;
      }
      s.net->remove(v);
      const auto& c = s.net->last_report().cost;
      std::printf("ok DELETE %u (rounds=%llu msgs=%llu)\n", v,
                  static_cast<unsigned long long>(c.rounds),
                  static_cast<unsigned long long>(c.messages));
    } else if (cmd == "CHURN") {
      std::size_t steps = 0;
      double prob = 0.5;
      ss >> steps >> prob;
      for (std::size_t i = 0; i < steps; ++i) {
        const auto nodes = s.net->alive_nodes();
        if (s.rng->chance(prob) || s.net->n() < 4) {
          s.net->insert(nodes[s.rng->below(nodes.size())]);
        } else {
          s.net->remove(nodes[s.rng->below(nodes.size())]);
        }
      }
      std::printf("ok CHURN %zu steps -> n=%zu\n", steps, s.net->n());
    } else if (cmd == "KILL_COORDINATOR") {
      const auto c = s.net->coordinator();
      s.net->remove(c);
      std::printf("ok KILL_COORDINATOR %u -> new coordinator %u\n", c,
                  s.net->coordinator());
    } else if (cmd == "PUT") {
      std::uint64_t k = 0, v = 0;
      ss >> k >> v;
      s.dht->put(k, v);
      std::printf("ok PUT %llu (msgs=%llu)\n",
                  static_cast<unsigned long long>(k),
                  static_cast<unsigned long long>(s.dht->last_cost().messages));
    } else if (cmd == "GET") {
      std::uint64_t k = 0;
      ss >> k;
      const auto v = s.dht->get(k);
      if (v) {
        std::printf("ok GET %llu = %llu (msgs=%llu)\n",
                    static_cast<unsigned long long>(k),
                    static_cast<unsigned long long>(*v),
                    static_cast<unsigned long long>(
                        s.dht->last_cost().messages));
      } else {
        std::printf("ok GET %llu = <absent>\n",
                    static_cast<unsigned long long>(k));
      }
    } else if (cmd == "STATS") {
      cmd_stats(s);
    } else if (cmd == "AUDIT") {
      s.net->check_invariants();
      std::printf("ok AUDIT (all invariants hold)\n");
    } else if (cmd == "DOT") {
      cmd_dot(s);
    } else {
      std::fprintf(stderr, "line %zu: unknown command '%s'\n", lineno,
                   cmd.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && (std::strncmp(argv[1], "--", 2) == 0 ||
                   std::strcmp(argv[1], "-h") == 0)) {
    return run_scenario(argc, argv);
  }
  return run_script(argc, argv);
}
