// A replication-free key-value store on the DEX DHT (§4.4.4): keys survive
// arbitrary churn because responsibility is tied to virtual vertices, which
// the self-healing layer re-homes on every membership change.
//
// Stores a corpus, churns 30% of the network (including killing the
// coordinator a few times and crossing a type-2 rebuild), then audits every
// key.
//
//   $ ./dht_store [keys=2000] [seed=3]

#include <cstdio>
#include <cstdlib>

#include "dex/dht.h"
#include "dex/network.h"
#include "metrics/stats.h"
#include "support/prng.h"

int main(int argc, char** argv) {
  const std::size_t keys = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                    : 2000;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  dex::Params prm;
  prm.seed = seed;
  prm.mode = dex::RecoveryMode::WorstCase;
  dex::DexNetwork net(128, prm);
  dex::Dht dht(net);
  dex::support::Rng rng(seed ^ 0xd417);

  std::printf("storing %zu keys on a %zu-node overlay...\n", keys, net.n());
  std::vector<double> put_costs;
  for (std::uint64_t k = 0; k < keys; ++k) {
    dht.put(k, dex::support::mix64(k));
    put_costs.push_back(static_cast<double>(dht.last_cost().messages));
  }
  std::printf("  put cost: mean %.1f msgs, p99 %.0f\n",
              dex::metrics::summarize(put_costs).mean,
              dex::metrics::summarize(put_costs).p99);

  std::printf("churning (grow to 600, kill coordinator x5, shrink to 90)...\n");
  while (net.n() < 600) {
    const auto nodes = net.alive_nodes();
    net.insert(nodes[rng.below(nodes.size())]);
  }
  for (int i = 0; i < 5; ++i) {
    net.remove(net.coordinator());
  }
  while (net.n() > 90) {
    const auto nodes = net.alive_nodes();
    net.remove(nodes[rng.below(nodes.size())]);
  }
  net.check_invariants();
  std::printf("  network now n=%zu, p=%llu, rebuilds: %llu inflations, "
              "%llu deflations\n",
              net.n(), static_cast<unsigned long long>(net.p()),
              static_cast<unsigned long long>(net.inflation_count()),
              static_cast<unsigned long long>(net.deflation_count()));

  std::printf("auditing all %zu keys...\n", keys);
  std::size_t lost = 0, wrong = 0;
  std::vector<double> get_costs;
  for (std::uint64_t k = 0; k < keys; ++k) {
    const auto v = dht.get(k);
    if (!v) {
      ++lost;
    } else if (*v != dex::support::mix64(k)) {
      ++wrong;
    }
    get_costs.push_back(static_cast<double>(dht.last_cost().messages));
  }
  std::printf("  lost: %zu, corrupted: %zu (both must be 0)\n", lost, wrong);
  std::printf("  get cost: mean %.1f msgs, p99 %.0f\n",
              dex::metrics::summarize(get_costs).mean,
              dex::metrics::summarize(get_costs).p99);
  std::printf("  rehash transfers across rebuilds: %llu msgs over %llu "
              "rebuild(s)\n",
              static_cast<unsigned long long>(dht.rehash_messages()),
              static_cast<unsigned long long>(dht.rehash_count()));
  return lost + wrong == 0 ? 0 : 1;
}
