// Figure-1 style visualization for arbitrary sizes: prints the virtual
// p-cycle → real-node mapping of a live DexNetwork as a table plus Graphviz
// DOT, before and after churn, so the re-balancing is visible.
//
//   $ ./visualize_mapping [n0=7] [churn=10] [seed=2]
//   $ ./visualize_mapping 7 10 2 | dot -Tsvg > mapping.svg   # with graphviz

#include <cstdio>
#include <cstdlib>
#include <map>

#include "dex/network.h"
#include "support/prng.h"

namespace {

void print_mapping(const dex::DexNetwork& net, const char* title) {
  std::printf("-- %s: n=%zu, p=%llu --\n", title, net.n(),
              static_cast<unsigned long long>(net.p()));
  for (dex::NodeId u : net.alive_nodes()) {
    std::printf("node %3u simulates {", u);
    bool first = true;
    for (dex::Vertex z : net.mapping().sim(u)) {
      std::printf("%s%llu", first ? "" : ",",
                  static_cast<unsigned long long>(z));
      first = false;
    }
    std::printf("}  load=%u degree=%u%s\n", net.mapping().load(u),
                3 * net.mapping().load(u),
                u == net.coordinator() ? "  [coordinator]" : "");
  }
}

void print_dot(const dex::DexNetwork& net) {
  std::printf("graph dex_network {\n  layout=circo;\n");
  std::map<std::pair<dex::NodeId, dex::NodeId>, int> mult;
  net.cycle().for_each_edge([&](dex::Vertex x, dex::Vertex y) {
    auto a = net.mapping().owner(x);
    auto b = net.mapping().owner(y);
    if (a > b) std::swap(a, b);
    ++mult[{a, b}];
  });
  for (const auto& [e, m] : mult) {
    std::printf("  n%u -- n%u [label=%d];\n", e.first, e.second, m);
  }
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n0 = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 7;
  const std::size_t churn =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2;

  dex::Params prm;
  prm.seed = seed;
  dex::DexNetwork net(n0, prm);
  dex::support::Rng rng(seed + 99);

  print_mapping(net, "initial balanced mapping (cf. paper Fig. 1)");
  std::printf("\n");

  for (std::size_t t = 0; t < churn; ++t) {
    const auto nodes = net.alive_nodes();
    if (rng.chance(0.6) || net.n() <= 4) {
      net.insert(nodes[rng.below(nodes.size())]);
    } else {
      net.remove(nodes[rng.below(nodes.size())]);
    }
  }
  net.check_invariants();
  print_mapping(net, "after churn (still balanced & surjective)");
  std::printf("\n// Graphviz of the real network:\n");
  print_dot(net);
  return 0;
}
