#include "metrics/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/assert.h"

namespace dex::metrics {

void Table::add_row(std::vector<std::string> cells) {
  DEX_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << std::string(width[c] + 2, '-') << "|";
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(std::uint64_t v) { return std::to_string(v); }

}  // namespace dex::metrics
