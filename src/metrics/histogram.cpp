#include "metrics/histogram.h"

#include <algorithm>
#include <bit>

namespace dex::metrics {

namespace {
constexpr std::uint64_t kSubBuckets = 1ULL
                                      << LatencyHistogram::kSubBucketBits;
}  // namespace

std::size_t LatencyHistogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  // Top bit position h >= kSubBucketBits; the octave's sub-bucket is the
  // kSubBucketBits bits below the top bit. Octave 1 (values in
  // [kSubBuckets, 2*kSubBuckets)) continues the exact range seamlessly:
  // its sub-buckets have width 1.
  const unsigned h = 63u - static_cast<unsigned>(std::countl_zero(value));
  const unsigned octave = h - kSubBucketBits + 1;
  const std::uint64_t sub = (value >> (h - kSubBucketBits)) - kSubBuckets;
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(octave) << kSubBucketBits) + sub);
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t index) {
  const std::uint64_t octave = index >> kSubBucketBits;
  if (octave == 0) return index;  // exact range
  const std::uint64_t sub = index & (kSubBuckets - 1);
  const std::uint64_t width = 1ULL << (octave - 1);
  const std::uint64_t lower = (kSubBuckets + sub) << (octave - 1);
  return lower + width - 1;
}

void LatencyHistogram::record(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  const std::size_t idx = bucket_index(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  buckets_[idx] += weight;
  count_ += weight;
  sum_ += value * weight;
  max_ = std::max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

std::uint64_t LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Same rank rule as metrics::summarize: index floor(q * (count - 1))
  // into the sorted samples; walk the cumulative counts to its bucket.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > rank) return std::min(bucket_upper(i), max_);
  }
  return max_;  // unreachable when counts are consistent
}

void LatencyHistogram::clear() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

}  // namespace dex::metrics
