#pragma once

/// \file stats.h
/// Small numeric summaries for the benches: per-step cost series condensed
/// into mean / percentiles / max, plus a least-squares slope against log n
/// (used to check the O(log n) growth claims of Theorem 1).

#include <cstdint>
#include <vector>

namespace dex::metrics {

struct Summary {
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
  std::size_t count = 0;
};

[[nodiscard]] Summary summarize(std::vector<double> values);

/// Least-squares fit y ≈ a + b·x; returns {a, b, r2}.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
};
[[nodiscard]] LinearFit fit_line(const std::vector<double>& x,
                                 const std::vector<double>& y);

}  // namespace dex::metrics
