#pragma once

/// \file histogram.h
/// LatencyHistogram: a mergeable log-linear (HdrHistogram-style) bucketed
/// histogram over non-negative integer tick values, built for the serving
/// front-end's tail-latency accounting (src/serve/). metrics/stats.h
/// answers percentiles by sorting the sample vector — fine for per-step
/// cost series, unusable for millions of per-op latencies spread across
/// shards. This histogram records in O(1), merges by elementwise count
/// addition (associative and commutative, so shard-merge == global — the
/// property that makes per-shard recording invisible in reported
/// quantiles), and answers quantiles with bounded relative error.
///
/// Bucket layout: values below 2^kSubBucketBits are exact; above, each
/// octave [2^h, 2^{h+1}) splits into 2^kSubBucketBits equal sub-buckets,
/// so a bucket's width is at most its lower bound / 2^kSubBucketBits —
/// relative quantile error <= 2^-kSubBucketBits (3.125% at 5 bits),
/// pinned against the sort-based reference by tests/test_histogram.cpp.

#include <cstdint>
#include <vector>

namespace dex::metrics {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 sub-buckets per octave; quantile
  /// estimates land within 1/32 of the true sample value.
  static constexpr unsigned kSubBucketBits = 5;

  /// Adds one sample. O(1); the bucket array grows lazily to the highest
  /// octave seen, so small-valued histograms stay small.
  void record(std::uint64_t value) { record(value, 1); }
  void record(std::uint64_t value, std::uint64_t weight);

  /// Elementwise count addition plus exact sum/max folding. Associative
  /// and commutative: merging per-shard histograms in any grouping or
  /// order yields the same buckets as recording everything globally.
  void merge(const LatencyHistogram& other);

  /// The q-quantile (q clamped to [0, 1]) under the same rank rule
  /// metrics::summarize uses — rank = floor(q * (count - 1)) into the
  /// sorted sample sequence — reported as the *upper bound* of the bucket
  /// holding that rank, so the estimate never understates the true sample
  /// and overstates it by at most a factor 2^-kSubBucketBits. 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Exact sum of recorded values (not bucket-rounded), so mean() carries
  /// no bucketing error at all.
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  /// Exact maximum recorded value (0 when empty).
  [[nodiscard]] std::uint64_t max() const { return max_; }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  void clear();

  /// Bucket index of a value (exposed for the merge/associativity tests).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value);
  /// Largest value mapping to bucket `index` — what quantile() reports.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index);

 private:
  std::vector<std::uint64_t> buckets_;  ///< grown lazily to the top index
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace dex::metrics
