#pragma once

/// \file table.h
/// Markdown-style table printer used by every bench to emit the paper's
/// tables/series in a uniform, diffable format.

#include <cstdint>
#include <string>
#include <vector>

namespace dex::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells);
  /// Renders as a GitHub-flavored markdown table.
  [[nodiscard]] std::string to_string() const;
  void print() const;

  /// Numeric formatting helpers.
  static std::string num(double v, int precision = 2);
  static std::string integer(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dex::metrics
