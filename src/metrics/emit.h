#pragma once

/// \file emit.h
/// Machine-readable emitters shared by the scenario engine, the benches and
/// the CLI: a CSV writer (RFC-4180-ish quoting, stable formatting so traces
/// are byte-comparable across runs) and a minimal JSON object builder for
/// aggregate summaries. Both render to strings so callers can diff, hash, or
/// stream them.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dex::metrics {

/// Formats a double with enough digits to round-trip, trimming trailing
/// zeros ("1.5", not "1.500000"); integral values print without a point.
[[nodiscard]] std::string format_double(double v);

/// One rendered CSV line: cells joined with the same quoting CsvWriter
/// applies, plus the trailing newline. The streaming sinks (sim/sinks.h)
/// write rows through this as they happen instead of accumulating them.
[[nodiscard]] std::string csv_line(const std::vector<std::string>& cells);

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Cells are quoted only when they contain a comma, quote, or newline.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::string to_string() const;
  void write(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Flat-ish JSON object builder: string/number/bool fields plus nested
/// objects, emitted in insertion order.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, const std::string& value);
  JsonObject& add(const std::string& key, const char* value);
  JsonObject& add(const std::string& key, double value);
  JsonObject& add(const std::string& key, std::uint64_t value);
  JsonObject& add(const std::string& key, bool value);
  JsonObject& add(const std::string& key, const JsonObject& value);

  [[nodiscard]] std::string to_string() const;

 private:
  /// Values are pre-rendered JSON fragments.
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace dex::metrics
