#include "metrics/emit.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/assert.h"

namespace dex::metrics {

namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string csv_escape(const std::string& s) {
  if (!needs_quoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // RFC 8259: control characters must be escaped.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string csv_line(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out += ',';
    out += csv_escape(cells[i]);
  }
  out += '\n';
  return out;
}

std::string format_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  DEX_ASSERT_MSG(cells.size() == header_.size(), "CSV row width mismatch");
  rows_.push_back(std::move(cells));
}

void CsvWriter::write(std::ostream& os) const {
  os << csv_line(header_);
  for (const auto& row : rows_) os << csv_line(row);
}

std::string CsvWriter::to_string() const {
  std::ostringstream ss;
  write(ss);
  return ss.str();
}

JsonObject& JsonObject::add(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, json_escape(value));
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, const char* value) {
  return add(key, std::string(value));
}

JsonObject& JsonObject::add(const std::string& key, double value) {
  fields_.emplace_back(key,
                       std::isfinite(value) ? format_double(value) : "null");
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, std::uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::add(const std::string& key, const JsonObject& value) {
  fields_.emplace_back(key, value.to_string());
  return *this;
}

std::string JsonObject::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += json_escape(fields_[i].first);
    out += ": ";
    out += fields_[i].second;
  }
  out += "}";
  return out;
}

}  // namespace dex::metrics
