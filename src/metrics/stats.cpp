#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

namespace dex::metrics {

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  double total = 0;
  for (double v : values) total += v;
  s.mean = total / static_cast<double>(values.size());
  auto pct = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1));
    return values[idx];
  };
  s.p50 = pct(0.50);
  s.p95 = pct(0.95);
  s.p99 = pct(0.99);
  s.max = values.back();
  return s;
}

LinearFit fit_line(const std::vector<double>& x,
                   const std::vector<double>& y) {
  LinearFit f;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return f;
  f.slope = (dn * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / dn;
  const double sst = syy - sy * sy / dn;
  double sse = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = y[i] - (f.intercept + f.slope * x[i]);
    sse += e * e;
  }
  f.r2 = sst > 1e-12 ? 1.0 - sse / sst : 1.0;
  return f;
}

}  // namespace dex::metrics
