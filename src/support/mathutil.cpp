#include "support/mathutil.h"

#include <cmath>

#include "support/assert.h"

namespace dex::support {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a) * b) % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  DEX_ASSERT(m != 0);
  if (m == 1) return 0;
  std::uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

namespace {

/// One Miller–Rabin round; returns true if n passes for witness a.
bool miller_rabin_round(std::uint64_t n, std::uint64_t a, std::uint64_t d,
                        unsigned r) {
  a %= n;
  if (a == 0) return true;
  std::uint64_t x = powmod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (unsigned i = 1; i < r; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  unsigned r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 2^64 (Sorenson & Webster).
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (!miller_rabin_round(n, a, d, r)) return false;
  }
  return true;
}

std::optional<std::uint64_t> modinv(std::uint64_t a, std::uint64_t m) {
  DEX_ASSERT(m > 1);
  std::int64_t t = 0, new_t = 1;
  std::int64_t r = static_cast<std::int64_t>(m),
               new_r = static_cast<std::int64_t>(a % m);
  while (new_r != 0) {
    const std::int64_t q = r / new_r;
    t -= q * new_t;
    std::swap(t, new_t);
    r -= q * new_r;
    std::swap(r, new_r);
  }
  if (r != 1) return std::nullopt;  // not coprime
  if (t < 0) t += static_cast<std::int64_t>(m);
  return static_cast<std::uint64_t>(t);
}

std::optional<std::uint64_t> smallest_prime_in(std::uint64_t lo,
                                               std::uint64_t hi) {
  for (std::uint64_t n = lo + 1; n < hi; ++n) {
    if (is_prime(n)) return n;
  }
  return std::nullopt;
}

std::uint64_t inflation_prime(std::uint64_t p) {
  auto q = smallest_prime_in(4 * p, 8 * p);
  DEX_ASSERT_MSG(q.has_value(), "Bertrand range (4p, 8p) must contain a prime");
  return *q;
}

std::uint64_t deflation_prime(std::uint64_t p) {
  auto q = smallest_prime_in(p / 8, p / 4);
  DEX_ASSERT_MSG(q.has_value(), "range (p/8, p/4) must contain a prime");
  return *q;
}

std::uint64_t scaled_log(double c, std::uint64_t n) {
  if (n < 2) return 1;
  const double v = c * std::log(static_cast<double>(n));
  return static_cast<std::uint64_t>(std::ceil(v));
}

std::vector<std::uint64_t> primes_up_to(std::uint64_t limit) {
  std::vector<bool> sieve(limit + 1, true);
  std::vector<std::uint64_t> out;
  if (limit < 2) return out;
  sieve[0] = sieve[1] = false;
  for (std::uint64_t i = 2; i <= limit; ++i) {
    if (!sieve[i]) continue;
    out.push_back(i);
    for (std::uint64_t j = i * i; j <= limit; j += i) sieve[j] = false;
  }
  return out;
}

}  // namespace dex::support
