#pragma once

/// \file worker_pool.h
/// parallel_for — the one intra-trial parallelism primitive. The token
/// engine's port enumeration (sim/token_engine.h) is embarrassingly
/// parallel within a round; everything stateful (RNG draws, congestion,
/// accepts) stays sequential, so the parallel part can be a plain
/// fork-join: spawn jobs-1 transient threads, share the index range
/// through an atomic chunk cursor, and have the caller work too.
///
/// Transient threads keep the primitive composable with the trial-level
/// Executor (sim/experiment.h): no shared pool state, no lifetime
/// entanglement — a trial running on an Executor worker can fan out its
/// own walks under the same overall --jobs budget. Spawn cost (~10µs per
/// thread) is irrelevant against the walk epochs it shards, and the
/// small-range cutoff below skips the fan-out entirely where it could
/// matter. Determinism: the function only decides *who* computes each
/// index, never *what* — results are positionally identical to the serial
/// loop for every jobs value.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace dex::support {

/// Invokes body(i) for every i in [0, count), sharded over `jobs` threads
/// (the calling thread included). body must be safe to call concurrently
/// for distinct indices. Serial when jobs <= 1 or the range is too small
/// to amortize the spawns — callers must not encode semantics in the
/// execution mode (and cannot: the index->result mapping is identical).
template <typename Body>
void parallel_for(std::size_t count, unsigned jobs, const Body& body) {
  constexpr std::size_t kSerialCutoff = 256;
  constexpr std::size_t kChunk = 64;
  if (jobs <= 1 || count < kSerialCutoff) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs, (count + kChunk - 1) / kChunk));
  std::atomic<std::size_t> next{0};
  const auto run = [&] {
    for (;;) {
      const std::size_t begin = next.fetch_add(kChunk);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + kChunk, count);
      for (std::size_t i = begin; i < end; ++i) body(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned t = 1; t < workers; ++t) pool.emplace_back(run);
  run();
  for (auto& th : pool) th.join();
}

}  // namespace dex::support
