#pragma once

/// \file prng.h
/// Deterministic, splittable pseudo-random number generation.
///
/// Experiments must be exactly reproducible from a single seed, and the
/// adaptive adversary of the paper is allowed to observe *past* random
/// choices. We therefore use a small, fast, owned generator (xoshiro256**
/// seeded via splitmix64) rather than std::mt19937 so that (a) the stream is
/// identical across platforms, and (b) the adversary can be handed a replay
/// log without entangling it with the algorithm's future draws.

#include <array>
#include <cstdint>
#include <vector>

namespace dex::support {

/// splitmix64 step; used for seeding and for hashing ids.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix (for hash functions, e.g. the DHT's key hash).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** 1.0 — public-domain generator by Blackman & Vigna.
/// Satisfies UniformRandomBitGenerator, so it composes with <random> if
/// ever needed, but we provide the few distributions we use directly.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xdeadbeefcafef00dULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    // 128-bit multiply; rejection loop has expected < 2 iterations.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) { return uniform01() < p; }

  /// Pick a uniformly random element index of a non-empty container size.
  template <class Container>
  [[nodiscard]] std::size_t index_of(const Container& c) {
    return static_cast<std::size_t>(below(c.size()));
  }

  /// Fisher–Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for subsystems that must not
  /// perturb the parent stream, e.g. metric sampling).
  [[nodiscard]] Rng split() {
    std::uint64_t s = (*this)();
    return Rng(s);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dex::support
