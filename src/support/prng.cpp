#include "support/prng.h"

// All of Rng is header-inline; this translation unit exists so the support
// library has a stable archive member and so static checks on the header run
// in isolation.

namespace dex::support {

static_assert(Rng::min() == 0);
static_assert(Rng::max() == ~0ULL);

}  // namespace dex::support
