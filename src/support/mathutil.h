#pragma once

/// \file mathutil.h
/// Number-theoretic helpers used by the p-cycle expander family (Def. 1 of
/// the paper): modular arithmetic, modular inverses, deterministic
/// Miller–Rabin primality for 64-bit integers, and prime search in the
/// Bertrand ranges (4p, 8p) and (p/8, p/4) used by inflation/deflation.

#include <cstdint>
#include <optional>
#include <vector>

namespace dex::support {

/// (a * b) mod m without overflow, for m < 2^63.
[[nodiscard]] std::uint64_t mulmod(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t m);

/// (base ^ exp) mod m.
[[nodiscard]] std::uint64_t powmod(std::uint64_t base, std::uint64_t exp,
                                   std::uint64_t m);

/// Deterministic Miller–Rabin for all 64-bit integers
/// (witness set {2,3,5,7,11,13,17,19,23,29,31,37}).
[[nodiscard]] bool is_prime(std::uint64_t n);

/// Extended Euclid: returns x with (a*x) mod m == 1, if gcd(a, m) == 1.
[[nodiscard]] std::optional<std::uint64_t> modinv(std::uint64_t a,
                                                  std::uint64_t m);

/// Smallest prime p with lo < p < hi (strict), or nullopt if none.
[[nodiscard]] std::optional<std::uint64_t> smallest_prime_in(std::uint64_t lo,
                                                             std::uint64_t hi);

/// Smallest prime in the inflation range (4p, 8p). Bertrand's postulate
/// guarantees existence for p >= 1 (there is a prime in (4p, 8p)).
[[nodiscard]] std::uint64_t inflation_prime(std::uint64_t p);

/// Smallest prime in the deflation range (p/8, p/4); requires p large enough
/// that the open interval contains a prime (p >= 12 suffices: (1.5,3)∋2).
[[nodiscard]] std::uint64_t deflation_prime(std::uint64_t p);

/// ceil(a*x / b) for non-negative integers, overflow-safe for a*x < 2^63.
[[nodiscard]] constexpr std::uint64_t ceil_div_mul(std::uint64_t a,
                                                   std::uint64_t x,
                                                   std::uint64_t b) {
  return (a * x + b - 1) / b;
}

/// floor(log2(n)) for n >= 1.
[[nodiscard]] constexpr unsigned floor_log2(std::uint64_t n) {
  unsigned r = 0;
  while (n >>= 1) ++r;
  return r;
}

/// Natural-log-based ceil(c * ln n), used for walk lengths Θ(log n).
[[nodiscard]] std::uint64_t scaled_log(double c, std::uint64_t n);

/// All primes <= limit (simple sieve; used by tests and the p-cycle sweep).
[[nodiscard]] std::vector<std::uint64_t> primes_up_to(std::uint64_t limit);

}  // namespace dex::support
