#pragma once

/// \file assert.h
/// Invariant-checking macros for the DEX library.
///
/// DEX_ASSERT is always on (it guards algorithmic invariants whose violation
/// would silently corrupt an experiment, so we never compile it out, even in
/// release builds — the checks are O(1) and off the hot paths).
/// DEX_HEAVY_ASSERT guards O(n)-or-worse audits and is enabled only when
/// DEX_ENABLE_HEAVY_ASSERTS is defined (the test suite defines it).

#include <cstdio>
#include <cstdlib>

namespace dex::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "DEX_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace dex::support

#define DEX_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::dex::support::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define DEX_ASSERT_MSG(expr, msg)                                  \
  do {                                                             \
    if (!(expr))                                                   \
      ::dex::support::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef DEX_ENABLE_HEAVY_ASSERTS
#define DEX_HEAVY_ASSERT(expr) DEX_ASSERT(expr)
#else
#define DEX_HEAVY_ASSERT(expr) \
  do {                         \
  } while (0)
#endif
