#pragma once

/// \file random_flip.h
/// A flip-chain-maintained almost-d-regular overlay in the spirit of
/// Cooper–Dyer–Handley (reference [6] of the paper) and of the stochastic
/// P2P constructions of [23]: joins subdivide d/2 random edges, leaves pair
/// the orphaned ports, and a trickle of random "flips" (2-opt edge swaps)
/// keeps the graph close to a uniform random regular graph — a good
/// expander *in expectation*, with no worst-case guarantee. Second
/// probabilistic contrast row for the spectral-gap experiment.

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/multigraph.h"
#include "sim/meters.h"
#include "support/prng.h"

namespace dex::baselines {

using graph::NodeId;

class RandomFlipNetwork {
 public:
  /// d must be even and >= 4.
  RandomFlipNetwork(std::size_t n0, std::size_t d, std::uint64_t seed,
                    std::size_t flips_per_step = 4);

  NodeId insert();
  void remove(NodeId victim);

  [[nodiscard]] std::size_t n() const { return n_alive_; }
  [[nodiscard]] bool alive(NodeId u) const {
    return u < alive_.size() && alive_[u];
  }
  [[nodiscard]] std::vector<NodeId> alive_nodes() const;
  [[nodiscard]] std::vector<bool> alive_mask() const { return alive_; }
  /// Degree straight off the incidence lists (no snapshot materialization).
  /// A self-loop counts 2 here (vs 1 in Multigraph::degree).
  [[nodiscard]] std::size_t degree(NodeId u) const {
    return incident_[u].size();
  }
  [[nodiscard]] std::size_t max_degree() const;

  [[nodiscard]] graph::Multigraph snapshot() const;
  [[nodiscard]] const sim::CostMeter& meter() const { return meter_; }
  [[nodiscard]] sim::StepCost last_step() const { return last_; }

  /// Live neighbors of u off the incidence list (self-loops emit u twice,
  /// matching snapshot()'s loop-counts-2 convention). Always available.
  [[nodiscard]] bool live_ports(NodeId u, std::vector<NodeId>& out) const;

  /// Churn journal for incremental CSR maintenance (graph/csr.h); borrowed.
  void set_view_journal(graph::ViewDelta* j) { journal_ = j; }

 private:
  struct Edge {
    NodeId a;
    NodeId b;
  };
  void run_flips();
  [[nodiscard]] std::size_t random_edge();
  std::size_t alloc_edge(NodeId a, NodeId b);
  void free_edge(std::size_t e);
  void journal_dirty(NodeId u) {
    if (journal_ && !journal_->full) journal_->dirty.push_back(u);
  }

  std::size_t d_;
  std::size_t flips_per_step_;
  support::Rng rng_;
  sim::CostMeter meter_;
  sim::StepCost last_;
  std::vector<bool> alive_;
  std::size_t n_alive_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::size_t> free_slots_;  ///< recycled edge indices
  std::vector<std::vector<std::size_t>> incident_;  ///< node -> edge indices
  graph::ViewDelta* journal_ = nullptr;
};

}  // namespace dex::baselines
