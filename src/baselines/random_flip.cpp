#include "baselines/random_flip.h"

#include <algorithm>

#include "support/assert.h"
#include "support/mathutil.h"

namespace dex::baselines {

namespace {

constexpr graph::NodeId kFree = graph::kInvalidNode;

}  // namespace

RandomFlipNetwork::RandomFlipNetwork(std::size_t n0, std::size_t d,
                                     std::uint64_t seed,
                                     std::size_t flips_per_step)
    : d_(d), flips_per_step_(flips_per_step), rng_(seed) {
  DEX_ASSERT(d >= 4 && d % 2 == 0 && n0 > d);
  alive_.assign(n0, true);
  n_alive_ = n0;
  incident_.assign(n0, {});
  // Configuration-model start: d stubs per node, matched randomly; re-draw
  // self-pairs a few times to keep the start clean (leftovers are fine).
  std::vector<NodeId> stubs;
  for (NodeId u = 0; u < n0; ++u) {
    for (std::size_t k = 0; k < d; ++k) stubs.push_back(u);
  }
  rng_.shuffle(stubs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (stubs[i] == stubs[i + 1] && i + 3 < stubs.size()) {
      std::swap(stubs[i + 1], stubs[i + 2]);
    }
    alloc_edge(stubs[i], stubs[i + 1]);
  }
}

std::vector<NodeId> RandomFlipNetwork::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(n_alive_);
  for (NodeId u = 0; u < alive_.size(); ++u) {
    if (alive_[u]) out.push_back(u);
  }
  return out;
}

std::size_t RandomFlipNetwork::alloc_edge(NodeId a, NodeId b) {
  journal_dirty(a);
  journal_dirty(b);
  std::size_t e;
  if (!free_slots_.empty()) {
    e = free_slots_.back();
    free_slots_.pop_back();
    edges_[e] = {a, b};
  } else {
    e = edges_.size();
    edges_.push_back({a, b});
  }
  incident_[a].push_back(e);
  incident_[b].push_back(e);
  return e;
}

void RandomFlipNetwork::free_edge(std::size_t e) {
  for (NodeId side : {edges_[e].a, edges_[e].b}) {
    if (side == kFree) continue;
    journal_dirty(side);
    auto& inc = incident_[side];
    auto it = std::find(inc.begin(), inc.end(), e);
    if (it != inc.end()) inc.erase(it);
    // A self-loop has two incidence entries; erase the second too.
    if (edges_[e].a == edges_[e].b) {
      auto jt = std::find(inc.begin(), inc.end(), e);
      if (jt != inc.end()) inc.erase(jt);
      break;
    }
  }
  edges_[e] = {kFree, kFree};
  free_slots_.push_back(e);
}

std::size_t RandomFlipNetwork::random_edge() {
  // Locating a uniformly random edge costs a Θ(log n) walk.
  meter_.add_messages(
      support::scaled_log(2.0, std::max<std::size_t>(n_alive_, 2)));
  while (true) {
    const auto e = static_cast<std::size_t>(rng_.below(edges_.size()));
    if (edges_[e].a != kFree) return e;
  }
}

void RandomFlipNetwork::run_flips() {
  // 2-opt switch: pick edges (a,b), (c,d); rewire to (a,d), (c,b).
  for (std::size_t i = 0; i < flips_per_step_; ++i) {
    const std::size_t e1 = random_edge();
    const std::size_t e2 = random_edge();
    if (e1 == e2) continue;
    // Self-loops complicate incidence fixing; skip them.
    if (edges_[e1].a == edges_[e1].b || edges_[e2].a == edges_[e2].b)
      continue;
    auto fix = [&](NodeId u, std::size_t from, std::size_t to) {
      auto& inc = incident_[u];
      auto it = std::find(inc.begin(), inc.end(), from);
      DEX_ASSERT(it != inc.end());
      *it = to;
    };
    journal_dirty(edges_[e1].a);
    journal_dirty(edges_[e1].b);
    journal_dirty(edges_[e2].a);
    journal_dirty(edges_[e2].b);
    fix(edges_[e1].b, e1, e2);
    fix(edges_[e2].b, e2, e1);
    std::swap(edges_[e1].b, edges_[e2].b);
    meter_.add_topology(4);
    meter_.add_messages(4);
  }
  meter_.add_rounds(2);
}

NodeId RandomFlipNetwork::insert() {
  meter_.end_step();
  const NodeId u = static_cast<NodeId>(alive_.size());
  alive_.push_back(true);
  ++n_alive_;
  incident_.emplace_back();
  if (journal_ && !journal_->full) journal_->born.push_back(u);
  // Subdivide d/2 random non-loop edges through u.
  for (std::size_t k = 0; k < d_ / 2; ++k) {
    std::size_t e = random_edge();
    for (int guard = 0; edges_[e].a == edges_[e].b && guard < 32; ++guard)
      e = random_edge();
    const NodeId a = edges_[e].a;
    const NodeId b = edges_[e].b;
    free_edge(e);
    alloc_edge(a, u);
    alloc_edge(u, b);
    meter_.add_topology(3);
    meter_.add_messages(3);
  }
  run_flips();
  last_ = meter_.end_step();
  return u;
}

void RandomFlipNetwork::remove(NodeId victim) {
  meter_.end_step();
  DEX_ASSERT(alive(victim) && n_alive_ >= d_ + 2);
  // Collect victim's non-loop neighbor endpoints, free all incident edges,
  // then pair the orphaned ports up.
  std::vector<NodeId> others;
  std::vector<std::size_t> dead_edges = incident_[victim];
  std::sort(dead_edges.begin(), dead_edges.end());
  dead_edges.erase(std::unique(dead_edges.begin(), dead_edges.end()),
                   dead_edges.end());
  for (std::size_t e : dead_edges) {
    const auto& ed = edges_[e];
    if (!(ed.a == victim && ed.b == victim)) {
      others.push_back(ed.a == victim ? ed.b : ed.a);
    }
    free_edge(e);
    meter_.add_topology(1);
  }
  incident_[victim].clear();
  rng_.shuffle(others);
  for (std::size_t i = 0; i + 1 < others.size(); i += 2) {
    alloc_edge(others[i], others[i + 1]);
    meter_.add_topology(1);
    meter_.add_messages(2);
  }
  alive_[victim] = false;
  --n_alive_;
  if (journal_ && !journal_->full) journal_->died.push_back(victim);
  run_flips();
  meter_.add_rounds(2);
  last_ = meter_.end_step();
}

std::size_t RandomFlipNetwork::max_degree() const {
  std::size_t best = 0;
  for (NodeId u = 0; u < alive_.size(); ++u) {
    if (alive_[u]) best = std::max(best, incident_[u].size());
  }
  return best;
}

bool RandomFlipNetwork::live_ports(NodeId u, std::vector<NodeId>& out) const {
  out.clear();
  for (const std::size_t e : incident_[u]) {
    const Edge& ed = edges_[e];
    if (!alive_[ed.a] || !alive_[ed.b]) continue;  // mirror snapshot's mask
    out.push_back(ed.a == u ? ed.b : ed.a);
  }
  return true;
}

graph::Multigraph RandomFlipNetwork::snapshot() const {
  graph::Multigraph g(alive_.size());
  for (const auto& e : edges_) {
    if (e.a == kFree) continue;
    if (alive_[e.a] && alive_[e.b]) {
      g.add_edge(e.a, e.b);
      if (e.a == e.b) g.add_edge(e.a, e.b);  // loop counts 2 here
    }
  }
  return g;
}

}  // namespace dex::baselines
