#pragma once

/// \file law_siu.h
/// The Law–Siu overlay (reference [18] of the paper): the network is the
/// union of d random Hamiltonian cycles. Joins splice the newcomer into a
/// random position of each cycle (randomness obtained by O(log n)-step
/// random walks); leaves splice the node out by joining its cycle
/// neighbors. The construction is an expander *with high probability* and
/// only against an oblivious adversary — Table 1's contrast row. An
/// adaptive adversary that sees the topology can delete nodes along a
/// sparse cut and degrade the expansion permanently, which the paper's §1
/// argues and our bench E4 demonstrates.

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/multigraph.h"
#include "sim/meters.h"
#include "support/prng.h"

namespace dex::baselines {

using graph::NodeId;

class LawSiuNetwork {
 public:
  /// n0 initial nodes arranged in d independent random Hamiltonian cycles.
  LawSiuNetwork(std::size_t n0, std::size_t d, std::uint64_t seed);

  /// Adds a node; returns its id. Splices into a random position per cycle.
  NodeId insert();

  /// Removes a node; cycle neighbors reconnect.
  void remove(NodeId victim);

  [[nodiscard]] std::size_t n() const { return n_alive_; }
  [[nodiscard]] bool alive(NodeId u) const {
    return u < alive_.size() && alive_[u];
  }
  [[nodiscard]] std::vector<NodeId> alive_nodes() const;
  [[nodiscard]] std::vector<bool> alive_mask() const { return alive_; }
  [[nodiscard]] std::size_t degree(NodeId /*u*/) const { return 2 * cycles_; }
  [[nodiscard]] std::size_t max_degree() const { return 2 * cycles_; }

  [[nodiscard]] graph::Multigraph snapshot() const;
  /// Topology that *would* result from removing `victim` (cycle neighbors
  /// spliced together) — the oracle an adaptive adversary (§2: unbounded
  /// computation, full knowledge) uses to pick greedy spectral deletions.
  [[nodiscard]] graph::Multigraph snapshot_without(NodeId victim) const;
  [[nodiscard]] const sim::CostMeter& meter() const { return meter_; }
  [[nodiscard]] sim::StepCost last_step() const { return last_; }

  /// Live neighbors of u straight off the succ/pred arrays — the same
  /// multiset snapshot() emits for u (2-cycles collapse to one edge), in
  /// per-cycle {succ, pred} order. Always available.
  [[nodiscard]] bool live_ports(NodeId u, std::vector<NodeId>& out) const;

  /// Churn journal for incremental CSR maintenance (graph/csr.h); borrowed.
  void set_view_journal(graph::ViewDelta* j) { journal_ = j; }

 private:
  void splice_in(std::size_t c, NodeId u, NodeId after);
  void splice_out(std::size_t c, NodeId u);
  [[nodiscard]] NodeId random_alive();
  void journal_dirty(NodeId u) {
    if (journal_ && !journal_->full) journal_->dirty.push_back(u);
  }

  std::size_t cycles_;
  support::Rng rng_;
  sim::CostMeter meter_;
  sim::StepCost last_;
  std::vector<bool> alive_;
  std::size_t n_alive_ = 0;
  /// succ_[c][u] / pred_[c][u]: cycle c's successor/predecessor of node u.
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  graph::ViewDelta* journal_ = nullptr;
};

}  // namespace dex::baselines
