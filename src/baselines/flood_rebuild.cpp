#include "baselines/flood_rebuild.h"

#include <algorithm>

#include "dex/pcycle.h"
#include "support/assert.h"
#include "support/mathutil.h"

namespace dex::baselines {

FloodRebuildNetwork::FloodRebuildNetwork(std::size_t n0) {
  DEX_ASSERT(n0 >= 2);
  alive_.assign(n0, true);
  n_alive_ = n0;
  rebuild();
  meter_.reset();
}

std::vector<NodeId> FloodRebuildNetwork::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(n_alive_);
  for (NodeId u = 0; u < alive_.size(); ++u) {
    if (alive_[u]) out.push_back(u);
  }
  return out;
}

void FloodRebuildNetwork::rebuild() {
  // Global recompute: p tracks (4n, 8n); every vertex is re-dealt
  // round-robin, so nearly every edge moves.
  const std::uint64_t old_p = p_;
  p_ = support::inflation_prime(static_cast<std::uint64_t>(n_alive_));
  const auto nodes = alive_nodes();
  std::vector<NodeId> fresh(p_);
  for (Vertex z = 0; z < p_; ++z) fresh[z] = nodes[z % nodes.size()];
  std::uint64_t changed = 0;
  if (p_ == old_p) {
    for (Vertex z = 0; z < p_; ++z) {
      if (owner_[z] != fresh[z]) changed += 6;
    }
  } else {
    changed = (3 * (p_ + old_p)) / 2;
  }
  owner_ = std::move(fresh);
  load_.assign(alive_.size(), 0);
  for (Vertex z = 0; z < p_; ++z) ++load_[owner_[z]];
  // Flood of the membership change: 2 messages per edge, 2·diam rounds
  // (diam of an expander contraction: O(log n)).
  meter_.add_messages(3 * p_);
  meter_.add_rounds(2 * support::scaled_log(2.0, n_alive_));
  meter_.add_topology(changed);
}

NodeId FloodRebuildNetwork::insert() {
  meter_.end_step();
  const NodeId u = static_cast<NodeId>(alive_.size());
  alive_.push_back(true);
  ++n_alive_;
  rebuild();
  last_ = meter_.end_step();
  return u;
}

void FloodRebuildNetwork::remove(NodeId victim) {
  meter_.end_step();
  DEX_ASSERT(alive(victim) && n_alive_ >= 3);
  alive_[victim] = false;
  --n_alive_;
  rebuild();
  last_ = meter_.end_step();
}

std::size_t FloodRebuildNetwork::degree(NodeId u) const {
  DEX_ASSERT(alive(u));
  return 3 * load_[u];
}

std::size_t FloodRebuildNetwork::max_degree() const {
  return 3 * *std::max_element(load_.begin(), load_.end());
}

graph::Multigraph FloodRebuildNetwork::snapshot() const {
  graph::Multigraph g(alive_.size());
  const PCycle cyc(p_);
  cyc.for_each_edge(
      [&](Vertex x, Vertex y) { g.add_edge(owner_[x], owner_[y]); });
  return g;
}

}  // namespace dex::baselines
