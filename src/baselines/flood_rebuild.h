#pragma once

/// \file flood_rebuild.h
/// The naive flooding baseline of §3: on every insertion/deletion a neighbor
/// floods the change through the network, every node learns the full
/// membership, and the expander (here: the same p-cycle contraction DEX
/// uses, with a freshly balanced round-robin mapping) is recomputed from
/// global knowledge. Guarantees are as strong as DEX's, but every step costs
/// Θ(n) messages and Θ(n) topology changes — the row our Table 1 bench
/// contrasts DEX against.

#include <cstdint>
#include <vector>

#include "graph/multigraph.h"
#include "sim/meters.h"

namespace dex::baselines {

using graph::NodeId;

class FloodRebuildNetwork {
 public:
  explicit FloodRebuildNetwork(std::size_t n0);

  NodeId insert();
  void remove(NodeId victim);

  [[nodiscard]] std::size_t n() const { return n_alive_; }
  [[nodiscard]] bool alive(NodeId u) const {
    return u < alive_.size() && alive_[u];
  }
  [[nodiscard]] std::vector<NodeId> alive_nodes() const;
  [[nodiscard]] std::vector<bool> alive_mask() const { return alive_; }
  /// Real degree of one node: 3 edges per virtual vertex it owns. The
  /// round-robin rebuild keeps the mapping balanced, so loads differ by at
  /// most one vertex — but they do differ (p is never a multiple of n), and
  /// per-node consumers (load attacks, degree histograms) need the real
  /// value, not the collapsed maximum.
  [[nodiscard]] std::size_t degree(NodeId u) const;
  [[nodiscard]] std::size_t max_degree() const;

  [[nodiscard]] graph::Multigraph snapshot() const;
  [[nodiscard]] const sim::CostMeter& meter() const { return meter_; }
  [[nodiscard]] sim::StepCost last_step() const { return last_; }
  [[nodiscard]] std::uint64_t p() const { return p_; }

 private:
  void rebuild();

  sim::CostMeter meter_;
  sim::StepCost last_;
  std::vector<bool> alive_;
  std::size_t n_alive_ = 0;
  std::uint64_t p_ = 0;
  /// Round-robin owner of each virtual vertex, recomputed every step.
  std::vector<NodeId> owner_;
  /// Virtual vertices per node, maintained by rebuild() so the per-node
  /// degree queries are O(1) instead of an O(p) owner scan.
  std::vector<std::size_t> load_;
};

}  // namespace dex::baselines
