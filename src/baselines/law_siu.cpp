#include "baselines/law_siu.h"

#include <numeric>

#include "support/assert.h"
#include "support/mathutil.h"

namespace dex::baselines {

LawSiuNetwork::LawSiuNetwork(std::size_t n0, std::size_t d,
                             std::uint64_t seed)
    : cycles_(d), rng_(seed) {
  DEX_ASSERT(n0 >= 3 && d >= 1);
  alive_.assign(n0, true);
  n_alive_ = n0;
  succ_.assign(d, std::vector<NodeId>(n0, 0));
  pred_.assign(d, std::vector<NodeId>(n0, 0));
  std::vector<NodeId> order(n0);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t c = 0; c < d; ++c) {
    rng_.shuffle(order);
    for (std::size_t i = 0; i < n0; ++i) {
      const NodeId a = order[i];
      const NodeId b = order[(i + 1) % n0];
      succ_[c][a] = b;
      pred_[c][b] = a;
    }
  }
}

std::vector<NodeId> LawSiuNetwork::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(n_alive_);
  for (NodeId u = 0; u < alive_.size(); ++u) {
    if (alive_[u]) out.push_back(u);
  }
  return out;
}

NodeId LawSiuNetwork::random_alive() {
  // A join locates a uniformly random position by a random walk of length
  // Θ(log n) (the Law–Siu randomness source); we sample uniformly and charge
  // the walk's cost.
  const std::uint64_t len =
      support::scaled_log(3.0, std::max<std::uint64_t>(n_alive_, 2));
  meter_.add_messages(len);
  meter_.add_rounds(len);
  while (true) {
    const NodeId u = static_cast<NodeId>(rng_.below(alive_.size()));
    if (alive_[u]) return u;
  }
}

void LawSiuNetwork::splice_in(std::size_t c, NodeId u, NodeId after) {
  const NodeId nxt = succ_[c][after];
  // u rides the step's `born` entry; the patcher re-enumerates born rows.
  journal_dirty(after);
  journal_dirty(nxt);
  succ_[c][after] = u;
  pred_[c][u] = after;
  succ_[c][u] = nxt;
  pred_[c][nxt] = u;
  meter_.add_topology(3);  // remove (after,nxt); add (after,u),(u,nxt)
  meter_.add_messages(3);
}

void LawSiuNetwork::splice_out(std::size_t c, NodeId u) {
  const NodeId prv = pred_[c][u];
  const NodeId nxt = succ_[c][u];
  journal_dirty(prv);
  journal_dirty(nxt);
  succ_[c][prv] = nxt;
  pred_[c][nxt] = prv;
  meter_.add_topology(3);  // remove (prv,u),(u,nxt); add (prv,nxt)
  meter_.add_messages(3);
}

NodeId LawSiuNetwork::insert() {
  meter_.end_step();
  const NodeId u = static_cast<NodeId>(alive_.size());
  alive_.push_back(true);
  ++n_alive_;
  if (journal_ && !journal_->full) journal_->born.push_back(u);
  for (std::size_t c = 0; c < cycles_; ++c) {
    succ_[c].push_back(u);
    pred_[c].push_back(u);
    // Splice after a random *existing* node (never after the newcomer
    // itself, which would detach it into a self-cycle).
    NodeId after;
    do {
      after = random_alive();
    } while (after == u);
    splice_in(c, u, after);
  }
  last_ = meter_.end_step();
  return u;
}

void LawSiuNetwork::remove(NodeId victim) {
  meter_.end_step();
  DEX_ASSERT(alive(victim) && n_alive_ >= 4);
  for (std::size_t c = 0; c < cycles_; ++c) splice_out(c, victim);
  meter_.add_messages(2 * cycles_);  // leave notifications
  meter_.add_rounds(2);
  alive_[victim] = false;
  --n_alive_;
  if (journal_ && !journal_->full) journal_->died.push_back(victim);
  last_ = meter_.end_step();
}

bool LawSiuNetwork::live_ports(NodeId u, std::vector<NodeId>& out) const {
  out.clear();
  for (std::size_t c = 0; c < cycles_; ++c) {
    const NodeId s = succ_[c][u];
    if (s == u) continue;  // degenerate single-node cycle
    const NodeId p = pred_[c][u];
    // Mirror snapshot()'s 2-cycle guard: a u <-> s pair is one edge, so
    // exactly one of {succ, pred} may emit it.
    if (u < s || succ_[c][s] != u) out.push_back(s);
    if (p < u || s != p) out.push_back(p);
  }
  return true;
}

graph::Multigraph LawSiuNetwork::snapshot() const {
  return snapshot_without(graph::kInvalidNode);
}

graph::Multigraph LawSiuNetwork::snapshot_without(NodeId victim) const {
  graph::Multigraph g(alive_.size());
  for (std::size_t c = 0; c < cycles_; ++c) {
    for (NodeId u = 0; u < alive_.size(); ++u) {
      if (!alive_[u] || u == victim) continue;
      NodeId s = succ_[c][u];
      if (s == victim) s = succ_[c][victim];  // splice past the victim
      // Each cycle edge once; a 2-cycle (u <-> s with succ(s) == u) would
      // double-add, so order-guard it.
      const NodeId s_next = s == victim ? succ_[c][victim] : succ_[c][s];
      if (u < s || s_next != u) g.add_edge(u, s);
    }
  }
  return g;
}

}  // namespace dex::baselines
