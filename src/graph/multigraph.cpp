#include "graph/multigraph.h"

#include <algorithm>

namespace dex::graph {

bool Multigraph::remove_edge(NodeId u, NodeId v) {
  DEX_ASSERT(u < adj_.size() && v < adj_.size());
  auto& au = adj_[u];
  auto it = std::find(au.begin(), au.end(), v);
  if (it == au.end()) return false;
  au.erase(it);
  if (u != v) {
    auto& av = adj_[v];
    auto jt = std::find(av.begin(), av.end(), u);
    DEX_ASSERT_MSG(jt != av.end(), "multigraph port lists out of sync");
    av.erase(jt);
  }
  return true;
}

void Multigraph::isolate(NodeId u) {
  DEX_ASSERT(u < adj_.size());
  for (NodeId v : adj_[u]) {
    if (v == u) continue;
    auto& av = adj_[v];
    av.erase(std::remove(av.begin(), av.end(), u), av.end());
  }
  adj_[u].clear();
}

std::size_t Multigraph::multiplicity(NodeId u, NodeId v) const {
  DEX_ASSERT(u < adj_.size() && v < adj_.size());
  return static_cast<std::size_t>(
      std::count(adj_[u].begin(), adj_[u].end(), v));
}

bool Multigraph::is_consistent() const {
  for (NodeId u = 0; u < adj_.size(); ++u) {
    for (NodeId v : adj_[u]) {
      if (v >= adj_.size()) return false;
      if (v == u) continue;
      if (multiplicity(v, u) != multiplicity(u, v)) return false;
    }
  }
  return true;
}

}  // namespace dex::graph
