#include "graph/csr.h"

#include <algorithm>

#include "graph/bfs.h"

namespace dex::graph {

void CsrView::build(const Multigraph& g, const std::vector<bool>& alive) {
  const std::size_t n = g.node_count();
  const auto is_alive = [&alive](NodeId u) {
    return alive.empty() || alive[u];
  };
  alive_.assign(n, 0);
  alive_count_ = 0;
  offsets_.resize(n + 1);
  std::size_t total = 0;
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u] = static_cast<std::uint32_t>(total);
    if (!is_alive(u)) continue;
    alive_[u] = 1;
    ++alive_count_;
    total += g.degree(u);  // upper bound; dead neighbors trimmed below
  }
  offsets_[n] = static_cast<std::uint32_t>(total);
  edges_.resize(total);
  std::size_t at = 0;
  for (NodeId u = 0; u < n; ++u) {
    offsets_[u] = static_cast<std::uint32_t>(at);
    if (alive_[u]) {
      for (const NodeId v : g.ports(u)) {
        if (is_alive(v)) edges_[at++] = v;
      }
    }
  }
  offsets_[n] = static_cast<std::uint32_t>(at);
  edges_.resize(at);
}

void csr_bfs_fill(const CsrView& g, NodeId src, std::vector<std::uint32_t>& dist,
                  std::vector<NodeId>& scratch) {
  dist.assign(g.node_count(), kUnreached);
  if (!g.alive(src)) return;
  scratch.clear();
  scratch.push_back(src);
  dist[src] = 0;
  // Flat frontier queue: `head` walks the current level while new
  // discoveries append — level boundaries are implicit in the distances.
  std::size_t head = 0;
  while (head < scratch.size()) {
    const NodeId u = scratch[head++];
    const std::uint32_t d = dist[u] + 1;
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] != kUnreached) continue;
      dist[v] = d;
      scratch.push_back(v);
    }
  }
}

std::vector<NodeId> csr_shortest_path(const CsrView& g, NodeId src,
                                      NodeId dst) {
  if (src == dst) return {src};
  if (!g.alive(src) || !g.alive(dst)) return {};
  // Parent pointers in discovery order; identical tie-breaks to the
  // Multigraph BFS (ports scanned in source order).
  std::vector<NodeId> parent(g.node_count(), kInvalidNode);
  std::vector<NodeId> queue{src};
  parent[src] = src;
  std::size_t head = 0;
  while (head < queue.size() && parent[dst] == kInvalidNode) {
    const NodeId u = queue[head++];
    for (const NodeId v : g.neighbors(u)) {
      if (parent[v] != kInvalidNode) continue;
      parent[v] = u;
      queue.push_back(v);
    }
  }
  if (parent[dst] == kInvalidNode) return {};
  std::vector<NodeId> path{dst};
  for (NodeId u = dst; u != src; u = parent[u]) path.push_back(parent[u]);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace dex::graph
