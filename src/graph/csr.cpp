#include "graph/csr.h"

#include <algorithm>

#include "graph/bfs.h"
#include "support/assert.h"

namespace dex::graph {

void CsrView::build(const Multigraph& g, const std::vector<bool>& alive) {
  const std::size_t n = g.node_count();
  const auto is_alive = [&alive](NodeId u) {
    return alive.empty() || alive[u];
  };
  alive_.assign(n, 0);
  alive_count_ = 0;
  row_start_.resize(n);
  row_len_.resize(n);
  std::size_t total = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (!is_alive(u)) continue;
    alive_[u] = 1;
    ++alive_count_;
    total += g.degree(u);  // upper bound; dead neighbors trimmed below
  }
  edges_.resize(total);
  std::size_t at = 0;
  for (NodeId u = 0; u < n; ++u) {
    row_start_[u] = static_cast<std::uint32_t>(at);
    std::size_t len = 0;
    if (alive_[u]) {
      for (const NodeId v : g.ports(u)) {
        if (is_alive(v)) {
          edges_[at + len] = v;
          ++len;
        }
      }
    }
    row_len_[u] = static_cast<std::uint32_t>(len);
    at += len;
  }
  edges_.resize(at);
  live_edge_count_ = at;
  garbage_ = 0;
  stamp_.assign(n, 0);
  epoch_ = 0;
  built_ = true;
}

void CsrView::build_from_ports(const std::vector<bool>& alive,
                               const PortsFn& ports) {
  const std::size_t n = alive.size();
  alive_.assign(n, 0);
  alive_count_ = 0;
  row_start_.assign(n, 0);
  row_len_.assign(n, 0);
  edges_.clear();
  for (NodeId u = 0; u < n; ++u) {
    if (!alive[u]) continue;
    alive_[u] = 1;
    ++alive_count_;
    row_scratch_.clear();
    ports(u, row_scratch_);
    row_start_[u] = static_cast<std::uint32_t>(edges_.size());
    row_len_[u] = static_cast<std::uint32_t>(row_scratch_.size());
    edges_.insert(edges_.end(), row_scratch_.begin(), row_scratch_.end());
  }
  live_edge_count_ = edges_.size();
  garbage_ = 0;
  stamp_.assign(n, 0);
  epoch_ = 0;
  built_ = true;
}

void CsrView::ensure_capacity(NodeId id) {
  if (id < row_len_.size()) return;
  const std::size_t n = static_cast<std::size_t>(id) + 1;
  row_start_.resize(n, 0);
  row_len_.resize(n, 0);
  alive_.resize(n, 0);
  stamp_.resize(n, 0);
}

void CsrView::rewrite_row(NodeId u, const PortsFn& ports) {
  row_scratch_.clear();
  ports(u, row_scratch_);
  const std::size_t new_len = row_scratch_.size();
  const std::size_t old_len = row_len_[u];
  live_edge_count_ += new_len;
  live_edge_count_ -= old_len;
  if (new_len <= old_len) {
    // In place. An unchanged adjacency reproduces the row byte-for-byte,
    // which is what makes superset-dirty deltas (and stale re-patches after
    // a full rebuild) idempotent.
    std::copy(row_scratch_.begin(), row_scratch_.end(),
              edges_.begin() + row_start_[u]);
    garbage_ += old_len - new_len;
  } else {
    garbage_ += old_len;
    DEX_ASSERT_MSG(edges_.size() + new_len <=
                       static_cast<std::size_t>(~std::uint32_t{0}),
                   "CSR edge arena exceeds 32-bit addressing");
    row_start_[u] = static_cast<std::uint32_t>(edges_.size());
    edges_.insert(edges_.end(), row_scratch_.begin(), row_scratch_.end());
  }
  row_len_[u] = static_cast<std::uint32_t>(new_len);
}

void CsrView::compact() {
  std::vector<NodeId> packed;
  packed.reserve(live_edge_count_);
  for (NodeId u = 0; u < row_len_.size(); ++u) {
    const auto row = neighbors(u);
    const std::uint32_t at = static_cast<std::uint32_t>(packed.size());
    packed.insert(packed.end(), row.begin(), row.end());
    row_start_[u] = at;
  }
  edges_.swap(packed);
  garbage_ = 0;
}

void CsrView::apply_delta(const ViewDelta& d, const PortsFn& ports) {
  DEX_ASSERT_MSG(built_, "apply_delta on a never-built CsrView");
  DEX_ASSERT_MSG(!d.full, "a full delta means rebuild, not patch");
  ++epoch_;
  touch_scratch_.clear();

  // Deaths first: empty the victim's row, remembering its old neighbors —
  // their rows referenced the victim and need re-enumeration even when the
  // journal did not list them.
  for (const NodeId v : d.died) {
    if (v >= alive_.size() || !alive_[v]) continue;
    const auto row = neighbors(v);
    touch_scratch_.insert(touch_scratch_.end(), row.begin(), row.end());
    garbage_ += row.size();
    live_edge_count_ -= row.size();
    row_len_[v] = 0;
    alive_[v] = 0;
    --alive_count_;
  }
  for (const NodeId u : d.born) {
    ensure_capacity(u);
    if (alive_[u]) continue;  // idempotence under re-applied deltas
    alive_[u] = 1;
    ++alive_count_;
    row_len_[u] = 0;
    touch_scratch_.push_back(u);
  }

  const auto touch = [&](NodeId u) {
    if (u >= alive_.size() || !alive_[u]) return;  // died above or stale
    if (stamp_[u] == epoch_) return;
    stamp_[u] = epoch_;
    rewrite_row(u, ports);
  };
  for (const NodeId u : touch_scratch_) touch(u);
  for (const NodeId u : d.dirty) touch(u);

  // Compact once the abandoned slack dominates the live payload; the
  // threshold keeps tiny views from compacting on every step.
  if (garbage_ > live_edge_count_ && garbage_ > 4096) compact();
}

bool CsrView::equal_to(const CsrView& other) const {
  if (alive_count_ != other.alive_count_) return false;
  const std::size_t n = std::max(node_count(), other.node_count());
  for (NodeId u = 0; u < n; ++u) {
    if (alive(u) != other.alive(u)) return false;
    const auto a = neighbors(u);
    const auto b = other.neighbors(u);
    if (a.size() != b.size()) return false;
    if (!std::equal(a.begin(), a.end(), b.begin())) return false;
  }
  return true;
}

void csr_bfs_fill(const CsrView& g, NodeId src, std::vector<std::uint32_t>& dist,
                  std::vector<NodeId>& scratch) {
  dist.assign(g.node_count(), kUnreached);
  if (!g.alive(src)) return;
  scratch.clear();
  scratch.push_back(src);
  dist[src] = 0;
  // Flat frontier queue: `head` walks the current level while new
  // discoveries append — level boundaries are implicit in the distances.
  std::size_t head = 0;
  while (head < scratch.size()) {
    const NodeId u = scratch[head++];
    const std::uint32_t d = dist[u] + 1;
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] != kUnreached) continue;
      dist[v] = d;
      scratch.push_back(v);
    }
  }
}

std::vector<NodeId> csr_shortest_path(const CsrView& g, NodeId src,
                                      NodeId dst) {
  CsrPathScratch scratch;
  return csr_shortest_path(g, src, dst, scratch);
}

std::vector<NodeId> csr_shortest_path(const CsrView& g, NodeId src, NodeId dst,
                                      CsrPathScratch& scratch) {
  if (src == dst) return {src};
  if (!g.alive(src) || !g.alive(dst)) return {};
  // Parent pointers in discovery order; identical tie-breaks to the
  // Multigraph BFS (ports scanned in source order). Stamps make entries
  // from earlier calls invisible without an O(n) clear.
  if (scratch.parent.size() < g.node_count()) {
    scratch.parent.resize(g.node_count(), kInvalidNode);
    scratch.stamp.resize(g.node_count(), 0);
  }
  ++scratch.gen;
  const auto seen = [&](NodeId u) { return scratch.stamp[u] == scratch.gen; };
  scratch.queue.clear();
  scratch.queue.push_back(src);
  scratch.stamp[src] = scratch.gen;
  scratch.parent[src] = src;
  std::size_t head = 0;
  while (head < scratch.queue.size() && !seen(dst)) {
    const NodeId u = scratch.queue[head++];
    for (const NodeId v : g.neighbors(u)) {
      if (seen(v)) continue;
      scratch.stamp[v] = scratch.gen;
      scratch.parent[v] = u;
      scratch.queue.push_back(v);
    }
  }
  if (!seen(dst)) return {};
  std::vector<NodeId> path{dst};
  for (NodeId u = dst; u != src; u = scratch.parent[u]) {
    path.push_back(scratch.parent[u]);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace dex::graph
