#pragma once

/// \file conductance.h
/// Cut quality measures: conductance and edge expansion (Definition 5 of the
/// paper), via exact enumeration for tiny graphs and spectral sweep cuts for
/// larger ones. The sweep cut also powers the adaptive "spectral attack"
/// adversary, which deletes nodes along the sparsest cut it can find —
/// exactly the kind of adaptive strategy the paper's adversary model allows.

#include <cstdint>
#include <vector>

#include "graph/multigraph.h"
#include "graph/spectral.h"

namespace dex::graph {

struct CutResult {
  std::vector<NodeId> side;     ///< the smaller side S of the cut
  std::size_t cut_edges = 0;    ///< |E(S, S̄)| counting multiplicity
  double conductance = 1.0;     ///< cut_edges / min(vol S, vol S̄)
  double edge_expansion = 0.0;  ///< cut_edges / |S| (|S| <= n/2)
};

/// Cut statistics for an explicit side S (rest of alive nodes is S̄).
[[nodiscard]] CutResult evaluate_cut(const Multigraph& g,
                                     const std::vector<NodeId>& side,
                                     const std::vector<bool>& alive = {});

/// Best sweep cut along the second eigenvector (Fiedler ordering).
/// Upper-bounds the true conductance; Cheeger (Theorem 2 of the paper)
/// lower-bounds it by gap/2.
[[nodiscard]] CutResult sweep_cut(const Multigraph& g,
                                  const std::vector<bool>& alive = {},
                                  const SpectralOptions& opts = {});

/// Exact minimum edge expansion h(G) by subset enumeration.
/// Only valid for alive-node counts <= 20 (used by tests).
[[nodiscard]] double exact_edge_expansion(const Multigraph& g,
                                          const std::vector<bool>& alive = {});

}  // namespace dex::graph
