#include "graph/generators.h"

#include <numeric>

namespace dex::graph {

Multigraph make_cycle(std::size_t n) {
  DEX_ASSERT(n >= 3);
  Multigraph g(n);
  for (NodeId u = 0; u < n; ++u)
    g.add_edge(u, static_cast<NodeId>((u + 1) % n));
  return g;
}

Multigraph make_complete(std::size_t n) {
  Multigraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Multigraph make_hypercube(unsigned dims) {
  const std::size_t n = std::size_t{1} << dims;
  Multigraph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (unsigned b = 0; b < dims; ++b) {
      const NodeId v = u ^ (NodeId{1} << b);
      if (u < v) g.add_edge(u, v);
    }
  }
  return g;
}

Multigraph make_path(std::size_t n) {
  DEX_ASSERT(n >= 2);
  Multigraph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, static_cast<NodeId>(u + 1));
  return g;
}

Multigraph make_random_regular(std::size_t n, std::size_t d,
                               support::Rng& rng) {
  DEX_ASSERT((n * d) % 2 == 0);
  Multigraph g(n);
  std::vector<NodeId> stubs;
  stubs.reserve(n * d);
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t k = 0; k < d; ++k) stubs.push_back(u);
  }
  rng.shuffle(stubs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2)
    g.add_edge(stubs[i], stubs[i + 1]);
  return g;
}

Multigraph make_dumbbell(std::size_t half) {
  DEX_ASSERT(half >= 2);
  Multigraph g(2 * half);
  for (NodeId u = 0; u < half; ++u) {
    for (NodeId v = u + 1; v < half; ++v) {
      g.add_edge(u, v);
      g.add_edge(static_cast<NodeId>(half + u), static_cast<NodeId>(half + v));
    }
  }
  g.add_edge(0, static_cast<NodeId>(half));
  return g;
}

}  // namespace dex::graph
