#include "graph/bfs.h"

#include <algorithm>

namespace dex::graph {

namespace {

bool node_alive(const std::vector<bool>& alive, NodeId u) {
  return alive.empty() || alive[u];
}

NodeId first_alive(const Multigraph& g, const std::vector<bool>& alive) {
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (node_alive(alive, u)) return u;
  }
  return kInvalidNode;
}

}  // namespace

std::vector<std::uint32_t> bfs_distances(const Multigraph& g, NodeId src,
                                         const std::vector<bool>& alive) {
  std::vector<std::uint32_t> dist(g.node_count(), kUnreached);
  DEX_ASSERT(src < g.node_count());
  DEX_ASSERT(node_alive(alive, src));
  std::vector<NodeId> frontier{src};
  dist[src] = 0;
  std::vector<NodeId> next;
  std::uint32_t d = 0;
  while (!frontier.empty()) {
    ++d;
    next.clear();
    for (NodeId u : frontier) {
      for (NodeId v : g.ports(u)) {
        if (dist[v] != kUnreached || !node_alive(alive, v)) continue;
        dist[v] = d;
        next.push_back(v);
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::uint32_t eccentricity(const Multigraph& g, NodeId src,
                           const std::vector<bool>& alive) {
  auto dist = bfs_distances(g, src, alive);
  std::uint32_t ecc = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!node_alive(alive, u) || dist[u] == kUnreached) continue;
    ecc = std::max(ecc, dist[u]);
  }
  return ecc;
}

bool is_connected(const Multigraph& g, const std::vector<bool>& alive) {
  const NodeId src = first_alive(g, alive);
  if (src == kInvalidNode) return true;  // empty graph is trivially connected
  auto dist = bfs_distances(g, src, alive);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (node_alive(alive, u) && dist[u] == kUnreached) return false;
  }
  return true;
}

std::uint32_t diameter(const Multigraph& g, const std::vector<bool>& alive) {
  std::uint32_t best = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!node_alive(alive, u)) continue;
    best = std::max(best, eccentricity(g, u, alive));
  }
  return best;
}

std::uint32_t diameter_estimate(const Multigraph& g,
                                const std::vector<bool>& alive) {
  const NodeId src = first_alive(g, alive);
  if (src == kInvalidNode) return 0;
  // Sweep 1: farthest node from an arbitrary start.
  auto d1 = bfs_distances(g, src, alive);
  NodeId far = src;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (node_alive(alive, u) && d1[u] != kUnreached && d1[u] > d1[far])
      far = u;
  }
  // Sweep 2: eccentricity of that node lower-bounds the diameter.
  return eccentricity(g, far, alive);
}

}  // namespace dex::graph
