#pragma once

/// \file spectral.h
/// Spectral-gap computation for (possibly irregular) multigraphs.
///
/// The paper states its guarantee as a constant spectral gap 1 - λ_G, where
/// λ_G is the second-largest adjacency eigenvalue (graphs there are regular
/// up to contraction). For contracted — hence mildly irregular — networks we
/// use the *normalized* adjacency N = D^{-1/2} A D^{-1/2}: for regular
/// graphs N = A/d so the two notions coincide, and vertex contraction does
/// not shrink the normalized gap (Lemma 10 of the paper, via Chung's
/// Lemma 1.15). A self-loop contributes 1 to both A and D, matching the
/// p-cycle convention of Definition 1.
///
/// Method: deflated power iteration on the half-shifted operator
/// M = (N + I)/2, whose spectrum lies in [0, 1] with order preserved. The
/// top eigenvector of N is known in closed form (w ∝ D^{1/2} 1), so we
/// project it out each iteration and the power method converges to λ₂.

#include <cstdint>
#include <vector>

#include "graph/multigraph.h"

namespace dex::graph {

struct SpectralResult {
  double lambda2 = 0.0;     ///< second-largest eigenvalue of N (signed)
  double gap = 0.0;         ///< 1 - lambda2
  std::uint32_t iterations = 0;
  bool converged = false;
  /// The (approximate) eigenvector for lambda2 in compact alive-index order;
  /// used by the sweep-cut conductance routine and the spectral adversary.
  std::vector<double> eigenvector;
  /// Compact-index -> NodeId translation for `eigenvector`.
  std::vector<NodeId> nodes;
};

struct SpectralOptions {
  double tolerance = 1e-10;     ///< residual tolerance on the Rayleigh quotient
  std::uint32_t max_iterations = 20000;
  std::uint64_t seed = 12345;   ///< start-vector seed (deterministic)
};

/// Computes the second-largest eigenvalue of the normalized adjacency of the
/// subgraph induced by `alive` (empty mask = all nodes). Isolated alive nodes
/// are not permitted (the DEX network never has any).
[[nodiscard]] SpectralResult spectral_gap(const Multigraph& g,
                                          const std::vector<bool>& alive = {},
                                          const SpectralOptions& opts = {});

}  // namespace dex::graph
