#include "graph/spectral.h"

#include <cmath>

#include "support/prng.h"

namespace dex::graph {

namespace {

/// Euclidean norm.
double norm(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(std::vector<double>& y, double alpha, const std::vector<double>& x) {
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::vector<double>& v, double alpha) {
  for (double& x : v) x *= alpha;
}

}  // namespace

SpectralResult spectral_gap(const Multigraph& g,
                            const std::vector<bool>& alive,
                            const SpectralOptions& opts) {
  SpectralResult res;

  // Compact indexing of alive nodes.
  std::vector<std::uint32_t> compact(g.node_count(), ~std::uint32_t{0});
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!alive.empty() && !alive[u]) continue;
    compact[u] = static_cast<std::uint32_t>(res.nodes.size());
    res.nodes.push_back(u);
  }
  const std::size_t n = res.nodes.size();
  if (n <= 1) {
    // A single node (or empty graph) has no second eigenvalue; by convention
    // report a full gap.
    res.lambda2 = 0.0;
    res.gap = 1.0;
    res.converged = true;
    return res;
  }

  std::vector<double> inv_sqrt_deg(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t d = g.degree(res.nodes[i]);
    DEX_ASSERT_MSG(d > 0, "spectral_gap: isolated alive node");
    inv_sqrt_deg[i] = 1.0 / std::sqrt(static_cast<double>(d));
  }

  // Top eigenvector of N: w_i = sqrt(d_i), normalized.
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = 1.0 / inv_sqrt_deg[i];
  scale(w, 1.0 / norm(w));

  // y = M x with M = (N + I)/2, N = D^{-1/2} A D^{-1/2}.
  std::vector<double> y(n);
  auto matvec = [&](const std::vector<double>& x) {
    for (std::size_t i = 0; i < n; ++i) y[i] = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId u = res.nodes[i];
      const double xi = x[i] * inv_sqrt_deg[i];
      for (NodeId v : g.ports(u)) {
        const std::uint32_t j = compact[v];
        DEX_ASSERT_MSG(j != ~std::uint32_t{0},
                       "edge leaves the alive subgraph");
        y[j] += xi * inv_sqrt_deg[j];
      }
    }
    for (std::size_t i = 0; i < n; ++i) y[i] = 0.5 * (y[i] + x[i]);
  };

  // Deterministic random start vector, orthogonal to w.
  support::Rng rng(opts.seed);
  std::vector<double> x(n);
  for (double& xi : x) xi = rng.uniform01() - 0.5;
  axpy(x, -dot(x, w), w);
  double xn = norm(x);
  if (xn < 1e-30) {
    // Pathological start (can only happen for tiny n); perturb.
    x[0] += 1.0;
    axpy(x, -dot(x, w), w);
    xn = norm(x);
  }
  scale(x, 1.0 / xn);

  double mu_prev = 0.0;
  for (std::uint32_t it = 0; it < opts.max_iterations; ++it) {
    matvec(x);
    // Re-orthogonalize against the known top eigenvector (cancels drift).
    axpy(y, -dot(y, w), w);
    const double yn = norm(y);
    if (yn < 1e-30) {
      // x was (numerically) in the span of w: the deflated operator is null,
      // i.e. lambda2 of M is 0 => lambda2 of N is -1.
      res.lambda2 = -1.0;
      res.gap = 2.0;
      res.converged = true;
      res.iterations = it;
      res.eigenvector = x;
      return res;
    }
    const double mu = yn;  // since |x| = 1, |Mx| approximates top |eigenvalue|
    scale(y, 1.0 / yn);
    x.swap(y);
    res.iterations = it + 1;
    if (it > 8 && std::abs(mu - mu_prev) < opts.tolerance) {
      res.converged = true;
      mu_prev = mu;
      break;
    }
    mu_prev = mu;
  }

  // Rayleigh quotient of the final iterate under M, mapped back to N.
  matvec(x);
  const double mu = dot(x, y);
  res.lambda2 = 2.0 * mu - 1.0;
  res.gap = 1.0 - res.lambda2;
  // Convert eigenvector of N back to the random-walk embedding
  // (entries divided by sqrt(d)) — this is what sweep cuts want.
  res.eigenvector.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    res.eigenvector[i] = x[i] * inv_sqrt_deg[i];
  return res;
}

}  // namespace dex::graph
