#pragma once

/// \file csr.h
/// CsrView — a flat compressed-sparse-row view of the *live* part of an
/// overlay topology. The traffic hot path (sim/workload.h, sim/oracle.h)
/// walks adjacency thousands of times per churn step; doing that over the
/// vector-of-vectors Multigraph plus a vector<bool> aliveness check per port
/// is cache-hostile and re-pays the dead-node filter on every hop. A
/// CsrView bakes the filter in at build time: dead nodes get an empty row,
/// edges to dead endpoints are dropped, and what remains is flat arrays a
/// BFS can stream through.
///
/// Two ways to get one:
///
///  * build() / build_from_ports() — one O(n + m) pass from a Multigraph
///    snapshot or a per-node live-ports enumerator.
///  * apply_delta() — the incremental path: given a ViewDelta (the ids a
///    churn step touched, reported by the overlay's journal), only the
///    affected rows are re-enumerated and patched in place. Per-step cost
///    is proportional to the churn delta, not the population — the
///    difference between 100k and 1M+ node sweeps.
///
/// The patcher is idempotent: re-writing a row whose adjacency did not
/// change reproduces it byte-for-byte in place, so a superset of the truly
/// dirty ids (or a stale delta re-applied after a full rebuild) is always
/// safe. equal_to() gives the semantic comparison the debug cross-check
/// (DEX_CHECK_CSR=1) and the property tests pin the patcher against.
///
/// Within a row, port order is whatever the producer enumerated — the
/// Multigraph's port order for build(), the overlay's live_ports order for
/// build_from_ports()/apply_delta(). The two can differ, so a view must be
/// patched only with the enumerator that built it (sim::CachedView tracks
/// this). Every consumer in the tree (BFS distances, path lengths, reach
/// sums, sorted region sets) is row-order-independent, which is what makes
/// the canonical-order switch invisible in the emitted traces.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/multigraph.h"

namespace dex::graph {

/// The ids one churn step touched, as reported by an overlay's delta
/// journal (HealingOverlay::drain_view_delta). `born`/`died` are liveness
/// transitions; `dirty` lists alive ids whose adjacency may have changed
/// (duplicates and already-covered ids are fine — the patcher dedups).
/// `full` means "history unknown, rebuild from scratch": the journal
/// overflowed, a wholesale remap happened (DEX type-2), or tracking just
/// started.
struct ViewDelta {
  bool full = false;
  std::vector<NodeId> born;
  std::vector<NodeId> died;
  std::vector<NodeId> dirty;

  void clear() {
    full = false;
    born.clear();
    died.clear();
    dirty.clear();
  }
  /// Collapse to "rebuild everything" — precise lists are pointless then.
  void mark_full() {
    full = true;
    born.clear();
    died.clear();
    dirty.clear();
  }
  [[nodiscard]] bool empty() const {
    return !full && born.empty() && died.empty() && dirty.empty();
  }
};

class CsrView {
 public:
  /// Fills `out` with the current live neighbors of an alive node, in the
  /// producer's canonical order (dead endpoints must already be excluded).
  using PortsFn = std::function<void(NodeId, std::vector<NodeId>&)>;

  /// Rebuilds from `g` restricted to `alive` (empty mask = everything
  /// alive). Buffers are reused across calls — building once per step in a
  /// long scenario settles into zero allocations.
  void build(const Multigraph& g, const std::vector<bool>& alive);

  /// Rebuilds from a live-ports enumerator over `alive` (the overlay's own
  /// adjacency surface — no Multigraph materialization). Rows land in id
  /// order with no slack; the canonical order is whatever `ports` emits.
  void build_from_ports(const std::vector<bool>& alive, const PortsFn& ports);

  /// Patches the view in place: `d.died` rows are emptied (their old
  /// neighbors are re-enumerated automatically — the journal need not list
  /// them), `d.born` ids become alive, and every dirty id's row is
  /// re-enumerated via `ports`. Rows that shrink or keep their length are
  /// rewritten in place; rows that grow relocate to the arena tail, and the
  /// abandoned slack is compacted away once it exceeds the live edge count.
  /// Requires a prior build_from_ports()/apply_delta() with the same
  /// canonical `ports` order; d.full is the caller's job to handle (assert).
  void apply_delta(const ViewDelta& d, const PortsFn& ports);

  /// Semantic equality: same aliveness and the same neighbor sequence for
  /// every alive id (row placement in the arena is irrelevant; trailing
  /// all-dead capacity is ignored). The contract the incremental path is
  /// tested against.
  [[nodiscard]] bool equal_to(const CsrView& other) const;

  /// Id capacity (same id space as the source).
  [[nodiscard]] std::size_t node_count() const { return row_len_.size(); }

  [[nodiscard]] bool alive(NodeId u) const {
    return u < alive_.size() && alive_[u] != 0;
  }

  [[nodiscard]] std::size_t alive_count() const { return alive_count_; }

  /// Live neighbors of u, in the producer's port order (duplicates kept —
  /// multi-edges stay multi). Empty for dead or out-of-range ids.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    if (u >= node_count()) return {};
    return {edges_.data() + row_start_[u],
            static_cast<std::size_t>(row_len_[u])};
  }

  /// Whether any build has run at least once.
  [[nodiscard]] bool built() const { return built_; }

 private:
  void ensure_capacity(NodeId id);
  /// Re-enumerates u's row via `ports` and writes it in place or at the
  /// arena tail (see apply_delta).
  void rewrite_row(NodeId u, const PortsFn& ports);
  /// Rebuilds the arena in id order, dropping the abandoned slack.
  void compact();

  std::vector<std::uint32_t> row_start_;  ///< arena offset per id
  std::vector<std::uint32_t> row_len_;    ///< live ports per id
  std::vector<NodeId> edges_;             ///< row arena (relocatable rows)
  std::vector<std::uint8_t> alive_;       ///< byte mask (faster than bits)
  std::size_t alive_count_ = 0;
  std::size_t live_edge_count_ = 0;  ///< sum of row_len_ over alive ids
  std::size_t garbage_ = 0;          ///< arena slots no row references
  bool built_ = false;
  /// Dirty-id dedup for apply_delta: stamp[u] == epoch marks "already
  /// rewritten this delta" without a per-call clear.
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<NodeId> row_scratch_;    ///< rewrite_row enumeration buffer
  std::vector<NodeId> touch_scratch_;  ///< neighbors-of-the-dead work list
};

/// BFS distances from `src` over the live view, written into `dist`
/// (resized to node_count(), kUnreached for unreachable or dead nodes).
/// `scratch` is the frontier queue, reused across calls. Discovery order
/// matches graph::bfs_distances on the source Multigraph exactly.
void csr_bfs_fill(const CsrView& g, NodeId src, std::vector<std::uint32_t>& dist,
                  std::vector<NodeId>& scratch);

/// BFS shortest path src -> dst inclusive of both endpoints ({src} when
/// src == dst, empty when unreachable or either endpoint is dead). Parent
/// choices follow port order, matching the Multigraph BFS route default.
[[nodiscard]] std::vector<NodeId> csr_shortest_path(const CsrView& g,
                                                    NodeId src, NodeId dst);

/// Epoch-stamped scratch for the allocation-free csr_shortest_path overload
/// below: parent entries are valid only where the stamp matches the current
/// generation, so repeated calls never pay an O(n) clear.
struct CsrPathScratch {
  std::vector<NodeId> parent;
  std::vector<std::uint32_t> stamp;
  std::vector<NodeId> queue;
  std::uint32_t gen = 0;
};

/// csr_shortest_path without the per-call O(n) parent allocation: identical
/// result, scratch reused across calls (the PCycle::shortest_path idiom).
[[nodiscard]] std::vector<NodeId> csr_shortest_path(const CsrView& g,
                                                    NodeId src, NodeId dst,
                                                    CsrPathScratch& scratch);

}  // namespace dex::graph
