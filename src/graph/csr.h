#pragma once

/// \file csr.h
/// CsrView — a flat compressed-sparse-row snapshot of the *live* part of a
/// Multigraph. The traffic hot path (sim/workload.h, sim/oracle.h) walks
/// adjacency thousands of times per churn step; doing that over the
/// vector-of-vectors Multigraph plus a vector<bool> aliveness check per port
/// is cache-hostile and re-pays the dead-node filter on every hop. A
/// CsrView bakes the filter in at build time: dead nodes get an empty row,
/// edges to dead endpoints are dropped, and what remains is two flat arrays
/// a BFS can stream through.
///
/// Build cost is one O(n + m) pass per churn step (the same as a single
/// BFS), after which every traversal of the step runs allocation-free on
/// contiguous memory. Port order is preserved exactly, so a BFS over the
/// CsrView discovers nodes in the same order as the equivalent
/// Multigraph-plus-mask BFS — paths and parent choices are byte-identical,
/// which is what lets the route/placement oracle replace the per-op walks
/// without changing any emitted number.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/multigraph.h"

namespace dex::graph {

class CsrView {
 public:
  /// Rebuilds from `g` restricted to `alive` (empty mask = everything
  /// alive). Buffers are reused across calls — building once per step in a
  /// long scenario settles into zero allocations.
  void build(const Multigraph& g, const std::vector<bool>& alive);

  /// Id capacity (same id space as the source Multigraph).
  [[nodiscard]] std::size_t node_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  [[nodiscard]] bool alive(NodeId u) const {
    return u < alive_.size() && alive_[u] != 0;
  }

  [[nodiscard]] std::size_t alive_count() const { return alive_count_; }

  /// Live neighbors of u, in the source graph's port order (duplicates kept
  /// — multi-edges stay multi). Empty for dead or out-of-range ids.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const {
    if (u >= node_count()) return {};
    return {edges_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Whether build() has run at least once.
  [[nodiscard]] bool built() const { return !offsets_.empty(); }

 private:
  std::vector<std::uint32_t> offsets_;  ///< node_count()+1 row starts
  std::vector<NodeId> edges_;           ///< concatenated live adjacency
  std::vector<std::uint8_t> alive_;     ///< byte mask (faster than bool bits)
  std::size_t alive_count_ = 0;
};

/// BFS distances from `src` over the live view, written into `dist`
/// (resized to node_count(), kUnreached for unreachable or dead nodes).
/// `scratch` is the frontier queue, reused across calls. Discovery order
/// matches graph::bfs_distances on the source Multigraph exactly.
void csr_bfs_fill(const CsrView& g, NodeId src, std::vector<std::uint32_t>& dist,
                  std::vector<NodeId>& scratch);

/// BFS shortest path src -> dst inclusive of both endpoints ({src} when
/// src == dst, empty when unreachable or either endpoint is dead). Parent
/// choices follow port order, matching the Multigraph BFS route default.
[[nodiscard]] std::vector<NodeId> csr_shortest_path(const CsrView& g,
                                                    NodeId src, NodeId dst);

}  // namespace dex::graph
