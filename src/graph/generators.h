#pragma once

/// \file generators.h
/// Reference graph constructions used by tests and baselines: cycles,
/// complete graphs, hypercubes (closed-form spectra for validating the
/// solver) and random d-regular multigraphs via the configuration model
/// (good expanders w.h.p. — the claim DEX is contrasted against).

#include <cstdint>

#include "graph/multigraph.h"
#include "support/prng.h"

namespace dex::graph {

[[nodiscard]] Multigraph make_cycle(std::size_t n);
[[nodiscard]] Multigraph make_complete(std::size_t n);
[[nodiscard]] Multigraph make_hypercube(unsigned dims);
[[nodiscard]] Multigraph make_path(std::size_t n);

/// Random d-regular multigraph via stub pairing (configuration model).
/// May contain self-loops and parallel edges (each self-loop consumes two
/// stubs, so degrees count a loop as 2 here — callers that need the DEX
/// loop-degree-1 convention should not use this generator).
/// Requires n*d even.
[[nodiscard]] Multigraph make_random_regular(std::size_t n, std::size_t d,
                                             support::Rng& rng);

/// "Dumbbell": two complete graphs of size n/2 joined by one edge — the
/// canonical low-conductance graph, used to validate the sweep cut.
[[nodiscard]] Multigraph make_dumbbell(std::size_t half);

}  // namespace dex::graph
