#include "graph/conductance.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace dex::graph {

namespace {

bool node_alive(const std::vector<bool>& alive, NodeId u) {
  return alive.empty() || alive[u];
}

}  // namespace

CutResult evaluate_cut(const Multigraph& g, const std::vector<NodeId>& side,
                       const std::vector<bool>& alive) {
  CutResult res;
  std::vector<bool> in_side(g.node_count(), false);
  for (NodeId u : side) {
    DEX_ASSERT(node_alive(alive, u));
    in_side[u] = true;
  }
  std::size_t vol_s = 0, vol_total = 0, cut = 0, s_count = 0, n_alive = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!node_alive(alive, u)) continue;
    ++n_alive;
    vol_total += g.degree(u);
    if (!in_side[u]) continue;
    ++s_count;
    vol_s += g.degree(u);
    for (NodeId v : g.ports(u)) {
      if (!in_side[v]) ++cut;
    }
  }
  res.side = side;
  res.cut_edges = cut;
  const std::size_t vol_min = std::min(vol_s, vol_total - vol_s);
  res.conductance = vol_min == 0
                        ? 1.0
                        : static_cast<double>(cut) /
                              static_cast<double>(vol_min);
  const std::size_t small = std::min(s_count, n_alive - s_count);
  res.edge_expansion =
      small == 0 ? 0.0
                 : static_cast<double>(cut) / static_cast<double>(small);
  return res;
}

CutResult sweep_cut(const Multigraph& g, const std::vector<bool>& alive,
                    const SpectralOptions& opts) {
  const SpectralResult spec = spectral_gap(g, alive, opts);
  const std::size_t n = spec.nodes.size();
  CutResult best;
  if (n < 2) return best;

  // Order alive nodes by eigenvector value and scan prefix cuts.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return spec.eigenvector[a] < spec.eigenvector[b];
  });

  std::vector<bool> in_side(g.node_count(), false);
  std::size_t vol_total = 0;
  for (NodeId u : spec.nodes) vol_total += g.degree(u);

  std::size_t vol_s = 0;
  // Running cut size: adding u flips u's ports into/out of the cut.
  std::int64_t cut = 0;
  double best_cond = std::numeric_limits<double>::infinity();
  std::size_t best_prefix = 0;
  std::int64_t best_cut = 0;

  for (std::size_t k = 0; k + 1 < n; ++k) {
    const NodeId u = spec.nodes[order[k]];
    in_side[u] = true;
    vol_s += g.degree(u);
    for (NodeId v : g.ports(u)) {
      if (v == u) continue;  // self-loops never cross a cut
      cut += in_side[v] ? -1 : +1;
    }
    const std::size_t vol_min = std::min(vol_s, vol_total - vol_s);
    if (vol_min == 0) continue;
    const double cond =
        static_cast<double>(cut) / static_cast<double>(vol_min);
    if (cond < best_cond) {
      best_cond = cond;
      best_prefix = k + 1;
      best_cut = cut;
    }
  }

  best.cut_edges = static_cast<std::size_t>(best_cut);
  best.conductance = best_cond;
  // Report the smaller side for convenience.
  if (best_prefix <= n - best_prefix) {
    for (std::size_t k = 0; k < best_prefix; ++k)
      best.side.push_back(spec.nodes[order[k]]);
  } else {
    for (std::size_t k = best_prefix; k < n; ++k)
      best.side.push_back(spec.nodes[order[k]]);
  }
  best.edge_expansion = best.side.empty()
                            ? 0.0
                            : static_cast<double>(best.cut_edges) /
                                  static_cast<double>(best.side.size());
  return best;
}

double exact_edge_expansion(const Multigraph& g,
                            const std::vector<bool>& alive) {
  std::vector<NodeId> nodes;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (node_alive(alive, u)) nodes.push_back(u);
  }
  const std::size_t n = nodes.size();
  DEX_ASSERT_MSG(n <= 20, "exact_edge_expansion is exponential; n must be <=20");
  if (n < 2) return 0.0;

  double best = std::numeric_limits<double>::infinity();
  // Enumerate non-empty subsets with |S| <= n/2. Fix node 0 out of S when
  // |S| == n/2 and n even? Simpler: enumerate all, filter by popcount.
  const std::uint32_t full = static_cast<std::uint32_t>((1ULL << n) - 1);
  for (std::uint32_t mask = 1; mask < full; ++mask) {
    const auto size = static_cast<std::size_t>(__builtin_popcount(mask));
    if (size > n / 2) continue;
    std::size_t cut = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(mask & (1u << i))) continue;
      for (NodeId v : g.ports(nodes[i])) {
        // Locate v's index (n is tiny; linear scan is fine).
        for (std::size_t j = 0; j < n; ++j) {
          if (nodes[j] == v) {
            if (!(mask & (1u << j))) ++cut;
            break;
          }
        }
      }
    }
    best = std::min(best,
                    static_cast<double>(cut) / static_cast<double>(size));
  }
  return best;
}

}  // namespace dex::graph
