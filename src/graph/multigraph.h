#pragma once

/// \file multigraph.h
/// A compact undirected multigraph with self-loops.
///
/// The real network G_t of the paper is the image of a 3-regular virtual
/// expander under vertex contraction, so it is naturally a *multigraph*:
/// two virtual edges may map to the same pair of real nodes, and a virtual
/// edge between two vertices simulated at the same node becomes a self-loop.
/// Random walks and the spectral analysis must respect these multiplicities
/// (Lemma 10 / Lemma 1 of the paper are statements about the contracted
/// multigraph), so we keep explicit port lists rather than neighbor sets.
///
/// Degree convention: a self-loop contributes 1 to the degree (matching the
/// paper's 3-regular p-cycle where vertex 0 has neighbors {1, p-1, itself}).

#include <cstdint>
#include <span>
#include <vector>

#include "support/assert.h"

namespace dex::graph {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = ~NodeId{0};

class Multigraph {
 public:
  Multigraph() = default;
  explicit Multigraph(std::size_t n) : adj_(n) {}

  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }

  /// Total degree (self-loop counts 1).
  [[nodiscard]] std::size_t degree(NodeId u) const {
    return adj_[u].size();
  }

  /// Sum of degrees over all nodes.
  [[nodiscard]] std::size_t total_degree() const {
    std::size_t s = 0;
    for (const auto& a : adj_) s += a.size();
    return s;
  }

  /// Ports (incident edge endpoints) of u; may contain duplicates and u
  /// itself (self-loop).
  [[nodiscard]] std::span<const NodeId> ports(NodeId u) const {
    return adj_[u];
  }

  NodeId add_node() {
    adj_.emplace_back();
    return static_cast<NodeId>(adj_.size() - 1);
  }

  /// Adds an undirected edge {u, v}; a self-loop (u == v) adds one port.
  void add_edge(NodeId u, NodeId v) {
    DEX_ASSERT(u < adj_.size() && v < adj_.size());
    adj_[u].push_back(v);
    if (u != v) adj_[v].push_back(u);
  }

  /// Removes one copy of {u, v} if present; returns whether an edge was
  /// removed. O(deg).
  bool remove_edge(NodeId u, NodeId v);

  /// Removes all ports of u and all ports pointing at u. O(sum of degrees of
  /// u's neighbors). Node ids remain valid; u becomes isolated.
  void isolate(NodeId u);

  /// Number of edges between u and v (self-loops counted once).
  [[nodiscard]] std::size_t multiplicity(NodeId u, NodeId v) const;

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return multiplicity(u, v) > 0;
  }

  /// Structural audit: every port (u -> v) with u != v has a matching
  /// reverse port. Used by heavy asserts in tests.
  [[nodiscard]] bool is_consistent() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
};

}  // namespace dex::graph
