#pragma once

/// \file bfs.h
/// BFS-based structural queries on multigraphs: distances, eccentricity,
/// connectivity, diameter. These back the flooding cost model
/// (computeSpare / computeLow run for 2*diam rounds in the paper) and the
/// invariant audits (the self-healing guarantee includes connectivity).

#include <cstdint>
#include <vector>

#include "graph/multigraph.h"

namespace dex::graph {

constexpr std::uint32_t kUnreached = ~std::uint32_t{0};

/// Distances from src; kUnreached for unreachable nodes.
/// `alive` (optional) restricts the traversal; empty means all alive.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(
    const Multigraph& g, NodeId src, const std::vector<bool>& alive = {});

/// Max finite distance from src (0 for isolated src).
[[nodiscard]] std::uint32_t eccentricity(const Multigraph& g, NodeId src,
                                         const std::vector<bool>& alive = {});

/// Whether all alive nodes are mutually reachable.
[[nodiscard]] bool is_connected(const Multigraph& g,
                                const std::vector<bool>& alive = {});

/// Exact diameter by n BFS runs over alive nodes (use for n up to ~10^4).
[[nodiscard]] std::uint32_t diameter(const Multigraph& g,
                                     const std::vector<bool>& alive = {});

/// 2-sweep lower bound on the diameter (cheap; exact on trees, excellent on
/// expanders). Used by the flooding cost model at large n.
[[nodiscard]] std::uint32_t diameter_estimate(
    const Multigraph& g, const std::vector<bool>& alive = {});

}  // namespace dex::graph
