#include "dex/dht.h"

#include <algorithm>

#include "support/prng.h"

namespace dex {

NodeId Dht::resolve_origin(NodeId origin) const {
  if (origin == kInvalidNode) return net_.coordinator();
  if (net_.alive(origin)) return origin;
  // A churned-out origin re-enters through a live proxy. Hash the stale id
  // into the vertex space and take the owner: funnelling every stale-origin
  // request through the coordinator instead would manufacture a traffic
  // hotspot on the one node the paper works hardest to keep cheap, and
  // would mismeasure routing cost (the coordinator's vertex sits at the
  // root of the cached BFS tree).
  return net_.mapping().owner(support::mix64(origin) % net_.p());
}

std::uint64_t Dht::route_cost(NodeId origin, Vertex target) const {
  const auto& sims = net_.mapping().sim(origin);
  const Vertex src = sims.empty() ? 0 : sims[0];
  return net_.cycle().distance(src, target);
}

void Dht::maybe_rehash() {
  if (epoch_ == net_.cycle_epoch()) return;
  epoch_ = net_.cycle_epoch();
  ++rehash_count_;
  std::unordered_map<Vertex,
                     std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      fresh;
  // Each item travels from its old host to its new home; the mean virtual
  // distance is O(log n). Sample it once per rehash for the charge.
  std::uint64_t mean_dist = 1;
  {
    // det: epoch-derived constant seed — same stream for every run and
    // deliberately decoupled from the trial seed (pure cost sampling).
    support::Rng probe(net_.cycle_epoch() * 1000003ULL + 17);
    std::uint64_t total = 0;
    const unsigned kSamples = 16;
    for (unsigned i = 0; i < kSamples; ++i) {
      total += net_.cycle().distance(probe.below(net_.p()),
                                     probe.below(net_.p()));
    }
    mean_dist = total / kSamples + 1;
  }
  // Drain old hosts in sorted-vertex order: the per-home item vectors in
  // `fresh` inherit this visit order, and hash-order iteration here would
  // make item ordering (and any later scan over it) differ across standard
  // library implementations.
  std::vector<Vertex> old_hosts;
  old_hosts.reserve(store_.size());
  // det: key-collection only — visit order is erased by the sort below.
  for (const auto& entry : store_) old_hosts.push_back(entry.first);
  std::sort(old_hosts.begin(), old_hosts.end());
  for (const Vertex old_vertex : old_hosts) {
    for (auto& kv : store_[old_vertex]) {
      fresh[home(kv.first)].push_back(kv);
      rehash_messages_ += mean_dist;
    }
  }
  store_ = std::move(fresh);
}

void Dht::put(std::uint64_t key, std::uint64_t value, NodeId origin) {
  maybe_rehash();
  last_cost_ = {};
  origin = resolve_origin(origin);
  const Vertex z = home(key);
  const std::uint64_t hops = route_cost(origin, z);
  last_cost_.rounds = hops;
  last_cost_.messages = hops;
  auto& items = store_[z];
  for (auto& kv : items) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  items.emplace_back(key, value);
  ++item_count_;
}

std::optional<std::uint64_t> Dht::get(std::uint64_t key, NodeId origin) {
  maybe_rehash();
  last_cost_ = {};
  origin = resolve_origin(origin);
  const Vertex z = home(key);
  const std::uint64_t hops = route_cost(origin, z);
  last_cost_.rounds = 2 * hops;  // request + reply
  last_cost_.messages = 2 * hops;
  auto it = store_.find(z);
  if (it == store_.end()) return std::nullopt;
  for (const auto& kv : it->second) {
    if (kv.first == key) return kv.second;
  }
  return std::nullopt;
}

bool Dht::erase(std::uint64_t key, NodeId origin) {
  maybe_rehash();
  last_cost_ = {};
  origin = resolve_origin(origin);
  const Vertex z = home(key);
  const std::uint64_t hops = route_cost(origin, z);
  last_cost_.rounds = hops;
  last_cost_.messages = hops;
  auto it = store_.find(z);
  if (it == store_.end()) return false;
  auto& items = it->second;
  for (auto kv = items.begin(); kv != items.end(); ++kv) {
    if (kv->first == key) {
      items.erase(kv);
      --item_count_;
      return true;
    }
  }
  return false;
}

std::vector<std::size_t> Dht::items_per_alive_node() const {
  std::vector<std::size_t> per_node(net_.node_capacity(), 0);
  // det: per-node integer sums — commutative, so visit order cannot leak.
  for (const auto& [z, items] : store_) {
    per_node[net_.mapping().owner(z)] += items.size();
  }
  std::vector<std::size_t> out;
  for (NodeId u = 0; u < per_node.size(); ++u) {
    if (net_.alive(u)) out.push_back(per_node[u]);
  }
  return out;
}

}  // namespace dex
