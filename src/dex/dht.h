#pragma once

/// \file dht.h
/// Distributed hash table on top of DEX (§4.4.4 of the paper).
///
/// Every node knows the current p-cycle size s, hence the common hash
/// function h_s(k) = mix64(k) mod s mapping keys to virtual vertices. The
/// node simulating vertex h_s(k) stores the pair; when a vertex migrates,
/// responsibility migrates with it (our store is keyed by vertex, so this is
/// implicit). Insertion and lookup route along locally computable shortest
/// paths in the p-cycle — O(log n) rounds and messages.
///
/// When a type-2 rebuild replaces the p-cycle, keys re-hash under h_{s'}.
/// The paper staggers the hand-over alongside the rebuild; we perform it
/// lazily at the first operation after the swap and report both the total
/// transfer cost and its per-step amortization (see docs/EXPERIMENTS.md,
/// E7 — which also covers the backend-agnostic generalization of this
/// store, sim::KvStore in src/sim/workload.h).

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dex/network.h"
#include "sim/meters.h"

namespace dex {

class Dht {
 public:
  explicit Dht(DexNetwork& net) : net_(net), epoch_(net.cycle_epoch()) {}

  /// Stores (key, value), overwriting a previous binding. `origin` is the
  /// requesting node (defaults to the coordinator). An origin that has been
  /// churned out re-enters through a deterministic live proxy — the owner
  /// of the stale id hashed into the vertex space — so requests never route
  /// from a dead node and stale-origin traffic stays spread instead of
  /// piling onto the coordinator.
  void put(std::uint64_t key, std::uint64_t value,
           NodeId origin = kInvalidNode);

  /// Looks `key` up from `origin`; nullopt if absent.
  [[nodiscard]] std::optional<std::uint64_t> get(std::uint64_t key,
                                                 NodeId origin = kInvalidNode);

  /// Removes the binding; returns whether it existed.
  bool erase(std::uint64_t key, NodeId origin = kInvalidNode);

  [[nodiscard]] std::size_t size() const { return item_count_; }

  /// Cost of the most recent operation (routing hops; a lookup pays the
  /// round trip).
  [[nodiscard]] const sim::StepCost& last_cost() const { return last_cost_; }

  [[nodiscard]] std::uint64_t rehash_count() const { return rehash_count_; }
  [[nodiscard]] std::uint64_t rehash_messages() const {
    return rehash_messages_;
  }

  /// Items stored per alive node (for the load-balance experiment).
  [[nodiscard]] std::vector<std::size_t> items_per_alive_node() const;

 private:
  [[nodiscard]] Vertex home(std::uint64_t key) const {
    return support::mix64(key) % net_.p();
  }
  void maybe_rehash();
  [[nodiscard]] NodeId resolve_origin(NodeId origin) const;
  /// Routing cost from origin's first simulated vertex to `target`.
  std::uint64_t route_cost(NodeId origin, Vertex target) const;

  DexNetwork& net_;
  std::uint64_t epoch_;
  std::unordered_map<Vertex, std::vector<std::pair<std::uint64_t,
                                                   std::uint64_t>>> store_;
  std::size_t item_count_ = 0;
  sim::StepCost last_cost_;
  std::uint64_t rehash_count_ = 0;
  std::uint64_t rehash_messages_ = 0;
};

}  // namespace dex
