#include <algorithm>

#include "dex/network.h"
#include "support/mathutil.h"

/// \file staggered.cpp
/// Worst-case type-2 recovery: the coordinator protocol (Algorithm 4.7) and
/// the staggered inflate/deflate rebuilds (Algorithms 4.8/4.9). A rebuild is
/// spread over Θ(n) adversarial steps; each step activates a constant-size
/// group of old vertices. Phase 1 builds the next p-cycle alongside the
/// current one (intermediate edges point at the *future* owner's current
/// host); at its end the network swaps to the new cycle and Phase 2 discards
/// the old cycle group by group.

namespace dex {

// ---------------------------------------------------------------------------
// Coordinator (Algorithm 4.7)
// ---------------------------------------------------------------------------

void DexNetwork::refresh_coordinator_counters() {
  coord_.n = n_alive_;
  coord_.spare = map_.spare_count();
  coord_.low = map_.low_count();
}

void DexNetwork::notify_coordinator(NodeId from) {
  if (prm_.mode == RecoveryMode::WorstCase) {
    // The repairing node routes its load deltas to the owner of vertex 0
    // along a locally computable shortest path in the virtual graph.
    Vertex rep = 0;
    if (!map_.sim(from).empty()) {
      rep = map_.sim(from)[0];
    } else if (build_ && !build_->new_sim[from].empty()) {
      rep = build_generator(build_->new_sim[from][0]);
    }
    const std::uint32_t d = cyc_->distance_to_zero(rep);
    meter_.add_messages(d);
    meter_.add_rounds(d);
  }
  refresh_coordinator_counters();
}

// ---------------------------------------------------------------------------
// Staggered-state helpers
// ---------------------------------------------------------------------------

Vertex DexNetwork::build_generator(Vertex y) const {
  DEX_ASSERT(build_);
  return build_->inflating ? build_->infl->parent(y)
                           : build_->defl->dominating(y);
}

bool DexNetwork::build_processed(Vertex y) const {
  return build_generator(y) < build_->progress;
}

NodeId DexNetwork::owner_future(Vertex y) const {
  DEX_ASSERT(build_);
  if (build_processed(y)) {
    DEX_ASSERT(build_->phi_new[y] != kInvalidNode);
    return build_->phi_new[y];
  }
  auto it = build_->overrides.find(y);
  if (it != build_->overrides.end()) return it->second;
  return map_.owner(build_generator(y));
}

std::int64_t DexNetwork::spare_new_capacity(NodeId w) const {
  DEX_ASSERT(build_ && !build_->inflating);
  std::int64_t avail = build_->new_load[w];
  for (Vertex z : map_.sim(w)) {
    if (z >= build_->progress && build_->defl->is_dominating(z) &&
        !build_->overrides.contains(build_->defl->image(z)))
      ++avail;
  }
  return avail - 1;  // one vertex stays reserved for w itself
}

void DexNetwork::grant_new_vertex(NodeId w, NodeId to) {
  DEX_ASSERT(build_ && !build_->inflating);
  if (build_->new_load[w] >= 2) {
    transfer_new_vertex(build_->new_sim[w].back(), to);
    return;
  }
  for (Vertex z : map_.sim(w)) {
    if (z >= build_->progress && build_->defl->is_dominating(z)) {
      const Vertex y = build_->defl->image(z);
      if (!build_->overrides.contains(y)) {
        build_->overrides.emplace(y, to);
        ++build_->claim_count[to];
        meter_.add_messages(2);
        return;
      }
    }
  }
  DEX_ASSERT_MSG(false, "grant_new_vertex called without capacity");
}

void DexNetwork::transfer_new_vertex(Vertex y, NodeId to) {
  DEX_ASSERT(build_);
  const NodeId from = build_->phi_new[y];
  DEX_ASSERT(from != kInvalidNode);
  if (from == to) return;
  auto& fs = build_->new_sim[from];
  auto it = std::find(fs.begin(), fs.end(), y);
  DEX_ASSERT(it != fs.end());
  *it = fs.back();
  fs.pop_back();
  --build_->new_load[from];
  build_->phi_new[y] = to;
  build_->new_sim[to].push_back(y);
  ++build_->new_load[to];
  meter_.add_topology(6);
  meter_.add_messages(2);
}

void DexNetwork::transfer_old_residual(Vertex x, NodeId to) {
  DEX_ASSERT(tear_);
  const NodeId from = tear_->phi_old[x];
  if (from == to) return;
  auto& fs = tear_->old_sim[from];
  const std::uint32_t at = tear_->pos_old[x];
  DEX_ASSERT(fs[at] == x);
  fs[at] = fs.back();
  tear_->pos_old[fs[at]] = at;
  fs.pop_back();
  --tear_->old_load[from];
  tear_->phi_old[x] = to;
  tear_->pos_old[x] = static_cast<std::uint32_t>(tear_->old_sim[to].size());
  tear_->old_sim[to].push_back(x);
  ++tear_->old_load[to];
  meter_.add_topology(6);
  meter_.add_messages(2);
}

void DexNetwork::shed_excess_new_load(NodeId from) {
  DEX_ASSERT(build_);
  while (build_->new_load[from] > prm_.max_load()) {
    NodeId w = kInvalidNode;
    for (std::uint64_t attempt = 0; attempt <= prm_.max_walk_retries;
         ++attempt) {
      w = type1_walk(from, [&](NodeId c) {
        return alive(c) && c != from &&
               build_->new_load[c] < prm_.low_threshold();
      });
      if (w != kInvalidNode) break;
      ++report_.walk_retries;
    }
    DEX_ASSERT_MSG(w != kInvalidNode, "shed_excess_new_load walk exhausted");
    transfer_new_vertex(build_->new_sim[from].back(), w);
  }
}

// ---------------------------------------------------------------------------
// Trigger & pacing
// ---------------------------------------------------------------------------

std::uint64_t DexNetwork::staggered_batch(std::uint64_t p_len) const {
  // Finish a phase within ~θ·n steps while activating Θ(1/θ) vertices per
  // step (§4.4.1: groups of ⌈1/θ⌉).
  const auto per_step = static_cast<std::uint64_t>(
      std::max(1.0, prm_.theta * static_cast<double>(n_alive_)));
  const std::uint64_t by_deadline = (p_len + per_step - 1) / per_step;
  const auto group = static_cast<std::uint64_t>(1.0 / prm_.theta) + 1;
  return std::max(group, by_deadline);
}

void DexNetwork::maybe_trigger_staggered() {
  if (prm_.mode != RecoveryMode::WorstCase || staggered_active()) return;
  const auto thr = static_cast<std::uint64_t>(
      3.0 * prm_.theta * static_cast<double>(n_alive_));
  if (map_.spare_count() < std::max<std::uint64_t>(thr, 1)) {
    start_staggered(/*inflate=*/true);
  } else if (map_.low_count() < std::max<std::uint64_t>(thr, 1) &&
             map_.p() >= 60 && map_.p() > 8 * n_alive_) {
    start_staggered(/*inflate=*/false);
  }
}

void DexNetwork::start_staggered(bool inflate) {
  DEX_ASSERT(!staggered_active());
  journal_full();  // the view journal stays coarse for the whole window
  const std::uint64_t p_old = map_.p();
  build_.emplace();
  BuildState& b = *build_;
  b.inflating = inflate;
  b.p_new = inflate ? support::inflation_prime(p_old)
                    : support::deflation_prime(p_old);
  b.cyc_new = std::make_unique<PCycle>(b.p_new);
  if (inflate) {
    b.infl.emplace(p_old, b.p_new);
  } else {
    b.defl.emplace(p_old, b.p_new);
  }
  b.phi_new.assign(b.p_new, kInvalidNode);
  b.new_sim.assign(alive_.size(), {});
  b.new_load.assign(alive_.size(), 0);
  b.claim_count.assign(alive_.size(), 0);
  b.progress = 0;
  b.batch = staggered_batch(p_old);
  if (inflate) {
    ++inflations_;
  } else {
    ++deflations_;
  }
  report_.type2_event = true;
  // Coordinator activates the first group: O(log n) routing.
  meter_.add_messages(cyc_->distance_to_zero(1) + 1);
  advance_build();
}

void DexNetwork::advance_staggered() {
  if (build_) {
    journal_full();  // group activation rewires many rows; don't itemize
    advance_build();
  } else if (tear_) {
    journal_full();
    advance_teardown();
  }
}

// ---------------------------------------------------------------------------
// Phase 1: building the next cycle
// ---------------------------------------------------------------------------

void DexNetwork::advance_build() {
  BuildState& b = *build_;
  const std::uint64_t p_old = map_.p();
  const std::uint64_t end = std::min(b.progress + b.batch, p_old);
  std::uint64_t max_route = 0;
  std::vector<NodeId> touched;
  for (Vertex x = b.progress; x < end; ++x) {
    touched.push_back(map_.owner(x));
    max_route = std::max(max_route, process_build_vertex(x));
  }
  b.progress = end;
  meter_.add_rounds(max_route + 1);
  // Coordinator hands the baton to the next group.
  meter_.add_messages(cyc_->distance_to_zero(end % p_old) + 1);

  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  if (b.inflating) {
    // Nodes whose NewSim outgrew 4ζ shed the excess by random walks.
    for (NodeId o : touched) {
      if (alive_[o] && b.new_load[o] > prm_.max_load())
        shed_excess_new_load(o);
    }
  } else {
    // Deflation: owners whose processed vertices were all dominated become
    // contending and grab a future vertex elsewhere (Alg. 4.9 line 4).
    for (NodeId o : touched) {
      if (!alive_[o]) continue;
      if (b.new_load[o] > 0 || b.claim_count[o] > 0) continue;
      bool has_future = false;
      for (Vertex z : map_.sim(o)) {
        if (z >= b.progress && b.defl->is_dominating(z) &&
            !b.overrides.contains(b.defl->image(z))) {
          has_future = true;
          break;
        }
      }
      if (has_future) continue;
      NodeId w = kInvalidNode;
      for (std::uint64_t attempt = 0; attempt <= prm_.max_walk_retries;
           ++attempt) {
        w = type1_walk(o, [&](NodeId c) {
          return alive(c) && c != o && spare_new_capacity(c) >= 2;
        });
        if (w != kInvalidNode) break;
        ++report_.walk_retries;
      }
      DEX_ASSERT_MSG(w != kInvalidNode, "contending walk exhausted");
      grant_new_vertex(w, o);
    }
  }

  if (b.progress == p_old) finish_build_phase();
}

std::uint64_t DexNetwork::process_build_vertex(Vertex x) {
  BuildState& b = *build_;
  const NodeId o = map_.owner(x);
  std::uint64_t max_route = 0;

  auto materialize = [&](Vertex y) {
    NodeId tgt = o;
    auto it = b.overrides.find(y);
    if (it != b.overrides.end()) {
      tgt = it->second;
      DEX_ASSERT(b.claim_count[tgt] > 0);
      --b.claim_count[tgt];
      b.overrides.erase(it);
    }
    b.phi_new[y] = tgt;
    b.new_sim[tgt].push_back(y);
    ++b.new_load[tgt];
    // Cycle edges: located via the old cycle's neighborhood, O(1) hops.
    meter_.add_topology(3);
    meter_.add_messages(4);
    // Inverse edge: the future owner of y^{-1} is reachable by routing to
    // the generator of y^{-1} on the *current* cycle.
    const Vertex y_inv = b.cyc_new->inv(y);
    const Vertex gen = b.inflating ? b.infl->parent(y_inv)
                                   : b.defl->dominating(y_inv);
    if (gen != x) {
      const std::uint64_t d = cyc_->distance(x, gen);
      meter_.add_messages(d);
      max_route = std::max(max_route, d);
    }
  };

  if (b.inflating) {
    const std::uint64_t cx = b.infl->c(x);
    for (std::uint64_t j = 0; j <= cx; ++j) materialize(b.infl->child(x, j));
  } else if (b.defl->is_dominating(x)) {
    materialize(b.defl->image(x));
  }
  return max_route;
}

void DexNetwork::finish_build_phase() {
  BuildState b = std::move(*build_);
  DEX_ASSERT_MSG(b.overrides.empty(), "unconsumed claims at phase-1 end");

  VirtualMapping nm(b.p_new, alive_.size(), prm_.low_threshold());
  for (Vertex y = 0; y < b.p_new; ++y) {
    DEX_ASSERT_MSG(b.phi_new[y] != kInvalidNode && alive_[b.phi_new[y]],
                   "new vertex unowned at swap");
    nm.assign(y, b.phi_new[y]);
  }

  // Teardown state snapshots the current (old) cycle before the swap.
  TeardownState t;
  const std::uint64_t p_old = map_.p();
  t.p_old = p_old;
  t.cyc_old = std::move(cyc_);
  t.phi_old.resize(p_old);
  t.pos_old.resize(p_old);
  t.old_sim.assign(alive_.size(), {});
  t.old_load.assign(alive_.size(), 0);
  for (Vertex x = 0; x < p_old; ++x) {
    const NodeId o = map_.owner(x);
    t.phi_old[x] = o;
    t.pos_old[x] = static_cast<std::uint32_t>(t.old_sim[o].size());
    t.old_sim[o].push_back(x);
    ++t.old_load[o];
  }
  t.progress = 0;
  t.batch = staggered_batch(p_old);

  map_ = std::move(nm);
  cyc_ = std::move(b.cyc_new);
  build_.reset();
  tear_.emplace(std::move(t));
  ++cycle_epoch_;
  meter_.add_messages(1);  // coordinator state handover to new owner of 0
  refresh_coordinator_counters();
}

// ---------------------------------------------------------------------------
// Phase 2: discarding the old cycle
// ---------------------------------------------------------------------------

void DexNetwork::advance_teardown() {
  TeardownState& t = *tear_;
  const std::uint64_t end = std::min(t.progress + t.batch, t.p_old);
  for (Vertex x = t.progress; x < end; ++x) {
    const NodeId o = t.phi_old[x];
    auto& fs = t.old_sim[o];
    const std::uint32_t at = t.pos_old[x];
    DEX_ASSERT(fs[at] == x);
    fs[at] = fs.back();
    t.pos_old[fs[at]] = at;
    fs.pop_back();
    --t.old_load[o];
    meter_.add_topology(3);  // x's (at most) three old edges die
    meter_.add_messages(3);
  }
  t.progress = end;
  meter_.add_rounds(1);
  meter_.add_messages(cyc_->distance_to_zero(0) + 1);
  if (t.progress == t.p_old) tear_.reset();
}

}  // namespace dex
