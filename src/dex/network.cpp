#include "dex/network.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "sim/flood.h"
#include "sim/token_engine.h"
#include "support/mathutil.h"

namespace dex {

namespace {

constexpr std::uint64_t kRebalanceEpochLimit = 400;

}  // namespace

DexNetwork::DexNetwork(std::size_t n0, Params params)
    : prm_(params), rng_(params.seed) {
  DEX_ASSERT_MSG(n0 >= 2, "initial network needs at least 2 nodes");
  DEX_ASSERT(prm_.theta > 0 && prm_.theta < 0.5);
  const std::uint64_t p0 =
      support::inflation_prime(static_cast<std::uint64_t>(n0));
  cyc_ = std::make_unique<PCycle>(p0);
  map_ = VirtualMapping(p0, n0, prm_.low_threshold());
  alive_.assign(n0, true);
  n_alive_ = n0;
  // Round-robin deal: loads differ by at most 1 and p0 < 8n0 keeps every
  // load ≤ 8 ≤ 4ζ — a balanced surjective mapping (Def. 3).
  for (Vertex z = 0; z < p0; ++z)
    map_.assign(z, static_cast<NodeId>(z % n0));
  refresh_coordinator_counters();
}

std::vector<NodeId> DexNetwork::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(n_alive_);
  for (NodeId u = 0; u < alive_.size(); ++u) {
    if (alive_[u]) out.push_back(u);
  }
  return out;
}

std::uint64_t DexNetwork::total_load(NodeId u) const {
  std::uint64_t t = map_.load(u);
  if (build_) t += build_->new_load[u] + build_->claim_count[u];
  if (tear_) t += tear_->old_load[u];
  return t;
}

graph::Multigraph DexNetwork::snapshot() const {
  graph::Multigraph g(alive_.size());
  // Degree convention (matches ports_of and Lemma 10's contraction): a
  // virtual edge between two *distinct* vertices at the same node becomes a
  // self-loop counting 2 (one port per endpoint); the p-cycle's own
  // self-loops (at 0, 1, p−1) count 1.
  auto add = [&g](NodeId a, NodeId b, bool distinct_vertices) {
    g.add_edge(a, b);
    if (distinct_vertices && a == b) g.add_edge(a, b);
  };
  cyc_->for_each_edge([&](Vertex x, Vertex y) {
    add(map_.owner(x), map_.owner(y), x != y);
  });
  if (build_) {
    build_->cyc_new->for_each_edge([&](Vertex a, Vertex b) {
      if (build_processed(a) || build_processed(b))
        add(owner_future(a), owner_future(b), a != b);
    });
  }
  if (tear_) {
    tear_->cyc_old->for_each_edge([&](Vertex a, Vertex b) {
      if (a >= tear_->progress && b >= tear_->progress)
        add(tear_->phi_old[a], tear_->phi_old[b], a != b);
    });
  }
  return g;
}

std::size_t DexNetwork::max_degree() const {
  std::vector<std::uint64_t> ports;
  std::size_t best = 0;
  for (NodeId u = 0; u < alive_.size(); ++u) {
    if (!alive_[u]) continue;
    ports_of(u, ports);
    best = std::max(best, ports.size());
  }
  return best;
}

bool DexNetwork::live_ports(NodeId u, std::vector<NodeId>& out) const {
  // During a staggered window the build/tear extras are enumerated
  // asymmetrically (an unprocessed endpoint does not see its reverse port
  // yet), so no symmetric per-node row exists short of a snapshot.
  if (staggered_active()) return false;
  out.clear();
  for (Vertex z : map_.sim(u)) {
    for (Vertex w : cyc_->ports(z)) out.push_back(map_.owner(w));
  }
  return true;
}

void DexNetwork::ports_of(NodeId u, std::vector<std::uint64_t>& out) const {
  out.clear();
  for (Vertex z : map_.sim(u)) {
    for (Vertex w : cyc_->ports(z)) out.push_back(map_.owner(w));
  }
  if (build_) {
    for (Vertex y : build_->new_sim[u]) {
      for (Vertex w : build_->cyc_new->ports(y))
        out.push_back(owner_future(w));
    }
  }
  if (tear_) {
    for (Vertex x : tear_->old_sim[u]) {
      for (Vertex w : tear_->cyc_old->ports(x)) {
        if (w >= tear_->progress) out.push_back(tear_->phi_old[w]);
      }
    }
  }
}

NodeId DexNetwork::allocate_node() {
  const NodeId u = static_cast<NodeId>(alive_.size());
  alive_.push_back(false);
  map_.ensure_node_capacity(alive_.size());
  if (build_) {
    build_->new_sim.emplace_back();
    build_->new_load.push_back(0);
    build_->claim_count.push_back(0);
  }
  if (tear_) {
    tear_->old_sim.emplace_back();
    tear_->old_load.push_back(0);
  }
  return u;
}

// ---------------------------------------------------------------------------
// Step orchestration
// ---------------------------------------------------------------------------

void DexNetwork::begin_step(StepOp op) {
  report_ = StepReport{};
  report_.op = op;
  report_.staggered_active = staggered_active();
  meter_.end_step();  // clear any residue from out-of-step activity
}

void DexNetwork::post_step_common(NodeId actor) {
  notify_coordinator(actor);
  if (prm_.mode == RecoveryMode::WorstCase) {
    advance_staggered();
    maybe_trigger_staggered();
  }
  end_step();
}

void DexNetwork::end_step() {
  report_.cost = meter_.end_step();
  report_.n = n_alive_;
  report_.p = map_.p();
  report_.staggered_active = report_.staggered_active || staggered_active();
}

NodeId DexNetwork::insert(NodeId attach_to) {
  begin_step(StepOp::Insert);
  DEX_ASSERT_MSG(alive(attach_to), "attach target must be alive");
  const NodeId u = allocate_node();
  alive_[u] = true;
  ++n_alive_;
  journal_born(u);
  handle_insert_recovery(u, attach_to);
  post_step_common(u);
  return u;
}

void DexNetwork::remove(NodeId victim) {
  begin_step(StepOp::Delete);
  DEX_ASSERT_MSG(alive(victim), "victim must be alive");
  DEX_ASSERT_MSG(n_alive_ >= 3, "network must keep at least 2 nodes");
  const NodeId v = handle_delete_recovery(victim);
  post_step_common(v);
}

// ---------------------------------------------------------------------------
// Type-1 recovery (Algorithms 4.2 / 4.3)
// ---------------------------------------------------------------------------

std::uint64_t DexNetwork::walk_length() const {
  return std::max<std::uint64_t>(
      2, support::scaled_log(prm_.walk_factor,
                             std::max<std::uint64_t>(n_alive_, 2)));
}

NodeId DexNetwork::type1_walk(NodeId start,
                              const std::function<bool(NodeId)>& accept,
                              NodeId exclude) {
  if (accept(start)) return start;
  NodeId cur = start;
  const std::uint64_t len = walk_length();
  std::vector<std::uint64_t> ports, filtered;
  for (std::uint64_t step = 0; step < len; ++step) {
    ports_of(cur, ports);
    filtered.clear();
    for (std::uint64_t t : ports) {
      if (static_cast<NodeId>(t) != exclude) filtered.push_back(t);
    }
    if (filtered.empty()) return kInvalidNode;
    cur = static_cast<NodeId>(filtered[rng_.below(filtered.size())]);
    meter_.add_messages(1);
    meter_.add_rounds(1);
    if (accept(cur)) return cur;
  }
  return kInvalidNode;
}

NodeId DexNetwork::walk_until_found(NodeId start,
                                    const std::function<bool(NodeId)>& accept,
                                    bool insert_side, NodeId exclude) {
  const std::uint64_t epoch_at_entry = cycle_epoch_;
  const bool staggered_at_entry = staggered_active();
  auto state_changed = [&] {
    return cycle_epoch_ != epoch_at_entry ||
           staggered_active() != staggered_at_entry;
  };
  for (std::uint64_t attempt = 0; attempt <= prm_.max_walk_retries;
       ++attempt) {
    const NodeId w = type1_walk(start, accept, exclude);
    if (w != kInvalidNode) return w;
    ++report_.walk_retries;

    const auto thr = static_cast<std::uint64_t>(
        prm_.theta * static_cast<double>(n_alive_));
    if (prm_.mode == RecoveryMode::Amortized) {
      // Algorithm 4.2/4.3 failure path: count |Spare| or |Low| exactly by
      // flooding; rebuild only if the set is genuinely below θn, else the
      // failure was bad luck (prob ≤ 1/n) — retry.
      charge_flood(start);
      if (insert_side && map_.spare_count() < std::max<std::uint64_t>(thr, 1)) {
        simplified_inflate();
        return kInvalidNode;  // epoch changed; caller must re-evaluate
      }
      if (!insert_side && map_.low_count() < std::max<std::uint64_t>(thr, 1) &&
          map_.p() >= 60 && map_.p() > 8 * n_alive_) {
        simplified_deflate();
        return kInvalidNode;
      }
    } else {
      // Worst-case mode: consult the coordinator's counters (O(log n)
      // route). Normally the staggered rebuild has been triggered
      // preemptively at 3θn; in the degenerate small-n regime (3θn < 1)
      // the failure itself is the trigger, so fire it now and let the
      // caller re-dispatch under the new state.
      notify_coordinator(start);
      if (!staggered_active()) {
        maybe_trigger_staggered();
        if (state_changed()) return kInvalidNode;
        // Last resort: the relevant set is literally empty and no rebuild
        // is possible via the staggered path.
        if (insert_side && map_.spare_count() == 0) {
          ++forced_sync_type2_;
          simplified_inflate();
          return kInvalidNode;
        }
        if (!insert_side && map_.low_count() == 0 && map_.p() >= 60 &&
            map_.p() > 8 * n_alive_) {
          ++forced_sync_type2_;
          simplified_deflate();
          return kInvalidNode;
        }
      }
    }
    if (state_changed()) return kInvalidNode;
  }
  DEX_ASSERT_MSG(false, "type-1 walk retries exhausted");
  return kInvalidNode;
}

void DexNetwork::handle_insert_recovery(NodeId u, NodeId attach_to) {
  meter_.add_topology(1);  // bootstrap edge u—attach_to

  // Recovery may change the global state mid-step (a rebuild triggered by a
  // failed walk); re-dispatch on the current state until the newcomer owns
  // a vertex.
  for (bool done = false; !done;) {
    done = dispatch_insert(u, attach_to);
  }

  // Drop the bootstrap edge unless the virtual graph dictates a u—attach_to
  // link anyway (Algorithm 4.2 line 3).
  std::vector<std::uint64_t> ports;
  ports_of(u, ports);
  if (std::find(ports.begin(), ports.end(),
                static_cast<std::uint64_t>(attach_to)) == ports.end())
    meter_.add_topology(1);
}

bool DexNetwork::dispatch_insert(NodeId u, NodeId attach_to) {
  if (build_ && build_->inflating) {
    // §4.4.1: during a staggered inflation, a freshly inflated vertex is
    // assigned to the newcomer. The coordinator directs the request to the
    // active group (O(log n) routing; no walk needed).
    meter_.add_messages(2 * cyc_->distance_to_zero(map_.sim(attach_to).empty()
                                                       ? 0
                                                       : map_.sim(attach_to)[0]));
    meter_.add_rounds(2);
    NodeId host = kInvalidNode;
    Vertex give = 0;
    DEX_ASSERT(build_->progress > 0);
    for (Vertex y = build_->infl->ceil_alpha(build_->progress); y-- > 0;) {
      const NodeId cand = build_->phi_new[y];
      if (cand != kInvalidNode && cand != u && build_->new_load[cand] >= 2) {
        host = cand;
        give = y;
        break;
      }
    }
    DEX_ASSERT_MSG(host != kInvalidNode,
                   "staggered inflation must have spare new vertices");
    // Route from the coordinator to the host (on the current cycle).
    meter_.add_messages(
        cyc_->distance_to_zero(build_->infl->parent(give)) + 2);
    meter_.add_rounds(2);
    transfer_new_vertex(give, u);
    return true;
  }

  if (build_ && !build_->inflating) {
    // Staggered deflation in progress: Spare (w.r.t. the current cycle) is
    // plentiful (Claim 4.3). Prefer handing the newcomer an unprocessed
    // *dominating* vertex so it also owns a future new-cycle vertex.
    const NodeId w = walk_until_found(
        attach_to,
        [&](NodeId c) { return c != u && alive(c) && map_.in_spare(c); },
        /*insert_side=*/true, /*exclude=*/u);
    if (w == kInvalidNode) return false;  // state changed; re-dispatch
    // Pick the vertex to donate. A "future" vertex (unprocessed,
    // dominating, unclaimed) carries a new-cycle vertex with it: donate
    // one only if the donor keeps at least one future of its own.
    auto is_future = [&](Vertex z) {
      return z >= build_->progress && build_->defl->is_dominating(z) &&
             !build_->overrides.contains(build_->defl->image(z));
    };
    Vertex give = map_.sim(w).back();
    if (spare_new_capacity(w) >= 2) {
      for (Vertex z : map_.sim(w)) {
        if (is_future(z)) {
          give = z;
          break;
        }
      }
    } else {
      for (Vertex z : map_.sim(w)) {
        if (!is_future(z)) {
          give = z;
          break;
        }
      }
    }
    transfer_current_vertex(give, u);
    // If the newcomer's vertex carries no future new-cycle vertex, grab a
    // claim via a contending walk (Algorithm 4.9 line 4).
    bool has_future = build_->claim_count[u] > 0 || build_->new_load[u] > 0;
    for (Vertex z : map_.sim(u)) {
      if (is_future(z)) has_future = true;
    }
    if (!has_future) {
      const NodeId donor = walk_until_found(
          u,
          [&](NodeId c) {
            return c != u && alive(c) && build_ && !build_->inflating &&
                   spare_new_capacity(c) >= 2;
          },
          /*insert_side=*/true);
      if (donor != kInvalidNode) grant_new_vertex(donor, u);
      // On state change the deflation build is gone and no claim is needed.
    }
    return true;
  }

  // Plain type-1 insertion (Algorithm 4.2).
  const NodeId w = walk_until_found(
      attach_to,
      [&](NodeId c) { return c != u && alive(c) && map_.in_spare(c); },
      /*insert_side=*/true, /*exclude=*/u);
  if (w == kInvalidNode) return false;  // type-2 rebuild/trigger; re-dispatch
  transfer_current_vertex(map_.sim(w).back(), u);
  return true;
}

NodeId DexNetwork::pick_recovery_neighbor(NodeId victim) const {
  std::vector<std::uint64_t> ports;
  ports_of(victim, ports);
  for (std::uint64_t t : ports) {
    const NodeId c = static_cast<NodeId>(t);
    if (c != victim && alive(c)) return c;
  }
  DEX_ASSERT_MSG(false, "victim has no alive neighbor");
  return kInvalidNode;
}

NodeId DexNetwork::handle_delete_recovery(NodeId victim) {
  const NodeId v = pick_recovery_neighbor(victim);

  // Neighbor v takes over everything the victim simulated (Alg. 4.3 line 1).
  const std::vector<Vertex> absorbed_cur = map_.sim(victim);
  std::vector<Vertex> absorbed_new;
  std::vector<Vertex> absorbed_old;
  if (build_) absorbed_new = build_->new_sim[victim];
  if (tear_) absorbed_old = tear_->old_sim[victim];

  alive_[victim] = false;
  --n_alive_;
  journal_died(victim);

  for (Vertex z : absorbed_cur) {
    journal_transfer(z, v);
    meter_.add_topology(map_.transfer(z, v));
  }
  for (Vertex y : absorbed_new) transfer_new_vertex(y, v);
  for (Vertex x : absorbed_old) transfer_old_residual(x, v);
  meter_.add_messages(2 * (absorbed_cur.size() + absorbed_new.size() +
                           absorbed_old.size()));
  meter_.add_rounds(2);

  // Open claims of the victim revert to their default generators.
  if (build_ && build_->claim_count[victim] > 0) {
    // det: pure set-subtraction — the surviving map contents are identical
    // for every erase order, and nothing is recorded per erase.
    for (auto it = build_->overrides.begin();
         it != build_->overrides.end();) {
      if (it->second == victim) {
        it = build_->overrides.erase(it);
      } else {
        ++it;
      }
    }
    build_->claim_count[victim] = 0;
  }

  // Redistribute the absorbed current-cycle vertices via random walks
  // (Alg. 4.3 lines 2–5). Target set: Low normally; during a staggered
  // deflation Low is scarce by construction, so the bound-preserving target
  // is any node below the 4ζ cap (see DESIGN.md). The predicate reads the
  // build state dynamically — a failed walk may trigger the rebuild
  // mid-step.
  const auto accept_delete = [&](NodeId c) {
    if (!alive(c)) return false;
    const bool deflating_build = build_ && !build_->inflating;
    return deflating_build ? map_.load(c) < prm_.max_load() : map_.in_low(c);
  };
  const std::uint64_t epoch = cycle_epoch_;
  for (Vertex z : absorbed_cur) {
    while (cycle_epoch_ == epoch) {
      const NodeId w = walk_until_found(v, accept_delete,
                                        /*insert_side=*/false);
      if (w == kInvalidNode) continue;  // state changed; re-evaluate
      transfer_current_vertex(z, w);
      break;
    }
    if (cycle_epoch_ != epoch) break;  // a rebuild re-homed everything
  }

  // Build-phase extras absorbed from the victim are shed the same way.
  if (build_ && cycle_epoch_ == epoch) {
    for (Vertex y : absorbed_new) {
      if (build_->phi_new[y] != v) continue;  // already elsewhere
      const NodeId w = walk_until_found(
          v,
          [&](NodeId c) {
            return alive(c) && c != v &&
                   build_->new_load[c] < prm_.max_load();
          },
          /*insert_side=*/false);
      if (w == kInvalidNode) break;
      transfer_new_vertex(y, w);
    }
  }
  if (tear_ && cycle_epoch_ == epoch) {
    while (tear_->old_load[v] > prm_.max_load()) {
      const NodeId w = walk_until_found(
          v,
          [&](NodeId c) {
            return alive(c) && c != v &&
                   tear_->old_load[c] < prm_.max_load();
          },
          /*insert_side=*/false);
      if (w == kInvalidNode) break;
      transfer_old_residual(tear_->old_sim[v].back(), w);
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// Simplified type-2 recovery (Algorithms 4.5 / 4.6) — amortized mode and
// the worst-case safety valve.
// ---------------------------------------------------------------------------

void DexNetwork::simplified_inflate() {
  DEX_ASSERT_MSG(!staggered_active(),
                 "synchronous rebuild cannot overlap a staggered one");
  const std::uint64_t p_old = map_.p();
  const std::uint64_t p_new = support::inflation_prime(p_old);
  const InflationMap im(p_old, p_new);
  PCycle nc(p_new);

  charge_flood(coordinator());  // the inflation request reaches every node

  VirtualMapping nm(p_new, alive_.size(), prm_.low_threshold());
  for (Vertex x = 0; x < p_old; ++x) {
    const NodeId o = map_.owner(x);
    const std::uint64_t cx = im.c(x);
    for (std::uint64_t j = 0; j <= cx; ++j) nm.assign(im.child(x, j), o);
  }
  // Edge rewiring: all old edges die, all new edges are born; inverse edges
  // are located by permutation routing on the old expander (Cor. 3).
  meter_.add_topology((3 * (p_new + p_old)) / 2);
  meter_.add_messages(2 * p_new);
  charge_permutation_routing(p_old);

  rebalance_inflated(nm, nc);

  map_ = std::move(nm);
  cyc_ = std::make_unique<PCycle>(std::move(nc));
  journal_full();  // wholesale remap: every row changed
  ++cycle_epoch_;
  ++inflations_;
  report_.type2_event = true;
  meter_.add_messages(1);  // coordinator state handover to owner of 0
  refresh_coordinator_counters();
}

void DexNetwork::simplified_deflate() {
  DEX_ASSERT_MSG(!staggered_active(),
                 "synchronous rebuild cannot overlap a staggered one");
  // One stage shrinks p by 4–8x. Under the paper's prompt trigger that is
  // enough, but racing deletions (the event engine's overlapping batches)
  // can crash n while p stands still, leaving p/n far above the 2ζ low
  // threshold after a single stage — and then every node is "full" and the
  // rebalance walks have nowhere to land. So: iterate stages until the
  // p <= 8n invariant is restored (or p can no longer shrink), and only
  // rebalance the final mapping — intermediate ones are torn down anyway.
  for (;;) {
    const std::uint64_t p_old = map_.p();
    DEX_ASSERT_MSG(p_old >= 60, "network too small to deflate");
    // The new cycle must still cover every node surjectively: p/8 > n. The
    // paper's trigger (|Low| < θn ⇒ total load ≥ ~2ζ(1−θ)n ⇒ p ≥ 16n)
    // guarantees this; enforce it against misuse.
    DEX_ASSERT_MSG(p_old > 8 * n_alive_,
                   "deflation requires p > 8n (trigger precondition)");
    const std::uint64_t p_new = support::deflation_prime(p_old);
    const DeflationMap dm(p_old, p_new);
    PCycle nc(p_new);

    charge_flood(coordinator());

    VirtualMapping nm(p_new, alive_.size(), prm_.low_threshold());
    for (Vertex y = 0; y < p_new; ++y) {
      nm.assign(y, map_.owner(dm.dominating(y)));
    }

    meter_.add_topology((3 * (p_new + p_old)) / 2);
    meter_.add_messages(2 * p_new);
    charge_permutation_routing(p_old);

    resolve_contenders_deflated(nm, nc, dm);
    const bool last = p_new <= 8 * n_alive_ || p_new < 60;
    if (last) rebalance_inflated(nm, nc);  // shed any residual loads > 4ζ

    map_ = std::move(nm);
    cyc_ = std::make_unique<PCycle>(std::move(nc));
    journal_full();  // wholesale remap: every row changed
    ++cycle_epoch_;
    ++deflations_;
    report_.type2_event = true;
    meter_.add_messages(1);
    refresh_coordinator_counters();
    if (last) break;
  }
}

void DexNetwork::rebalance_inflated(VirtualMapping& nm, const PCycle& nc) {
  const std::uint64_t p_new = nm.p();
  std::vector<bool> full(p_new, false);
  auto mark_full = [&](NodeId w) {
    for (Vertex z : nm.sim(w)) full[z] = true;
  };
  std::vector<NodeId> overloaded;
  for (NodeId w = 0; w < alive_.size(); ++w) {
    if (!alive_[w]) continue;
    if (nm.load(w) > prm_.low_threshold()) mark_full(w);  // load > 2ζ
    if (nm.load(w) > prm_.max_load()) overloaded.push_back(w);
  }
  if (overloaded.empty()) return;

  const std::uint64_t steps = std::max<std::uint64_t>(
      2, support::scaled_log(prm_.walk_factor, p_new));
  const std::uint64_t round_limit =
      steps * std::max<std::uint64_t>(4, support::floor_log2(p_new));

  sim::PortsFn vports = [&nc](std::uint64_t loc,
                              std::vector<std::uint64_t>& out) {
    out.clear();
    for (Vertex w : nc.ports(loc)) out.push_back(w);
  };

  for (std::uint64_t epoch = 0; epoch < kRebalanceEpochLimit; ++epoch) {
    // Degenerate-regime fallback: when every alive node already sits above
    // the 2ζ comfort threshold (deletions can outrun deflation, and below
    // p = 60 deflation cannot shrink p further), the full[] filter leaves
    // the walks no landing spot and they would starve to the epoch limit.
    // The binding invariant is the 4ζ cap, not the 2ζ margin — so in that
    // state accept any receiver that still has headroom under 4ζ.
    bool any_low = false;
    for (NodeId w = 0; w < alive_.size() && !any_low; ++w) {
      any_low = alive_[w] && nm.load(w) <= prm_.low_threshold();
    }
    const bool relaxed = !any_low;
    std::vector<sim::Token> tokens;
    for (NodeId w : overloaded) {
      const std::uint64_t excess = nm.load(w) - prm_.max_load();
      for (std::uint64_t i = 0; i < excess; ++i) {
        sim::Token t;
        t.location = nm.sim(w)[rng_.below(nm.sim(w).size())];
        t.steps_remaining = steps;
        t.tag = w;
        tokens.push_back(t);
      }
    }
    if (tokens.empty()) return;

    auto res = sim::run_walks(std::move(tokens), vports, rng_, round_limit,
                              /*accept=*/{}, walk_jobs_);
    meter_.add_rounds(res.rounds);
    meter_.add_messages(res.messages);

    std::unordered_map<std::uint64_t, std::uint32_t> landing_count;
    for (const auto& t : res.tokens) {
      if (t.finished) ++landing_count[t.location];
    }
    for (const auto& t : res.tokens) {
      if (!t.finished || landing_count[t.location] != 1) continue;
      const NodeId w = nm.owner(t.location);
      if (relaxed ? nm.load(w) >= prm_.max_load() : full[t.location]) {
        continue;
      }
      const NodeId giver = t.tag;
      if (nm.load(giver) <= prm_.max_load()) continue;  // already resolved
      meter_.add_topology(nm.transfer(nm.sim(giver).back(), w));
      meter_.add_messages(2);
      if (nm.load(w) > prm_.low_threshold()) mark_full(w);
    }
    std::vector<NodeId> still;
    for (NodeId w : overloaded) {
      if (nm.load(w) > prm_.max_load()) still.push_back(w);
    }
    overloaded.swap(still);
    if (overloaded.empty()) return;
  }
  DEX_ASSERT_MSG(false, "rebalance_inflated failed to converge");
}

void DexNetwork::resolve_contenders_deflated(VirtualMapping& nm,
                                             const PCycle& nc,
                                             const DeflationMap& dm) {
  const std::uint64_t p_new = nm.p();
  std::vector<bool> taken(p_new, false);
  std::vector<NodeId> contenders;
  for (NodeId u = 0; u < alive_.size(); ++u) {
    if (!alive_[u]) continue;
    if (nm.load(u) >= 1) {
      taken[nm.sim(u)[0]] = true;  // reserve one vertex for u itself
    } else {
      contenders.push_back(u);
    }
  }
  if (contenders.empty()) return;

  const std::uint64_t steps = std::max<std::uint64_t>(
      2, support::scaled_log(prm_.walk_factor, p_new));
  const std::uint64_t round_limit =
      steps * std::max<std::uint64_t>(4, support::floor_log2(p_new));

  sim::PortsFn vports = [&nc](std::uint64_t loc,
                              std::vector<std::uint64_t>& out) {
    out.clear();
    for (Vertex w : nc.ports(loc)) out.push_back(w);
  };

  for (std::uint64_t epoch = 0; epoch < kRebalanceEpochLimit; ++epoch) {
    std::vector<sim::Token> tokens;
    for (NodeId u : contenders) {
      sim::Token t;
      // Walk starts at the new-cycle image of one of u's old vertices (the
      // walk is simulated on the actual network; see §4.2.2 Phase 2).
      DEX_ASSERT(!map_.sim(u).empty());
      t.location = dm.image(map_.sim(u)[0]);
      t.steps_remaining = steps;
      t.tag = u;
      tokens.push_back(t);
    }
    auto res = sim::run_walks(std::move(tokens), vports, rng_, round_limit,
                              /*accept=*/{}, walk_jobs_);
    meter_.add_rounds(res.rounds);
    meter_.add_messages(res.messages);

    std::unordered_map<std::uint64_t, std::uint32_t> landing_count;
    for (const auto& t : res.tokens) {
      if (t.finished) ++landing_count[t.location];
    }
    std::vector<NodeId> still;
    for (const auto& t : res.tokens) {
      const NodeId u = t.tag;
      if (t.finished && landing_count[t.location] == 1 &&
          !taken[t.location] && nm.load(nm.owner(t.location)) >= 2) {
        meter_.add_topology(nm.transfer(t.location, u));
        meter_.add_messages(2);
        taken[t.location] = true;
      } else {
        still.push_back(u);
      }
    }
    contenders.swap(still);
    if (contenders.empty()) return;
  }
  DEX_ASSERT_MSG(false, "resolve_contenders_deflated failed to converge");
}

// ---------------------------------------------------------------------------
// Cost-model helpers
// ---------------------------------------------------------------------------

void DexNetwork::charge_flood(NodeId source) {
  const graph::Multigraph g = snapshot();
  meter_.add(sim::flood_cost(g, source, alive_));
}

void DexNetwork::charge_permutation_routing(std::uint64_t q) {
  // Analytic round bound of Cor. 3 (validated empirically by bench_walks):
  // O(log q · (log log q)² / log log log q); we charge the dominant term.
  const double lg = std::log2(static_cast<double>(std::max<std::uint64_t>(q, 4)));
  const double lglg = std::log2(std::max(lg, 2.0));
  meter_.add_rounds(static_cast<std::uint64_t>(std::ceil(lg * lglg * lglg)));
  // One packet per vertex; mean path length sampled on the current cycle.
  meter_.add_messages(q * sampled_mean_distance(*cyc_));
}

std::uint32_t DexNetwork::sampled_mean_distance(const PCycle& c) {
  const unsigned kSamples = 16;
  std::uint64_t total = 0;
  for (unsigned i = 0; i < kSamples; ++i) {
    const Vertex a = rng_.below(c.p());
    const Vertex b = rng_.below(c.p());
    total += c.distance(a, b);
  }
  return static_cast<std::uint32_t>(total / kSamples + 1);
}

// ---------------------------------------------------------------------------
// Batch-extension hooks (§5)
// ---------------------------------------------------------------------------

bool DexNetwork::try_assign_spare_vertex(NodeId newcomer, NodeId host) {
  if (!alive(host) || host == newcomer || !map_.in_spare(host)) return false;
  transfer_current_vertex(map_.sim(host).back(), newcomer);
  return true;
}

void DexNetwork::absorb_and_mark_dead(NodeId victim, NodeId& absorber,
                                      std::vector<Vertex>& absorbed) {
  absorber = pick_recovery_neighbor(victim);
  absorbed = map_.sim(victim);
  alive_[victim] = false;
  --n_alive_;
  journal_died(victim);
  for (Vertex z : absorbed) {
    journal_transfer(z, absorber);
    meter_.add_topology(map_.transfer(z, absorber));
  }
  meter_.add_messages(2 * absorbed.size());
}

bool DexNetwork::redistribution_target_ok(NodeId w) const {
  return alive(w) && map_.in_low(w);
}

// ---------------------------------------------------------------------------
// Invariant audit
// ---------------------------------------------------------------------------

void DexNetwork::check_invariants() const {
  DEX_ASSERT(map_.audit());
  std::uint64_t alive_count = 0;
  for (NodeId u = 0; u < alive_.size(); ++u) {
    if (alive_[u]) {
      ++alive_count;
      DEX_ASSERT_MSG(total_load(u) >= 1, "alive node simulates nothing");
      DEX_ASSERT_MSG(map_.load(u) <= prm_.max_load(),
                     "current-cycle load exceeds 4*zeta");
      if (build_)
        DEX_ASSERT_MSG(build_->new_load[u] <= prm_.max_load(),
                       "build load exceeds 4*zeta");
      if (tear_)
        DEX_ASSERT_MSG(tear_->old_load[u] <= 2 * prm_.max_load(),
                       "teardown residual load exceeds 8*zeta");
    } else {
      DEX_ASSERT(map_.load(u) == 0);
      if (build_)
        DEX_ASSERT(build_->new_load[u] == 0 && build_->claim_count[u] == 0);
      if (tear_) DEX_ASSERT(tear_->old_load[u] == 0);
    }
  }
  DEX_ASSERT(alive_count == n_alive_);
  for (Vertex z = 0; z < map_.p(); ++z)
    DEX_ASSERT_MSG(alive_[map_.owner(z)], "vertex owned by dead node");
  DEX_ASSERT(coord_.n == n_alive_);
  DEX_ASSERT(coord_.spare == map_.spare_count());
  DEX_ASSERT(coord_.low == map_.low_count());
  if (build_) {
    for (Vertex y = 0; y < build_->p_new; ++y) {
      if (build_processed(y)) {
        DEX_ASSERT_MSG(build_->phi_new[y] != kInvalidNode &&
                           alive_[build_->phi_new[y]],
                       "processed new vertex without alive owner");
      }
    }
    std::uint64_t open_claims = 0;
    for (NodeId u = 0; u < alive_.size(); ++u)
      open_claims += build_->claim_count[u];
    DEX_ASSERT(open_claims == build_->overrides.size());
  }
  if (tear_) {
    for (Vertex x = tear_->progress; x < tear_->p_old; ++x) {
      DEX_ASSERT_MSG(alive_[tear_->phi_old[x]],
                     "residual old vertex owned by dead node");
    }
  }
}

}  // namespace dex
