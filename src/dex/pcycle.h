#pragma once

/// \file pcycle.h
/// The p-cycle expander family (Definition 1 of the paper, after Lubotzky).
///
/// For a prime p, Z(p) has vertex set Z_p = {0, …, p−1} and edges
///   (1) y = x+1 mod p  (cycle successor),
///   (2) y = x−1 mod p  (cycle predecessor),
///   (3) y = x^{-1} mod p for x, y > 0  (inverse chord),
/// plus a self-loop at 0 (and the chord rule makes 1 and p−1 self-looped,
/// since 1^{-1} = 1 and (p−1)^{-1} = p−1). Every vertex thus has exactly
/// three ports (a self-loop counting 1), giving an infinite 3-regular family
/// with a constant spectral gap.
///
/// The adjacency is fully analytic — neighbors cost O(log p) (one modular
/// inverse) — so the virtual graph is never materialized. Shortest paths
/// are computed on demand by bidirectional BFS (the graph is an expander,
/// so frontiers meet after ~diam/2 = O(log p) levels) and, for the
/// coordinator's fixed target (vertex 0), via a cached BFS tree.

#include <array>
#include <cstdint>
#include <vector>

#include "support/assert.h"
#include "support/mathutil.h"

namespace dex {

using Vertex = std::uint64_t;

class PCycle {
 public:
  /// p must be prime (checked).
  explicit PCycle(std::uint64_t p);

  [[nodiscard]] std::uint64_t p() const { return p_; }

  [[nodiscard]] Vertex succ(Vertex x) const { return x + 1 == p_ ? 0 : x + 1; }
  [[nodiscard]] Vertex pred(Vertex x) const { return x == 0 ? p_ - 1 : x - 1; }

  /// The chord port: x^{-1} mod p for x > 0; 0 maps to itself (the explicit
  /// self-loop of Definition 1). Note inv(1) = 1 and inv(p−1) = p−1.
  /// Served from a lazily built O(p) table (the classic linear-time inverse
  /// recurrence): ports() sits under every walk step and every routing BFS,
  /// and paying an extended-Euclid per expansion made modinv two thirds of
  /// the traffic hot path.
  [[nodiscard]] Vertex inv(Vertex x) const {
    if (x == 0) return 0;
    if (inv_table_.empty()) build_inv_table();
    return inv_table_[x];
  }

  /// The three ports of x in a fixed order {succ, pred, inv}.
  [[nodiscard]] std::array<Vertex, 3> ports(Vertex x) const {
    return {succ(x), pred(x), inv(x)};
  }

  /// Degree is 3 for every vertex (self-loops count 1).
  [[nodiscard]] static constexpr unsigned degree() { return 3; }

  /// Distance from x to y (bidirectional BFS; O(sqrt p)-ish work).
  [[nodiscard]] std::uint32_t distance(Vertex x, Vertex y) const;

  /// A shortest path from x to y, inclusive of both endpoints. Forward BFS
  /// from x over flat epoch-stamped scratch arrays (reused across calls, so
  /// the traffic hot path runs allocation- and hash-free); the discovery
  /// order — frontier in order, ports {succ, pred, inv} — is the tie-break
  /// contract routing depends on, so the returned path never drifts.
  [[nodiscard]] std::vector<Vertex> shortest_path(Vertex x, Vertex y) const;

  /// Distance to vertex 0 using the cached BFS tree (O(1) after the first
  /// call, which builds the tree in O(p)).
  [[nodiscard]] std::uint32_t distance_to_zero(Vertex x) const;

  /// Path from x to 0 along the cached BFS tree (a shortest path).
  [[nodiscard]] std::vector<Vertex> path_to_zero(Vertex x) const;

  /// All (undirected) edges, self-loops once: used by tests and by
  /// materialization of the real network snapshot.
  /// Enumeration order: for each x, the edge (x, succ(x)); then for each
  /// x <= inv(x), the chord (x, inv(x)).
  template <class Fn>
  void for_each_edge(Fn&& fn) const {
    for (Vertex x = 0; x < p_; ++x) fn(x, succ(x));
    for (Vertex x = 0; x < p_; ++x) {
      const Vertex y = inv(x);
      if (x <= y) fn(x, y);
    }
  }

 private:
  void ensure_zero_tree() const;
  void build_inv_table() const;

  std::uint64_t p_;
  /// x -> x^{-1} mod p, built on first chord access. u32 entries: p is the
  /// smallest prime in (4 n0, 8 n0), far below 2^32 at any simulable size
  /// (asserted at construction), so the table costs 4 bytes per vertex.
  mutable std::vector<std::uint32_t> inv_table_;
  // Lazily built BFS tree rooted at 0: parent pointer per vertex.
  mutable std::vector<std::uint32_t> zero_dist_;
  mutable std::vector<Vertex> zero_parent_;
  // shortest_path scratch: epoch stamps mark "seen this call" without an
  // O(p) clear per call; parents are valid where stamp matches epoch.
  mutable std::vector<std::uint32_t> seen_epoch_;
  mutable std::vector<Vertex> seen_parent_;
  mutable std::vector<Vertex> frontier_scratch_[2];
  mutable std::uint32_t epoch_ = 0;
};

}  // namespace dex
