#pragma once

/// \file mapping.h
/// The virtual mapping Φ : V(Z_t) → V(G_t) (Definition 2 of the paper) with
/// the load bookkeeping behind the balanced-mapping invariant
/// (Definition 3): per-node simulated-vertex lists, loads, and incrementally
/// maintained |Spare| and |Low| counts
///   Low_t   = { u : 1 ≤ Load_t(u) ≤ 2ζ }      (Eq. 1)
///   Spare_t = { u : Load_t(u) ≥ 2 }           (Eq. 2)
/// Transfers return the number of real-network topology changes they imply
/// (each virtual vertex has 3 virtual edges; re-homing it re-homes the real
/// endpoint of each ⇒ ≤ 6 edge add/remove operations).

#include <cstdint>
#include <vector>

#include "graph/multigraph.h"
#include "support/assert.h"

namespace dex {

using Vertex = std::uint64_t;
using graph::NodeId;
using graph::kInvalidNode;

class VirtualMapping {
 public:
  VirtualMapping() = default;

  VirtualMapping(std::uint64_t p, std::size_t node_capacity,
                 std::uint64_t low_threshold)
      : p_(p),
        low_threshold_(low_threshold),
        phi_(p, kInvalidNode),
        pos_(p, 0),
        sim_(node_capacity) {}

  [[nodiscard]] std::uint64_t p() const { return p_; }
  [[nodiscard]] std::size_t node_capacity() const { return sim_.size(); }

  void ensure_node_capacity(std::size_t cap) {
    if (sim_.size() < cap) sim_.resize(cap);
  }

  [[nodiscard]] NodeId owner(Vertex z) const {
    DEX_ASSERT(z < p_);
    return phi_[z];
  }

  [[nodiscard]] const std::vector<Vertex>& sim(NodeId u) const {
    DEX_ASSERT(u < sim_.size());
    return sim_[u];
  }

  [[nodiscard]] std::uint32_t load(NodeId u) const {
    DEX_ASSERT(u < sim_.size());
    return static_cast<std::uint32_t>(sim_[u].size());
  }

  [[nodiscard]] bool in_spare(NodeId u) const { return load(u) >= 2; }
  [[nodiscard]] bool in_low(NodeId u) const {
    const auto l = load(u);
    return l >= 1 && l <= low_threshold_;
  }

  [[nodiscard]] std::uint64_t spare_count() const { return spare_count_; }
  [[nodiscard]] std::uint64_t low_count() const { return low_count_; }
  [[nodiscard]] std::uint64_t low_threshold() const { return low_threshold_; }

  /// First-time assignment of an unowned vertex (bulk construction and
  /// type-2 rebuilds). No topology cost is charged here — the caller meters
  /// rebuild costs wholesale.
  void assign(Vertex z, NodeId u) {
    DEX_ASSERT(z < p_ && u < sim_.size());
    DEX_ASSERT_MSG(phi_[z] == kInvalidNode, "vertex already owned");
    on_load_change(u, load(u), load(u) + 1);
    phi_[z] = u;
    pos_[z] = static_cast<std::uint32_t>(sim_[u].size());
    sim_[u].push_back(z);
  }

  /// Moves vertex z to node `to`; returns the implied number of real-edge
  /// changes (0 for a self-transfer, else 6: three virtual edges, each
  /// re-homed = one removal + one addition).
  std::uint64_t transfer(Vertex z, NodeId to) {
    DEX_ASSERT(z < p_ && to < sim_.size());
    const NodeId from = phi_[z];
    DEX_ASSERT(from != kInvalidNode);
    if (from == to) return 0;
    // Detach from `from` (swap-pop, patch the moved vertex's position).
    auto& fs = sim_[from];
    const std::uint32_t at = pos_[z];
    DEX_ASSERT(fs[at] == z);
    fs[at] = fs.back();
    pos_[fs[at]] = at;
    fs.pop_back();
    on_load_change(from, static_cast<std::uint32_t>(fs.size() + 1),
                   static_cast<std::uint32_t>(fs.size()));
    // Attach to `to`.
    on_load_change(to, load(to), load(to) + 1);
    phi_[z] = to;
    pos_[z] = static_cast<std::uint32_t>(sim_[to].size());
    sim_[to].push_back(z);
    return 6;
  }

  /// Full audit (heavy): Φ total + surjective onto nodes with load > 0,
  /// position index coherent, counters exact.
  [[nodiscard]] bool audit() const {
    std::uint64_t spare = 0, low = 0;
    for (NodeId u = 0; u < sim_.size(); ++u) {
      const auto l = load(u);
      if (l >= 2) ++spare;
      if (l >= 1 && l <= low_threshold_) ++low;
      for (std::uint32_t i = 0; i < sim_[u].size(); ++i) {
        const Vertex z = sim_[u][i];
        if (z >= p_ || phi_[z] != u || pos_[z] != i) return false;
      }
    }
    for (Vertex z = 0; z < p_; ++z) {
      if (phi_[z] == kInvalidNode || phi_[z] >= sim_.size()) return false;
    }
    return spare == spare_count_ && low == low_count_;
  }

 private:
  void on_load_change(NodeId u, std::uint32_t before, std::uint32_t after) {
    (void)u;
    const bool was_spare = before >= 2;
    const bool is_spare = after >= 2;
    spare_count_ += static_cast<std::uint64_t>(is_spare) -
                    static_cast<std::uint64_t>(was_spare);
    const bool was_low = before >= 1 && before <= low_threshold_;
    const bool is_low = after >= 1 && after <= low_threshold_;
    low_count_ += static_cast<std::uint64_t>(is_low) -
                  static_cast<std::uint64_t>(was_low);
  }

  std::uint64_t p_ = 0;
  std::uint64_t low_threshold_ = 16;
  std::vector<NodeId> phi_;          ///< vertex -> owning node
  std::vector<std::uint32_t> pos_;   ///< vertex -> index in owner's sim list
  std::vector<std::vector<Vertex>> sim_;
  std::uint64_t spare_count_ = 0;
  std::uint64_t low_count_ = 0;
};

}  // namespace dex
