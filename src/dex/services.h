#pragma once

/// \file services.h
/// The overlay services the paper's introduction motivates an expander for:
/// "effective communication channels with low latency for all messages …
/// and nodes can quickly sample a random node in the network (enabling many
/// randomized protocols)". These are thin, metered utilities over a live
/// DexNetwork:
///
///  * sample_node  — (almost-)uniform node sampling by a Θ(log n) random
///    walk on the real multigraph, de-biased by load (a walk's stationary
///    distribution is degree-proportional; degree = 3·load, so accepting a
///    landing node with probability 1/load restores near-uniformity).
///  * broadcast    — flood cost from a source (O(log n) rounds on an
///    expander, 2 messages per edge).
///  * route        — point-to-point message routing along locally computed
///    virtual shortest paths (the DHT's primitive, exposed directly).

#include <optional>

#include "dex/network.h"
#include "sim/meters.h"

namespace dex {

struct SampleResult {
  NodeId node = kInvalidNode;
  sim::StepCost cost;       ///< walk hops (messages == rounds)
  std::uint64_t attempts = 0;  ///< rejection-sampling restarts
};

/// Samples a node near-uniformly starting from `origin`. The walk length is
/// ceil(walk_factor · ln n); rejection de-biases the degree-proportional
/// landing distribution. Deterministic given the network's RNG state.
[[nodiscard]] SampleResult sample_node(DexNetwork& net, NodeId origin);

struct BroadcastResult {
  std::size_t reached = 0;  ///< alive nodes reached (must equal n)
  sim::StepCost cost;
};

/// Cost of flooding a message from `origin` to every alive node.
[[nodiscard]] BroadcastResult broadcast(DexNetwork& net, NodeId origin);

struct RouteResult {
  bool delivered = false;
  sim::StepCost cost;  ///< hops along the virtual path
};

/// Routes one message from `from` to `to` along the p-cycle shortest path
/// between one of their simulated vertices (both endpoints must be alive).
[[nodiscard]] RouteResult route(DexNetwork& net, NodeId from, NodeId to);

}  // namespace dex
