#include "dex/services.h"

#include "graph/bfs.h"
#include "support/mathutil.h"

namespace dex {

SampleResult sample_node(DexNetwork& net, NodeId origin) {
  DEX_ASSERT(net.alive(origin));
  SampleResult res;
  auto& rng = net.rng();
  const std::uint64_t len = std::max<std::uint64_t>(
      2, support::scaled_log(net.params().walk_factor,
                             std::max<std::uint64_t>(net.n(), 2)));
  std::vector<std::uint64_t> ports;
  // Rejection sampling: accept a landing node u with probability
  // min_load/load(u) (min_load == 1 by surjectivity), so the accepted
  // distribution is uniform over nodes up to the walk's mixing error.
  // After the initial full-length walk the chain is mixed; a rejected
  // attempt only needs a short extension walk before re-drawing, keeping
  // the expected total cost at O(log n).
  NodeId cur = origin;
  const std::uint64_t retry_len = std::max<std::uint64_t>(2, len / 4);
  for (res.attempts = 1; res.attempts <= 64; ++res.attempts) {
    const std::uint64_t hop_count = res.attempts == 1 ? len : retry_len;
    for (std::uint64_t s = 0; s < hop_count; ++s) {
      net.ports_of(cur, ports);
      DEX_ASSERT(!ports.empty());
      cur = static_cast<NodeId>(ports[rng.below(ports.size())]);
      res.cost.rounds += 1;
      res.cost.messages += 1;
    }
    const std::uint64_t load = std::max<std::uint64_t>(net.total_load(cur), 1);
    if (rng.below(load) == 0) {
      res.node = cur;
      return res;
    }
  }
  // Overwhelmingly unlikely (acceptance prob >= 1/(8ζ)); fall back to the
  // last landing node.
  std::vector<std::uint64_t> p2;
  net.ports_of(origin, p2);
  res.node = origin;
  return res;
}

BroadcastResult broadcast(DexNetwork& net, NodeId origin) {
  DEX_ASSERT(net.alive(origin));
  BroadcastResult res;
  const auto g = net.snapshot();
  const auto mask = net.alive_mask();
  const auto dist = graph::bfs_distances(g, origin, mask);
  std::uint64_t ecc = 0;
  std::uint64_t degree_sum = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!mask[u]) continue;
    if (dist[u] != graph::kUnreached) {
      ++res.reached;
      ecc = std::max<std::uint64_t>(ecc, dist[u]);
    }
    degree_sum += g.degree(u);
  }
  res.cost.rounds = ecc;
  res.cost.messages = degree_sum;  // one forward per directed edge
  return res;
}

RouteResult route(DexNetwork& net, NodeId from, NodeId to) {
  DEX_ASSERT(net.alive(from) && net.alive(to));
  RouteResult res;
  if (from == to) {
    res.delivered = true;
    return res;
  }
  const auto& sf = net.mapping().sim(from);
  const auto& st = net.mapping().sim(to);
  if (sf.empty() || st.empty()) return res;  // mid-build newcomers
  const std::uint64_t hops = net.cycle().distance(sf[0], st[0]);
  res.cost.rounds = hops;
  res.cost.messages = hops;
  res.delivered = true;
  return res;
}

}  // namespace dex
