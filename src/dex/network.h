#pragma once

/// \file network.h
/// DexNetwork — the self-healing expander maintenance algorithm of the
/// paper (Algorithms 4.1–4.9), with both recovery flavours:
///
///  * RecoveryMode::Amortized — type-2 recovery via simplifiedInfl /
///    simplifiedDefl (Algorithms 4.5/4.6): the whole virtual graph is
///    replaced in one step (Θ(n) messages / topology changes), amortized
///    over the Ω(n) type-1 steps separating type-2 events (Lemma 8, Cor 1).
///
///  * RecoveryMode::WorstCase — a coordinator (the node simulating vertex 0,
///    Algorithm 4.7) tracks |Spare|, |Low| and n; when a counter crosses
///    3θ·n the rebuild is *staggered* over Θ(n) subsequent steps
///    (Algorithms 4.8/4.9): each step a constant-size group of old vertices
///    builds its part of the next p-cycle (Phase 1), then the old p-cycle is
///    discarded group by group (Phase 2). Every step costs O(log n) rounds
///    and messages and O(1) topology changes (Theorem 1, Lemma 9).
///
/// The network exposes exactly the adversary interface of §2: insert one
/// node attached to an arbitrary existing node, or delete one arbitrary
/// node; the algorithm repairs before the next step.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dex/index_maps.h"
#include "dex/mapping.h"
#include "dex/pcycle.h"
#include "graph/csr.h"
#include "graph/multigraph.h"
#include "sim/meters.h"
#include "support/prng.h"

namespace dex {

enum class RecoveryMode { Amortized, WorstCase };
enum class StepOp { Insert, Delete };

/// Tuning parameters. Defaults favour experimental fidelity at simulable
/// sizes; the paper's proof constants are far more conservative (θ ≤ 1/545)
/// and can be restored by construction.
struct Params {
  std::uint64_t seed = 1;
  RecoveryMode mode = RecoveryMode::WorstCase;
  /// Rebuilding parameter θ (Eq. 3). Type-1 succeeds w.h.p. while the
  /// relevant set has ≥ θn nodes; the worst-case coordinator triggers
  /// staggered rebuilds at 3θn.
  double theta = 1.0 / 24.0;
  /// Maximum cloud size ζ (= 8 for the p-cycle family).
  std::uint64_t zeta = 8;
  /// Random-walk length = ceil(walk_factor * log2 n).
  double walk_factor = 4.0;
  /// Retries before declaring a type-1 walk failed in a step.
  std::uint64_t max_walk_retries = 64;

  [[nodiscard]] std::uint64_t low_threshold() const { return 2 * zeta; }
  [[nodiscard]] std::uint64_t max_load() const { return 4 * zeta; }
};

/// Per-step outcome, consumed by the benches.
struct StepReport {
  StepOp op = StepOp::Insert;
  sim::StepCost cost;
  std::uint64_t walk_retries = 0;
  bool type2_event = false;       ///< a type-2 rebuild started (or ran) here
  bool staggered_active = false;  ///< a staggered rebuild was in progress
  std::uint64_t n = 0;
  std::uint64_t p = 0;
};

class DexNetwork {
 public:
  /// Builds the initial constant-size network G_0: n0 nodes, a p-cycle with
  /// the smallest prime p0 ∈ (4·n0, 8·n0) (§4), vertices dealt round-robin
  /// (a balanced surjective mapping).
  explicit DexNetwork(std::size_t n0, Params params = {});

  DexNetwork(const DexNetwork&) = delete;
  DexNetwork& operator=(const DexNetwork&) = delete;

  // ----- adversary interface (§2) -----

  /// Inserts a new node attached to `attach_to` (must be alive); runs
  /// recovery; returns the new node's id.
  NodeId insert(NodeId attach_to);

  /// Deletes `victim` (must be alive; network must keep ≥ 2 nodes);
  /// runs recovery.
  void remove(NodeId victim);

  // ----- views -----

  [[nodiscard]] std::size_t n() const { return n_alive_; }
  [[nodiscard]] std::size_t node_capacity() const { return alive_.size(); }
  [[nodiscard]] bool alive(NodeId u) const {
    return u < alive_.size() && alive_[u];
  }
  [[nodiscard]] std::vector<NodeId> alive_nodes() const;
  [[nodiscard]] std::vector<bool> alive_mask() const { return alive_; }

  [[nodiscard]] std::uint64_t p() const { return map_.p(); }
  [[nodiscard]] const PCycle& cycle() const { return *cyc_; }
  [[nodiscard]] const VirtualMapping& mapping() const { return map_; }
  [[nodiscard]] const Params& params() const { return prm_; }

  /// Total simulated vertices at u across the current cycle plus any
  /// staggered build/teardown extras (claims count 0 until materialized).
  [[nodiscard]] std::uint64_t total_load(NodeId u) const;

  /// Owner of vertex 0 of the current cycle.
  [[nodiscard]] NodeId coordinator() const { return map_.owner(0); }

  [[nodiscard]] bool staggered_active() const {
    return build_.has_value() || tear_.has_value();
  }

  /// Monotone epoch counter, bumped at every p-cycle swap. The DHT uses it
  /// to detect when keys must be re-hashed.
  [[nodiscard]] std::uint64_t cycle_epoch() const { return cycle_epoch_; }

  /// Exact real-network multigraph implied by the virtual structure
  /// (current cycle + staggered extras). Node ids index the full capacity;
  /// use alive_mask() with the graph algorithms.
  [[nodiscard]] graph::Multigraph snapshot() const;

  /// Max real degree over alive nodes, via ports_of with one reused buffer
  /// — O(n·ζ) and allocation-light, unlike deriving it from snapshot()
  /// (which materializes the whole multigraph). Matches snapshot()'s degree
  /// convention exactly.
  [[nodiscard]] std::size_t max_degree() const;

  [[nodiscard]] const sim::CostMeter& meter() const { return meter_; }
  [[nodiscard]] const StepReport& last_report() const { return report_; }

  [[nodiscard]] std::uint64_t inflation_count() const { return inflations_; }
  [[nodiscard]] std::uint64_t deflation_count() const { return deflations_; }
  /// Times the safety valve (synchronous rebuild in worst-case mode) fired;
  /// expected 0 in any healthy configuration.
  [[nodiscard]] std::uint64_t forced_sync_type2() const {
    return forced_sync_type2_;
  }

  /// Coordinator's replicated counters (Algorithm 4.7); tests assert they
  /// match ground truth.
  struct CoordinatorState {
    std::uint64_t n = 0;
    std::uint64_t spare = 0;
    std::uint64_t low = 0;
  };
  [[nodiscard]] const CoordinatorState& coordinator_state() const {
    return coord_;
  }

  /// Heavy audit of every invariant the paper maintains (surjectivity,
  /// load bounds, counter exactness, staggered-state coherence). Aborts on
  /// violation. O(p).
  void check_invariants() const;

  // ----- hooks for the batch extension (§5) and tests -----

  /// Ports of node u in the real multigraph (derived on the fly). Exposed
  /// for the batch engine and the walk tests.
  void ports_of(NodeId u, std::vector<std::uint64_t>& out) const;

  /// Incremental-view surface (graph/csr.h). Calm-mode live adjacency of u:
  /// the current-cycle part of ports_of, same multiset convention as
  /// snapshot(). Returns false during a staggered rebuild — the build/tear
  /// extras enumerate asymmetrically between processed and unprocessed
  /// endpoints, so there is no cheap symmetric row to offer and callers
  /// must take the snapshot path (the journal reports full deltas across
  /// those windows anyway).
  [[nodiscard]] bool live_ports(NodeId u, std::vector<NodeId>& out) const;

  /// Installs (or clears, with nullptr) the churn journal the network
  /// appends touched ids to; the caller drains it between steps (see
  /// sim::HealingOverlay::drain_view_delta). Borrowed, not owned.
  void set_view_journal(graph::ViewDelta* j) { journal_ = j; }

  /// Intra-step walk parallelism: thread budget handed to sim::run_walks
  /// for the type-2 rebalance/contender epochs (byte-identical results for
  /// every value; see token_engine.h).
  void set_walk_jobs(unsigned jobs) { walk_jobs_ = jobs == 0 ? 1 : jobs; }
  [[nodiscard]] unsigned walk_jobs() const { return walk_jobs_; }

  support::Rng& rng() { return rng_; }
  sim::CostMeter& meter_mut() { return meter_; }

  /// Allocates a node id without attaching it (batch insertions).
  NodeId allocate_node();
  /// Marks an allocated node alive (batch insertions).
  void activate_node(NodeId u) {
    DEX_ASSERT(u < alive_.size() && !alive_[u]);
    alive_[u] = true;
    ++n_alive_;
    journal_born(u);
  }
  /// Low-level pieces used by the batch engine.
  [[nodiscard]] bool try_assign_spare_vertex(NodeId newcomer, NodeId host);
  void absorb_and_mark_dead(NodeId victim, NodeId& absorber,
                            std::vector<Vertex>& absorbed);
  [[nodiscard]] bool redistribution_target_ok(NodeId w) const;
  /// Moves a current-cycle vertex (batch redistribution); meters topology.
  void transfer_current_vertex(Vertex z, NodeId to) {
    journal_transfer(z, to);
    meter_.add_topology(map_.transfer(z, to));
    meter_.add_messages(2);
  }
  /// Re-syncs coordinator counters and closes the step window after a batch.
  sim::StepCost finish_batch_step() {
    refresh_coordinator_counters();
    return meter_.end_step();
  }
  void force_simplified_inflate() { simplified_inflate(); }
  void force_simplified_deflate() { simplified_deflate(); }

 private:
  // --- staggered rebuild state ---

  /// Phase 1 of Algorithm 4.8/4.9: the next p-cycle is being built while
  /// the current one stays fully operational.
  struct BuildState {
    bool inflating = true;
    std::uint64_t p_new = 0;
    std::unique_ptr<PCycle> cyc_new;
    std::optional<InflationMap> infl;
    std::optional<DeflationMap> defl;
    std::uint64_t progress = 0;  ///< old vertices [0, progress) processed
    std::uint64_t batch = 1;     ///< old vertices per step
    std::vector<NodeId> phi_new;             ///< owner once materialized
    std::vector<std::vector<Vertex>> new_sim;  ///< per-node materialized
    std::vector<std::uint32_t> new_load;
    /// Pre-assignments of not-yet-materialized new vertices (deflation
    /// contending grabs, insertion grants): consumed at processing time.
    std::unordered_map<Vertex, NodeId> overrides;
    std::vector<std::uint32_t> claim_count;  ///< per-node open overrides
  };

  /// Phase 2: the previous cycle being discarded group by group after the
  /// swap. The *current* mapping is already the new cycle.
  struct TeardownState {
    std::uint64_t p_old = 0;
    std::unique_ptr<PCycle> cyc_old;
    std::uint64_t progress = 0;  ///< old vertices [0, progress) dropped
    std::uint64_t batch = 1;
    std::vector<NodeId> phi_old;
    std::vector<std::uint32_t> pos_old;  ///< index in old_sim lists
    std::vector<std::vector<Vertex>> old_sim;  ///< undropped per node
    std::vector<std::uint32_t> old_load;
  };

  // --- recovery machinery ---

  [[nodiscard]] std::uint64_t walk_length() const;

  /// One type-1 random walk on the real network from `start`; stops at the
  /// first node satisfying `accept`; returns kInvalidNode on failure.
  /// `exclude` is skipped while stepping (the freshly inserted node).
  NodeId type1_walk(NodeId start,
                    const std::function<bool(NodeId)>& accept,
                    NodeId exclude = kInvalidNode);

  /// Walk with retries + coordinator consults + safety valve; never fails.
  NodeId walk_until_found(NodeId start,
                          const std::function<bool(NodeId)>& accept,
                          bool insert_side, NodeId exclude = kInvalidNode);

  void handle_insert_recovery(NodeId u, NodeId attach_to);
  /// One attempt at insertion recovery under the current state; returns
  /// false if a rebuild/trigger changed the state and dispatch must rerun.
  bool dispatch_insert(NodeId u, NodeId attach_to);
  /// Returns the neighbor that led the repair (for coordinator notification).
  NodeId handle_delete_recovery(NodeId victim);

  // --- type-2: simplified (amortized) ---
  void simplified_inflate();
  void simplified_deflate();
  /// Phase 2 of simplifiedInfl: parallel-walk shedding of loads > 4ζ.
  void rebalance_inflated(VirtualMapping& nm, const PCycle& nc);
  /// Phase 2 of simplifiedDefl: contending nodes grab non-taken vertices.
  void resolve_contenders_deflated(VirtualMapping& nm, const PCycle& nc,
                                   const DeflationMap& dm);

  // --- type-2: staggered (worst case) ---
  void maybe_trigger_staggered();
  void start_staggered(bool inflate);
  void advance_staggered();
  void advance_build();
  /// Materializes the clouds of old vertex x; returns the longest routing
  /// distance used to place an inverse/intermediate edge (rounds charge).
  std::uint64_t process_build_vertex(Vertex x);
  void finish_build_phase();   ///< swap: build -> teardown
  void advance_teardown();
  [[nodiscard]] std::uint64_t staggered_batch(std::uint64_t p_len) const;

  [[nodiscard]] bool build_processed(Vertex y) const;
  [[nodiscard]] Vertex build_generator(Vertex y) const;
  [[nodiscard]] NodeId owner_future(Vertex y) const;
  /// New vertices node w can still give away (materialized + future − claims
  /// − its own reserve).
  [[nodiscard]] std::int64_t spare_new_capacity(NodeId w) const;
  void grant_new_vertex(NodeId w, NodeId to);
  void shed_excess_new_load(NodeId from);
  void transfer_new_vertex(Vertex y, NodeId to);
  void transfer_old_residual(Vertex x, NodeId to);

  // --- coordinator (Algorithm 4.7) ---
  void notify_coordinator(NodeId from);
  void refresh_coordinator_counters();

  void charge_flood(NodeId source);
  /// Analytic charge for one permutation-routing pass on a p-cycle of size
  /// q (Cor. 3); validated empirically by bench_walks.
  void charge_permutation_routing(std::uint64_t q);
  [[nodiscard]] std::uint32_t sampled_mean_distance(const PCycle& c);

  void begin_step(StepOp op);
  void post_step_common(NodeId actor);
  void end_step();

  [[nodiscard]] NodeId pick_recovery_neighbor(NodeId victim) const;

  // --- churn journal (graph/csr.h ViewDelta; no-ops when none installed).
  // Entries after a full mark are dropped — the full mark supersedes them
  // and keeps the lists from growing across a whole staggered window.
  void journal_born(NodeId u) {
    if (journal_ && !journal_->full) journal_->born.push_back(u);
  }
  void journal_died(NodeId u) {
    if (journal_ && !journal_->full) journal_->died.push_back(u);
  }
  void journal_full() {
    if (journal_) journal_->mark_full();
  }
  /// Adjacency touched when current-cycle vertex z moves to `to`: the old
  /// owner, the new owner, and the owners of z's cycle neighbors. Must run
  /// BEFORE the map_.transfer it describes.
  void journal_transfer(Vertex z, NodeId to) {
    if (!journal_ || journal_->full) return;
    journal_->dirty.push_back(map_.owner(z));
    journal_->dirty.push_back(to);
    for (Vertex w : cyc_->ports(z)) journal_->dirty.push_back(map_.owner(w));
  }

  // --- data ---
  Params prm_;
  support::Rng rng_;
  sim::CostMeter meter_;
  StepReport report_;

  std::unique_ptr<PCycle> cyc_;
  VirtualMapping map_;

  std::vector<bool> alive_;
  std::size_t n_alive_ = 0;

  std::optional<BuildState> build_;
  std::optional<TeardownState> tear_;

  CoordinatorState coord_;
  graph::ViewDelta* journal_ = nullptr;  ///< borrowed; see set_view_journal
  unsigned walk_jobs_ = 1;
  std::uint64_t cycle_epoch_ = 0;
  std::uint64_t inflations_ = 0;
  std::uint64_t deflations_ = 0;
  std::uint64_t forced_sync_type2_ = 0;
};

}  // namespace dex
