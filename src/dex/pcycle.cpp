#include "dex/pcycle.h"

#include <algorithm>
#include <unordered_map>

namespace dex {

PCycle::PCycle(std::uint64_t p) : p_(p) {
  DEX_ASSERT_MSG(support::is_prime(p), "p-cycle size must be prime");
  DEX_ASSERT_MSG(p >= 5, "p-cycle needs p >= 5");
  DEX_ASSERT_MSG(p < (std::uint64_t{1} << 32),
                 "inverse table stores u32 vertices");
}

void PCycle::build_inv_table() const {
  // Linear-time inverse table: inv[1] = 1 and, for 1 < i < p,
  // inv[i] = -(p / i) * inv[p mod i] mod p — each entry reads an already
  // computed one because p mod i < i.
  inv_table_.resize(p_);
  inv_table_[0] = 0;  // the self-loop convention of Definition 1
  if (p_ > 1) inv_table_[1] = 1;
  for (std::uint64_t i = 2; i < p_; ++i) {
    const std::uint64_t q = p_ / i;
    const std::uint64_t r = p_ % i;
    inv_table_[i] =
        static_cast<std::uint32_t>(p_ - (q * inv_table_[r]) % p_);
  }
}

std::uint32_t PCycle::distance(Vertex x, Vertex y) const {
  if (x == y) return 0;
  // Bidirectional BFS with hash-map distance tables (p can be large, the
  // explored region is ~O(sqrt p) on an expander).
  std::unordered_map<Vertex, std::uint32_t> dist_x{{x, 0}}, dist_y{{y, 0}};
  std::vector<Vertex> frontier_x{x}, frontier_y{y};
  std::uint32_t depth_x = 0, depth_y = 0;

  auto expand = [&](std::vector<Vertex>& frontier,
                    std::unordered_map<Vertex, std::uint32_t>& mine,
                    const std::unordered_map<Vertex, std::uint32_t>& other,
                    std::uint32_t& depth) -> std::int64_t {
    std::vector<Vertex> next;
    ++depth;
    for (Vertex v : frontier) {
      for (Vertex w : ports(v)) {
        if (mine.contains(w)) continue;
        mine.emplace(w, depth);
        auto it = other.find(w);
        if (it != other.end())
          return static_cast<std::int64_t>(depth + it->second);
        next.push_back(w);
      }
    }
    frontier.swap(next);
    return -1;
  };

  // Expand the smaller frontier each turn. The graph is connected, so the
  // loop terminates.
  while (true) {
    DEX_ASSERT_MSG(!frontier_x.empty() || !frontier_y.empty(),
                   "p-cycle BFS exhausted without meeting");
    std::int64_t met;
    if (!frontier_x.empty() &&
        (frontier_y.empty() || frontier_x.size() <= frontier_y.size())) {
      met = expand(frontier_x, dist_x, dist_y, depth_x);
    } else {
      met = expand(frontier_y, dist_y, dist_x, depth_y);
    }
    if (met >= 0) {
      // The first meeting gives a path; it may overshoot the true distance
      // by at most 1 level per side — tighten by scanning both tables.
      std::uint32_t best = static_cast<std::uint32_t>(met);
      // det: min over all meeting vertices — commutative, order cannot leak.
      for (const auto& [v, dv] : dist_x) {
        auto it = dist_y.find(v);
        if (it != dist_y.end()) best = std::min(best, dv + it->second);
      }
      return best;
    }
  }
}

std::vector<Vertex> PCycle::shortest_path(Vertex x, Vertex y) const {
  if (x == y) return {x};
  // Forward BFS from x until y is discovered. Same discovery discipline as
  // ever (frontier in order, ports {succ, pred, inv}, first discoverer is
  // the parent) — only the bookkeeping changed, from per-call hash maps to
  // flat epoch-stamped arrays: ~an order of magnitude less work per op on
  // the traffic hot path, where this runs for every distinct (origin, home)
  // pair of a step.
  if (seen_epoch_.size() != p_) {
    seen_epoch_.assign(p_, 0);
    seen_parent_.assign(p_, 0);
    epoch_ = 0;
  }
  if (++epoch_ == 0) {  // stamp wrap: one real clear every 2^32 calls
    seen_epoch_.assign(p_, 0);
    epoch_ = 1;
  }
  auto& frontier = frontier_scratch_[0];
  auto& next = frontier_scratch_[1];
  frontier.clear();
  frontier.push_back(x);
  seen_epoch_[x] = epoch_;
  seen_parent_[x] = x;
  while (!frontier.empty()) {
    next.clear();
    for (const Vertex v : frontier) {
      for (const Vertex w : ports(v)) {
        if (seen_epoch_[w] == epoch_) continue;
        seen_epoch_[w] = epoch_;
        seen_parent_[w] = v;
        if (w == y) {
          std::vector<Vertex> path{y};
          Vertex cur = y;
          while (cur != x) {
            cur = seen_parent_[cur];
            path.push_back(cur);
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        next.push_back(w);
      }
    }
    frontier.swap(next);
  }
  DEX_ASSERT_MSG(false, "shortest_path: target unreachable on the p-cycle");
  return {};
}

void PCycle::ensure_zero_tree() const {
  if (!zero_dist_.empty()) return;
  zero_dist_.assign(p_, ~std::uint32_t{0});
  zero_parent_.assign(p_, 0);
  std::vector<Vertex> frontier{0};
  zero_dist_[0] = 0;
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    std::vector<Vertex> next;
    for (Vertex v : frontier) {
      for (Vertex w : ports(v)) {
        if (zero_dist_[w] != ~std::uint32_t{0}) continue;
        zero_dist_[w] = depth;
        zero_parent_[w] = v;
        next.push_back(w);
      }
    }
    frontier.swap(next);
  }
}

std::uint32_t PCycle::distance_to_zero(Vertex x) const {
  ensure_zero_tree();
  return zero_dist_[x];
}

std::vector<Vertex> PCycle::path_to_zero(Vertex x) const {
  ensure_zero_tree();
  std::vector<Vertex> path{x};
  Vertex cur = x;
  while (cur != 0) {
    cur = zero_parent_[cur];
    path.push_back(cur);
  }
  return path;
}

}  // namespace dex
