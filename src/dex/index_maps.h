#pragma once

/// \file index_maps.h
/// The vertex correspondences between consecutive p-cycles used by type-2
/// recovery, as pure (exhaustively testable) integer maps.
///
/// Inflation (Eqs. 6–7 of the paper): moving from Z(p) to Z(q), q ∈ (4p,8p),
/// every old vertex x is replaced by the *cloud* of new vertices
///   y_j = ⌈αx⌉ + j,  0 ≤ j ≤ c(x),  c(x) = ⌈α(x+1)⌉ − ⌈αx⌉ − 1,
/// with α = q/p (computed exactly as rationals). Lemma 4(b): this is a
/// bijection between Z_q and the union of clouds; cloud sizes are ≤ ζ = 8.
///
/// Deflation (§4.2.2): moving from Z(p) to Z(q), q ∈ (p/8, p/4), old vertex
/// x maps onto y = ⌊x/α⌋ with α = p/q; the *dominating* vertex of y is the
/// smallest x in y's deflation cloud. Lemma 6(b): dominating vertices are in
/// 1-1 correspondence with Z_q.

#include <cstdint>
#include <vector>

#include "support/assert.h"
#include "support/mathutil.h"

namespace dex {

using Vertex = std::uint64_t;

/// Vertex correspondence for an inflation step Z(p_old) -> Z(p_new).
class InflationMap {
 public:
  InflationMap(std::uint64_t p_old, std::uint64_t p_new)
      : p_old_(p_old), p_new_(p_new) {
    DEX_ASSERT_MSG(p_new > 4 * p_old && p_new < 8 * p_old,
                   "inflation prime must lie in (4p, 8p)");
  }

  [[nodiscard]] std::uint64_t p_old() const { return p_old_; }
  [[nodiscard]] std::uint64_t p_new() const { return p_new_; }

  /// ⌈α·x⌉ with α = p_new/p_old, exact.
  [[nodiscard]] Vertex ceil_alpha(Vertex x) const {
    return support::ceil_div_mul(p_new_, x, p_old_);
  }

  /// c(x) of Eq. 6: the cloud of x has c(x)+1 vertices.
  [[nodiscard]] std::uint64_t c(Vertex x) const {
    return ceil_alpha(x + 1) - ceil_alpha(x) - 1;
  }

  /// y_j of Eq. 7. Requires j <= c(x). (The mod of Eq. 7 never wraps since
  /// ⌈α·p_old⌉ = p_new; kept as a plain sum.)
  [[nodiscard]] Vertex child(Vertex x, std::uint64_t j) const {
    DEX_ASSERT(j <= c(x));
    return ceil_alpha(x) + j;
  }

  /// The cloud of x as an explicit list (size ≤ ζ = 8).
  [[nodiscard]] std::vector<Vertex> cloud(Vertex x) const {
    std::vector<Vertex> out;
    const std::uint64_t cx = c(x);
    out.reserve(cx + 1);
    for (std::uint64_t j = 0; j <= cx; ++j) out.push_back(child(x, j));
    return out;
  }

  /// Inverse of `child`: the old vertex whose cloud contains y.
  /// x = ⌊y·p_old/p_new⌋ (see Lemma 4's bijectivity argument).
  [[nodiscard]] Vertex parent(Vertex y) const {
    DEX_ASSERT(y < p_new_);
    return (y * p_old_) / p_new_;
  }

  /// Maximum cloud size over all x (ζ in the paper; ≤ 8 since α < 8).
  [[nodiscard]] std::uint64_t zeta() const {
    return (p_new_ + p_old_ - 1) / p_old_;  // ⌈α⌉ bounds c(x)+1
  }

 private:
  std::uint64_t p_old_;
  std::uint64_t p_new_;
};

/// Vertex correspondence for a deflation step Z(p_old) -> Z(p_new).
class DeflationMap {
 public:
  DeflationMap(std::uint64_t p_old, std::uint64_t p_new)
      : p_old_(p_old), p_new_(p_new) {
    DEX_ASSERT_MSG(8 * p_new > p_old && 4 * p_new < p_old,
                   "deflation prime must lie in (p/8, p/4)");
  }

  [[nodiscard]] std::uint64_t p_old() const { return p_old_; }
  [[nodiscard]] std::uint64_t p_new() const { return p_new_; }

  /// y = ⌊x/α⌋ with α = p_old/p_new, exact.
  [[nodiscard]] Vertex image(Vertex x) const {
    DEX_ASSERT(x < p_old_);
    return (x * p_new_) / p_old_;
  }

  /// Smallest x with image(x) == y — the vertex that *dominates* y's
  /// deflation cloud: x = ⌈y·p_old/p_new⌉.
  [[nodiscard]] Vertex dominating(Vertex y) const {
    DEX_ASSERT(y < p_new_);
    return support::ceil_div_mul(p_old_, y, p_new_);
  }

  [[nodiscard]] bool is_dominating(Vertex x) const {
    return dominating(image(x)) == x;
  }

  /// The deflation cloud of y: all old vertices mapping onto y (size ≤ 8).
  [[nodiscard]] std::vector<Vertex> cloud(Vertex y) const {
    std::vector<Vertex> out;
    const Vertex first = dominating(y);
    for (Vertex x = first; x < p_old_ && image(x) == y; ++x) out.push_back(x);
    return out;
  }

 private:
  std::uint64_t p_old_;
  std::uint64_t p_new_;
};

}  // namespace dex
