#include "dex/batch.h"

#include <algorithm>
#include <unordered_set>

#include "graph/bfs.h"
#include "sim/token_engine.h"
#include "support/mathutil.h"

namespace dex {

namespace {

/// Validates the deletion set: victims alive, remainder connected, every
/// victim has a surviving neighbor.
void validate_deletions(const DexNetwork& net,
                        const std::vector<NodeId>& victims) {
  std::unordered_set<NodeId> dying(victims.begin(), victims.end());
  DEX_ASSERT_MSG(dying.size() == victims.size(), "duplicate victims");
  DEX_ASSERT_MSG(dying.size() + 2 <= net.n(), "batch would empty the network");
  std::vector<std::uint64_t> ports;
  for (NodeId v : victims) {
    DEX_ASSERT_MSG(net.alive(v), "victim not alive");
    net.ports_of(v, ports);
    bool has_survivor = false;
    for (std::uint64_t t : ports) {
      const NodeId c = static_cast<NodeId>(t);
      if (c != v && !dying.contains(c)) {
        has_survivor = true;
        break;
      }
    }
    DEX_ASSERT_MSG(has_survivor, "victim would have no surviving neighbor");
  }
  // Remainder connectivity.
  auto g = net.snapshot();
  std::vector<bool> alive = net.alive_mask();
  for (NodeId v : victims) alive[v] = false;
  DEX_ASSERT_MSG(graph::is_connected(g, alive),
                 "deletions would disconnect the network");
}

}  // namespace

BatchResult apply_batch(DexNetwork& net, const BatchRequest& req) {
  BatchResult res;
  auto& rng = net.rng();
  auto& meter = net.meter_mut();

  DEX_ASSERT_MSG(!net.staggered_active(),
                 "batch steps use the simplified (amortized) rebuilds; run "
                 "the network in RecoveryMode::Amortized");
  validate_deletions(net, req.deletions);
  std::unordered_set<NodeId> dying(req.deletions.begin(),
                                   req.deletions.end());
  for (NodeId a : req.attach_to)
    DEX_ASSERT_MSG(net.alive(a) && !dying.contains(a),
                   "attach target must survive the batch");

  const std::uint64_t walk_len = std::max<std::uint64_t>(
      2, support::scaled_log(net.params().walk_factor,
                             std::max<std::uint64_t>(net.n(), 2)));
  const std::uint64_t round_limit =
      walk_len * std::max<std::uint64_t>(
                     4, support::floor_log2(std::max<std::uint64_t>(
                            net.n(), 4)));

  sim::PortsFn ports_fn = [&net](std::uint64_t loc,
                                 std::vector<std::uint64_t>& out) {
    net.ports_of(static_cast<NodeId>(loc), out);
  };

  // --- deletions: absorb, then redistribute all orphaned vertices with
  // parallel walks. Absorbers may themselves die later in the batch (their
  // vertices cascade to their own absorbers), so walks start at each
  // vertex's *current* owner, looked up per epoch. ---
  std::vector<Vertex> orphans;
  for (NodeId v : req.deletions) {
    NodeId absorber = kInvalidNode;
    std::vector<Vertex> absorbed;
    net.absorb_and_mark_dead(v, absorber, absorbed);
    for (Vertex z : absorbed) orphans.push_back(z);
  }

  // Deflate if Low collapsed below θn (Fact 2(b) at batch scale).
  {
    const auto thr = static_cast<std::uint64_t>(
        net.params().theta * static_cast<double>(net.n()));
    if (!req.deletions.empty() &&
        net.mapping().low_count() < std::max<std::uint64_t>(thr, 1) &&
        net.p() >= 60) {
      net.force_simplified_deflate();
      res.used_type2 = true;
      orphans.clear();  // the rebuild re-homed every vertex
    }
  }

  for (std::uint64_t epoch = 0; !orphans.empty() && epoch < 200; ++epoch) {
    ++res.walk_epochs;
    // Walk epochs can drain Low below the threshold mid-batch; re-check the
    // deflation condition each round (Fact 2(b) at batch scale).
    {
      const auto thr = static_cast<std::uint64_t>(
          net.params().theta * static_cast<double>(net.n()));
      if (net.mapping().low_count() < std::max<std::uint64_t>(thr, 1) &&
          net.p() >= 60 && net.p() > 8 * net.n()) {
        net.force_simplified_deflate();
        res.used_type2 = true;
        orphans.clear();  // the rebuild re-homed every vertex
        break;
      }
    }
    // After a few stalled epochs, widen the target set from Low (≤2ζ) to
    // anything under the 4ζ cap — preserves the balance invariant and
    // guarantees progress when Low is scarce but no deflation is legal.
    const bool relaxed = epoch >= 8;
    std::vector<sim::Token> tokens;
    for (std::size_t i = 0; i < orphans.size(); ++i) {
      sim::Token t;
      t.location = net.mapping().owner(orphans[i]);
      t.steps_remaining = walk_len;
      t.tag = static_cast<std::uint32_t>(i);
      tokens.push_back(t);
    }
    auto walk = sim::run_walks(std::move(tokens), ports_fn, rng, round_limit);
    meter.add_rounds(walk.rounds);
    meter.add_messages(walk.messages);
    std::vector<Vertex> remaining;
    for (const auto& t : walk.tokens) {
      const Vertex z = orphans[t.tag];
      const NodeId w = static_cast<NodeId>(t.location);
      const bool ok =
          net.redistribution_target_ok(w) ||
          (relaxed && net.alive(w) &&
           net.mapping().load(w) < net.params().max_load());
      if (t.finished && ok) {
        net.transfer_current_vertex(z, w);
      } else {
        remaining.push_back(z);
      }
    }
    orphans.swap(remaining);
  }
  DEX_ASSERT_MSG(orphans.empty(), "batch redistribution did not converge");

  // --- insertions: inflate first if Spare cannot cover the batch ---
  if (!req.attach_to.empty() &&
      net.mapping().spare_count() < req.attach_to.size()) {
    net.force_simplified_inflate();
    res.used_type2 = true;
  }

  struct Pending {
    NodeId node;
    NodeId attach;
  };
  std::vector<Pending> pending;
  for (NodeId a : req.attach_to) {
    const NodeId u = net.allocate_node();
    // allocate_node leaves the node dead; activate it.
    // (Insertion bookkeeping is done through the public hook below.)
    pending.push_back({u, a});
  }
  // Activate newcomers.
  for (const auto& pnd : pending) net.activate_node(pnd.node);

  for (std::uint64_t epoch = 0; !pending.empty() && epoch < 200; ++epoch) {
    ++res.walk_epochs;
    std::vector<sim::Token> tokens;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      sim::Token t;
      t.location = pending[i].attach;
      t.steps_remaining = walk_len;
      t.tag = static_cast<std::uint32_t>(i);
      tokens.push_back(t);
    }
    auto walk = sim::run_walks(std::move(tokens), ports_fn, rng, round_limit);
    meter.add_rounds(walk.rounds);
    meter.add_messages(walk.messages);
    std::vector<Pending> remaining;
    for (const auto& t : walk.tokens) {
      const Pending pnd = pending[t.tag];
      const NodeId w = static_cast<NodeId>(t.location);
      if (!t.finished || !net.try_assign_spare_vertex(pnd.node, w)) {
        remaining.push_back(pnd);
      } else {
        res.inserted.push_back(pnd.node);
      }
    }
    pending.swap(remaining);
    if (!pending.empty() && net.mapping().spare_count() < pending.size()) {
      net.force_simplified_inflate();
      res.used_type2 = true;
    }
  }
  DEX_ASSERT_MSG(pending.empty(), "batch insertions did not converge");

  res.cost = net.finish_batch_step();
  return res;
}

}  // namespace dex
