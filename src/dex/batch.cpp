#include "dex/batch.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/csr.h"
#include "sim/token_engine.h"
#include "support/mathutil.h"

namespace dex {

namespace {

/// Connectivity of the survivors (alive minus `dying`) on the live
/// adjacency: one BFS over the caller's maintained CSR when one is wired,
/// else over ports_of — neither path materializes a Multigraph. The CSR and
/// ports_of expose the same adjacency multiset (live_ports contract), so
/// the verdict cannot depend on which path ran.
bool survivors_connected(const DexNetwork& net, const graph::CsrView* live,
                         const std::unordered_set<NodeId>& dying) {
  const std::vector<bool> alive = net.alive_mask();
  const std::size_t survivors = net.n() - dying.size();
  if (survivors <= 1) return true;
  NodeId start = kInvalidNode;
  for (NodeId u = 0; u < alive.size(); ++u) {
    if (alive[u] && !dying.contains(u)) {
      start = u;
      break;
    }
  }
  DEX_ASSERT(start != kInvalidNode);
  std::vector<char> seen(alive.size(), 0);
  std::vector<NodeId> queue{start};
  seen[start] = 1;
  std::size_t visited = 1;
  std::vector<std::uint64_t> ports;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    auto visit = [&](NodeId w) {
      if (seen[w] || dying.contains(w)) return;
      seen[w] = 1;
      ++visited;
      queue.push_back(w);
    };
    if (live != nullptr) {
      for (const NodeId w : live->neighbors(u)) visit(w);
    } else {
      net.ports_of(u, ports);
      for (const std::uint64_t t : ports) visit(static_cast<NodeId>(t));
    }
  }
  return visited == survivors;
}

/// The one §5 precondition checker (duplicates, population floor, surviving
/// neighbors, attach survival + multiplicity cap, remainder connectivity).
/// Returns nullptr when `req` is valid, else a description of the first
/// violation — batch_feasible and apply_batch's assert path both consume
/// this, so the fatal and non-fatal checks can never drift apart.
const char* precondition_violation(const DexNetwork& net,
                                   const BatchRequest& req,
                                   const graph::CsrView* live) {
  std::unordered_set<NodeId> dying(req.deletions.begin(),
                                   req.deletions.end());
  if (dying.size() != req.deletions.size()) return "duplicate victims";
  if (dying.size() + 2 > net.n()) return "batch would empty the network";
  std::vector<std::uint64_t> ports;
  for (NodeId v : req.deletions) {
    if (!net.alive(v)) return "victim not alive";
    net.ports_of(v, ports);
    bool has_survivor = false;
    for (std::uint64_t t : ports) {
      const NodeId c = static_cast<NodeId>(t);
      if (c != v && !dying.contains(c)) {
        has_survivor = true;
        break;
      }
    }
    if (!has_survivor) return "victim would have no surviving neighbor";
  }
  std::unordered_map<NodeId, std::size_t> mult;
  for (NodeId a : req.attach_to) {
    if (!net.alive(a) || dying.contains(a))
      return "attach target must survive the batch";
    if (++mult[a] > sim::kMaxAttachPerNode)
      return "attach multiplicity exceeds the O(1) cap";
  }
  if (!req.deletions.empty()) {
    if (!survivors_connected(net, live, dying))
      return "deletions would disconnect the network";
  }
  return nullptr;
}

}  // namespace

bool batch_feasible(const DexNetwork& net, const BatchRequest& req,
                    const graph::CsrView* live) {
  if (net.params().mode != RecoveryMode::Amortized ||
      net.staggered_active()) {
    return false;
  }
  return precondition_violation(net, req, live) == nullptr;
}

BatchResult apply_batch(DexNetwork& net, const BatchRequest& req,
                        bool prevalidated, const graph::CsrView* live) {
  BatchResult res;
  auto& rng = net.rng();
  auto& meter = net.meter_mut();

  DEX_ASSERT_MSG(!net.staggered_active(),
                 "batch steps use the simplified (amortized) rebuilds; run "
                 "the network in RecoveryMode::Amortized");
  if (!prevalidated) {
    const char* violation = precondition_violation(net, req, live);
    DEX_ASSERT_MSG(violation == nullptr, violation);
  }

  const std::uint64_t walk_len = std::max<std::uint64_t>(
      2, support::scaled_log(net.params().walk_factor,
                             std::max<std::uint64_t>(net.n(), 2)));
  const std::uint64_t round_limit =
      walk_len * std::max<std::uint64_t>(
                     4, support::floor_log2(std::max<std::uint64_t>(
                            net.n(), 4)));

  sim::PortsFn ports_fn = [&net](std::uint64_t loc,
                                 std::vector<std::uint64_t>& out) {
    net.ports_of(static_cast<NodeId>(loc), out);
  };

  // --- deletions: absorb, then redistribute all orphaned vertices with
  // parallel walks. Absorbers may themselves die later in the batch (their
  // vertices cascade to their own absorbers), so walks start at each
  // vertex's *current* owner, looked up per epoch. ---
  std::vector<Vertex> orphans;
  for (NodeId v : req.deletions) {
    NodeId absorber = kInvalidNode;
    std::vector<Vertex> absorbed;
    net.absorb_and_mark_dead(v, absorber, absorbed);
    for (Vertex z : absorbed) orphans.push_back(z);
  }

  // Deflate if Low collapsed below θn (Fact 2(b) at batch scale).
  {
    const auto thr = static_cast<std::uint64_t>(
        net.params().theta * static_cast<double>(net.n()));
    if (!req.deletions.empty() &&
        net.mapping().low_count() < std::max<std::uint64_t>(thr, 1) &&
        net.p() >= 60) {
      net.force_simplified_deflate();
      res.used_type2 = true;
      orphans.clear();  // the rebuild re-homed every vertex
    }
  }

  for (std::uint64_t epoch = 0; !orphans.empty() && epoch < 200; ++epoch) {
    ++res.walk_epochs;
    // Walk epochs can drain Low below the threshold mid-batch; re-check the
    // deflation condition each round (Fact 2(b) at batch scale).
    {
      const auto thr = static_cast<std::uint64_t>(
          net.params().theta * static_cast<double>(net.n()));
      if (net.mapping().low_count() < std::max<std::uint64_t>(thr, 1) &&
          net.p() >= 60 && net.p() > 8 * net.n()) {
        net.force_simplified_deflate();
        res.used_type2 = true;
        orphans.clear();  // the rebuild re-homed every vertex
        break;
      }
    }
    // After a few stalled epochs, widen the target set from Low (≤2ζ) to
    // anything under the 4ζ cap — preserves the balance invariant and
    // guarantees progress when Low is scarce but no deflation is legal.
    const bool relaxed = epoch >= 8;
    std::vector<sim::Token> tokens;
    for (std::size_t i = 0; i < orphans.size(); ++i) {
      sim::Token t;
      t.location = net.mapping().owner(orphans[i]);
      t.steps_remaining = walk_len;
      t.tag = static_cast<std::uint32_t>(i);
      tokens.push_back(t);
    }
    // Early accept, like the single-event type-1 walk: a token settles at
    // the first valid redistribution target it steps onto. The pending map
    // projects this epoch's tentative settlements against the 4ζ cap so the
    // parallel tokens don't stampede one Low node (the post-walk transfer
    // loop re-validates against live state either way).
    std::unordered_map<NodeId, std::uint64_t> pending;
    const std::uint64_t cap = net.params().max_load();
    sim::AcceptFn accept_target = [&](std::uint64_t loc) {
      const NodeId w = static_cast<NodeId>(loc);
      const bool ok =
          net.redistribution_target_ok(w) ||
          (relaxed && net.alive(w) && net.mapping().load(w) < cap);
      if (!ok) return false;
      if (net.mapping().load(w) + pending[w] >= cap) return false;
      ++pending[w];
      return true;
    };
    auto walk = sim::run_walks(std::move(tokens), ports_fn, rng, round_limit,
                               accept_target, net.walk_jobs());
    meter.add_rounds(walk.rounds);
    meter.add_messages(walk.messages);
    std::vector<Vertex> remaining;
    for (const auto& t : walk.tokens) {
      const Vertex z = orphans[t.tag];
      const NodeId w = static_cast<NodeId>(t.location);
      const bool ok =
          net.redistribution_target_ok(w) ||
          (relaxed && net.alive(w) &&
           net.mapping().load(w) < net.params().max_load());
      if (t.finished && ok) {
        net.transfer_current_vertex(z, w);
      } else {
        remaining.push_back(z);
      }
    }
    orphans.swap(remaining);
  }
  DEX_ASSERT_MSG(orphans.empty(), "batch redistribution did not converge");

  // --- insertions: inflate first if Spare cannot cover the batch ---
  if (!req.attach_to.empty() &&
      net.mapping().spare_count() < req.attach_to.size()) {
    net.force_simplified_inflate();
    res.used_type2 = true;
  }

  struct Pending {
    NodeId node;
    NodeId attach;
    std::uint32_t orig;  ///< index into req.attach_to (result ordering)
  };
  std::vector<Pending> joiners;
  // Tokens settle in an arbitrary order across epochs; write results by
  // original index so BatchResult::inserted matches attach_to order.
  res.inserted.assign(req.attach_to.size(), kInvalidNode);
  for (std::uint32_t i = 0; i < req.attach_to.size(); ++i) {
    const NodeId u = net.allocate_node();
    // allocate_node leaves the node dead; activate it.
    // (Insertion bookkeeping is done through the public hook below.)
    joiners.push_back({u, req.attach_to[i], i});
  }
  // Activate newcomers.
  for (const auto& pnd : joiners) net.activate_node(pnd.node);

  for (std::uint64_t epoch = 0; !joiners.empty() && epoch < 200; ++epoch) {
    ++res.walk_epochs;
    std::vector<sim::Token> tokens;
    for (std::size_t i = 0; i < joiners.size(); ++i) {
      sim::Token t;
      t.location = joiners[i].attach;
      t.steps_remaining = walk_len;
      t.tag = static_cast<std::uint32_t>(i);
      tokens.push_back(t);
    }
    // Early accept at Spare hosts (one tentative donation per host and
    // epoch — try_assign_spare_vertex re-validates on live state below).
    std::unordered_map<NodeId, std::uint64_t> claimed;
    sim::AcceptFn accept_host = [&](std::uint64_t loc) {
      const NodeId w = static_cast<NodeId>(loc);
      if (!net.alive(w) || !net.mapping().in_spare(w)) return false;
      if (claimed[w] > 0) return false;
      ++claimed[w];
      return true;
    };
    auto walk = sim::run_walks(std::move(tokens), ports_fn, rng, round_limit,
                               accept_host, net.walk_jobs());
    meter.add_rounds(walk.rounds);
    meter.add_messages(walk.messages);
    std::vector<Pending> remaining;
    for (const auto& t : walk.tokens) {
      const Pending pnd = joiners[t.tag];
      const NodeId w = static_cast<NodeId>(t.location);
      if (!t.finished || !net.try_assign_spare_vertex(pnd.node, w)) {
        remaining.push_back(pnd);
      } else {
        res.inserted[pnd.orig] = pnd.node;
      }
    }
    joiners.swap(remaining);
    if (!joiners.empty() && net.mapping().spare_count() < joiners.size()) {
      net.force_simplified_inflate();
      res.used_type2 = true;
    }
  }
  DEX_ASSERT_MSG(joiners.empty(), "batch insertions did not converge");

  res.cost = net.finish_batch_step();
  return res;
}

}  // namespace dex
