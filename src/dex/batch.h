#pragma once

/// \file batch.h
/// Multiple insertions/deletions per step (§5 of the paper, Corollary 2).
///
/// The adversary may insert or delete up to εn nodes in one step, subject to
/// the paper's conditions: at most O(1) inserted nodes attach to any single
/// existing node; deletions leave the remainder connected and every deleted
/// node keeps at least one surviving neighbor. Recovery runs all
/// redistribution random walks *in parallel* (token engine with CONGEST
/// congestion) and falls back to simplifiedInfl/simplifiedDefl when the
/// Spare/Low thresholds cannot be met — O(n log² n) messages and O(log³ n)
/// rounds per batch (Cor. 2).
///
/// Since the batch-first API redesign this path is no longer a side door:
/// sim::DexOverlay::apply(const sim::ChurnBatch&) routes every multi-event
/// batch through apply_batch whenever batch_feasible() holds (amortized
/// mode, no staggered rebuild in flight, §5 preconditions met), so every
/// scenario, bench and the CLI reach it through the unified
/// sim::HealingOverlay interface.

#include <cstdint>
#include <vector>

#include "dex/network.h"
#include "sim/churn.h"
#include "sim/meters.h"

namespace dex {

struct BatchRequest {
  /// Number of nodes to insert; attachment points are chosen by the caller
  /// via `attach_to` (size must equal `insert_count`; entries may repeat up
  /// to `max_attach_per_node` times).
  std::vector<NodeId> attach_to;
  /// Nodes to delete (validated: alive, leave the graph connected).
  std::vector<NodeId> deletions;
};

struct BatchResult {
  std::vector<NodeId> inserted;  ///< ids of the new nodes, in attach_to order
  sim::StepCost cost;
  bool used_type2 = false;
  std::uint64_t walk_epochs = 0;
};

/// Applies one batch step. Aborts (DEX_ASSERT) if the request violates the
/// model's preconditions. `prevalidated = true` skips the precondition
/// re-check (connectivity BFS) — pass it only when batch_feasible() was
/// just consulted on the unchanged network, as DexOverlay::apply does.
/// `live` optionally points at a caller-maintained current CSR of the live
/// topology (see HealingOverlay::set_live_view_provider); the connectivity
/// precondition then runs on it with the victims masked instead of walking
/// ports_of per node.
BatchResult apply_batch(DexNetwork& net, const BatchRequest& req,
                        bool prevalidated = false,
                        const graph::CsrView* live = nullptr);

/// Non-fatal §5 precondition check: true iff `req` can be handed to
/// apply_batch without tripping its asserts — network in amortized mode
/// with no staggered rebuild in flight, victims distinct/alive, every
/// victim keeps a surviving neighbor, survivors stay connected, attach
/// points alive and surviving, and at most sim::kMaxAttachPerNode
/// newcomers per attach point (the paper's O(1) attach multiplicity).
/// sim::DexOverlay::apply consults this to decide parallel vs. sequential.
/// `live`: as in apply_batch — a current CSR makes the connectivity check
/// delta-cheap; without one the check BFSes via ports_of (no Multigraph
/// materialization either way).
[[nodiscard]] bool batch_feasible(const DexNetwork& net,
                                  const BatchRequest& req,
                                  const graph::CsrView* live = nullptr);

}  // namespace dex
