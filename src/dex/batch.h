#pragma once

/// \file batch.h
/// Multiple insertions/deletions per step (§5 of the paper, Corollary 2).
///
/// The adversary may insert or delete up to εn nodes in one step, subject to
/// the paper's conditions: at most O(1) inserted nodes attach to any single
/// existing node; deletions leave the remainder connected and every deleted
/// node keeps at least one surviving neighbor. Recovery runs all
/// redistribution random walks *in parallel* (token engine with CONGEST
/// congestion) and falls back to simplifiedInfl/simplifiedDefl when the
/// Spare/Low thresholds cannot be met — O(n log² n) messages and O(log³ n)
/// rounds per batch (Cor. 2).

#include <cstdint>
#include <vector>

#include "dex/network.h"
#include "sim/meters.h"

namespace dex {

struct BatchRequest {
  /// Number of nodes to insert; attachment points are chosen by the caller
  /// via `attach_to` (size must equal `insert_count`; entries may repeat up
  /// to `max_attach_per_node` times).
  std::vector<NodeId> attach_to;
  /// Nodes to delete (validated: alive, leave the graph connected).
  std::vector<NodeId> deletions;
};

struct BatchResult {
  std::vector<NodeId> inserted;  ///< ids of the new nodes
  sim::StepCost cost;
  bool used_type2 = false;
  std::uint64_t walk_epochs = 0;
};

/// Applies one batch step. Aborts (DEX_ASSERT) if the request violates the
/// model's preconditions.
BatchResult apply_batch(DexNetwork& net, const BatchRequest& req);

}  // namespace dex
