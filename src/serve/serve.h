#pragma once

/// \file serve.h
/// The serving front-end's deterministic core: ServeSpec (the knobs the
/// CLI/ExperimentPlan carry) and ServeState (per-home-node bounded queues
/// with admission control, shard-merged tail-latency histograms, and the
/// per-epoch window counters the trace columns report). The event engine
/// (sim/event/engine.cpp) drives this state from closed-loop client events
/// on its virtual clock; everything here is a pure function of the call
/// sequence — no RNG, no wall clock — so serve-mode traces stay
/// byte-identical across --jobs/--trial-jobs and shard counts.
///
/// Queueing model: the unit of admission is the *home node* (the finest
/// possible shard). Each node owns a Station{queue depth, server busy-until
/// tick}; an arriving request either occupies a queue slot (service starts
/// when the server frees up — FIFO emerges from the deterministic event
/// order) or, with the queue at spec.queue_depth, is shed with a rejection
/// response. Churn-triggered rehash jobs enter the same stations — exempt
/// from the admission bound (the store must converge) but occupying the
/// server for kRehashServiceFactor x the op service time, which is exactly
/// how a rehash storm backpressures concurrent client traffic.
///
/// `shards` groups nodes (id mod shards) into per-shard LatencyHistograms
/// only. Because LatencyHistogram::merge is associative and commutative and
/// every sample lands in exactly one shard, the merged histogram — and
/// every reported quantile — is invariant to the shard count; the knob
/// exists for per-shard reporting and as the thread count of the
/// socketless demo server (serve/server.h). It never changes emitted
/// bytes, and the summary deliberately omits it.
///
/// This header sits below sim/scenario.h (ScenarioSpec embeds ServeSpec)
/// and knows nothing about overlays, events or the runner.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/multigraph.h"
#include "metrics/histogram.h"

namespace dex::serve {

/// Declarative description of the serving front-end regime. Disabled by
/// default; only meaningful on the event engine (closed-loop clients are
/// timed actors — the lockstep loop has no clock for them to live on).
struct ServeSpec {
  /// Engine selector (`--serve`). Everything below needs it.
  bool enabled = false;
  /// Closed-loop clients: each issues one request, waits for the response,
  /// thinks, and issues the next — so `clients` is the ops-in-flight
  /// ceiling and the saturation sweep's offered-load axis.
  std::size_t clients = 8;
  /// Virtual ticks a client thinks between a response and its next issue.
  std::uint64_t think_ticks = 0;
  /// Bounded per-home request queue: arrivals finding this many requests
  /// queued are shed (admission control).
  std::size_t queue_depth = 16;
  /// Shard count for per-shard histogram grouping and the demo server's
  /// thread count. No effect on emitted bytes (see the file comment).
  std::size_t shards = 1;
  /// Server occupancy per client op, in ticks.
  std::uint64_t service_ticks = 1;
  /// Client-side SLO: a completed op whose end-to-end latency exceeds this
  /// counts in the timeout column (the work still happened — deterministic
  /// engines do not cancel). 0 disables the accounting.
  std::uint64_t op_timeout = 0;

  /// Bounds the engine refuses to run outside; the CLI validates with the
  /// same predicate.
  [[nodiscard]] bool valid() const {
    return clients >= 1 && queue_depth >= 1 && shards >= 1 &&
           service_ticks >= 1;
  }
};

/// One epoch's serve-side tallies — the window between two step
/// finalizations, folded into StepRecord's shed/timeouts/qdepth columns.
struct ServeWindow {
  std::size_t completed = 0;
  std::size_t shed = 0;
  std::size_t timeouts = 0;
  std::size_t peak_queue = 0;  ///< deepest station queue seen this window
};

/// The deterministic serving state the event engine mutates. All times are
/// virtual ticks from the engine's clock; admission decisions depend only
/// on (spec, call sequence).
class ServeState {
 public:
  /// Rehash jobs occupy the server this many times longer than a client op
  /// — re-homing a key means pulling its value across the overlay, not
  /// answering from memory.
  static constexpr std::uint64_t kRehashServiceFactor = 4;

  explicit ServeState(const ServeSpec& spec);

  /// Admission for a client request arriving at `home` at tick `now`.
  /// Returns the service-completion tick, or 0 with `admitted == false`
  /// when the queue is full and the request is shed.
  struct Admission {
    bool admitted = false;
    std::uint64_t done_at = 0;
  };
  [[nodiscard]] Admission admit(graph::NodeId home, std::uint64_t now);

  /// A rehash job entering `home`'s station: bypasses the depth bound but
  /// holds a queue slot and the server for kRehashServiceFactor x
  /// service_ticks. Returns its completion tick.
  [[nodiscard]] std::uint64_t admit_rehash(graph::NodeId home,
                                           std::uint64_t now);

  /// Releases the queue slot admit()/admit_rehash() took (call when the
  /// job's service completes).
  void depart(graph::NodeId home);

  /// Records a completed op's end-to-end latency into `home`'s shard
  /// histogram and the window counters; flags it as a timeout when the
  /// spec's SLO is set and exceeded.
  void record_completion(graph::NodeId home, std::uint64_t latency);

  /// Counts one shed request into the window.
  void record_shed();

  /// Drain invariant: every admitted job eventually departed. The engine
  /// calls this once its event queue empties.
  void depart_all_check() const;

  /// Returns this window's tallies and opens the next one. Totals keep
  /// accumulating across windows.
  ServeWindow take_window();

  // Lifetime totals (across all windows).
  [[nodiscard]] std::size_t total_completed() const {
    return total_completed_;
  }
  [[nodiscard]] std::size_t total_shed() const { return total_shed_; }
  [[nodiscard]] std::size_t total_timeouts() const {
    return total_timeouts_;
  }
  [[nodiscard]] std::size_t peak_queue() const { return peak_queue_; }

  /// All shard histograms merged — by the merge-associativity contract,
  /// identical to a single global histogram whatever spec.shards was.
  [[nodiscard]] metrics::LatencyHistogram merged_latency() const;

  [[nodiscard]] const std::vector<metrics::LatencyHistogram>&
  shard_latency() const {
    return shards_;
  }

 private:
  struct Station {
    std::size_t depth = 0;       ///< jobs queued or in service
    std::uint64_t free_at = 0;   ///< tick the server frees up
  };
  Station& station(graph::NodeId home) { return stations_[home]; }
  std::uint64_t enqueue(Station& st, std::uint64_t now,
                        std::uint64_t service);

  ServeSpec spec_;
  /// Lookup-only (iteration order never observed), so the unordered map
  /// cannot leak nondeterminism into the trace.
  std::unordered_map<graph::NodeId, Station> stations_;
  std::vector<metrics::LatencyHistogram> shards_;
  ServeWindow window_;
  std::size_t total_completed_ = 0;
  std::size_t total_shed_ = 0;
  std::size_t total_timeouts_ = 0;
  std::size_t peak_queue_ = 0;
};

}  // namespace dex::serve
