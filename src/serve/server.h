#pragma once

/// \file server.h
/// ShardedKvServer: the serving front-end's discipline — key-sharded
/// workers, bounded per-shard queues, admission control that sheds instead
/// of blocking, merged tail-latency histograms — realized on real OS
/// threads with a real clock. This is the *demo* half of src/serve/: it
/// shows the same contract ServeState enforces on the event engine's
/// virtual clock surviving contact with actual concurrency (see
/// examples/serve_demo.cpp), and a smoke test pins its conservation
/// invariant (submitted == completed + shed, and every acknowledged write
/// readable after drain()). It is deliberately NOT load-bearing for the
/// deterministic experiments — wall-clock latencies vary run to run, so
/// nothing here feeds a trace or summary byte stream.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "metrics/histogram.h"

namespace dex::serve {

/// A thread-per-shard in-process KV server. Keys hash to a shard; each
/// shard owns a bounded FIFO queue and a worker thread applying requests to
/// shard-local state (no cross-shard locks on the serving path). submit()
/// is the admission point: a full queue sheds the request immediately —
/// the producer is never blocked by a slow shard, which is the whole point
/// of admission control.
class ShardedKvServer {
 public:
  struct Config {
    std::size_t shards = 4;
    std::size_t queue_depth = 64;
  };

  struct Request {
    bool read = false;
    std::uint64_t key = 0;
    std::uint64_t value = 0;  ///< writes only
  };

  explicit ShardedKvServer(const Config& cfg);
  ~ShardedKvServer();  ///< stops accepting, drains, joins

  ShardedKvServer(const ShardedKvServer&) = delete;
  ShardedKvServer& operator=(const ShardedKvServer&) = delete;

  /// Admission: true = queued (will complete), false = shed (queue full).
  bool submit(const Request& req);

  /// Blocks until every queued request has completed. submit() may keep
  /// racing in from other threads; drain() returns once it observes all
  /// shards simultaneously empty and idle.
  void drain();

  // Post-hoc accounting (exact; totals are stable once drain() returns and
  // producers have stopped).
  [[nodiscard]] std::uint64_t completed() const;
  [[nodiscard]] std::uint64_t shed() const;
  /// Per-request queue+service latency in microseconds, merged across
  /// shards (same merge contract as the deterministic histograms).
  [[nodiscard]] metrics::LatencyHistogram latency() const;

  /// Reads a key's stored value directly (post-drain verification).
  [[nodiscard]] std::optional<std::uint64_t> peek(std::uint64_t key) const;

 private:
  struct Job {
    Request req;
    std::chrono::steady_clock::time_point enqueued;
  };
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;       ///< worker wakeup
    std::condition_variable drained;  ///< drain() wakeup
    std::deque<Job> queue;
    bool busy = false;  ///< worker mid-request (queue may look empty)
    bool stop = false;
    std::unordered_map<std::uint64_t, std::uint64_t> store;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    metrics::LatencyHistogram latency_us;
    std::thread worker;
  };

  Shard& shard_for(std::uint64_t key) const;
  void worker_loop(Shard& shard);

  Config cfg_;
  /// unique_ptr per shard: Shard holds a mutex and a thread, so the vector
  /// must never relocate them.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dex::serve
