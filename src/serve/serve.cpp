#include "serve/serve.h"

#include <algorithm>

#include "support/assert.h"

namespace dex::serve {

ServeState::ServeState(const ServeSpec& spec) : spec_(spec) {
  DEX_ASSERT_MSG(spec_.valid(), "serve spec out of range");
  shards_.resize(spec_.shards);
}

std::uint64_t ServeState::enqueue(Station& st, std::uint64_t now,
                                  std::uint64_t service) {
  ++st.depth;
  window_.peak_queue = std::max(window_.peak_queue, st.depth);
  peak_queue_ = std::max(peak_queue_, st.depth);
  const std::uint64_t start = std::max(now, st.free_at);
  st.free_at = start + service;
  return st.free_at;
}

ServeState::Admission ServeState::admit(graph::NodeId home,
                                        std::uint64_t now) {
  Station& st = station(home);
  if (st.depth >= spec_.queue_depth) return {};
  return {true, enqueue(st, now, spec_.service_ticks)};
}

std::uint64_t ServeState::admit_rehash(graph::NodeId home,
                                       std::uint64_t now) {
  return enqueue(station(home), now,
                 kRehashServiceFactor * spec_.service_ticks);
}

void ServeState::depart(graph::NodeId home) {
  Station& st = station(home);
  DEX_ASSERT_MSG(st.depth > 0, "departure from an empty station");
  --st.depth;
}

void ServeState::record_completion(graph::NodeId home,
                                   std::uint64_t latency) {
  shards_[home % spec_.shards].record(latency);
  ++window_.completed;
  ++total_completed_;
  if (spec_.op_timeout > 0 && latency > spec_.op_timeout) {
    ++window_.timeouts;
    ++total_timeouts_;
  }
}

void ServeState::record_shed() {
  ++window_.shed;
  ++total_shed_;
}

void ServeState::depart_all_check() const {
  // det: all-of assertion over the stations — order-independent by
  // construction (every entry must be empty, none is reported first).
  for (const auto& entry : stations_) {
    DEX_ASSERT_MSG(entry.second.depth == 0, "drained with jobs still queued");
  }
}

ServeWindow ServeState::take_window() {
  ServeWindow out = window_;
  window_ = ServeWindow{};
  return out;
}

metrics::LatencyHistogram ServeState::merged_latency() const {
  metrics::LatencyHistogram merged;
  for (const auto& h : shards_) merged.merge(h);
  return merged;
}

}  // namespace dex::serve
