#include "serve/server.h"

#include "support/assert.h"
#include "support/prng.h"

namespace dex::serve {

ShardedKvServer::ShardedKvServer(const Config& cfg) : cfg_(cfg) {
  DEX_ASSERT_MSG(cfg_.shards >= 1 && cfg_.queue_depth >= 1,
                 "server config out of range");
  shards_.reserve(cfg_.shards);
  for (std::size_t i = 0; i < cfg_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (auto& s : shards_) {
    s->worker = std::thread([this, sp = s.get()] { worker_loop(*sp); });
  }
}

ShardedKvServer::~ShardedKvServer() {
  for (auto& s : shards_) {
    {
      std::lock_guard<std::mutex> lock(s->mu);
      s->stop = true;
    }
    s->cv.notify_all();
  }
  for (auto& s : shards_) {
    if (s->worker.joinable()) s->worker.join();
  }
}

ShardedKvServer::Shard& ShardedKvServer::shard_for(std::uint64_t key) const {
  return *shards_[support::mix64(key) % cfg_.shards];
}

bool ShardedKvServer::submit(const Request& req) {
  Shard& s = shard_for(req.key);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.queue.size() >= cfg_.queue_depth) {
      ++s.shed;
      return false;
    }
    // det: real-thread demo server — wall-clock latency is the measurement
    // itself here; the deterministic serve path lives in serve.cpp.
    s.queue.push_back(Job{req, std::chrono::steady_clock::now()});
  }
  s.cv.notify_one();
  return true;
}

void ShardedKvServer::worker_loop(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    shard.cv.wait(lock,
                  [&] { return shard.stop || !shard.queue.empty(); });
    if (shard.queue.empty()) {
      if (shard.stop) return;
      continue;
    }
    Job job = std::move(shard.queue.front());
    shard.queue.pop_front();
    shard.busy = true;
    // The store is shard-local, so applying under the lock is fine — the
    // lock covers this shard only and submit() holds it for O(1).
    if (job.req.read) {
      (void)shard.store.count(job.req.key);
    } else {
      shard.store[job.req.key] = job.req.value;
    }
    // det: see submit() — measured wall-clock latency is this demo's output.
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - job.enqueued)
                        .count();
    shard.latency_us.record(static_cast<std::uint64_t>(us < 0 ? 0 : us));
    ++shard.completed;
    shard.busy = false;
    if (shard.queue.empty()) shard.drained.notify_all();
  }
}

void ShardedKvServer::drain() {
  for (auto& s : shards_) {
    std::unique_lock<std::mutex> lock(s->mu);
    s->drained.wait(lock, [&] { return s->queue.empty() && !s->busy; });
  }
}

std::uint64_t ShardedKvServer::completed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->completed;
  }
  return total;
}

std::uint64_t ShardedKvServer::shed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->shed;
  }
  return total;
}

metrics::LatencyHistogram ShardedKvServer::latency() const {
  metrics::LatencyHistogram merged;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    merged.merge(s->latency_us);
  }
  return merged;
}

std::optional<std::uint64_t> ShardedKvServer::peek(std::uint64_t key) const {
  const Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.store.find(key);
  if (it == s.store.end()) return std::nullopt;
  return it->second;
}

}  // namespace dex::serve
