#pragma once

/// \file adversary.h
/// Adaptive adversaries (§2 of the paper). The adversary is computationally
/// unbounded, sees the entire network state (topology, loads, even the
/// identity of the coordinator) and all *past* random choices; only the
/// algorithm's future coin flips are hidden. Strategies here receive a full
/// read-only view and emit one churn decision per step — a single event
/// (next) or, batch-first since §5 became drivable, a whole sim::ChurnBatch
/// (next_batch; the default wraps next, batch-native strategies override).
///
/// Network-agnostic: every backend adapts to AdversaryView through the
/// unified sim::HealingOverlay interface — sim::make_view(overlay) builds
/// the view, and sim::CachedView (scenario.h) adds per-step caching of the
/// expensive components.

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "graph/csr.h"
#include "graph/multigraph.h"
#include "sim/churn.h"
#include "support/prng.h"

namespace dex::adversary {

using graph::NodeId;

struct ChurnAction {
  bool insert = true;
  /// For insertions: the node to attach to. For deletions: the victim.
  NodeId target = 0;
};

/// Read-only window into the network under attack.
struct AdversaryView {
  std::function<std::size_t()> n;
  std::function<std::vector<NodeId>()> alive_nodes;
  std::function<graph::Multigraph()> snapshot;
  std::function<std::vector<bool>()> alive_mask;
  /// Load of a node (virtual vertices for DEX; degree for baselines).
  std::function<std::size_t(NodeId)> load;
  /// A distinguished node worth attacking (DEX's coordinator); returns
  /// graph::kInvalidNode when the network has none.
  std::function<NodeId()> special_node;
  /// Optional oracle: the topology that would result from deleting a node
  /// (including the overlay's deterministic splice-healing, where it has
  /// one). When absent, strategies fall back to snapshot() with the node
  /// masked out.
  std::function<graph::Multigraph(NodeId)> snapshot_without;
  /// Optional: a flat CSR snapshot of the live view (graph/csr.h), built at
  /// most once per step by caching views (sim::CachedView) and returned by
  /// reference. The traffic hot path (sim::KvStore) reads it instead of
  /// copying snapshot() + alive_mask() per step; when absent, consumers
  /// build their own from those two. The reference is valid until the view
  /// is invalidated.
  std::function<const graph::CsrView&()> live_csr;
};

class Strategy {
 public:
  virtual ~Strategy() = default;
  /// Decides the next step. min_n/max_n bound the population the driver
  /// wants to maintain (strategies must not delete below min_n).
  virtual ChurnAction next(const AdversaryView& view, support::Rng& rng,
                           std::size_t min_n, std::size_t max_n) = 0;

  /// Decides one *batch* step of up to `batch_size` events (§5 model). The
  /// default wraps next(): it draws single events against the pre-batch
  /// view, discarding picks that no longer make sense mid-batch (victims
  /// chosen twice, attach points that are dying) and projecting the
  /// population against min_n/max_n, so the returned batch is always
  /// self-consistent — distinct alive victims, surviving attach points,
  /// n - victims ≥ min_n, n + inserts ≤ max_n. Near a population bound the
  /// batch may come back smaller than batch_size (even empty). Batch-native
  /// strategies override this wholesale.
  virtual sim::ChurnBatch next_batch(const AdversaryView& view,
                                     support::Rng& rng, std::size_t min_n,
                                     std::size_t max_n,
                                     std::size_t batch_size);

 protected:
  static NodeId random_alive(const AdversaryView& view, support::Rng& rng) {
    const auto nodes = view.alive_nodes();
    return nodes[rng.below(nodes.size())];
  }
};

/// Greedy §5-safe deletion sampler shared by the batch-native strategies:
/// scans `order` and keeps victims that are pairwise non-adjacent and leave
/// every survivor at least one edge (hence every victim keeps a surviving
/// neighbor), then trims from the back until the survivors are connected.
/// Returns at most `want` victims; possibly fewer (never unsafe).
[[nodiscard]] std::vector<NodeId> sample_safe_victims(
    const graph::Multigraph& g, const std::vector<bool>& alive,
    const std::vector<NodeId>& order, std::size_t want);

/// Uniform churn: insert with probability `insert_prob`, both endpoints
/// uniform. The baseline workload.
class RandomChurn final : public Strategy {
 public:
  explicit RandomChurn(double insert_prob = 0.5) : p_(insert_prob) {}
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;

 private:
  double p_;
};

/// Pure growth (drives inflations). Deliberately ignores max_n — a growth
/// workload that started deleting at a cap would no longer be insert-only;
/// size the step count to the growth you want.
class InsertOnly final : public Strategy {
 public:
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;
};

/// Pure shrinkage (drives deflations). Honors min_n (inserts at the floor
/// instead of destroying the network) but, symmetrically with InsertOnly,
/// ignores max_n.
class DeleteOnly final : public Strategy {
 public:
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;
};

/// k inserts then k deletes, repeatedly — oscillates across the type-2
/// thresholds (the paper's worst-case pacing argument, Lemma 8, says this
/// cannot force frequent rebuilds).
class Oscillate final : public Strategy {
 public:
  explicit Oscillate(std::size_t half_period) : k_(half_period) {}
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;

 private:
  std::size_t k_;
  std::size_t tick_ = 0;
};

/// Always deletes the distinguished node (DEX's coordinator) — the
/// "maintaining global knowledge is fragile" attack of §3; DEX survives it
/// because the coordinator state is O(log n) bits and replicated.
class CoordinatorKiller final : public Strategy {
 public:
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;

 private:
  bool insert_next_ = false;
};

/// Deletes the maximum-load node / attaches newcomers to it — tries to
/// concentrate load and break the balanced mapping.
class LoadAttack final : public Strategy {
 public:
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;

 private:
  bool insert_next_ = false;
};

/// The strongest adaptive attack we implement: periodically computes a
/// (spectral sweep) sparse cut of the *current* topology and deletes the
/// cut-boundary nodes, interleaving insertions attached to one fixed side
/// to starve the cut. Collapses probabilistic overlays (E4/E9); DEX's
/// deterministic re-balancing heals through it.
class SpectralAttack final : public Strategy {
 public:
  explicit SpectralAttack(std::size_t recompute_period = 16)
      : period_(recompute_period) {}
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;

 private:
  std::size_t period_;
  std::size_t tick_ = 0;
  std::deque<NodeId> kill_queue_;
  NodeId anchor_ = graph::kInvalidNode;
};

/// The unbounded-computation attack of §2 made literal: each deletion step
/// samples `candidates` victims, evaluates the spectral gap the network
/// would be left with (via the snapshot_without oracle), and deletes the
/// most damaging one. Collapses overlays whose expansion is only
/// probabilistic (Law–Siu loses >80% of its gap; see E4); DEX's randomized
/// re-balancing denies the adversary a stable target.
class GreedySpectralDeletion final : public Strategy {
 public:
  explicit GreedySpectralDeletion(std::size_t candidates = 24,
                                  double insert_ratio = 0.0)
      : candidates_(candidates), insert_ratio_(insert_ratio) {}
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;

 private:
  std::size_t candidates_;
  double insert_ratio_;
};

/// Burst churn, batch-native: each batch is a random insert/delete mix
/// (insert fraction drawn around `insert_frac`), with the delete side drawn
/// through sample_safe_victims and the insert side capped at
/// sim::kMaxAttachPerNode per attach point — bursts deliberately satisfy
/// the §5 preconditions so DEX's parallel path stays eligible.
class BurstChurn final : public Strategy {
 public:
  explicit BurstChurn(double insert_frac = 0.5)
      : frac_(insert_frac), single_(insert_frac) {}
  /// Single-event fallback: exactly uniform churn at the burst's insert
  /// fraction (delegates to RandomChurn — one bound-enforcement path).
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override {
    return single_.next(view, rng, min_n, max_n);
  }
  sim::ChurnBatch next_batch(const AdversaryView& view, support::Rng& rng,
                             std::size_t min_n, std::size_t max_n,
                             std::size_t batch_size) override;

 private:
  double frac_;
  RandomChurn single_;
};

/// Flash crowd, batch-native: waves of pure insertion (newcomers spread
/// over uniform attach points, ≤ kMaxAttachPerNode each) until the
/// population cap, then a §5-safe departure wave to make room — the
/// heavy-traffic arrival pattern the ROADMAP asks for.
class FlashCrowd final : public Strategy {
 public:
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;
  sim::ChurnBatch next_batch(const AdversaryView& view, support::Rng& rng,
                             std::size_t min_n, std::size_t max_n,
                             std::size_t batch_size) override;
};

/// Correlated mass failure, batch-native: picks a random epicenter and
/// deletes a §5-safe subset of its BFS ball (victims clustered in one
/// region of the topology, as in a rack/AS failure), inserting at the
/// population floor to keep the scenario running.
class CorrelatedFailure final : public Strategy {
 public:
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;
  sim::ChurnBatch next_batch(const AdversaryView& view, support::Rng& rng,
                             std::size_t min_n, std::size_t max_n,
                             std::size_t batch_size) override;
};

/// Oracle-cache-busting churn, batch-native: every step scatters victims
/// and attach points across as many distinct topology regions as possible —
/// candidates are ringed by BFS distance from a random epicenter and
/// consumed round-robin across rings, farthest rings first. Each event then
/// re-homes keys and forces route queries rooted in a different region, so
/// the DistanceOracle's fixed-size root memo (sim/oracle.h) keeps missing
/// instead of amortizing — the access pattern the memo is worst at.
class OracleBuster final : public Strategy {
 public:
  /// Single-event fallback: uniform churn (the scatter pattern only exists
  /// at batch scale).
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override {
    return single_.next(view, rng, min_n, max_n);
  }
  sim::ChurnBatch next_batch(const AdversaryView& view, support::Rng& rng,
                             std::size_t min_n, std::size_t max_n,
                             std::size_t batch_size) override;

 private:
  RandomChurn single_;
};

/// p-cycle chord targeting, batch-native: scores each node by how many
/// shortest-path trees it carries (a betweenness proxy — over a handful of
/// random BFS roots, count the child edges a node feeds) and deletes the
/// top carriers §5-safely. On DEX this aims at the nodes whose p-cycle
/// chords (§4) provide the long-range shortcuts; on the baselines it strips
/// whatever carries their small diameter.
class ChordAttack final : public Strategy {
 public:
  explicit ChordAttack(std::size_t sources = 8) : sources_(sources) {}
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;
  sim::ChurnBatch next_batch(const AdversaryView& view, support::Rng& rng,
                             std::size_t min_n, std::size_t max_n,
                             std::size_t batch_size) override;

 private:
  std::vector<std::uint32_t> chord_scores(const AdversaryView& view,
                                          support::Rng& rng,
                                          const graph::Multigraph& g,
                                          const std::vector<bool>& mask) const;
  std::size_t sources_;
  bool insert_next_ = false;
};

/// SpectralAttack at batch scale: each batch recomputes the sweep cut of
/// the *current* topology, deletes the sparse side boundary-first (nodes
/// with the most cut-crossing edges go first, thinned §5-safely), and
/// spends any leftover budget on insertions anchored to the opposite side —
/// so the whole εn batch lands on one cut instead of dribbling out an event
/// at a time.
class SpectralBatch final : public Strategy {
 public:
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;
  sim::ChurnBatch next_batch(const AdversaryView& view, support::Rng& rng,
                             std::size_t min_n, std::size_t max_n,
                             std::size_t batch_size) override;
};

/// Replays a fixed script (tests). Exactly script.size() actions are
/// allowed: next() and next_batch() abort (DEX_ASSERT, active in every
/// build) when the script is exhausted — a driver asking for more steps
/// than it scripted is a harness bug, not a workload. Check remaining() to
/// size the run. next_batch replays the next batch_size actions verbatim,
/// with none of the default wrapper's filtering: batch validity is the
/// script author's responsibility.
class Scripted final : public Strategy {
 public:
  explicit Scripted(std::vector<ChurnAction> script)
      : script_(std::move(script)) {}
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;
  sim::ChurnBatch next_batch(const AdversaryView& view, support::Rng& rng,
                             std::size_t min_n, std::size_t max_n,
                             std::size_t batch_size) override;

  /// Actions left before next()/next_batch() would abort.
  [[nodiscard]] std::size_t remaining() const { return script_.size() - at_; }

 private:
  std::vector<ChurnAction> script_;
  std::size_t at_ = 0;
};

}  // namespace dex::adversary
