#pragma once

/// \file campaign.h
/// Phased adversary campaigns. Real incidents are not single-minded loops:
/// a flash crowd arrives, then a rack fails, then slow recovery churn takes
/// over. A CampaignSpec strings the existing Strategy zoo into exactly that
/// shape — an ordered list of phases, each owning a step range, a churn
/// intensity (`rate`), a traffic load multiplier (`load`, optionally shaped
/// by a diurnal curve), and a body that is either one registered strategy, a
/// weighted `mix(...)` of several, or a `replay(...)` of a recorded churn
/// trace.
///
/// Campaigns parse from a compact one-line string (the CLI's `--campaign`),
/// e.g.
///
///     flash-crowd:0-50;mass-failure:50-60,rate=0.3;burst:60-
///     mix(churn*3+spectral*1):0-40,load=2,diurnal=20;replay(trace.csv):40-
///
/// Grammar (phases separated by `;`):
///
///     phase   := body [ ':' range ] ( ',' key '=' value )*
///     body    := NAME | 'mix(' NAME ['*' WEIGHT] ('+' NAME ['*' WEIGHT])* ')'
///                     | 'replay(' PATH ')'
///     range   := BEGIN '-' [ END ]          // half-open [BEGIN, END)
///     key     := 'rate' | 'load' | 'diurnal'
///
/// An omitted range chains: the phase begins where the previous one ended
/// (step 0 for the first) and runs open-ended. Steps covered by no phase are
/// quiet — no churn, unit load. When phases overlap, the earliest phase in
/// the spec wins.
///
/// CampaignStrategy adapts a spec back onto the Strategy interface, so every
/// driver that takes a Strategy (both engines, ExperimentPlan) can run a
/// campaign unchanged. The driver contract is batch-first: call next_batch
/// exactly once per step, in step order — rate-gated and quiet phases
/// express themselves as *empty* batches, which both engines already treat
/// as legal steps. The per-step traffic multiplier (load_at / scaled_ops) is
/// read by the engines directly off the spec.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "adversary/adversary.h"

namespace dex::adversary {

/// Open phase end ("runs until the driver stops").
inline constexpr std::size_t kOpenEnd = std::numeric_limits<std::size_t>::max();

/// One component of a mix(...) phase body.
struct MixPart {
  std::string strategy;
  double weight = 1.0;
};

struct CampaignPhase {
  /// Single-strategy body (empty for mix/replay phases).
  std::string strategy;
  /// Weighted mix body: one part is drawn per step, weight-proportionally.
  std::vector<MixPart> mix;
  /// Replay body: the recorded actions, loaded at parse time, plus the
  /// source path for diagnostics.
  std::vector<ChurnAction> script;
  std::string trace_path;

  /// Half-open step range [begin, end); end == kOpenEnd runs forever.
  std::size_t begin = 0;
  std::size_t end = kOpenEnd;
  /// Churn intensity in [0, 1]: the fraction of the driver's batch budget
  /// this phase actually spends (fractional remainders resolve by coin
  /// flip, so rate=0.3 at batch 1 means ~30% of steps churn).
  double rate = 1.0;
  /// Traffic load multiplier (≥ 0): scales ops-per-step while the phase is
  /// active. With diurnal_period == 0 the multiplier is flat; otherwise
  /// `load` is the *peak* of a triangle wave of that period (piecewise
  /// linear 1 → load → 1, deliberately libm-free so the curve is
  /// bit-reproducible everywhere).
  double load = 1.0;
  std::size_t diurnal_period = 0;

  [[nodiscard]] bool is_mix() const { return !mix.empty(); }
  [[nodiscard]] bool is_replay() const { return !trace_path.empty(); }
  [[nodiscard]] bool contains(std::size_t step) const {
    return step >= begin && (end == kOpenEnd || step < end);
  }
};

struct CampaignSpec {
  std::vector<CampaignPhase> phases;
  /// The compact string this spec parsed from (empty when built in code);
  /// archived by the summary emitters.
  std::string source;

  /// Index of the phase active at `step`, or kNoPhase for a quiet step.
  /// First matching phase wins.
  static constexpr std::size_t kNoPhase =
      std::numeric_limits<std::size_t>::max();
  [[nodiscard]] std::size_t phase_index_at(std::size_t step) const;
  [[nodiscard]] const CampaignPhase* phase_at(std::size_t step) const {
    const std::size_t i = phase_index_at(step);
    return i == kNoPhase ? nullptr : &phases[i];
  }

  /// Traffic load multiplier at `step` (1.0 on quiet steps; triangle-shaped
  /// within diurnal phases).
  [[nodiscard]] double load_at(std::size_t step) const;
  /// `ops_per_step` scaled by load_at(step), rounded to nearest.
  [[nodiscard]] std::size_t scaled_ops(std::size_t ops_per_step,
                                       std::size_t step) const;
  /// Σ_t scaled_ops(ops_per_step, t) for t in [0, steps) — the offered-load
  /// budget a serve-mode run distributes up front.
  [[nodiscard]] std::uint64_t total_ops(std::size_t ops_per_step,
                                        std::size_t steps) const;
};

/// Parses the compact campaign string. `known` is the list of valid
/// strategy names (sim::known_strategies() at the sim layer); replay trace
/// files are opened and loaded here, so a returned spec is fully runnable.
/// On failure returns nullopt and sets `error` to a single-line, actionable
/// message (phase index, offending token, valid alternatives).
[[nodiscard]] std::optional<CampaignSpec> parse_campaign(
    const std::string& text, const std::vector<std::string>& known,
    std::string& error);

/// Parses a churn trace for replay(...) phases: CSV with `op` and `target`
/// columns (the ScenarioRunner's own trace format works as-is — `batch`
/// summary rows and non-churn rows are skipped), or a bare header-less
/// `op,target` listing. Blank lines and `#` comments are ignored.
[[nodiscard]] std::optional<std::vector<ChurnAction>> load_churn_trace(
    const std::string& path, std::string& error);

// ------------------------------------------------------------- combinators
// For building campaigns in code (tests, benches) without the string round
// trip. seq() chains omitted ranges exactly like the parser does.

[[nodiscard]] CampaignPhase phase(std::string strategy, std::size_t begin = 0,
                                  std::size_t end = kOpenEnd);
[[nodiscard]] CampaignPhase mix(std::vector<MixPart> parts,
                                std::size_t begin = 0,
                                std::size_t end = kOpenEnd);
[[nodiscard]] CampaignSpec seq(std::vector<CampaignPhase> phases);

/// Runs a CampaignSpec as a Strategy. Sub-strategies are built once per
/// phase (per mix part) through the injected factory, so the sim-layer
/// registry stays out of this header. The internal step counter advances
/// once per next()/next_batch() call — drivers call exactly one of them per
/// step, in step order (both engines do).
class CampaignStrategy final : public Strategy {
 public:
  using Factory =
      std::function<std::unique_ptr<Strategy>(const std::string& name)>;
  CampaignStrategy(CampaignSpec spec, const Factory& make);

  /// Single-event fallback (non-batch drivers): delegates to the active
  /// phase's strategy. Quiet steps and rate gates cannot be expressed as
  /// "no event" here, so quiet steps fall back to uniform churn and `rate`
  /// is ignored — campaign drivers should use next_batch.
  ChurnAction next(const AdversaryView& view, support::Rng& rng,
                   std::size_t min_n, std::size_t max_n) override;

  /// One batch per step: resolves the active phase, rate-gates the batch
  /// budget (empty batch when gated to zero or no phase is active), then
  /// delegates — mix phases draw a part weight-proportionally, replay
  /// phases emit the next still-valid scripted actions (dead targets and
  /// bound violations are skipped, not fatal — recorded traces replay
  /// against topologies that diverge).
  sim::ChurnBatch next_batch(const AdversaryView& view, support::Rng& rng,
                             std::size_t min_n, std::size_t max_n,
                             std::size_t batch_size) override;

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }
  /// Steps consumed so far.
  [[nodiscard]] std::size_t step() const { return step_; }

 private:
  Strategy* strategy_for(const CampaignPhase& ph, std::size_t phase_index,
                         support::Rng& rng);
  sim::ChurnBatch replay_batch(CampaignPhase& ph, const AdversaryView& view,
                               std::size_t want, std::size_t min_n,
                               std::size_t max_n);

  CampaignSpec spec_;
  /// Per phase: one built strategy per mix part (single entry for plain
  /// phases, empty for replay phases).
  std::vector<std::vector<std::unique_ptr<Strategy>>> built_;
  /// Per phase: replay cursor.
  std::vector<std::size_t> cursor_;
  RandomChurn fallback_;
  std::size_t step_ = 0;
};

}  // namespace dex::adversary
