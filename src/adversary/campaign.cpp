#include "adversary/campaign.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "support/assert.h"

namespace dex::adversary {

namespace {

/// Strict non-negative integer parse (no sign, no trailing junk).
bool parse_size(const std::string& s, std::size_t& out) {
  if (s.empty()) return false;
  std::size_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const std::size_t d = static_cast<std::size_t>(c - '0');
    if (v > (std::numeric_limits<std::size_t>::max() - d) / 10) return false;
    v = v * 10 + d;
  }
  out = v;
  return true;
}

/// Strict non-negative double parse (no trailing junk).
bool parse_real(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  if (!(v >= 0.0) || !std::isfinite(v)) return false;
  out = v;
  return true;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

bool known_name(const std::vector<std::string>& known, const std::string& n) {
  for (const auto& k : known) {
    if (k == n) return true;
  }
  return false;
}

std::string phase_err(std::size_t idx, const std::string& msg) {
  return "phase " + std::to_string(idx + 1) + ": " + msg;
}

/// Splits "name" or "name*weight" (mix part).
bool parse_mix_part(const std::string& s, MixPart& out) {
  const std::size_t star = s.find('*');
  out.strategy = s.substr(0, star);
  out.weight = 1.0;
  if (star != std::string::npos) {
    if (!parse_real(s.substr(star + 1), out.weight) || out.weight <= 0.0)
      return false;
  }
  return !out.strategy.empty();
}

}  // namespace

// --------------------------------------------------------------- CampaignSpec

std::size_t CampaignSpec::phase_index_at(std::size_t step) const {
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (phases[i].contains(step)) return i;
  }
  return kNoPhase;
}

double CampaignSpec::load_at(std::size_t step) const {
  const CampaignPhase* ph = phase_at(step);
  if (ph == nullptr) return 1.0;
  if (ph->diurnal_period < 2) return ph->load;
  // Triangle wave over the period: 1 at the phase boundary, `load` at the
  // half-period peak, back to 1. Piecewise linear keeps the curve exact in
  // binary floating point — no libm, no platform drift.
  const std::size_t pos = (step - ph->begin) % ph->diurnal_period;
  const double x =
      static_cast<double>(pos) / static_cast<double>(ph->diurnal_period);
  const double tri = 1.0 - std::fabs(2.0 * x - 1.0);
  return 1.0 + (ph->load - 1.0) * tri;
}

std::size_t CampaignSpec::scaled_ops(std::size_t ops_per_step,
                                     std::size_t step) const {
  const double exact = static_cast<double>(ops_per_step) * load_at(step);
  return static_cast<std::size_t>(exact + 0.5);
}

std::uint64_t CampaignSpec::total_ops(std::size_t ops_per_step,
                                      std::size_t steps) const {
  std::uint64_t total = 0;
  for (std::size_t t = 0; t < steps; ++t) total += scaled_ops(ops_per_step, t);
  return total;
}

// --------------------------------------------------------------------- parse

std::optional<std::vector<ChurnAction>> load_churn_trace(
    const std::string& path, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open replay trace '" + path + "'";
    return std::nullopt;
  }
  std::vector<ChurnAction> script;
  std::size_t op_col = 0;
  std::size_t target_col = 1;
  bool saw_header = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto cells = split(line, ',');
    if (!saw_header) {
      // A ScenarioRunner trace leads with a header naming op/target; a bare
      // listing starts straight with data rows (op in column 0).
      saw_header = true;
      bool is_header = false;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i] == "op") {
          op_col = i;
          is_header = true;
        }
        if (cells[i] == "target") target_col = i;
      }
      if (is_header) continue;
    }
    if (cells.size() <= op_col || cells.size() <= target_col) continue;
    const std::string& op = cells[op_col];
    const std::string& target = cells[target_col];
    if (op != "insert" && op != "delete") continue;  // batch/settle/... rows
    std::size_t t = 0;
    if (target.empty() || !parse_size(target, t)) {
      error = "replay trace '" + path + "' line " + std::to_string(lineno) +
              ": bad target '" + target + "'";
      return std::nullopt;
    }
    script.push_back({op == "insert", static_cast<NodeId>(t)});
  }
  if (script.empty()) {
    error = "replay trace '" + path + "' has no insert/delete actions";
    return std::nullopt;
  }
  return script;
}

std::optional<CampaignSpec> parse_campaign(
    const std::string& text, const std::vector<std::string>& known,
    std::string& error) {
  CampaignSpec spec;
  spec.source = text;
  if (text.empty()) {
    error = "empty campaign spec";
    return std::nullopt;
  }
  const auto phase_strs = split(text, ';');
  std::size_t prev_end = 0;
  bool prev_open = false;
  for (std::size_t pi = 0; pi < phase_strs.size(); ++pi) {
    const std::string& ps = phase_strs[pi];
    if (ps.empty()) {
      error = phase_err(pi, "empty phase (stray ';'?)");
      return std::nullopt;
    }
    CampaignPhase ph;
    // ---- body: NAME | mix(...) | replay(...) ----
    std::size_t body_end;
    if (ps.rfind("mix(", 0) == 0 || ps.rfind("replay(", 0) == 0) {
      body_end = ps.find(')');
      if (body_end == std::string::npos) {
        error = phase_err(pi, "missing ')' in '" + ps + "'");
        return std::nullopt;
      }
      ++body_end;  // past the ')'
    } else {
      body_end = ps.find_first_of(":,");
      if (body_end == std::string::npos) body_end = ps.size();
    }
    const std::string body = ps.substr(0, body_end);
    if (body.rfind("mix(", 0) == 0) {
      const std::string inner = body.substr(4, body.size() - 5);
      for (const auto& part_str : split(inner, '+')) {
        MixPart part;
        if (!parse_mix_part(part_str, part)) {
          error = phase_err(
              pi, "bad mix part '" + part_str + "' (want name or name*weight)");
          return std::nullopt;
        }
        if (!known_name(known, part.strategy)) {
          error = phase_err(pi, "unknown strategy '" + part.strategy +
                                    "' (valid: " + join_names(known) + ")");
          return std::nullopt;
        }
        ph.mix.push_back(part);
      }
      if (ph.mix.empty()) {
        error = phase_err(pi, "mix() needs at least one part");
        return std::nullopt;
      }
    } else if (body.rfind("replay(", 0) == 0) {
      ph.trace_path = body.substr(7, body.size() - 8);
      if (ph.trace_path.empty()) {
        error = phase_err(pi, "replay() needs a file path");
        return std::nullopt;
      }
      std::string trace_err;
      auto script = load_churn_trace(ph.trace_path, trace_err);
      if (!script) {
        error = phase_err(pi, trace_err);
        return std::nullopt;
      }
      ph.script = std::move(*script);
    } else {
      ph.strategy = body;
      if (!known_name(known, ph.strategy)) {
        error = phase_err(pi, "unknown strategy '" + ph.strategy +
                                  "' (valid: " + join_names(known) + ")");
        return std::nullopt;
      }
    }
    // ---- optional :range and ,key=value options ----
    std::string rest = ps.substr(body_end);
    bool have_range = false;
    if (!rest.empty() && rest[0] == ':') {
      const std::size_t range_end = rest.find(',');
      const std::string range =
          rest.substr(1, range_end == std::string::npos ? std::string::npos
                                                        : range_end - 1);
      const std::size_t dash = range.find('-');
      std::size_t b = 0;
      std::size_t e = kOpenEnd;
      bool ok = dash != std::string::npos &&
                parse_size(range.substr(0, dash), b);
      const std::string end_str =
          dash == std::string::npos ? "" : range.substr(dash + 1);
      if (ok && !end_str.empty()) ok = parse_size(end_str, e) && b < e;
      if (!ok) {
        error = phase_err(pi, "bad range '" + range +
                                  "' (want BEGIN-END or BEGIN-, half-open, "
                                  "BEGIN < END)");
        return std::nullopt;
      }
      ph.begin = b;
      ph.end = e;
      have_range = true;
      rest = range_end == std::string::npos ? "" : rest.substr(range_end);
    }
    if (!have_range) {
      if (prev_open) {
        error = phase_err(pi,
                          "follows an open-ended phase and would never run; "
                          "give it an explicit BEGIN-END range");
        return std::nullopt;
      }
      ph.begin = prev_end;
      ph.end = kOpenEnd;
    }
    while (!rest.empty()) {
      if (rest[0] != ',') {
        error = phase_err(pi, "trailing junk '" + rest + "'");
        return std::nullopt;
      }
      const std::size_t next = rest.find(',', 1);
      const std::string opt =
          rest.substr(1, next == std::string::npos ? std::string::npos
                                                   : next - 1);
      const std::size_t eq = opt.find('=');
      const std::string key = opt.substr(0, eq);
      const std::string val =
          eq == std::string::npos ? "" : opt.substr(eq + 1);
      if (key == "rate") {
        if (!parse_real(val, ph.rate) || ph.rate > 1.0) {
          error = phase_err(
              pi, "rate must be a number in [0, 1], got '" + val + "'");
          return std::nullopt;
        }
      } else if (key == "load") {
        if (!parse_real(val, ph.load)) {
          error = phase_err(pi, "load must be a number >= 0, got '" + val +
                                    "'");
          return std::nullopt;
        }
      } else if (key == "diurnal") {
        if (!parse_size(val, ph.diurnal_period) || ph.diurnal_period < 2) {
          error = phase_err(
              pi, "diurnal must be a period of >= 2 steps, got '" + val + "'");
          return std::nullopt;
        }
      } else {
        error = phase_err(pi, "unknown option '" + key +
                                  "' (valid: rate, load, diurnal)");
        return std::nullopt;
      }
      rest = next == std::string::npos ? "" : rest.substr(next);
    }
    prev_open = ph.end == kOpenEnd;
    prev_end = ph.end;
    spec.phases.push_back(std::move(ph));
  }
  return spec;
}

// --------------------------------------------------------------- combinators

CampaignPhase phase(std::string strategy, std::size_t begin, std::size_t end) {
  CampaignPhase ph;
  ph.strategy = std::move(strategy);
  ph.begin = begin;
  ph.end = end;
  return ph;
}

CampaignPhase mix(std::vector<MixPart> parts, std::size_t begin,
                  std::size_t end) {
  CampaignPhase ph;
  ph.mix = std::move(parts);
  ph.begin = begin;
  ph.end = end;
  return ph;
}

CampaignSpec seq(std::vector<CampaignPhase> phases) {
  CampaignSpec spec;
  std::size_t prev_end = 0;
  for (auto& ph : phases) {
    // Chain defaulted ranges exactly like the parser: a phase left at
    // [0, open) after the first begins where its predecessor ended.
    if (!spec.phases.empty() && ph.begin == 0 && ph.end == kOpenEnd) {
      DEX_ASSERT_MSG(prev_end != kOpenEnd,
                     "seq(): phase follows an open-ended phase");
      ph.begin = prev_end;
    }
    prev_end = ph.end;
    spec.phases.push_back(std::move(ph));
  }
  return spec;
}

// ---------------------------------------------------------- CampaignStrategy

CampaignStrategy::CampaignStrategy(CampaignSpec spec, const Factory& make)
    : spec_(std::move(spec)),
      built_(spec_.phases.size()),
      cursor_(spec_.phases.size(), 0) {
  DEX_ASSERT_MSG(!spec_.phases.empty(), "campaign has no phases");
  for (std::size_t i = 0; i < spec_.phases.size(); ++i) {
    const CampaignPhase& ph = spec_.phases[i];
    if (ph.is_replay()) continue;
    if (ph.is_mix()) {
      for (const MixPart& part : ph.mix) {
        auto s = make(part.strategy);
        DEX_ASSERT_MSG(s != nullptr, "campaign factory returned null");
        built_[i].push_back(std::move(s));
      }
    } else {
      auto s = make(ph.strategy);
      DEX_ASSERT_MSG(s != nullptr, "campaign factory returned null");
      built_[i].push_back(std::move(s));
    }
  }
}

Strategy* CampaignStrategy::strategy_for(const CampaignPhase& ph,
                                         std::size_t phase_index,
                                         support::Rng& rng) {
  auto& slots = built_[phase_index];
  DEX_ASSERT(!slots.empty());
  if (!ph.is_mix()) return slots.front().get();
  double total = 0.0;
  for (const MixPart& part : ph.mix) total += part.weight;
  // One weighted draw per step keeps the RNG stream consumption fixed
  // regardless of which part wins (determinism across mixes).
  double pick = rng.uniform01() * total;
  for (std::size_t i = 0; i < ph.mix.size(); ++i) {
    pick -= ph.mix[i].weight;
    if (pick <= 0.0) return slots[i].get();
  }
  return slots.back().get();
}

sim::ChurnBatch CampaignStrategy::replay_batch(CampaignPhase& ph,
                                               const AdversaryView& view,
                                               std::size_t want,
                                               std::size_t min_n,
                                               std::size_t max_n) {
  // Unlike Scripted (which aborts on invalid actions — harness bug), replay
  // tolerates drift: a recorded trace runs against a topology that has
  // diverged, so dead targets and bound violations are skipped.
  sim::ChurnBatch batch;
  const auto mask = view.alive_mask();
  const std::size_t floor_n = std::max<std::size_t>(min_n, 4);
  std::size_t n = view.n();
  std::unordered_set<NodeId> dying;
  std::unordered_set<NodeId> attached;
  std::size_t& at = cursor_[static_cast<std::size_t>(&ph - spec_.phases.data())];
  while (batch.size() < want && at < ph.script.size()) {
    const ChurnAction& a = ph.script[at++];
    const bool alive = a.target < mask.size() && mask[a.target];
    if (a.insert) {
      if (!alive || n >= max_n || dying.contains(a.target)) continue;
      batch.attach_to.push_back(a.target);
      attached.insert(a.target);
      ++n;
    } else {
      if (!alive || n <= floor_n || dying.contains(a.target) ||
          attached.contains(a.target)) {
        continue;
      }
      batch.victims.push_back(a.target);
      dying.insert(a.target);
      --n;
    }
  }
  return batch;
}

ChurnAction CampaignStrategy::next(const AdversaryView& view,
                                   support::Rng& rng, std::size_t min_n,
                                   std::size_t max_n) {
  const std::size_t t = step_++;
  const std::size_t pi = spec_.phase_index_at(t);
  if (pi == CampaignSpec::kNoPhase) {
    return fallback_.next(view, rng, min_n, max_n);
  }
  CampaignPhase& ph = spec_.phases[pi];
  if (ph.is_replay()) {
    const sim::ChurnBatch b = replay_batch(ph, view, 1, min_n, max_n);
    if (!b.attach_to.empty()) return {true, b.attach_to.front()};
    if (!b.victims.empty()) return {false, b.victims.front()};
    return fallback_.next(view, rng, min_n, max_n);
  }
  return strategy_for(ph, pi, rng)->next(view, rng, min_n, max_n);
}

sim::ChurnBatch CampaignStrategy::next_batch(const AdversaryView& view,
                                             support::Rng& rng,
                                             std::size_t min_n,
                                             std::size_t max_n,
                                             std::size_t batch_size) {
  const std::size_t t = step_++;
  const std::size_t pi = spec_.phase_index_at(t);
  if (pi == CampaignSpec::kNoPhase) return {};
  CampaignPhase& ph = spec_.phases[pi];
  // Rate gate: spend rate × batch_size events, resolving the fractional
  // remainder with one coin flip (consumed only when a remainder exists, so
  // rate=1 phases leave the RNG stream untouched).
  std::size_t want = batch_size;
  if (ph.rate < 1.0) {
    const double exact = static_cast<double>(batch_size) * ph.rate;
    want = static_cast<std::size_t>(exact);
    const double frac = exact - static_cast<double>(want);
    if (frac > 0.0 && rng.chance(frac)) ++want;
  }
  if (want == 0) return {};
  if (ph.is_replay()) return replay_batch(ph, view, want, min_n, max_n);
  return strategy_for(ph, pi, rng)->next_batch(view, rng, min_n, max_n, want);
}

}  // namespace dex::adversary
