#include "adversary/adversary.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/bfs.h"
#include "graph/conductance.h"
#include "support/assert.h"

namespace dex::adversary {

namespace {

bool must_insert(const AdversaryView& view, std::size_t min_n) {
  return view.n() <= min_n;
}

bool must_delete(const AdversaryView& view, std::size_t max_n) {
  return view.n() >= max_n;
}

/// The population the batch builders never delete below: the driver's
/// min_n, but at least 4 (the runner refuses to delete the network below 3
/// nodes mid-batch).
std::size_t delete_floor(std::size_t min_n) {
  return std::max<std::size_t>(min_n, 4);
}

/// Uniform attach points over the survivors of `dying`, at most
/// sim::kMaxAttachPerNode newcomers per node (§5's multiplicity cap).
void push_capped_attaches(const AdversaryView& view, support::Rng& rng,
                          const std::unordered_set<NodeId>& dying,
                          std::size_t count,
                          std::vector<NodeId>& attach_to) {
  if (count == 0) return;
  const auto nodes = view.alive_nodes();
  std::unordered_map<NodeId, std::size_t> mult;
  std::size_t placed = 0;
  for (std::size_t tries = 0; placed < count && tries < 8 * count + 16;
       ++tries) {
    const NodeId a = nodes[rng.below(nodes.size())];
    if (dying.contains(a) || mult[a] >= sim::kMaxAttachPerNode) continue;
    attach_to.push_back(a);
    ++mult[a];
    ++placed;
  }
}

}  // namespace

// -------------------------------------------------------- batch machinery

std::vector<NodeId> sample_safe_victims(const graph::Multigraph& g,
                                        const std::vector<bool>& alive,
                                        const std::vector<NodeId>& order,
                                        std::size_t want) {
  std::vector<NodeId> victims;
  if (want == 0) return victims;
  std::vector<bool> blocked(g.node_count(), false);
  std::vector<std::uint32_t> lost(g.node_count(), 0);
  for (NodeId v : order) {
    if (victims.size() >= want) break;
    if (v >= g.node_count() || !alive[v] || blocked[v]) continue;
    // Victims are kept pairwise non-adjacent (neighbors get blocked), so a
    // chosen victim's neighbors all survive — which already gives it a
    // surviving neighbor, provided it has a non-self neighbor at all.
    bool ok = false;
    for (NodeId w : g.ports(v)) {
      if (w != v) {
        ok = true;
        break;
      }
    }
    // Don't orphan a survivor: w must keep an edge after losing the ports
    // to v and to every previously chosen victim.
    if (ok) {
      for (NodeId w : g.ports(v)) {
        if (w == v) continue;
        std::size_t to_v = 0;
        for (NodeId x : g.ports(w)) {
          if (x == v) ++to_v;
        }
        if (g.degree(w) <= lost[w] + to_v) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    victims.push_back(v);
    blocked[v] = true;
    for (NodeId w : g.ports(v)) {
      if (w == v) continue;
      blocked[w] = true;
      ++lost[w];
    }
  }
  // Trim until the survivors are connected (rarely needed on expanders).
  std::vector<bool> mask = alive;
  for (NodeId v : victims) mask[v] = false;
  while (!victims.empty() && !graph::is_connected(g, mask)) {
    mask[victims.back()] = true;
    victims.pop_back();
  }
  return victims;
}

sim::ChurnBatch Strategy::next_batch(const AdversaryView& view,
                                     support::Rng& rng, std::size_t min_n,
                                     std::size_t max_n,
                                     std::size_t batch_size) {
  sim::ChurnBatch batch;
  std::unordered_set<NodeId> dying;
  std::unordered_set<NodeId> attached;
  // Project the population ourselves: next() keeps reading the stale
  // pre-batch view, so its own bound enforcement cannot be trusted past
  // the first event.
  std::size_t n = view.n();
  // A strategy that decides deterministically off the (stale) view keeps
  // proposing the same event — e.g. CoordinatorKiller's fixed victim, or
  // GreedySpectralDeletion re-running its expensive sweep to the same
  // answer. A run of consecutive discards means the stale view has nothing
  // new to offer; stop early instead of burning next() calls.
  const std::size_t attempts = 4 * batch_size + 16;
  std::size_t consecutive_discards = 0;
  for (std::size_t a = 0; a < attempts && batch.size() < batch_size &&
                          consecutive_discards < 8;
       ++a) {
    const ChurnAction act = next(view, rng, min_n, max_n);
    if (act.insert) {
      if (n >= max_n || dying.contains(act.target)) {
        ++consecutive_discards;
        continue;
      }
      batch.attach_to.push_back(act.target);
      attached.insert(act.target);
      ++n;
    } else {
      // Attach points must survive the batch, so a node already used as one
      // cannot become a victim afterwards (and vice versa, above).
      if (n <= delete_floor(min_n) || dying.contains(act.target) ||
          attached.contains(act.target)) {
        ++consecutive_discards;
        continue;
      }
      batch.victims.push_back(act.target);
      dying.insert(act.target);
      --n;
    }
    consecutive_discards = 0;
  }
  return batch;
}

ChurnAction RandomChurn::next(const AdversaryView& view, support::Rng& rng,
                              std::size_t min_n, std::size_t max_n) {
  bool ins = rng.chance(p_);
  if (must_insert(view, min_n)) ins = true;
  if (must_delete(view, max_n)) ins = false;
  return {ins, random_alive(view, rng)};
}

ChurnAction InsertOnly::next(const AdversaryView& view, support::Rng& rng,
                             std::size_t /*min_n*/, std::size_t /*max_n*/) {
  return {true, random_alive(view, rng)};
}

ChurnAction DeleteOnly::next(const AdversaryView& view, support::Rng& rng,
                             std::size_t min_n, std::size_t /*max_n*/) {
  if (must_insert(view, min_n)) return {true, random_alive(view, rng)};
  return {false, random_alive(view, rng)};
}

ChurnAction Oscillate::next(const AdversaryView& view, support::Rng& rng,
                            std::size_t min_n, std::size_t max_n) {
  const bool insert_phase = (tick_++ / k_) % 2 == 0;
  bool ins = insert_phase;
  if (must_insert(view, min_n)) ins = true;
  if (must_delete(view, max_n)) ins = false;
  return {ins, random_alive(view, rng)};
}

ChurnAction CoordinatorKiller::next(const AdversaryView& view,
                                    support::Rng& rng, std::size_t min_n,
                                    std::size_t max_n) {
  insert_next_ = !insert_next_;
  const bool ins = must_insert(view, min_n) ||
                   (insert_next_ && !must_delete(view, max_n));
  if (ins) return {true, random_alive(view, rng)};
  const NodeId c = view.special_node();
  if (c != graph::kInvalidNode) return {false, c};
  return {false, random_alive(view, rng)};
}

ChurnAction LoadAttack::next(const AdversaryView& view, support::Rng& rng,
                             std::size_t min_n, std::size_t max_n) {
  // Find the max-load node (the adversary has full knowledge).
  NodeId heaviest = graph::kInvalidNode;
  std::size_t best = 0;
  for (NodeId u : view.alive_nodes()) {
    const std::size_t l = view.load(u);
    if (heaviest == graph::kInvalidNode || l > best) {
      heaviest = u;
      best = l;
    }
  }
  insert_next_ = !insert_next_;
  bool ins = insert_next_;
  if (must_insert(view, min_n)) ins = true;
  if (must_delete(view, max_n)) ins = false;
  if (ins) return {true, heaviest};  // pile newcomers onto the heaviest node
  (void)rng;
  return {false, heaviest};  // or knock it out
}

ChurnAction SpectralAttack::next(const AdversaryView& view,
                                 support::Rng& rng, std::size_t min_n,
                                 std::size_t max_n) {
  if (must_insert(view, min_n) || kill_queue_.empty()) {
    // Refill the kill queue periodically: nodes of the sparse side that
    // touch the cut, sparsest-incident first.
    if (tick_++ % period_ == 0 || kill_queue_.empty()) {
      const auto g = view.snapshot();
      const auto mask = view.alive_mask();
      const auto cut = graph::sweep_cut(g, mask);
      kill_queue_.clear();
      for (NodeId u : cut.side) kill_queue_.push_back(u);
      if (!cut.side.empty()) anchor_ = cut.side.front();
    }
    if (must_insert(view, min_n) || view.n() < max_n / 2) {
      // Grow the anchored side to keep the cut starved.
      NodeId at = anchor_;
      if (at == graph::kInvalidNode || !view.alive_mask()[at])
        at = random_alive(view, rng);
      return {true, at};
    }
  }
  while (!kill_queue_.empty()) {
    const NodeId v = kill_queue_.front();
    kill_queue_.pop_front();
    if (v < view.alive_mask().size() && view.alive_mask()[v] &&
        view.n() > min_n) {
      return {false, v};
    }
  }
  return {false, random_alive(view, rng)};
}

ChurnAction GreedySpectralDeletion::next(const AdversaryView& view,
                                         support::Rng& rng,
                                         std::size_t min_n,
                                         std::size_t max_n) {
  if (must_insert(view, min_n) ||
      (rng.chance(insert_ratio_) && !must_delete(view, max_n))) {
    return {true, random_alive(view, rng)};
  }
  const auto nodes = view.alive_nodes();
  NodeId best = nodes[rng.below(nodes.size())];
  double best_gap = 2.0;
  for (std::size_t c = 0; c < candidates_; ++c) {
    const NodeId v = nodes[rng.below(nodes.size())];
    graph::Multigraph g;
    if (view.snapshot_without) {
      g = view.snapshot_without(v);
    } else {
      g = view.snapshot();
      g.isolate(v);  // no healing oracle: evaluate the raw hole
    }
    auto mask = view.alive_mask();
    mask[v] = false;
    // Removing v's edges can orphan a neighbor; keep the solver's
    // no-isolated-nodes precondition.
    for (NodeId u = 0; u < g.node_count(); ++u) {
      if (mask[u] && g.degree(u) == 0) mask[u] = false;
    }
    dex::graph::SpectralOptions opts;
    opts.max_iterations = 2000;
    opts.tolerance = 1e-7;
    const double gap = dex::graph::spectral_gap(g, mask, opts).gap;
    if (gap < best_gap) {
      best_gap = gap;
      best = v;
    }
  }
  return {false, best};
}

sim::ChurnBatch BurstChurn::next_batch(const AdversaryView& view,
                                       support::Rng& rng, std::size_t min_n,
                                       std::size_t max_n,
                                       std::size_t batch_size) {
  sim::ChurnBatch batch;
  const std::size_t n = view.n();
  std::size_t inserts = 0;
  std::size_t deletes = 0;
  for (std::size_t i = 0; i < batch_size; ++i) {
    if (rng.chance(frac_)) {
      ++inserts;
    } else {
      ++deletes;
    }
  }
  inserts = std::min(inserts, max_n > n ? max_n - n : 0);
  const std::size_t floor_n = delete_floor(min_n);
  deletes = n > floor_n ? std::min(deletes, n - floor_n) : 0;

  if (deletes > 0) {
    const auto g = view.snapshot();
    const auto mask = view.alive_mask();
    auto order = view.alive_nodes();
    rng.shuffle(order);
    batch.victims = sample_safe_victims(g, mask, order, deletes);
  }
  const std::unordered_set<NodeId> dying(batch.victims.begin(),
                                         batch.victims.end());
  push_capped_attaches(view, rng, dying, inserts, batch.attach_to);
  return batch;
}

ChurnAction FlashCrowd::next(const AdversaryView& view, support::Rng& rng,
                             std::size_t /*min_n*/, std::size_t max_n) {
  if (must_delete(view, max_n)) return {false, random_alive(view, rng)};
  return {true, random_alive(view, rng)};
}

sim::ChurnBatch FlashCrowd::next_batch(const AdversaryView& view,
                                       support::Rng& rng, std::size_t min_n,
                                       std::size_t max_n,
                                       std::size_t batch_size) {
  sim::ChurnBatch batch;
  const std::size_t n = view.n();
  const std::size_t inserts =
      std::min(batch_size, max_n > n ? max_n - n : 0);
  if (inserts > 0) {
    push_capped_attaches(view, rng, {}, inserts, batch.attach_to);
    return batch;
  }
  // At the cap: a departure wave makes room for the next arrival wave.
  const std::size_t floor_n = delete_floor(min_n);
  const std::size_t deletes =
      n > floor_n ? std::min(batch_size, n - floor_n) : 0;
  const auto g = view.snapshot();
  const auto mask = view.alive_mask();
  auto order = view.alive_nodes();
  rng.shuffle(order);
  batch.victims = sample_safe_victims(g, mask, order, deletes);
  return batch;
}

ChurnAction CorrelatedFailure::next(const AdversaryView& view,
                                    support::Rng& rng, std::size_t min_n,
                                    std::size_t /*max_n*/) {
  if (must_insert(view, min_n)) return {true, random_alive(view, rng)};
  return {false, random_alive(view, rng)};
}

sim::ChurnBatch CorrelatedFailure::next_batch(const AdversaryView& view,
                                              support::Rng& rng,
                                              std::size_t min_n,
                                              std::size_t max_n,
                                              std::size_t batch_size) {
  sim::ChurnBatch batch;
  const std::size_t n = view.n();
  const std::size_t floor_n = delete_floor(min_n);
  if (n <= floor_n) {
    // At the floor: a recovery wave of insertions keeps the run alive.
    const std::size_t inserts =
        std::min(batch_size, max_n > n ? max_n - n : 0);
    push_capped_attaches(view, rng, {}, inserts, batch.attach_to);
    return batch;
  }
  const std::size_t deletes = std::min(batch_size, n - floor_n);
  const auto g = view.snapshot();
  const auto mask = view.alive_mask();
  const auto nodes = view.alive_nodes();
  // Victims cluster around a random epicenter: candidates ordered by BFS
  // distance, nearest first (the safe sampler then thins the cluster to
  // keep the §5 preconditions).
  const NodeId epicenter = nodes[rng.below(nodes.size())];
  const auto dist = graph::bfs_distances(g, epicenter, mask);
  auto order = nodes;
  std::stable_sort(order.begin(), order.end(), [&dist](NodeId a, NodeId b) {
    return dist[a] < dist[b];
  });
  batch.victims = sample_safe_victims(g, mask, order, deletes);
  if (batch.empty() && n < max_n) {
    // Nothing safely deletable (tiny or fragile remainder): fall back to a
    // single insertion so the scenario keeps making progress.
    batch.attach_to.push_back(random_alive(view, rng));
  }
  return batch;
}

sim::ChurnBatch OracleBuster::next_batch(const AdversaryView& view,
                                         support::Rng& rng, std::size_t min_n,
                                         std::size_t max_n,
                                         std::size_t batch_size) {
  sim::ChurnBatch batch;
  const std::size_t n = view.n();
  const std::size_t floor_n = delete_floor(min_n);
  std::size_t deletes =
      n > floor_n ? std::min(batch_size / 2, n - floor_n) : 0;
  const std::size_t inserts =
      std::min(batch_size - deletes, max_n > n ? max_n - n : 0);
  const auto g = view.snapshot();
  const auto mask = view.alive_mask();
  const auto nodes = view.alive_nodes();
  // Ring the candidates by BFS distance from a random epicenter and
  // consume the rings round-robin, farthest first — consecutive victims
  // land in different regions, which is exactly what defeats a
  // locality-amortizing oracle memo.
  const NodeId epicenter = nodes[rng.below(nodes.size())];
  const auto dist = graph::bfs_distances(g, epicenter, mask);
  std::uint32_t max_d = 0;
  for (NodeId u : nodes) {
    if (dist[u] != graph::kUnreached) max_d = std::max(max_d, dist[u]);
  }
  std::vector<std::vector<NodeId>> rings(static_cast<std::size_t>(max_d) + 1);
  for (NodeId u : nodes) {
    if (dist[u] != graph::kUnreached) rings[dist[u]].push_back(u);
  }
  std::vector<NodeId> order;
  order.reserve(nodes.size());
  for (std::size_t depth = 0; order.size() < nodes.size(); ++depth) {
    bool any = false;
    for (std::size_t r = rings.size(); r-- > 0;) {
      if (depth < rings[r].size()) {
        order.push_back(rings[r][depth]);
        any = true;
      }
    }
    if (!any) break;
  }
  if (deletes > 0) batch.victims = sample_safe_victims(g, mask, order, deletes);
  const std::unordered_set<NodeId> dying(batch.victims.begin(),
                                         batch.victims.end());
  // Attach points scatter the same way: walk the interleaved ring order so
  // newcomers (and the key ranges they take over) spread across regions.
  std::unordered_map<NodeId, std::size_t> mult;
  std::size_t placed = 0;
  for (NodeId a : order) {
    if (placed >= inserts) break;
    if (dying.contains(a) || mult[a] >= sim::kMaxAttachPerNode) continue;
    batch.attach_to.push_back(a);
    ++mult[a];
    ++placed;
  }
  return batch;
}

std::vector<std::uint32_t> ChordAttack::chord_scores(
    const AdversaryView& view, support::Rng& rng, const graph::Multigraph& g,
    const std::vector<bool>& mask) const {
  const auto nodes = view.alive_nodes();
  std::vector<std::uint32_t> score(g.node_count(), 0);
  // Betweenness proxy: over a few random BFS roots, credit u once per
  // downhill edge it feeds (dist[w] == dist[u] + 1) — nodes carrying many
  // shortest-path trees are the chord/shortcut carriers.
  for (std::size_t s = 0; s < sources_; ++s) {
    const NodeId src = nodes[rng.below(nodes.size())];
    const auto dist = graph::bfs_distances(g, src, mask);
    for (NodeId u : nodes) {
      if (dist[u] == graph::kUnreached) continue;
      for (NodeId w : g.ports(u)) {
        if (w != u && mask[w] && dist[w] == dist[u] + 1) ++score[u];
      }
    }
  }
  return score;
}

ChurnAction ChordAttack::next(const AdversaryView& view, support::Rng& rng,
                              std::size_t min_n, std::size_t max_n) {
  insert_next_ = !insert_next_;
  const bool ins = must_insert(view, min_n) ||
                   (insert_next_ && !must_delete(view, max_n));
  if (ins) return {true, random_alive(view, rng)};
  const auto g = view.snapshot();
  const auto mask = view.alive_mask();
  const auto score = chord_scores(view, rng, g, mask);
  NodeId best = graph::kInvalidNode;
  for (NodeId u : view.alive_nodes()) {
    if (best == graph::kInvalidNode || score[u] > score[best]) best = u;
  }
  return {false, best};
}

sim::ChurnBatch ChordAttack::next_batch(const AdversaryView& view,
                                        support::Rng& rng, std::size_t min_n,
                                        std::size_t max_n,
                                        std::size_t batch_size) {
  sim::ChurnBatch batch;
  const std::size_t n = view.n();
  const std::size_t floor_n = delete_floor(min_n);
  if (n <= floor_n) {
    const std::size_t inserts =
        std::min(batch_size, max_n > n ? max_n - n : 0);
    push_capped_attaches(view, rng, {}, inserts, batch.attach_to);
    return batch;
  }
  const std::size_t deletes = std::min(batch_size, n - floor_n);
  const auto g = view.snapshot();
  const auto mask = view.alive_mask();
  const auto score = chord_scores(view, rng, g, mask);
  auto order = view.alive_nodes();
  std::stable_sort(order.begin(), order.end(),
                   [&score](NodeId a, NodeId b) { return score[a] > score[b]; });
  batch.victims = sample_safe_victims(g, mask, order, deletes);
  if (batch.empty() && n < max_n) {
    batch.attach_to.push_back(random_alive(view, rng));
  }
  return batch;
}

ChurnAction SpectralBatch::next(const AdversaryView& view, support::Rng& rng,
                                std::size_t min_n, std::size_t max_n) {
  if (must_insert(view, min_n)) return {true, random_alive(view, rng)};
  const auto g = view.snapshot();
  const auto mask = view.alive_mask();
  const auto cut = graph::sweep_cut(g, mask);
  if (!cut.side.empty() && !must_delete(view, max_n)) {
    // Single-event mode: peel the cut side one boundary node at a time.
    NodeId best = cut.side.front();
    std::size_t best_out = 0;
    std::vector<bool> in_side(g.node_count(), false);
    for (NodeId u : cut.side) in_side[u] = true;
    for (NodeId u : cut.side) {
      std::size_t out = 0;
      for (NodeId w : g.ports(u)) {
        if (w != u && mask[w] && !in_side[w]) ++out;
      }
      if (out > best_out) {
        best_out = out;
        best = u;
      }
    }
    return {false, best};
  }
  return {false, random_alive(view, rng)};
}

sim::ChurnBatch SpectralBatch::next_batch(const AdversaryView& view,
                                          support::Rng& rng,
                                          std::size_t min_n,
                                          std::size_t max_n,
                                          std::size_t batch_size) {
  sim::ChurnBatch batch;
  const std::size_t n = view.n();
  const std::size_t floor_n = delete_floor(min_n);
  const auto g = view.snapshot();
  const auto mask = view.alive_mask();
  const auto cut = graph::sweep_cut(g, mask);
  std::vector<bool> in_side(g.node_count(), false);
  for (NodeId u : cut.side) in_side[u] = true;
  if (n > floor_n && !cut.side.empty()) {
    const std::size_t deletes = std::min(batch_size, n - floor_n);
    // Boundary-first: the cut-side nodes with the most cut-crossing edges
    // are the ones holding the two halves together.
    std::vector<std::size_t> crossing(g.node_count(), 0);
    for (NodeId u : cut.side) {
      for (NodeId w : g.ports(u)) {
        if (w != u && mask[w] && !in_side[w]) ++crossing[u];
      }
    }
    auto order = cut.side;
    std::stable_sort(order.begin(), order.end(),
                     [&crossing](NodeId a, NodeId b) {
                       return crossing[a] > crossing[b];
                     });
    batch.victims = sample_safe_victims(g, mask, order, deletes);
  }
  // Leftover budget: grow the opposite side, starving the cut of repair
  // material (mirrors SpectralAttack's anchor, at batch multiplicity).
  const std::size_t leftover =
      batch_size > batch.victims.size() ? batch_size - batch.victims.size()
                                        : 0;
  const std::size_t inserts = std::min(leftover, max_n > n ? max_n - n : 0);
  if (inserts > 0) {
    const std::unordered_set<NodeId> dying(batch.victims.begin(),
                                           batch.victims.end());
    std::vector<NodeId> anchors;
    for (NodeId u : view.alive_nodes()) {
      if (!in_side[u] && !dying.contains(u)) anchors.push_back(u);
    }
    if (anchors.empty()) {
      push_capped_attaches(view, rng, dying, inserts, batch.attach_to);
    } else {
      std::size_t placed = 0;
      for (std::size_t depth = 0; placed < inserts; ++depth) {
        bool any = false;
        for (NodeId a : anchors) {
          if (placed >= inserts) break;
          if (depth < sim::kMaxAttachPerNode) {
            batch.attach_to.push_back(a);
            ++placed;
            any = true;
          }
        }
        if (!any) break;
      }
    }
  }
  return batch;
}

ChurnAction Scripted::next(const AdversaryView& view, support::Rng& rng,
                           std::size_t /*min_n*/, std::size_t /*max_n*/) {
  (void)view;
  (void)rng;
  DEX_ASSERT_MSG(at_ < script_.size(), "scripted adversary exhausted");
  return script_[at_++];
}

sim::ChurnBatch Scripted::next_batch(const AdversaryView& /*view*/,
                                     support::Rng& /*rng*/,
                                     std::size_t /*min_n*/,
                                     std::size_t /*max_n*/,
                                     std::size_t batch_size) {
  sim::ChurnBatch batch;
  for (std::size_t i = 0; i < batch_size; ++i) {
    DEX_ASSERT_MSG(at_ < script_.size(), "scripted adversary exhausted");
    const ChurnAction& a = script_[at_++];
    (a.insert ? batch.attach_to : batch.victims).push_back(a.target);
  }
  return batch;
}

}  // namespace dex::adversary
