#include "adversary/adversary.h"

#include <algorithm>

#include "graph/conductance.h"
#include "support/assert.h"

namespace dex::adversary {

namespace {

bool must_insert(const AdversaryView& view, std::size_t min_n) {
  return view.n() <= min_n;
}

bool must_delete(const AdversaryView& view, std::size_t max_n) {
  return view.n() >= max_n;
}

}  // namespace

ChurnAction RandomChurn::next(const AdversaryView& view, support::Rng& rng,
                              std::size_t min_n, std::size_t max_n) {
  bool ins = rng.chance(p_);
  if (must_insert(view, min_n)) ins = true;
  if (must_delete(view, max_n)) ins = false;
  return {ins, random_alive(view, rng)};
}

ChurnAction InsertOnly::next(const AdversaryView& view, support::Rng& rng,
                             std::size_t /*min_n*/, std::size_t /*max_n*/) {
  return {true, random_alive(view, rng)};
}

ChurnAction DeleteOnly::next(const AdversaryView& view, support::Rng& rng,
                             std::size_t min_n, std::size_t /*max_n*/) {
  if (must_insert(view, min_n)) return {true, random_alive(view, rng)};
  return {false, random_alive(view, rng)};
}

ChurnAction Oscillate::next(const AdversaryView& view, support::Rng& rng,
                            std::size_t min_n, std::size_t max_n) {
  const bool insert_phase = (tick_++ / k_) % 2 == 0;
  bool ins = insert_phase;
  if (must_insert(view, min_n)) ins = true;
  if (must_delete(view, max_n)) ins = false;
  return {ins, random_alive(view, rng)};
}

ChurnAction CoordinatorKiller::next(const AdversaryView& view,
                                    support::Rng& rng, std::size_t min_n,
                                    std::size_t max_n) {
  insert_next_ = !insert_next_;
  const bool ins = must_insert(view, min_n) ||
                   (insert_next_ && !must_delete(view, max_n));
  if (ins) return {true, random_alive(view, rng)};
  const NodeId c = view.special_node();
  if (c != graph::kInvalidNode) return {false, c};
  return {false, random_alive(view, rng)};
}

ChurnAction LoadAttack::next(const AdversaryView& view, support::Rng& rng,
                             std::size_t min_n, std::size_t max_n) {
  // Find the max-load node (the adversary has full knowledge).
  NodeId heaviest = graph::kInvalidNode;
  std::size_t best = 0;
  for (NodeId u : view.alive_nodes()) {
    const std::size_t l = view.load(u);
    if (heaviest == graph::kInvalidNode || l > best) {
      heaviest = u;
      best = l;
    }
  }
  insert_next_ = !insert_next_;
  bool ins = insert_next_;
  if (must_insert(view, min_n)) ins = true;
  if (must_delete(view, max_n)) ins = false;
  if (ins) return {true, heaviest};  // pile newcomers onto the heaviest node
  (void)rng;
  return {false, heaviest};  // or knock it out
}

ChurnAction SpectralAttack::next(const AdversaryView& view,
                                 support::Rng& rng, std::size_t min_n,
                                 std::size_t max_n) {
  if (must_insert(view, min_n) || kill_queue_.empty()) {
    // Refill the kill queue periodically: nodes of the sparse side that
    // touch the cut, sparsest-incident first.
    if (tick_++ % period_ == 0 || kill_queue_.empty()) {
      const auto g = view.snapshot();
      const auto mask = view.alive_mask();
      const auto cut = graph::sweep_cut(g, mask);
      kill_queue_.clear();
      for (NodeId u : cut.side) kill_queue_.push_back(u);
      if (!cut.side.empty()) anchor_ = cut.side.front();
    }
    if (must_insert(view, min_n) || view.n() < max_n / 2) {
      // Grow the anchored side to keep the cut starved.
      NodeId at = anchor_;
      if (at == graph::kInvalidNode || !view.alive_mask()[at])
        at = random_alive(view, rng);
      return {true, at};
    }
  }
  while (!kill_queue_.empty()) {
    const NodeId v = kill_queue_.front();
    kill_queue_.pop_front();
    if (v < view.alive_mask().size() && view.alive_mask()[v] &&
        view.n() > min_n) {
      return {false, v};
    }
  }
  return {false, random_alive(view, rng)};
}

ChurnAction GreedySpectralDeletion::next(const AdversaryView& view,
                                         support::Rng& rng,
                                         std::size_t min_n,
                                         std::size_t max_n) {
  if (must_insert(view, min_n) ||
      (rng.chance(insert_ratio_) && !must_delete(view, max_n))) {
    return {true, random_alive(view, rng)};
  }
  const auto nodes = view.alive_nodes();
  NodeId best = nodes[rng.below(nodes.size())];
  double best_gap = 2.0;
  for (std::size_t c = 0; c < candidates_; ++c) {
    const NodeId v = nodes[rng.below(nodes.size())];
    graph::Multigraph g;
    if (view.snapshot_without) {
      g = view.snapshot_without(v);
    } else {
      g = view.snapshot();
      g.isolate(v);  // no healing oracle: evaluate the raw hole
    }
    auto mask = view.alive_mask();
    mask[v] = false;
    // Removing v's edges can orphan a neighbor; keep the solver's
    // no-isolated-nodes precondition.
    for (NodeId u = 0; u < g.node_count(); ++u) {
      if (mask[u] && g.degree(u) == 0) mask[u] = false;
    }
    dex::graph::SpectralOptions opts;
    opts.max_iterations = 2000;
    opts.tolerance = 1e-7;
    const double gap = dex::graph::spectral_gap(g, mask, opts).gap;
    if (gap < best_gap) {
      best_gap = gap;
      best = v;
    }
  }
  return {false, best};
}

ChurnAction Scripted::next(const AdversaryView& view, support::Rng& rng,
                           std::size_t /*min_n*/, std::size_t /*max_n*/) {
  (void)view;
  (void)rng;
  DEX_ASSERT_MSG(at_ < script_.size(), "scripted adversary exhausted");
  return script_[at_++];
}

}  // namespace dex::adversary
