#pragma once

/// \file flood.h
/// Cost model for flooding/aggregation (Algorithm 4.4 of the paper:
/// computeSpare / computeLow). A BFS-style broadcast from the initiator
/// followed by a convergecast of the aggregate takes 2·ecc(source) rounds
/// and ~2 messages per edge (one out, one back).

#include "graph/multigraph.h"
#include "sim/meters.h"

namespace dex::sim {

/// Cost of one broadcast+convergecast from `source` over the alive subgraph.
[[nodiscard]] StepCost flood_cost(const graph::Multigraph& g,
                                  graph::NodeId source,
                                  const std::vector<bool>& alive = {});

}  // namespace dex::sim
