#pragma once

/// \file workload.h
/// The traffic layer: backend-agnostic key-value workloads served *through*
/// a HealingOverlay while churn runs underneath. The paper's headline
/// application (§4.4.4) is a DHT whose keys survive churn because the
/// p-cycle heals under them; this layer generalizes that claim into a
/// scenario axis every backend can serve, so the stretch/latency comparison
/// against the baselines (Law–Siu, Xheal, flooding) becomes measurable.
///
/// Three pieces:
///
///  * KvStore — a generic key-value store over any HealingOverlay. Keys
///    hash into the *alive-node space* by rendezvous (highest-random-weight)
///    hashing, so one membership change re-homes only the affected keys —
///    the generic analogue of dex::Dht's epoch/re-hash accounting, behind
///    one interface. Requests route through HealingOverlay::route (DEX:
///    locally computable p-cycle paths; baselines: BFS on the live view),
///    and every operation reports both its realized hops and the
///    BFS-optimal hop count, so stretch falls out per step.
///
///  * Workload generators — uniform, Zipf (rank-probability ∝ 1/rank^s),
///    read/write mixes, and an adversarial hotspot that hammers the keys
///    most recently re-homed by churn (the cache-miss storm a real system
///    sees after a rebuild).
///
///  * TrafficEngine — one trial's traffic state (store + generator + an RNG
///    independent of the adversary's), stepped by the ScenarioRunner after
///    each applied ChurnBatch; its per-step tallies flow into StepRecord
///    and from there through every sink.
///
/// Serving cost per op is amortized ~O(1) in the live view size: the store
/// keeps a flat CSR snapshot of the step's topology (graph/csr.h, taken
/// from the runner's CachedView), answers hop optima through a per-step
/// DistanceOracle (sim/oracle.h) whose single-source BFS frontiers are
/// shared across the step's ops, and re-homes keys from per-key top-K
/// rendezvous candidate lists instead of rescanning the whole alive set.
///
/// This header sits between sim/overlay.h and sim/scenario.h: it needs the
/// overlay surface and the AdversaryView, while ScenarioSpec embeds
/// TrafficSpec — so it must not depend on scenario.h.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "adversary/adversary.h"
#include "graph/csr.h"
#include "graph/multigraph.h"
#include "sim/churn.h"
#include "sim/oracle.h"
#include "sim/overlay.h"
#include "support/assert.h"
#include "support/prng.h"

namespace dex::sim {

/// The salt folded into a trial seed to derive the traffic RNG: request
/// generation must not perturb the adversary's decision stream (a spec with
/// traffic off and one with traffic on replay the same churn byte-for-byte).
inline constexpr std::uint64_t kTrafficSeedSalt = 0x7f4a7c159e3779b9ULL;

/// Declarative description of the request stream interleaved with churn.
/// Everything here is byte-determining: spec + seed reproduce the exact
/// request sequence.
struct TrafficSpec {
  /// Workload name ("uniform", "zipf", "hotspot"); empty = no traffic.
  std::string workload;
  /// Requests served after each churn step.
  std::size_t ops_per_step = 64;
  /// Distinct keys the generators draw from.
  std::size_t keyspace = 4096;
  /// Zipf exponent s (rank probability ∝ 1/rank^s); used by "zipf" and as
  /// the hotspot generator's background distribution.
  double zipf_s = 1.1;
  /// Fraction of operations on already-acknowledged keys that are reads;
  /// the rest (and every first touch of a key) are writes.
  double read_fraction = 0.75;

  [[nodiscard]] bool enabled() const { return !workload.empty(); }
};

/// The workload names TrafficEngine accepts, in canonical order.
[[nodiscard]] const std::vector<std::string>& known_workloads();

/// Comma-separated list of valid workload names (for usage messages).
[[nodiscard]] const char* workload_names();

/// One step's traffic tallies, folded into StepRecord by the runner.
/// Accounting contract: every op lands in exactly one bucket — delivered
/// ops (their hops feed op_hops/opt_hops), failed_lookups, or
/// failed_writes. Hops of failed ops never pollute the stretch ratio.
struct TrafficStepStats {
  std::size_t ops = 0;
  /// Reads of an acknowledged key that missed or returned a stale value —
  /// the "lost key" signal the conformance suite pins at zero.
  std::size_t failed_lookups = 0;
  /// Writes whose request could not be delivered (no live route from the
  /// origin to the key's home). Invisible before this counter existed: a
  /// dropped put left no ack and no metric.
  std::size_t failed_writes = 0;
  /// Total realized route hops across *completed* ops (gets pay the round
  /// trip).
  std::uint64_t op_hops = 0;
  /// Total BFS-optimal hops for the same (origin, home) pairs.
  std::uint64_t opt_hops = 0;
  /// Keys re-homed by this step's churn.
  std::size_t moved_keys = 0;
  /// Messages charged for those key transfers.
  std::uint64_t rehash_messages = 0;
};

/// Generic key-value store over any HealingOverlay. Placement is rendezvous
/// hashing into the alive-node set: key k lives at the alive node u
/// maximizing a per-(k, u) hash, so node joins/leaves re-home only the keys
/// whose maximum changed (unlike mod-hashing, which re-homes almost
/// everything on every membership change). sync() must be called after
/// every churn step, with the post-churn view; it re-homes affected keys
/// and charges their transfer messages.
///
/// Placement invariant (pinned by tests): after every sync(), each stored
/// key's home equals the rendezvous argmax over the *current* alive set —
/// keys rebalance onto joiners that out-score the incumbent, exactly as a
/// fresh store would place them. sync() maintains this incrementally: each
/// key carries its top-K rendezvous candidates, so a death of the home
/// promotes the best surviving candidate (exact, because no node outside
/// the list can out-score its members) and only a fully-died-out list pays
/// a rescan of the alive set.
class KvStore {
 public:
  explicit KvStore(const HealingOverlay& overlay);

  struct SyncStats {
    std::size_t moved_keys = 0;
    std::uint64_t messages = 0;
  };

  /// Refreshes the cached live view (one flat CSR per step — borrowed from
  /// the runner's CachedView when the view exposes live_csr, rebuilt
  /// locally otherwise), updates the sorted alive set incrementally from
  /// the membership delta, and re-homes keys displaced by the change.
  /// Transfer charge per moved key: the BFS distance from its new home to
  /// its old one when the old host survived, else the mean BFS distance
  /// from the new home (the expected recovery pull).
  SyncStats sync(const adversary::AdversaryView& view);

  struct OpResult {
    /// Writes: stored. Reads: key present and a value returned. False when
    /// the key is absent or no live route exists (the latter never on a
    /// healing overlay maintaining connectivity).
    bool ok = false;
    std::uint64_t hops = 0;
    std::uint64_t optimal_hops = 0;
    std::optional<std::uint64_t> value;
  };

  /// Stores (key, value), overwriting a previous binding; routes from
  /// `origin` to the key's home (one-way). A churned-out origin re-enters
  /// through a deterministic live proxy (hash of the stale id into the
  /// alive-node space) — requests must never route from a dead node, and
  /// pinning every stale origin to one fixed node would manufacture a
  /// hotspot.
  OpResult put(std::uint64_t key, std::uint64_t value, graph::NodeId origin);

  /// Looks `key` up from `origin`. A hit pays the round trip (2x the
  /// one-way route); a miss pays only the one-way request (there is no
  /// value to carry back, and the op is failed — its hops must not pass
  /// for a served round trip in the stretch accounting); a routing failure
  /// pays nothing.
  OpResult get(std::uint64_t key, graph::NodeId origin);

  /// Removes the binding (one-way route); ok = it existed.
  OpResult erase(std::uint64_t key, graph::NodeId origin);

  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Current home of `key` (its placement if stored, else where it would be
  /// placed). Requires a prior sync().
  [[nodiscard]] graph::NodeId home(std::uint64_t key) const;

  /// Keys re-homed by the most recent sync(), ascending — the hotspot
  /// generator's target list.
  [[nodiscard]] const std::vector<std::uint64_t>& last_moved() const {
    return last_moved_;
  }

  /// Keys currently homed at any of `homes`, ascending (hotspot targeting).
  [[nodiscard]] std::vector<std::uint64_t> keys_at(
      const std::vector<graph::NodeId>& homes) const;

  /// Whether sync() has run at least once (operations require it).
  [[nodiscard]] bool synced() const { return synced_; }

  /// The live view adopted by the last sync() — borrowed straight from the
  /// runner's maintained CSR when the view exposes live_csr (zero copies;
  /// the CachedView's object identity is stable across steps), otherwise
  /// the store's own rebuild. Requires a prior sync().
  [[nodiscard]] const graph::CsrView& live_view() const {
    DEX_ASSERT(csr_ != nullptr);
    return *csr_;
  }

  /// The ascending alive-node list maintained by sync() — the same content
  /// view.alive_nodes() would return, without the per-step copy.
  [[nodiscard]] const std::vector<graph::NodeId>& alive() const {
    return alive_;
  }

  [[nodiscard]] std::size_t moved_total() const { return moved_total_; }
  [[nodiscard]] std::uint64_t rehash_messages_total() const {
    return rehash_messages_total_;
  }

 private:
  /// Candidates a key keeps per placement, best first. 8 deaths of a key's
  /// candidates between rescans are essentially impossible under bounded
  /// churn, so rescans are rare; exactness never depends on the constant.
  static constexpr std::size_t kHomeCandidates = 8;

  struct Candidate {
    graph::NodeId node = graph::kInvalidNode;
    std::uint64_t score = 0;
  };
  /// Top rendezvous candidates by (score desc, id asc); [0] is the home.
  /// `floor` bounds every *alive non-member's* score (the best score ever
  /// scanned past, skipped, or truncated out), so the first entry is the
  /// exact alive argmax whenever its score clears the floor — and sync()
  /// rescans when it does not, which is the only way a pushed-out node
  /// could have become the winner again. Inline fixed-capacity array: one
  /// Placement per stored key, so a heap vector here is an allocation per
  /// key and a pointer chase per placement read.
  struct Placement {
    std::array<Candidate, kHomeCandidates> top{};
    std::uint32_t count = 0;
    std::uint64_t floor = 0;
    [[nodiscard]] graph::NodeId home() const { return top[0].node; }
  };

  [[nodiscard]] Placement scan_candidates(std::uint64_t key) const;
  static void merge_candidate(Placement& pl, Candidate c);
  [[nodiscard]] graph::NodeId resolve_origin(graph::NodeId origin) const;
  /// Routes origin -> home; fills hops/optimal_hops; returns delivery.
  bool route_op(graph::NodeId origin, graph::NodeId home, OpResult& out);

  const HealingOverlay& overlay_;
  /// The step's live view: points at the runner's maintained CSR when the
  /// AdversaryView lends one (live_csr), else at own_csr_. Reset by sync().
  const graph::CsrView* csr_ = nullptr;
  graph::CsrView own_csr_;  ///< fallback build for views without live_csr
  DistanceOracle oracle_;
  std::vector<graph::NodeId> alive_;  ///< ascending; maintained by sync()
  bool synced_ = false;
  std::unordered_map<std::uint64_t, Placement> placed_;
  std::unordered_map<std::uint64_t, std::uint64_t> values_;
  std::vector<std::uint64_t> last_moved_;
  std::vector<graph::NodeId> alive_scratch_;
  std::vector<graph::NodeId> added_scratch_;
  std::size_t moved_total_ = 0;
  std::uint64_t rehash_messages_total_ = 0;
};

/// One trial's traffic state: the store, the request generator and a traffic
/// RNG derived from the trial seed (independent of the adversary stream).
/// The ScenarioRunner calls observe_churn just before each batch is applied
/// (the hotspot workload notes which region is about to churn, reading
/// adjacency from the store's cached pre-churn live view) and step right
/// after, against the post-churn view.
class TrafficEngine {
 public:
  TrafficEngine(const HealingOverlay& overlay, TrafficSpec spec,
                std::uint64_t trial_seed);

  /// `view` supplies pre-churn adjacency for the hotspot generator's region
  /// capture (the runner's maintained CSR — not yet advanced past this
  /// batch); the store's own cached view is the fallback for bare views.
  void observe_churn(const ChurnBatch& batch,
                     const adversary::AdversaryView& view);

  TrafficStepStats step(const adversary::AdversaryView& view);

  /// The churn-bookkeeping half of step(): adopts the post-churn view
  /// (KvStore::sync + hotspot target refresh) without serving anything; the
  /// returned stats carry only moved_keys/rehash_messages. The event engine
  /// calls this when a step's walks settle, then spreads the serving over
  /// scheduled per-request events.
  TrafficStepStats begin_step(const adversary::AdversaryView& view);

  /// Serves exactly one request against the view adopted by the last
  /// begin_step()/step(), folding the outcome into `st`. Consumes the same
  /// RNG draws in the same order as one iteration of step()'s serving loop,
  /// so begin_step + N × serve_one ≡ step with ops_per_step = N, byte for
  /// byte — the equivalence the engine-conformance tests lean on.
  void serve_one(TrafficStepStats& st);

  /// One request split across time for the serving front-end (src/serve/):
  /// issue_op() draws the request *now* (the client's decision point) and
  /// pins the key's home for admission queueing; complete_op() executes it
  /// *later*, at the service-completion event, against the store state of
  /// that moment. serve_one == issue_op + immediate complete_op draw-for-
  /// draw; the split exists so churn and other requests can land in
  /// between. issue_op's home lookup can pay an O(alive) rendezvous scan
  /// for never-placed keys — acceptable on the serve path, which is why
  /// the hot batch path keeps calling serve_one instead.
  struct IssuedOp {
    std::uint64_t key = 0;
    graph::NodeId origin = graph::kInvalidNode;
    bool read = false;
    /// The key's home at issue time — the station the request queues at.
    /// Execution re-resolves the *current* home, so a churn-moved key is
    /// still served correctly; only the queueing placement is pinned.
    graph::NodeId home = graph::kInvalidNode;
  };
  [[nodiscard]] IssuedOp issue_op();

  /// Executes a previously issued op. Reads validate against the
  /// acknowledged value *at completion time* — a write to the same key
  /// completing in between legitimately changes the expected value, and
  /// checking the issue-time snapshot would manufacture false
  /// failed_lookups out of ordinary concurrency.
  void complete_op(const IssuedOp& op, TrafficStepStats& st);

  [[nodiscard]] const KvStore& store() const { return kv_; }

 private:
  [[nodiscard]] std::uint64_t pick_key();

  TrafficSpec spec_;
  KvStore kv_;
  support::Rng rng_;
  std::vector<double> zipf_cdf_;
  /// Acknowledged bindings: key -> last value whose write was delivered.
  std::unordered_map<std::uint64_t, std::uint64_t> acked_;
  std::uint64_t write_seq_ = 0;
  /// Hotspot state: the nodes observe_churn saw churning, and the target
  /// keys derived from them each step (displaced keys + keys homed in the
  /// churned region).
  std::vector<graph::NodeId> hot_nodes_;
  std::vector<std::uint64_t> hot_keys_;
};

}  // namespace dex::sim
