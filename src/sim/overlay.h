#pragma once

/// \file overlay.h
/// The unified self-healing-overlay interface the whole experiment stack
/// drives: one abstract surface (churn + read-only views + cost meters) over
/// every maintained-topology construction the paper compares — DEX in both
/// recovery flavours, the flooding strawman of §3, the Law–Siu overlay [18],
/// the flip-chain overlay [6, 23], and Xheal-with-guaranteed-patches [24].
///
/// Anything that can (a) absorb one ChurnBatch per step — one or many
/// adversarial insertions/deletions healed within the step — and (b) expose
/// its topology and per-step cost is a HealingOverlay; the ScenarioRunner
/// (sim/scenario.h), the adversary strategies (via make_view), the benches
/// and the CLI all operate on this interface and are therefore
/// backend-agnostic. The churn surface is batch-first (§5, Corollary 2):
/// apply(ChurnBatch) is the primitive, with a default sequential
/// implementation over the single-event insert()/remove() hooks, which
/// remain the per-event customization points (and convenience wrappers for
/// callers with one event). DexOverlay overrides apply() to run the
/// parallel-walk batch recovery of src/dex/batch.h.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "adversary/adversary.h"
#include "baselines/flood_rebuild.h"
#include "baselines/law_siu.h"
#include "baselines/random_flip.h"
#include "dex/network.h"
#include "graph/csr.h"
#include "graph/multigraph.h"
#include "sim/churn.h"
#include "sim/meters.h"
#include "xheal/xheal.h"

namespace dex::sim {

using graph::NodeId;

class HealingOverlay {
 public:
  virtual ~HealingOverlay() = default;

  /// Stable identifier ("dex-worstcase", "flood", …) used in emitted traces.
  [[nodiscard]] virtual const char* name() const = 0;

  // ----- the churn interface: one ChurnBatch per step (§2 is the
  // batch-of-one special case; §5 is the general one) -----

  /// Applies one batch: every victim deleted and every attach point given
  /// one newcomer, healed within the step. This default is the *sequential*
  /// reference implementation — victims in order, then insertions in order,
  /// costs summed (the events happen one after another, so rounds add up).
  /// Backends with a genuinely parallel batch recovery (DexOverlay)
  /// override it; apply_sequential() stays callable on any overlay as the
  /// comparison baseline.
  virtual BatchOutcome apply(const ChurnBatch& batch) {
    return apply_sequential(batch);
  }

  /// The default sequential batch application (see apply()). Non-virtual:
  /// always the event-by-event path, whatever the dynamic type — the
  /// sequential side of the paper's sequential-vs-parallel comparison.
  BatchOutcome apply_sequential(const ChurnBatch& batch) {
    BatchOutcome out;
    for (NodeId v : batch.victims) {
      remove(v);
      out.cost += last_step_cost();
    }
    for (NodeId a : batch.attach_to) {
      out.inserted.push_back(insert(a));
      out.cost += last_step_cost();
    }
    return out;
  }

  /// Inserts one node. `attach_to` is the adversary's chosen attachment
  /// point; constructions that splice newcomers in on their own (Law–Siu,
  /// flip-chain, flooding) may ignore it. Returns the new node's id.
  virtual NodeId insert(NodeId attach_to) = 0;

  /// Deletes `victim` (must be alive); the overlay heals before returning.
  virtual void remove(NodeId victim) = 0;

  /// The smallest population deletions may leave behind. 3 for most
  /// overlays ("never empty the network"); constructions with structural
  /// floors raise it — the d-regular flip chain needs d+2 alive nodes to
  /// rewire around a departure, Law–Siu keeps 4. Callers that trim delete
  /// batches (the event engine's racing-churn filter) must keep
  /// n() - victims >= this floor or remove() asserts.
  [[nodiscard]] virtual std::size_t min_population() const { return 3; }

  // ----- read-only views -----

  [[nodiscard]] virtual std::size_t n() const = 0;
  [[nodiscard]] virtual bool alive(NodeId u) const = 0;
  [[nodiscard]] virtual std::vector<NodeId> alive_nodes() const = 0;
  [[nodiscard]] virtual std::vector<bool> alive_mask() const = 0;

  /// The real topology as a multigraph over the full id capacity; combine
  /// with alive_mask() for the graph algorithms.
  [[nodiscard]] virtual graph::Multigraph snapshot() const = 0;

  /// Load of a node: virtual vertices simulated for DEX, degree for the
  /// graph-maintained baselines.
  [[nodiscard]] virtual std::size_t load(NodeId u) const = 0;

  /// Max degree in the real topology. Default prefers the live-ports
  /// surface — one reused buffer, no Multigraph materialization — and only
  /// falls back to a snapshot scan for overlays without it (the runner
  /// calls this every step when ScenarioSpec::measure_degree is on).
  /// live_ports row sizes equal snapshot degrees by contract, so the two
  /// paths report the same number.
  [[nodiscard]] virtual std::size_t max_degree() const {
    std::vector<NodeId> buf;
    std::size_t best = 0;
    bool live = true;
    for (auto u : alive_nodes()) {
      if (!live_ports(u, buf)) {
        live = false;
        break;
      }
      best = std::max(best, buf.size());
    }
    if (live) return best;
    best = 0;
    const auto g = snapshot();
    for (auto u : alive_nodes()) best = std::max(best, g.degree(u));
    return best;
  }

  /// A distinguished node worth attacking (DEX's coordinator), or
  /// graph::kInvalidNode when the construction has none.
  [[nodiscard]] virtual NodeId special_node() const {
    return graph::kInvalidNode;
  }

  // ----- the routing surface (traffic layer, §4.4.4 generalized) -----

  /// Hop path from `src` to `dst` over the live real topology, inclusive of
  /// both endpoints ({src} when src == dst; empty when unreachable). `live`
  /// is the caller's step-cached flat CSR of the live view (sim::KvStore
  /// refreshes it once per churn step through CachedView) and must reflect
  /// the overlay's *current* topology: the baselines maintain no routing
  /// state, so their canonical request path is a BFS shortest path on what
  /// they see — that is this default. DexOverlay overrides it with the
  /// locally computable p-cycle route of §4.4.4 (no global view needed, at
  /// the price of stretch > 1 against the BFS optimum), memoized per
  /// (src, dst) until the next churn event.
  [[nodiscard]] virtual std::vector<NodeId> route(
      NodeId src, NodeId dst, const graph::CsrView& live) const;

  /// Whether route() returns a shortest path on the given view. True for
  /// the BFS default; overlays routing on their own structure (DEX) return
  /// false, and consumers measuring stretch (sim::KvStore) then pay one
  /// extra BFS per request for the optimum instead of assuming it.
  [[nodiscard]] virtual bool route_is_shortest() const { return true; }

  // ----- cost accounting -----

  [[nodiscard]] virtual const CostMeter& meter() const = 0;
  /// Cost of the most recent insert()/remove() step.
  [[nodiscard]] virtual StepCost last_step_cost() const = 0;

  // ----- optional capabilities -----

  /// Fills `out` with the live neighbors of alive node `u` in the overlay's
  /// own canonical order and returns true, or returns false when the
  /// backend has no cheap adjacency surface (callers then fall back to
  /// snapshot()). The emitted multiset always equals the snapshot degree
  /// convention; the *order* may differ from Multigraph port order, so a
  /// CsrView must stick with whichever enumerator built it (sim::CachedView
  /// tracks this). May be temporarily unavailable — DexNetwork says no
  /// during staggered rebuild windows — so the capability is per-call, not
  /// per-type.
  [[nodiscard]] virtual bool live_ports(NodeId u,
                                        std::vector<NodeId>& out) const {
    (void)u;
    (void)out;
    return false;
  }

  /// Moves the ids touched since the previous drain into `out` and returns
  /// true; returns false when the backend keeps no journal (callers must
  /// then rebuild their views from scratch each step). The first successful
  /// drain installs the journal and reports a full delta — history before
  /// tracking started is unknown. Logically const: draining changes no
  /// observable topology, only the observer bookkeeping.
  [[nodiscard]] virtual bool drain_view_delta(graph::ViewDelta& out) const {
    (void)out;
    return false;
  }

  /// Number of threads the overlay may use *inside* one churn step (walk
  /// port enumeration; see sim/token_engine.h). Results are byte-identical
  /// for every value — this is purely a wall-clock knob. Default: ignored.
  virtual void set_intra_jobs(unsigned jobs) { (void)jobs; }

  /// Wires a provider of the caller's maintained live CSR (CachedView's,
  /// refreshed lazily). Overlays with view-dependent fast paths — DEX's
  /// batch precondition connectivity check — consult it through live_view()
  /// instead of materializing snapshots; nullptr (or no provider) means
  /// "derive from the snapshot as before".
  void set_live_view_provider(std::function<const graph::CsrView*()> p) {
    live_view_provider_ = std::move(p);
  }

  /// Whether snapshot_without() below is an exact post-healing oracle.
  [[nodiscard]] virtual bool has_removal_oracle() const { return false; }

  /// Topology that would result from deleting `victim` including the
  /// overlay's deterministic healing. Must be overridden by any adapter
  /// returning has_removal_oracle() == true; strategies fall back to a raw
  /// snapshot with the victim masked out when no oracle is wired (see
  /// GreedySpectralDeletion), so there is deliberately no default here.
  [[nodiscard]] virtual graph::Multigraph snapshot_without(
      NodeId victim) const {
    (void)victim;
    DEX_ASSERT_MSG(false,
                   "snapshot_without called on an overlay without a "
                   "removal oracle");
    return graph::Multigraph{};  // unreachable
  }

  /// Heavy structural audit; aborts on violation. Default: no-op.
  virtual void check_invariants() const {}

 protected:
  /// The caller-maintained live CSR, or nullptr when none is wired (or the
  /// provider currently has nothing valid to offer).
  [[nodiscard]] const graph::CsrView* live_view() const {
    return live_view_provider_ ? live_view_provider_() : nullptr;
  }

 private:
  std::function<const graph::CsrView*()> live_view_provider_;
};

/// The one AdversaryView builder (replaces the per-backend view_of()
/// overloads the benches used to carry). The view borrows `overlay`; it must
/// outlive the view.
[[nodiscard]] inline adversary::AdversaryView make_view(
    const HealingOverlay& overlay) {
  adversary::AdversaryView v{
      [&overlay] { return overlay.n(); },
      [&overlay] { return overlay.alive_nodes(); },
      [&overlay] { return overlay.snapshot(); },
      [&overlay] { return overlay.alive_mask(); },
      [&overlay](NodeId u) { return overlay.load(u); },
      [&overlay] { return overlay.special_node(); },
      {},
      {},  // live_csr: only caching views (CachedView) provide one
  };
  if (overlay.has_removal_oracle()) {
    v.snapshot_without = [&overlay](NodeId u) {
      return overlay.snapshot_without(u);
    };
  }
  return v;
}

// ---------------------------------------------------------------------------
// Adapters. Each owns its network and exposes it through net() for code that
// needs construction-specific counters (walk retries, rebuild counts, …).
// The shared read-only/meter plumbing lives in OverlayAdapter<Net>; the
// concrete adapters add only what genuinely differs per construction (churn
// entry points, load semantics, oracles).
// ---------------------------------------------------------------------------

/// The boilerplate every adapter shares: it owns the network object and
/// forwards n()/alive()/alive_nodes()/alive_mask()/snapshot()/max_degree()/
/// meter()/last_step_cost() to it. Small API differences between the
/// networks are absorbed with `if constexpr` probes (XhealNetwork exposes
/// the topology as graph() rather than a snapshot() copy; DexNetwork
/// reports step cost through last_report()) so each concrete adapter
/// overrides only its genuine behavior. All forwards stay virtual — an
/// adapter can still specialize any of them (e.g. XhealOverlay's
/// allocation-free max_degree()).
template <typename Net>
class OverlayAdapter : public HealingOverlay {
 public:
  [[nodiscard]] std::size_t n() const override { return net_.n(); }
  [[nodiscard]] bool alive(NodeId u) const override { return net_.alive(u); }
  [[nodiscard]] std::vector<NodeId> alive_nodes() const override {
    return net_.alive_nodes();
  }
  [[nodiscard]] std::vector<bool> alive_mask() const override {
    return net_.alive_mask();
  }
  [[nodiscard]] graph::Multigraph snapshot() const override {
    if constexpr (requires(const Net& n) { n.snapshot(); }) {
      return net_.snapshot();
    } else {
      return net_.graph();
    }
  }
  [[nodiscard]] std::size_t max_degree() const override {
    if constexpr (requires(const Net& n) { n.max_degree(); }) {
      return net_.max_degree();
    } else {
      return HealingOverlay::max_degree();
    }
  }
  [[nodiscard]] const CostMeter& meter() const override {
    return net_.meter();
  }
  [[nodiscard]] StepCost last_step_cost() const override {
    if constexpr (requires(const Net& n) { n.last_step(); }) {
      return net_.last_step();
    } else {
      return net_.last_report().cost;
    }
  }

  [[nodiscard]] bool live_ports(NodeId u,
                                std::vector<NodeId>& out) const override {
    if constexpr (requires(const Net& n) { n.live_ports(u, out); }) {
      return net_.live_ports(u, out);
    } else {
      return false;
    }
  }

  /// Generic journal plumbing: networks that accept a set_view_journal
  /// pointer get delta tracking for free. The adapter owns the journal and
  /// ping-pongs it with the caller's buffer on each drain, so steady state
  /// allocates nothing. Installing the journal is observer bookkeeping on a
  /// mutable member — topology is untouched — hence the const_cast.
  [[nodiscard]] bool drain_view_delta(graph::ViewDelta& out) const override {
    if constexpr (requires(Net& n, graph::ViewDelta* j) {
                    n.set_view_journal(j);
                  }) {
      if (!tracking_) {
        tracking_ = true;
        const_cast<Net&>(net_).set_view_journal(&journal_);
        out.mark_full();
        return true;
      }
      std::swap(out, journal_);
      journal_.clear();
      return true;
    } else {
      return false;
    }
  }

  void set_intra_jobs(unsigned jobs) override {
    if constexpr (requires(Net& n) { n.set_walk_jobs(jobs); }) {
      net_.set_walk_jobs(jobs);
    }
  }

  [[nodiscard]] Net& net() { return net_; }
  [[nodiscard]] const Net& net() const { return net_; }

 protected:
  template <typename... Args>
  explicit OverlayAdapter(Args&&... args)
      : net_(std::forward<Args>(args)...) {}

  Net net_;
  mutable graph::ViewDelta journal_;
  mutable bool tracking_ = false;
};

class DexOverlay final : public OverlayAdapter<DexNetwork> {
 public:
  explicit DexOverlay(std::size_t n0, dex::Params params = {})
      : OverlayAdapter(n0, params),
        name_(params.mode == RecoveryMode::Amortized ? "dex-amortized"
                                                     : "dex-worstcase") {}

  [[nodiscard]] const char* name() const override { return name_; }

  /// Routes multi-event batches through the §5 parallel-walk recovery
  /// (dex::apply_batch) whenever dex::batch_feasible says the request meets
  /// the model's preconditions (amortized mode, no staggered rebuild,
  /// connectivity/multiplicity conditions); anything else — single events,
  /// worst-case mode, infeasible batches — takes the sequential path, so
  /// every batch workload runs end-to-end on every DEX flavour. The
  /// sequential path additionally attributes type-2 rebuilds fired by its
  /// events to the outcome (the generic apply_sequential cannot see them).
  BatchOutcome apply(const ChurnBatch& batch) override;

  /// Parallel batch recovery on/off (default on). The benches flip this to
  /// measure the sequential baseline on the same backend.
  void set_parallel_batches(bool enabled) { parallel_batches_ = enabled; }

  /// The §4.4.4 route: the p-cycle shortest path between a simulated vertex
  /// of src and one of dst, contracted through the virtual mapping — every
  /// hop is a materialized real edge, and both endpoints compute it from
  /// O(log n) local state (the cached view is ignored). Mid-build newcomers
  /// without an owned vertex fall back to the BFS default. Contractions are
  /// memoized per (src, dst) between churn events, so a step's repeated
  /// origin–home pairs pay the p-cycle BFS once.
  [[nodiscard]] std::vector<NodeId> route(
      NodeId src, NodeId dst, const graph::CsrView& live) const override;

  /// P-cycle routes trade optimality for local computability (that is the
  /// measured stretch).
  [[nodiscard]] bool route_is_shortest() const override { return false; }

  NodeId insert(NodeId attach_to) override {
    ++topo_gen_;
    return net_.insert(attach_to);
  }
  void remove(NodeId victim) override {
    ++topo_gen_;
    net_.remove(victim);
  }
  [[nodiscard]] std::size_t load(NodeId u) const override {
    return static_cast<std::size_t>(net_.total_load(u));
  }
  [[nodiscard]] NodeId special_node() const override {
    return net_.coordinator();
  }
  void check_invariants() const override { net_.check_invariants(); }

 private:
  const char* name_;
  bool parallel_batches_ = true;
  /// Bumped on every mutation; route() flushes its memo when it observes a
  /// new generation (lazy, so pure-churn runs never touch the map).
  std::uint64_t topo_gen_ = 0;
  mutable std::uint64_t route_memo_gen_ = 0;
  mutable std::unordered_map<std::uint64_t, std::vector<NodeId>> route_memo_;
};

class FloodRebuildOverlay final
    : public OverlayAdapter<baselines::FloodRebuildNetwork> {
 public:
  explicit FloodRebuildOverlay(std::size_t n0) : OverlayAdapter(n0) {}

  [[nodiscard]] const char* name() const override { return "flood"; }
  NodeId insert(NodeId /*attach_to*/) override { return net_.insert(); }
  void remove(NodeId victim) override { net_.remove(victim); }
  /// The node's actual degree. The rebuilt round-robin mapping is balanced,
  /// so loads differ by at most one vertex (3 edges) — callers wanting the
  /// uniform balanced bound should read max_degree(), which is what this
  /// adapter reported for every node before per-node degrees were wired.
  [[nodiscard]] std::size_t load(NodeId u) const override {
    return net_.degree(u);
  }
};

class LawSiuOverlay final : public OverlayAdapter<baselines::LawSiuNetwork> {
 public:
  LawSiuOverlay(std::size_t n0, std::size_t d, std::uint64_t seed)
      : OverlayAdapter(n0, d, seed) {}

  [[nodiscard]] const char* name() const override { return "lawsiu"; }
  NodeId insert(NodeId /*attach_to*/) override { return net_.insert(); }
  void remove(NodeId victim) override { net_.remove(victim); }
  [[nodiscard]] std::size_t min_population() const override { return 4; }
  [[nodiscard]] std::size_t load(NodeId u) const override {
    return net_.degree(u);
  }
  [[nodiscard]] bool has_removal_oracle() const override { return true; }
  [[nodiscard]] graph::Multigraph snapshot_without(
      NodeId victim) const override {
    return net_.snapshot_without(victim);
  }
};

class RandomFlipOverlay final
    : public OverlayAdapter<baselines::RandomFlipNetwork> {
 public:
  RandomFlipOverlay(std::size_t n0, std::size_t d, std::uint64_t seed,
                    std::size_t flips_per_step = 4)
      : OverlayAdapter(n0, d, seed, flips_per_step), d_(d) {}

  [[nodiscard]] const char* name() const override { return "randomflip"; }
  NodeId insert(NodeId /*attach_to*/) override { return net_.insert(); }
  void remove(NodeId victim) override { net_.remove(victim); }
  /// The flip chain rewires a departure through d surviving edges, so it
  /// refuses to delete below d+2 alive nodes.
  [[nodiscard]] std::size_t min_population() const override { return d_ + 2; }
  [[nodiscard]] std::size_t load(NodeId u) const override {
    return net_.degree(u);
  }

 private:
  std::size_t d_;
};

class XhealOverlay final : public OverlayAdapter<xheal::XhealNetwork> {
 public:
  explicit XhealOverlay(graph::Multigraph initial)
      : OverlayAdapter(std::move(initial)) {}

  [[nodiscard]] const char* name() const override { return "xheal"; }
  NodeId insert(NodeId attach_to) override { return net_.insert({attach_to}); }
  void remove(NodeId victim) override { net_.remove(victim); }
  [[nodiscard]] std::size_t load(NodeId u) const override {
    return net_.graph().degree(u);
  }
  // max_degree: the base default scans via XhealNetwork::live_ports — the
  // graph by const reference, no snapshot copy (this adapter used to carry
  // a bespoke override for exactly that).
};

/// Backend factory keyed by the names the CLI exposes: "dex-amortized",
/// "dex-worstcase", "flood", "lawsiu", "randomflip", "xheal" (started from a
/// random 4-regular graph). Returns nullptr for unknown names.
[[nodiscard]] std::unique_ptr<HealingOverlay> make_overlay(
    const std::string& backend, std::size_t n0, std::uint64_t seed);

/// The factory names make_overlay accepts, in canonical order (the order
/// the CLI's `--backend all` and the conformance suites iterate).
[[nodiscard]] const std::vector<std::string>& known_overlays();

/// Comma-separated list of valid factory names (for usage messages).
[[nodiscard]] const char* overlay_names();

}  // namespace dex::sim
