#pragma once

/// \file churn.h
/// The batch-first churn primitives shared by the whole experiment stack.
///
/// §5 of the paper (Corollary 2) lets the adversary insert or delete up to
/// εn nodes *in one step*; DEX heals the whole batch in O(log³ n) rounds by
/// running the redistribution walks in parallel. ChurnBatch is the unit of
/// churn everywhere: adversary::Strategy emits one per step (next_batch),
/// HealingOverlay absorbs one per step (apply), and the ScenarioRunner
/// records one StepRecord per batch. A single-event step is simply a batch
/// of size one, so the PR-1 single-event surface survives as a wrapper.
///
/// This header sits below both sim/overlay.h and adversary/adversary.h (it
/// depends only on graph ids and the cost meter types) so the two layers can
/// exchange batches without a dependency cycle.

#include <cstdint>
#include <vector>

#include "graph/multigraph.h"
#include "sim/meters.h"

namespace dex::sim {

/// One step's worth of churn: every victim is deleted and every attach point
/// receives one newcomer, all within the same step. Canonical single-event
/// equivalence (used by the default sequential HealingOverlay::apply and the
/// conformance tests): deletions first, in order, then insertions, in order.
///
/// Contract for producers (strategies): victims are distinct and alive,
/// attach points are alive and not victims of the same batch. The §5
/// preconditions for DEX's *parallel* path (attach multiplicity ≤
/// kMaxAttachPerNode, every victim keeps a surviving neighbor, survivors
/// stay connected) are checked by the overlay, which falls back to the
/// sequential path when they do not hold — so producers need not guarantee
/// them, merely aim for them when they want the parallel path measured.
struct ChurnBatch {
  /// Attach point for each node to insert (one newcomer per entry; entries
  /// may repeat).
  std::vector<graph::NodeId> attach_to;
  /// Nodes to delete.
  std::vector<graph::NodeId> victims;

  [[nodiscard]] std::size_t size() const {
    return attach_to.size() + victims.size();
  }
  [[nodiscard]] bool empty() const {
    return attach_to.empty() && victims.empty();
  }
};

/// §5 precondition: at most O(1) newcomers attach to any single node. The
/// concrete constant used by DEX's batch feasibility check.
inline constexpr std::size_t kMaxAttachPerNode = 4;

/// What one HealingOverlay::apply call did.
struct BatchOutcome {
  /// Ids of the inserted nodes, in attach_to order.
  std::vector<graph::NodeId> inserted;
  /// Cost of the whole batch. Sequential application sums the per-event
  /// step costs (rounds included: the events happen one after another);
  /// DEX's parallel path reports the genuinely parallel round count — the
  /// sequential-vs-parallel rounds comparison of Corollary 2.
  StepCost cost;
  /// Parallel path only: walk epochs run (0 on the sequential path).
  std::uint64_t walk_epochs = 0;
  /// Whether a type-2 rebuild (inflate/deflate) fired during the batch.
  bool used_type2 = false;
  /// True when the overlay routed the batch through a parallel recovery
  /// path rather than the sequential event loop.
  bool parallel = false;
};

}  // namespace dex::sim
