#include "sim/event/event.h"

#include <cmath>
#include <cstdlib>

namespace dex::sim {

namespace {

/// Strict parse of a non-negative integer; nullopt on sign, garbage, or
/// overflow — the CLI surfaces the nullopt as a usage error.
std::optional<std::uint64_t> parse_ticks(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (~0ULL - d) / 10) return std::nullopt;
    v = v * 10 + d;
  }
  return v;
}

}  // namespace

std::uint64_t LatencyModel::sample(support::Rng& rng) const {
  switch (kind) {
    case Kind::kFixed:
      return a;
    case Kind::kUniform:
      return a + rng.below(b - a + 1);
    case Kind::kExp: {
      if (a == 0) return 0;
      // Inverse-CDF draw rounded to ticks; log1p(-u) is finite for every
      // uniform01() value (u < 1 by construction).
      const double x =
          -static_cast<double>(a) * std::log1p(-rng.uniform01());
      return static_cast<std::uint64_t>(std::llround(x));
    }
  }
  return 0;  // unreachable; keeps -Wreturn-type quiet
}

double LatencyModel::mean() const {
  switch (kind) {
    case Kind::kFixed:
    case Kind::kExp:
      return static_cast<double>(a);
    case Kind::kUniform:
      return (static_cast<double>(a) + static_cast<double>(b)) / 2.0;
  }
  return 0.0;
}

std::string LatencyModel::to_string() const {
  switch (kind) {
    case Kind::kFixed:
      return "fixed:" + std::to_string(a);
    case Kind::kUniform:
      return "uniform:" + std::to_string(a) + "," + std::to_string(b);
    case Kind::kExp:
      return "exp:" + std::to_string(a);
  }
  return {};
}

std::optional<LatencyModel> LatencyModel::parse(const std::string& text) {
  const auto colon = text.find(':');
  if (colon == std::string::npos) return std::nullopt;
  const std::string name = text.substr(0, colon);
  const std::string args = text.substr(colon + 1);
  LatencyModel m;
  if (name == "fixed" || name == "exp") {
    m.kind = name == "fixed" ? Kind::kFixed : Kind::kExp;
    const auto v = parse_ticks(args);
    if (!v) return std::nullopt;
    m.a = *v;
    return m;
  }
  if (name == "uniform") {
    const auto comma = args.find(',');
    if (comma == std::string::npos) return std::nullopt;
    const auto lo = parse_ticks(args.substr(0, comma));
    const auto hi = parse_ticks(args.substr(comma + 1));
    if (!lo || !hi || *hi < *lo) return std::nullopt;
    m.kind = Kind::kUniform;
    m.a = *lo;
    m.b = *hi;
    return m;
  }
  return std::nullopt;
}

}  // namespace dex::sim
