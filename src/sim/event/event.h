#pragma once

/// \file event.h
/// Declarative knobs for the event-driven simulation core (sim/event/):
/// the latency model, message loss rate, straggler injection and batch
/// injection period that turn the lockstep synchronous rounds the paper
/// assumes into timestamped message deliveries. Everything here is
/// byte-determining — spec + trial seed reproduce the exact delivery
/// schedule — and everything degenerates to the synchronous engine at
/// latency fixed:0 / loss 0 (the equivalence the conformance tests pin).
///
/// This header sits below sim/scenario.h (ScenarioSpec embeds EventSpec) and
/// deliberately knows nothing about overlays or the runner: it is the
/// vocabulary the CLI, the ExperimentPlan and the engine share.

#include <cstdint>
#include <optional>
#include <string>

#include "support/prng.h"

namespace dex::sim {

/// The salt folded into a trial seed to derive the event engine's RNG
/// (latency samples, loss trials, retransmit backoff). A distinct stream id
/// from the adversary's (raw seed), the overlay's (kOverlaySeedSalt) and the
/// traffic generator's (kTrafficSeedSalt) streams, so turning asynchrony on
/// never perturbs the churn or request draws — the zero-latency/zero-loss
/// event trace byte-matches the synchronous one.
inline constexpr std::uint64_t kEventSeedSalt = 0x2545f4914f6cdd1dULL;

/// Per-message link latency distribution, in virtual ticks. Parsed from the
/// CLI syntax `fixed:T`, `uniform:A,B`, `exp:MEAN` (to_string() round-trips
/// it for the JSON summary). Samples are i.i.d. per delivery; stragglers
/// multiply the sampled value (EventSpec::straggler_factor).
struct LatencyModel {
  enum class Kind { kFixed, kUniform, kExp };
  Kind kind = Kind::kFixed;
  /// kFixed: the value. kUniform: inclusive lower bound. kExp: the mean.
  std::uint64_t a = 0;
  /// kUniform only: inclusive upper bound (>= a).
  std::uint64_t b = 0;

  /// One draw, in ticks. kFixed consumes no RNG; the other kinds consume
  /// exactly one draw per call — deterministic either way, because every
  /// call site is reached in deterministic event order.
  [[nodiscard]] std::uint64_t sample(support::Rng& rng) const;

  /// Expected value (the bench sweep's x-axis).
  [[nodiscard]] double mean() const;

  /// Canonical spelling ("fixed:3", "uniform:1,4", "exp:8") — what the CLI
  /// accepts and the JSON summary archives.
  [[nodiscard]] std::string to_string() const;

  /// Parses the canonical spelling; nullopt on anything else (unknown kind,
  /// trailing garbage, uniform bounds out of order).
  [[nodiscard]] static std::optional<LatencyModel> parse(
      const std::string& text);
};

/// Declarative description of the asynchronous delivery regime. Disabled by
/// default: the ScenarioRunner then runs the classic lockstep loop, and none
/// of these knobs is consulted.
struct EventSpec {
  /// Engine selector (`--engine sync|event`). Everything below is only
  /// meaningful when true.
  bool enabled = false;
  /// Per-message link latency (ticks); fixed:0 means instant delivery.
  LatencyModel latency;
  /// I.i.d. loss probability per delivery. Lost messages are retransmitted
  /// after a 1-tick timeout plus a fresh latency draw (and counted in the
  /// trace's `dropped` column), so every delivery eventually lands; must be
  /// < 1 for the retransmit loop to terminate.
  double loss_rate = 0.0;
  /// Fraction of nodes that are stragglers. Membership is a pure hash of
  /// the node id and the trial seed — stable under churn, no RNG stream
  /// consumed — so joiners get straggler status deterministically too.
  double straggler_fraction = 0.0;
  /// Latency multiplier applied to deliveries whose destination straggles.
  std::uint64_t straggler_factor = 4;
  /// Virtual ticks between churn-batch injections. With latency above one
  /// period, batch t+1 is drawn (and its deliveries launched) before batch
  /// t's walks settle — the healing-racing-churn regime the synchronous
  /// engine cannot express.
  std::uint64_t period = 1;

  /// Bounds the engine refuses to run outside (loss < 1, period >= 1,
  /// straggler knobs sane). The CLI validates with the same predicate.
  [[nodiscard]] bool valid() const {
    return loss_rate >= 0.0 && loss_rate < 1.0 &&
           straggler_fraction >= 0.0 && straggler_fraction <= 1.0 &&
           straggler_factor >= 1 && period >= 1;
  }
};

}  // namespace dex::sim
