#pragma once

/// \file engine.h
/// The event-driven simulation core: EventEngine drives the same
/// overlay/strategy/spec triple as the synchronous ScenarioRunner, but
/// through a deterministic discrete-event loop — churn constituents,
/// walk settlement and KV requests are timestamped deliveries in a min-heap,
/// subject to the EventSpec's latency distribution, i.i.d. loss and
/// straggler injection. This expresses regimes the lockstep loop cannot:
/// healing racing churn (batch t+1's deliveries land before batch t's walks
/// settle), partially-invalidated batches, loss-driven retransmit storms.
///
/// Determinism contract (the same one the rest of the tree honors): spec +
/// seed reproduce the byte-exact trace, whatever --jobs/--trial-jobs says.
/// Three independent RNG streams keep the axes orthogonal — the adversary's
/// (raw seed, identical draws to the sync engine), the traffic engine's
/// (kTrafficSeedSalt) and the event stream's (kEventSeedSalt) — so at
/// latency fixed:0 / loss 0 the engine replays the synchronous schedule and
/// the per-step trace CSV byte-matches ScenarioRunner's (pinned by
/// tests/test_event_engine.cpp).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/scenario.h"

namespace dex::sim {

/// Min-heap of timestamped events with deterministic tie-breaking: pops are
/// ordered by (time, insertion sequence), so simultaneous events drain FIFO
/// and the schedule is a pure function of the push sequence — no
/// container-order or comparator-stability leaks into the trace.
class EventQueue {
 public:
  struct Item {
    std::uint64_t time = 0;
    std::uint64_t seq = 0;   ///< global insertion counter (the tie-break)
    std::uint32_t kind = 0;  ///< engine-defined event tag
    std::uint64_t step = 0;  ///< the scenario step the event belongs to
  };

  void push(std::uint64_t time, std::uint32_t kind, std::uint64_t step) {
    heap_.push_back(Item{time, seq_++, kind, step});
    std::push_heap(heap_.begin(), heap_.end(), later);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Removes and returns the (time, seq)-minimal event.
  Item pop() {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    const Item it = heap_.back();
    heap_.pop_back();
    return it;
  }

 private:
  /// "x fires later than y" — the max-heap order std::push_heap wants,
  /// inverted so the top is the earliest (time, seq).
  static bool later(const Item& x, const Item& y) {
    return x.time != y.time ? x.time > y.time : x.seq > y.seq;
  }

  std::vector<Item> heap_;
  std::uint64_t seq_ = 0;
};

/// Runs one trial under the EventSpec delivery regime. Constructed and
/// invoked by ScenarioRunner::run() whenever spec.event.enabled — callers
/// keep talking to the runner (and the Executor/CLI above it) and the
/// engine choice stays a pure ScenarioSpec field.
class EventEngine {
 public:
  EventEngine(HealingOverlay& overlay, adversary::Strategy& strategy,
              ScenarioSpec spec);

  void set_observer(ScenarioRunner::StepObserver observer) {
    observer_ = std::move(observer);
  }

  /// Warmup + spec.steps injected batches, drained to quiescence. Records
  /// finalize in settlement order: under latency a later-injected step can
  /// settle (and be emitted) before an earlier one — rec.step says which
  /// step a record is, rec.vtime when it completed.
  ScenarioResult run();

 private:
  HealingOverlay& overlay_;
  adversary::Strategy& strategy_;
  ScenarioSpec spec_;
  ScenarioRunner::StepObserver observer_;
};

}  // namespace dex::sim
