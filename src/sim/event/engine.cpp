#include "sim/event/engine.h"

#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "graph/spectral.h"
#include "serve/serve.h"
#include "sim/experiment.h"
#include "support/assert.h"

namespace dex::sim {

// The event stream must be its own per-trial stream: colliding with the
// adversary's (raw seed), the overlay's or the traffic engine's derivation
// would entangle the delivery schedule with the churn/request draws and
// break the sync-equivalence-at-zero-latency pin.
// This block is the salt *registry*: tools/det_lint.py (DET005) requires
// every pair of k*SeedSalt constants to be pinned distinct by an exact
// `a != b` static_assert here — add one when introducing a new stream.
static_assert(kEventSeedSalt != 0);
static_assert(kEventSeedSalt != kOverlaySeedSalt);
static_assert(kEventSeedSalt != kTrafficSeedSalt);
static_assert(kOverlaySeedSalt != kTrafficSeedSalt);
static_assert(kEventSeedSalt != (kOverlaySeedSalt ^ kTrafficSeedSalt));

namespace {

/// Event kinds, in the order a step travels through them. The first four
/// carry a *step index* in Item.step; the serve kinds reuse the field as a
/// client index (kOpIssue/kOpArrive/kOpDone/kOpResponse) or a home node id
/// (kRehashDone) — which is why the dispatch loop resolves pending[step]
/// per-case instead of up front.
enum : std::uint32_t {
  kInject = 0,   ///< the strategy draws the step's batch; deliveries launch
  kChurnArrive,  ///< one churn constituent delivered to the overlay
  kSettle,       ///< batch applied, walks settled; traffic takes over
  kTrafficOp,    ///< one KV request (re)transmitted (batch traffic mode)
  // --- serving front-end (spec.serve.enabled; step = client id) ---
  kOpIssue,      ///< a closed-loop client draws and transmits its next op
  kOpArrive,     ///< request reaches the key's home; admission decides
  kOpDone,       ///< service complete; the op executes against the store
  kOpResponse,   ///< response reaches the client; latency recorded; think
  kRehashDone,   ///< a churn-triggered rehash job frees its station
};

/// A step's in-flight state between injection and finalization.
struct PendingStep {
  ChurnBatch batch;
  std::size_t expected = 0;  ///< churn deliveries launched
  std::size_t arrived = 0;   ///< ... and landed so far
  std::size_t ops_done = 0;  ///< traffic requests served so far
  /// Traffic requests this step owes (batch traffic mode): ops_per_step,
  /// scaled by the campaign load curve when one is active.
  std::size_t ops_expected = 0;
  std::uint64_t dropped = 0;
  bool batch_step = false;  ///< want > 1 (parallel_steps accounting)
  StepRecord rec;
  TrafficStepStats traffic;
};

/// One closed-loop client (serve mode): issue -> routed request -> admission
/// -> service -> routed response -> think -> issue again, until its op
/// budget runs dry. Exactly one op outstanding at a time, so the client
/// index alone addresses all per-op state.
struct ServeClient {
  TrafficEngine::IssuedOp op;
  std::uint64_t issued_at = 0;
  std::uint64_t remaining = 0;  ///< ops this client may still issue
  bool shed = false;            ///< current op rejected by admission
};

}  // namespace

EventEngine::EventEngine(HealingOverlay& overlay,
                         adversary::Strategy& strategy, ScenarioSpec spec)
    : overlay_(overlay), strategy_(strategy), spec_(std::move(spec)) {}

ScenarioResult EventEngine::run() {
  DEX_ASSERT_MSG(spec_.event.enabled,
                 "EventEngine invoked with the sync engine selected");
  DEX_ASSERT_MSG(spec_.event.valid(), "event spec out of range");
  // The adversary stream is the raw seed — the very draws the sync engine
  // makes, in the very same order (injections run in step order), so the
  // churn sequence is engine-invariant. Latency/loss/backoff draws live on
  // the salted stream.
  support::Rng rng(spec_.seed);
  support::Rng ev_rng(spec_.seed ^ kEventSeedSalt);
  const std::uint64_t straggler_salt =
      support::mix64(spec_.seed ^ kEventSeedSalt);
  const double loss = spec_.event.loss_rate;
  const std::uint64_t period = spec_.event.period;

  const std::size_t base = overlay_.n();
  const auto bounds = resolve_bounds(spec_, base);
  const std::size_t min_n = bounds.min_n;
  const std::size_t max_n = bounds.max_n;
  DEX_ASSERT_MSG(bounds.valid(), "degenerate population bounds");

  CachedView cache(overlay_);
  const adversary::AdversaryView& view = cache.view();
  overlay_.set_live_view_provider(
      [&cache] { return cache.live_csr_if_valid(); });
  struct ProviderGuard {
    HealingOverlay& overlay;
    ~ProviderGuard() { overlay.set_live_view_provider({}); }
  } provider_guard{overlay_};

  using Clock = std::chrono::steady_clock;
  const bool timing = spec_.time_phases;
  Clock::time_point mark;
  // det: phase-timing instrumentation — feeds the perf-attribution JSON
  // only, never simulation state, so wall-clock reads cannot leak.
  const auto tic = [&] {
    if (timing) mark = Clock::now();
  };
  // det: see tic — instrumentation only.
  const auto toc = [&](double& acc) {
    if (timing)
      acc += std::chrono::duration<double, std::micro>(Clock::now() - mark)
                 .count();
  };

  std::unique_ptr<TrafficEngine> traffic;
  if (spec_.traffic.enabled()) {
    traffic =
        std::make_unique<TrafficEngine>(overlay_, spec_.traffic, spec_.seed);
  }

  // A non-empty campaign: injections always go through next_batch (quiet /
  // rate-gated phases return legal empty batches) and the per-step traffic
  // budget follows the load curve. Parsed here only for the load curve —
  // the strategy object already embodies the phases.
  std::optional<adversary::CampaignSpec> campaign;
  if (!spec_.campaign.empty()) {
    std::string campaign_err;
    campaign = parse_campaign_spec(spec_.campaign, &campaign_err);
    DEX_ASSERT_MSG(campaign.has_value(), "invalid campaign spec");
  }

  // The serving front-end: closed-loop clients replace the per-step request
  // batches. The total op budget stays steps x ops_per_step — the same
  // offered work as batch mode (the campaign load curve scales it per step
  // before the split) — divided round-robin across clients, and a shed
  // attempt consumes budget like a completed one, so
  // completed + shed == offered always (the conservation invariant
  // tests/test_serve.cpp pins).
  const bool serving = spec_.serve.enabled;
  DEX_ASSERT_MSG(!serving || traffic,
                 "serve mode requires a traffic workload");
  std::unique_ptr<serve::ServeState> serve_state;
  std::vector<ServeClient> clients;
  if (serving) {
    DEX_ASSERT_MSG(spec_.serve.valid(), "serve spec out of range");
    serve_state = std::make_unique<serve::ServeState>(spec_.serve);
    clients.resize(spec_.serve.clients);
    const std::uint64_t budget =
        campaign ? campaign->total_ops(spec_.traffic.ops_per_step, spec_.steps)
                 : static_cast<std::uint64_t>(spec_.steps) *
                       spec_.traffic.ops_per_step;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      clients[c].remaining =
          budget / clients.size() + (c < budget % clients.size() ? 1 : 0);
    }
  }

  ScenarioResult result;
  result.backend = overlay_.name();
  result.spec = spec_;
  result.start_n = base;
  if (spec_.record_trace) result.trace.reserve(spec_.steps);

  // Warmup stays synchronous by definition: it models the pre-attack
  // steady state, not the asynchronous regime under test.
  if (spec_.warmup_steps > 0) {
    adversary::RandomChurn warmup(spec_.warmup_insert_prob);
    for (std::size_t t = 0; t < spec_.warmup_steps; ++t) {
      StepRecord scratch;
      detail::apply_action(overlay_, warmup.next(view, rng, min_n, max_n),
                           scratch);
      cache.advance();
    }
  }

  std::vector<double> rounds, messages, topology;
  rounds.reserve(spec_.steps);
  messages.reserve(spec_.steps);
  topology.reserve(spec_.steps);

  // Stable straggler membership: a pure hash of (node id, trial seed), so
  // joiners get a verdict too and no RNG stream is consumed. 53-bit
  // comparison sidesteps the fraction*2^64 overflow at f = 1.
  const auto is_straggler = [&](graph::NodeId u) {
    const double f = spec_.event.straggler_fraction;
    if (f <= 0.0) return false;
    if (f >= 1.0) return true;
    const std::uint64_t h = support::mix64(
        straggler_salt ^ (0x9e3779b97f4a7c15ULL * (std::uint64_t{u} + 1)));
    return (h >> 11) < static_cast<std::uint64_t>(f * 9007199254740992.0);
  };
  const auto link_latency = [&](graph::NodeId dest) {
    std::uint64_t d = spec_.event.latency.sample(ev_rng);
    if (is_straggler(dest)) d *= spec_.event.straggler_factor;
    return d;
  };

  EventQueue queue;
  std::vector<PendingStep> pending(spec_.steps);
  /// Churn deliveries currently in the air across all steps — the
  /// healing-racing-churn signal the trace's in_flight column reports.
  std::size_t in_flight = 0;

  for (std::size_t t = 0; t < spec_.steps; ++t) {
    queue.push(static_cast<std::uint64_t>(t) * period, kInject, t);
  }

  // Serve-mode epoch attribution: client ops are not tied to a step, so a
  // step's record covers the *window* from its own settlement to the next
  // one (the last window closes when the queue drains). open_epoch is the
  // step whose window is currently collecting; records still emit in
  // settlement order, exactly like batch mode.
  constexpr std::size_t kNoEpoch = ~std::size_t{0};
  std::size_t open_epoch = kNoEpoch;
  bool clients_spawned = false;
  std::uint64_t last_time = 0;

  const auto finalize = [&](std::size_t t, std::uint64_t now) {
    PendingStep& p = pending[t];
    StepRecord& rec = p.rec;
    if (traffic) {
      const TrafficStepStats& ts = p.traffic;
      rec.ops = ts.ops;
      rec.op_hops = ts.op_hops;
      rec.opt_hops = ts.opt_hops;
      rec.failed_lookups = ts.failed_lookups;
      rec.failed_writes = ts.failed_writes;
      rec.moved_keys = ts.moved_keys;
      rec.rehash_messages = ts.rehash_messages;
      result.total_ops += ts.ops;
      result.total_op_hops += ts.op_hops;
      result.total_opt_hops += ts.opt_hops;
      result.total_failed_lookups += ts.failed_lookups;
      result.total_failed_writes += ts.failed_writes;
      result.total_moved_keys += ts.moved_keys;
      result.total_rehash_messages += ts.rehash_messages;
    }
    rec.vtime = now;
    rec.in_flight = in_flight;
    rec.dropped = p.dropped;
    result.total_dropped += p.dropped;
    result.max_in_flight = std::max(result.max_in_flight, in_flight);
    result.total_inserts += rec.batch_inserts;
    result.total_deletes += rec.batch_deletes;
    result.total_walk_epochs += rec.walk_epochs;
    if (rec.used_type2) ++result.type2_steps;
    if (spec_.measure_degree) {
      rec.max_degree = overlay_.max_degree();
      result.max_degree = std::max(result.max_degree, rec.max_degree);
    }
    if (spec_.gap_every > 0 && t % spec_.gap_every == 0) {
      rec.gap = std::max(
          0.0, graph::spectral_gap(view.snapshot(), view.alive_mask()).gap);
      result.min_gap = std::min(result.min_gap, rec.gap);
    }
    rounds.push_back(static_cast<double>(rec.cost.rounds));
    messages.push_back(static_cast<double>(rec.cost.messages));
    topology.push_back(static_cast<double>(rec.cost.topology_changes));
    result.total += rec.cost;
    if (observer_) {
      observer_(rec, overlay_);
      cache.advance();
    }
    if (spec_.record_trace) result.trace.push_back(rec);
  };

  // Folds the collecting window into the open epoch's record and emits it.
  const auto close_epoch = [&](std::uint64_t now) {
    if (open_epoch == kNoEpoch) return;
    const serve::ServeWindow w = serve_state->take_window();
    StepRecord& rec = pending[open_epoch].rec;
    rec.shed = w.shed;
    rec.timeouts = w.timeouts;
    rec.queue_peak = w.peak_queue;
    finalize(open_epoch, now);
    open_epoch = kNoEpoch;
  };

  // One serve-mode network leg (request to the home, or response back to
  // the origin): the same geometric loss-retransmit discipline churn
  // deliveries pay, with drops charged to the window in progress.
  const auto serve_leg = [&](graph::NodeId dest) {
    std::uint64_t delay = 0;
    if (loss > 0) {
      while (ev_rng.chance(loss)) {
        ++pending[open_epoch].dropped;
        delay += 1 + link_latency(dest);
      }
    }
    delay += link_latency(dest);
    return delay;
  };

  const auto apply_step = [&](std::size_t t, std::uint64_t now) {
    PendingStep& p = pending[t];
    // Filter constituents invalidated by churn that settled while this
    // batch was in flight (only possible when latency outruns the injection
    // period): dead victims, dead attach points, and trailing deletions
    // that would now push the population below the overlay's structural
    // floor (HealingOverlay::min_population — the flip chain, for one,
    // cannot rewire a departure below d+2 alive nodes). Each filtered
    // event is a dropped delivery — the overlay never sees it.
    ChurnBatch live;
    live.victims.reserve(p.batch.victims.size());
    live.attach_to.reserve(p.batch.attach_to.size());
    for (const graph::NodeId v : p.batch.victims) {
      if (overlay_.alive(v)) {
        live.victims.push_back(v);
      } else {
        ++p.dropped;
      }
    }
    const std::size_t floor_n = overlay_.min_population();
    while (!live.victims.empty() &&
           overlay_.n() < live.victims.size() + floor_n) {
      live.victims.pop_back();
      ++p.dropped;
    }
    for (const graph::NodeId a : p.batch.attach_to) {
      if (overlay_.alive(a)) {
        live.attach_to.push_back(a);
      } else {
        ++p.dropped;
      }
    }
    p.batch = ChurnBatch{};  // the buffers are dead weight from here on
    tic();
    const BatchOutcome out = detail::apply_batch_step(overlay_, live, p.rec);
    toc(result.churn_us);
    tic();
    cache.advance();
    toc(result.view_us);
    if (p.batch_step && out.parallel) ++result.parallel_steps;
    p.rec.n = overlay_.n();
    // Walk settlement: the healing protocol's completion notice pays one
    // more link traversal (no straggler multiplier — it aggregates over the
    // whole repair neighborhood) before traffic resumes against the step.
    queue.push(now + spec_.event.latency.sample(ev_rng), kSettle, t);
  };

  while (!queue.empty()) {
    const EventQueue::Item ev = queue.pop();
    last_time = ev.time;
    // Item.step is a step index only for the churn/batch-traffic kinds; the
    // serve kinds carry a client index or node id, so each case resolves
    // its own state.
    const std::size_t t = static_cast<std::size_t>(ev.step);
    switch (ev.kind) {
      case kInject: {
        PendingStep& p = pending[t];
        p.rec.step = t;
        const bool burst =
            spec_.burst_every == 0 || t % spec_.burst_every == 0;
        const std::size_t want =
            burst ? std::max<std::size_t>(spec_.batch_size, 1) : 1;
        ChurnBatch batch;
        if (campaign) {
          // Campaign steps are batch-first even at want == 1 — empty
          // batches are how quiet phases and rate gates manifest.
          batch = strategy_.next_batch(view, rng, min_n, max_n, want);
        } else if (want <= 1) {
          const adversary::ChurnAction a =
              strategy_.next(view, rng, min_n, max_n);
          if (a.insert) {
            batch.attach_to.push_back(a.target);
          } else {
            batch.victims.push_back(a.target);
          }
        } else {
          batch = strategy_.next_batch(view, rng, min_n, max_n, want);
        }
        if (traffic) traffic->observe_churn(batch, view);
        p.batch_step = want > 1;
        p.expected = batch.size();
        p.batch = std::move(batch);
        if (p.expected == 0) {
          apply_step(t, ev.time);
          break;
        }
        // One delivery per constituent, in ChurnBatch's canonical order
        // (victims, then attach points). Loss draws a geometric retransmit
        // count up front: each lost copy is a dropped delivery paying a
        // 1-tick timeout plus a fresh latency sample before the resend.
        const auto launch = [&](graph::NodeId dest) {
          std::uint64_t delay = 0;
          if (loss > 0) {
            while (ev_rng.chance(loss)) {
              ++p.dropped;
              delay += 1 + link_latency(dest);
            }
          }
          delay += link_latency(dest);
          ++in_flight;
          queue.push(ev.time + delay, kChurnArrive, t);
        };
        for (const graph::NodeId v : p.batch.victims) launch(v);
        for (const graph::NodeId a : p.batch.attach_to) launch(a);
        break;
      }
      case kChurnArrive: {
        PendingStep& p = pending[t];
        DEX_ASSERT(in_flight > 0);
        --in_flight;
        if (++p.arrived == p.expected) apply_step(t, ev.time);
        break;
      }
      case kSettle: {
        PendingStep& p = pending[t];
        if (serving) {
          // Adopt the post-churn view (re-homes keys) and turn every moved
          // key into a rehash job at its new home — the rehash storm that
          // backpressures client traffic through the shared stations.
          tic();
          p.traffic = traffic->begin_step(view);
          toc(result.traffic_us);
          close_epoch(ev.time);
          open_epoch = t;
          const KvStore& store = traffic->store();
          for (const std::uint64_t key : store.last_moved()) {
            const graph::NodeId home = store.home(key);
            queue.push(serve_state->admit_rehash(home, ev.time),
                       kRehashDone, home);
          }
          if (!clients_spawned) {
            clients_spawned = true;
            for (std::size_t c = 0; c < clients.size(); ++c) {
              if (clients[c].remaining > 0) queue.push(ev.time, kOpIssue, c);
            }
          }
          break;
        }
        if (traffic) {
          tic();
          p.traffic = traffic->begin_step(view);
          toc(result.traffic_us);
          p.ops_expected =
              campaign ? campaign->scaled_ops(spec_.traffic.ops_per_step, t)
                       : spec_.traffic.ops_per_step;
          if (p.ops_expected > 0) {
            // Requests fire back-to-back at settle time; latency shapes the
            // *churn* pipeline, while request loss below shapes serving.
            for (std::size_t i = 0; i < p.ops_expected; ++i) {
              queue.push(ev.time, kTrafficOp, t);
            }
            break;
          }
        }
        finalize(t, ev.time);
        break;
      }
      case kTrafficOp: {
        PendingStep& p = pending[t];
        if (loss > 0 && ev_rng.chance(loss)) {
          // Request lost in flight: retransmit after a 1-tick timeout plus
          // a fresh latency draw. The op is delayed, not failed — failures
          // stay what they always were, routing/lookup outcomes.
          ++p.dropped;
          queue.push(ev.time + 1 + spec_.event.latency.sample(ev_rng),
                     kTrafficOp, t);
          break;
        }
        tic();
        traffic->serve_one(p.traffic);
        toc(result.traffic_us);
        if (++p.ops_done == p.ops_expected) finalize(t, ev.time);
        break;
      }
      case kOpIssue: {
        // The client's decision point: draw the request now, pin the home
        // for admission, and put the request on the wire. The budget unit
        // is spent here — shed or served, the attempt happened.
        ServeClient& c = clients[t];
        DEX_ASSERT(c.remaining > 0);
        --c.remaining;
        tic();
        c.op = traffic->issue_op();
        toc(result.traffic_us);
        c.issued_at = ev.time;
        c.shed = false;
        queue.push(ev.time + serve_leg(c.op.home), kOpArrive, t);
        break;
      }
      case kOpArrive: {
        ServeClient& c = clients[t];
        const auto adm = serve_state->admit(c.op.home, ev.time);
        if (adm.admitted) {
          queue.push(adm.done_at, kOpDone, t);
        } else {
          // Queue full: admission control sheds the request with an
          // immediate rejection response (the trip back still costs a leg).
          c.shed = true;
          serve_state->record_shed();
          queue.push(ev.time + serve_leg(c.op.origin), kOpResponse, t);
        }
        break;
      }
      case kOpDone: {
        // Service complete: free the station, execute the op against the
        // store *as it is now* — churn and other clients may have moved
        // things since issue — and send the response home.
        ServeClient& c = clients[t];
        serve_state->depart(c.op.home);
        tic();
        traffic->complete_op(c.op, pending[open_epoch].traffic);
        toc(result.traffic_us);
        queue.push(ev.time + serve_leg(c.op.origin), kOpResponse, t);
        break;
      }
      case kOpResponse: {
        ServeClient& c = clients[t];
        if (!c.shed) {
          serve_state->record_completion(c.op.home, ev.time - c.issued_at);
        }
        if (c.remaining > 0) {
          queue.push(ev.time + spec_.serve.think_ticks, kOpIssue, t);
        }
        break;
      }
      case kRehashDone: {
        serve_state->depart(static_cast<graph::NodeId>(ev.step));
        break;
      }
    }
  }
  DEX_ASSERT_MSG(in_flight == 0, "event loop drained with deliveries in air");
  if (serving) {
    // The last epoch's window closes when the queue drains — every client
    // budget is spent and every rehash job done by construction.
    close_epoch(last_time);
    serve_state->depart_all_check();
    result.serve_completed = serve_state->total_completed();
    result.serve_shed = serve_state->total_shed();
    result.serve_timeouts = serve_state->total_timeouts();
    result.serve_peak_queue = serve_state->peak_queue();
    result.serve_makespan = last_time;
    result.serve_latency = serve_state->merged_latency();
  }

  result.rounds = metrics::summarize(std::move(rounds));
  result.messages = metrics::summarize(std::move(messages));
  result.topology = metrics::summarize(std::move(topology));
  result.final_n = overlay_.n();
  return result;
}

}  // namespace dex::sim
