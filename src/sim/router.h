#pragma once

/// \file router.h
/// Store-and-forward packet routing under CONGEST congestion, used to
/// reproduce the permutation-routing subroutine of type-2 recovery
/// (Corollary 3 of the paper, from Scheideler's Corollary 7.7.3: n packets,
/// one per node, follow an arbitrary permutation in O(log n (log log n)² /
/// log log log n) rounds on a bounded-degree expander).
///
/// Each packet carries an explicit path (sequence of location ids). Per
/// round, each directed edge forwards at most one packet; blocked packets
/// queue at their current location (farthest-to-go first, a standard
/// deadlock-free priority).

#include <cstdint>
#include <vector>

#include "sim/meters.h"
#include "support/prng.h"

namespace dex::sim {

struct Packet {
  std::vector<std::uint64_t> path;  ///< path[0] = source, back() = dest
  std::uint32_t tag = 0;
};

struct RoutingResult {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;   ///< total hops taken
  std::uint64_t max_queue = 0;  ///< max packets queued at a location
  bool all_delivered = false;
};

/// Routes all packets along their paths. round_limit guards against
/// pathological inputs (paths are caller-provided).
[[nodiscard]] RoutingResult route_packets(const std::vector<Packet>& packets,
                                          support::Rng& rng,
                                          std::uint64_t round_limit);

}  // namespace dex::sim
