#include "sim/overlay.h"

#include "dex/batch.h"
#include "graph/generators.h"

namespace dex::sim {

BatchOutcome DexOverlay::apply(const ChurnBatch& batch) {
  if (parallel_batches_ && batch.size() > 1) {
    dex::BatchRequest req{batch.attach_to, batch.victims};
    if (dex::batch_feasible(net_, req)) {
      const dex::BatchResult res =
          dex::apply_batch(net_, req, /*prevalidated=*/true);
      BatchOutcome out;
      out.inserted = res.inserted;
      out.cost = res.cost;
      out.walk_epochs = res.walk_epochs;
      out.used_type2 = res.used_type2;
      out.parallel = true;
      return out;
    }
  }
  // Sequential path: same event order as apply_sequential, but with the
  // type-2 rebuilds each event fires attributed to the outcome (the generic
  // default has no window into DexNetwork's step reports).
  BatchOutcome out;
  for (NodeId v : batch.victims) {
    remove(v);
    out.cost += last_step_cost();
    out.used_type2 |= net_.last_report().type2_event;
  }
  for (NodeId a : batch.attach_to) {
    out.inserted.push_back(insert(a));
    out.cost += last_step_cost();
    out.used_type2 |= net_.last_report().type2_event;
  }
  return out;
}

std::unique_ptr<HealingOverlay> make_overlay(const std::string& backend,
                                             std::size_t n0,
                                             std::uint64_t seed) {
  if (backend == "dex-amortized" || backend == "dex-worstcase") {
    dex::Params prm;
    prm.seed = seed;
    prm.mode = backend == "dex-amortized" ? RecoveryMode::Amortized
                                          : RecoveryMode::WorstCase;
    return std::make_unique<DexOverlay>(n0, prm);
  }
  if (backend == "flood") return std::make_unique<FloodRebuildOverlay>(n0);
  if (backend == "lawsiu")
    return std::make_unique<LawSiuOverlay>(n0, /*d=*/3, seed);
  if (backend == "randomflip")
    return std::make_unique<RandomFlipOverlay>(n0, /*d=*/6, seed);
  if (backend == "xheal") {
    support::Rng gen(seed);
    return std::make_unique<XhealOverlay>(
        graph::make_random_regular(n0, /*d=*/4, gen));
  }
  return nullptr;
}

const std::vector<std::string>& known_overlays() {
  static const std::vector<std::string> names{
      "dex-amortized",
      "dex-worstcase",
      "flood",
      "lawsiu",
      "randomflip",
      "xheal",
  };
  return names;
}

const char* overlay_names() {
  // Joined from the registry so the usage string can never drift from what
  // make_overlay actually accepts.
  static const std::string joined = [] {
    std::string s;
    for (const auto& name : known_overlays()) {
      if (!s.empty()) s += ", ";
      s += name;
    }
    return s;
  }();
  return joined.c_str();
}

}  // namespace dex::sim
