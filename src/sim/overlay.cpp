#include "sim/overlay.h"

#include "dex/batch.h"
#include "graph/generators.h"

namespace dex::sim {

std::vector<NodeId> HealingOverlay::route(NodeId src, NodeId dst,
                                          const graph::CsrView& live) const {
  // BFS shortest path on the flat live view; parent tie-breaks follow port
  // order, so the path is the one the Multigraph-walking default always
  // returned.
  return graph::csr_shortest_path(live, src, dst);
}

BatchOutcome DexOverlay::apply(const ChurnBatch& batch) {
  // The parallel path below mutates net_ without going through insert()/
  // remove(); invalidate the route memo up front either way.
  ++topo_gen_;
  if (parallel_batches_ && batch.size() > 1) {
    dex::BatchRequest req{batch.attach_to, batch.victims};
    // The runner's maintained CSR (when wired and current) turns the
    // feasibility connectivity BFS into a flat-array walk — no snapshot,
    // no per-node port materialization.
    if (dex::batch_feasible(net_, req, live_view())) {
      const dex::BatchResult res =
          dex::apply_batch(net_, req, /*prevalidated=*/true);
      BatchOutcome out;
      out.inserted = res.inserted;
      out.cost = res.cost;
      out.walk_epochs = res.walk_epochs;
      out.used_type2 = res.used_type2;
      out.parallel = true;
      return out;
    }
  }
  // Sequential path: same event order as apply_sequential, but with the
  // type-2 rebuilds each event fires attributed to the outcome (the generic
  // default has no window into DexNetwork's step reports).
  BatchOutcome out;
  for (NodeId v : batch.victims) {
    remove(v);
    out.cost += last_step_cost();
    out.used_type2 |= net_.last_report().type2_event;
  }
  for (NodeId a : batch.attach_to) {
    out.inserted.push_back(insert(a));
    out.cost += last_step_cost();
    out.used_type2 |= net_.last_report().type2_event;
  }
  return out;
}

std::vector<NodeId> DexOverlay::route(NodeId src, NodeId dst,
                                      const graph::CsrView& live) const {
  if (src == dst) return {src};
  // The p-cycle contraction below is a pure function of the mapping, which
  // only churn mutates — so one step's repeated (src, dst) pairs (Zipf
  // traffic hammering a hot home) are answered from the memo. insert()/
  // remove()/apply() bump topo_gen_, which lazily flushes the cache here.
  if (route_memo_gen_ != topo_gen_) {
    route_memo_.clear();
    route_memo_gen_ = topo_gen_;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint64_t>(dst);
  if (const auto it = route_memo_.find(key); it != route_memo_.end()) {
    return it->second;
  }
  std::vector<NodeId> path;
  const auto& ss = net_.mapping().sim(src);
  const auto& ds = net_.mapping().sim(dst);
  if (ss.empty() || ds.empty()) {
    // Mid-build newcomers own no current-cycle vertex yet; they reach the
    // network through their attachment edges, which only the real topology
    // knows about.
    path = HealingOverlay::route(src, dst, live);
  } else {
    const auto vpath = net_.cycle().shortest_path(ss[0], ds[0]);
    path.reserve(vpath.size());
    for (const Vertex z : vpath) {
      // Each virtual edge is materialized between the owners of its
      // endpoints, so contracting the vertex path yields a valid hop path;
      // consecutive same-owner vertices collapse into zero-cost local steps.
      const NodeId u = net_.mapping().owner(z);
      if (path.empty() || path.back() != u) path.push_back(u);
    }
    DEX_ASSERT(path.front() == src && path.back() == dst);
  }
  route_memo_.emplace(key, path);
  return path;
}

std::unique_ptr<HealingOverlay> make_overlay(const std::string& backend,
                                             std::size_t n0,
                                             std::uint64_t seed) {
  if (backend == "dex-amortized" || backend == "dex-worstcase") {
    dex::Params prm;
    prm.seed = seed;
    prm.mode = backend == "dex-amortized" ? RecoveryMode::Amortized
                                          : RecoveryMode::WorstCase;
    return std::make_unique<DexOverlay>(n0, prm);
  }
  if (backend == "flood") return std::make_unique<FloodRebuildOverlay>(n0);
  if (backend == "lawsiu")
    return std::make_unique<LawSiuOverlay>(n0, /*d=*/3, seed);
  if (backend == "randomflip")
    return std::make_unique<RandomFlipOverlay>(n0, /*d=*/6, seed);
  if (backend == "xheal") {
    support::Rng gen(seed);
    return std::make_unique<XhealOverlay>(
        graph::make_random_regular(n0, /*d=*/4, gen));
  }
  return nullptr;
}

const std::vector<std::string>& known_overlays() {
  static const std::vector<std::string> names{
      "dex-amortized",
      "dex-worstcase",
      "flood",
      "lawsiu",
      "randomflip",
      "xheal",
  };
  return names;
}

const char* overlay_names() {
  // Joined from the registry so the usage string can never drift from what
  // make_overlay actually accepts.
  static const std::string joined = [] {
    std::string s;
    for (const auto& name : known_overlays()) {
      if (!s.empty()) s += ", ";
      s += name;
    }
    return s;
  }();
  return joined.c_str();
}

}  // namespace dex::sim
