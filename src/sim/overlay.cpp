#include "sim/overlay.h"

#include "dex/batch.h"
#include "graph/generators.h"

namespace dex::sim {

BatchOutcome DexOverlay::apply(const ChurnBatch& batch) {
  if (!parallel_batches_ || batch.size() <= 1) {
    return apply_sequential(batch);
  }
  dex::BatchRequest req{batch.attach_to, batch.victims};
  if (!dex::batch_feasible(net_, req)) return apply_sequential(batch);
  const dex::BatchResult res =
      dex::apply_batch(net_, req, /*prevalidated=*/true);
  BatchOutcome out;
  out.inserted = res.inserted;
  out.cost = res.cost;
  out.walk_epochs = res.walk_epochs;
  out.used_type2 = res.used_type2;
  out.parallel = true;
  return out;
}

std::unique_ptr<HealingOverlay> make_overlay(const std::string& backend,
                                             std::size_t n0,
                                             std::uint64_t seed) {
  if (backend == "dex-amortized" || backend == "dex-worstcase") {
    dex::Params prm;
    prm.seed = seed;
    prm.mode = backend == "dex-amortized" ? RecoveryMode::Amortized
                                          : RecoveryMode::WorstCase;
    return std::make_unique<DexOverlay>(n0, prm);
  }
  if (backend == "flood") return std::make_unique<FloodRebuildOverlay>(n0);
  if (backend == "lawsiu")
    return std::make_unique<LawSiuOverlay>(n0, /*d=*/3, seed);
  if (backend == "randomflip")
    return std::make_unique<RandomFlipOverlay>(n0, /*d=*/6, seed);
  if (backend == "xheal") {
    support::Rng gen(seed);
    return std::make_unique<XhealOverlay>(
        graph::make_random_regular(n0, /*d=*/4, gen));
  }
  return nullptr;
}

const char* overlay_names() {
  return "dex-amortized, dex-worstcase, flood, lawsiu, randomflip, xheal";
}

}  // namespace dex::sim
