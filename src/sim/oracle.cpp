#include "sim/oracle.h"

#include <algorithm>

#include "graph/bfs.h"
#include "support/assert.h"

namespace dex::sim {

using graph::NodeId;

void DistanceOracle::attach(const graph::CsrView& view) {
  view_ = &view;
  by_root_.clear();
  root_queries_.clear();
  for (auto& s : slots_) {
    s.root = graph::kInvalidNode;
    s.reach_done = false;
  }
  next_slot_ = 0;
  bfs_runs_ = 0;
}

DistanceOracle::Slot* DistanceOracle::find(NodeId root) {
  const auto it = by_root_.find(root);
  return it == by_root_.end() ? nullptr : &slots_[it->second];
}

DistanceOracle::Slot& DistanceOracle::materialize(NodeId root) {
  DEX_ASSERT_MSG(view_ != nullptr, "DistanceOracle used before attach()");
  if (Slot* hit = find(root)) return *hit;
  if (slots_.size() < kMaxRoots) {
    // Reserved to the cap up front so growth never reallocates: a Slot
    // reference handed out by from() must survive materializing calls on
    // *other* slots (it still dies with slot recycling — see from()'s
    // lifetime note).
    if (slots_.capacity() < kMaxRoots) slots_.reserve(kMaxRoots);
    slots_.emplace_back();
    next_slot_ = slots_.size() - 1;
  }
  Slot& slot = slots_[next_slot_];
  if (slot.root != graph::kInvalidNode) by_root_.erase(slot.root);
  by_root_[root] = next_slot_;
  next_slot_ = (next_slot_ + 1) % kMaxRoots;
  slot.root = root;
  slot.reach_done = false;
  graph::csr_bfs_fill(*view_, root, slot.dist, scratch_);
  ++bfs_runs_;
  return slot;
}

std::uint32_t DistanceOracle::probe(NodeId src, NodeId dst) {
  if (probe_stamp_.size() != view_->node_count()) {
    probe_stamp_.assign(view_->node_count(), 0);
    probe_dist_.assign(view_->node_count(), 0);
    probe_gen_ = 0;
  }
  if (++probe_gen_ == 0) {  // stamp wrap: one real clear every 2^32 probes
    std::fill(probe_stamp_.begin(), probe_stamp_.end(), 0);
    probe_gen_ = 1;
  }
  ++bfs_runs_;
  probe_queue_.clear();
  probe_queue_.push_back(src);
  probe_stamp_[src] = probe_gen_;
  probe_dist_[src] = 0;
  std::size_t head = 0;
  while (head < probe_queue_.size()) {
    const NodeId x = probe_queue_[head++];
    const std::uint32_t d = probe_dist_[x] + 1;
    for (const NodeId y : view_->neighbors(x)) {
      if (probe_stamp_[y] == probe_gen_) continue;
      probe_stamp_[y] = probe_gen_;
      probe_dist_[y] = d;
      if (y == dst) return d;
      probe_queue_.push_back(y);
    }
  }
  return graph::kUnreached;
}

std::uint32_t DistanceOracle::distance(NodeId u, NodeId v) {
  DEX_ASSERT_MSG(view_ != nullptr, "DistanceOracle used before attach()");
  if (u == v) return view_->alive(u) ? 0 : graph::kUnreached;
  if (!view_->alive(u) || !view_->alive(v)) return graph::kUnreached;
  if (const Slot* hit = find(v)) return hit->dist[u];
  if (const Slot* hit = find(u)) return hit->dist[v];
  // Callers pass (origin, home), so v is the repeating side. Memoize on
  // repeat: the first query for a root takes an early-exit probe, a second
  // buys the full frontier the rest of the step shares.
  if (++root_queries_[v] < 2) return probe(v, u);
  return materialize(v).dist[u];
}

const std::vector<std::uint32_t>& DistanceOracle::from(NodeId src) {
  return materialize(src).dist;
}

DistanceOracle::Reach DistanceOracle::reach(NodeId src) {
  Slot& slot = materialize(src);
  if (!slot.reach_done) {
    Reach r;
    for (NodeId u = 0; u < slot.dist.size(); ++u) {
      if (view_->alive(u) && slot.dist[u] != graph::kUnreached) {
        r.sum += slot.dist[u];
        ++r.count;
      }
    }
    slot.reach = r;
    slot.reach_done = true;
  }
  return slot.reach;
}

}  // namespace dex::sim
