#pragma once

/// \file scenario.h
/// The scenario engine: drives any HealingOverlay with any
/// adversary::Strategy under a declarative ScenarioSpec, producing a
/// deterministic per-step trace (StepRecord stream) plus aggregate stats,
/// emitted as CSV/JSON through src/metrics. Every bench, example and the
/// CLI runs its churn through this one loop instead of hand-rolled
/// per-backend drivers.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/campaign.h"
#include "metrics/histogram.h"
#include "metrics/stats.h"
#include "serve/serve.h"
#include "sim/event/event.h"
#include "sim/meters.h"
#include "sim/overlay.h"
#include "sim/workload.h"

namespace dex::sim {

/// Declarative description of one experiment run. Everything that affects
/// the trace is here (plus the strategy object), so spec + seed + overlay
/// state fully determine the byte-exact output.
struct ScenarioSpec {
  std::uint64_t seed = 1;
  /// Steps driven by the strategy (after warmup); each step is one
  /// ChurnBatch (one churn event when batch_size is 1, the default).
  std::size_t steps = 256;
  /// Events per batch step (§5 model). 1 = the classic single-event
  /// adversary of §2; >1 asks the strategy for up-to-this-many-event
  /// batches via next_batch (near a population bound a batch may come back
  /// smaller).
  std::size_t batch_size = 1;
  /// Burst pattern: 0 = every step uses batch_size; k >= 1 = only every
  /// k-th step (t % k == 0) is a batch_size burst, the steps between are
  /// single events — calm-then-burst workloads from one knob.
  std::size_t burst_every = 0;
  /// Population bounds handed to the strategy. 0 means "derive from the
  /// overlay's starting population": min = max(n0/2, 4), max = 2*n0.
  /// Enforcement is the strategy's job; the single-sided workloads
  /// (InsertOnly/DeleteOnly) deliberately ignore the opposite bound.
  std::size_t min_n = 0;
  std::size_t max_n = 0;
  /// Warmup-then-attack: this many uniform random-churn steps run before
  /// the strategy takes over. Warmup steps are not recorded in the trace.
  std::size_t warmup_steps = 0;
  double warmup_insert_prob = 0.5;
  /// Sample the spectral gap every k recorded steps (0 = never). Sampled
  /// records carry gap >= 0 (clamped at 0); others carry -1.
  std::size_t gap_every = 0;
  /// Record the max real degree each step (costs one snapshot scan).
  bool measure_degree = false;
  /// Materialize the StepRecord trace in the result. Aggregates are
  /// computed either way; turn this off for long runs where only the
  /// summary (or the step observer) is consumed.
  bool record_trace = true;
  /// Key-value traffic interleaved with the churn (sim/workload.h): after
  /// each applied ChurnBatch the runner re-homes displaced keys and serves
  /// traffic.ops_per_step requests through the overlay's routing surface.
  /// Disabled by default (traffic.workload empty); the request stream uses
  /// its own RNG, so enabling it replays the same churn byte-for-byte.
  TrafficSpec traffic;
  /// The delivery regime (sim/event/event.h): with event.enabled the trial
  /// runs on the event engine — churn constituents, walk settlement and KV
  /// requests become timestamped deliveries under the spec's latency/loss/
  /// straggler model — instead of the lockstep loop. At latency fixed:0 /
  /// loss 0 the two engines emit byte-identical traces; the knobs ride the
  /// spec, so they flow through ExperimentPlan/Executor untouched.
  EventSpec event;
  /// The serving front-end (serve/serve.h): with serve.enabled (requires
  /// event.enabled and a traffic workload) requests stop firing as per-step
  /// batches and become closed-loop client actors on the event clock — op
  /// issue, routed delivery, admission at the home's bounded queue, service,
  /// response, think time. The trace gains shed/timeouts/qdepth columns and
  /// the summary a serve block with p50/p99/p999 latency and throughput.
  serve::ServeSpec serve;
  /// Accumulate wall-clock phase totals (churn/view-maintenance/traffic)
  /// into the result. Off by default: the totals never appear in traces or
  /// summary JSON (the determinism contract covers bytes, not wall time),
  /// but benches (bench_scale) read them to attribute per-step cost.
  bool time_phases = false;
  /// Phased adversary campaign (adversary/campaign.h), as the compact
  /// string `--campaign` accepts. Empty (the default) = drive the single
  /// strategy the classic way. Non-empty: the engines route *every* step
  /// through Strategy::next_batch — rate-gated and quiet phases come back
  /// as legal empty batches — and scale the traffic stream by the
  /// campaign's per-step load curve. A plain string so it flows through
  /// ExperimentPlan/Executor untouched; it is archived in the summary.
  /// Malformed specs abort inside the engines — validate up front with
  /// parse_campaign_spec (the CLI does).
  std::string campaign;
  /// Free-form scenario/strategy label identifying the workload in the
  /// emitted summary. The summary records every ScenarioSpec parameter;
  /// strategy-internal knobs (a Strategy is an opaque object) are the
  /// caller's to archive — fold them into the label if they matter.
  std::string label;
};

/// The population bounds a spec resolves to for a given starting
/// population (0 means "derive": min = max(n0/2, 4), max = 2*n0). Shared by
/// ScenarioRunner::run and anything validating a spec up front (the CLI) so
/// the two can never disagree. Bounds are valid iff min_n >= 3 (the runner
/// refuses to delete the network below 3 nodes) and min_n < max_n.
struct ResolvedBounds {
  std::size_t min_n = 0;
  std::size_t max_n = 0;
  [[nodiscard]] bool valid() const { return min_n >= 3 && min_n < max_n; }
};
[[nodiscard]] ResolvedBounds resolve_bounds(const ScenarioSpec& spec,
                                            std::size_t n0);

/// One recorded step = one applied ChurnBatch. Single-event batches keep
/// the PR-1 per-event fields (insert/target/new_node) populated; multi-event
/// batches carry the batch columns and leave target/new_node at
/// kInvalidNode (emitted blank in the CSV, op = "batch").
struct StepRecord {
  std::uint64_t step = 0;
  bool insert = true;
  /// Attach point (insertions) or victim (deletions), as the strategy
  /// chose; kInvalidNode for multi-event batches.
  graph::NodeId target = graph::kInvalidNode;
  /// Id of the inserted node; kInvalidNode for deletions and batches.
  graph::NodeId new_node = graph::kInvalidNode;
  /// Population after the step.
  std::size_t n = 0;
  StepCost cost;
  /// Batch composition: insertions / deletions applied this step.
  std::size_t batch_inserts = 0;
  std::size_t batch_deletes = 0;
  /// Parallel-walk epochs the batch needed (0 on the sequential path).
  std::uint64_t walk_epochs = 0;
  /// Whether a type-2 rebuild fired inside the batch.
  bool used_type2 = false;
  /// Max real degree after the step; 0 unless spec.measure_degree.
  std::size_t max_degree = 0;
  /// Spectral gap after the step; -1 unless sampled (spec.gap_every).
  double gap = -1.0;
  // --- traffic fields (all 0 unless spec.traffic is enabled) ---
  /// Requests served after this step's churn.
  std::size_t ops = 0;
  /// Total realized route hops across those requests (gets pay the round
  /// trip) and the BFS-optimal total for the same (origin, home) pairs —
  /// their ratio is the step's routing stretch.
  std::uint64_t op_hops = 0;
  std::uint64_t opt_hops = 0;
  /// Reads of an acknowledged key that missed or returned a stale value.
  std::size_t failed_lookups = 0;
  /// Writes whose request could not be delivered (no ack, nothing stored).
  std::size_t failed_writes = 0;
  /// Keys re-homed by this step's churn, and the transfer messages charged.
  std::size_t moved_keys = 0;
  std::uint64_t rehash_messages = 0;
  // --- event-engine fields (sync engine: vtime == step, the rest 0) ---
  /// Virtual time (ticks) when the step finalized. Injection happens at
  /// step * event.period; the difference is the step's settle lag.
  std::uint64_t vtime = 0;
  /// Churn deliveries of *other* steps still in the air at finalization —
  /// nonzero exactly when healing is racing churn.
  std::size_t in_flight = 0;
  /// Deliveries this step lost to message loss (each retransmitted) plus
  /// constituents invalidated by racing churn before they could apply.
  std::size_t dropped = 0;
  // --- serving front-end fields (all 0 unless spec.serve is enabled) ---
  /// Requests shed by admission control in this record's serving window
  /// (serve mode: the window between the previous finalization and this
  /// one; `ops` counts the window's *completed* ops there).
  std::size_t shed = 0;
  /// Completed ops whose end-to-end latency breached spec.serve.op_timeout.
  std::size_t timeouts = 0;
  /// Deepest per-home request queue observed in the window.
  std::size_t queue_peak = 0;
};

struct ScenarioResult {
  std::string backend;
  ScenarioSpec spec;
  std::vector<StepRecord> trace;
  /// Per-step cost summaries over the recorded trace.
  metrics::Summary rounds;
  metrics::Summary messages;
  metrics::Summary topology;
  /// Componentwise sum over the recorded trace.
  StepCost total;
  /// Batch aggregates over the recorded trace.
  std::size_t total_inserts = 0;
  std::size_t total_deletes = 0;
  std::uint64_t total_walk_epochs = 0;
  std::size_t type2_steps = 0;     ///< steps whose batch used a type-2 rebuild
  std::size_t parallel_steps = 0;  ///< steps served by a parallel batch path
  std::size_t max_degree = 0;  ///< max over trace (0 unless measured)
  double min_gap = 1.0;        ///< min over sampled records (1.0 if none)
  std::size_t start_n = 0;     ///< population when run() began
  std::size_t final_n = 0;
  /// Traffic aggregates over all executed steps — accumulated whether or
  /// not the trace is recorded (0 with traffic disabled).
  std::size_t total_ops = 0;
  std::uint64_t total_op_hops = 0;
  std::uint64_t total_opt_hops = 0;
  std::size_t total_failed_lookups = 0;
  std::size_t total_failed_writes = 0;
  std::size_t total_moved_keys = 0;
  std::uint64_t total_rehash_messages = 0;
  /// Event-engine aggregates (both 0 on the sync engine).
  std::uint64_t total_dropped = 0;
  std::size_t max_in_flight = 0;
  /// Serving front-end aggregates (all 0/empty unless spec.serve.enabled).
  std::size_t serve_completed = 0;  ///< ops served to completion
  std::size_t serve_shed = 0;       ///< requests rejected by admission
  std::size_t serve_timeouts = 0;   ///< completions past the SLO
  std::size_t serve_peak_queue = 0;
  /// Tick of the last serve/traffic event — the denominator of the
  /// summary's throughput (completed ops per tick).
  std::uint64_t serve_makespan = 0;
  /// End-to-end op latency, merged across shards (shard-count-invariant by
  /// the histogram's merge contract).
  metrics::LatencyHistogram serve_latency;
  /// Wall-clock phase totals in microseconds, summed over the measured
  /// steps; all 0 unless spec.time_phases. Deliberately absent from
  /// trace_csv/summary_json so timing can never perturb byte-identity.
  double churn_us = 0.0;    ///< strategy decision + overlay apply (healing)
  double view_us = 0.0;     ///< CachedView::advance — journal drain + patch
  double traffic_us = 0.0;  ///< key re-homing + request serving
};

/// Churn-application internals shared by the synchronous runner loop and
/// the event engine (sim/event/engine.h), so both fill StepRecords through
/// the very same apply surface — the zero-latency byte-equivalence between
/// the engines depends on it.
namespace detail {
/// Applies one single churn event (the warmup path) and records it.
void apply_action(HealingOverlay& overlay, const adversary::ChurnAction& a,
                  StepRecord& rec);
/// Validates a strategy-produced batch (alive, distinct victims, network
/// never emptied), applies it through HealingOverlay::apply and fills the
/// record's per-event/batch fields.
BatchOutcome apply_batch_step(HealingOverlay& overlay, const ChurnBatch& batch,
                              StepRecord& rec);
}  // namespace detail

/// AdversaryView over an overlay whose expensive components (alive_nodes,
/// snapshot, alive_mask) are materialized at most once per step, however
/// many times the strategy consults them. Also the home of the per-step
/// flat CSR view (graph/csr.h) the traffic layer's route/placement oracle
/// reads by reference (object identity is stable across steps, so borrowed
/// pointers stay valid).
///
/// Two maintenance modes per step boundary:
///
///  * invalidate() — drop everything; the CSR lazily rebuilds from scratch
///    on next use. Always correct; O(n + m) per step.
///  * advance() — drain the overlay's churn journal
///    (HealingOverlay::drain_view_delta) and *patch* the CSR in place when
///    the delta is precise, paying per-step cost proportional to the churn
///    delta instead of the population. Falls back to a rebuild whenever the
///    journal is absent/full or the standing CSR is not patchable (a view
///    built from a snapshot is in Multigraph port order, not the overlay's
///    live_ports order — patching it would interleave the two canonical
///    orders, so csr_ports_canonical_ tracks which enumerator built it).
///    With DEX_CHECK_CSR=1 in the environment every advance() additionally
///    rebuilds a reference view and asserts semantic equality.
class CachedView {
 public:
  explicit CachedView(const HealingOverlay& overlay);

  // The view's lambdas capture `this`; a copy or move would leave them
  // wired to the source object's cache.
  CachedView(const CachedView&) = delete;
  CachedView& operator=(const CachedView&) = delete;

  [[nodiscard]] const adversary::AdversaryView& view() const { return view_; }
  void invalidate();
  /// invalidate(), except the CSR survives via journal patching when the
  /// overlay supports it. Call at (and only at) churn-step boundaries —
  /// the journal delta spans everything since the previous drain.
  void advance();
  /// The maintained CSR when it is current, else nullptr. Never triggers a
  /// build — this feeds HealingOverlay::set_live_view_provider, whose
  /// consumers (batch preflight) want an opportunistic read, not a charge.
  [[nodiscard]] const graph::CsrView* live_csr_if_valid() const {
    return csr_valid_ ? &csr_ : nullptr;
  }

 private:
  const HealingOverlay& overlay_;
  adversary::AdversaryView view_;
  mutable std::optional<std::vector<graph::NodeId>> nodes_;
  mutable std::optional<graph::Multigraph> snapshot_;
  mutable std::optional<std::vector<bool>> mask_;
  // The CSR keeps its buffers across invalidations (build() reuses them);
  // the flag alone tracks staleness.
  mutable graph::CsrView csr_;
  mutable bool csr_valid_ = false;
  /// Whether csr_ rows are in live_ports order (patchable) rather than
  /// Multigraph snapshot order (rebuild-only).
  mutable bool csr_ports_canonical_ = false;
  /// Row enumerator handed to build_from_ports/apply_delta; asserts the
  /// overlay's live_ports capability (callers only use it after probing).
  graph::CsrView::PortsFn ports_fn_;
  graph::ViewDelta delta_;  ///< drain buffer (ping-pongs with the journal)
};

class ScenarioRunner {
 public:
  /// Called after each recorded step, before the next strategy decision.
  /// This is the single-trial hook; experiment-level consumers should use
  /// the streaming MetricSink interface (sim/sinks.h) via the Executor
  /// (sim/experiment.h), which forwards every StepRecord without the trace
  /// ever being materialized.
  using StepObserver =
      std::function<void(const StepRecord&, HealingOverlay&)>;

  ScenarioRunner(HealingOverlay& overlay, adversary::Strategy& strategy,
                 ScenarioSpec spec);

  void set_observer(StepObserver observer) {
    observer_ = std::move(observer);
  }

  /// Runs warmup + spec.steps strategy steps and returns the trace with
  /// aggregates. Deterministic: same overlay state + spec + strategy state
  /// in, byte-identical trace out. With spec.event.enabled the run is
  /// delegated to the EventEngine (sim/event/engine.h) — same surface, same
  /// determinism, but records finalize (and reach the observer) in
  /// settlement order rather than step order.
  ScenarioResult run();

 private:
  HealingOverlay& overlay_;
  adversary::Strategy& strategy_;
  ScenarioSpec spec_;
  StepObserver observer_;
};

/// Strategy factory keyed by the scenario names the CLI exposes:
/// "churn", "insert-only", "delete-only", "oscillate", "targeted"
/// (coordinator killer), "load-attack", "spectral", "greedy-spectral",
/// plus the batch-native workloads "burst" (mixed §5-safe bursts),
/// "flash-crowd" (insert waves), "mass-failure" (correlated clustered
/// deletions), "oracle-bust" (region-scattering churn that defeats the
/// DistanceOracle's root memo), "chord-cut" (betweenness-proxy deletion of
/// p-cycle chord carriers) and "spectral-batch" (whole-batch sweep-cut
/// demolition). Returns nullptr for unknown names.
struct StrategyOptions {
  double insert_prob = 0.5;      ///< churn, burst (insert fraction)
  std::size_t half_period = 32;  ///< oscillate
  std::size_t candidates = 24;   ///< greedy-spectral
};
[[nodiscard]] std::unique_ptr<adversary::Strategy> make_strategy(
    const std::string& scenario, const StrategyOptions& opts = {});

/// The strategy names make_strategy accepts, in canonical order.
[[nodiscard]] const std::vector<std::string>& known_strategies();

/// Comma-separated list of valid scenario names (for usage messages).
[[nodiscard]] const char* strategy_names();

/// Parses a `--campaign` string against the strategy registry above
/// (adversary::parse_campaign with known_strategies() as the name list).
/// nullopt + a single-line actionable message in *error on failure.
[[nodiscard]] std::optional<adversary::CampaignSpec> parse_campaign_spec(
    const std::string& text, std::string* error = nullptr);

/// Builds the CampaignStrategy for a campaign string, wiring make_strategy
/// (with `opts`) as the per-phase sub-strategy factory. The string must
/// parse — run parse_campaign_spec first; this asserts on failure.
[[nodiscard]] std::unique_ptr<adversary::Strategy> make_campaign_strategy(
    const std::string& campaign, const StrategyOptions& opts = {});

/// The canonical trace columns: step,op,target,new_node,n,rounds,messages,
/// topology_changes,batch_inserts,batch_deletes,walk_epochs,used_type2,
/// max_degree,gap,ops,op_hops,opt_hops,failed_lookups,failed_writes,
/// stretch,moved_keys,rehash_messages,vtime,in_flight,dropped (stretch =
/// op_hops/opt_hops, blank when no routed op — matching the summary JSON,
/// which omits mean_stretch in that case; the traffic columns are 0/blank
/// when the spec carries no workload; the trailing event columns read
/// vtime == step, 0, 0 on the sync engine).
/// Shared by trace_csv below and the streaming CsvTraceSink (sim/sinks.h)
/// so the two emission paths can never drift.
[[nodiscard]] const std::vector<std::string>& trace_csv_header();

/// One StepRecord rendered into the trace_csv_header() columns.
[[nodiscard]] std::vector<std::string> trace_csv_cells(const StepRecord& r);

/// The full per-step trace as CSV (stable header, stable formatting; see
/// trace_csv_header for the columns).
[[nodiscard]] std::string trace_csv(const ScenarioResult& result);

/// Aggregates as a single JSON object.
[[nodiscard]] std::string summary_json(const ScenarioResult& result);

}  // namespace dex::sim
