#pragma once

/// \file experiment.h
/// The declarative sweep layer over the single-trial ScenarioRunner kernel:
/// the paper's headline claims are comparative (DEX vs. flooding, Law–Siu,
/// flip-chain, Xheal across populations, batch sizes and adversaries), so
/// the unit of experimentation here is a *plan* — a grid of backends ×
/// strategies × populations × batch sizes × seeds — not a hand-rolled
/// nested loop per bench.
///
/// ExperimentPlan::expand() turns the grid into a deterministic list of
/// fully self-describing TrialSpecs (spec + overlay factory + strategy
/// factory); the Executor runs them on a bounded thread pool, each trial
/// owning its overlay/strategy/RNG, and delivers results and sink events in
/// trial-index order — so output is byte-identical whatever the thread
/// count or completion order.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/overlay.h"
#include "sim/scenario.h"
#include "sim/sinks.h"

namespace dex::sim {

/// The salt folded into a trial seed to derive the overlay's internal seed:
/// the adversary's random stream (spec.seed, drives the strategy) must be
/// independent of the backend's own coins (§2 hides only the algorithm's
/// future flips). Same derivation the CLI has always used, so a one-trial
/// plan reproduces the classic single-run output byte-for-byte.
inline constexpr std::uint64_t kOverlaySeedSalt = 0x9e3779b97f4a7c15ULL;

[[nodiscard]] inline std::uint64_t overlay_seed(std::uint64_t trial_seed) {
  return trial_seed ^ kOverlaySeedSalt;
}

/// One grid point, fully self-describing: everything the Executor needs to
/// run the trial on any thread — the resolved ScenarioSpec plus factories
/// for the overlay and the strategy (fresh objects per trial; strategies
/// are stateful). expand() wires the default factories from the name
/// registries (make_overlay / make_strategy) *after* the plan's customize
/// hook has run, from the trial's final backend/n0/spec.seed/opts — so a
/// hook that remaps those fields reaches the constructed objects; a hook
/// that installs its own factory keeps it.
struct TrialSpec {
  std::size_t index = 0;
  std::string backend;
  std::string scenario;
  std::size_t n0 = 0;
  ScenarioSpec spec;
  StrategyOptions opts;
  std::function<std::unique_ptr<HealingOverlay>()> make_overlay;
  std::function<std::unique_ptr<adversary::Strategy>()> make_strategy;

  [[nodiscard]] TrialInfo info() const {
    return TrialInfo{index, backend, scenario, n0, spec.seed,
                     spec.batch_size};
  }
};

/// Declarative sweep grid. expand() emits the cross product in a fixed
/// nesting order — backends, then scenarios, then populations, then batch
/// sizes, then seeds innermost — so consecutive trials are seed replicates
/// of one configuration and the trial index is a stable join key across
/// runs. Per-trial deviations from the grid (per-backend step caps, custom
/// overlay construction, label suffixes) go through `customize`, which runs
/// last on every expanded TrialSpec.
struct ExperimentPlan {
  std::vector<std::string> backends{"dex-worstcase"};
  std::vector<std::string> scenarios{"churn"};
  std::vector<std::size_t> populations{64};
  std::vector<std::size_t> batch_sizes{1};
  std::vector<std::uint64_t> seeds{1};
  /// Template for every trial's ScenarioSpec; expand() fills seed,
  /// batch_size and (when empty) label per grid point.
  ScenarioSpec base;
  StrategyOptions opts;
  std::function<void(TrialSpec&)> customize;

  [[nodiscard]] std::size_t trial_count() const {
    return backends.size() * scenarios.size() * populations.size() *
           batch_sizes.size() * seeds.size();
  }

  /// The deterministic trial list. Aborts (DEX_ASSERT) on unknown backend
  /// or scenario names and on an empty axis — a malformed plan is a harness
  /// bug, not a workload.
  [[nodiscard]] std::vector<TrialSpec> expand() const;
};

struct ExecutorOptions {
  /// Worker threads; 0 = hardware concurrency. Results never depend on it.
  std::size_t jobs = 1;
  /// Threads each trial may use *inside* one churn step (walk port
  /// enumeration — HealingOverlay::set_intra_jobs). Composes with `jobs`:
  /// total concurrency ≈ jobs * trial_jobs. Byte-identical results for
  /// every value; worth raising only for few-but-huge trials (one n=1M
  /// trial wants intra-step threads, a 3000-trial sweep wants inter-trial
  /// ones).
  unsigned trial_jobs = 1;
  /// Forward every StepRecord to the sinks (on_step). Off saves the
  /// per-step buffering when only summaries are consumed.
  bool stream_steps = true;
  /// Return the per-trial ScenarioResults from run(). Off keeps run()'s
  /// footprint independent of the trial count — sinks are then the only
  /// consumers (the CLI's long-sweep mode).
  bool collect_results = true;
};

/// Runs trials concurrently on a bounded pool. Each worker owns its trial's
/// overlay/strategy/RNG end to end, so a trial's bytes depend only on its
/// TrialSpec; the executor re-orders completion so sinks and results see
/// trial-index order. In-flight step buffers are bounded by a reorder
/// window of 2*jobs trials — peak memory is O(jobs * steps), independent of
/// the trial count.
class Executor {
 public:
  explicit Executor(ExecutorOptions opts = {}) : opts_(opts) {}

  /// Borrowed sink; must outlive run(). Events are delivered serialized, in
  /// trial-index order.
  void add_sink(MetricSink& sink) { sinks_.push_back(&sink); }

  /// Runs every trial (trial i = trials[i]; TrialSpec::index is rewritten
  /// to the position so concatenated lists stay coherent). Returns the
  /// per-trial results in index order, or an empty vector when
  /// collect_results is off.
  std::vector<ScenarioResult> run(std::vector<TrialSpec> trials);

 private:
  ExecutorOptions opts_;
  std::vector<MetricSink*> sinks_;
};

}  // namespace dex::sim
