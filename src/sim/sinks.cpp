#include "sim/sinks.h"

#include "metrics/emit.h"

namespace dex::sim {

void CsvTraceSink::on_trial_start(const TrialInfo& trial) {
  (void)trial;
  if (header_written_) return;
  header_written_ = true;
  std::vector<std::string> header;
  if (trial_column_) header.push_back("trial");
  const auto& cols = trace_csv_header();
  header.insert(header.end(), cols.begin(), cols.end());
  os_ << metrics::csv_line(header);
}

void CsvTraceSink::on_step(const TrialInfo& trial, const StepRecord& rec) {
  std::vector<std::string> cells;
  if (trial_column_) cells.push_back(std::to_string(trial.index));
  auto step_cells = trace_csv_cells(rec);
  cells.insert(cells.end(), std::make_move_iterator(step_cells.begin()),
               std::make_move_iterator(step_cells.end()));
  os_ << metrics::csv_line(cells);
}

void JsonSummarySink::on_trial_end(const TrialInfo& trial,
                                   const ScenarioResult& result) {
  std::string line = summary_json(result);
  if (trial_field_) {
    // summary_json renders a flat object; lead it with the trial index so
    // JSONL consumers can join lines back to the plan without parsing
    // labels.
    line = "{\"trial\": " + std::to_string(trial.index) + ", " +
           line.substr(1);
  }
  os_ << line << '\n';
}

}  // namespace dex::sim
