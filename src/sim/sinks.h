#pragma once

/// \file sinks.h
/// Streaming metric sinks: the experiment-level replacement for the
/// materialize-then-emit pattern (ScenarioResult::trace + trace_csv /
/// summary_json) and for per-bench StepObserver glue. A MetricSink receives
/// the life of every trial as a stream — on_trial_start, one on_step per
/// applied ChurnBatch, on_trial_end with the aggregates — so arbitrarily
/// long sweeps write CSV/JSON to disk in O(1) memory per in-flight trial
/// instead of holding every trace.
///
/// Delivery contract (what the Executor in sim/experiment.h guarantees and
/// the conformance tests in tests/test_experiment.cpp pin down):
///  - events of one trial are contiguous and ordered: start, steps, end.
///    Sync-engine trials deliver steps in step order; event-engine trials
///    (ScenarioSpec::event.enabled) deliver them in settlement order — the
///    order batches finished applying under latency, which the StepRecord's
///    step/vtime fields disambiguate — and that order is still deterministic
///    for a given spec + seed;
///  - trials are delivered in trial-index order, regardless of how many
///    worker threads ran them or which finished first;
///  - calls are serialized (never concurrent), so sink implementations need
///    no locking of their own. MultiSink still carries a mutex so it is
///    also safe when driven from several threads directly, without the
///    Executor's ordering layer.

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/scenario.h"

namespace dex::sim {

/// Identity of one trial in a sweep, handed to every sink callback. `index`
/// is the trial's position in the expanded plan — the deterministic
/// ordering key — and the remaining fields describe the grid point.
struct TrialInfo {
  std::size_t index = 0;
  std::string backend;
  std::string scenario;
  std::size_t n0 = 0;
  std::uint64_t seed = 0;
  std::size_t batch_size = 1;
};

class MetricSink {
 public:
  virtual ~MetricSink() = default;

  virtual void on_trial_start(const TrialInfo& trial) { (void)trial; }
  /// One applied ChurnBatch. Only called when the driver streams steps
  /// (Executor: stream_steps, CLI: trace emission on).
  virtual void on_step(const TrialInfo& trial, const StepRecord& rec) {
    (void)trial;
    (void)rec;
  }
  /// Aggregates for the finished trial. `result.trace` is empty — the whole
  /// point of the sink interface is that nothing materializes it.
  virtual void on_trial_end(const TrialInfo& trial,
                            const ScenarioResult& result) {
    (void)trial;
    (void)result;
  }
};

/// Streams the per-step trace as CSV, one row per StepRecord, in the exact
/// trace_csv() format. With the leading trial column (default) rows from a
/// whole sweep share one file and stay attributable; without it, a
/// single-trial stream is byte-identical to trace_csv(result) on the same
/// run — the CLI's compatibility mode.
class CsvTraceSink final : public MetricSink {
 public:
  explicit CsvTraceSink(std::ostream& os, bool trial_column = true)
      : os_(os), trial_column_(trial_column) {}

  void on_trial_start(const TrialInfo& trial) override;
  void on_step(const TrialInfo& trial, const StepRecord& rec) override;

 private:
  std::ostream& os_;
  bool trial_column_;
  bool header_written_ = false;
};

/// Streams one summary_json() object per finished trial, newline-delimited
/// (JSONL). With the trial field (default) each line leads with
/// {"trial": i, ...}; without it, a single-trial stream matches the legacy
/// stderr summary byte-for-byte.
class JsonSummarySink final : public MetricSink {
 public:
  explicit JsonSummarySink(std::ostream& os, bool trial_field = true)
      : os_(os), trial_field_(trial_field) {}

  void on_trial_end(const TrialInfo& trial,
                    const ScenarioResult& result) override;

 private:
  std::ostream& os_;
  bool trial_field_;
};

/// Collects per-trial aggregates (info + trace-free ScenarioResult) for
/// in-process consumers — the benches' replacement for holding full
/// ScenarioResults. O(trials) memory, but each row is a fixed-size summary,
/// never a trace.
class AggregateSink final : public MetricSink {
 public:
  struct Row {
    TrialInfo info;
    ScenarioResult result;
  };

  void on_trial_end(const TrialInfo& trial,
                    const ScenarioResult& result) override {
    rows_.push_back({trial, result});
  }

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

/// Fans every event out to a list of borrowed sinks, serializing delivery
/// under its own mutex — safe to share between threads even without the
/// Executor's ordering (at the price of arbitrary event interleaving;
/// order-sensitive sinks should sit behind the Executor instead).
class MultiSink final : public MetricSink {
 public:
  void add(MetricSink& sink) { sinks_.push_back(&sink); }

  void on_trial_start(const TrialInfo& trial) override {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto* s : sinks_) s->on_trial_start(trial);
  }
  void on_step(const TrialInfo& trial, const StepRecord& rec) override {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto* s : sinks_) s->on_step(trial, rec);
  }
  void on_trial_end(const TrialInfo& trial,
                    const ScenarioResult& result) override {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto* s : sinks_) s->on_trial_end(trial, result);
  }

 private:
  std::mutex mu_;
  std::vector<MetricSink*> sinks_;
};

}  // namespace dex::sim
