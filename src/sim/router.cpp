#include "sim/router.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/assert.h"

namespace dex::sim {

namespace {

std::uint64_t edge_key(std::uint64_t from, std::uint64_t to) {
  DEX_ASSERT(from < (1ULL << 32) && to < (1ULL << 32));
  return (from << 32) | to;
}

struct Flight {
  std::size_t packet_idx;
  std::size_t position;  ///< index into path; at path[position]
};

}  // namespace

RoutingResult route_packets(const std::vector<Packet>& packets,
                            support::Rng& rng, std::uint64_t round_limit) {
  RoutingResult res;
  std::vector<Flight> flights;
  flights.reserve(packets.size());
  std::size_t active = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    DEX_ASSERT_MSG(!packets[i].path.empty(), "packet with empty path");
    flights.push_back({i, 0});
    if (packets[i].path.size() > 1) ++active;
  }

  std::unordered_set<std::uint64_t> used_edges;
  std::unordered_map<std::uint64_t, std::uint64_t> queue_depth;

  while (active > 0 && res.rounds < round_limit) {
    ++res.rounds;
    used_edges.clear();
    queue_depth.clear();

    // Farthest-to-go first; random tie-break for fairness.
    rng.shuffle(flights);
    std::stable_sort(flights.begin(), flights.end(),
                     [&](const Flight& a, const Flight& b) {
                       const std::size_t ra =
                           packets[a.packet_idx].path.size() - a.position;
                       const std::size_t rb =
                           packets[b.packet_idx].path.size() - b.position;
                       return ra > rb;
                     });

    for (Flight& f : flights) {
      const auto& path = packets[f.packet_idx].path;
      if (f.position + 1 >= path.size()) continue;  // delivered
      // Fold the round's queue maximum in at increment time: the depth map
      // only ever grows within a round, so the running max equals the
      // end-of-round scan it replaces — without iterating the unordered map
      // in hash order.
      res.max_queue = std::max(res.max_queue, ++queue_depth[path[f.position]]);
      const std::uint64_t key =
          edge_key(path[f.position], path[f.position + 1]);
      if (used_edges.contains(key)) continue;  // edge busy this round
      used_edges.insert(key);
      ++f.position;
      ++res.messages;
      if (f.position + 1 >= path.size()) --active;
    }
  }

  res.all_delivered = (active == 0);
  return res;
}

}  // namespace dex::sim
