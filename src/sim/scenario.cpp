#include "sim/scenario.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <unordered_set>
#include <utility>

#include "graph/spectral.h"
#include "metrics/emit.h"
#include "sim/event/engine.h"
#include "support/assert.h"

namespace dex::sim {

// ------------------------------------------------------------- CachedView

CachedView::CachedView(const HealingOverlay& overlay)
    : overlay_(overlay), view_(make_view(overlay)) {
  ports_fn_ = [this](graph::NodeId u, std::vector<graph::NodeId>& out) {
    const bool ok = overlay_.live_ports(u, out);
    // Callers probe the capability before choosing this enumerator, and a
    // precise journal delta implies the overlay is in a calm (enumerable)
    // state — see the staggered full-marks in dex/staggered.cpp.
    DEX_ASSERT_MSG(ok, "live_ports withdrawn mid-build");
  };
  // Start from the canonical make_view wiring and overwrite only the three
  // expensive components with memoizing versions.
  view_.alive_nodes = [this] {
    if (!nodes_) nodes_ = overlay_.alive_nodes();
    return *nodes_;
  };
  view_.snapshot = [this] {
    if (!snapshot_) snapshot_ = overlay_.snapshot();
    return *snapshot_;
  };
  view_.alive_mask = [this] {
    if (!mask_) mask_ = overlay_.alive_mask();
    return *mask_;
  };
  view_.live_csr = [this]() -> const graph::CsrView& {
    if (!csr_valid_) {
      if (!mask_) mask_ = overlay_.alive_mask();
      // Prefer the overlay's own row enumerator: rows come out in the same
      // order apply_delta() re-derives them, so later advance() calls can
      // patch this build in place instead of discarding it. The capability
      // is probed per build (DEX withdraws it during staggered windows).
      bool ports_ok = false;
      {
        std::vector<graph::NodeId> probe;
        for (graph::NodeId u = 0; u < mask_->size(); ++u) {
          if ((*mask_)[u]) {
            ports_ok = overlay_.live_ports(u, probe);
            break;
          }
        }
      }
      if (ports_ok) {
        csr_.build_from_ports(*mask_, ports_fn_);
        csr_ports_canonical_ = true;
      } else {
        // Fallback: materialize the Multigraph (memoized, so whoever asks
        // first pays it at most once per step). Rows land in snapshot port
        // order — a valid view, but not patchable.
        if (!snapshot_) snapshot_ = overlay_.snapshot();
        csr_.build(*snapshot_, *mask_);
        csr_ports_canonical_ = false;
      }
      csr_valid_ = true;
    }
    return csr_;
  };
}

void CachedView::invalidate() {
  nodes_.reset();
  snapshot_.reset();
  mask_.reset();
  csr_valid_ = false;
}

void CachedView::advance() {
  nodes_.reset();
  snapshot_.reset();
  mask_.reset();
  delta_.clear();
  // Always drain — even when the standing CSR is unpatchable — so the
  // journal never carries deltas across a rebuild boundary. The first drain
  // also installs the journal on the overlay (and reports "full" for the
  // untracked history before it).
  const bool drained = overlay_.drain_view_delta(delta_);
  if (!drained || delta_.full || !csr_valid_ || !csr_ports_canonical_) {
    // No journal, coarse delta, or a snapshot-ordered view: fall back to
    // the lazy from-scratch rebuild on next use.
    csr_valid_ = false;
  } else if (!delta_.empty()) {
    csr_.apply_delta(delta_, ports_fn_);
  }
  // Opt-in cross-check: DEX_CHECK_CSR=1 rebuilds a reference view after
  // every patch and asserts semantic equality (tests and debugging; the
  // rebuild obviously forfeits the incremental speedup).
  // det: opt-in debug gate — flips extra *checking* on, never changes what
  // the run computes or emits.
  static const bool check_csr = std::getenv("DEX_CHECK_CSR") != nullptr;
  if (check_csr && csr_valid_) {
    if (!mask_) mask_ = overlay_.alive_mask();
    graph::CsrView ref;
    ref.build_from_ports(*mask_, ports_fn_);
    DEX_ASSERT_MSG(csr_.equal_to(ref),
                   "incremental CSR diverged from a fresh rebuild");
  }
}

// --------------------------------------------------------- ScenarioRunner

namespace {

/// Sanity checks on a strategy-produced batch before it reaches the
/// overlay: the per-event contract of ChurnBatch (alive, distinct victims,
/// attach points surviving) plus the runner's own never-empty-the-network
/// rule. Feasibility for DEX's parallel path is *not* required here — the
/// overlay falls back to the sequential path on its own.
void validate_batch(const HealingOverlay& overlay,
                    const sim::ChurnBatch& batch) {
  DEX_ASSERT_MSG(overlay.n() > batch.victims.size() + 2,
                 "batch would delete the network away");
  std::unordered_set<graph::NodeId> seen;
  seen.reserve(batch.victims.size());
  for (graph::NodeId v : batch.victims) {
    DEX_ASSERT_MSG(overlay.alive(v), "strategy chose a dead victim");
    DEX_ASSERT_MSG(seen.insert(v).second,
                   "strategy chose the same victim twice in one batch");
  }
  for (graph::NodeId a : batch.attach_to) {
    DEX_ASSERT_MSG(overlay.alive(a), "strategy chose a dead attach point");
    DEX_ASSERT_MSG(!seen.contains(a),
                   "strategy attached a newcomer to a batch victim");
  }
}

}  // namespace

// Shared with the event engine (sim/event/engine.h): both engines mutate
// the overlay and fill StepRecords through exactly these two functions.
namespace detail {

void apply_action(HealingOverlay& overlay, const adversary::ChurnAction& a,
                  StepRecord& rec) {
  rec.insert = a.insert;
  rec.target = a.target;
  if (a.insert) {
    DEX_ASSERT_MSG(overlay.alive(a.target),
                   "strategy chose a dead attach point");
    rec.new_node = overlay.insert(a.target);
    rec.batch_inserts = 1;
  } else {
    DEX_ASSERT_MSG(overlay.alive(a.target), "strategy chose a dead victim");
    DEX_ASSERT_MSG(overlay.n() > 2, "scenario would delete the network away");
    overlay.remove(a.target);
    rec.new_node = graph::kInvalidNode;
    rec.batch_deletes = 1;
  }
}

/// One batch step through the unified apply() surface; fills the record's
/// per-event fields when the batch happens to be a single event (so
/// batch_size=1 traces keep the PR-1 shape) and returns the outcome for
/// aggregate bookkeeping.
BatchOutcome apply_batch_step(HealingOverlay& overlay,
                              const sim::ChurnBatch& batch,
                              StepRecord& rec) {
  validate_batch(overlay, batch);
  const BatchOutcome out = overlay.apply(batch);
  rec.cost = out.cost;
  rec.batch_inserts = batch.attach_to.size();
  rec.batch_deletes = batch.victims.size();
  rec.walk_epochs = out.walk_epochs;
  rec.used_type2 = out.used_type2;
  if (batch.size() == 1) {
    rec.insert = !batch.attach_to.empty();
    rec.target = rec.insert ? batch.attach_to.front() : batch.victims.front();
    rec.new_node = rec.insert ? out.inserted.front() : graph::kInvalidNode;
  } else {
    rec.insert = false;
    rec.target = graph::kInvalidNode;
    rec.new_node = graph::kInvalidNode;
  }
  return out;
}

}  // namespace detail

ResolvedBounds resolve_bounds(const ScenarioSpec& spec, std::size_t n0) {
  ResolvedBounds b;
  b.min_n = spec.min_n ? spec.min_n : std::max<std::size_t>(n0 / 2, 4);
  b.max_n = spec.max_n ? spec.max_n : 2 * n0;
  return b;
}

ScenarioRunner::ScenarioRunner(HealingOverlay& overlay,
                               adversary::Strategy& strategy,
                               ScenarioSpec spec)
    : overlay_(overlay), strategy_(strategy), spec_(spec) {}

ScenarioResult ScenarioRunner::run() {
  if (spec_.event.enabled) {
    // The event engine shares this runner's entire surface (spec, observer,
    // sinks above), so the Executor/CLI never learn which engine ran — the
    // choice is data, flowing through ExperimentPlan like any other knob.
    EventEngine engine(overlay_, strategy_, spec_);
    engine.set_observer(observer_);
    return engine.run();
  }
  DEX_ASSERT_MSG(!spec_.serve.enabled,
                 "serve mode needs the event engine's clock");
  support::Rng rng(spec_.seed);
  const std::size_t base = overlay_.n();
  const auto bounds = resolve_bounds(spec_, base);
  const std::size_t min_n = bounds.min_n;
  const std::size_t max_n = bounds.max_n;
  DEX_ASSERT_MSG(bounds.valid(), "degenerate population bounds");

  CachedView cache(overlay_);
  const adversary::AdversaryView& view = cache.view();
  // Lend the maintained CSR back to the overlay for opportunistic reads
  // (batch preflight connectivity probes). The provider outlives nothing:
  // the guard detaches it before `cache` dies, exceptions included.
  overlay_.set_live_view_provider(
      [&cache] { return cache.live_csr_if_valid(); });
  struct ProviderGuard {
    HealingOverlay& overlay;
    ~ProviderGuard() { overlay.set_live_view_provider({}); }
  } provider_guard{overlay_};

  using Clock = std::chrono::steady_clock;
  const bool timing = spec_.time_phases;
  Clock::time_point mark;
  // det: phase-timing instrumentation — feeds the perf-attribution JSON
  // only, never simulation state, so wall-clock reads cannot leak.
  const auto tic = [&] {
    if (timing) mark = Clock::now();
  };
  // det: see tic — instrumentation only.
  const auto toc = [&](double& acc) {
    if (timing)
      acc += std::chrono::duration<double, std::micro>(Clock::now() - mark)
                 .count();
  };

  // The traffic engine's RNG is salted off the spec seed, so serving
  // requests never perturbs the adversary stream: the same spec with
  // traffic off replays the identical churn.
  std::unique_ptr<TrafficEngine> traffic;
  if (spec_.traffic.enabled()) {
    traffic =
        std::make_unique<TrafficEngine>(overlay_, spec_.traffic, spec_.seed);
  }

  // A non-empty campaign reshapes the loop in two ways: every step goes
  // through next_batch (so rate-gated/quiet phases can express themselves
  // as empty batches), and the traffic budget follows the per-step load
  // curve. The spec is re-parsed here only for the load curve — the
  // strategy object the caller handed us already embodies the phases.
  std::optional<adversary::CampaignSpec> campaign;
  if (!spec_.campaign.empty()) {
    std::string campaign_err;
    campaign = parse_campaign_spec(spec_.campaign, &campaign_err);
    DEX_ASSERT_MSG(campaign.has_value(), "invalid campaign spec");
  }

  ScenarioResult result;
  result.backend = overlay_.name();
  result.spec = spec_;
  result.start_n = base;
  if (spec_.record_trace) result.trace.reserve(spec_.steps);

  if (spec_.warmup_steps > 0) {
    adversary::RandomChurn warmup(spec_.warmup_insert_prob);
    for (std::size_t t = 0; t < spec_.warmup_steps; ++t) {
      StepRecord scratch;
      detail::apply_action(overlay_, warmup.next(view, rng, min_n, max_n),
                           scratch);
      cache.advance();
    }
  }

  std::vector<double> rounds, messages, topology;
  rounds.reserve(spec_.steps);
  messages.reserve(spec_.steps);
  topology.reserve(spec_.steps);

  for (std::size_t t = 0; t < spec_.steps; ++t) {
    StepRecord rec;
    rec.step = t;
    // Lockstep virtual time: one tick per step, so the sync engine's vtime
    // column coincides with the event engine's at latency fixed:0 (whose
    // default period is also 1 tick).
    rec.vtime = t;
    // Burst pattern: every step is a batch when burst_every is 0; otherwise
    // only every burst_every-th step bursts and the rest are single events.
    const bool burst = spec_.burst_every == 0 || t % spec_.burst_every == 0;
    const std::size_t want =
        burst ? std::max<std::size_t>(spec_.batch_size, 1) : 1;
    sim::ChurnBatch batch;
    if (campaign) {
      // Campaign steps are batch-first even at want == 1: empty batches are
      // how quiet phases and rate gates manifest, and next() cannot say
      // "nothing this step".
      batch = strategy_.next_batch(view, rng, min_n, max_n, want);
    } else if (want <= 1) {
      // Single-event steps keep the PR-1 decision path (one next() draw, so
      // legacy specs replay the same strategy stream) but the event goes
      // through the same apply() surface as every batch — one churn
      // entry point, and backend-attributed fields (used_type2) populate
      // on single-event traces too.
      const adversary::ChurnAction a = strategy_.next(view, rng, min_n, max_n);
      if (a.insert) {
        batch.attach_to.push_back(a.target);
      } else {
        batch.victims.push_back(a.target);
      }
    } else {
      batch = strategy_.next_batch(view, rng, min_n, max_n, want);
    }
    // The hotspot workload notes the region about to churn (adjacency from
    // its own cached pre-churn topology).
    if (traffic) traffic->observe_churn(batch, view);
    tic();
    const BatchOutcome out = detail::apply_batch_step(overlay_, batch, rec);
    toc(result.churn_us);
    tic();
    cache.advance();
    toc(result.view_us);
    if (want > 1 && out.parallel) ++result.parallel_steps;

    rec.n = overlay_.n();
    if (traffic) {
      tic();
      TrafficStepStats ts;
      if (campaign) {
        // Scale the step's op budget by the campaign load curve through the
        // documented begin_step + N × serve_one ≡ step equivalence, so a
        // flat load=1 campaign stays byte-identical to no campaign at all.
        ts = traffic->begin_step(view);
        const std::size_t ops =
            campaign->scaled_ops(spec_.traffic.ops_per_step, t);
        for (std::size_t i = 0; i < ops; ++i) traffic->serve_one(ts);
      } else {
        ts = traffic->step(view);
      }
      toc(result.traffic_us);
      rec.ops = ts.ops;
      rec.op_hops = ts.op_hops;
      rec.opt_hops = ts.opt_hops;
      rec.failed_lookups = ts.failed_lookups;
      rec.failed_writes = ts.failed_writes;
      rec.moved_keys = ts.moved_keys;
      rec.rehash_messages = ts.rehash_messages;
      result.total_ops += ts.ops;
      result.total_op_hops += ts.op_hops;
      result.total_opt_hops += ts.opt_hops;
      result.total_failed_lookups += ts.failed_lookups;
      result.total_failed_writes += ts.failed_writes;
      result.total_moved_keys += ts.moved_keys;
      result.total_rehash_messages += ts.rehash_messages;
    }
    result.total_inserts += rec.batch_inserts;
    result.total_deletes += rec.batch_deletes;
    result.total_walk_epochs += rec.walk_epochs;
    if (rec.used_type2) ++result.type2_steps;
    if (spec_.measure_degree) {
      rec.max_degree = overlay_.max_degree();
      result.max_degree = std::max(result.max_degree, rec.max_degree);
    }
    if (spec_.gap_every > 0 && t % spec_.gap_every == 0) {
      // Clamp at 0: near-disconnection the solver's Rayleigh estimate can
      // round to a tiny negative, which would collide with the -1 "not
      // sampled" sentinel.
      rec.gap = std::max(
          0.0, graph::spectral_gap(view.snapshot(), view.alive_mask()).gap);
      result.min_gap = std::min(result.min_gap, rec.gap);
    }

    rounds.push_back(static_cast<double>(rec.cost.rounds));
    messages.push_back(static_cast<double>(rec.cost.messages));
    topology.push_back(static_cast<double>(rec.cost.topology_changes));
    result.total += rec.cost;

    if (observer_) {
      observer_(rec, overlay_);
      // The observer holds a mutable overlay reference; advance (not plain
      // invalidate) so its mutations drain from the journal rather than
      // leaking into the next step's delta against a rebuilt base.
      cache.advance();
    }
    if (spec_.record_trace) result.trace.push_back(rec);
  }

  result.rounds = metrics::summarize(std::move(rounds));
  result.messages = metrics::summarize(std::move(messages));
  result.topology = metrics::summarize(std::move(topology));
  result.final_n = overlay_.n();
  return result;
}

// ------------------------------------------------------- strategy factory

std::unique_ptr<adversary::Strategy> make_strategy(
    const std::string& scenario, const StrategyOptions& opts) {
  using namespace adversary;
  if (scenario == "churn")
    return std::make_unique<RandomChurn>(opts.insert_prob);
  if (scenario == "insert-only") return std::make_unique<InsertOnly>();
  if (scenario == "delete-only") return std::make_unique<DeleteOnly>();
  if (scenario == "oscillate")
    return std::make_unique<Oscillate>(opts.half_period);
  if (scenario == "targeted") return std::make_unique<CoordinatorKiller>();
  if (scenario == "load-attack") return std::make_unique<LoadAttack>();
  if (scenario == "spectral") return std::make_unique<SpectralAttack>();
  if (scenario == "greedy-spectral")
    return std::make_unique<GreedySpectralDeletion>(opts.candidates);
  if (scenario == "burst")
    return std::make_unique<BurstChurn>(opts.insert_prob);
  if (scenario == "flash-crowd") return std::make_unique<FlashCrowd>();
  if (scenario == "mass-failure")
    return std::make_unique<CorrelatedFailure>();
  if (scenario == "oracle-bust") return std::make_unique<OracleBuster>();
  if (scenario == "chord-cut") return std::make_unique<ChordAttack>();
  if (scenario == "spectral-batch") return std::make_unique<SpectralBatch>();
  return nullptr;
}

const std::vector<std::string>& known_strategies() {
  static const std::vector<std::string> names{
      "churn",
      "insert-only",
      "delete-only",
      "oscillate",
      "targeted",
      "load-attack",
      "spectral",
      "greedy-spectral",
      "burst",
      "flash-crowd",
      "mass-failure",
      "oracle-bust",
      "chord-cut",
      "spectral-batch",
  };
  return names;
}

std::optional<adversary::CampaignSpec> parse_campaign_spec(
    const std::string& text, std::string* error) {
  std::string err;
  auto spec = adversary::parse_campaign(text, known_strategies(), err);
  if (!spec && error != nullptr) *error = err;
  return spec;
}

std::unique_ptr<adversary::Strategy> make_campaign_strategy(
    const std::string& campaign, const StrategyOptions& opts) {
  std::string err;
  auto spec = parse_campaign_spec(campaign, &err);
  DEX_ASSERT_MSG(spec.has_value(), "invalid campaign spec");
  return std::make_unique<adversary::CampaignStrategy>(
      std::move(*spec), [opts](const std::string& name) {
        return make_strategy(name, opts);
      });
}

const char* strategy_names() {
  // Joined from the registry so the usage string can never drift from what
  // make_strategy actually accepts.
  static const std::string joined = [] {
    std::string s;
    for (const auto& name : known_strategies()) {
      if (!s.empty()) s += ", ";
      s += name;
    }
    return s;
  }();
  return joined.c_str();
}

// --------------------------------------------------------------- emission

const std::vector<std::string>& trace_csv_header() {
  static const std::vector<std::string> header{
      "step",
      "op",
      "target",
      "new_node",
      "n",
      "rounds",
      "messages",
      "topology_changes",
      "batch_inserts",
      "batch_deletes",
      "walk_epochs",
      "used_type2",
      "max_degree",
      "gap",
      "ops",
      "op_hops",
      "opt_hops",
      "failed_lookups",
      "failed_writes",
      "stretch",
      "moved_keys",
      "rehash_messages",
      "vtime",
      "in_flight",
      "dropped",
      "shed",
      "timeouts",
      "qdepth",
  };
  return header;
}

std::vector<std::string> trace_csv_cells(const StepRecord& r) {
  const bool single = r.batch_inserts + r.batch_deletes == 1;
  return {std::to_string(r.step),
          single ? (r.insert ? "insert" : "delete") : "batch",
          r.target == graph::kInvalidNode ? std::string()
                                          : std::to_string(r.target),
          r.new_node == graph::kInvalidNode ? std::string()
                                            : std::to_string(r.new_node),
          std::to_string(r.n),
          std::to_string(r.cost.rounds),
          std::to_string(r.cost.messages),
          std::to_string(r.cost.topology_changes),
          std::to_string(r.batch_inserts),
          std::to_string(r.batch_deletes),
          std::to_string(r.walk_epochs),
          r.used_type2 ? "1" : "0",
          std::to_string(r.max_degree),
          r.gap < 0 ? std::string() : metrics::format_double(r.gap),
          std::to_string(r.ops),
          std::to_string(r.op_hops),
          std::to_string(r.opt_hops),
          std::to_string(r.failed_lookups),
          std::to_string(r.failed_writes),
          r.opt_hops == 0 ? std::string()
                          : metrics::format_double(
                                static_cast<double>(r.op_hops) /
                                static_cast<double>(r.opt_hops)),
          std::to_string(r.moved_keys),
          std::to_string(r.rehash_messages),
          std::to_string(r.vtime),
          std::to_string(r.in_flight),
          std::to_string(r.dropped),
          std::to_string(r.shed),
          std::to_string(r.timeouts),
          std::to_string(r.queue_peak)};
}

std::string trace_csv(const ScenarioResult& result) {
  metrics::CsvWriter csv(trace_csv_header());
  for (const auto& r : result.trace) csv.add_row(trace_csv_cells(r));
  return csv.to_string();
}

namespace {

metrics::JsonObject summary_obj(const metrics::Summary& s) {
  metrics::JsonObject o;
  o.add("mean", s.mean)
      .add("p50", s.p50)
      .add("p95", s.p95)
      .add("p99", s.p99)
      .add("max", s.max);
  return o;
}

}  // namespace

std::string summary_json(const ScenarioResult& result) {
  const auto bounds = resolve_bounds(result.spec, result.start_n);
  metrics::JsonObject o;
  o.add("backend", result.backend);
  if (!result.spec.label.empty()) o.add("scenario", result.spec.label);
  if (!result.spec.campaign.empty()) o.add("campaign", result.spec.campaign);
  o.add("seed", result.spec.seed)
      .add("steps", static_cast<std::uint64_t>(result.rounds.count))
      .add("batch_size", static_cast<std::uint64_t>(result.spec.batch_size))
      .add("start_n", static_cast<std::uint64_t>(result.start_n))
      .add("min_n", static_cast<std::uint64_t>(bounds.min_n))
      .add("max_n", static_cast<std::uint64_t>(bounds.max_n))
      .add("warmup_steps",
           static_cast<std::uint64_t>(result.spec.warmup_steps));
  if (result.spec.burst_every > 0)
    o.add("burst_every", static_cast<std::uint64_t>(result.spec.burst_every));
  o.add("batch_inserts_total",
        static_cast<std::uint64_t>(result.total_inserts))
      .add("batch_deletes_total",
           static_cast<std::uint64_t>(result.total_deletes))
      .add("total_walk_epochs", result.total_walk_epochs)
      .add("type2_steps", static_cast<std::uint64_t>(result.type2_steps))
      .add("parallel_steps",
           static_cast<std::uint64_t>(result.parallel_steps));
  if (result.spec.warmup_steps > 0)
    o.add("warmup_insert_prob", result.spec.warmup_insert_prob);
  if (result.spec.gap_every > 0)
    o.add("gap_every", static_cast<std::uint64_t>(result.spec.gap_every));
  o.add("final_n", static_cast<std::uint64_t>(result.final_n))
      .add("total_rounds", result.total.rounds)
      .add("total_messages", result.total.messages)
      .add("total_topology_changes", result.total.topology_changes)
      .add("rounds", summary_obj(result.rounds))
      .add("messages", summary_obj(result.messages))
      .add("topology_changes", summary_obj(result.topology));
  if (result.spec.measure_degree)
    o.add("max_degree", static_cast<std::uint64_t>(result.max_degree));
  if (result.spec.gap_every > 0) o.add("min_gap", result.min_gap);
  if (result.spec.traffic.enabled()) {
    const auto& t = result.spec.traffic;
    o.add("workload", t.workload)
        .add("ops_per_step", static_cast<std::uint64_t>(t.ops_per_step))
        .add("keyspace", static_cast<std::uint64_t>(t.keyspace))
        .add("read_fraction", t.read_fraction);
    if (t.workload != "uniform") o.add("zipf_s", t.zipf_s);
    o.add("total_ops", static_cast<std::uint64_t>(result.total_ops))
        .add("total_op_hops", result.total_op_hops)
        .add("total_opt_hops", result.total_opt_hops);
    // Same guard as the per-row CSV stretch cell: no routed op, no ratio —
    // the field is omitted rather than defaulted to a fictitious 1.0.
    if (result.total_opt_hops != 0) {
      o.add("mean_stretch", static_cast<double>(result.total_op_hops) /
                                static_cast<double>(result.total_opt_hops));
    }
    o.add("failed_lookups",
          static_cast<std::uint64_t>(result.total_failed_lookups))
        .add("failed_writes",
             static_cast<std::uint64_t>(result.total_failed_writes))
        .add("moved_keys", static_cast<std::uint64_t>(result.total_moved_keys))
        .add("rehash_messages", result.total_rehash_messages);
  }
  if (result.spec.event.enabled) {
    // The delivery regime, archived next to its outcomes; absent entirely
    // on sync-engine summaries so their bytes stay what they always were.
    const auto& e = result.spec.event;
    o.add("engine", std::string("event"))
        .add("latency", e.latency.to_string())
        .add("loss_rate", e.loss_rate)
        .add("straggler_fraction", e.straggler_fraction)
        .add("straggler_factor", e.straggler_factor)
        .add("period", e.period)
        .add("dropped_deliveries", result.total_dropped)
        .add("max_in_flight",
             static_cast<std::uint64_t>(result.max_in_flight));
  }
  if (result.spec.serve.enabled) {
    // The serving regime and its outcomes. `shards` is deliberately not
    // echoed: it only groups histograms (merge-invariant), and omitting it
    // keeps summaries byte-identical across shard counts — the property
    // tests/test_serve.cpp pins.
    const auto& sv = result.spec.serve;
    const auto& lat = result.serve_latency;
    metrics::JsonObject s;
    s.add("clients", static_cast<std::uint64_t>(sv.clients))
        .add("think_ticks", sv.think_ticks)
        .add("queue_depth", static_cast<std::uint64_t>(sv.queue_depth))
        .add("service_ticks", sv.service_ticks)
        .add("op_timeout", sv.op_timeout)
        .add("completed", static_cast<std::uint64_t>(result.serve_completed))
        .add("shed", static_cast<std::uint64_t>(result.serve_shed))
        .add("timeouts", static_cast<std::uint64_t>(result.serve_timeouts))
        .add("peak_queue",
             static_cast<std::uint64_t>(result.serve_peak_queue))
        .add("makespan", result.serve_makespan);
    if (result.serve_makespan > 0) {
      s.add("throughput", static_cast<double>(result.serve_completed) /
                              static_cast<double>(result.serve_makespan));
    }
    metrics::JsonObject l;
    l.add("mean", lat.mean())
        .add("p50", lat.quantile(0.50))
        .add("p99", lat.quantile(0.99))
        .add("p999", lat.quantile(0.999))
        .add("max", lat.max());
    s.add("latency", l);
    o.add("serve", s);
  }
  return o.to_string();
}

}  // namespace dex::sim
