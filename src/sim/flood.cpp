#include "sim/flood.h"

#include "graph/bfs.h"

namespace dex::sim {

StepCost flood_cost(const graph::Multigraph& g, graph::NodeId source,
                    const std::vector<bool>& alive) {
  StepCost c;
  c.rounds = 2ULL * graph::eccentricity(g, source, alive);
  std::uint64_t degree_sum = 0;
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    if (!alive.empty() && !alive[u]) continue;
    degree_sum += g.degree(u);
  }
  // Broadcast: every node forwards once over each incident edge => one
  // message per directed edge = degree_sum. Convergecast: one reply per
  // directed tree edge + suppressed duplicates, bounded by degree_sum again.
  c.messages = 2 * degree_sum;
  return c;
}

}  // namespace dex::sim
