#include "sim/token_engine.h"

#include <unordered_set>

#include "support/assert.h"

namespace dex::sim {

namespace {

/// Directed-edge key for the congestion set.
std::uint64_t edge_key(std::uint64_t from, std::uint64_t to) {
  // from/to are location ids < 2^32 in all our uses (vertices of a p-cycle
  // or node ids); assert and pack.
  DEX_ASSERT(from < (1ULL << 32) && to < (1ULL << 32));
  return (from << 32) | to;
}

}  // namespace

EngineResult run_walks(std::vector<Token> tokens, const PortsFn& ports,
                       support::Rng& rng, std::uint64_t round_limit,
                       const AcceptFn& accept) {
  EngineResult res;
  std::size_t active = 0;
  for (auto& t : tokens) {
    if (t.steps_remaining == 0) t.finished = true;
    if (!t.finished) ++active;
  }

  std::vector<std::size_t> order(tokens.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::unordered_set<std::uint64_t> used_edges;
  std::vector<std::uint64_t> port_buf;

  while (active > 0 && res.rounds < round_limit) {
    ++res.rounds;
    used_edges.clear();
    // Random service order each round — ties between tokens contending for
    // the same directed edge are broken arbitrarily in the model; randomizing
    // avoids systematic starvation of high-index tokens.
    rng.shuffle(order);
    for (std::size_t idx : order) {
      Token& t = tokens[idx];
      if (t.finished) continue;
      ports(t.location, port_buf);
      DEX_ASSERT_MSG(!port_buf.empty(), "token stranded at isolated location");
      const std::uint64_t next =
          port_buf[rng.below(port_buf.size())];
      const std::uint64_t key = edge_key(t.location, next);
      if (used_edges.contains(key)) continue;  // edge busy: wait a round
      used_edges.insert(key);
      t.location = next;
      ++res.messages;
      --t.steps_remaining;
      if (t.steps_remaining == 0 || (accept && accept(next))) {
        t.finished = true;
        --active;
      }
    }
  }

  res.all_finished = (active == 0);
  res.tokens = std::move(tokens);
  return res;
}

}  // namespace dex::sim
