#include "sim/token_engine.h"

#include <unordered_set>

#include "support/assert.h"
#include "support/worker_pool.h"

namespace dex::sim {

namespace {

/// Directed-edge key for the congestion set.
std::uint64_t edge_key(std::uint64_t from, std::uint64_t to) {
  // from/to are location ids < 2^32 in all our uses (vertices of a p-cycle
  // or node ids); assert and pack.
  DEX_ASSERT(from < (1ULL << 32) && to < (1ULL << 32));
  return (from << 32) | to;
}

}  // namespace

EngineResult run_walks(std::vector<Token> tokens, const PortsFn& ports,
                       support::Rng& rng, std::uint64_t round_limit,
                       const AcceptFn& accept, unsigned jobs) {
  EngineResult res;
  std::size_t active = 0;
  for (auto& t : tokens) {
    if (t.steps_remaining == 0) t.finished = true;
    if (!t.finished) ++active;
  }

  std::vector<std::size_t> order(tokens.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::unordered_set<std::uint64_t> used_edges;
  std::vector<std::uint64_t> port_buf;
  // Two-phase round state (jobs > 1): the unfinished tokens at round start
  // and a per-token port buffer each. Buffers persist across rounds, so the
  // fan-out settles into zero allocations.
  std::vector<std::size_t> unfinished;
  std::vector<std::vector<std::uint64_t>> port_sets;

  while (active > 0 && res.rounds < round_limit) {
    ++res.rounds;
    used_edges.clear();
    // Random service order each round — ties between tokens contending for
    // the same directed edge are broken arbitrarily in the model; randomizing
    // avoids systematic starvation of high-index tokens.
    rng.shuffle(order);
    // Phase A (read-only, parallel): enumerate every unfinished token's
    // ports at its round-start location. Valid because a token is serviced
    // exactly once per round and the topology is frozen for the whole call —
    // the sequential engine would see the same location and the same port
    // set at service time. The first enumeration runs on this thread to
    // settle any lazily-built state inside the PortsFn before the fan-out.
    const bool fan_out = jobs > 1 && active > 1;
    if (fan_out) {
      unfinished.clear();
      for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (!tokens[i].finished) unfinished.push_back(i);
      }
      if (port_sets.size() < tokens.size()) port_sets.resize(tokens.size());
      ports(tokens[unfinished.front()].location,
            port_sets[unfinished.front()]);
      support::parallel_for(unfinished.size() - 1, jobs, [&](std::size_t k) {
        const std::size_t i = unfinished[k + 1];
        ports(tokens[i].location, port_sets[i]);
      });
    }
    // Phase B (stateful, sequential): the shared-RNG draws, the congestion
    // set and the accept predicate replay in exact service order — the
    // byte-level contract for every jobs value.
    for (std::size_t idx : order) {
      Token& t = tokens[idx];
      if (t.finished) continue;
      const std::vector<std::uint64_t>& pb = [&]() -> const auto& {
        if (fan_out) return port_sets[idx];
        ports(t.location, port_buf);
        return port_buf;
      }();
      DEX_ASSERT_MSG(!pb.empty(), "token stranded at isolated location");
      const std::uint64_t next = pb[rng.below(pb.size())];
      const std::uint64_t key = edge_key(t.location, next);
      if (used_edges.contains(key)) continue;  // edge busy: wait a round
      used_edges.insert(key);
      t.location = next;
      ++res.messages;
      --t.steps_remaining;
      if (t.steps_remaining == 0 || (accept && accept(next))) {
        t.finished = true;
        --active;
      }
    }
  }

  res.all_finished = (active == 0);
  res.tokens = std::move(tokens);
  return res;
}

}  // namespace dex::sim
