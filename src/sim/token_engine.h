#pragma once

/// \file token_engine.h
/// Parallel random walks under CONGEST congestion.
///
/// The paper repeatedly runs many random-walk tokens simultaneously
/// (Phase 2 of simplifiedInfl/simplifiedDefl; the batch extension of §5) and
/// relies on Lemma 11: with at most one token per edge per direction per
/// round, n tokens of length Θ(log n) all finish within O(log² n) rounds
/// w.h.p. This engine implements exactly that model: per round, every
/// unfinished token picks a uniformly random port of its current location;
/// if the chosen directed edge was already claimed this round, the token
/// waits (and re-picks next round). Each successful move costs one message.
///
/// The engine is generic over the graph: locations are opaque 64-bit ids and
/// the caller supplies the port set. This lets the same engine drive walks
/// on the real multigraph (type-1 recovery variants) and walks on the
/// *virtual* p-cycle simulated on the real network (type-2 rebalancing),
/// where the congestion key is the directed virtual edge (virtual edges map
/// 1:1 to real links).

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/meters.h"
#include "support/prng.h"

namespace dex::sim {

struct Token {
  std::uint64_t location = 0;       ///< current location id
  std::uint64_t steps_remaining = 0;
  std::uint32_t tag = 0;            ///< caller-defined identity
  bool finished = false;
};

struct EngineResult {
  std::vector<Token> tokens;   ///< final states, same order as input
  std::uint64_t rounds = 0;    ///< synchronous rounds elapsed
  std::uint64_t messages = 0;  ///< total token moves
  bool all_finished = false;
};

/// Enumerates the ports (neighbor location ids) of a location into `out`.
/// `out` is reused across calls to avoid allocation.
using PortsFn =
    std::function<void(std::uint64_t loc, std::vector<std::uint64_t>& out)>;

/// Optional early-accept predicate: consulted at most once per successful
/// token move (after steps_remaining is decremented); returning true
/// settles the token at that location. A move that exhausts the step
/// budget finishes the token WITHOUT consulting accept — a stateful
/// predicate (e.g. counting tentative settlements per location to avoid
/// stampedes) therefore undercounts budget-exhausted tokens, and callers
/// must re-validate settled tokens against live state (as the §5 batch
/// path does). This is the parallel counterpart of the single-event
/// type-1 walk, which also stops at the *first* node satisfying its
/// acceptance test — the batch path uses it so the sequential-vs-parallel
/// rounds comparison holds walk semantics fixed.
using AcceptFn = std::function<bool(std::uint64_t loc)>;

/// Runs all tokens to completion (or until round_limit). Tokens that still
/// have steps left at the limit are reported unfinished at their current
/// location. With an accept predicate, tokens may also finish early at the
/// first accepting location they step onto (the start location is never
/// tested — a token must move at least once, like type1_walk).
///
/// `jobs` shards the per-round port enumeration across a transient worker
/// pool (support/worker_pool.h). Only the *read-only* half of the round is
/// parallel: every unfinished token's location is fixed at round start (a
/// token moves at most once per round and the topology is frozen for the
/// whole call), so the port sets can all be enumerated up front; the RNG
/// draws, the congestion set and the stateful accept then replay in the
/// exact sequential service order with the shared generator. The result is
/// byte-identical for every jobs value — sharding per-walk RNG streams
/// instead would reorder the draw sequence and break the determinism
/// contract (spec + seed => byte-identical traces), which is why the
/// parallelism lives in the enumeration phase. With jobs > 1 the PortsFn
/// must be safe to call concurrently for distinct locations once a single
/// warm-up call has run (the engine issues that call itself — it is what
/// forces lazily-built structures like PCycle's inverse table).
[[nodiscard]] EngineResult run_walks(std::vector<Token> tokens,
                                     const PortsFn& ports,
                                     support::Rng& rng,
                                     std::uint64_t round_limit,
                                     const AcceptFn& accept = {},
                                     unsigned jobs = 1);

}  // namespace dex::sim
