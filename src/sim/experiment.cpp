#include "sim/experiment.h"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "support/assert.h"

namespace dex::sim {

namespace {

bool name_known(const std::vector<std::string>& names,
                const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

std::vector<TrialSpec> ExperimentPlan::expand() const {
  DEX_ASSERT_MSG(!backends.empty() && !scenarios.empty() &&
                     !populations.empty() && !batch_sizes.empty() &&
                     !seeds.empty(),
                 "every plan axis needs at least one value");
  for (const auto& b : backends) {
    DEX_ASSERT_MSG(name_known(known_overlays(), b), "unknown backend in plan");
  }
  for (const auto& s : scenarios) {
    DEX_ASSERT_MSG(name_known(known_strategies(), s),
                   "unknown scenario in plan");
  }

  std::vector<TrialSpec> trials;
  trials.reserve(trial_count());
  for (const auto& backend : backends) {
    for (const auto& scenario : scenarios) {
      for (std::size_t n0 : populations) {
        for (std::size_t batch : batch_sizes) {
          for (std::uint64_t seed : seeds) {
            TrialSpec t;
            t.index = trials.size();
            t.backend = backend;
            t.scenario = scenario;
            t.n0 = n0;
            t.spec = base;
            t.spec.seed = seed;
            t.spec.batch_size = batch;
            if (t.spec.label.empty()) t.spec.label = scenario;
            t.opts = opts;
            if (customize) customize(t);
            // Default factories are wired *after* customize, from the
            // trial's final fields — a hook that remaps spec.seed, opts or
            // backend must reach the constructed objects. A hook that
            // installed its own factory keeps it.
            if (!t.make_overlay) {
              t.make_overlay = [backend = t.backend, n0 = t.n0,
                                seed = t.spec.seed] {
                return sim::make_overlay(backend, n0, overlay_seed(seed));
              };
            }
            if (!t.make_strategy) {
              if (!t.spec.campaign.empty()) {
                // A campaign spec on the trial overrides the scenario axis:
                // the phases name their own strategies.
                t.make_strategy = [campaign = t.spec.campaign,
                                   opts = t.opts] {
                  return sim::make_campaign_strategy(campaign, opts);
                };
              } else {
                t.make_strategy = [scenario = t.scenario, opts = t.opts] {
                  return sim::make_strategy(scenario, opts);
                };
              }
            }
            trials.push_back(std::move(t));
          }
        }
      }
    }
  }
  return trials;
}

namespace {

/// A finished trial parked until every earlier trial has been delivered.
struct PendingTrial {
  std::vector<StepRecord> steps;
  ScenarioResult result;
};

}  // namespace

std::vector<ScenarioResult> Executor::run(std::vector<TrialSpec> trials) {
  const std::size_t total = trials.size();
  for (std::size_t i = 0; i < total; ++i) trials[i].index = i;
  std::vector<ScenarioResult> results(opts_.collect_results ? total : 0);
  if (total == 0) return results;

  std::size_t jobs = opts_.jobs;
  if (jobs == 0) {
    jobs = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  jobs = std::min(jobs, total);
  const bool buffer_steps = opts_.stream_steps && !sinks_.empty();
  // Reorder window: a worker may only start trial i once i falls within
  // `window` of the next trial to deliver, so at most `window` step buffers
  // are ever alive — memory bounded by jobs, not by the trial count.
  const std::size_t window = 2 * jobs;

  std::mutex mu;
  std::condition_variable cv;
  std::size_t next_to_run = 0;
  std::size_t next_to_emit = 0;
  bool emitting = false;
  std::map<std::size_t, PendingTrial> pending;

  auto worker = [&] {
    for (;;) {
      std::size_t i;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] {
          return next_to_run >= total ||
                 next_to_run < next_to_emit + window;
        });
        if (next_to_run >= total) return;
        i = next_to_run++;
      }

      const TrialSpec& t = trials[i];
      auto overlay = t.make_overlay();
      DEX_ASSERT_MSG(overlay != nullptr, "trial overlay factory returned null");
      if (opts_.trial_jobs > 1) overlay->set_intra_jobs(opts_.trial_jobs);
      auto strategy = t.make_strategy();
      DEX_ASSERT_MSG(strategy != nullptr,
                     "trial strategy factory returned null");

      // The runner's kernel is reused unchanged; the trace never
      // materializes — steps stream through the observer into a per-trial
      // buffer that is dropped as soon as the sinks have seen it.
      ScenarioSpec spec = t.spec;
      spec.record_trace = false;
      ScenarioRunner runner(*overlay, *strategy, spec);
      PendingTrial done;
      if (buffer_steps) {
        done.steps.reserve(spec.steps);
        runner.set_observer([&done](const StepRecord& rec, HealingOverlay&) {
          done.steps.push_back(rec);
        });
      }
      done.result = runner.run();

      {
        std::unique_lock<std::mutex> lock(mu);
        pending.emplace(i, std::move(done));
        if (emitting) {
          // Another worker owns the drain; it re-checks `pending` before
          // releasing the flag, so this trial cannot be stranded.
          cv.notify_all();
          continue;
        }
        // Claim the single-emitter role and drain the ready prefix. Sink
        // calls (possibly slow file I/O) happen with the lock dropped —
        // other workers keep running trials — while the flag keeps
        // delivery serialized and in trial-index order.
        emitting = true;
        for (auto it = pending.find(next_to_emit); it != pending.end();
             it = pending.find(next_to_emit)) {
          PendingTrial item = std::move(it->second);
          pending.erase(it);
          const std::size_t idx = next_to_emit;
          lock.unlock();
          const TrialInfo info = trials[idx].info();
          for (auto* sink : sinks_) sink->on_trial_start(info);
          for (const auto& rec : item.steps) {
            for (auto* sink : sinks_) sink->on_step(info, rec);
          }
          for (auto* sink : sinks_) sink->on_trial_end(info, item.result);
          if (opts_.collect_results) {
            results[idx] = std::move(item.result);
          }
          lock.lock();
          ++next_to_emit;
          cv.notify_all();
        }
        emitting = false;
        cv.notify_all();
      }
    }
  };

  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  DEX_ASSERT(next_to_emit == total && pending.empty());
  return results;
}

}  // namespace dex::sim
