#pragma once

/// \file oracle.h
/// DistanceOracle — the per-step route/placement oracle behind the traffic
/// layer's hop accounting. Serving one key-value op used to cost a fresh
/// O(n + m) BFS over the live view (twice on DEX: once for the realized
/// path, once for the BFS optimum), which is fine at n = 1000 and unusable
/// at the populations where the paper's O(log n) claims get interesting.
///
/// The oracle exploits two facts about a step's ops:
///  * BFS distance is symmetric on an undirected multigraph, so
///    d(origin, home) can be answered from a single-source BFS rooted at
///    *either* endpoint; and
///  * homes repeat heavily (Zipf/hotspot traffic concentrates keys, and a
///    step's displaced keys share destinations), so rooting at the home
///    side lets one frontier serve every op aimed there.
///
/// It therefore memoizes whole single-source distance vectors over the
/// step's CsrView (graph/csr.h), keyed by root, in a small ring of reusable
/// slots. A query hits if either endpoint is memoized; otherwise one BFS
/// runs from the preferred root and joins the ring. Eviction is FIFO and
/// affects only speed — every answer is an exact BFS distance, which the
/// property tests pin against graph::bfs_distances across all six backends.
///
/// The owner (sim::KvStore) calls attach() once per churn step with the
/// step's frozen CsrView; attach clears the memo (the topology changed) but
/// keeps the slot buffers, so steady state runs allocation-free.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/csr.h"

namespace dex::sim {

class DistanceOracle {
 public:
  /// Memoized single-source vectors kept per step. Beyond this, the oldest
  /// root is evicted (FIFO); correctness is unaffected.
  static constexpr std::size_t kMaxRoots = 32;

  /// Points the oracle at the step's live view and clears the memo. The
  /// view is borrowed: it must stay alive and unchanged until the next
  /// attach() (sim::KvStore re-attaches on every sync()).
  void attach(const graph::CsrView& view);

  /// Exact BFS distance between u and v on the attached view
  /// (graph::kUnreached when disconnected or either endpoint is dead).
  /// Answered from a memoized vector when either endpoint is a known root.
  /// On a miss, `v`'s popularity decides the work — callers pass
  /// (origin, home) so the repeating side drives it: a home seen for the
  /// first time this step gets a cheap early-exit probe (the cold tail of
  /// a uniform workload never pays for frontiers nobody will reuse), a
  /// home seen again is worth a full single-source BFS that joins the memo
  /// and serves the rest of the step's ops for free.
  [[nodiscard]] std::uint32_t distance(graph::NodeId u, graph::NodeId v);

  /// The full distance vector from `src` (memoizing it as a root). Used by
  /// the re-homing transfer pricing, which needs every survivor's distance.
  /// Lifetime: the reference stays valid (and keeps meaning `src`) only
  /// until the next materializing call — distance()/from()/reach() on a new
  /// root may recycle the slot — or attach(). Read it before querying on.
  [[nodiscard]] const std::vector<std::uint32_t>& from(graph::NodeId src);

  /// Sum/count of finite distances from `src` over the alive set (the
  /// expected-recovery-pull mean used by KvStore::sync), computed once per
  /// root and cached with it.
  struct Reach {
    std::uint64_t sum = 0;
    std::uint64_t count = 0;
  };
  [[nodiscard]] Reach reach(graph::NodeId src);

  /// BFS runs (probes + full frontiers) since attach() — the number the
  /// sharing saves; exposed so tests can assert it actually happens.
  [[nodiscard]] std::uint64_t bfs_runs() const { return bfs_runs_; }

 private:
  struct Slot {
    graph::NodeId root = graph::kInvalidNode;
    std::vector<std::uint32_t> dist;
    Reach reach;
    bool reach_done = false;
  };

  [[nodiscard]] Slot* find(graph::NodeId root);
  [[nodiscard]] Slot& materialize(graph::NodeId root);
  /// Early-exit BFS src -> dst over epoch-stamped scratch (no O(n) clear,
  /// no memo entry): the cold-pair path.
  [[nodiscard]] std::uint32_t probe(graph::NodeId src, graph::NodeId dst);

  const graph::CsrView* view_ = nullptr;
  std::vector<Slot> slots_;
  std::size_t next_slot_ = 0;  ///< FIFO ring cursor
  std::unordered_map<graph::NodeId, std::size_t> by_root_;
  /// Roots queried this step (memoize-on-repeat gating).
  std::unordered_map<graph::NodeId, std::uint32_t> root_queries_;
  std::vector<graph::NodeId> scratch_;
  /// probe() scratch: stamps mark "seen this probe" without a per-call
  /// clear; dist entries are valid where the stamp matches.
  std::vector<std::uint32_t> probe_stamp_;
  std::vector<std::uint32_t> probe_dist_;
  std::vector<graph::NodeId> probe_queue_;
  std::uint32_t probe_gen_ = 0;
  std::uint64_t bfs_runs_ = 0;
};

}  // namespace dex::sim
