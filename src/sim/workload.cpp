#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "graph/bfs.h"
#include "support/assert.h"

namespace dex::sim {

using graph::kInvalidNode;
using graph::NodeId;

namespace {

/// Rendezvous (HRW) weight of `node` for a pre-mixed key hash. 64-bit mixes
/// make ties essentially impossible; best_home still breaks them by id so
/// placement is a pure function of (key, alive set).
std::uint64_t hrw_score(std::uint64_t key_hash, NodeId node) {
  return support::mix64(key_hash ^ (0x9e3779b97f4a7c15ULL * (node + 1)));
}

}  // namespace

// ------------------------------------------------------------------ KvStore

KvStore::KvStore(const HealingOverlay& overlay) : overlay_(overlay) {}

KvStore::Placement KvStore::best_home(std::uint64_t key) const {
  DEX_ASSERT_MSG(!alive_.empty(), "KvStore over an empty overlay");
  const std::uint64_t kh = support::mix64(key);
  Placement best;
  for (const NodeId u : alive_) {
    const std::uint64_t s = hrw_score(kh, u);
    if (best.home == kInvalidNode || s > best.score ||
        (s == best.score && u < best.home)) {
      best = {u, s};
    }
  }
  return best;
}

NodeId KvStore::resolve_origin(NodeId origin) const {
  if (origin != kInvalidNode && origin < mask_.size() && mask_[origin]) {
    return origin;
  }
  return alive_[support::mix64(origin) % alive_.size()];
}

bool KvStore::route_op(NodeId origin, NodeId home, OpResult& out) const {
  const auto path = overlay_.route(origin, home, topo_, mask_);
  if (path.empty()) return false;
  out.hops = static_cast<std::uint64_t>(path.size() - 1);
  if (overlay_.route_is_shortest()) {
    // The realized path is the BFS optimum already; a second full-graph
    // BFS per request would only recompute path.size() - 1.
    out.optimal_hops = out.hops;
    return true;
  }
  const auto dist = graph::bfs_distances(topo_, origin, mask_);
  out.optimal_hops = home < dist.size() && dist[home] != graph::kUnreached
                         ? dist[home]
                         : out.hops;
  return true;
}

KvStore::SyncStats KvStore::sync(const adversary::AdversaryView& view) {
  auto fresh = view.alive_nodes();
  std::sort(fresh.begin(), fresh.end());
  topo_ = view.snapshot();
  mask_ = view.alive_mask();
  std::vector<NodeId> added;
  std::set_difference(fresh.begin(), fresh.end(), alive_.begin(), alive_.end(),
                      std::back_inserter(added));
  const bool first = !synced_;
  alive_ = std::move(fresh);
  synced_ = true;
  last_moved_.clear();
  SyncStats out;
  if (first || placed_.empty()) return out;

  struct Move {
    std::uint64_t key;
    NodeId from;
    NodeId to;
  };
  std::vector<Move> moves;
  for (auto& [key, pl] : placed_) {
    const bool home_dead = pl.home >= mask_.size() || !mask_[pl.home];
    Placement np = pl;
    if (home_dead) {
      np = best_home(key);
    } else if (!added.empty()) {
      // The incumbent's weight is unchanged; only a newcomer can beat it.
      const std::uint64_t kh = support::mix64(key);
      for (const NodeId a : added) {
        const std::uint64_t s = hrw_score(kh, a);
        if (s > np.score || (s == np.score && a < np.home)) np = {a, s};
      }
    }
    if (np.home != pl.home) {
      moves.push_back({key, pl.home, np.home});
      pl = np;
    }
  }
  if (moves.empty()) return out;

  // One BFS per distinct destination prices every transfer to it: the exact
  // old->new distance when the old host survived (a handover), else the mean
  // distance from the new home (the expected pull from wherever the healed
  // overlay recovered the item).
  std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
    return a.to != b.to ? a.to < b.to : a.key < b.key;
  });
  for (std::size_t i = 0; i < moves.size();) {
    const NodeId to = moves[i].to;
    const auto dist = graph::bfs_distances(topo_, to, mask_);
    std::uint64_t reach_sum = 0, reach_cnt = 0;
    for (const NodeId u : alive_) {
      if (dist[u] != graph::kUnreached) {
        reach_sum += dist[u];
        ++reach_cnt;
      }
    }
    const std::uint64_t mean =
        std::max<std::uint64_t>(reach_cnt ? reach_sum / reach_cnt : 1, 1);
    for (; i < moves.size() && moves[i].to == to; ++i) {
      const NodeId from = moves[i].from;
      const bool from_alive = from < mask_.size() && mask_[from];
      out.messages += from_alive && dist[from] != graph::kUnreached
                          ? dist[from]
                          : mean;
      last_moved_.push_back(moves[i].key);
    }
  }
  std::sort(last_moved_.begin(), last_moved_.end());
  out.moved_keys = moves.size();
  moved_total_ += out.moved_keys;
  rehash_messages_total_ += out.messages;
  return out;
}

KvStore::OpResult KvStore::put(std::uint64_t key, std::uint64_t value,
                               NodeId origin) {
  DEX_ASSERT_MSG(synced_, "KvStore::sync must run before operations");
  OpResult r;
  const auto it = placed_.find(key);
  const Placement pl = it != placed_.end() ? it->second : best_home(key);
  if (!route_op(resolve_origin(origin), pl.home, r)) return r;
  placed_[key] = pl;
  values_[key] = value;
  r.ok = true;
  return r;
}

KvStore::OpResult KvStore::get(std::uint64_t key, NodeId origin) {
  DEX_ASSERT_MSG(synced_, "KvStore::sync must run before operations");
  OpResult r;
  const auto it = placed_.find(key);
  const Placement pl = it != placed_.end() ? it->second : best_home(key);
  if (!route_op(resolve_origin(origin), pl.home, r)) return r;
  r.hops *= 2;  // request + reply
  r.optimal_hops *= 2;
  const auto vit = values_.find(key);
  if (vit == values_.end()) return r;
  r.ok = true;
  r.value = vit->second;
  return r;
}

KvStore::OpResult KvStore::erase(std::uint64_t key, NodeId origin) {
  DEX_ASSERT_MSG(synced_, "KvStore::sync must run before operations");
  OpResult r;
  const auto it = placed_.find(key);
  const Placement pl = it != placed_.end() ? it->second : best_home(key);
  if (!route_op(resolve_origin(origin), pl.home, r)) return r;
  r.ok = values_.erase(key) > 0;
  placed_.erase(key);
  return r;
}

std::vector<std::uint64_t> KvStore::keys_at(
    const std::vector<NodeId>& homes) const {
  std::vector<std::uint64_t> out;
  if (homes.empty() || placed_.empty()) return out;
  std::vector<bool> wanted(mask_.size(), false);
  for (const NodeId h : homes) {
    if (h < wanted.size()) wanted[h] = true;
  }
  for (const auto& [key, pl] : placed_) {
    if (pl.home < wanted.size() && wanted[pl.home]) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

NodeId KvStore::home(std::uint64_t key) const {
  DEX_ASSERT_MSG(synced_, "KvStore::sync must run before operations");
  const auto it = placed_.find(key);
  return it != placed_.end() ? it->second.home : best_home(key).home;
}

// ------------------------------------------------------------ TrafficEngine

const std::vector<std::string>& known_workloads() {
  static const std::vector<std::string> names{"uniform", "zipf", "hotspot"};
  return names;
}

const char* workload_names() {
  // Joined from the registry so usage strings can never drift from what
  // TrafficEngine actually accepts.
  static const std::string joined = [] {
    std::string s;
    for (const auto& name : known_workloads()) {
      if (!s.empty()) s += ", ";
      s += name;
    }
    return s;
  }();
  return joined.c_str();
}

TrafficEngine::TrafficEngine(const HealingOverlay& overlay, TrafficSpec spec,
                             std::uint64_t trial_seed)
    : spec_(std::move(spec)),
      kv_(overlay),
      rng_(trial_seed ^ kTrafficSeedSalt) {
  DEX_ASSERT_MSG(std::find(known_workloads().begin(), known_workloads().end(),
                           spec_.workload) != known_workloads().end(),
                 "unknown workload name");
  DEX_ASSERT_MSG(spec_.keyspace > 0, "traffic needs a non-empty keyspace");
  if (spec_.workload != "uniform") {
    // Zipf CDF over key ranks (key identity == rank: low keys are hot);
    // also the hotspot workload's background distribution.
    zipf_cdf_.reserve(spec_.keyspace);
    double total = 0.0;
    for (std::size_t i = 0; i < spec_.keyspace; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), spec_.zipf_s);
      zipf_cdf_.push_back(total);
    }
    for (auto& c : zipf_cdf_) c /= total;
  }
}

std::uint64_t TrafficEngine::pick_key() {
  if (spec_.workload == "hotspot" && !hot_keys_.empty() && rng_.chance(0.8)) {
    return hot_keys_[rng_.below(hot_keys_.size())];
  }
  if (zipf_cdf_.empty()) return rng_.below(spec_.keyspace);
  const double u = rng_.uniform01();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::uint64_t>(it - zipf_cdf_.begin());
}

void TrafficEngine::observe_churn(const ChurnBatch& batch) {
  if (spec_.workload != "hotspot") return;
  // The region about to churn: every attach point plus every victim's
  // current neighborhood (the victims themselves will be gone by the time
  // requests fire; their neighbors inherit the turbulence). Adjacency comes
  // from the store's cached topology — frozen since the last sync, i.e.
  // exactly the pre-churn view — not from a fresh snapshot copy. Before the
  // first sync there is nothing cached and no key placed, so there is no
  // region worth capturing either.
  std::vector<NodeId> region = batch.attach_to;
  if (!batch.victims.empty() && kv_.synced()) {
    const auto& g = kv_.topology();
    for (const NodeId v : batch.victims) {
      if (v >= g.node_count()) continue;
      for (const NodeId u : g.ports(v)) region.push_back(u);
    }
  }
  std::sort(region.begin(), region.end());
  region.erase(std::unique(region.begin(), region.end()), region.end());
  hot_nodes_ = std::move(region);
}

TrafficStepStats TrafficEngine::step(const adversary::AdversaryView& view) {
  TrafficStepStats st;
  const auto sync = kv_.sync(view);
  st.moved_keys = sync.moved_keys;
  st.rehash_messages = sync.messages;
  if (spec_.workload == "hotspot") {
    // Primary targets: the keys churn just displaced (post-rebuild cache
    // misses). Secondary: whatever still lives in the churned region.
    hot_keys_ = kv_.last_moved();
    auto regional = kv_.keys_at(hot_nodes_);
    hot_keys_.insert(hot_keys_.end(), regional.begin(), regional.end());
    std::sort(hot_keys_.begin(), hot_keys_.end());
    hot_keys_.erase(std::unique(hot_keys_.begin(), hot_keys_.end()),
                    hot_keys_.end());
  }
  const auto nodes = view.alive_nodes();
  DEX_ASSERT(!nodes.empty());
  for (std::size_t i = 0; i < spec_.ops_per_step; ++i) {
    const std::uint64_t key = pick_key();
    const NodeId origin = nodes[rng_.below(nodes.size())];
    const auto known = acked_.find(key);
    const bool read =
        known != acked_.end() && rng_.chance(spec_.read_fraction);
    KvStore::OpResult r;
    if (read) {
      r = kv_.get(key, origin);
      if (!r.ok || !r.value || *r.value != known->second) ++st.failed_lookups;
    } else {
      const std::uint64_t value = support::mix64(key ^ ++write_seq_);
      r = kv_.put(key, value, origin);
      if (r.ok) acked_[key] = value;
    }
    ++st.ops;
    st.op_hops += r.hops;
    st.opt_hops += r.optimal_hops;
  }
  return st;
}

}  // namespace dex::sim
