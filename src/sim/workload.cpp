#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "graph/bfs.h"
#include "support/assert.h"

namespace dex::sim {

using graph::kInvalidNode;
using graph::NodeId;

namespace {

/// Rendezvous (HRW) weight of `node` for a pre-mixed key hash. 64-bit mixes
/// make ties essentially impossible; candidate ordering still breaks them
/// by id so placement is a pure function of (key, alive set).
std::uint64_t hrw_score(std::uint64_t key_hash, NodeId node) {
  return support::mix64(key_hash ^ (0x9e3779b97f4a7c15ULL * (node + 1)));
}

/// Strict-weak order on candidates: higher score first, lower id on the
/// (essentially impossible) score tie — the argmax rule best_home always
/// used, applied to the whole list.
bool candidate_better(NodeId node, std::uint64_t score, NodeId than_node,
                      std::uint64_t than_score) {
  return score > than_score || (score == than_score && node < than_node);
}

}  // namespace

// ------------------------------------------------------------------ KvStore

KvStore::KvStore(const HealingOverlay& overlay) : overlay_(overlay) {}

void KvStore::merge_candidate(Placement& pl, Candidate c) {
  if (pl.count == kHomeCandidates &&
      !candidate_better(c.node, c.score, pl.top[kHomeCandidates - 1].node,
                        pl.top[kHomeCandidates - 1].score)) {
    // Skipped: c joins the non-members, so it raises the floor.
    pl.floor = std::max(pl.floor, c.score);
    return;
  }
  // Insert in (score desc, id asc) order; expected O(1) amortized — a
  // random stream rarely beats the current K-th best.
  std::size_t i = pl.count;
  if (i == kHomeCandidates) {
    // The truncated minimum becomes a non-member too.
    pl.floor = std::max(pl.floor, pl.top[kHomeCandidates - 1].score);
    --i;
  }
  while (i > 0 && !candidate_better(pl.top[i - 1].node, pl.top[i - 1].score,
                                    c.node, c.score)) {
    pl.top[i] = pl.top[i - 1];
    --i;
  }
  pl.top[i] = c;
  if (pl.count < kHomeCandidates) ++pl.count;
}

KvStore::Placement KvStore::scan_candidates(std::uint64_t key) const {
  DEX_ASSERT_MSG(!alive_.empty(), "KvStore over an empty overlay");
  const std::uint64_t kh = support::mix64(key);
  Placement pl;
  for (const NodeId u : alive_) {
    merge_candidate(pl, Candidate{u, hrw_score(kh, u)});
  }
  return pl;
}

NodeId KvStore::resolve_origin(NodeId origin) const {
  if (origin != kInvalidNode && csr_->alive(origin)) return origin;
  return alive_[support::mix64(origin) % alive_.size()];
}

bool KvStore::route_op(NodeId origin, NodeId home, OpResult& out) {
  if (overlay_.route_is_shortest()) {
    // The realized path is the BFS optimum already, so the op needs only a
    // distance — answered from the step's shared BFS frontiers instead of
    // materializing a fresh path per request.
    const std::uint32_t d = oracle_.distance(origin, home);
    if (d == graph::kUnreached) return false;
    out.hops = d;
    out.optimal_hops = d;
    return true;
  }
  const auto path = overlay_.route(origin, home, *csr_);
  if (path.empty()) return false;
  out.hops = static_cast<std::uint64_t>(path.size() - 1);
  const std::uint32_t d = oracle_.distance(origin, home);
  out.optimal_hops = d != graph::kUnreached ? d : out.hops;
  return true;
}

KvStore::SyncStats KvStore::sync(const adversary::AdversaryView& view) {
  // One flat CSR per step: borrowed *by reference* from the caching view
  // when available (the runner's CachedView maintains it incrementally and
  // its object identity is stable across steps — no copy at all), rebuilt
  // into the store's own buffer otherwise.
  if (view.live_csr) {
    csr_ = &view.live_csr();
  } else {
    const auto g = view.snapshot();
    own_csr_.build(g, view.alive_mask());
    csr_ = &own_csr_;
  }
  oracle_.attach(*csr_);

  // Membership delta + fresh sorted alive set in one ascending bitmap walk
  // against the previous (sorted) alive list — no per-step sort.
  added_scratch_.clear();
  alive_scratch_.clear();
  alive_scratch_.reserve(csr_->alive_count());
  {
    std::size_t i = 0;
    for (NodeId u = 0; u < csr_->node_count(); ++u) {
      if (!csr_->alive(u)) continue;
      alive_scratch_.push_back(u);
      while (i < alive_.size() && alive_[i] < u) ++i;
      if (i < alive_.size() && alive_[i] == u) {
        ++i;
      } else {
        added_scratch_.push_back(u);
      }
    }
  }
  const std::size_t surviving = alive_scratch_.size() - added_scratch_.size();
  const bool any_removed = surviving != alive_.size();
  const bool first = !synced_;
  alive_.swap(alive_scratch_);
  synced_ = true;
  last_moved_.clear();
  SyncStats out;
  if (first || placed_.empty()) return out;
  const auto& added = added_scratch_;
  if (added.empty() && !any_removed) return out;  // membership unchanged

  struct Move {
    std::uint64_t key;
    NodeId from;
    NodeId to;
  };
  std::vector<Move> moves;
  // det: each placement updates independently of the others (per-key
  // candidate merge + promotion), and every order-sensitive consumer runs
  // off `moves`/`last_moved_`, which are sorted before use below.
  for (auto& [key, pl] : placed_) {
    const NodeId old_home = pl.home();
    if (!added.empty()) {
      // Incumbent weights are unchanged; joiners merge into the candidate
      // list (and take the lead when they out-score it).
      const std::uint64_t kh = support::mix64(key);
      for (const NodeId a : added) {
        merge_candidate(pl, Candidate{a, hrw_score(kh, a)});
      }
    }
    // Promote the best surviving candidate. Exact as long as it clears the
    // floor — otherwise a node pushed out of the list earlier could be the
    // true winner, and only a rescan of the alive set can tell. (Only the
    // leading dead entries are pruned, matching the historical vector
    // behavior; deeper dead entries fall out when they surface.)
    std::uint32_t lead = 0;
    while (lead < pl.count && !csr_->alive(pl.top[lead].node)) ++lead;
    if (lead > 0) {
      for (std::uint32_t i = lead; i < pl.count; ++i) {
        pl.top[i - lead] = pl.top[i];
      }
      pl.count -= lead;
    }
    if (pl.count == 0 || pl.top[0].score < pl.floor) {
      pl = scan_candidates(key);
    }
    if (pl.home() != old_home) moves.push_back({key, old_home, pl.home()});
  }
  if (moves.empty()) return out;

  // One BFS per distinct destination prices every transfer to it: the exact
  // old->new distance when the old host survived (a handover), else the mean
  // distance from the new home (the expected pull from wherever the healed
  // overlay recovered the item). The oracle memoizes these frontiers, so
  // the step's ops aimed at the same homes reuse them for free.
  std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
    return a.to != b.to ? a.to < b.to : a.key < b.key;
  });
  for (std::size_t i = 0; i < moves.size();) {
    const NodeId to = moves[i].to;
    const auto& dist = oracle_.from(to);
    const auto reach = oracle_.reach(to);
    const std::uint64_t mean = std::max<std::uint64_t>(
        reach.count ? reach.sum / reach.count : 1, 1);
    for (; i < moves.size() && moves[i].to == to; ++i) {
      const NodeId from = moves[i].from;
      const bool from_alive = csr_->alive(from);
      out.messages += from_alive && dist[from] != graph::kUnreached
                          ? dist[from]
                          : mean;
      last_moved_.push_back(moves[i].key);
    }
  }
  std::sort(last_moved_.begin(), last_moved_.end());
  out.moved_keys = moves.size();
  moved_total_ += out.moved_keys;
  rehash_messages_total_ += out.messages;
  return out;
}

KvStore::OpResult KvStore::put(std::uint64_t key, std::uint64_t value,
                               NodeId origin) {
  DEX_ASSERT_MSG(synced_, "KvStore::sync must run before operations");
  OpResult r;
  const auto it = placed_.find(key);
  if (it != placed_.end()) {
    if (!route_op(resolve_origin(origin), it->second.home(), r)) return r;
  } else {
    Placement pl = scan_candidates(key);
    if (!route_op(resolve_origin(origin), pl.home(), r)) return r;
    placed_.emplace(key, std::move(pl));
  }
  values_[key] = value;
  r.ok = true;
  return r;
}

KvStore::OpResult KvStore::get(std::uint64_t key, NodeId origin) {
  DEX_ASSERT_MSG(synced_, "KvStore::sync must run before operations");
  OpResult r;
  const auto it = placed_.find(key);
  const NodeId home =
      it != placed_.end() ? it->second.home() : scan_candidates(key).home();
  if (!route_op(resolve_origin(origin), home, r)) return r;
  const auto vit = values_.find(key);
  // A miss pays only the one-way request: no value travels back, and a
  // failed op's hops must not pass for a served round trip.
  if (vit == values_.end()) return r;
  r.hops *= 2;  // request + reply
  r.optimal_hops *= 2;
  r.ok = true;
  r.value = vit->second;
  return r;
}

KvStore::OpResult KvStore::erase(std::uint64_t key, NodeId origin) {
  DEX_ASSERT_MSG(synced_, "KvStore::sync must run before operations");
  OpResult r;
  const auto it = placed_.find(key);
  const NodeId home =
      it != placed_.end() ? it->second.home() : scan_candidates(key).home();
  if (!route_op(resolve_origin(origin), home, r)) return r;
  r.ok = values_.erase(key) > 0;
  placed_.erase(key);
  return r;
}

std::vector<std::uint64_t> KvStore::keys_at(
    const std::vector<NodeId>& homes) const {
  std::vector<std::uint64_t> out;
  if (homes.empty() || placed_.empty()) return out;
  std::vector<bool> wanted(csr_->node_count(), false);
  for (const NodeId h : homes) {
    if (h < wanted.size()) wanted[h] = true;
  }
  // det: filter-and-collect — visit order is erased by the sort below.
  for (const auto& [key, pl] : placed_) {
    const NodeId h = pl.home();
    if (h < wanted.size() && wanted[h]) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

NodeId KvStore::home(std::uint64_t key) const {
  DEX_ASSERT_MSG(synced_, "KvStore::sync must run before operations");
  const auto it = placed_.find(key);
  return it != placed_.end() ? it->second.home() : scan_candidates(key).home();
}

// ------------------------------------------------------------ TrafficEngine

const std::vector<std::string>& known_workloads() {
  static const std::vector<std::string> names{"uniform", "zipf", "hotspot"};
  return names;
}

const char* workload_names() {
  // Joined from the registry so usage strings can never drift from what
  // TrafficEngine actually accepts.
  static const std::string joined = [] {
    std::string s;
    for (const auto& name : known_workloads()) {
      if (!s.empty()) s += ", ";
      s += name;
    }
    return s;
  }();
  return joined.c_str();
}

TrafficEngine::TrafficEngine(const HealingOverlay& overlay, TrafficSpec spec,
                             std::uint64_t trial_seed)
    : spec_(std::move(spec)),
      kv_(overlay),
      rng_(trial_seed ^ kTrafficSeedSalt) {
  DEX_ASSERT_MSG(std::find(known_workloads().begin(), known_workloads().end(),
                           spec_.workload) != known_workloads().end(),
                 "unknown workload name");
  DEX_ASSERT_MSG(spec_.keyspace > 0, "traffic needs a non-empty keyspace");
  if (spec_.workload != "uniform") {
    // Zipf CDF over key ranks (key identity == rank: low keys are hot);
    // also the hotspot workload's background distribution.
    zipf_cdf_.reserve(spec_.keyspace);
    double total = 0.0;
    for (std::size_t i = 0; i < spec_.keyspace; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), spec_.zipf_s);
      zipf_cdf_.push_back(total);
    }
    for (auto& c : zipf_cdf_) c /= total;
  }
}

std::uint64_t TrafficEngine::pick_key() {
  if (spec_.workload == "hotspot" && !hot_keys_.empty() && rng_.chance(0.8)) {
    return hot_keys_[rng_.below(hot_keys_.size())];
  }
  if (zipf_cdf_.empty()) return rng_.below(spec_.keyspace);
  const double u = rng_.uniform01();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::uint64_t>(it - zipf_cdf_.begin());
}

void TrafficEngine::observe_churn(const ChurnBatch& batch,
                                  const adversary::AdversaryView& view) {
  if (spec_.workload != "hotspot") return;
  // The region about to churn: every attach point plus every victim's
  // current neighborhood (the victims themselves will be gone by the time
  // requests fire; their neighbors inherit the turbulence). Adjacency comes
  // from the runner's maintained CSR — not yet advanced past this batch, so
  // exactly the pre-churn view — never from a fresh snapshot copy. Bare
  // views without live_csr fall back to the store's cached copy, which is
  // absent before the first sync (and no key is placed by then, so there is
  // no region worth capturing either).
  std::vector<NodeId> region = batch.attach_to;
  const graph::CsrView* g = view.live_csr      ? &view.live_csr()
                            : kv_.synced()     ? &kv_.live_view()
                                               : nullptr;
  if (!batch.victims.empty() && g != nullptr) {
    for (const NodeId v : batch.victims) {
      for (const NodeId u : g->neighbors(v)) region.push_back(u);
    }
  }
  std::sort(region.begin(), region.end());
  region.erase(std::unique(region.begin(), region.end()), region.end());
  hot_nodes_ = std::move(region);
}

TrafficStepStats TrafficEngine::begin_step(
    const adversary::AdversaryView& view) {
  TrafficStepStats st;
  const auto sync = kv_.sync(view);
  st.moved_keys = sync.moved_keys;
  st.rehash_messages = sync.messages;
  if (spec_.workload == "hotspot") {
    // Primary targets: the keys churn just displaced (post-rebuild cache
    // misses). Secondary: whatever still lives in the churned region.
    hot_keys_ = kv_.last_moved();
    auto regional = kv_.keys_at(hot_nodes_);
    hot_keys_.insert(hot_keys_.end(), regional.begin(), regional.end());
    std::sort(hot_keys_.begin(), hot_keys_.end());
    hot_keys_.erase(std::unique(hot_keys_.begin(), hot_keys_.end()),
                    hot_keys_.end());
  }
  return st;
}

void TrafficEngine::serve_one(TrafficStepStats& st) {
  // The origin pool is the store's ascending alive list — identical content
  // to view.alive_nodes() (every backend scans ids ascending), minus the
  // per-step vector copy that call would hand back.
  const auto& nodes = kv_.alive();
  DEX_ASSERT(!nodes.empty());
  const std::uint64_t key = pick_key();
  const NodeId origin = nodes[rng_.below(nodes.size())];
  const auto known = acked_.find(key);
  const bool read = known != acked_.end() && rng_.chance(spec_.read_fraction);
  KvStore::OpResult r;
  if (read) {
    r = kv_.get(key, origin);
    if (!r.ok || !r.value || *r.value != known->second) ++st.failed_lookups;
  } else {
    const std::uint64_t value = support::mix64(key ^ ++write_seq_);
    r = kv_.put(key, value, origin);
    if (r.ok) {
      acked_[key] = value;
    } else {
      // The write never reached the key's home: no ack, no stored value.
      // It used to vanish from every failure metric.
      ++st.failed_writes;
    }
  }
  ++st.ops;
  // Hop totals cover completed ops only — a request that never got a
  // reply has no round trip to account, and folding its hops into the
  // stretch ratio would reward losing requests.
  if (r.ok) {
    st.op_hops += r.hops;
    st.opt_hops += r.optimal_hops;
  }
}

TrafficEngine::IssuedOp TrafficEngine::issue_op() {
  // Same draws in the same order as serve_one's front half: key, origin,
  // read coin (the coin only when the key is acknowledged right now).
  const auto& nodes = kv_.alive();
  DEX_ASSERT(!nodes.empty());
  IssuedOp op;
  op.key = pick_key();
  op.origin = nodes[rng_.below(nodes.size())];
  op.read = acked_.contains(op.key) && rng_.chance(spec_.read_fraction);
  op.home = kv_.home(op.key);
  return op;
}

void TrafficEngine::complete_op(const IssuedOp& op, TrafficStepStats& st) {
  KvStore::OpResult r;
  if (op.read) {
    r = kv_.get(op.key, op.origin);
    // Validate against the acknowledged value as of *now*: an intervening
    // acknowledged write moved the goalposts legitimately. The entry must
    // still exist — the read coin required an ack and nothing retracts one.
    const auto known = acked_.find(op.key);
    DEX_ASSERT(known != acked_.end());
    if (!r.ok || !r.value || *r.value != known->second) ++st.failed_lookups;
  } else {
    const std::uint64_t value = support::mix64(op.key ^ ++write_seq_);
    r = kv_.put(op.key, value, op.origin);
    if (r.ok) {
      acked_[op.key] = value;
    } else {
      ++st.failed_writes;
    }
  }
  ++st.ops;
  if (r.ok) {
    st.op_hops += r.hops;
    st.opt_hops += r.optimal_hops;
  }
}

TrafficStepStats TrafficEngine::step(const adversary::AdversaryView& view) {
  TrafficStepStats st = begin_step(view);
  for (std::size_t i = 0; i < spec_.ops_per_step; ++i) serve_one(st);
  return st;
}

}  // namespace dex::sim
