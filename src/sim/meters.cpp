#include "sim/meters.h"

// Header-only; this TU anchors the library target.
