#pragma once

/// \file meters.h
/// Cost accounting in the units of the paper's model (§2): synchronous
/// rounds, O(log n)-bit messages, and topology changes (real edge
/// additions/removals). Every distributed action in the library is charged
/// through a CostMeter; the benches read per-step and cumulative figures
/// from here.

#include <cstdint>

namespace dex::sim {

/// Cost of a single self-healing step (one insertion or deletion + repair).
struct StepCost {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t topology_changes = 0;

  StepCost& operator+=(const StepCost& o) {
    rounds += o.rounds;
    messages += o.messages;
    topology_changes += o.topology_changes;
    return *this;
  }
};

/// Accumulating meter with a per-step window.
class CostMeter {
 public:
  void add_rounds(std::uint64_t r) {
    step_.rounds += r;
    total_.rounds += r;
  }
  void add_messages(std::uint64_t m) {
    step_.messages += m;
    total_.messages += m;
  }
  void add_topology(std::uint64_t c) {
    step_.topology_changes += c;
    total_.topology_changes += c;
  }
  void add(const StepCost& c) {
    add_rounds(c.rounds);
    add_messages(c.messages);
    add_topology(c.topology_changes);
  }

  /// Starts a new step window; returns the cost of the window just closed.
  StepCost end_step() {
    StepCost closed = step_;
    step_ = StepCost{};
    return closed;
  }

  [[nodiscard]] const StepCost& step() const { return step_; }
  [[nodiscard]] const StepCost& total() const { return total_; }

  void reset() {
    step_ = StepCost{};
    total_ = StepCost{};
  }

 private:
  StepCost step_;
  StepCost total_;
};

}  // namespace dex::sim
