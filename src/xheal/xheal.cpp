#include "xheal/xheal.h"

#include <algorithm>

#include "dex/pcycle.h"
#include "support/assert.h"
#include "support/mathutil.h"

namespace dex::xheal {

XhealNetwork::XhealNetwork(Multigraph initial)
    : g_(std::move(initial)),
      alive_(g_.node_count(), true),
      n_alive_(g_.node_count()),
      overhead_(g_.node_count(), 0) {
  DEX_ASSERT(g_.node_count() >= 2);
}

std::vector<NodeId> XhealNetwork::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(n_alive_);
  for (NodeId u = 0; u < alive_.size(); ++u) {
    if (alive_[u]) out.push_back(u);
  }
  return out;
}

NodeId XhealNetwork::insert(const std::vector<NodeId>& attach_to) {
  meter_.end_step();
  DEX_ASSERT(!attach_to.empty());
  const NodeId u = g_.add_node();
  alive_.push_back(true);
  overhead_.push_back(0);
  ++n_alive_;
  if (journal_ && !journal_->full) journal_->born.push_back(u);
  for (NodeId a : attach_to) {
    DEX_ASSERT(alive(a));
    g_.add_edge(u, a);
    if (journal_ && !journal_->full) journal_->dirty.push_back(a);
    meter_.add_topology(1);
    meter_.add_messages(1);
  }
  meter_.add_rounds(1);
  last_ = meter_.end_step();
  return u;
}

void XhealNetwork::remove(NodeId victim) {
  meter_.end_step();
  DEX_ASSERT(alive(victim) && n_alive_ >= 3);
  // Collect the (distinct) orphaned neighbors before cutting.
  std::vector<NodeId> orphans;
  for (NodeId w : g_.ports(victim)) {
    if (w != victim && alive_[w]) orphans.push_back(w);
  }
  std::sort(orphans.begin(), orphans.end());
  orphans.erase(std::unique(orphans.begin(), orphans.end()), orphans.end());
  for (NodeId w : orphans) overhead_[w] -= 1;

  g_.isolate(victim);
  alive_[victim] = false;
  --n_alive_;
  if (journal_ && !journal_->full) {
    journal_->died.push_back(victim);
    // The heal below rewires only orphan rows; list them explicitly rather
    // than leaning on the dead-row auto-touch (which only sees the last
    // synced adjacency, not edges gained earlier in a multi-event step).
    journal_->dirty.insert(journal_->dirty.end(), orphans.begin(),
                           orphans.end());
  }
  meter_.add_topology(orphans.size());

  heal_neighborhood(orphans);
  last_ = meter_.end_step();
}

void XhealNetwork::heal_neighborhood(const std::vector<NodeId>& orphans) {
  const std::size_t k = orphans.size();
  if (k <= 1) return;  // nothing to reconnect
  if (k <= 4) {
    // Tiny neighborhoods: a cycle is already an optimal patch.
    for (std::size_t i = 0; i < k; ++i) {
      const NodeId a = orphans[i];
      const NodeId b = orphans[(i + 1) % k];
      if (a == b || g_.has_edge(a, b)) continue;
      g_.add_edge(a, b);
      overhead_[a] += 1;
      overhead_[b] += 1;
      meter_.add_topology(1);
      meter_.add_messages(2);
    }
    meter_.add_rounds(2);
    return;
  }
  // The DEX subroutine: contract a p-cycle expander onto the orphan set
  // (virtual vertex z -> orphan z mod k), adding only the patch edges that
  // do not already exist. ζ-style balance gives each orphan ≤ 3·⌈p/k⌉ ≤ 9
  // new edges; the patch's spectral gap is the family constant (Lemma 1).
  const std::uint64_t p = [&] {
    // Smallest prime ≥ max(k, 5); Bertrand guarantees one below 2k.
    auto q = support::smallest_prime_in(std::max<std::uint64_t>(k, 5) - 1,
                                        2 * std::max<std::uint64_t>(k, 5));
    DEX_ASSERT(q.has_value());
    return *q;
  }();
  const PCycle patch(p);
  patch.for_each_edge([&](Vertex x, Vertex y) {
    const NodeId a = orphans[x % k];
    const NodeId b = orphans[y % k];
    if (a == b || g_.has_edge(a, b)) return;
    g_.add_edge(a, b);
    overhead_[a] += 1;
    overhead_[b] += 1;
    meter_.add_topology(1);
    meter_.add_messages(2);
  });
  meter_.add_rounds(2);
}

std::int64_t XhealNetwork::max_degree_overhead() const {
  std::int64_t best = 0;
  for (NodeId u = 0; u < alive_.size(); ++u) {
    if (alive_[u]) best = std::max(best, overhead_[u]);
  }
  return best;
}

}  // namespace dex::xheal
