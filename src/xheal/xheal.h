#pragma once

/// \file xheal.h
/// Xheal with guaranteed patches — the application the paper calls out in
/// its related-work discussion: "The self-healing algorithm Xheal [24]
/// maintains spectral properties of the network … but it relied on a
/// randomized expander construction and hence the spectral properties
/// degraded rapidly. Using our algorithm as a subroutine, Xheal can be
/// efficiently implemented with guaranteed spectral properties."
///
/// This module implements that subroutine composition: XhealNetwork
/// maintains an *arbitrary* reconfigurable graph under adversarial node
/// deletions. When a node dies, its orphaned neighbors are reconnected by a
/// deterministic expander patch — a p-cycle (Definition 1) contracted onto
/// the neighbor set exactly the way DEX contracts its virtual graph onto
/// real nodes — instead of Xheal's original probabilistic expander. The
/// patch guarantees:
///   * the neighbors stay mutually connected with O(1) added edges each
///     (patch degree ≤ 3·⌈p/k⌉ ≤ 9 for k ≥ 2 neighbors),
///   * the patch has the p-cycle family's constant spectral gap
///     deterministically (Lemma 1 applies verbatim),
///   * healing one deletion costs O(k) messages and O(1) rounds locally.
///
/// Insertions attach a node with caller-chosen edges (the adversary's
/// prerogative in the self-healing model of [12, 24]).

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/multigraph.h"
#include "sim/meters.h"
#include "support/prng.h"

namespace dex::xheal {

using graph::Multigraph;
using graph::NodeId;

class XhealNetwork {
 public:
  /// Starts from an arbitrary connected graph.
  explicit XhealNetwork(Multigraph initial);

  /// Inserts a node adjacent to `attach_to` (all alive, at least one).
  NodeId insert(const std::vector<NodeId>& attach_to);

  /// Deletes `victim`; heals its neighborhood with a p-cycle patch.
  void remove(NodeId victim);

  [[nodiscard]] std::size_t n() const { return n_alive_; }
  [[nodiscard]] bool alive(NodeId u) const {
    return u < alive_.size() && alive_[u];
  }
  [[nodiscard]] std::vector<NodeId> alive_nodes() const;
  [[nodiscard]] std::vector<bool> alive_mask() const { return alive_; }

  [[nodiscard]] const Multigraph& graph() const { return g_; }
  [[nodiscard]] const sim::CostMeter& meter() const { return meter_; }
  [[nodiscard]] sim::StepCost last_step() const { return last_; }

  /// Live neighbors of u: g_'s port list verbatim — deletions isolate their
  /// victim, so the graph never holds an edge to a dead node and the row is
  /// already live. Order equals Multigraph port order here (g_ *is* the
  /// topology), making this backend's live view snapshot-canonical too.
  [[nodiscard]] bool live_ports(NodeId u, std::vector<NodeId>& out) const {
    const auto ps = g_.ports(u);
    out.assign(ps.begin(), ps.end());
    return true;
  }

  /// Churn journal for incremental CSR maintenance (graph/csr.h); borrowed.
  void set_view_journal(graph::ViewDelta* j) { journal_ = j; }

  /// Healing-degree overhead of node u: edges added by patches minus edges
  /// lost to deletions (Xheal's degree-increase measure).
  [[nodiscard]] std::int64_t degree_overhead(NodeId u) const {
    return overhead_[u];
  }
  [[nodiscard]] std::int64_t max_degree_overhead() const;

 private:
  void heal_neighborhood(const std::vector<NodeId>& orphans);

  Multigraph g_;
  std::vector<bool> alive_;
  std::size_t n_alive_ = 0;
  std::vector<std::int64_t> overhead_;
  sim::CostMeter meter_;
  sim::StepCost last_;
  graph::ViewDelta* journal_ = nullptr;
};

}  // namespace dex::xheal
