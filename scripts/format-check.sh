#!/usr/bin/env bash
# Verifies that every C++ source/header conforms to .clang-format.
# Exits 0 with a notice when clang-format is unavailable (e.g. minimal
# containers) so the script can run unconditionally in local hooks; CI
# installs clang-format and gets the real check.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format-check: clang-format not found; skipping" >&2
  exit 0
fi

fail=0
while IFS= read -r -d '' f; do
  if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    fail=1
  fi
done < <(find src bench examples tests tools \
              -path tests/det_lint_fixtures -prune -o \
              \( -name '*.h' -o -name '*.cpp' \) -print0)

if [ "$fail" -ne 0 ]; then
  echo "format-check: run 'clang-format -i' on the files above" >&2
  exit 1
fi
echo "format-check: all files clean"
