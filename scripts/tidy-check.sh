#!/usr/bin/env bash
# clang-tidy gate with a checked-in baseline.
#
# Findings are normalized to `<repo-relative-file> <check-name>` pairs and
# compared against tools/tidy_baseline.txt: only pairs NOT in the baseline
# fail the gate, so pre-existing debt never blocks CI while every *new*
# finding does. Burn down debt by fixing a site and deleting its baseline
# line, or legitimize a new finding with --update-baseline (review the
# diff!).
#
# Usage: scripts/tidy-check.sh [--update-baseline] [file.cpp ...]
#   BUILD_DIR=dir   build tree holding compile_commands.json (default:
#                   build; configured automatically when missing)
#   TIDY_JOBS=n     parallel clang-tidy processes (default: nproc)
#
# Exits 0 with a notice when clang-tidy is unavailable (e.g. minimal
# containers) so the script can run unconditionally in local hooks; CI
# installs clang-tidy and gets the real check. On failure the new-finding
# delta is left in $BUILD_DIR/tidy_delta.txt (uploaded as a CI artifact).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=tools/tidy_baseline.txt
BUILD_DIR=${BUILD_DIR:-build}
TIDY_JOBS=${TIDY_JOBS:-$(nproc 2>/dev/null || echo 2)}

update=0
files=()
for arg in "$@"; do
  case "$arg" in
    --update-baseline) update=1 ;;
    *) files+=("$arg") ;;
  esac
done

TIDY_BIN=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY_BIN" >/dev/null 2>&1; then
  echo "tidy-check: $TIDY_BIN not found; skipping" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "tidy-check: configuring $BUILD_DIR for compile_commands.json" >&2
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    >/dev/null
fi

if [ "${#files[@]}" -eq 0 ]; then
  while IFS= read -r -d '' f; do
    files+=("$f")
  done < <(find src -name '*.cpp' -print0 | sort -z)
fi

raw="$BUILD_DIR/tidy_raw.txt"
current="$BUILD_DIR/tidy_current.txt"
delta="$BUILD_DIR/tidy_delta.txt"

# clang-tidy exits non-zero on any warning; the gate below decides
# pass/fail, so tolerate per-file failures and keep the diagnostics.
printf '%s\0' "${files[@]}" |
  xargs -0 -n1 -P "$TIDY_JOBS" \
    "$TIDY_BIN" -p "$BUILD_DIR" --quiet >"$raw" 2>/dev/null || true

# "/abs/path/src/foo.cpp:12:5: warning: ... [check-name]"
#   -> "src/foo.cpp check-name", repo-relative, one line per finding site,
#      deduped to file:check granularity.
sed -n 's/^\([^ :][^:]*\):[0-9][0-9]*:[0-9][0-9]*: warning: .*\[\([a-z0-9.,-]*\)\]$/\1 \2/p' \
    "$raw" |
  sed "s|^$PWD/||" |
  tr ',' '\n' |
  awk 'NF == 2 { file = $1; check = $2 } NF == 1 { check = $1 }
       check != "" { print file, check }' |
  sort -u >"$current"

if [ "$update" -eq 1 ]; then
  {
    echo "# clang-tidy baseline: '<file> <check>' pairs already present in"
    echo "# the tree. scripts/tidy-check.sh fails only on pairs missing"
    echo "# here. Regenerate with: scripts/tidy-check.sh --update-baseline"
    cat "$current"
  } >"$BASELINE"
  echo "tidy-check: baseline updated ($(wc -l <"$current") pairs)"
  exit 0
fi

grep -v '^#' "$BASELINE" | grep -v '^$' | sort -u >"$BUILD_DIR/tidy_base.txt"
comm -13 "$BUILD_DIR/tidy_base.txt" "$current" >"$delta"

if [ -s "$delta" ]; then
  echo "tidy-check: NEW findings not in $BASELINE:" >&2
  sed 's/^/  /' "$delta" >&2
  echo "tidy-check: fix them, or run scripts/tidy-check.sh" \
       "--update-baseline and commit the baseline diff" >&2
  exit 1
fi

stale=$(comm -23 "$BUILD_DIR/tidy_base.txt" "$current" | wc -l)
if [ "$stale" -gt 0 ]; then
  echo "tidy-check: note: $stale baseline pair(s) no longer fire —" \
       "consider --update-baseline to burn them down" >&2
fi
echo "tidy-check: clean ($(wc -l <"$current") baselined finding pairs)"
