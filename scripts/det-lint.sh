#!/usr/bin/env bash
# Runs the determinism lint (tools/det_lint.py) over src/, tools/ and
# examples/. Exits 0 with a notice when python3 is unavailable so the
# script can run unconditionally in local hooks; CI always has python3
# and gets the real check.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v python3 >/dev/null 2>&1; then
  echo "det-lint: python3 not found; skipping" >&2
  exit 0
fi

python3 tools/det_lint.py "$@"
