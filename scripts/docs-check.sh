#!/usr/bin/env bash
# Documentation hygiene gate (run by CI, see .github/workflows/ci.yml):
#
#   1. every C++ header under src/ and bench/ carries a `\file` doc header;
#   2. every relative markdown link in README.md and docs/ resolves to a
#      real file;
#   3. the CLI flags documented in docs/EXPERIMENTS.md (between the
#      cli-flags markers) exactly match what `dex_sim_cli --help` prints;
#   4. every summary-JSON field emitted by src/sim/scenario.cpp is named
#      in the summary-fields section of docs/EXPERIMENTS.md.
#
# Usage: scripts/docs-check.sh [path-to-dex_sim_cli]
# The flag check is skipped with a warning when the binary is not built.
set -u
cd "$(dirname "$0")/.."

fail=0

# ---- 1. \file headers -------------------------------------------------------
while IFS= read -r f; do
  if ! grep -q '\\file' "$f"; then
    echo "docs-check: missing \\file doc header: $f"
    fail=1
  fi
done < <(find src bench -name '*.h' | sort)

# ---- 2. markdown relative links --------------------------------------------
for md in README.md docs/*.md; do
  dir=$(dirname "$md")
  # Extract markdown link targets, keep only relative file paths.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|\#*|mailto:*) continue ;;
    esac
    target="${target%%#*}"
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ]; then
      echo "docs-check: dangling link in $md: $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done

# ---- 3. CLI flag consistency ------------------------------------------------
cli="${1:-build/dex_sim_cli}"
if [ -x "$cli" ]; then
  help_flags=$("$cli" --help | grep -oE '\-\-[a-z][a-z0-9-]*' | sort -u)
  doc_flags=$(sed -n '/cli-flags:begin/,/cli-flags:end/p' docs/EXPERIMENTS.md |
    grep -oE '\-\-[a-z][a-z0-9-]*' | sort -u)
  if [ "$help_flags" != "$doc_flags" ]; then
    echo "docs-check: flag drift between '$cli --help' and docs/EXPERIMENTS.md"
    echo "--- only in --help:"
    comm -23 <(echo "$help_flags") <(echo "$doc_flags") | sed 's/^/    /'
    echo "--- only in docs/EXPERIMENTS.md:"
    comm -13 <(echo "$help_flags") <(echo "$doc_flags") | sed 's/^/    /'
    fail=1
  fi
else
  echo "docs-check: warning: $cli not built; skipping --help flag check"
fi

# ---- 4. summary-field coverage ---------------------------------------------
# Every JsonObject field name scenario.cpp's summary path emits must be
# documented (backticked) between the summary-fields markers — adding a
# summary field without documenting it fails CI.
emitted=$(grep -oE '\.add\("[a-z_0-9]+"' src/sim/scenario.cpp |
  sed -E 's/^\.add\("//; s/"$//' | sort -u)
documented=$(sed -n '/summary-fields:begin/,/summary-fields:end/p' \
  docs/EXPERIMENTS.md | grep -oE '`[a-z_0-9]+`' | tr -d '`' | sort -u)
missing=$(comm -23 <(echo "$emitted") <(echo "$documented"))
if [ -n "$missing" ]; then
  echo "docs-check: summary fields emitted by src/sim/scenario.cpp but not"
  echo "documented in docs/EXPERIMENTS.md (summary-fields section):"
  echo "$missing" | sed 's/^/    /'
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "docs-check: OK"
fi
exit "$fail"
