#pragma once

/// \file bench_common.h
/// Shared driver glue for the experiment binaries: adversary views over the
/// different network types and a tiny churn driver.

#include <vector>

#include "adversary/adversary.h"
#include "baselines/flood_rebuild.h"
#include "baselines/law_siu.h"
#include "baselines/random_flip.h"
#include "dex/network.h"

namespace dex::bench {

inline adversary::AdversaryView view_of(DexNetwork& net) {
  return adversary::AdversaryView{
      [&net] { return net.n(); },
      [&net] { return net.alive_nodes(); },
      [&net] { return net.snapshot(); },
      [&net] { return net.alive_mask(); },
      [&net](NodeId u) { return static_cast<std::size_t>(net.total_load(u)); },
      [&net] { return net.coordinator(); },
      {},
  };
}

inline adversary::AdversaryView view_of(baselines::LawSiuNetwork& net) {
  adversary::AdversaryView v{
      [&net] { return net.n(); },
      [&net] { return net.alive_nodes(); },
      [&net] { return net.snapshot(); },
      [&net] { return net.alive_mask(); },
      [&net](NodeId u) { return net.degree(u); },
      [] { return graph::kInvalidNode; },
      {},
  };
  v.snapshot_without = [&net](NodeId u) { return net.snapshot_without(u); };
  return v;
}

inline adversary::AdversaryView view_of(baselines::FloodRebuildNetwork& net) {
  return adversary::AdversaryView{
      [&net] { return net.n(); },
      [&net] { return net.alive_nodes(); },
      [&net] { return net.snapshot(); },
      [&net] { return net.alive_mask(); },
      [&net](NodeId u) {
        (void)u;
        return net.max_degree();
      },
      [] { return graph::kInvalidNode; },
      {},
  };
}

inline adversary::AdversaryView view_of(baselines::RandomFlipNetwork& net) {
  return adversary::AdversaryView{
      [&net] { return net.n(); },
      [&net] { return net.alive_nodes(); },
      [&net] { return net.snapshot(); },
      [&net] { return net.alive_mask(); },
      [&net](NodeId u) { return net.snapshot().degree(u); },
      [] { return graph::kInvalidNode; },
      {},
  };
}

inline void apply(DexNetwork& net, const adversary::ChurnAction& a) {
  if (a.insert) {
    net.insert(a.target);
  } else {
    net.remove(a.target);
  }
}

inline void apply(baselines::LawSiuNetwork& net,
                  const adversary::ChurnAction& a) {
  if (a.insert) {
    net.insert();
  } else {
    net.remove(a.target);
  }
}

inline void apply(baselines::FloodRebuildNetwork& net,
                  const adversary::ChurnAction& a) {
  if (a.insert) {
    net.insert();
  } else {
    net.remove(a.target);
  }
}

inline void apply(baselines::RandomFlipNetwork& net,
                  const adversary::ChurnAction& a) {
  if (a.insert) {
    net.insert();
  } else {
    net.remove(a.target);
  }
}

}  // namespace dex::bench
