#pragma once

/// \file bench_common.h
/// Umbrella include for the experiment binaries: the unified overlay
/// interface, the scenario engine and the adversary strategies. Every
/// backend is driven through sim::ScenarioRunner (or sim::make_view for
/// ad-hoc stepping), so the per-backend view_of()/apply() overloads this
/// header used to carry are gone.

#include "adversary/adversary.h"
#include "sim/overlay.h"
#include "sim/scenario.h"
