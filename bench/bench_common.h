#pragma once

/// \file bench_common.h
/// Umbrella include for the experiment binaries: the unified overlay
/// interface, the scenario engine and the adversary strategies. Every
/// backend is driven through sim::ScenarioRunner (or sim::make_view for
/// ad-hoc stepping), so the per-backend view_of()/apply() overloads this
/// header used to carry are gone.

#include "adversary/adversary.h"
#include "sim/overlay.h"
#include "sim/scenario.h"

namespace dex::bench {

/// Mean routing stretch of a traffic trial: realized hops over BFS-optimal
/// hops across the delivered ops (1 when nothing was delivered). Shared by
/// the traffic benches so the ratio can never drift between them.
inline double stretch(const sim::ScenarioResult& r) {
  return r.total_opt_hops == 0
             ? 1.0
             : static_cast<double>(r.total_op_hops) /
                   static_cast<double>(r.total_opt_hops);
}

/// Realized hops per op (0 with no traffic).
inline double hops_per_op(const sim::ScenarioResult& r) {
  return r.total_ops == 0 ? 0.0
                          : static_cast<double>(r.total_op_hops) /
                                static_cast<double>(r.total_ops);
}

}  // namespace dex::bench
