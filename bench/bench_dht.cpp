// E7 — serving key-value traffic under churn (§4.4.4 generalized to every
// backend). One declarative ExperimentPlan drives all six overlays through
// the same Zipf read/write mix while batch churn heals underneath: requests
// route through HealingOverlay::route (DEX: locally computable p-cycle
// paths; baselines: BFS on the live view), keys re-home by rendezvous
// hashing into the alive-node space, and the trial aggregates carry hops,
// stretch vs. BFS-optimal, failed lookups and rehash transfer — the
// stretch/latency comparison against Law–Siu and Xheal the paper's
// related-work section argues about. A second sweep pins the paper's
// original claim: DEX's per-op routing cost stays O(log n) across sizes.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "metrics/table.h"
#include "sim/experiment.h"
#include "sim/sinks.h"

using namespace dex;
using dex::bench::hops_per_op;
using dex::bench::stretch;

int main() {
  std::printf("=== E7: key-value traffic under churn ===\n\n");

  std::printf("-- all backends, zipf read/write mix over batch churn --\n\n");
  {
    sim::ExperimentPlan plan;
    plan.backends = sim::known_overlays();
    plan.scenarios = {"churn"};
    plan.populations = {64, 256};
    plan.batch_sizes = {4};
    plan.seeds = {7};
    plan.base.steps = 150;
    plan.base.traffic.workload = "zipf";
    plan.base.traffic.ops_per_step = 64;
    plan.base.traffic.keyspace = 2048;

    sim::AggregateSink agg;
    sim::ExecutorOptions opts;
    opts.jobs = 0;  // all cores; the output is identical regardless
    opts.stream_steps = false;
    opts.collect_results = false;
    sim::Executor executor(opts);
    executor.add_sink(agg);
    executor.run(plan.expand());

    metrics::Table t({"backend", "n0", "ops", "hops/op", "stretch", "failed",
                      "moved keys", "rehash msgs"});
    for (const auto& row : agg.rows()) {
      const auto& r = row.result;
      t.add_row({r.backend, std::to_string(row.info.n0),
                 std::to_string(r.total_ops),
                 metrics::Table::num(hops_per_op(r), 2),
                 metrics::Table::num(stretch(r), 2),
                 std::to_string(r.total_failed_lookups +
                                r.total_failed_writes),
                 std::to_string(r.total_moved_keys),
                 std::to_string(r.total_rehash_messages)});
    }
    t.print();
    std::printf(
        "\nShape check: failed ops (lookups *and* writes) are 0 everywhere\n"
        "(no acknowledged key is lost across rebuilds, no write is dropped);\n"
        "the baselines route at stretch 1 by\n"
        "construction (their request path *is* the BFS optimum, bought with\n"
        "a global view), while DEX pays a small constant stretch for routes\n"
        "computable from O(log n) local state.\n");
  }

  std::printf("\n-- DEX routing cost vs n (the O(log n) claim) --\n\n");
  {
    sim::ExperimentPlan plan;
    plan.backends = {"dex-worstcase"};
    plan.scenarios = {"churn"};
    plan.populations = {64, 256, 1024};
    plan.seeds = {11};
    plan.base.steps = 100;
    plan.base.traffic.workload = "zipf";
    plan.base.traffic.ops_per_step = 64;
    plan.base.traffic.keyspace = 2048;

    sim::AggregateSink agg;
    sim::ExecutorOptions opts;
    opts.jobs = 0;
    opts.stream_steps = false;
    opts.collect_results = false;
    sim::Executor executor(opts);
    executor.add_sink(agg);
    executor.run(plan.expand());

    metrics::Table t({"n0", "hops/op", "log2 n0", "hops / log2 n0"});
    for (const auto& row : agg.rows()) {
      const double lg = std::log2(static_cast<double>(row.info.n0));
      t.add_row({std::to_string(row.info.n0),
                 metrics::Table::num(hops_per_op(row.result), 2),
                 metrics::Table::num(lg, 1),
                 metrics::Table::num(hops_per_op(row.result) / lg, 2)});
    }
    t.print();
    std::printf(
        "\nShape check: a 16x population growth moves hops/log2(n) only\n"
        "within a narrow band (sublinear in n, consistent with the O(log n)\n"
        "routing claim of §4.4.4, measured under live churn; the residual\n"
        "upward drift at these small sizes is the p-cycle diameter constant\n"
        "still settling, so expect near-flat, not exactly flat).\n");
  }
  return 0;
}
