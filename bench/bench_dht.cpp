// E7 — the DHT layered on DEX (§4.4.4): insertion/lookup cost O(log n)
// messages and rounds across sizes; operations keep working during
// staggered rebuilds; keys stay balanced across nodes; the rebuild-time
// re-hash cost amortizes to O(1) per step (the paper staggers it — we
// report both the burst total and the per-step amortization).

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "dex/dht.h"
#include "metrics/stats.h"
#include "metrics/table.h"

using namespace dex;

int main() {
  std::printf("=== E7: DHT on DEX ===\n\n-- operation cost vs n --\n\n");
  metrics::Table t({"n", "p", "put msgs (mean)", "get msgs (mean)",
                    "get msgs (p99)", "log2 p", "mean/log2 p"});
  for (std::size_t n0 : {128u, 512u, 2048u, 8192u}) {
    Params prm;
    prm.seed = 7 + n0;
    prm.mode = RecoveryMode::WorstCase;
    DexNetwork net(n0, prm);
    Dht dht(net);
    support::Rng rng(n0);
    std::vector<double> put_costs, get_costs;
    for (std::uint64_t k = 0; k < 400; ++k) {
      const auto origin = net.alive_nodes()[rng.below(net.n())];
      dht.put(k, k * 3, origin);
      put_costs.push_back(static_cast<double>(dht.last_cost().messages));
      (void)dht.get(k, origin);
      get_costs.push_back(static_cast<double>(dht.last_cost().messages));
    }
    const auto ps = metrics::summarize(put_costs);
    const auto gs = metrics::summarize(get_costs);
    const double lg = std::log2(static_cast<double>(net.p()));
    t.add_row({std::to_string(n0), std::to_string(net.p()),
               metrics::Table::num(ps.mean, 1), metrics::Table::num(gs.mean, 1),
               metrics::Table::num(gs.p99, 0), metrics::Table::num(lg, 1),
               metrics::Table::num(gs.mean / lg, 2)});
  }
  t.print();
  std::printf(
      "\nShape check: mean/log2(p) is a constant across the sweep — the\n"
      "O(log n) routing claim.\n");

  std::printf("\n-- correctness and cost during a staggered inflation --\n\n");
  {
    Params prm;
    prm.seed = 3;
    prm.mode = RecoveryMode::WorstCase;
    DexNetwork net(128, prm);
    Dht dht(net);
    support::Rng rng(9);
    for (std::uint64_t k = 0; k < 512; ++k) dht.put(k, k ^ 0x5a5a);
    std::size_t ops_mid_flight = 0, failures = 0;
    std::vector<double> mid_costs;
    for (std::size_t s = 0; s < 4000; ++s) {
      const auto nodes = net.alive_nodes();
      net.insert(nodes[rng.below(nodes.size())]);
      if (net.staggered_active()) {
        const std::uint64_t k = rng.below(512);
        const auto v = dht.get(k);
        if (!v || *v != (k ^ 0x5a5a)) ++failures;
        mid_costs.push_back(static_cast<double>(dht.last_cost().messages));
        ++ops_mid_flight;
      }
    }
    const auto mc = metrics::summarize(mid_costs);
    std::printf(
        "lookups issued mid-rebuild: %zu, failures: %zu, mean msgs %.1f "
        "(p99 %.0f)\n",
        ops_mid_flight, failures, mc.mean, mc.p99);
    std::printf("rehash events: %llu, total rehash messages: %llu "
                "(amortized %.2f per churn step)\n",
                static_cast<unsigned long long>(dht.rehash_count()),
                static_cast<unsigned long long>(dht.rehash_messages()),
                static_cast<double>(dht.rehash_messages()) / 4000.0);
  }

  std::printf("\n-- key load balance (6400 keys, n=64) --\n\n");
  {
    Params prm;
    prm.seed = 4;
    DexNetwork net(64, prm);
    Dht dht(net);
    for (std::uint64_t k = 0; k < 6400; ++k) dht.put(k, k);
    const auto per = dht.items_per_alive_node();
    std::vector<double> loads(per.begin(), per.end());
    const auto s = metrics::summarize(loads);
    std::printf("items/node: mean %.1f, p50 %.0f, p99 %.0f, max %.0f "
                "(max/mean = %.2f)\n",
                s.mean, s.p50, s.p99, s.max, s.max / s.mean);
    std::printf("\nShape check: zero failures mid-rebuild; max/mean load\n"
                "bounded by a small constant (the 4*zeta vertex cap).\n");
  }
  return 0;
}
