// E13 — healing racing churn: the discrete-event core (sim/event/) swept
// over message-loss rate x mean link latency. The sync engine's lockstep
// fiction — every batch applies and fully heals before the next one is
// drawn — is exactly what this bench relaxes: with uniform:A,B links each
// churn batch is airborne for several ticks, later injections race it, and
// a loss rate p turns each delivery into a geometric retransmit sequence.
//
// Per (loss, latency) cell the bench reports, from the same StepRecord
// trace the CSV sinks see:
//
//  * recovery time — mean settle lag in ticks, mean(vtime - step*period):
//    how long a churn batch stays in flight before the overlay has applied
//    and re-healed it (the event-layer analogue of the paper's recovery
//    rounds);
//  * dropped deliveries — retransmits forced by loss, churn and traffic
//    combined (ScenarioResult::total_dropped);
//  * max in-flight — the deepest healing-racing-churn backlog any step saw;
//  * failed ops — whether the routing contract survived the racing regime.
//
// Rows append to BENCH_async.json as "kind":"async_sweep" JSONL — the CI
// bench-async job uploads that file as an artifact, so the loss/latency
// response surface is archived per commit alongside BENCH_scale.json.
//
// Usage: bench_async [json_path]   (default BENCH_async.json)

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "metrics/table.h"
#include "sim/event/event.h"
#include "sim/experiment.h"

using namespace dex;

namespace {

constexpr std::size_t kN0 = 512;
constexpr std::size_t kSteps = 120;

sim::ScenarioSpec base_spec(const char* latency, double loss) {
  sim::ScenarioSpec spec;
  spec.seed = 1;
  spec.steps = kSteps;
  spec.batch_size = 4;
  spec.burst_every = 8;
  spec.traffic.workload = "zipf";
  spec.traffic.ops_per_step = 16;
  spec.traffic.keyspace = 2048;
  spec.event.enabled = true;
  spec.event.latency = *sim::LatencyModel::parse(latency);
  spec.event.loss_rate = loss;
  return spec;
}

/// Mean settle lag in ticks over the trial's trace: how far behind its
/// injection each step finalized. Zero in the lockstep limit by the
/// sync-equivalence contract (tests/test_event_engine.cpp).
double mean_settle_lag(const sim::ScenarioResult& res, std::uint64_t period) {
  if (res.trace.empty()) return 0.0;
  double lag = 0.0;
  for (const auto& rec : res.trace) {
    lag += static_cast<double>(rec.vtime - rec.step * period);
  }
  return lag / static_cast<double>(res.trace.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_async.json";
  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }

  std::printf("=== E13: healing racing churn — loss x latency sweep ===\n\n");

  const std::vector<double> losses = {0.0, 0.05, 0.15};
  const std::vector<const char*> latencies = {"fixed:0", "uniform:1,4",
                                              "uniform:4,12", "exp:8"};
  bool shape_ok = true;
  for (const char* backend : {"dex-amortized", "lawsiu"}) {
    std::printf("-- %s, n0=%zu, %zu steps, zipf traffic --\n\n", backend, kN0,
                kSteps);
    metrics::Table t({"latency", "loss", "recovery (ticks)", "dropped",
                      "max in-flight", "failed ops", "hops/op"});
    // Recovery time at loss 0 per latency model, to check loss adds on top.
    double lossless_lag = 0.0;
    for (const char* latency : latencies) {
      for (const double loss : losses) {
        const auto spec = base_spec(latency, loss);
        auto overlay = sim::make_overlay(backend, kN0, sim::overlay_seed(1));
        auto strategy = sim::make_strategy("churn");
        sim::ScenarioRunner runner(*overlay, *strategy, spec);
        const auto res = runner.run();

        const double lag = mean_settle_lag(res, spec.event.period);
        if (loss == 0.0) lossless_lag = lag;
        const auto failed = res.total_failed_lookups + res.total_failed_writes;
        t.add_row({latency, metrics::Table::num(loss, 2),
                   metrics::Table::num(lag, 1),
                   std::to_string(res.total_dropped),
                   std::to_string(res.max_in_flight), std::to_string(failed),
                   metrics::Table::num(bench::hops_per_op(res), 2)});

        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "{\"kind\": \"async_sweep\", \"backend\": \"%s\", "
            "\"n0\": %zu, \"steps\": %zu, \"latency\": \"%s\", "
            "\"loss_rate\": %.2f, \"recovery_ticks\": %.2f, "
            "\"dropped_deliveries\": %llu, \"max_in_flight\": %zu, "
            "\"failed_ops\": %llu, \"hops_per_op\": %.2f}\n",
            backend, kN0, kSteps, latency, loss, lag,
            static_cast<unsigned long long>(res.total_dropped),
            res.max_in_flight, static_cast<unsigned long long>(failed),
            bench::hops_per_op(res));
        json << buf;

        // Shape: zero loss at zero latency is the lockstep limit (no lag,
        // no drops); loss can only add retransmit delay on top of the
        // lossless lag for the same latency model.
        if (loss == 0.0 && std::string(latency) == "fixed:0") {
          shape_ok = shape_ok && lag == 0.0 && res.total_dropped == 0;
        }
        if (loss > 0.0) {
          shape_ok = shape_ok && res.total_dropped > 0 && lag >= lossless_lag;
        }
      }
    }
    t.print();
    std::printf("\n");
  }

  std::printf(
      "Shape check: %s. The fixed:0/loss-0 corner reproduces the lockstep\n"
      "engine exactly (0 recovery ticks, 0 drops — the byte-equivalence the\n"
      "tests pin); raising loss at fixed latency only adds retransmit delay,\n"
      "so recovery ticks grow monotonically down each latency block while\n"
      "failed ops stay within a handful out of ~2k served: healing keeps\n"
      "winning the race against churn at these rates. Rows -> %s\n"
      "(\"kind\": \"async_sweep\").\n",
      shape_ok ? "OK" : "FAILED", json_path.c_str());
  return shape_ok ? 0 : 1;
}
