// E5/E6 — type-2 recovery economics.
//
// Section 1 (Lemma 5 / Cor. 1, amortized mode): insert-only growth crosses
// inflation boundaries; the rebuild step costs Θ(n·polylog) messages while
// quiet steps stay polylogarithmic; amortized per-step cost is O(log² n)
// messages / O(log n) rounds.
//
// Section 2 (Lemma 8): consecutive type-2 events are separated by Ω(n)
// type-1 steps.
//
// Section 3 (Lemma 9, worst-case mode): the same workload in staggered mode
// has NO Θ(n) step — the maximum per-step cost stays polylogarithmic even
// while rebuilds are in flight.

#include <cstdio>

#include "bench_common.h"
#include "metrics/stats.h"
#include "metrics/table.h"

using namespace dex;

int main() {
  std::printf("=== E5: amortized mode — cost profile across inflations ===\n\n");
  metrics::Table t({"n0", "steps", "rebuilds", "rebuild msgs (mean)",
                    "quiet msgs (p99)", "amortized msgs/step",
                    "amortized rounds/step"});
  for (std::size_t n0 : {128u, 256u, 512u, 1024u}) {
    Params prm;
    prm.seed = 31 + n0;
    prm.mode = RecoveryMode::Amortized;
    DexNetwork net(n0, prm);
    support::Rng rng(n0);
    const std::size_t steps = 14 * n0;  // crosses at least one inflation
    std::vector<double> rebuild_msgs, quiet_msgs;
    std::uint64_t total_msgs = 0, total_rounds = 0;
    for (std::size_t s = 0; s < steps; ++s) {
      const auto nodes = net.alive_nodes();
      net.insert(nodes[rng.below(nodes.size())]);
      const auto& rep = net.last_report();
      total_msgs += rep.cost.messages;
      total_rounds += rep.cost.rounds;
      (rep.type2_event ? rebuild_msgs : quiet_msgs)
          .push_back(static_cast<double>(rep.cost.messages));
    }
    const auto rb = metrics::summarize(rebuild_msgs);
    const auto q = metrics::summarize(quiet_msgs);
    t.add_row({std::to_string(n0), std::to_string(steps),
               std::to_string(rb.count), metrics::Table::num(rb.mean, 0),
               metrics::Table::num(q.p99, 0),
               metrics::Table::num(
                   static_cast<double>(total_msgs) / static_cast<double>(steps), 1),
               metrics::Table::num(static_cast<double>(total_rounds) /
                                       static_cast<double>(steps), 1)});
  }
  t.print();

  std::printf(
      "\n=== E6 / Lemma 8: separation between consecutive type-2 events "
      "===\n\n");
  {
    Params prm;
    prm.seed = 77;
    prm.mode = RecoveryMode::Amortized;
    DexNetwork net(128, prm);
    support::Rng rng(5);
    std::vector<std::size_t> events;
    std::vector<std::size_t> n_at_event;
    for (std::size_t s = 0; s < 60000 && events.size() < 4; ++s) {
      const auto nodes = net.alive_nodes();
      net.insert(nodes[rng.below(nodes.size())]);
      if (net.last_report().type2_event) {
        events.push_back(s);
        n_at_event.push_back(net.n());
      }
    }
    metrics::Table sep({"event", "step", "n at event", "separation",
                        "separation / n"});
    for (std::size_t i = 0; i < events.size(); ++i) {
      const std::size_t gap = i == 0 ? events[0] : events[i] - events[i - 1];
      const double ratio =
          static_cast<double>(gap) /
          static_cast<double>(i == 0 ? 128 : n_at_event[i - 1]);
      sep.add_row({std::to_string(i), std::to_string(events[i]),
                   std::to_string(n_at_event[i]), std::to_string(gap),
                   metrics::Table::num(ratio, 2)});
    }
    sep.print();
    std::printf("\nShape check: separation/n >= ~3 for insert-only growth\n"
                "(every new-cycle slot must refill; Lemma 8's Omega(n)).\n");
  }

  std::printf(
      "\n=== E5(b) / Lemma 9: the same growth in worst-case (staggered) mode "
      "===\n\n");
  metrics::Table w({"n0", "steps", "rebuilds", "max msgs in ANY step",
                    "max rounds in ANY step", "max topo in ANY step",
                    "forced sync"});
  for (std::size_t n0 : {128u, 256u, 512u, 1024u}) {
    Params prm;
    prm.seed = 91 + n0;
    prm.mode = RecoveryMode::WorstCase;
    DexNetwork net(n0, prm);
    support::Rng rng(n0 + 1);
    const std::size_t steps = 14 * n0;
    std::uint64_t max_msgs = 0, max_rounds = 0, max_topo = 0, rebuilds = 0;
    for (std::size_t s = 0; s < steps; ++s) {
      const auto nodes = net.alive_nodes();
      net.insert(nodes[rng.below(nodes.size())]);
      const auto& rep = net.last_report();
      max_msgs = std::max(max_msgs, rep.cost.messages);
      max_rounds = std::max(max_rounds, rep.cost.rounds);
      max_topo = std::max(max_topo, rep.cost.topology_changes);
      if (rep.type2_event) ++rebuilds;
    }
    w.add_row({std::to_string(n0), std::to_string(steps),
               std::to_string(rebuilds), std::to_string(max_msgs),
               std::to_string(max_rounds), std::to_string(max_topo),
               std::to_string(net.forced_sync_type2())});
  }
  w.print();
  std::printf(
      "\nShape check: amortized mode's rebuild steps cost Θ(n·polylog)\n"
      "messages and grow linearly down the table; worst-case mode's per-step\n"
      "maxima stay bounded by O((1/θ)·log n) — no step ever pays Θ(n).\n");
  return 0;
}
