// E14 — saturation curves for the concurrent serving front-end
// (src/serve/): closed-loop clients driving every backend through the
// event engine's bounded per-home queues, sweeping the ops-in-flight
// ceiling (--clients) as the offered-load axis. Three sections:
//
//  * per-backend saturation curves: clients in {1, 4, 16, 64} x all six
//    backends, deterministic (no wall clock inside), emitted as
//    "kind":"serve_curve" JSONL rows — offered load vs throughput plus
//    p50/p99/p999 virtual-tick latency. Shape checks gate: zero lost
//    acknowledged keys everywhere, conservation (completed + shed ==
//    steps x ops_per_step), and a shard-count-invariance byte compare of
//    the summary JSON;
//  * a rehash-storm cell: hotspot traffic over batch churn into shallow
//    queues with a tight SLO — admission control must visibly engage
//    (nonzero shed), rehash jobs must backpressure clients (nonzero
//    timeouts against the storm-free cell's latency);
//  * wall-clock "kind":"phase_timing" rows ("engine": "serve") for
//    tools/perf_guard.py, so the serving event path is regression-gated
//    alongside the sync and event hot paths.
//
// Usage: bench_serve [n0] [json_path]
//   n0        population for the timed phase rows (default 10000; the
//             saturation curves run at min(n0, 2000) so the O(n)-per-step
//             baselines stay cheap)
//   json_path where the JSONL rows go (default BENCH_serve.json)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "metrics/table.h"
#include "sim/experiment.h"
#include "sim/scenario.h"

using namespace dex;
using Clock = std::chrono::steady_clock;

namespace {

/// The saturation cell: uniform traffic, comfortable queues, fixed links —
/// the only moving axis is the client count.
sim::ScenarioSpec serve_spec(std::size_t steps, std::size_t clients) {
  sim::ScenarioSpec spec;
  spec.steps = steps;
  spec.record_trace = false;
  spec.seed = 1;
  spec.traffic.workload = "uniform";
  spec.traffic.ops_per_step = 64;
  spec.traffic.keyspace = 4096;
  spec.event.enabled = true;
  spec.event.latency = *sim::LatencyModel::parse("fixed:2");
  spec.serve.enabled = true;
  spec.serve.clients = clients;
  spec.serve.queue_depth = 16;
  spec.serve.service_ticks = 2;
  return spec;
}

/// The storm cell: hotspot traffic over batch churn, shallow queues, slow
/// service, tight SLO — built so rehash jobs and admission control are
/// *visible* in the counters, not hypothetical.
sim::ScenarioSpec storm_spec(std::size_t steps) {
  sim::ScenarioSpec spec = serve_spec(steps, /*clients=*/32);
  spec.batch_size = 8;
  spec.traffic.workload = "hotspot";
  spec.serve.queue_depth = 4;
  spec.serve.service_ticks = 4;
  spec.serve.op_timeout = 16;
  return spec;
}

sim::ScenarioResult run_trial(const std::string& backend, std::size_t n,
                              const sim::ScenarioSpec& spec) {
  auto overlay = sim::make_overlay(backend, n, sim::overlay_seed(spec.seed));
  auto strategy = sim::make_strategy("churn");
  sim::ScenarioRunner runner(*overlay, *strategy, spec);
  return runner.run();
}

void emit_curve_row(std::ofstream& json, const char* cell,
                    const sim::ScenarioResult& r) {
  const auto& sv = r.serve_latency;
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"kind\": \"serve_curve\", \"cell\": \"%s\", \"backend\": \"%s\", "
      "\"clients\": %zu, \"queue_depth\": %zu, \"completed\": %zu, "
      "\"shed\": %zu, \"timeouts\": %zu, \"peak_queue\": %zu, "
      "\"makespan\": %llu, \"throughput\": %.4f, \"lat_p50\": %llu, "
      "\"lat_p99\": %llu, \"lat_p999\": %llu, \"lat_max\": %llu}\n",
      cell, r.backend.c_str(), r.spec.serve.clients, r.spec.serve.queue_depth,
      r.serve_completed, r.serve_shed, r.serve_timeouts, r.serve_peak_queue,
      static_cast<unsigned long long>(r.serve_makespan),
      r.serve_makespan
          ? static_cast<double>(r.serve_completed) /
                static_cast<double>(r.serve_makespan)
          : 0.0,
      static_cast<unsigned long long>(sv.quantile(0.50)),
      static_cast<unsigned long long>(sv.quantile(0.99)),
      static_cast<unsigned long long>(sv.quantile(0.999)),
      static_cast<unsigned long long>(sv.max()));
  json << buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n0 =
      argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10))
               : 10000;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_serve.json";
  if (n0 < 100) {
    std::fprintf(stderr, "bench_serve: n0 must be >= 100\n");
    return 2;
  }
  const std::size_t curve_n = std::min<std::size_t>(n0, 2000);
  constexpr std::size_t kSteps = 30;
  bool ok = true;

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }

  std::printf("=== E14: serving front-end saturation curves ===\n\n");
  std::printf("-- offered load (clients) vs throughput, n=%zu --\n\n",
              curve_n);
  {
    metrics::Table t({"backend", "clients", "completed", "shed", "thpt",
                      "p50", "p99", "p999", "peak q"});
    for (const auto& backend : sim::known_overlays()) {
      for (const std::size_t clients :
           {std::size_t{1}, std::size_t{4}, std::size_t{16},
            std::size_t{64}}) {
        const auto spec = serve_spec(kSteps, clients);
        const auto r = run_trial(backend, curve_n, spec);
        emit_curve_row(json, "saturation", r);
        const std::size_t offered = kSteps * spec.traffic.ops_per_step;
        if (r.serve_completed + r.serve_shed != offered) {
          std::fprintf(stderr,
                       "FAIL %s clients=%zu: completed %zu + shed %zu != "
                       "offered %zu\n",
                       backend.c_str(), clients, r.serve_completed,
                       r.serve_shed, offered);
          ok = false;
        }
        if (r.total_failed_lookups + r.total_failed_writes != 0) {
          std::fprintf(stderr, "FAIL %s clients=%zu: %zu lost acknowledged "
                       "ops\n", backend.c_str(), clients,
                       r.total_failed_lookups + r.total_failed_writes);
          ok = false;
        }
        const auto& lat = r.serve_latency;
        t.add_row({backend, std::to_string(clients),
                   std::to_string(r.serve_completed),
                   std::to_string(r.serve_shed),
                   metrics::Table::num(
                       r.serve_makespan
                           ? static_cast<double>(r.serve_completed) /
                                 static_cast<double>(r.serve_makespan)
                           : 0.0,
                       3),
                   std::to_string(lat.quantile(0.50)),
                   std::to_string(lat.quantile(0.99)),
                   std::to_string(lat.quantile(0.999)),
                   std::to_string(r.serve_peak_queue)});
      }
    }
    t.print();
    std::printf(
        "\nShape check: every cell conserves its op budget (completed + shed\n"
        "== offered) and loses zero acknowledged keys; throughput climbs\n"
        "with clients until queueing flattens it — the saturation knee the\n"
        "curves exist to locate.\n");
  }

  // Shard-count invariance: the acceptance criterion, checked where the
  // data is produced. Histograms merge associatively, the summary omits the
  // shard knob, so the emitted bytes must not move.
  {
    auto spec = serve_spec(kSteps, /*clients=*/16);
    const auto one = run_trial("dex-worstcase", curve_n, spec);
    spec.serve.shards = 7;
    const auto seven = run_trial("dex-worstcase", curve_n, spec);
    if (sim::summary_json(one) != sim::summary_json(seven)) {
      std::fprintf(stderr,
                   "FAIL: summary JSON differs between 1 and 7 shards\n");
      ok = false;
    } else {
      std::printf("\nShard invariance: 1-shard and 7-shard summaries are "
                  "byte-identical.\n");
    }
  }

  std::printf("\n-- rehash-storm cell: hotspot x batch churn x shallow "
              "queues --\n\n");
  {
    metrics::Table t({"backend", "completed", "shed", "timeouts", "p99",
                      "p999", "peak q"});
    for (const char* backend : {"dex-worstcase", "dex-amortized", "lawsiu"}) {
      const auto r = run_trial(backend, curve_n, storm_spec(kSteps));
      emit_curve_row(json, "storm", r);
      if (r.serve_shed == 0) {
        std::fprintf(stderr,
                     "FAIL %s: storm cell shed nothing — admission control "
                     "never engaged\n", backend);
        ok = false;
      }
      if (r.serve_timeouts == 0) {
        std::fprintf(stderr,
                     "FAIL %s: storm cell missed no SLO — queueing delay "
                     "never materialized\n", backend);
        ok = false;
      }
      if (r.total_failed_lookups + r.total_failed_writes != 0) {
        std::fprintf(stderr, "FAIL %s: storm cell lost acknowledged ops\n",
                     backend);
        ok = false;
      }
      const auto& lat = r.serve_latency;
      t.add_row({backend, std::to_string(r.serve_completed),
                 std::to_string(r.serve_shed),
                 std::to_string(r.serve_timeouts),
                 std::to_string(lat.quantile(0.99)),
                 std::to_string(lat.quantile(0.999)),
                 std::to_string(r.serve_peak_queue)});
    }
    t.print();
    std::printf(
        "\nShape check: churn-displaced keys become rehash jobs occupying\n"
        "the same stations clients queue at, so the storm shows up as shed\n"
        "requests and SLO misses — never as lost acknowledged keys.\n");
  }

  std::printf("\n-- phase timing (wall clock) for the perf guard, n=%zu "
              "--\n\n", n0);
  {
    metrics::Table t({"backend", "n0", "steps", "wall ms", "us/op"});
    for (const char* backend : {"dex-worstcase", "dex-amortized", "lawsiu"}) {
      constexpr std::size_t kTimedSteps = 20;
      auto spec = serve_spec(kTimedSteps, /*clients=*/16);
      spec.time_phases = true;
      auto overlay =
          sim::make_overlay(backend, n0, sim::overlay_seed(spec.seed));
      auto strategy = sim::make_strategy("churn");
      sim::ScenarioRunner runner(*overlay, *strategy, spec);
      const auto t0 = Clock::now();
      const auto res = runner.run();
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      const double us_per_op =
          res.total_ops
              ? 1000.0 * ms / static_cast<double>(res.total_ops)
              : 0.0;
      char buf[512];
      std::snprintf(buf, sizeof buf,
                    "{\"kind\": \"phase_timing\", \"backend\": \"%s\", "
                    "\"engine\": \"serve\", "
                    "\"n0\": %zu, \"steps\": %zu, \"wall_ms\": %.1f, "
                    "\"churn_us_per_step\": %.1f, \"view_us_per_step\": "
                    "%.1f, \"traffic_us_per_step\": %.1f, "
                    "\"us_per_op\": %.2f}\n",
                    backend, n0, kTimedSteps, ms,
                    res.churn_us / static_cast<double>(kTimedSteps),
                    res.view_us / static_cast<double>(kTimedSteps),
                    res.traffic_us / static_cast<double>(kTimedSteps),
                    us_per_op);
      json << buf;
      t.add_row({backend, std::to_string(n0), std::to_string(kTimedSteps),
                 metrics::Table::num(ms, 0),
                 metrics::Table::num(us_per_op, 1)});
    }
    t.print();
    std::printf(
        "\nThese rows land in %s as \"kind\":\"phase_timing\" with\n"
        "\"engine\": \"serve\" — tools/perf_guard.py gates them against\n"
        "tools/perf_baseline.json at 2x, so queueing bookkeeping growing a\n"
        "per-op O(n) term fails CI instead of shipping.\n",
        json_path.c_str());
  }

  if (!ok) {
    std::fprintf(stderr, "\nbench_serve: shape checks FAILED\n");
    return 1;
  }
  std::printf("\nAll shape checks passed.\n");
  return 0;
}
