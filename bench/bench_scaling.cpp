// E3 — Theorem 1: per-step recovery costs in worst-case mode grow like
// O(log n) rounds and messages with O(1) topology changes, per step, w.h.p.
// Sweep n over powers of two, run adaptive churn through the ScenarioRunner,
// report p50/p99/max per step and a least-squares fit of the mean cost
// against log2 n — the fit's r² against log n tells us the growth law, and
// max topology changes must stay flat.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "metrics/stats.h"
#include "metrics/table.h"

using namespace dex;

int main() {
  std::printf(
      "=== E3 / Theorem 1: per-step cost vs network size (worst-case mode) "
      "===\n\n");

  metrics::Table t({"n", "rounds p50", "rounds p99", "rounds max",
                    "msgs p50", "msgs p99", "msgs max", "topo p99",
                    "topo max", "type2 events"});

  std::vector<double> log_n, mean_rounds, mean_msgs;
  for (std::size_t n0 : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    Params prm;
    prm.seed = 42 + n0;
    prm.mode = RecoveryMode::WorstCase;
    sim::DexOverlay overlay(n0, prm);
    adversary::RandomChurn strat(0.5);

    sim::ScenarioSpec spec;
    spec.seed = 7 * n0;
    spec.steps = 3000;
    spec.min_n = n0 / 2;
    spec.max_n = n0 * 2;
    sim::ScenarioRunner runner(overlay, strat, spec);

    std::uint64_t type2 = 0;
    runner.set_observer([&](const sim::StepRecord&, sim::HealingOverlay&) {
      if (overlay.net().last_report().type2_event) ++type2;
    });
    const auto res = runner.run();

    const auto& r = res.rounds;
    const auto& m = res.messages;
    const auto& c = res.topology;
    t.add_row({std::to_string(n0), metrics::Table::num(r.p50, 0),
               metrics::Table::num(r.p99, 0), metrics::Table::num(r.max, 0),
               metrics::Table::num(m.p50, 0), metrics::Table::num(m.p99, 0),
               metrics::Table::num(m.max, 0), metrics::Table::num(c.p99, 0),
               metrics::Table::num(c.max, 0), std::to_string(type2)});
    log_n.push_back(std::log2(static_cast<double>(n0)));
    mean_rounds.push_back(r.mean);
    mean_msgs.push_back(m.mean);
  }
  t.print();

  const auto fr = metrics::fit_line(log_n, mean_rounds);
  const auto fm = metrics::fit_line(log_n, mean_msgs);
  std::printf(
      "\nLeast-squares fit of mean cost against log2(n):\n"
      "  rounds   ~= %.2f + %.2f*log2(n)   (r^2 = %.3f)\n"
      "  messages ~= %.2f + %.2f*log2(n)   (r^2 = %.3f)\n",
      fr.intercept, fr.slope, fr.r2, fm.intercept, fm.slope, fm.r2);
  std::printf(
      "\nShape check: r^2 near 1 against log n (Theorem 1's O(log n));\n"
      "topology-change percentiles flat across the sweep (O(1)).\n");
  return 0;
}
