// E3 — Theorem 1: per-step recovery costs in worst-case mode grow like
// O(log n) rounds and messages with O(1) topology changes, per step, w.h.p.
// One ExperimentPlan sweeps n over powers of two (adaptive churn, 3000
// steps each) and the Executor runs the sizes concurrently; report p50/p99/
// max per step and a least-squares fit of the mean cost against log2 n —
// the fit's r² against log n tells us the growth law, and max topology
// changes must stay flat.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "sim/experiment.h"

using namespace dex;

int main() {
  std::printf(
      "=== E3 / Theorem 1: per-step cost vs network size (worst-case mode) "
      "===\n\n");

  sim::ExperimentPlan plan;
  plan.backends = {"dex-worstcase"};
  plan.populations = {256, 512, 1024, 2048, 4096, 8192};
  plan.base.steps = 3000;
  plan.customize = [](sim::TrialSpec& t) { t.spec.seed = 7 * t.n0; };

  sim::ExecutorOptions opts;
  opts.jobs = 0;  // all cores; deterministic regardless
  opts.stream_steps = false;
  sim::Executor executor(opts);
  const auto results = executor.run(plan.expand());

  metrics::Table t({"n", "rounds p50", "rounds p99", "rounds max",
                    "msgs p50", "msgs p99", "msgs max", "topo p99",
                    "topo max", "type2 steps"});
  std::vector<double> log_n, mean_rounds, mean_msgs;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::size_t n0 = plan.populations[i];
    const auto& res = results[i];
    const auto& r = res.rounds;
    const auto& m = res.messages;
    const auto& c = res.topology;
    t.add_row({std::to_string(n0), metrics::Table::num(r.p50, 0),
               metrics::Table::num(r.p99, 0), metrics::Table::num(r.max, 0),
               metrics::Table::num(m.p50, 0), metrics::Table::num(m.p99, 0),
               metrics::Table::num(m.max, 0), metrics::Table::num(c.p99, 0),
               metrics::Table::num(c.max, 0),
               std::to_string(res.type2_steps)});
    log_n.push_back(std::log2(static_cast<double>(n0)));
    mean_rounds.push_back(r.mean);
    mean_msgs.push_back(m.mean);
  }
  t.print();

  const auto fr = metrics::fit_line(log_n, mean_rounds);
  const auto fm = metrics::fit_line(log_n, mean_msgs);
  std::printf(
      "\nLeast-squares fit of mean cost against log2(n):\n"
      "  rounds   ~= %.2f + %.2f*log2(n)   (r^2 = %.3f)\n"
      "  messages ~= %.2f + %.2f*log2(n)   (r^2 = %.3f)\n",
      fr.intercept, fr.slope, fr.r2, fm.intercept, fm.slope, fm.r2);
  std::printf(
      "\nShape check: r^2 near 1 against log n (Theorem 1's O(log n));\n"
      "topology-change percentiles flat across the sweep (O(1)).\n");
  return 0;
}
