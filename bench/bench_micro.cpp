// E11 — micro-performance of the substrate (google-benchmark). Not a paper
// figure; engineering sanity so the simulator itself is never the
// bottleneck of the experiments: p-cycle arithmetic, walk stepping, spectral
// solves, DexNetwork step latency, DHT ops.

#include <benchmark/benchmark.h>

#include "dex/dht.h"
#include "dex/network.h"
#include "dex/pcycle.h"
#include "graph/spectral.h"
#include "support/mathutil.h"
#include "support/prng.h"

namespace {

void BM_ModInv(benchmark::State& state) {
  const std::uint64_t p = 1'000'003;
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = (x % (p - 1)) + 1;
    benchmark::DoNotOptimize(dex::support::modinv(x * 7919 % p, p));
  }
}
BENCHMARK(BM_ModInv);

void BM_IsPrime(benchmark::State& state) {
  std::uint64_t n = 1'000'000'000'039ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dex::support::is_prime(n));
  }
}
BENCHMARK(BM_IsPrime);

void BM_PCyclePorts(benchmark::State& state) {
  const dex::PCycle cyc(1'000'003);
  std::uint64_t x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cyc.ports(x));
    x = (x * 48271) % 1'000'003;
  }
}
BENCHMARK(BM_PCyclePorts);

void BM_PCycleDistance(benchmark::State& state) {
  const dex::PCycle cyc(static_cast<std::uint64_t>(state.range(0)));
  dex::support::Rng rng(1);
  for (auto _ : state) {
    const auto a = rng.below(cyc.p());
    const auto b = rng.below(cyc.p());
    benchmark::DoNotOptimize(cyc.distance(a, b));
  }
}
BENCHMARK(BM_PCycleDistance)->Arg(1009)->Arg(16411)->Arg(131071);

void BM_SpectralGap(benchmark::State& state) {
  dex::Params prm;
  prm.seed = 1;
  dex::DexNetwork net(static_cast<std::size_t>(state.range(0)), prm);
  const auto g = net.snapshot();
  const auto mask = net.alive_mask();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dex::graph::spectral_gap(g, mask));
  }
}
BENCHMARK(BM_SpectralGap)->Arg(256)->Arg(1024);

void BM_DexInsertDeleteCycle(benchmark::State& state) {
  dex::Params prm;
  prm.seed = 2;
  prm.mode = dex::RecoveryMode::WorstCase;
  dex::DexNetwork net(static_cast<std::size_t>(state.range(0)), prm);
  dex::support::Rng rng(3);
  for (auto _ : state) {
    const auto nodes = net.alive_nodes();
    const auto u = net.insert(nodes[rng.below(nodes.size())]);
    net.remove(u);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 2));
}
BENCHMARK(BM_DexInsertDeleteCycle)->Arg(256)->Arg(2048);

void BM_DhtPutGet(benchmark::State& state) {
  dex::Params prm;
  prm.seed = 4;
  dex::DexNetwork net(1024, prm);
  dex::Dht dht(net);
  std::uint64_t k = 0;
  for (auto _ : state) {
    dht.put(k, k);
    benchmark::DoNotOptimize(dht.get(k));
    ++k;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 2));
}
BENCHMARK(BM_DhtPutGet);

void BM_WalkStep(benchmark::State& state) {
  dex::Params prm;
  prm.seed = 5;
  dex::DexNetwork net(4096, prm);
  dex::support::Rng rng(6);
  std::vector<std::uint64_t> ports;
  dex::NodeId cur = 0;
  for (auto _ : state) {
    net.ports_of(cur, ports);
    cur = static_cast<dex::NodeId>(ports[rng.below(ports.size())]);
    benchmark::DoNotOptimize(cur);
  }
}
BENCHMARK(BM_WalkStep);

}  // namespace

BENCHMARK_MAIN();
