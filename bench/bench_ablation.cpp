// Ablations over DEX's two tunable design constants (DESIGN.md §2):
//
// (1) walk_factor ℓ (type-1 walk length = ⌈ℓ·ln n⌉): Lemma 2 needs walks
//     long enough to hit Spare/Low w.h.p. — too short and recovery burns
//     retries (and, in the limit, exploratory floods); too long and every
//     step overpays. Sweep ℓ and report retries + per-step cost.
//
// (2) θ (rebuilding parameter, trigger at 3θn in worst-case mode): larger θ
//     triggers rebuilds earlier (more often, smaller safety margin used) and
//     makes the staggered batch 1/θ smaller; smaller θ stretches rebuilds
//     out. Sweep θ and report rebuild frequency and worst per-step cost.
//
// (3) Sampling quality vs walk length (the Θ(log n) choice in services.h):
//     total-variation distance of sample_node()'s output from uniform, as a
//     function of walk_factor — shows the mixing knee the paper's Θ(log n)
//     choices rely on.
//
// The churn in (1) and (2) runs through the ScenarioRunner; DEX-specific
// counters (walk retries, rebuild counts) are read off the DexOverlay's
// underlying network via the runner's step observer.

#include <cmath>
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "dex/services.h"
#include "metrics/stats.h"
#include "metrics/table.h"

using namespace dex;

int main() {
  std::printf("=== Ablation 1: type-1 walk length factor ===\n\n");
  {
    metrics::Table t({"walk_factor", "walk len @n=512", "retries/1k steps",
                      "msgs/step (mean)", "rounds/step (mean)"});
    for (double wf : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      Params prm;
      prm.seed = 55;
      prm.mode = RecoveryMode::WorstCase;
      prm.walk_factor = wf;
      prm.max_walk_retries = 512;
      sim::DexOverlay overlay(512, prm);
      adversary::RandomChurn strat(0.5);

      sim::ScenarioSpec spec;
      spec.seed = 7;
      spec.steps = 1000;
      spec.min_n = 256;
      spec.max_n = 4096;
      sim::ScenarioRunner runner(overlay, strat, spec);

      std::uint64_t retries = 0;
      runner.set_observer([&](const sim::StepRecord&, sim::HealingOverlay&) {
        retries += overlay.net().last_report().walk_retries;
      });
      const auto res = runner.run();

      t.add_row({metrics::Table::num(wf, 1),
                 std::to_string(support::scaled_log(wf, 512)),
                 std::to_string(retries),
                 metrics::Table::num(res.messages.mean, 1),
                 metrics::Table::num(res.rounds.mean, 1)});
    }
    t.print();
    std::printf(
        "\nShape check: retries collapse once walks reach ~2·ln n (Lemma 2's\n"
        "w.h.p. threshold); beyond that, cost grows linearly in the factor\n"
        "with no benefit — the paper's Θ(log n) choice is the knee.\n");
  }

  std::printf("\n=== Ablation 2: rebuilding parameter theta ===\n\n");
  {
    metrics::Table t({"theta", "rebuilds (grow 8x)", "max msgs/step",
                      "max topo/step", "forced sync"});
    for (double th : {1.0 / 8, 1.0 / 16, 1.0 / 24, 1.0 / 48, 1.0 / 96}) {
      Params prm;
      prm.seed = 56;
      prm.mode = RecoveryMode::WorstCase;
      prm.theta = th;
      sim::DexOverlay overlay(128, prm);
      adversary::InsertOnly strat;

      sim::ScenarioSpec spec;
      spec.seed = 8;
      spec.steps = 1024 - 128;  // grow 128 -> 1024, one insert per step
      spec.min_n = 4;
      spec.max_n = 2048;
      sim::ScenarioRunner runner(overlay, strat, spec);
      const auto res = runner.run();

      t.add_row({metrics::Table::num(th, 4),
                 std::to_string(overlay.net().inflation_count()),
                 metrics::Table::num(res.messages.max, 0),
                 metrics::Table::num(res.topology.max, 0),
                 std::to_string(overlay.net().forced_sync_type2())});
    }
    t.print();
    std::printf(
        "\nShape check: rebuild count is θ-invariant (it is driven by the\n"
        "p/n ratio); per-step maxima grow as θ shrinks (batch ∝ 1/θ) — the\n"
        "paper's constant-θ choice trades step cost against safety margin.\n");
  }

  std::printf("\n=== Ablation 3: sampling uniformity vs walk length ===\n\n");
  {
    metrics::Table t({"walk_factor", "TV distance from uniform",
                      "mean msgs/sample"});
    for (double wf : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      Params prm;
      prm.seed = 57;
      prm.walk_factor = wf;
      DexNetwork net(64, prm);
      const std::size_t kSamples = 12800;
      std::map<NodeId, std::size_t> counts;
      std::uint64_t msgs = 0;
      for (std::size_t i = 0; i < kSamples; ++i) {
        const auto s = sample_node(net, 0);
        ++counts[s.node];
        msgs += s.cost.messages;
      }
      double tv = 0;
      for (auto u : net.alive_nodes()) {
        const double freq =
            static_cast<double>(counts[u]) / static_cast<double>(kSamples);
        tv += std::abs(freq - 1.0 / 64.0);
      }
      tv /= 2;
      t.add_row({metrics::Table::num(wf, 2), metrics::Table::num(tv, 4),
                 metrics::Table::num(
                     static_cast<double>(msgs) / kSamples, 1)});
    }
    t.print();
    std::printf(
        "\nShape check: TV distance drops toward the sampling-noise floor\n"
        "once walks pass ~1·ln n — the fast-mixing property Lemma 2 and the\n"
        "DHT both rely on.\n");
  }
  return 0;
}
