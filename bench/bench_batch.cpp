// E8 — Corollary 2 (§5): batches of εn insertions/deletions per step.
// Sweep n and ε; report messages and rounds per batch against the
// O(n log² n) / O(log³ n) envelopes, and the frequency of type-2 fallbacks.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "dex/batch.h"
#include "graph/bfs.h"
#include "metrics/table.h"

using namespace dex;

int main() {
  std::printf("=== E8 / Corollary 2: batched churn ===\n\n");
  metrics::Table t({"n", "eps", "batch size", "msgs / (n log^2 n)",
                    "rounds / log^3 n", "walk epochs", "type2 used"});

  for (std::size_t n0 : {256u, 1024u, 4096u}) {
    for (double eps : {1.0 / 16.0, 1.0 / 8.0}) {
      Params prm;
      prm.seed = 17 + n0;
      prm.mode = RecoveryMode::Amortized;
      DexNetwork net(n0, prm);
      support::Rng rng(n0 + 3);

      double msgs_ratio_acc = 0, rounds_ratio_acc = 0;
      std::uint64_t epochs = 0, type2 = 0;
      const int kBatches = 6;
      for (int b = 0; b < kBatches; ++b) {
        const auto nodes = net.alive_nodes();
        const auto sz = static_cast<std::size_t>(
            eps * static_cast<double>(net.n()));
        BatchRequest req;
        if (b % 2 == 0) {
          for (std::size_t i = 0; i < sz; ++i)
            req.attach_to.push_back(nodes[rng.below(nodes.size())]);
        } else {
          // §5's preconditions: victims keep a surviving neighbor and the
          // remainder stays connected. Sample pairwise-non-adjacent victims
          // while ensuring no survivor loses all of its neighbors, then trim
          // until the remainder is verifiably connected.
          std::vector<bool> blocked(net.node_capacity(), false);
          std::vector<std::uint32_t> lost(net.node_capacity(), 0);
          std::vector<std::uint64_t> ports, vports;
          auto shuffled = nodes;
          rng.shuffle(shuffled);
          for (NodeId v : shuffled) {
            if (req.deletions.size() >= sz) break;
            if (blocked[v]) continue;
            net.ports_of(v, vports);
            bool ok = true;
            for (auto w : vports) {
              const auto wn = static_cast<NodeId>(w);
              if (wn == v) continue;
              net.ports_of(wn, ports);
              std::size_t to_v = 0;
              for (auto x : ports) {
                if (static_cast<NodeId>(x) == v) ++to_v;
              }
              if (ports.size() - lost[wn] - to_v == 0) {
                ok = false;  // w would be orphaned
                break;
              }
            }
            if (!ok) continue;
            req.deletions.push_back(v);
            blocked[v] = true;
            for (auto w : vports) {
              blocked[w] = true;
              ++lost[w];
            }
          }
          // Trim until the remainder is connected (rarely needed).
          auto g = net.snapshot();
          auto mask = net.alive_mask();
          for (NodeId v : req.deletions) mask[v] = false;
          while (!req.deletions.empty() &&
                 !dex::graph::is_connected(g, mask)) {
            mask[req.deletions.back()] = true;
            req.deletions.pop_back();
          }
        }
        const auto res = apply_batch(net, req);
        const double n = static_cast<double>(net.n());
        const double lg = std::log2(n);
        msgs_ratio_acc += static_cast<double>(res.cost.messages) /
                          (n * lg * lg);
        rounds_ratio_acc += static_cast<double>(res.cost.rounds) /
                            (lg * lg * lg);
        epochs += res.walk_epochs;
        if (res.used_type2) ++type2;
        net.check_invariants();
      }
      t.add_row({std::to_string(n0), metrics::Table::num(eps, 3),
                 std::to_string(static_cast<std::size_t>(
                     eps * static_cast<double>(n0))),
                 metrics::Table::num(msgs_ratio_acc / kBatches, 3),
                 metrics::Table::num(rounds_ratio_acc / kBatches, 3),
                 std::to_string(epochs), std::to_string(type2)});
    }
  }
  t.print();
  std::printf(
      "\nShape check (Cor. 2): both normalized columns stay bounded (do not\n"
      "grow down the n sweep) — messages are O(n log^2 n) and rounds are\n"
      "O(log^3 n) per batch.\n");
  return 0;
}
