// Batch vs. sequential churn across backends and batch sizes (§5, Cor. 2).
//
// The batch-first redesign makes this runnable end-to-end: the same
// burst-churn workload (same strategy, same seed, same batch-size knob)
// goes through HealingOverlay::apply on every backend, and on DEX once
// through the parallel-walk path and once with parallelism disabled (the
// sequential default). The two DEX runs start identical but their
// realizations diverge after the first step — batch decisions read the
// overlay's own evolving topology — so the comparison is statistical, not
// op-for-op (the events/batch column confirms equal batch sizes; the
// speedup dwarfs realization noise). The headline number is rounds per
// batch: sequential application pays ~batch_size * O(log n) rounds (events
// heal one after another), the parallel path pays O(log³ n) for the whole
// batch — the paper's sequential-vs-parallel comparison at equal batch
// sizes.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "metrics/table.h"

using namespace dex;

namespace {

struct RunStats {
  double rounds_per_batch = 0;
  double msgs_per_batch = 0;
  double events_per_batch = 0;
  std::size_t parallel_steps = 0;
  std::size_t type2_steps = 0;
};

RunStats run(sim::HealingOverlay& overlay, std::size_t batch,
             std::uint64_t seed, std::size_t steps) {
  adversary::BurstChurn strat(0.5);
  sim::ScenarioSpec spec;
  spec.seed = seed;
  spec.steps = steps;
  spec.batch_size = batch;
  spec.record_trace = false;
  sim::ScenarioRunner runner(overlay, strat, spec);
  const auto res = runner.run();
  RunStats s;
  const double n_steps = static_cast<double>(spec.steps);
  s.rounds_per_batch = static_cast<double>(res.total.rounds) / n_steps;
  s.msgs_per_batch = static_cast<double>(res.total.messages) / n_steps;
  s.events_per_batch =
      static_cast<double>(res.total_inserts + res.total_deletes) / n_steps;
  s.parallel_steps = res.parallel_steps;
  s.type2_steps = res.type2_steps;
  return s;
}

}  // namespace

int main() {
  std::printf("=== batch scaling: parallel batch recovery vs sequential "
              "application ===\n\n");
  const std::size_t kSteps = 16;

  metrics::Table dex_table({"n0", "batch", "seq rounds/batch",
                            "par rounds/batch", "speedup", "par steps",
                            "type2", "events/batch"});
  for (std::size_t n0 : {256u, 1024u}) {
    for (std::size_t batch : {4u, 16u, 64u}) {
      const std::uint64_t seed = 1000 + n0 + batch;
      Params prm;
      prm.seed = seed;
      prm.mode = RecoveryMode::Amortized;

      sim::DexOverlay seq(n0, prm);
      seq.set_parallel_batches(false);
      const auto s = run(seq, batch, seed, kSteps);

      Params prm2 = prm;
      sim::DexOverlay par(n0, prm2);
      const auto p = run(par, batch, seed, kSteps);

      dex_table.add_row(
          {std::to_string(n0), std::to_string(batch),
           metrics::Table::num(s.rounds_per_batch, 1),
           metrics::Table::num(p.rounds_per_batch, 1),
           metrics::Table::num(s.rounds_per_batch /
                                   std::max(p.rounds_per_batch, 1.0),
                               2),
           std::to_string(p.parallel_steps), std::to_string(p.type2_steps),
           metrics::Table::num(p.events_per_batch, 1)});
    }
  }
  std::printf("--- dex-amortized: sequential default vs parallel-walk "
              "batches (same seeded workload; realizations diverge as each "
              "overlay evolves) ---\n");
  dex_table.print();

  std::printf(
      "\nShape check (Cor. 2): sequential rounds/batch grow ~linearly in the\n"
      "batch size while the parallel column stays polylog-flat, so the\n"
      "speedup widens with the batch — parallel must beat sequential at\n"
      "every equal batch size.\n\n");

  metrics::Table bk({"backend", "n0", "batch", "rounds/batch", "msgs/batch",
                     "events/batch"});
  for (const char* backend : {"dex-amortized", "dex-worstcase", "flood",
                              "lawsiu", "randomflip", "xheal"}) {
    for (std::size_t batch : {4u, 16u}) {
      const std::size_t n0 = 256;
      const std::uint64_t seed = 7 + batch;
      auto overlay = sim::make_overlay(backend, n0, seed);
      const auto r = run(*overlay, batch, seed, kSteps);
      bk.add_row({backend, std::to_string(n0), std::to_string(batch),
                  metrics::Table::num(r.rounds_per_batch, 1),
                  metrics::Table::num(r.msgs_per_batch, 1),
                  metrics::Table::num(r.events_per_batch, 1)});
    }
  }
  std::printf("--- every backend under the same burst workload (batch-first "
              "apply; only DEX-amortized parallelizes) ---\n");
  bk.print();
  return 0;
}
