// Batch vs. sequential churn across backends and batch sizes (§5, Cor. 2).
//
// Both comparisons are declarative ExperimentPlans run by the parallel
// Executor. The DEX table expands one grid (n0 x batch) twice — once with
// the default overlay factory (parallel-walk batches) and once with a
// customized factory that disables them — and pairs the rows; the same
// burst-churn workload (same strategy, same seed, same batch-size knob)
// goes through HealingOverlay::apply either way. The two DEX runs start
// identical but their realizations diverge after the first step — batch
// decisions read the overlay's own evolving topology — so the comparison is
// statistical, not op-for-op (the events/batch column confirms equal batch
// sizes; the speedup dwarfs realization noise). The headline number is
// rounds per batch: sequential application pays ~batch_size * O(log n)
// rounds (events heal one after another), the parallel path pays O(log³ n)
// for the whole batch — the paper's sequential-vs-parallel comparison at
// equal batch sizes.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "metrics/table.h"
#include "sim/experiment.h"

using namespace dex;

namespace {

constexpr std::size_t kSteps = 16;

struct RunStats {
  double rounds_per_batch = 0;
  double msgs_per_batch = 0;
  double events_per_batch = 0;
  std::size_t parallel_steps = 0;
  std::size_t type2_steps = 0;
};

RunStats stats_of(const sim::ScenarioResult& res) {
  RunStats s;
  const double n_steps = static_cast<double>(res.rounds.count);
  s.rounds_per_batch = static_cast<double>(res.total.rounds) / n_steps;
  s.msgs_per_batch = static_cast<double>(res.total.messages) / n_steps;
  s.events_per_batch =
      static_cast<double>(res.total_inserts + res.total_deletes) / n_steps;
  s.parallel_steps = res.parallel_steps;
  s.type2_steps = res.type2_steps;
  return s;
}

sim::ExperimentPlan dex_plan() {
  sim::ExperimentPlan plan;
  plan.backends = {"dex-amortized"};
  plan.scenarios = {"burst"};
  plan.populations = {256, 1024};
  plan.batch_sizes = {4, 16, 64};
  plan.base.steps = kSteps;
  return plan;
}

// The classic per-cell seeding: adversary stream keyed to the grid point.
void seed_by_cell(sim::TrialSpec& t) {
  t.spec.seed = 1000 + t.n0 + t.spec.batch_size;
}

}  // namespace

int main() {
  std::printf("=== batch scaling: parallel batch recovery vs sequential "
              "application ===\n\n");

  sim::ExecutorOptions opts;
  opts.jobs = 0;  // all cores; deterministic regardless
  opts.stream_steps = false;
  sim::Executor executor(opts);

  // Variant A: the stock dex-amortized overlay (parallel-walk batches).
  // The expanded trial list doubles as the table's row labels below.
  auto plan = dex_plan();
  plan.customize = seed_by_cell;
  const auto trials = plan.expand();
  const auto par = executor.run(trials);

  // Variant B: identical grid, identical workload, but the overlay factory
  // flips set_parallel_batches(false) — the sequential baseline on the same
  // backend. Per-axis overrides like this are exactly what customize is for.
  auto seq_plan = dex_plan();
  seq_plan.customize = [](sim::TrialSpec& t) {
    seed_by_cell(t);
    t.make_overlay = [n0 = t.n0, seed = sim::overlay_seed(t.spec.seed)] {
      dex::Params prm;
      prm.seed = seed;
      prm.mode = RecoveryMode::Amortized;
      auto overlay = std::make_unique<sim::DexOverlay>(n0, prm);
      overlay->set_parallel_batches(false);
      return overlay;
    };
  };
  const auto seq = executor.run(seq_plan.expand());

  metrics::Table dex_table({"n0", "batch", "seq rounds/batch",
                            "par rounds/batch", "speedup", "par steps",
                            "type2", "events/batch"});
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto s = stats_of(seq[i]);
    const auto p = stats_of(par[i]);
    dex_table.add_row(
        {std::to_string(trials[i].n0),
         std::to_string(trials[i].spec.batch_size),
         metrics::Table::num(s.rounds_per_batch, 1),
         metrics::Table::num(p.rounds_per_batch, 1),
         metrics::Table::num(
             s.rounds_per_batch / std::max(p.rounds_per_batch, 1.0), 2),
         std::to_string(p.parallel_steps), std::to_string(p.type2_steps),
         metrics::Table::num(p.events_per_batch, 1)});
  }
  std::printf("--- dex-amortized: sequential default vs parallel-walk "
              "batches (same seeded workload; realizations diverge as each "
              "overlay evolves) ---\n");
  dex_table.print();

  std::printf(
      "\nShape check (Cor. 2): sequential rounds/batch grow ~linearly in the\n"
      "batch size while the parallel column stays polylog-flat, so the\n"
      "speedup widens with the batch — parallel must beat sequential at\n"
      "every equal batch size.\n\n");

  // Every backend under the same burst workload — one grid, one executor
  // pass, the AggregateSink streaming the per-trial summaries.
  sim::ExperimentPlan all;
  all.backends = sim::known_overlays();
  all.scenarios = {"burst"};
  all.populations = {256};
  all.batch_sizes = {4, 16};
  all.base.steps = kSteps;
  all.customize = [](sim::TrialSpec& t) {
    t.spec.seed = 7 + t.spec.batch_size;
  };

  sim::AggregateSink agg;
  sim::ExecutorOptions sink_opts;
  sink_opts.jobs = 0;
  sink_opts.stream_steps = false;
  sink_opts.collect_results = false;
  sim::Executor sink_executor(sink_opts);
  sink_executor.add_sink(agg);
  sink_executor.run(all.expand());

  metrics::Table bk({"backend", "n0", "batch", "rounds/batch", "msgs/batch",
                     "events/batch"});
  for (const auto& row : agg.rows()) {
    const auto r = stats_of(row.result);
    bk.add_row({row.info.backend, std::to_string(row.info.n0),
                std::to_string(row.info.batch_size),
                metrics::Table::num(r.rounds_per_batch, 1),
                metrics::Table::num(r.msgs_per_batch, 1),
                metrics::Table::num(r.events_per_batch, 1)});
  }
  std::printf("--- every backend under the same burst workload (batch-first "
              "apply; only DEX-amortized parallelizes) ---\n");
  bk.print();
  return 0;
}
