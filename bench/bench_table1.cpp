// E1 — Table 1 of the paper: comparison of distributed expander
// constructions. The DEX and Law–Siu rows are *measured* on this machine
// (identical adaptive churn, several network sizes); the flooding baseline
// row quantifies §3's strawman; the skip-graph and SKIP+ rows reproduce the
// paper's analytic citations (no OSS artifacts exist to measure — marked).
//
// Paper's Table 1 row for DEX:   deterministic expansion, adaptive
// adversary, O(1) max degree, O(log n) recovery, O(log n) messages,
// O(1) topology changes. The measured numbers below must show: constant max
// degree across sizes, per-step rounds/messages growing like log n, and
// constant topology changes — against Law–Siu's O(d) degree and cheap-but-
// probabilistic maintenance and flooding's Θ(n) messages.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "graph/spectral.h"
#include "metrics/stats.h"
#include "metrics/table.h"

using namespace dex;

namespace {

struct Measured {
  double max_degree = 0;
  double rounds_p99 = 0;
  double msgs_p99 = 0;
  double topo_p99 = 0;
  double gap_min = 1.0;
};

template <class Net>
Measured churn_run(Net& net, std::size_t steps, std::uint64_t seed,
                   const std::function<sim::StepCost()>& last_cost,
                   const std::function<std::size_t()>& max_degree) {
  adversary::RandomChurn strat(0.5);
  auto view = bench::view_of(net);
  support::Rng rng(seed);
  std::vector<double> rounds, msgs, topo;
  Measured m;
  const std::size_t base = net.n();
  for (std::size_t t = 0; t < steps; ++t) {
    bench::apply(net, strat.next(view, rng, base / 2, base * 2));
    const auto c = last_cost();
    rounds.push_back(static_cast<double>(c.rounds));
    msgs.push_back(static_cast<double>(c.messages));
    topo.push_back(static_cast<double>(c.topology_changes));
    if (t % (steps / 8) == 0) {
      const auto gap =
          graph::spectral_gap(net.snapshot(), net.alive_mask()).gap;
      m.gap_min = std::min(m.gap_min, gap);
    }
    m.max_degree =
        std::max(m.max_degree, static_cast<double>(max_degree()));
  }
  m.rounds_p99 = metrics::summarize(rounds).p99;
  m.msgs_p99 = metrics::summarize(msgs).p99;
  m.topo_p99 = metrics::summarize(topo).p99;
  return m;
}

std::size_t dex_max_degree(const DexNetwork& net) {
  const auto g = net.snapshot();
  std::size_t best = 0;
  for (auto u : net.alive_nodes()) best = std::max(best, g.degree(u));
  return best;
}

}  // namespace

int main() {
  std::printf(
      "=== E1 / Table 1: comparison of distributed expander constructions "
      "===\n\nMeasured rows (adaptive 50/50 churn, per-step p99 costs):\n\n");

  metrics::Table t({"algorithm", "n", "expansion", "adversary", "max degree",
                    "recovery rounds p99", "messages p99", "topo changes p99",
                    "min gap"});

  for (std::size_t n0 : {256u, 1024u, 4096u}) {
    const std::size_t steps = 4 * n0;
    {
      Params prm;
      prm.seed = 1000 + n0;
      prm.mode = RecoveryMode::WorstCase;
      DexNetwork net(n0, prm);
      const auto m = churn_run(
          net, steps, n0, [&] { return net.last_report().cost; },
          [&] { return dex_max_degree(net); });
      t.add_row({"DEX (this work)", std::to_string(n0), "deterministic",
                 "adaptive", metrics::Table::num(m.max_degree, 0),
                 metrics::Table::num(m.rounds_p99, 0),
                 metrics::Table::num(m.msgs_p99, 0),
                 metrics::Table::num(m.topo_p99, 0),
                 metrics::Table::num(m.gap_min, 3)});
    }
    {
      baselines::LawSiuNetwork net(n0, 3, 2000 + n0);
      const auto m = churn_run(
          net, steps, n0 + 1, [&] { return net.last_step(); },
          [&] { return net.max_degree(); });
      t.add_row({"Law-Siu [18]", std::to_string(n0), "prob (oblivious)",
                 "oblivious", metrics::Table::num(m.max_degree, 0),
                 metrics::Table::num(m.rounds_p99, 0),
                 metrics::Table::num(m.msgs_p99, 0),
                 metrics::Table::num(m.topo_p99, 0),
                 metrics::Table::num(m.gap_min, 3)});
    }
    {
      baselines::FloodRebuildNetwork net(n0);
      const auto m = churn_run(
          net, std::min<std::size_t>(steps, 512), n0 + 2,
          [&] { return net.last_step(); }, [&] { return net.max_degree(); });
      t.add_row({"Flooding (Sec. 3)", std::to_string(n0), "deterministic",
                 "adaptive", metrics::Table::num(m.max_degree, 0),
                 metrics::Table::num(m.rounds_p99, 0),
                 metrics::Table::num(m.msgs_p99, 0),
                 metrics::Table::num(m.topo_p99, 0),
                 metrics::Table::num(m.gap_min, 3)});
    }
  }
  t.print();

  std::printf(
      "\nAnalytic rows (as cited by the paper's Table 1; no open-source\n"
      "artifact exists to measure — reproduced from the publication):\n\n");
  metrics::Table a({"algorithm", "expansion", "adversary", "max degree",
                    "recovery time", "messages", "topology changes"});
  a.add_row({"Law-Siu [18]", "prob >= 1-1/n0", "oblivious", "O(d)",
             "O(log_d n)", "O(d log_d n)", "O(d)"});
  a.add_row({"Skip graphs [2]", "w.h.p.", "adaptive", "O(log n)",
             "O(log^2 n)", "O(log^2 n)", "O(log n)"});
  a.add_row({"SKIP+ [15]", "w.h.p.", "adaptive", "O(log n)", "O(log n) whp",
             "O(log^4 n)", "O(log^4 n) whp"});
  a.add_row({"DEX (this paper)", "deterministic", "adaptive", "O(1)",
             "O(log n) whp", "O(log n) whp", "O(1)"});
  a.print();

  std::printf(
      "\nShape checks (what reproduction means here):\n"
      " - DEX max degree is a constant (<= 3*8*zeta = 192; in practice far\n"
      "   lower) and does NOT grow across the n sweep.\n"
      " - DEX messages/rounds grow ~log n; flooding messages grow ~n.\n"
      " - DEX topology changes stay constant per step.\n"
      " - Every min-gap entry for DEX is bounded away from 0.\n");
  return 0;
}
