// E1 — Table 1 of the paper: comparison of distributed expander
// constructions. The DEX, Law–Siu and flooding rows are *measured* on this
// machine (identical adaptive churn, several network sizes); the skip-graph
// and SKIP+ rows reproduce the paper's analytic citations (no OSS artifacts
// exist to measure — marked).
//
// Every measured row is one trial of a single declarative ExperimentPlan
// (backends x populations), run concurrently by the Executor — zero
// backend-specific driver code, and the sweep uses every core while staying
// byte-deterministic.
//
// Paper's Table 1 row for DEX:   deterministic expansion, adaptive
// adversary, O(1) max degree, O(log n) recovery, O(log n) messages,
// O(1) topology changes. The measured numbers below must show: constant max
// degree across sizes, per-step rounds/messages growing like log n, and
// constant topology changes — against Law–Siu's O(d) degree and cheap-but-
// probabilistic maintenance and flooding's Θ(n) messages.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "metrics/table.h"
#include "sim/experiment.h"

using namespace dex;

namespace {

const char* display_name(const std::string& backend) {
  if (backend == "dex-worstcase") return "DEX (this work)";
  if (backend == "lawsiu") return "Law-Siu [18]";
  return "Flooding (Sec. 3)";
}

const char* expansion_kind(const std::string& backend) {
  return backend == "lawsiu" ? "prob (oblivious)" : "deterministic";
}

const char* adversary_kind(const std::string& backend) {
  return backend == "lawsiu" ? "oblivious" : "adaptive";
}

}  // namespace

int main() {
  std::printf(
      "=== E1 / Table 1: comparison of distributed expander constructions "
      "===\n\nMeasured rows (adaptive 50/50 churn, per-step p99 costs):\n\n");

  sim::ExperimentPlan plan;
  plan.backends = {"dex-worstcase", "lawsiu", "flood"};
  plan.populations = {256, 1024, 4096};
  plan.base.measure_degree = true;
  plan.customize = [](sim::TrialSpec& t) {
    // Cost model sized to the construction: flooding pays Θ(n) per step, so
    // its row keeps the same workload shape at a capped step count.
    const std::size_t steps = 4 * t.n0;
    t.spec.steps =
        t.backend == "flood" ? std::min<std::size_t>(steps, 512) : steps;
    t.spec.gap_every = std::max<std::size_t>(t.spec.steps / 8, 1);
    // Distinct adversary stream per grid point (the classic E1 seeding).
    t.spec.seed = t.n0 + (t.backend == "lawsiu" ? 1 : 0) +
                  (t.backend == "flood" ? 2 : 0);
  };

  sim::ExecutorOptions opts;
  opts.jobs = 0;  // all cores; results are byte-deterministic regardless
  opts.stream_steps = false;
  sim::Executor executor(opts);
  const auto results = executor.run(plan.expand());

  metrics::Table t({"algorithm", "n", "expansion", "adversary", "max degree",
                    "recovery rounds p99", "messages p99", "topo changes p99",
                    "min gap"});
  // Trials expand backend-major; present the classic grouping (all
  // algorithms per n) by walking populations in the outer loop.
  for (std::size_t pi = 0; pi < plan.populations.size(); ++pi) {
    for (std::size_t bi = 0; bi < plan.backends.size(); ++bi) {
      const auto& res = results[bi * plan.populations.size() + pi];
      const std::size_t n0 = plan.populations[pi];
      t.add_row({display_name(plan.backends[bi]), std::to_string(n0),
                 expansion_kind(plan.backends[bi]),
                 adversary_kind(plan.backends[bi]),
                 metrics::Table::num(static_cast<double>(res.max_degree), 0),
                 metrics::Table::num(res.rounds.p99, 0),
                 metrics::Table::num(res.messages.p99, 0),
                 metrics::Table::num(res.topology.p99, 0),
                 metrics::Table::num(res.min_gap, 3)});
    }
  }
  t.print();

  std::printf(
      "\nAnalytic rows (as cited by the paper's Table 1; no open-source\n"
      "artifact exists to measure — reproduced from the publication):\n\n");
  metrics::Table a({"algorithm", "expansion", "adversary", "max degree",
                    "recovery time", "messages", "topology changes"});
  a.add_row({"Law-Siu [18]", "prob >= 1-1/n0", "oblivious", "O(d)",
             "O(log_d n)", "O(d log_d n)", "O(d)"});
  a.add_row({"Skip graphs [2]", "w.h.p.", "adaptive", "O(log n)",
             "O(log^2 n)", "O(log^2 n)", "O(log n)"});
  a.add_row({"SKIP+ [15]", "w.h.p.", "adaptive", "O(log n)", "O(log n) whp",
             "O(log^4 n)", "O(log^4 n) whp"});
  a.add_row({"DEX (this paper)", "deterministic", "adaptive", "O(1)",
             "O(log n) whp", "O(log n) whp", "O(1)"});
  a.print();

  std::printf(
      "\nShape checks (what reproduction means here):\n"
      " - DEX max degree is a constant (<= 3*8*zeta = 192; in practice far\n"
      "   lower) and does NOT grow across the n sweep.\n"
      " - DEX messages/rounds grow ~log n; flooding messages grow ~n.\n"
      " - DEX topology changes stay constant per step.\n"
      " - Every min-gap entry for DEX is bounded away from 0.\n");
  return 0;
}
