// E1 — Table 1 of the paper: comparison of distributed expander
// constructions. The DEX and Law–Siu rows are *measured* on this machine
// (identical adaptive churn, several network sizes); the flooding baseline
// row quantifies §3's strawman; the skip-graph and SKIP+ rows reproduce the
// paper's analytic citations (no OSS artifacts exist to measure — marked).
//
// Every measured row runs through the same HealingOverlay + ScenarioRunner
// pipeline — zero backend-specific driver code.
//
// Paper's Table 1 row for DEX:   deterministic expansion, adaptive
// adversary, O(1) max degree, O(log n) recovery, O(log n) messages,
// O(1) topology changes. The measured numbers below must show: constant max
// degree across sizes, per-step rounds/messages growing like log n, and
// constant topology changes — against Law–Siu's O(d) degree and cheap-but-
// probabilistic maintenance and flooding's Θ(n) messages.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "metrics/table.h"

using namespace dex;

namespace {

struct Measured {
  double max_degree = 0;
  double rounds_p99 = 0;
  double msgs_p99 = 0;
  double topo_p99 = 0;
  double gap_min = 1.0;
};

Measured churn_run(sim::HealingOverlay& overlay, std::size_t steps,
                   std::uint64_t seed) {
  adversary::RandomChurn strat(0.5);
  sim::ScenarioSpec spec;
  spec.seed = seed;
  spec.steps = steps;
  spec.min_n = overlay.n() / 2;
  spec.max_n = overlay.n() * 2;
  spec.gap_every = std::max<std::size_t>(steps / 8, 1);
  spec.measure_degree = true;
  sim::ScenarioRunner runner(overlay, strat, spec);
  const auto res = runner.run();

  Measured m;
  m.max_degree = static_cast<double>(res.max_degree);
  m.rounds_p99 = res.rounds.p99;
  m.msgs_p99 = res.messages.p99;
  m.topo_p99 = res.topology.p99;
  m.gap_min = res.min_gap;
  return m;
}

void add_measured_row(metrics::Table& t, const char* algorithm, std::size_t n,
                      const char* expansion, const char* adversary,
                      const Measured& m) {
  t.add_row({algorithm, std::to_string(n), expansion, adversary,
             metrics::Table::num(m.max_degree, 0),
             metrics::Table::num(m.rounds_p99, 0),
             metrics::Table::num(m.msgs_p99, 0),
             metrics::Table::num(m.topo_p99, 0),
             metrics::Table::num(m.gap_min, 3)});
}

}  // namespace

int main() {
  std::printf(
      "=== E1 / Table 1: comparison of distributed expander constructions "
      "===\n\nMeasured rows (adaptive 50/50 churn, per-step p99 costs):\n\n");

  metrics::Table t({"algorithm", "n", "expansion", "adversary", "max degree",
                    "recovery rounds p99", "messages p99", "topo changes p99",
                    "min gap"});

  for (std::size_t n0 : {256u, 1024u, 4096u}) {
    const std::size_t steps = 4 * n0;
    {
      Params prm;
      prm.seed = 1000 + n0;
      prm.mode = RecoveryMode::WorstCase;
      sim::DexOverlay overlay(n0, prm);
      add_measured_row(t, "DEX (this work)", n0, "deterministic", "adaptive",
                       churn_run(overlay, steps, n0));
    }
    {
      sim::LawSiuOverlay overlay(n0, 3, 2000 + n0);
      add_measured_row(t, "Law-Siu [18]", n0, "prob (oblivious)", "oblivious",
                       churn_run(overlay, steps, n0 + 1));
    }
    {
      sim::FloodRebuildOverlay overlay(n0);
      add_measured_row(t, "Flooding (Sec. 3)", n0, "deterministic",
                       "adaptive",
                       churn_run(overlay, std::min<std::size_t>(steps, 512),
                                 n0 + 2));
    }
  }
  t.print();

  std::printf(
      "\nAnalytic rows (as cited by the paper's Table 1; no open-source\n"
      "artifact exists to measure — reproduced from the publication):\n\n");
  metrics::Table a({"algorithm", "expansion", "adversary", "max degree",
                    "recovery time", "messages", "topology changes"});
  a.add_row({"Law-Siu [18]", "prob >= 1-1/n0", "oblivious", "O(d)",
             "O(log_d n)", "O(d log_d n)", "O(d)"});
  a.add_row({"Skip graphs [2]", "w.h.p.", "adaptive", "O(log n)",
             "O(log^2 n)", "O(log^2 n)", "O(log n)"});
  a.add_row({"SKIP+ [15]", "w.h.p.", "adaptive", "O(log n)", "O(log n) whp",
             "O(log^4 n)", "O(log^4 n) whp"});
  a.add_row({"DEX (this paper)", "deterministic", "adaptive", "O(1)",
             "O(log n) whp", "O(log n) whp", "O(1)"});
  a.print();

  std::printf(
      "\nShape checks (what reproduction means here):\n"
      " - DEX max degree is a constant (<= 3*8*zeta = 192; in practice far\n"
      "   lower) and does NOT grow across the n sweep.\n"
      " - DEX messages/rounds grow ~log n; flooding messages grow ~n.\n"
      " - DEX topology changes stay constant per step.\n"
      " - Every min-gap entry for DEX is bounded away from 0.\n");
  return 0;
}
