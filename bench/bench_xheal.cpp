// Extension bench — Xheal with deterministic DEX patches (the composition
// the paper's related-work section proposes). Regenerates the Xheal-style
// measurements: connectivity under sustained adversarial deletions, degree
// overhead, patch expansion, and healing cost locality, on three base
// topologies (star-of-stars, random regular, grid-ish path-of-cliques).
//
// The deletion workload is the scenario engine's delete-only strategy driven
// through the XhealOverlay adapter; the per-step connectivity audit rides on
// the runner's step observer.

#include <cstdio>

#include "bench_common.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/spectral.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "support/prng.h"

using namespace dex;

namespace {

graph::Multigraph make_star_of_stars(std::size_t hubs, std::size_t leaves) {
  graph::Multigraph g(1 + hubs + hubs * leaves);
  for (std::size_t h = 0; h < hubs; ++h) {
    const auto hub = static_cast<graph::NodeId>(1 + h);
    g.add_edge(0, hub);
    for (std::size_t l = 0; l < leaves; ++l) {
      g.add_edge(hub,
                 static_cast<graph::NodeId>(1 + hubs + h * leaves + l));
    }
  }
  return g;
}

graph::Multigraph make_clique_chain(std::size_t cliques, std::size_t size) {
  graph::Multigraph g(cliques * size);
  for (std::size_t c = 0; c < cliques; ++c) {
    for (std::size_t i = 0; i < size; ++i) {
      for (std::size_t j = i + 1; j < size; ++j) {
        g.add_edge(static_cast<graph::NodeId>(c * size + i),
                   static_cast<graph::NodeId>(c * size + j));
      }
    }
    if (c > 0) {
      g.add_edge(static_cast<graph::NodeId>((c - 1) * size),
                 static_cast<graph::NodeId>(c * size));
    }
  }
  return g;
}

void run(const char* name, graph::Multigraph base, std::uint64_t seed,
         metrics::Table& t) {
  sim::XhealOverlay overlay(std::move(base));
  const std::size_t deletions = overlay.n() / 2;

  adversary::DeleteOnly strat;
  sim::ScenarioSpec spec;
  spec.seed = seed;
  spec.steps = deletions;
  spec.min_n = 4;
  spec.max_n = 2 * overlay.n();
  sim::ScenarioRunner runner(overlay, strat, spec);

  bool always_connected = true;
  runner.set_observer([&](const sim::StepRecord&, sim::HealingOverlay&) {
    always_connected = always_connected &&
                       graph::is_connected(overlay.net().graph(),
                                           overlay.net().alive_mask());
  });
  const auto res = runner.run();

  const auto spec_gap =
      graph::spectral_gap(overlay.net().graph(), overlay.alive_mask());
  t.add_row({name, std::to_string(deletions),
             always_connected ? "yes" : "NO",
             std::to_string(overlay.net().max_degree_overhead()),
             metrics::Table::num(res.messages.p99, 0),
             metrics::Table::num(spec_gap.gap, 3)});
}

}  // namespace

int main() {
  std::printf(
      "=== Extension: Xheal with deterministic p-cycle patches ===\n\n"
      "Half the nodes of each base topology are deleted adversarially\n"
      "(uniformly at random, including hubs); Xheal patches every orphaned\n"
      "neighborhood with a contracted p-cycle expander.\n\n");
  metrics::Table t({"base topology", "deletions", "connected throughout",
                    "max degree overhead", "heal msgs p99", "final gap"});
  run("star-of-stars (1+12+144)", make_star_of_stars(12, 12), 1, t);
  {
    support::Rng gen(2);
    run("random 4-regular (n=160)", graph::make_random_regular(160, 4, gen),
        3, t);
  }
  run("clique chain (16 x 10)", make_clique_chain(16, 10), 4, t);
  t.print();
  std::printf(
      "\nShape check: connectivity never breaks, degree overhead stays a\n"
      "small constant, healing cost is local (tens of messages), and —\n"
      "unlike the original randomized Xheal — the patch expansion is\n"
      "deterministic (final gap bounded away from 0 even for the star,\n"
      "whose healed core is exactly a contracted p-cycle).\n");
  return 0;
}
