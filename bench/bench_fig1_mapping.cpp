// E2 — Figure 1 of the paper: a 3-regular 23-cycle expander (virtual graph,
// left of the figure) and a 4-balanced virtual mapping onto a 7-node real
// network (right of the figure). Prints both the mapping table and Graphviz
// DOT for the two graphs, and verifies the figure's claims: 3-regularity,
// 4-balance, and the contraction inequality λ_G ≤ λ_Z (Lemma 1).

#include <cstdio>
#include <map>

#include "dex/mapping.h"
#include "dex/pcycle.h"
#include "graph/spectral.h"
#include "metrics/table.h"

int main() {
  const std::uint64_t p = 23;
  const std::size_t n = 7;  // nodes A..G, as in the figure
  const dex::PCycle cyc(p);

  dex::VirtualMapping phi(p, n, 16);
  for (dex::Vertex z = 0; z < p; ++z)
    phi.assign(z, static_cast<dex::NodeId>(z % n));

  std::printf("=== Figure 1: 4-balanced virtual mapping of Z(23) ===\n\n");
  dex::metrics::Table t({"real node", "simulated p-cycle vertices", "load",
                         "degree (3*load)"});
  for (dex::NodeId u = 0; u < n; ++u) {
    std::string verts;
    for (dex::Vertex z : phi.sim(u)) {
      if (!verts.empty()) verts += ", ";
      verts += std::to_string(z);
    }
    t.add_row({std::string(1, static_cast<char>('A' + u)), verts,
               std::to_string(phi.load(u)),
               std::to_string(3 * phi.load(u))});
  }
  t.print();

  // Verify the figure's invariants.
  std::size_t max_load = 0;
  for (dex::NodeId u = 0; u < n; ++u)
    max_load = std::max<std::size_t>(max_load, phi.load(u));
  std::printf("\nmax load = %zu (figure shows a 4-balanced mapping)\n",
              max_load);

  // Spectral check: contraction does not shrink the gap (Lemma 1 / Lemma 10).
  dex::graph::Multigraph virt(p);
  cyc.for_each_edge([&](dex::Vertex x, dex::Vertex y) {
    virt.add_edge(static_cast<dex::graph::NodeId>(x),
                  static_cast<dex::graph::NodeId>(y));
  });
  dex::graph::Multigraph real(n);
  cyc.for_each_edge([&](dex::Vertex x, dex::Vertex y) {
    real.add_edge(phi.owner(x), phi.owner(y));
  });
  const auto sv = dex::graph::spectral_gap(virt);
  const auto sr = dex::graph::spectral_gap(real);
  std::printf("lambda2(virtual Z(23)) = %.4f   gap = %.4f\n", sv.lambda2,
              sv.gap);
  std::printf("lambda2(real network)  = %.4f   gap = %.4f\n", sr.lambda2,
              sr.gap);
  std::printf("Lemma 1 (lambda_G <= lambda_Z): %s\n\n",
              sr.lambda2 <= sv.lambda2 + 1e-6 ? "HOLDS" : "VIOLATED");

  // DOT output for the two panels of the figure.
  std::printf("--- virtual graph (left panel), Graphviz DOT ---\n");
  std::printf("graph Z23 {\n  layout=circo;\n");
  cyc.for_each_edge([&](dex::Vertex x, dex::Vertex y) {
    std::printf("  %llu -- %llu;\n", static_cast<unsigned long long>(x),
                static_cast<unsigned long long>(y));
  });
  std::printf("}\n\n--- real network (right panel), Graphviz DOT ---\n");
  std::printf("graph G {\n  layout=circo;\n");
  std::map<std::pair<dex::graph::NodeId, dex::graph::NodeId>, int> mult;
  cyc.for_each_edge([&](dex::Vertex x, dex::Vertex y) {
    auto a = phi.owner(x), b = phi.owner(y);
    if (a > b) std::swap(a, b);
    ++mult[{a, b}];
  });
  for (const auto& [e, m] : mult) {
    std::printf("  %c -- %c [label=%d];\n",
                static_cast<char>('A' + e.first),
                static_cast<char>('A' + e.second), m);
  }
  std::printf("}\n");
  return 0;
}
