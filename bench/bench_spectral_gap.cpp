// E4 — the expansion guarantee itself. Two experiments:
//
// (a) Gap-over-time series under sustained random churn for DEX (both
//     recovery modes) vs Law–Siu vs the flip-chain overlay: DEX's sampled
//     gap must stay within a constant band, including across type-2
//     rebuilds (Lemma 7 / Lemma 9b).
//
// (b) The adaptive greedy-spectral-deletion attack (§2's unbounded
//     adversary): Law–Siu's probabilistic expansion collapses; DEX heals
//     every deletion and keeps its deterministic floor. This regenerates
//     the motivation of §1 and the "expansion guarantees" column of
//     Table 1.

#include <cstdio>

#include "bench_common.h"
#include "graph/spectral.h"
#include "metrics/table.h"

using namespace dex;

namespace {

template <class Net>
std::vector<double> gap_series(Net& net, adversary::Strategy& strat,
                               std::size_t steps, std::size_t sample_every,
                               std::uint64_t seed, std::size_t min_n,
                               std::size_t max_n) {
  auto view = bench::view_of(net);
  support::Rng rng(seed);
  std::vector<double> series;
  for (std::size_t t = 0; t < steps; ++t) {
    bench::apply(net, strat.next(view, rng, min_n, max_n));
    if (t % sample_every == 0) {
      series.push_back(
          graph::spectral_gap(net.snapshot(), net.alive_mask()).gap);
    }
  }
  return series;
}

void print_series(const char* name, const std::vector<double>& s,
                  std::size_t sample_every) {
  std::printf("%-28s", name);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i % 2 == 0) std::printf(" %5.3f", s[i]);
  }
  double lo = 1.0;
  for (double g : s) lo = std::min(lo, g);
  std::printf("   [min %.3f]\n", lo);
  (void)sample_every;
}

}  // namespace

int main() {
  const std::size_t kSteps = 1600;
  const std::size_t kEvery = 100;

  std::printf(
      "=== E4(a): spectral gap over time, random churn (n0=256, %zu steps, "
      "sampled every %zu) ===\n\n",
      kSteps, kEvery);
  {
    Params prm;
    prm.seed = 11;
    prm.mode = RecoveryMode::WorstCase;
    DexNetwork dex_wc(256, prm);
    adversary::RandomChurn churn(0.52);
    print_series("DEX (worst-case mode)",
                 gap_series(dex_wc, churn, kSteps, kEvery, 21, 128, 2048),
                 kEvery);
  }
  {
    Params prm;
    prm.seed = 12;
    prm.mode = RecoveryMode::Amortized;
    DexNetwork dex_am(256, prm);
    adversary::RandomChurn churn(0.52);
    print_series("DEX (amortized mode)",
                 gap_series(dex_am, churn, kSteps, kEvery, 22, 128, 2048),
                 kEvery);
  }
  {
    baselines::LawSiuNetwork ls(256, 3, 13);
    adversary::RandomChurn churn(0.52);
    print_series("Law-Siu d=3 (random churn)",
                 gap_series(ls, churn, kSteps, kEvery, 23, 128, 2048),
                 kEvery);
  }
  {
    baselines::RandomFlipNetwork rf(256, 6, 14);
    adversary::RandomChurn churn(0.52);
    print_series("Flip-chain d=6 (random churn)",
                 gap_series(rf, churn, kSteps, kEvery, 24, 128, 2048),
                 kEvery);
  }

  std::printf(
      "\n=== E4(b): adaptive greedy spectral-deletion attack (n0=192, one "
      "deletion per step, 24 candidate victims evaluated per step) ===\n\n");
  const std::size_t kAttackSteps = 120;
  {
    baselines::LawSiuNetwork ls(192, 2, 15);
    adversary::GreedySpectralDeletion attack(24);
    auto view = bench::view_of(ls);
    print_series("Law-Siu d=2 under attack",
                 gap_series(ls, attack, kAttackSteps, 10, 25, 48, 4096), 10);
  }
  {
    Params prm;
    prm.seed = 16;
    prm.mode = RecoveryMode::WorstCase;
    DexNetwork net(192, prm);
    adversary::GreedySpectralDeletion attack(24);
    print_series("DEX under the same attack",
                 gap_series(net, attack, kAttackSteps, 10, 26, 48, 4096), 10);
  }

  std::printf(
      "\nShape check: both DEX rows sit in a constant band (never below\n"
      "~0.02, the p-cycle family floor); Law-Siu under attack decays\n"
      "monotonically toward 0 and never recovers.\n");
  return 0;
}
