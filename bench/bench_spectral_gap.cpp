// E4 — the expansion guarantee itself. Two experiments:
//
// (a) Gap-over-time series under sustained random churn for DEX (both
//     recovery modes) vs Law–Siu vs the flip-chain overlay: DEX's sampled
//     gap must stay within a constant band, including across type-2
//     rebuilds (Lemma 7 / Lemma 9b).
//
// (b) The adaptive greedy-spectral-deletion attack (§2's unbounded
//     adversary): Law–Siu's probabilistic expansion collapses; DEX heals
//     every deletion and keeps its deterministic floor. This regenerates
//     the motivation of §1 and the "expansion guarantees" column of
//     Table 1.
//
// Every series — any backend, any adversary — is produced by the same
// ScenarioRunner call over the HealingOverlay interface.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "metrics/table.h"

using namespace dex;

namespace {

std::vector<double> gap_series(sim::HealingOverlay& overlay,
                               adversary::Strategy& strat, std::size_t steps,
                               std::size_t sample_every, std::uint64_t seed,
                               std::size_t min_n, std::size_t max_n) {
  sim::ScenarioSpec spec;
  spec.seed = seed;
  spec.steps = steps;
  spec.min_n = min_n;
  spec.max_n = max_n;
  spec.gap_every = sample_every;
  sim::ScenarioRunner runner(overlay, strat, spec);
  const auto res = runner.run();

  std::vector<double> series;
  for (const auto& rec : res.trace) {
    if (rec.gap >= 0) series.push_back(rec.gap);
  }
  return series;
}

void print_series(const char* name, const std::vector<double>& s) {
  std::printf("%-28s", name);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i % 2 == 0) std::printf(" %5.3f", s[i]);
  }
  double lo = 1.0;
  for (double g : s) lo = std::min(lo, g);
  std::printf("   [min %.3f]\n", lo);
}

}  // namespace

int main() {
  const std::size_t kSteps = 1600;
  const std::size_t kEvery = 100;

  std::printf(
      "=== E4(a): spectral gap over time, random churn (n0=256, %zu steps, "
      "sampled every %zu) ===\n\n",
      kSteps, kEvery);
  {
    Params prm;
    prm.seed = 11;
    prm.mode = RecoveryMode::WorstCase;
    sim::DexOverlay overlay(256, prm);
    adversary::RandomChurn churn(0.52);
    print_series("DEX (worst-case mode)",
                 gap_series(overlay, churn, kSteps, kEvery, 21, 128, 2048));
  }
  {
    Params prm;
    prm.seed = 12;
    prm.mode = RecoveryMode::Amortized;
    sim::DexOverlay overlay(256, prm);
    adversary::RandomChurn churn(0.52);
    print_series("DEX (amortized mode)",
                 gap_series(overlay, churn, kSteps, kEvery, 22, 128, 2048));
  }
  {
    sim::LawSiuOverlay overlay(256, 3, 13);
    adversary::RandomChurn churn(0.52);
    print_series("Law-Siu d=3 (random churn)",
                 gap_series(overlay, churn, kSteps, kEvery, 23, 128, 2048));
  }
  {
    sim::RandomFlipOverlay overlay(256, 6, 14);
    adversary::RandomChurn churn(0.52);
    print_series("Flip-chain d=6 (random churn)",
                 gap_series(overlay, churn, kSteps, kEvery, 24, 128, 2048));
  }

  std::printf(
      "\n=== E4(b): adaptive greedy spectral-deletion attack (n0=192, one "
      "deletion per step, 24 candidate victims evaluated per step) ===\n\n");
  const std::size_t kAttackSteps = 120;
  {
    sim::LawSiuOverlay overlay(192, 2, 15);
    adversary::GreedySpectralDeletion attack(24);
    print_series("Law-Siu d=2 under attack",
                 gap_series(overlay, attack, kAttackSteps, 10, 25, 48, 4096));
  }
  {
    Params prm;
    prm.seed = 16;
    prm.mode = RecoveryMode::WorstCase;
    sim::DexOverlay overlay(192, prm);
    adversary::GreedySpectralDeletion attack(24);
    print_series("DEX under the same attack",
                 gap_series(overlay, attack, kAttackSteps, 10, 26, 48, 4096));
  }

  std::printf(
      "\nShape check: both DEX rows sit in a constant band (never below\n"
      "~0.02, the p-cycle family floor); Law-Siu under attack decays\n"
      "monotonically toward 0 and never recovers.\n");
  return 0;
}
