// E9/E10 — the two CONGEST subroutines type-2 recovery leans on, measured
// under real per-edge congestion:
//
// (1) Lemma 11: n simultaneous random-walk tokens of length Θ(log n) on the
//     p-cycle complete within O(log² n) rounds.
// (2) Corollary 3 (permutation routing): one packet per vertex, random
//     permutation destinations, shortest paths, farthest-first queueing —
//     rounds stay polylogarithmic. This validates the analytic charge the
//     library applies during type-2 rebuilds.

#include <cmath>
#include <cstdio>

#include "dex/pcycle.h"
#include "metrics/table.h"
#include "sim/router.h"
#include "sim/token_engine.h"
#include "support/mathutil.h"
#include "support/prng.h"

using namespace dex;

int main() {
  std::printf("=== E9 / Lemma 11: n parallel walks under congestion ===\n\n");
  metrics::Table t({"p (vertices)", "walk length", "rounds", "log2^2 p",
                    "rounds/log2^2 p"});
  for (std::uint64_t p : {211ULL, 1009ULL, 4099ULL, 16411ULL}) {
    const PCycle cyc(p);
    sim::PortsFn ports = [&cyc](std::uint64_t loc,
                                std::vector<std::uint64_t>& out) {
      out.clear();
      for (auto w : cyc.ports(loc)) out.push_back(w);
    };
    support::Rng rng(p);
    const std::uint64_t len = support::scaled_log(2.0, p);
    std::vector<sim::Token> tokens;
    for (Vertex v = 0; v < p; ++v)
      tokens.push_back({v, len, 0, false});
    const auto res = sim::run_walks(std::move(tokens), ports, rng, 1u << 22);
    const double lg2 = std::pow(std::log2(static_cast<double>(p)), 2);
    t.add_row({std::to_string(p), std::to_string(len),
               std::to_string(res.rounds), metrics::Table::num(lg2, 0),
               metrics::Table::num(static_cast<double>(res.rounds) / lg2, 2)});
  }
  t.print();
  std::printf("\nShape check: rounds/log2^2(p) bounded by a constant.\n");

  std::printf("\n=== E10 / Cor. 3: permutation routing on the p-cycle ===\n\n");
  metrics::Table r({"p", "rounds", "max queue", "mean path", "log2^2 p",
                    "rounds/log2^2 p"});
  for (std::uint64_t p : {211ULL, 1009ULL, 4099ULL}) {
    const PCycle cyc(p);
    support::Rng rng(p ^ 0xfeed);
    std::vector<std::uint64_t> perm(p);
    for (std::uint64_t i = 0; i < p; ++i) perm[i] = i;
    rng.shuffle(perm);
    std::vector<sim::Packet> pkts;
    std::uint64_t hops = 0;
    for (std::uint64_t i = 0; i < p; ++i) {
      auto path = cyc.shortest_path(i, perm[i]);
      hops += path.size() - 1;
      pkts.push_back({std::move(path), 0});
    }
    const auto res = sim::route_packets(std::move(pkts), rng, 1u << 22);
    const double lg2 = std::pow(std::log2(static_cast<double>(p)), 2);
    r.add_row({std::to_string(p), std::to_string(res.rounds),
               std::to_string(res.max_queue),
               metrics::Table::num(static_cast<double>(hops) /
                                       static_cast<double>(p), 1),
               metrics::Table::num(lg2, 0),
               metrics::Table::num(static_cast<double>(res.rounds) / lg2, 2)});
  }
  r.print();
  std::printf(
      "\nShape check: routing rounds polylogarithmic (the analytic charge\n"
      "the library uses for type-2 inverse-edge construction is safe).\n");
  return 0;
}
