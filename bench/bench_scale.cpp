// E12 — the serving hot path at scale: traffic-on sweeps at 10k nodes up
// to one million, the population range where the paper's O(log n) routing
// claim is actually interesting and where per-step full view rebuilds (an
// O(n + m) snapshot + CSR per churn step) stopped being drivable. Three
// sections:
//
//  * a deterministic all-backends sweep (populations up to 100k) whose
//    per-trial summaries stream into BENCH_scale.json — the cross-commit
//    perf-trajectory artifact the CI scale-smoke job uploads
//    (deterministic: no wall-clock inside);
//  * wall-clock phase attribution (single trials): churn healing vs.
//    incremental view maintenance vs. traffic serving, µs per step and µs
//    per op, appended to BENCH_scale.json as "kind":"phase_timing" JSONL
//    rows — the input to tools/perf_guard.py, CI's 2x-regression gate.
//    Every row carries an "engine" field; a second pass times the same
//    trials through the discrete-event core (sim/event/) in its racing
//    regime so the asynchronous hot path is gated too;
//  * the frontier: n > 100k up to max_n (default one million) on the two
//    backends whose maintenance cost is genuinely per-churn-delta
//    (dex-amortized, lawsiu), traffic on — the run the incremental CSR
//    path exists for.
//
// Usage: bench_scale [max_n] [json_path]
//   max_n     largest population to sweep (default 1000000; CI passes a
//             reduced value to fit its wall-clock budget)
//   json_path where the JSONL summaries go (default BENCH_scale.json)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "metrics/table.h"
#include "sim/experiment.h"
#include "sim/sinks.h"

using namespace dex;
using Clock = std::chrono::steady_clock;

using dex::bench::hops_per_op;
using dex::bench::stretch;

namespace {

sim::ScenarioSpec traffic_spec(std::size_t steps) {
  sim::ScenarioSpec spec;
  spec.steps = steps;
  spec.batch_size = 8;
  spec.record_trace = false;
  spec.traffic.workload = "zipf";
  spec.traffic.ops_per_step = 64;
  spec.traffic.keyspace = 8192;
  return spec;
}

/// The event-engine configuration the timed "engine":"event" rows run under:
/// the racing regime (uniform:1,4 link latency, 5% loss) that E13 sweeps.
sim::EventSpec event_spec() {
  sim::EventSpec ev;
  ev.enabled = true;
  ev.latency = *sim::LatencyModel::parse("uniform:1,4");
  ev.loss_rate = 0.05;
  return ev;
}

/// One timed single trial with phase attribution on; returns the result and
/// fills wall_ms.
sim::ScenarioResult timed_trial(const char* backend, std::size_t n,
                                std::size_t steps, unsigned intra_jobs,
                                double& wall_ms, bool event = false) {
  auto overlay = sim::make_overlay(backend, n, sim::overlay_seed(1));
  if (intra_jobs > 1) overlay->set_intra_jobs(intra_jobs);
  auto strategy = sim::make_strategy("churn");
  auto spec = traffic_spec(steps);
  spec.seed = 1;
  spec.time_phases = true;
  if (event) spec.event = event_spec();
  sim::ScenarioRunner runner(*overlay, *strategy, spec);
  const auto t0 = Clock::now();
  auto res = runner.run();
  wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
  return res;
}

/// Appends one "kind":"phase_timing" JSONL row — the record
/// tools/perf_guard.py diffs against its checked-in baseline. Wall-clock
/// data stays out of the deterministic summaries; it gets its own kind.
void emit_phase_row(std::ofstream& json, const char* backend, std::size_t n,
                    std::size_t steps, const sim::ScenarioResult& res,
                    double wall_ms, const char* engine = "sync") {
  const double s = static_cast<double>(steps);
  const double us_per_op =
      res.total_ops ? 1000.0 * wall_ms / static_cast<double>(res.total_ops)
                    : 0.0;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"kind\": \"phase_timing\", \"backend\": \"%s\", "
                "\"engine\": \"%s\", "
                "\"n0\": %zu, \"steps\": %zu, \"wall_ms\": %.1f, "
                "\"churn_us_per_step\": %.1f, \"view_us_per_step\": %.1f, "
                "\"traffic_us_per_step\": %.1f, \"us_per_op\": %.2f}\n",
                backend, engine, n, steps, wall_ms, res.churn_us / s,
                res.view_us / s, res.traffic_us / s, us_per_op);
  json << buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t max_n =
      argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10))
               : 1000000;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_scale.json";
  if (max_n < 2000) {
    std::fprintf(stderr, "bench_scale: max_n must be >= 2000\n");
    return 2;
  }

  std::printf("=== E12: the serving hot path, 10k nodes to 1M ===\n\n");

  // The all-backends sweep stops at 100k — the flooding/xheal/randomflip
  // rows cost O(n) (or worse) per step by construction and say nothing new
  // beyond that size. The frontier sizes run on the per-delta backends only.
  constexpr std::size_t kSixBackendCap = 100000;
  std::vector<std::size_t> pops;
  for (const std::size_t n : {std::size_t{2000}, std::size_t{10000},
                              std::size_t{31623}, std::size_t{100000}}) {
    if (n <= max_n && n <= kSixBackendCap) pops.push_back(n);
  }
  if (max_n <= kSixBackendCap && pops.back() != max_n) pops.push_back(max_n);
  std::vector<std::size_t> frontier;
  for (const std::size_t n : {std::size_t{316228}, std::size_t{1000000}}) {
    if (n <= max_n && n > kSixBackendCap) frontier.push_back(n);
  }
  if (max_n > kSixBackendCap &&
      (frontier.empty() || frontier.back() != max_n)) {
    frontier.push_back(max_n);
  }

  std::printf("-- all six backends, zipf traffic over batch churn --\n\n");
  sim::AggregateSink agg;
  {
    sim::ExperimentPlan plan;
    plan.backends = sim::known_overlays();
    plan.scenarios = {"churn"};
    plan.populations = pops;
    plan.seeds = {1};
    plan.base = traffic_spec(/*steps=*/40);

    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    sim::JsonSummarySink json_sink(json);
    sim::ExecutorOptions opts;
    opts.jobs = 0;  // all cores; the output is identical regardless
    opts.stream_steps = false;
    opts.collect_results = false;
    sim::Executor executor(opts);
    executor.add_sink(agg);
    executor.add_sink(json_sink);
    const auto t0 = Clock::now();
    executor.run(plan.expand());
    const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

    metrics::Table t({"backend", "n0", "ops", "hops/op", "stretch", "failed",
                      "moved keys", "rehash msgs"});
    for (const auto& row : agg.rows()) {
      const auto& r = row.result;
      t.add_row({r.backend, std::to_string(row.info.n0),
                 std::to_string(r.total_ops),
                 metrics::Table::num(hops_per_op(r), 2),
                 metrics::Table::num(stretch(r), 2),
                 std::to_string(r.total_failed_lookups +
                                r.total_failed_writes),
                 std::to_string(r.total_moved_keys),
                 std::to_string(r.total_rehash_messages)});
    }
    t.print();
    std::printf(
        "\nSweep wall clock: %.1fs for %zu trials (summaries -> %s).\n"
        "Shape check: failed ops stay 0 on every backend at every size (the\n"
        "zero-loss contract scales); DEX stretch holds its small constant\n"
        "while the baselines route at 1 by construction.\n",
        wall, agg.rows().size(), json_path.c_str());
  }

  std::printf(
      "\n-- phase attribution (single trials, wall clock per phase) --\n\n");
  {
    std::ofstream json(json_path, std::ios::app);
    metrics::Table t({"backend", "n0", "steps", "wall ms", "churn us/st",
                      "view us/st", "traffic us/st", "us/op"});
    for (const char* backend : {"dex-worstcase", "dex-amortized", "lawsiu"}) {
      for (const std::size_t n : pops) {
        if (n < 10000) continue;  // the small sizes say nothing about scale
        constexpr std::size_t kSteps = 20;
        double ms = 0.0;
        const auto res = timed_trial(backend, n, kSteps, /*intra_jobs=*/1, ms);
        emit_phase_row(json, backend, n, kSteps, res, ms);
        t.add_row({backend, std::to_string(n), std::to_string(kSteps),
                   metrics::Table::num(ms, 0),
                   metrics::Table::num(res.churn_us / kSteps, 0),
                   metrics::Table::num(res.view_us / kSteps, 0),
                   metrics::Table::num(res.traffic_us / kSteps, 0),
                   metrics::Table::num(
                       1000.0 * ms / static_cast<double>(res.total_ops), 1)});
      }
    }
    t.print();
    std::printf(
        "\nShape check: the view column is the incremental-maintenance bill —\n"
        "journal drain + CSR patch, proportional to the churn delta, not to n\n"
        "(it used to be a full snapshot + CSR rebuild per step). These rows\n"
        "also land in %s as \"kind\":\"phase_timing\" for tools/perf_guard.py,\n"
        "the CI 2x-regression gate.\n",
        json_path.c_str());
  }

  std::printf(
      "\n-- event engine: racing regime (uniform:1,4 latency, 5%% loss) --\n\n");
  {
    std::ofstream json(json_path, std::ios::app);
    metrics::Table t({"backend", "n0", "steps", "wall ms", "dropped",
                      "max in-flight", "us/op"});
    for (const char* backend : {"dex-amortized", "lawsiu"}) {
      for (const std::size_t n : pops) {
        if (n < 10000) continue;
        constexpr std::size_t kSteps = 20;
        double ms = 0.0;
        const auto res =
            timed_trial(backend, n, kSteps, /*intra_jobs=*/1, ms,
                        /*event=*/true);
        emit_phase_row(json, backend, n, kSteps, res, ms, "event");
        t.add_row({backend, std::to_string(n), std::to_string(kSteps),
                   metrics::Table::num(ms, 0),
                   std::to_string(res.total_dropped),
                   std::to_string(res.max_in_flight),
                   metrics::Table::num(
                       1000.0 * ms / static_cast<double>(res.total_ops), 1)});
      }
    }
    t.print();
    std::printf(
        "\nShape check: the event engine's bill is heap bookkeeping plus\n"
        "retransmits — us/op stays within a small constant of the sync rows\n"
        "above, not a new asymptotic class. These rows land in %s with\n"
        "\"engine\": \"event\" so tools/perf_guard.py gates the asynchronous\n"
        "hot path alongside the lockstep one.\n",
        json_path.c_str());
  }

  if (!frontier.empty()) {
    std::printf("\n-- the frontier: n > 100k, per-delta backends only --\n\n");
    std::ofstream json(json_path, std::ios::app);
    const unsigned intra =
        std::max(1u, std::thread::hardware_concurrency());
    metrics::Table t({"backend", "n0", "steps", "wall ms", "churn us/st",
                      "view us/st", "traffic us/st", "us/op"});
    for (const char* backend : {"dex-amortized", "lawsiu"}) {
      for (const std::size_t n : frontier) {
        constexpr std::size_t kSteps = 10;
        double ms = 0.0;
        const auto res = timed_trial(backend, n, kSteps, intra, ms);
        emit_phase_row(json, backend, n, kSteps, res, ms);
        t.add_row({backend, std::to_string(n), std::to_string(kSteps),
                   metrics::Table::num(ms, 0),
                   metrics::Table::num(res.churn_us / kSteps, 0),
                   metrics::Table::num(res.view_us / kSteps, 0),
                   metrics::Table::num(res.traffic_us / kSteps, 0),
                   metrics::Table::num(
                       1000.0 * ms / static_cast<double>(res.total_ops), 1)});
      }
    }
    t.print();
    std::printf(
        "\nShape check: one n=1M trial with zipf traffic completes in minutes\n"
        "— per-step cost is the churn delta (view patch) plus the served ops\n"
        "(shared BFS frontiers), never an O(n + m) rebuild. DEX additionally\n"
        "fans its walk-port enumeration across %u threads (byte-identical\n"
        "traces; see --trial-jobs).\n",
        intra);
  }
  return 0;
}
