// E12 — the serving hot path at scale: traffic-on sweeps at 10k–100k+
// nodes across every backend, the population range where the paper's
// O(log n) routing claim is actually interesting and where the pre-oracle
// traffic layer (a fresh BFS per op, a full rendezvous rescan per moved
// key) stopped being drivable. Two sections:
//
//  * a deterministic all-backends sweep whose per-trial summaries stream
//    into BENCH_scale.json — the cross-commit perf-trajectory artifact the
//    CI scale-smoke job uploads (deterministic: no wall-clock inside);
//  * wall-clock hot-path timings (single trials, µs per op) for the
//    routing-heavy backends, printed for the human reading the log.
//
// Usage: bench_scale [max_n] [json_path]
//   max_n     largest population to sweep (default 100000; CI passes a
//             reduced value to fit its wall-clock budget)
//   json_path where the JSONL summaries go (default BENCH_scale.json)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "metrics/table.h"
#include "sim/experiment.h"
#include "sim/sinks.h"

using namespace dex;
using Clock = std::chrono::steady_clock;

using dex::bench::hops_per_op;
using dex::bench::stretch;

namespace {

sim::ScenarioSpec traffic_spec(std::size_t steps) {
  sim::ScenarioSpec spec;
  spec.steps = steps;
  spec.batch_size = 8;
  spec.record_trace = false;
  spec.traffic.workload = "zipf";
  spec.traffic.ops_per_step = 64;
  spec.traffic.keyspace = 8192;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t max_n =
      argc > 1 ? static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10))
               : 100000;
  const std::string json_path = argc > 2 ? argv[2] : "BENCH_scale.json";
  if (max_n < 2000) {
    std::fprintf(stderr, "bench_scale: max_n must be >= 2000\n");
    return 2;
  }

  std::printf("=== E12: the serving hot path at 10k-100k+ nodes ===\n\n");

  std::vector<std::size_t> pops;
  for (const std::size_t n : {std::size_t{2000}, std::size_t{10000},
                              std::size_t{31623}, std::size_t{100000}}) {
    if (n <= max_n) pops.push_back(n);
  }
  if (pops.back() != max_n) pops.push_back(max_n);

  std::printf("-- all six backends, zipf traffic over batch churn --\n\n");
  sim::AggregateSink agg;
  {
    sim::ExperimentPlan plan;
    plan.backends = sim::known_overlays();
    plan.scenarios = {"churn"};
    plan.populations = pops;
    plan.seeds = {1};
    plan.base = traffic_spec(/*steps=*/40);

    std::ofstream json(json_path);
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    sim::JsonSummarySink json_sink(json);
    sim::ExecutorOptions opts;
    opts.jobs = 0;  // all cores; the output is identical regardless
    opts.stream_steps = false;
    opts.collect_results = false;
    sim::Executor executor(opts);
    executor.add_sink(agg);
    executor.add_sink(json_sink);
    const auto t0 = Clock::now();
    executor.run(plan.expand());
    const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

    metrics::Table t({"backend", "n0", "ops", "hops/op", "stretch", "failed",
                      "moved keys", "rehash msgs"});
    for (const auto& row : agg.rows()) {
      const auto& r = row.result;
      t.add_row({r.backend, std::to_string(row.info.n0),
                 std::to_string(r.total_ops),
                 metrics::Table::num(hops_per_op(r), 2),
                 metrics::Table::num(stretch(r), 2),
                 std::to_string(r.total_failed_lookups +
                                r.total_failed_writes),
                 std::to_string(r.total_moved_keys),
                 std::to_string(r.total_rehash_messages)});
    }
    t.print();
    std::printf(
        "\nSweep wall clock: %.1fs for %zu trials (summaries -> %s).\n"
        "Shape check: failed ops stay 0 on every backend at every size (the\n"
        "zero-loss contract scales); DEX stretch holds its small constant\n"
        "while the baselines route at 1 by construction.\n",
        wall, agg.rows().size(), json_path.c_str());
  }

  std::printf("\n-- hot-path wall clock (single trials, routing-heavy) --\n\n");
  {
    metrics::Table t({"backend", "n0", "steps", "ops", "wall ms", "us/op"});
    for (const char* backend : {"dex-worstcase", "dex-amortized", "lawsiu"}) {
      for (const std::size_t n : pops) {
        if (n < 10000) continue;  // the small sizes say nothing about scale
        auto overlay = sim::make_overlay(backend, n, sim::overlay_seed(1));
        auto strategy = sim::make_strategy("churn");
        auto spec = traffic_spec(/*steps=*/20);
        spec.seed = 1;
        sim::ScenarioRunner runner(*overlay, *strategy, spec);
        const auto t0 = Clock::now();
        const auto res = runner.run();
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        t.add_row({backend, std::to_string(n), std::to_string(res.rounds.count),
                   std::to_string(res.total_ops), metrics::Table::num(ms, 0),
                   metrics::Table::num(1000.0 * ms /
                                           static_cast<double>(res.total_ops),
                                       1)});
      }
    }
    t.print();
    std::printf(
        "\nShape check: the full traffic-on sweep above finishes in minutes at\n"
        "n=100k where the pre-oracle layer took hours (every op re-paid an\n"
        "O(n + m) BFS — twice on DEX — and every moved key a full alive-set\n"
        "rescan). us/op here still carries each step's fixed view refresh and\n"
        "its cold (origin, home) pairs; the shared frontiers and memoized\n"
        "contractions amortize exactly the part that used to repeat, so the\n"
        "per-op cost drops further as ops_per_step grows.\n");
  }
  return 0;
}
