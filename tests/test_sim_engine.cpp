// The CONGEST simulator: token-engine random walks under per-edge
// congestion (Lemma 11's model), the packet router (Cor. 3's model), the
// flooding cost model (Algorithm 4.4), and cost meters.

#include <gtest/gtest.h>

#include <cmath>

#include "dex/pcycle.h"
#include "graph/generators.h"
#include "sim/flood.h"
#include "sim/meters.h"
#include "sim/router.h"
#include "sim/token_engine.h"
#include "support/mathutil.h"

namespace s = dex::sim;
namespace g = dex::graph;

namespace {

s::PortsFn cycle_ports(std::size_t n) {
  return [n](std::uint64_t loc, std::vector<std::uint64_t>& out) {
    out = {(loc + 1) % n, (loc + n - 1) % n};
  };
}

}  // namespace

TEST(Meters, StepWindows) {
  s::CostMeter m;
  m.add_rounds(3);
  m.add_messages(10);
  const auto step = m.end_step();
  EXPECT_EQ(step.rounds, 3u);
  EXPECT_EQ(step.messages, 10u);
  m.add_topology(2);
  EXPECT_EQ(m.step().topology_changes, 2u);
  EXPECT_EQ(m.total().messages, 10u);
  EXPECT_EQ(m.total().rounds, 3u);
  m.reset();
  EXPECT_EQ(m.total().messages, 0u);
}

TEST(TokenEngine, SingleTokenWalksExactSteps) {
  dex::support::Rng rng(1);
  std::vector<s::Token> tokens{{0, 10, 0, false}};
  const auto res = s::run_walks(tokens, cycle_ports(8), rng, 1000);
  EXPECT_TRUE(res.all_finished);
  EXPECT_EQ(res.rounds, 10u);  // no congestion: one step per round
  EXPECT_EQ(res.messages, 10u);
  EXPECT_TRUE(res.tokens[0].finished);
}

TEST(TokenEngine, ZeroStepTokenFinishesImmediately) {
  dex::support::Rng rng(2);
  std::vector<s::Token> tokens{{5, 0, 0, false}};
  const auto res = s::run_walks(tokens, cycle_ports(8), rng, 10);
  EXPECT_TRUE(res.all_finished);
  EXPECT_EQ(res.rounds, 0u);
  EXPECT_EQ(res.tokens[0].location, 5u);
}

TEST(TokenEngine, CongestionDelaysButCompletes) {
  // Many tokens crammed on a tiny cycle: edges serialize them.
  dex::support::Rng rng(3);
  std::vector<s::Token> tokens;
  for (int i = 0; i < 32; ++i)
    tokens.push_back({static_cast<std::uint64_t>(i % 4), 20, 0, false});
  const auto res = s::run_walks(tokens, cycle_ports(4), rng, 100000);
  EXPECT_TRUE(res.all_finished);
  EXPECT_GT(res.rounds, 20u);  // congestion forced waiting
  EXPECT_EQ(res.messages, 32u * 20u);
}

TEST(TokenEngine, RoundLimitLeavesUnfinished) {
  dex::support::Rng rng(4);
  std::vector<s::Token> tokens{{0, 1000, 0, false}};
  const auto res = s::run_walks(tokens, cycle_ports(8), rng, 10);
  EXPECT_FALSE(res.all_finished);
  EXPECT_FALSE(res.tokens[0].finished);
  EXPECT_EQ(res.rounds, 10u);
}

// Lemma 11: n parallel walks of length Θ(log n) on a bounded-degree
// expander complete within O(log² n) rounds.
TEST(TokenEngine, Lemma11ParallelWalksOnExpander) {
  const dex::PCycle cyc(1009);
  s::PortsFn ports = [&cyc](std::uint64_t loc,
                            std::vector<std::uint64_t>& out) {
    out.clear();
    for (auto w : cyc.ports(loc)) out.push_back(w);
  };
  dex::support::Rng rng(5);
  const std::uint64_t len = dex::support::scaled_log(2.0, 1009);
  std::vector<s::Token> tokens;
  for (std::uint64_t v = 0; v < 1009; ++v) tokens.push_back({v, len, 0, false});
  const auto res = s::run_walks(tokens, ports, rng, 100000);
  EXPECT_TRUE(res.all_finished);
  const double log_n = std::log2(1009.0);
  EXPECT_LT(static_cast<double>(res.rounds), 10.0 * log_n * log_n);
}

TEST(Router, SinglePacketFollowsPath) {
  dex::support::Rng rng(6);
  std::vector<s::Packet> pkts{{{0, 1, 2, 3}, 0}};
  const auto res = s::route_packets(pkts, rng, 100);
  EXPECT_TRUE(res.all_delivered);
  EXPECT_EQ(res.rounds, 3u);
  EXPECT_EQ(res.messages, 3u);
}

TEST(Router, SharedEdgeSerializes) {
  dex::support::Rng rng(7);
  // Three packets all need edge (0,1) first.
  std::vector<s::Packet> pkts{{{0, 1, 2}, 0}, {{0, 1, 3}, 1}, {{0, 1, 4}, 2}};
  const auto res = s::route_packets(pkts, rng, 100);
  EXPECT_TRUE(res.all_delivered);
  EXPECT_GE(res.rounds, 4u);  // 3 serial uses of (0,1) + final hops
  EXPECT_EQ(res.messages, 6u);
  EXPECT_GE(res.max_queue, 2u);
}

TEST(Router, EmptyPathPacketIsDeliveredInstantly) {
  dex::support::Rng rng(8);
  std::vector<s::Packet> pkts{{{42}, 0}};
  const auto res = s::route_packets(pkts, rng, 10);
  EXPECT_TRUE(res.all_delivered);
  EXPECT_EQ(res.messages, 0u);
}

TEST(Router, PermutationOnPCycleIsPolylog) {
  // Cor. 3-flavored check: one packet per vertex to a random permutation
  // target, paths = shortest paths; rounds stay polylogarithmic.
  const std::uint64_t p = 499;
  const dex::PCycle cyc(p);
  dex::support::Rng rng(9);
  std::vector<std::uint64_t> perm(p);
  for (std::uint64_t i = 0; i < p; ++i) perm[i] = i;
  rng.shuffle(perm);
  std::vector<s::Packet> pkts;
  for (std::uint64_t i = 0; i < p; ++i) {
    pkts.push_back({cyc.shortest_path(i, perm[i]), 0});
  }
  const auto res = s::route_packets(pkts, rng, 1000000);
  EXPECT_TRUE(res.all_delivered);
  const double lg = std::log2(static_cast<double>(p));
  EXPECT_LT(static_cast<double>(res.rounds), 6.0 * lg * lg);
}

TEST(Flood, CostMatchesEccentricityAndEdges) {
  const auto path = g::make_path(6);
  const auto cost = s::flood_cost(path, 0);
  EXPECT_EQ(cost.rounds, 10u);     // 2 * ecc(0) = 2*5
  EXPECT_EQ(cost.messages, 20u);   // 2 * total degree (2*(2*5))
  const auto mid = s::flood_cost(path, 3);
  EXPECT_EQ(mid.rounds, 6u);       // 2 * 3
}

TEST(Flood, RespectsAliveMask) {
  const auto path = g::make_path(6);
  std::vector<bool> alive{true, true, true, false, false, false};
  const auto cost = s::flood_cost(path, 0, alive);
  EXPECT_EQ(cost.rounds, 4u);  // ecc within {0,1,2} = 2
}
