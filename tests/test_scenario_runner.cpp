// The scenario engine (sim/scenario.h) and the unified HealingOverlay
// interface (sim/overlay.h): determinism of the recorded trace, conformance
// of every backend adapter under sustained random churn (population bounds,
// meter monotonicity, trace/aggregate coherence), per-step view caching,
// scripted replay, and the factories.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/overlay.h"
#include "sim/scenario.h"

using namespace dex;

namespace {

sim::ScenarioSpec churn_spec(std::uint64_t seed, std::size_t steps,
                             std::size_t min_n, std::size_t max_n) {
  sim::ScenarioSpec spec;
  spec.seed = seed;
  spec.steps = steps;
  spec.min_n = min_n;
  spec.max_n = max_n;
  return spec;
}

sim::ScenarioResult run_churn(sim::HealingOverlay& overlay,
                              const sim::ScenarioSpec& spec) {
  adversary::RandomChurn strat(0.5);
  sim::ScenarioRunner runner(overlay, strat, spec);
  return runner.run();
}

const char* kAllBackends[] = {"dex-amortized", "dex-worstcase", "flood",
                              "lawsiu",        "randomflip",    "xheal"};

}  // namespace

// ---------------------------------------------------------- determinism

TEST(ScenarioRunner, SameSpecSameSeedByteIdenticalTrace) {
  const auto spec = churn_spec(77, 120, 16, 128);
  std::vector<std::string> traces;
  std::vector<std::string> summaries;
  for (int rep = 0; rep < 2; ++rep) {
    Params prm;
    prm.seed = 5;
    prm.mode = RecoveryMode::WorstCase;
    sim::DexOverlay overlay(48, prm);
    const auto res = run_churn(overlay, spec);
    traces.push_back(sim::trace_csv(res));
    summaries.push_back(sim::summary_json(res));
  }
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(summaries[0], summaries[1]);
  // A different runner seed must produce a different decision sequence.
  Params prm;
  prm.seed = 5;
  prm.mode = RecoveryMode::WorstCase;
  sim::DexOverlay overlay(48, prm);
  const auto other = run_churn(overlay, churn_spec(78, 120, 16, 128));
  EXPECT_NE(traces[0], sim::trace_csv(other));
}

TEST(ScenarioRunner, DeterminismHoldsForEveryFactoryBackend) {
  for (const char* backend : kAllBackends) {
    std::vector<std::string> traces;
    for (int rep = 0; rep < 2; ++rep) {
      auto overlay = sim::make_overlay(backend, 32, 11);
      ASSERT_NE(overlay, nullptr) << backend;
      const auto res = run_churn(*overlay, churn_spec(3, 60, 12, 64));
      traces.push_back(sim::trace_csv(res));
    }
    EXPECT_EQ(traces[0], traces[1]) << backend;
  }
}

// ---------------------------------------------------------- conformance

TEST(ScenarioRunner, EveryAdapterSurvives200StepChurn) {
  const std::size_t kSteps = 200;
  const std::size_t kMin = 16, kMax = 64;
  for (const char* backend : kAllBackends) {
    SCOPED_TRACE(backend);
    auto overlay = sim::make_overlay(backend, 32, 9);
    ASSERT_NE(overlay, nullptr);

    adversary::RandomChurn strat(0.5);
    sim::ScenarioRunner runner(*overlay, strat,
                               churn_spec(123, kSteps, kMin, kMax));

    // Meters must be monotone: cumulative totals never decrease.
    sim::StepCost prev = overlay->meter().total();
    runner.set_observer(
        [&](const sim::StepRecord&, sim::HealingOverlay& o) {
          const auto& tot = o.meter().total();
          EXPECT_GE(tot.rounds, prev.rounds);
          EXPECT_GE(tot.messages, prev.messages);
          EXPECT_GE(tot.topology_changes, prev.topology_changes);
          prev = tot;
        });
    const auto res = runner.run();

    ASSERT_EQ(res.trace.size(), kSteps);
    sim::StepCost sum;
    for (const auto& rec : res.trace) {
      EXPECT_GE(rec.n, kMin);
      EXPECT_LE(rec.n, kMax);
      sum += rec.cost;
    }
    // Trace and aggregates agree, and the overlay's lifetime meter covers
    // at least what the trace recorded.
    EXPECT_EQ(sum.rounds, res.total.rounds);
    EXPECT_EQ(sum.messages, res.total.messages);
    EXPECT_EQ(sum.topology_changes, res.total.topology_changes);
    const auto& tot = overlay->meter().total();
    EXPECT_GE(tot.rounds, res.total.rounds);
    EXPECT_GE(tot.messages, res.total.messages);
    EXPECT_GE(tot.topology_changes, res.total.topology_changes);

    EXPECT_EQ(res.final_n, overlay->n());
    EXPECT_EQ(res.backend, backend);
    overlay->check_invariants();
  }
}

TEST(ScenarioRunner, TargetedAttackOnDexKeepsInvariants) {
  Params prm;
  prm.seed = 21;
  prm.mode = RecoveryMode::WorstCase;
  sim::DexOverlay overlay(32, prm);
  adversary::CoordinatorKiller strat;
  sim::ScenarioRunner runner(overlay, strat, churn_spec(6, 80, 12, 96));
  const auto res = runner.run();
  ASSERT_EQ(res.trace.size(), 80u);
  overlay.check_invariants();
  // The killer alternates inserts with coordinator deletions; both kinds
  // must actually occur.
  std::size_t deletes = 0;
  for (const auto& rec : res.trace) deletes += rec.insert ? 0 : 1;
  EXPECT_GT(deletes, 20u);
  EXPECT_LT(deletes, 60u);
}

// ------------------------------------------------------ spec machinery

TEST(ScenarioRunner, WarmupStepsAreNotRecorded) {
  Params prm;
  prm.seed = 31;
  sim::DexOverlay overlay(24, prm);
  adversary::InsertOnly strat;
  auto spec = churn_spec(9, 10, 8, 512);
  spec.warmup_steps = 40;
  sim::ScenarioRunner runner(overlay, strat, spec);
  const auto res = runner.run();
  EXPECT_EQ(res.trace.size(), 10u);
  // 10 recorded insert-only steps from whatever population warmup left.
  EXPECT_EQ(res.final_n, res.trace.front().n + 9);
}

TEST(ScenarioRunner, GapSampledOnScheduleAndDegreeMeasured) {
  Params prm;
  prm.seed = 41;
  sim::DexOverlay overlay(24, prm);
  adversary::RandomChurn strat(0.5);
  auto spec = churn_spec(13, 30, 8, 96);
  spec.gap_every = 10;
  spec.measure_degree = true;
  sim::ScenarioRunner runner(overlay, strat, spec);
  const auto res = runner.run();
  for (const auto& rec : res.trace) {
    if (rec.step % 10 == 0) {
      EXPECT_GT(rec.gap, 0.0) << rec.step;
    } else {
      EXPECT_LT(rec.gap, 0.0) << rec.step;
    }
    EXPECT_GT(rec.max_degree, 0u);
  }
  EXPECT_GT(res.min_gap, 0.0);
  EXPECT_LT(res.min_gap, 1.0);
  EXPECT_GT(res.max_degree, 0u);
}

TEST(ScenarioRunner, ScriptedStrategyReplaysExactly) {
  Params prm;
  prm.seed = 51;
  sim::DexOverlay overlay(8, prm);
  std::vector<adversary::ChurnAction> script{
      {true, 0}, {true, 1}, {true, 0}, {false, 8}, {false, 9}};
  adversary::Scripted strat(script);
  sim::ScenarioRunner runner(overlay, strat,
                             churn_spec(1, script.size(), 4, 32));
  const auto res = runner.run();
  ASSERT_EQ(res.trace.size(), script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    EXPECT_EQ(res.trace[i].insert, script[i].insert) << i;
    EXPECT_EQ(res.trace[i].target, script[i].target) << i;
  }
  EXPECT_EQ(res.final_n, 8u + 3 - 2);
}

// ------------------------------------------------------------- caching

namespace {

/// Counts materializations to prove CachedView coalesces repeated view
/// queries within a step.
class CountingOverlay final : public sim::HealingOverlay {
 public:
  const char* name() const override { return "counting"; }
  sim::NodeId insert(sim::NodeId) override { return 0; }
  void remove(sim::NodeId) override {}
  std::size_t n() const override { return 3; }
  bool alive(sim::NodeId u) const override { return u < 3; }
  std::vector<sim::NodeId> alive_nodes() const override {
    ++nodes_calls;
    return {0, 1, 2};
  }
  std::vector<bool> alive_mask() const override {
    ++mask_calls;
    return {true, true, true};
  }
  graph::Multigraph snapshot() const override {
    ++snapshot_calls;
    graph::Multigraph g(3);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    return g;
  }
  std::size_t load(sim::NodeId) const override { return 2; }
  const sim::CostMeter& meter() const override { return meter_; }
  sim::StepCost last_step_cost() const override { return {}; }

  mutable std::size_t nodes_calls = 0;
  mutable std::size_t mask_calls = 0;
  mutable std::size_t snapshot_calls = 0;

 private:
  sim::CostMeter meter_;
};

}  // namespace

TEST(CachedView, MaterializesEachComponentOncePerStep) {
  CountingOverlay overlay;
  sim::CachedView cache(overlay);
  const auto& view = cache.view();
  for (int i = 0; i < 5; ++i) {
    (void)view.alive_nodes();
    (void)view.snapshot();
    (void)view.alive_mask();
  }
  EXPECT_EQ(overlay.nodes_calls, 1u);
  EXPECT_EQ(overlay.snapshot_calls, 1u);
  EXPECT_EQ(overlay.mask_calls, 1u);
  cache.invalidate();
  (void)view.alive_nodes();
  (void)view.snapshot();
  EXPECT_EQ(overlay.nodes_calls, 2u);
  EXPECT_EQ(overlay.snapshot_calls, 2u);
  EXPECT_EQ(overlay.mask_calls, 1u);  // not queried since invalidate
}

// ------------------------------------------------------------ factories

TEST(Factories, RejectUnknownNames) {
  EXPECT_EQ(sim::make_overlay("no-such-backend", 16, 1), nullptr);
  EXPECT_EQ(sim::make_strategy("no-such-scenario"), nullptr);
}

TEST(Factories, EveryAdvertisedNameConstructs) {
  for (const char* backend : kAllBackends) {
    auto overlay = sim::make_overlay(backend, 16, 2);
    ASSERT_NE(overlay, nullptr) << backend;
    EXPECT_EQ(std::string(overlay->name()), backend);
    EXPECT_GE(overlay->n(), 16u);
  }
  for (const char* scenario :
       {"churn", "insert-only", "delete-only", "oscillate", "targeted",
        "load-attack", "spectral", "greedy-spectral"}) {
    EXPECT_NE(sim::make_strategy(scenario), nullptr) << scenario;
  }
}

TEST(MakeView, ExposesOverlayStateAndOracle) {
  sim::LawSiuOverlay with_oracle(16, 2, 3);
  const auto v = sim::make_view(with_oracle);
  EXPECT_EQ(v.n(), 16u);
  EXPECT_EQ(v.alive_nodes().size(), 16u);
  EXPECT_TRUE(static_cast<bool>(v.snapshot_without));
  EXPECT_EQ(v.special_node(), graph::kInvalidNode);

  Params prm;
  prm.seed = 61;
  sim::DexOverlay dex_overlay(16, prm);
  const auto dv = sim::make_view(dex_overlay);
  EXPECT_FALSE(static_cast<bool>(dv.snapshot_without));
  EXPECT_EQ(dv.special_node(), dex_overlay.net().coordinator());
}
