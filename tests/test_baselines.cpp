// Baseline overlays: Law–Siu Hamiltonian-cycle composition, the flooding
// full-rebuild network, and the flip-chain almost-regular overlay —
// structure, churn behavior, cost profiles, and their (probabilistic)
// expansion under benign churn.

#include <gtest/gtest.h>

#include "baselines/flood_rebuild.h"
#include "baselines/law_siu.h"
#include "baselines/random_flip.h"
#include "graph/bfs.h"
#include "graph/spectral.h"
#include "support/prng.h"

namespace b = dex::baselines;
namespace g = dex::graph;

TEST(LawSiu, InitialCyclesAreValid) {
  b::LawSiuNetwork net(50, 3, 11);
  const auto snap = net.snapshot();
  // Union of 3 Hamiltonian cycles: every node has degree 6 (as multigraph).
  for (auto u : net.alive_nodes()) EXPECT_EQ(snap.degree(u), 6u);
  EXPECT_TRUE(g::is_connected(snap, net.alive_mask()));
}

TEST(LawSiu, InsertMaintainsCycles) {
  b::LawSiuNetwork net(20, 2, 12);
  const auto u = net.insert();
  EXPECT_TRUE(net.alive(u));
  EXPECT_EQ(net.n(), 21u);
  const auto snap = net.snapshot();
  for (auto v : net.alive_nodes()) EXPECT_EQ(snap.degree(v), 4u);
  EXPECT_GT(net.last_step().topology_changes, 0u);
  EXPECT_GT(net.last_step().messages, 0u);
}

TEST(LawSiu, RemoveMaintainsCycles) {
  b::LawSiuNetwork net(20, 2, 13);
  net.remove(7);
  EXPECT_FALSE(net.alive(7));
  const auto snap = net.snapshot();
  for (auto v : net.alive_nodes()) EXPECT_EQ(snap.degree(v), 4u);
  EXPECT_TRUE(g::is_connected(snap, net.alive_mask()));
}

TEST(LawSiu, LongChurnStaysConsistent) {
  b::LawSiuNetwork net(30, 3, 14);
  dex::support::Rng rng(1);
  for (int t = 0; t < 500; ++t) {
    if (rng.chance(0.5) || net.n() < 10) {
      net.insert();
    } else {
      const auto nodes = net.alive_nodes();
      net.remove(nodes[rng.below(nodes.size())]);
    }
  }
  const auto snap = net.snapshot();
  EXPECT_TRUE(snap.is_consistent());
  EXPECT_TRUE(g::is_connected(snap, net.alive_mask()));
  for (auto v : net.alive_nodes()) EXPECT_EQ(snap.degree(v), 6u);
}

TEST(LawSiu, IsExpanderUnderBenignChurn) {
  b::LawSiuNetwork net(100, 4, 15);
  dex::support::Rng rng(2);
  for (int t = 0; t < 200; ++t) {
    if (rng.chance(0.5)) {
      net.insert();
    } else {
      const auto nodes = net.alive_nodes();
      net.remove(nodes[rng.below(nodes.size())]);
    }
  }
  const auto spec = g::spectral_gap(net.snapshot(), net.alive_mask());
  EXPECT_GT(spec.gap, 0.1);  // random Hamiltonian compositions expand w.h.p.
}

TEST(FloodRebuild, GuaranteesButThetaNCost) {
  b::FloodRebuildNetwork net(64);
  const auto u = net.insert();
  EXPECT_TRUE(net.alive(u));
  // Θ(n) messages per step — that's the point of the baseline.
  EXPECT_GT(net.last_step().messages, 3 * 64u);
  net.remove(2);
  EXPECT_GT(net.last_step().messages, 3 * 64u);
  const auto spec = g::spectral_gap(net.snapshot(), net.alive_mask());
  EXPECT_GT(spec.gap, 0.02);  // same deterministic guarantee as DEX
  EXPECT_LE(net.max_degree(), 3 * 9u);
  EXPECT_TRUE(g::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(FloodRebuild, ChurnKeepsPInRange) {
  b::FloodRebuildNetwork net(32);
  dex::support::Rng rng(3);
  for (int t = 0; t < 100; ++t) {
    if (rng.chance(0.6) || net.n() < 8) {
      net.insert();
    } else {
      const auto nodes = net.alive_nodes();
      net.remove(nodes[rng.below(nodes.size())]);
    }
    EXPECT_GT(net.p(), 4 * net.n());
    EXPECT_LT(net.p(), 8 * net.n());
  }
}

TEST(RandomFlip, StartsRegularStaysAlmostRegular) {
  b::RandomFlipNetwork net(60, 6, 16);
  const auto snap0 = net.snapshot();
  for (auto u : net.alive_nodes()) EXPECT_EQ(snap0.degree(u), 6u);
  dex::support::Rng rng(4);
  for (int t = 0; t < 200; ++t) {
    if (rng.chance(0.5)) {
      net.insert();
    } else {
      const auto nodes = net.alive_nodes();
      net.remove(nodes[rng.below(nodes.size())]);
    }
  }
  // Degrees stay near 6 (flip-chain baselines drift but do not blow up).
  EXPECT_LE(net.max_degree(), 14u);
  EXPECT_TRUE(net.snapshot().is_consistent());
}

TEST(RandomFlip, ExpandsUnderBenignChurn) {
  b::RandomFlipNetwork net(120, 6, 17);
  dex::support::Rng rng(5);
  for (int t = 0; t < 150; ++t) {
    if (rng.chance(0.5)) {
      net.insert();
    } else {
      const auto nodes = net.alive_nodes();
      net.remove(nodes[rng.below(nodes.size())]);
    }
  }
  const auto spec = g::spectral_gap(net.snapshot(), net.alive_mask());
  EXPECT_GT(spec.gap, 0.05);
}
