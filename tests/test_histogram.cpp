// metrics::LatencyHistogram — the serving front-end's mergeable tail-latency
// accumulator. Pins: bucket arithmetic (exact range, octave boundaries,
// roundtrip bounds), the quantile error contract (never understates the true
// sample, overstates by at most 2^-kSubBucketBits) against a sort-based
// reference using metrics::summarize's rank rule, merge associativity /
// commutativity (shard-merge == global recording, the property serve-mode
// shard-count invariance rests on), and the empty/single-sample edges.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "metrics/histogram.h"
#include "support/prng.h"

using dex::metrics::LatencyHistogram;

namespace {

/// The rank rule metrics::summarize uses: index floor(q * (n - 1)) into the
/// sorted samples.
std::uint64_t reference_quantile(std::vector<std::uint64_t> values,
                                 double q) {
  std::sort(values.begin(), values.end());
  const auto rank =
      static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  return values[rank];
}

}  // namespace

TEST(LatencyHistogram, EmptyAndSingleSampleEdges) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  h.record(17);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.count(), 1u);
  // One sample: every quantile is that sample (17 < 2^5 sits in the exact
  // range, so no bucket rounding either).
  EXPECT_EQ(h.quantile(0.0), 17u);
  EXPECT_EQ(h.quantile(0.5), 17u);
  EXPECT_EQ(h.quantile(0.999), 17u);
  EXPECT_EQ(h.max(), 17u);
  EXPECT_DOUBLE_EQ(h.mean(), 17.0);

  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(LatencyHistogram, BucketRoundtripAndErrorBound) {
  // Every value maps into a bucket whose upper bound is >= the value and
  // overshoots by less than value / 2^(kSubBucketBits - 1) — the relative
  // error the quantile contract leans on. Values below 2 * 2^kSubBucketBits
  // are exact (the linear range plus octave 1's width-1 sub-buckets).
  constexpr std::uint64_t kExactCeiling =
      2ull << LatencyHistogram::kSubBucketBits;
  for (std::uint64_t v = 0; v < kExactCeiling; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_upper(LatencyHistogram::bucket_index(v)),
              v)
        << v;
  }
  dex::support::Rng rng(0x9157u);
  for (int i = 0; i < 20000; ++i) {
    // Span every octave: a random bit width, then a random value of that
    // width.
    const std::uint64_t width = 1 + rng.below(63);
    const std::uint64_t v = (1ull << width) | rng.below(1ull << width);
    const std::size_t idx = LatencyHistogram::bucket_index(v);
    const std::uint64_t upper = LatencyHistogram::bucket_upper(idx);
    ASSERT_GE(upper, v);
    ASSERT_LE(upper - v, v >> (LatencyHistogram::kSubBucketBits - 1))
        << "value " << v << " bucket upper " << upper;
    // Bucket membership is consistent: the upper bound maps to the same
    // bucket the value did.
    ASSERT_EQ(LatencyHistogram::bucket_index(upper), idx);
  }
}

TEST(LatencyHistogram, QuantilesMatchSortReferenceWithinBound) {
  // Mixed-scale sample set (the shape serve latencies actually take: a tight
  // body plus a long tail) vs the sorted-vector reference. The estimate must
  // never understate the true sample and overstate by <= 1/2^4 relative —
  // kSubBucketBits gives 1/2^5; the assertion leaves one doubling of slack
  // for the rank landing anywhere inside the bucket.
  dex::support::Rng rng(0xfeedu);
  std::vector<std::uint64_t> values;
  LatencyHistogram h;
  for (int i = 0; i < 50000; ++i) {
    std::uint64_t v = 0;
    if (rng.chance(0.9)) {
      v = 4 + rng.below(60);  // body
    } else {
      v = 1000 + rng.below(100000);  // tail
    }
    values.push_back(v);
    h.record(v);
  }
  EXPECT_EQ(h.count(), values.size());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const std::uint64_t truth = reference_quantile(values, q);
    const std::uint64_t est = h.quantile(q);
    EXPECT_GE(est, truth) << "q=" << q;
    EXPECT_LE(est, truth + truth / 16 + 1) << "q=" << q;
  }
  // The extremes are exact: max is tracked exactly and clamps the top
  // bucket's upper bound.
  EXPECT_EQ(h.quantile(1.0), *std::max_element(values.begin(), values.end()));
}

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative) {
  // Record one stream globally and sharded 7 ways; then merge the shards in
  // ascending, descending and tree-grouped orders. All four histograms must
  // agree exactly — count, sum, max and every quantile — because merge is
  // elementwise addition. This is the property that makes serve-mode output
  // byte-identical across --shards.
  dex::support::Rng rng(0x4242u);
  LatencyHistogram global;
  std::vector<LatencyHistogram> shards(7);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t v = rng.below(1u << 20);
    global.record(v);
    shards[v % shards.size()].record(v);
  }

  LatencyHistogram ascending;
  for (const auto& s : shards) ascending.merge(s);

  LatencyHistogram descending;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    descending.merge(*it);
  }

  // ((0+1) + (2+3+4)) + (5+6): arbitrary grouping.
  LatencyHistogram left, mid, right, tree;
  left.merge(shards[0]);
  left.merge(shards[1]);
  mid.merge(shards[2]);
  mid.merge(shards[3]);
  mid.merge(shards[4]);
  right.merge(shards[5]);
  right.merge(shards[6]);
  tree.merge(left);
  tree.merge(mid);
  tree.merge(right);

  for (const LatencyHistogram* merged : {&ascending, &descending, &tree}) {
    EXPECT_EQ(merged->count(), global.count());
    EXPECT_EQ(merged->sum(), global.sum());
    EXPECT_EQ(merged->max(), global.max());
    for (int i = 0; i <= 100; ++i) {
      const double q = static_cast<double>(i) / 100.0;
      EXPECT_EQ(merged->quantile(q), global.quantile(q)) << "q=" << q;
    }
  }
}

TEST(LatencyHistogram, WeightedRecordEqualsRepeatedRecord) {
  LatencyHistogram repeated, weighted;
  dex::support::Rng rng(0x77u);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.below(5000);
    const std::uint64_t w = 1 + rng.below(9);
    for (std::uint64_t k = 0; k < w; ++k) repeated.record(v);
    weighted.record(v, w);
  }
  weighted.record(123, 0);  // zero weight is a no-op
  EXPECT_EQ(repeated.count(), weighted.count());
  EXPECT_EQ(repeated.sum(), weighted.sum());
  EXPECT_EQ(repeated.max(), weighted.max());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(repeated.quantile(q), weighted.quantile(q));
  }
}
