// Property sweeps (TEST_P): the paper's global invariants audited across
// random seeds × adversary mixes × recovery modes × sizes. This is the
// broadest net in the suite — anything that violates the balanced-mapping,
// degree, connectivity, or coordinator-exactness invariants dies here.

#include <gtest/gtest.h>

#include <tuple>

#include "adversary/adversary.h"
#include "dex/network.h"
#include "graph/bfs.h"
#include "graph/spectral.h"

namespace adv = dex::adversary;

namespace {

struct Case {
  std::uint64_t seed;
  dex::RecoveryMode mode;
  double insert_prob;
  std::size_t n0;
  std::size_t steps;
};

class ChurnSweep : public ::testing::TestWithParam<Case> {};

adv::AdversaryView view_of(dex::DexNetwork& net) {
  return adv::AdversaryView{
      [&net] { return net.n(); },
      [&net] { return net.alive_nodes(); },
      [&net] { return net.snapshot(); },
      [&net] { return net.alive_mask(); },
      [&net](adv::NodeId u) {
        return static_cast<std::size_t>(net.total_load(u));
      },
      [&net] { return net.coordinator(); },
      {},
  };
}

}  // namespace

TEST_P(ChurnSweep, InvariantsHoldThroughout) {
  const Case c = GetParam();
  dex::Params prm;
  prm.seed = c.seed;
  prm.mode = c.mode;
  dex::DexNetwork net(c.n0, prm);
  auto view = view_of(net);
  adv::RandomChurn strat(c.insert_prob);
  dex::support::Rng rng(c.seed ^ 0x5eedULL);

  for (std::size_t t = 0; t < c.steps; ++t) {
    const auto a = strat.next(view, rng, 8, 100000);
    if (a.insert) {
      net.insert(a.target);
    } else {
      net.remove(a.target);
    }
    net.check_invariants();
    if (t % 64 == 0) {
      ASSERT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()))
          << "step " << t;
    }
  }
  // Final audit: connectivity, degree cap, expansion floor.
  const auto g = net.snapshot();
  ASSERT_TRUE(dex::graph::is_connected(g, net.alive_mask()));
  const std::uint64_t degree_cap = 3 * 2 * net.params().max_load();
  for (auto u : net.alive_nodes()) EXPECT_LE(g.degree(u), degree_cap);
  const auto spec = dex::graph::spectral_gap(g, net.alive_mask());
  EXPECT_GT(spec.gap, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsModesAndMixes, ChurnSweep,
    ::testing::Values(
        Case{1, dex::RecoveryMode::WorstCase, 0.50, 16, 600},
        Case{2, dex::RecoveryMode::WorstCase, 0.80, 16, 900},
        Case{3, dex::RecoveryMode::WorstCase, 0.20, 128, 700},
        Case{4, dex::RecoveryMode::WorstCase, 0.65, 48, 900},
        Case{5, dex::RecoveryMode::Amortized, 0.50, 16, 600},
        Case{6, dex::RecoveryMode::Amortized, 0.85, 16, 900},
        Case{7, dex::RecoveryMode::Amortized, 0.25, 128, 700},
        Case{8, dex::RecoveryMode::Amortized, 0.60, 48, 900},
        Case{9, dex::RecoveryMode::WorstCase, 0.95, 8, 1200},
        Case{10, dex::RecoveryMode::Amortized, 0.95, 8, 1200}),
    [](const ::testing::TestParamInfo<Case>& pinfo) {
      const Case& c = pinfo.param;
      std::string name = c.mode == dex::RecoveryMode::WorstCase ? "WC" : "AM";
      name += "_seed" + std::to_string(c.seed) + "_p" +
              std::to_string(static_cast<int>(c.insert_prob * 100)) + "_n" +
              std::to_string(c.n0);
      return name;
    });

// Walk-length stress: small walk factors force retries; the machinery must
// still converge (Lemma 2's w.h.p. bound shows failures are survivable).
TEST(ChurnEdge, ShortWalksStillConverge) {
  dex::Params prm;
  prm.seed = 77;
  prm.walk_factor = 1.0;  // aggressive: walks often miss
  prm.max_walk_retries = 256;
  dex::DexNetwork net(32, prm);
  dex::support::Rng rng(1);
  for (int t = 0; t < 400; ++t) {
    const auto nodes = net.alive_nodes();
    if (rng.chance(0.5)) {
      net.insert(nodes[rng.below(nodes.size())]);
    } else if (net.n() > 8) {
      net.remove(nodes[rng.below(nodes.size())]);
    }
  }
  net.check_invariants();
}

// Paper-faithful θ: the proof constant 1/545 makes thresholds unreachable at
// test sizes, so no type-2 should ever trigger and type-1 must cope alone.
TEST(ChurnEdge, PaperThetaNeverTriggersType2AtSmallScale) {
  dex::Params prm;
  prm.seed = 78;
  prm.theta = 1.0 / 545.0;
  dex::DexNetwork net(64, prm);
  dex::support::Rng rng(2);
  for (int t = 0; t < 500; ++t) {
    const auto nodes = net.alive_nodes();
    if (rng.chance(0.4) && net.n() > 32) {
      net.remove(nodes[rng.below(nodes.size())]);
    } else {
      net.insert(nodes[rng.below(nodes.size())]);
    }
  }
  net.check_invariants();
  EXPECT_EQ(net.inflation_count() + net.deflation_count() +
                net.forced_sync_type2(),
            0u);
}

// Determinism: identical seeds → identical trajectories (costs included).
TEST(ChurnEdge, FullyDeterministic) {
  auto run = [] {
    dex::Params prm;
    prm.seed = 123;
    dex::DexNetwork net(24, prm);
    dex::support::Rng rng(9);
    std::uint64_t digest = 0;
    for (int t = 0; t < 300; ++t) {
      const auto nodes = net.alive_nodes();
      if (rng.chance(0.6)) {
        net.insert(nodes[rng.below(nodes.size())]);
      } else if (net.n() > 8) {
        net.remove(nodes[rng.below(nodes.size())]);
      }
      digest = digest * 1000003 + net.last_report().cost.messages;
      digest = digest * 1000003 + net.n();
    }
    return digest;
  };
  EXPECT_EQ(run(), run());
}
