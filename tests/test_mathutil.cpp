// Unit tests for the number-theoretic substrate (support/mathutil.h): the
// p-cycle family and the inflation/deflation prime search depend on these
// being exactly right.

#include <gtest/gtest.h>

#include "support/mathutil.h"

namespace ds = dex::support;

TEST(MathUtil, MulmodMatchesNative) {
  EXPECT_EQ(ds::mulmod(7, 9, 13), (7ULL * 9) % 13);
  EXPECT_EQ(ds::mulmod(0, 9, 13), 0u);
}

TEST(MathUtil, MulmodHandlesOverflow) {
  const std::uint64_t big = 0x7fffffffffffffffULL;
  // (2^63-1)^2 mod (2^63-1) == 0.
  EXPECT_EQ(ds::mulmod(big, big, big), 0u);
  // Against a 61-bit Mersenne prime with known value:
  const std::uint64_t m = (1ULL << 61) - 1;
  EXPECT_EQ(ds::mulmod(m - 1, m - 1, m), 1u);  // (-1)^2 = 1 mod m
}

TEST(MathUtil, Powmod) {
  EXPECT_EQ(ds::powmod(2, 10, 1000), 24u);
  EXPECT_EQ(ds::powmod(3, 0, 7), 1u);
  EXPECT_EQ(ds::powmod(5, 1, 7), 5u);
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(ds::powmod(2, 1'000'002, 1'000'003), 1u);
}

TEST(MathUtil, PrimalitySmall) {
  const std::vector<std::uint64_t> primes{2,  3,  5,  7,  11, 13, 17,
                                          19, 23, 29, 31, 37, 41};
  for (auto p : primes) EXPECT_TRUE(ds::is_prime(p)) << p;
  for (std::uint64_t c : {0ULL, 1ULL, 4ULL, 9ULL, 15ULL, 21ULL, 25ULL, 27ULL,
                          33ULL, 35ULL, 39ULL}) {
    EXPECT_FALSE(ds::is_prime(c)) << c;
  }
}

TEST(MathUtil, PrimalityAgainstSieve) {
  const auto sieve = ds::primes_up_to(10'000);
  std::size_t idx = 0;
  for (std::uint64_t n = 0; n <= 10'000; ++n) {
    const bool expect = idx < sieve.size() && sieve[idx] == n;
    if (expect) ++idx;
    EXPECT_EQ(ds::is_prime(n), expect) << n;
  }
}

TEST(MathUtil, PrimalityLarge) {
  EXPECT_TRUE(ds::is_prime((1ULL << 61) - 1));        // Mersenne prime
  EXPECT_FALSE(ds::is_prime((1ULL << 61) - 3));
  EXPECT_TRUE(ds::is_prime(1'000'000'007ULL));
  EXPECT_TRUE(ds::is_prime(1'000'000'009ULL));
  EXPECT_FALSE(ds::is_prime(1'000'000'007ULL * 3));
}

TEST(MathUtil, ModinvRoundTrip) {
  for (std::uint64_t p : {5ULL, 23ULL, 101ULL, 4099ULL}) {
    for (std::uint64_t a = 1; a < p; ++a) {
      auto inv = ds::modinv(a, p);
      ASSERT_TRUE(inv.has_value());
      EXPECT_EQ(ds::mulmod(a, *inv, p), 1u) << a << " mod " << p;
      EXPECT_LT(*inv, p);
    }
  }
}

TEST(MathUtil, ModinvNonCoprime) {
  EXPECT_FALSE(ds::modinv(6, 9).has_value());
  EXPECT_FALSE(ds::modinv(0, 7).has_value());
}

TEST(MathUtil, InflationPrimeInRange) {
  for (std::uint64_t p : {5ULL, 7ULL, 23ULL, 101ULL, 1009ULL, 65537ULL}) {
    const auto q = ds::inflation_prime(p);
    EXPECT_GT(q, 4 * p);
    EXPECT_LT(q, 8 * p);
    EXPECT_TRUE(ds::is_prime(q));
  }
}

TEST(MathUtil, DeflationPrimeInRange) {
  for (std::uint64_t p : {61ULL, 101ULL, 1009ULL, 65537ULL}) {
    const auto q = ds::deflation_prime(p);
    EXPECT_GT(q, p / 8);
    EXPECT_LT(q, p / 4);
    EXPECT_TRUE(ds::is_prime(q));
  }
}

TEST(MathUtil, SmallestPrimeInEmptyRange) {
  EXPECT_FALSE(ds::smallest_prime_in(24, 28).has_value());  // 25,26,27
  auto r = ds::smallest_prime_in(24, 30);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 29u);
}

TEST(MathUtil, CeilDivMul) {
  // ceil(7*3/4) = ceil(5.25) = 6.
  EXPECT_EQ(ds::ceil_div_mul(7, 3, 4), 6u);
  EXPECT_EQ(ds::ceil_div_mul(8, 3, 4), 6u);  // exact 6
  EXPECT_EQ(ds::ceil_div_mul(1, 0, 9), 0u);
}

TEST(MathUtil, FloorLog2) {
  EXPECT_EQ(ds::floor_log2(1), 0u);
  EXPECT_EQ(ds::floor_log2(2), 1u);
  EXPECT_EQ(ds::floor_log2(3), 1u);
  EXPECT_EQ(ds::floor_log2(1024), 10u);
  EXPECT_EQ(ds::floor_log2(1025), 10u);
}

TEST(MathUtil, ScaledLog) {
  EXPECT_EQ(ds::scaled_log(1.0, 1), 1u);
  EXPECT_GE(ds::scaled_log(4.0, 1000), 27u);  // 4*ln(1000) ≈ 27.6
  EXPECT_LE(ds::scaled_log(4.0, 1000), 28u);
}
