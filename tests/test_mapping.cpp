// VirtualMapping (Definitions 2–3): ownership, transfers, load bookkeeping,
// and the incrementally maintained |Spare| / |Low| counters (Eqs. 1–2).

#include <gtest/gtest.h>

#include "dex/mapping.h"
#include "support/prng.h"

using dex::kInvalidNode;
using dex::Vertex;
using dex::VirtualMapping;

namespace {

VirtualMapping round_robin(std::uint64_t p, std::size_t n,
                           std::uint64_t low_threshold = 16) {
  VirtualMapping m(p, n, low_threshold);
  for (Vertex z = 0; z < p; ++z)
    m.assign(z, static_cast<dex::NodeId>(z % n));
  return m;
}

}  // namespace

TEST(Mapping, AssignBuildsSurjectiveMap) {
  auto m = round_robin(23, 7);
  EXPECT_TRUE(m.audit());
  for (Vertex z = 0; z < 23; ++z) EXPECT_EQ(m.owner(z), z % 7);
  EXPECT_EQ(m.load(0), 4u);
  EXPECT_EQ(m.load(6), 3u);
}

TEST(Mapping, SpareAndLowCountsAtConstruction) {
  auto m = round_robin(23, 7);
  EXPECT_EQ(m.spare_count(), 7u);  // all loads in {3,4} >= 2
  EXPECT_EQ(m.low_count(), 7u);    // all loads <= 16
}

TEST(Mapping, TransferMovesOwnership) {
  auto m = round_robin(23, 7);
  const auto changes = m.transfer(0, 6);
  EXPECT_EQ(changes, 6u);
  EXPECT_EQ(m.owner(0), 6u);
  EXPECT_EQ(m.load(0), 3u);
  EXPECT_EQ(m.load(6), 4u);
  EXPECT_TRUE(m.audit());
}

TEST(Mapping, SelfTransferIsFree) {
  auto m = round_robin(23, 7);
  EXPECT_EQ(m.transfer(0, 0), 0u);
  EXPECT_TRUE(m.audit());
}

TEST(Mapping, SpareCountTracksLoadBoundary) {
  VirtualMapping m(5, 5, 16);
  for (Vertex z = 0; z < 5; ++z) m.assign(z, static_cast<dex::NodeId>(z));
  EXPECT_EQ(m.spare_count(), 0u);  // every load is 1
  m.transfer(0, 1);                // node 1 now load 2
  EXPECT_EQ(m.spare_count(), 1u);
  m.transfer(0, 2);                // back to all-1... node 2 load 2
  EXPECT_EQ(m.spare_count(), 1u);
  m.transfer(2, 2);                // self, no change
  EXPECT_EQ(m.spare_count(), 1u);
  EXPECT_TRUE(m.audit());
}

TEST(Mapping, LowCountTracksThreshold) {
  VirtualMapping m(40, 4, 8);  // low threshold 8
  for (Vertex z = 0; z < 40; ++z)
    m.assign(z, static_cast<dex::NodeId>(z % 4));  // loads 10 > 8
  EXPECT_EQ(m.low_count(), 0u);
  // Drain node 0 below the threshold.
  std::vector<Vertex> at0 = m.sim(0);
  m.transfer(at0[0], 1);
  m.transfer(at0[1], 1);
  EXPECT_EQ(m.load(0), 8u);
  EXPECT_EQ(m.low_count(), 1u);
  EXPECT_TRUE(m.audit());
}

TEST(Mapping, ZeroLoadNodesAreNeitherSpareNorLow) {
  VirtualMapping m(4, 3, 16);
  m.assign(0, 0);
  m.assign(1, 0);
  m.assign(2, 0);
  m.assign(3, 1);
  // Node 2 has load 0.
  EXPECT_FALSE(m.in_spare(2));
  EXPECT_FALSE(m.in_low(2));
  EXPECT_EQ(m.low_count(), 2u);
  EXPECT_EQ(m.spare_count(), 1u);
}

TEST(Mapping, ManyTransfersKeepPositionsCoherent) {
  auto m = round_robin(101, 10);
  dex::support::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const Vertex z = rng.below(101);
    const auto to = static_cast<dex::NodeId>(rng.below(10));
    m.transfer(z, to);
  }
  EXPECT_TRUE(m.audit());
  // Total load is conserved.
  std::uint64_t total = 0;
  for (dex::NodeId u = 0; u < 10; ++u) total += m.load(u);
  EXPECT_EQ(total, 101u);
}

TEST(Mapping, EnsureCapacityGrows) {
  auto m = round_robin(23, 7);
  m.ensure_node_capacity(20);
  EXPECT_EQ(m.node_capacity(), 20u);
  m.transfer(0, 15);
  EXPECT_EQ(m.owner(0), 15u);
  EXPECT_TRUE(m.audit());
}

TEST(Mapping, DoubleAssignAborts) {
  VirtualMapping m(4, 2, 16);
  m.assign(0, 0);
  EXPECT_DEATH(m.assign(0, 1), "already owned");
}
