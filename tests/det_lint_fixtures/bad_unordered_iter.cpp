// det_lint fixture: DET001 — unordered iteration feeding a sink.
#include <unordered_map>
#include <unordered_set>

void sink(int);

void emit_all() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  for (const auto& kv : counts) sink(kv.second);
  std::unordered_set<long> seen;
  for (auto it = seen.begin(); it != seen.end(); ++it) sink(1);
}
