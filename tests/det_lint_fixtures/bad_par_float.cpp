// det_lint fixture: DET006 — float accumulation inside parallel_for.
#include <cstddef>

template <typename Body>
void parallel_for(std::size_t count, unsigned jobs, const Body& body);

double total_cost(std::size_t n) {
  double acc = 0.0;
  parallel_for(n, 8, [&](std::size_t i) {
    acc += static_cast<double>(i);
  });
  return acc;
}
