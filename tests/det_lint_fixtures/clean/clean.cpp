// det_lint fixture: deterministic code — every rule must stay silent.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/prng.h"

std::uint64_t draw_sorted(std::uint64_t trial_seed, std::vector<int>& v) {
  dex::support::Rng rng(trial_seed ^ 0x9e37ULL);
  std::sort(v.begin(), v.end());
  std::uint64_t total = 0;
  for (int x : v) total += static_cast<std::uint64_t>(x);
  return total + rng();
}
