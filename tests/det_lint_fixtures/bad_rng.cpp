// det_lint fixture: DET004 — RNG constructions off the seed path.
#include <random>

#include "support/prng.h"

void draw(dex::support::Rng& parent) {
  std::mt19937 gen(42);
  std::uniform_int_distribution<int> dist(0, 7);
  dex::support::Rng fixed(12345);
  dex::support::Rng defaulted;
  dex::support::Rng fine(parent.split());
  (void)gen;
  (void)dist;
}
