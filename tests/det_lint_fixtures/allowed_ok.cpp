// det_lint fixture: allowlisted + justified site — must stay silent.
#include <unordered_map>

int drain() {
  std::unordered_map<int, int> bag;
  int total = 0;
  // det: commutative integer sum — visit order cannot leak.
  for (const auto& kv : bag) total += kv.second;
  return total;
}
