// det_lint fixture: allowlisted but unjustified — must fail as DET901.
#include <unordered_map>

int drain_unjustified() {
  std::unordered_map<int, int> bag;
  int total = 0;
  for (const auto& kv : bag) total += kv.second;
  return total;
}
