// det_lint fixture: DET002 — every banned nondeterminism source.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned long mix() {
  std::random_device rd;
  unsigned long x = rd();
  x += static_cast<unsigned long>(rand());
  srand(7);
  x += static_cast<unsigned long>(time(nullptr));
  x += static_cast<unsigned long>(clock());
  x += static_cast<unsigned long>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  if (getenv("FIXTURE")) ++x;
  return x;
}
