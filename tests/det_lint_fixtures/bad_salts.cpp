// det_lint fixture: DET005 — unpinned and non-constexpr salts.
#include <cstdint>

inline constexpr std::uint64_t kAlphaSeedSalt = 0x1111;
inline constexpr std::uint64_t kBetaSeedSalt = 0x2222;
static std::uint64_t kGammaSeedSalt = 0x3333;
static_assert(kAlphaSeedSalt != kBetaSeedSalt);
static_assert(kAlphaSeedSalt != (kBetaSeedSalt ^ 0x7777));
