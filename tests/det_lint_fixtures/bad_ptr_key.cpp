// det_lint fixture: DET003 — pointer-keyed container.
#include <map>

struct Claim {};
std::map<Claim*, int> g_claims;
