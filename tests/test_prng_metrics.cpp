// Metrics helpers: summaries, percentile edges, linear fits, table layout,
// and the PRNG (determinism, uniformity sanity, split independence).

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/stats.h"
#include "metrics/table.h"
#include "support/prng.h"

namespace m = dex::metrics;

TEST(Stats, SummaryBasics) {
  const auto s = m::summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_EQ(s.count, 5u);
}

TEST(Stats, SummaryEmpty) {
  const auto s = m::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SummarySingle) {
  const auto s = m::summarize({42});
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.p99, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(Stats, PercentilesOnLongTail) {
  std::vector<double> v(100, 1.0);
  v[99] = 1000.0;
  const auto s = m::summarize(v);
  EXPECT_DOUBLE_EQ(s.p50, 1.0);
  EXPECT_DOUBLE_EQ(s.p95, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
}

TEST(Stats, FitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const auto f = m::fit_line(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Stats, FitDegenerateInputs) {
  EXPECT_DOUBLE_EQ(m::fit_line({1}, {2}).slope, 0.0);
  EXPECT_DOUBLE_EQ(m::fit_line({1, 1, 1}, {1, 2, 3}).slope, 0.0);
}

TEST(Table, RendersMarkdown) {
  m::Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
  EXPECT_NE(s.find("|-----|----|"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(m::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(m::Table::num(2.0, 0), "2");
  EXPECT_EQ(m::Table::integer(12345), "12345");
}

TEST(Table, RowArityMismatchAborts) {
  m::Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "");
}

TEST(Prng, Deterministic) {
  dex::support::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, BelowIsInRangeAndRoughlyUniform) {
  dex::support::Rng r(5);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = r.below(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (int c : buckets) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Prng, Uniform01Bounds) {
  dex::support::Rng r(6);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, ShuffleIsPermutation) {
  dex::support::Rng r(7);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  r.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Prng, SplitProducesIndependentStream) {
  dex::support::Rng a(8);
  auto child = a.split();
  // Parent and child streams differ.
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a() != child()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Prng, RangeInclusive) {
  dex::support::Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, Mix64IsStable) {
  // Fixed value so DHT key placement is reproducible across platforms.
  EXPECT_EQ(dex::support::mix64(0), dex::support::mix64(0));
  EXPECT_NE(dex::support::mix64(1), dex::support::mix64(2));
}
