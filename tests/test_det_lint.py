#!/usr/bin/env python3
"""Fixture self-test for tools/det_lint.py (registered in ctest).

Three contracts:
  1. the fixture tree produces *exactly* the diagnostics in
     tests/det_lint_fixtures/expected.txt (known-bad snippets -> exact
     lines, covering every rule incl. the DET900/DET901 allowlist paths);
  2. the allowlist round-trips: the justified allowlisted fixture stays
     silent while the unjustified one fails, and a clean fixture subtree
     exits 0;
  3. the real tree is clean: det_lint.py with repo defaults exits 0 (the
     same invocation scripts/det-lint.sh gates CI with).
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
LINT = os.path.join(ROOT, "tools", "det_lint.py")
FIXTURES = os.path.join(HERE, "det_lint_fixtures")


def run(*args):
    proc = subprocess.run([sys.executable, LINT, *args],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout


def fail(name, detail):
    print("FAIL %s\n%s" % (name, detail))
    return 1


def main():
    failures = 0

    # 1. Exact diagnostics over the fixture tree.
    code, out = run("--root", FIXTURES, "--scan", ".",
                    "--allowlist", os.path.join(FIXTURES, "allow.txt"))
    with open(os.path.join(FIXTURES, "expected.txt"), encoding="utf-8") as f:
        expected = f.read()
    if code != 1:
        failures += fail("fixture exit code", "want 1, got %d" % code)
    if out != expected:
        import difflib
        diff = "\n".join(difflib.unified_diff(
            expected.splitlines(), out.splitlines(),
            "expected.txt", "actual", lineterm=""))
        failures += fail("fixture diagnostics drifted", diff)

    # 2a. Allowlist round-trip: justified entry silent, unjustified loud.
    if "allowed_ok.cpp" in out:
        failures += fail("allowlist round-trip",
                         "justified allowlisted site was reported")
    if "allowed_missing_comment.cpp:7: DET901" not in out:
        failures += fail("allowlist justification check",
                         "unjustified allowlisted site was NOT reported")
    if "gone.cpp:0: DET900" not in out:
        failures += fail("stale allowlist check",
                         "stale entry was NOT reported")

    # 2b. Clean fixture subtree exits 0.
    code, out = run("--root", FIXTURES, "--scan", "clean")
    if code != 0:
        failures += fail("clean fixture run", "want exit 0, got %d:\n%s" %
                         (code, out))

    # 3. The real tree is clean under the repo defaults.
    code, out = run()
    if code != 0:
        failures += fail("repo tree not det_lint-clean", out)

    if failures:
        print("%d check(s) failed" % failures)
        return 1
    print("test_det_lint: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
