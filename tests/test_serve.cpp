// The concurrent KV serving front-end (src/serve/ + the event engine's
// closed-loop client wiring). Pins: the conservation invariant (completed +
// shed == the offered op budget, zero lost acknowledged keys) on every
// backend, trace/summary byte-identity across shard counts and across
// --jobs/--trial-jobs, window-vs-total accounting consistency, admission
// control visibly engaging under a rehash storm, and the threaded demo
// server's conservation contract on real threads.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "serve/server.h"
#include "sim/event/engine.h"
#include "sim/experiment.h"
#include "sim/overlay.h"
#include "sim/scenario.h"
#include "sim/sinks.h"

using namespace dex;

namespace {

const char* kAllBackends[] = {"dex-amortized", "dex-worstcase", "flood",
                              "lawsiu",        "randomflip",    "xheal"};

/// A serve trial that exercises everything at once: batch churn (rehash
/// storms), loss (request/response retransmits), hotspot traffic (targets
/// the churned keys), a shallow enough queue to shed and a tight enough SLO
/// to time out.
sim::ScenarioSpec serve_spec(std::uint64_t seed) {
  sim::ScenarioSpec spec;
  spec.seed = seed;
  spec.steps = 30;
  spec.batch_size = 4;
  spec.burst_every = 3;
  spec.traffic.workload = "hotspot";
  spec.traffic.ops_per_step = 24;
  spec.traffic.keyspace = 512;
  spec.event.enabled = true;
  spec.event.latency = *sim::LatencyModel::parse("uniform:1,3");
  spec.event.loss_rate = 0.05;
  spec.serve.enabled = true;
  spec.serve.clients = 12;
  spec.serve.queue_depth = 3;
  spec.serve.service_ticks = 2;
  spec.serve.op_timeout = 40;
  return spec;
}

sim::ScenarioResult run_backend(const char* backend,
                                const sim::ScenarioSpec& spec,
                                const char* scenario = "churn") {
  auto overlay = sim::make_overlay(backend, 48, spec.seed ^ 0x5eedULL);
  auto strategy = sim::make_strategy(scenario);
  sim::ScenarioRunner runner(*overlay, *strategy, spec);
  return runner.run();
}

}  // namespace

TEST(ServeEngine, ConservesOpBudgetAndLosesNoKeysOnAllBackends) {
  // Every issued op either completes or is shed — never silently dropped —
  // and no acknowledged write is ever unreadable or stale. Insert-only
  // churn keeps every route intact (nodes never leave), so the failure
  // counters must be exactly zero; rehash still fires on every insertion.
  for (const char* backend : kAllBackends) {
    SCOPED_TRACE(backend);
    const auto spec = serve_spec(7);
    const auto r = run_backend(backend, spec, "insert-only");
    const std::size_t offered = spec.steps * spec.traffic.ops_per_step;
    EXPECT_EQ(r.serve_completed + r.serve_shed, offered);
    EXPECT_EQ(r.total_ops, r.serve_completed);
    EXPECT_EQ(r.serve_latency.count(), r.serve_completed);
    EXPECT_EQ(r.total_failed_lookups, 0u);
    EXPECT_EQ(r.total_failed_writes, 0u);
    EXPECT_GT(r.serve_makespan, 0u);
  }
}

TEST(ServeEngine, ConservesOpBudgetUnderAdversarialChurn) {
  // Full churn (joins AND leaves) on 48 nodes can sever an occasional
  // route mid-heal — the sync engine counts the same blips — so here the
  // failure counters are only bounded, but conservation stays exact.
  for (const char* backend : kAllBackends) {
    SCOPED_TRACE(backend);
    const auto spec = serve_spec(7);
    const auto r = run_backend(backend, spec);
    const std::size_t offered = spec.steps * spec.traffic.ops_per_step;
    EXPECT_EQ(r.serve_completed + r.serve_shed, offered);
    EXPECT_EQ(r.total_ops, r.serve_completed);
    EXPECT_LE(r.total_failed_lookups + r.total_failed_writes, 4u);
  }
}

TEST(ServeEngine, TraceAndSummaryByteIdenticalAcrossShardCounts) {
  // --shards only groups per-shard histograms; merge associativity makes
  // the merged quantiles invariant, and the summary deliberately omits the
  // knob — so every emitted byte must match.
  for (const char* backend : kAllBackends) {
    SCOPED_TRACE(backend);
    auto spec = serve_spec(11);
    const auto one = run_backend(backend, spec);
    spec.serve.shards = 5;
    const auto five = run_backend(backend, spec);
    EXPECT_EQ(sim::trace_csv(one), sim::trace_csv(five));
    EXPECT_EQ(sim::summary_json(one), sim::summary_json(five));
  }
}

TEST(ServeEngine, RerunIsByteIdentical) {
  const auto spec = serve_spec(13);
  const auto a = run_backend("dex-worstcase", spec);
  const auto b = run_backend("dex-worstcase", spec);
  EXPECT_EQ(sim::trace_csv(a), sim::trace_csv(b));
  EXPECT_EQ(sim::summary_json(a), sim::summary_json(b));
}

TEST(ServeEngine, WindowColumnsSumToTotals) {
  // The per-record serving windows partition the run: trace-column sums
  // must equal the summary totals exactly (no op, shed or timeout falls
  // between windows).
  const auto spec = serve_spec(17);
  const auto r = run_backend("dex-amortized", spec);
  std::size_t ops = 0, shed = 0, timeouts = 0, peak = 0;
  for (const auto& rec : r.trace) {
    ops += rec.ops;
    shed += rec.shed;
    timeouts += rec.timeouts;
    peak = std::max(peak, rec.queue_peak);
  }
  EXPECT_EQ(r.trace.size(), spec.steps);
  EXPECT_EQ(ops, r.serve_completed);
  EXPECT_EQ(shed, r.serve_shed);
  EXPECT_EQ(timeouts, r.serve_timeouts);
  EXPECT_EQ(peak, r.serve_peak_queue);
}

TEST(ServeEngine, AdmissionControlEngagesUnderRehashStorm) {
  // The storm construction (hotspot x batch churn x shallow queues x slow
  // service) must produce visible backpressure: nonzero shed, nonzero SLO
  // misses, and a queue driven to its admission bound.
  auto spec = serve_spec(19);
  spec.serve.clients = 24;
  spec.serve.queue_depth = 2;
  spec.serve.service_ticks = 4;
  spec.serve.op_timeout = 20;
  const auto r = run_backend("dex-worstcase", spec);
  EXPECT_GT(r.serve_shed, 0u);
  EXPECT_GT(r.serve_timeouts, 0u);
  EXPECT_GE(r.serve_peak_queue, spec.serve.queue_depth);
  // Still conserving, storm notwithstanding.
  EXPECT_EQ(r.serve_completed + r.serve_shed,
            spec.steps * spec.traffic.ops_per_step);
}

TEST(ServeEngine, DeeperQueuesShedLessAndCompleteMore) {
  auto spec = serve_spec(23);
  spec.serve.queue_depth = 1;
  const auto shallow = run_backend("lawsiu", spec);
  spec.serve.queue_depth = 64;
  const auto deep = run_backend("lawsiu", spec);
  EXPECT_GT(shallow.serve_shed, deep.serve_shed);
  EXPECT_LT(shallow.serve_completed, deep.serve_completed);
}

TEST(ServeEngine, SweepOutputByteIdenticalAcrossJobsAndTrialJobs) {
  sim::ExperimentPlan plan;
  plan.backends = {"dex-amortized", "flood", "lawsiu"};
  plan.scenarios = {"churn"};
  plan.populations = {32};
  plan.batch_sizes = {3};
  plan.seeds = {1, 2};
  plan.base = serve_spec(0);  // seed comes from the axis
  plan.base.steps = 20;

  const auto run_jobs = [&](std::size_t jobs, unsigned trial_jobs) {
    std::ostringstream csv, json;
    sim::CsvTraceSink csv_sink(csv);
    sim::JsonSummarySink json_sink(json);
    sim::ExecutorOptions opts;
    opts.jobs = jobs;
    opts.trial_jobs = trial_jobs;
    sim::Executor executor(opts);
    executor.add_sink(csv_sink);
    executor.add_sink(json_sink);
    executor.run(plan.expand());
    return std::make_pair(csv.str(), json.str());
  };
  const auto serial = run_jobs(1, 1);
  const auto parallel = run_jobs(8, 1);
  const auto intra = run_jobs(2, 4);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_EQ(serial.first, intra.first);
  EXPECT_EQ(serial.second, intra.second);
  EXPECT_NE(serial.second.find("\"serve\": {"), std::string::npos);
}

TEST(ShardedKvServer, ConservesAndStoresOnRealThreads) {
  // The demo server's contract on actual concurrency: submitted ==
  // completed + shed, and with queues deep enough to never shed, every
  // write is applied and readable after drain().
  serve::ShardedKvServer::Config cfg;
  cfg.shards = 4;
  cfg.queue_depth = 100000;  // never shed
  serve::ShardedKvServer server(cfg);
  constexpr std::uint64_t kOps = 20 * 1024;  // multiple of the key range
  for (std::uint64_t i = 0; i < kOps; ++i) {
    serve::ShardedKvServer::Request req;
    req.read = false;
    req.key = i % 1024;
    req.value = i;
    EXPECT_TRUE(server.submit(req));
  }
  server.drain();
  EXPECT_EQ(server.completed(), kOps);
  EXPECT_EQ(server.shed(), 0u);
  EXPECT_EQ(server.latency().count(), kOps);
  // Keys were written in ascending i; the last write to key k is the
  // largest i congruent to k — FIFO per shard guarantees it's what remains.
  for (std::uint64_t k = 0; k < 1024; ++k) {
    const auto v = server.peek(k);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v % 1024, k);
    EXPECT_EQ(*v, kOps - 1024 + k);
  }
}

TEST(ShardedKvServer, ShedsInsteadOfBlockingWhenQueuesFill) {
  serve::ShardedKvServer::Config cfg;
  cfg.shards = 2;
  cfg.queue_depth = 4;
  serve::ShardedKvServer server(cfg);
  constexpr std::uint64_t kOps = 50000;
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    serve::ShardedKvServer::Request req;
    req.key = i;
    req.value = i;
    if (server.submit(req)) ++accepted;
  }
  server.drain();
  // Conservation across the admission boundary.
  EXPECT_EQ(server.completed(), accepted);
  EXPECT_EQ(server.completed() + server.shed(), kOps);
  // A single tight loop against depth-4 queues must shed something.
  EXPECT_GT(server.shed(), 0u);
}
