// Strategy::next_batch edge cases: the default wrapper's self-consistency
// guarantees (distinct alive victims, surviving attach points, population
// projected into [min_n, max_n]), Scripted exhaustion, and the
// CampaignStrategy batch semantics (quiet steps and rate gates as *empty*
// batches, replay tolerance of stale targets).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/campaign.h"
#include "sim/churn.h"
#include "sim/experiment.h"
#include "sim/overlay.h"
#include "sim/scenario.h"
#include "support/prng.h"

namespace dex {
namespace {

using adversary::AdversaryView;
using adversary::ChurnAction;
using sim::ChurnBatch;

std::unique_ptr<sim::HealingOverlay> overlay(std::size_t n0,
                                             std::uint64_t seed = 7) {
  return sim::make_overlay("flood", n0, sim::overlay_seed(seed));
}

/// The default wrapper's documented contract, checked against a live view.
void expect_self_consistent(const ChurnBatch& batch,
                            const sim::HealingOverlay& net, std::size_t min_n,
                            std::size_t max_n) {
  const auto mask = net.alive_mask();
  std::set<graph::NodeId> victims(batch.victims.begin(), batch.victims.end());
  EXPECT_EQ(victims.size(), batch.victims.size()) << "duplicate victims";
  for (const auto v : batch.victims) {
    ASSERT_LT(v, mask.size());
    EXPECT_TRUE(mask[v]) << "victim " << v << " is not alive";
  }
  for (const auto a : batch.attach_to) {
    ASSERT_LT(a, mask.size());
    EXPECT_TRUE(mask[a]) << "attach point " << a << " is not alive";
    EXPECT_EQ(victims.count(a), 0u) << "attach point " << a << " is dying";
  }
  EXPECT_GE(net.n() - batch.victims.size(), min_n);
  EXPECT_LE(net.n() + batch.attach_to.size(), max_n);
}

TEST(StrategyBatch, DefaultWrapperDedupsAndStaysSelfConsistent) {
  auto net = overlay(32);
  const auto view = sim::make_view(*net);
  adversary::RandomChurn churn(0.5);
  support::Rng rng(11);
  for (int step = 0; step < 16; ++step) {
    const ChurnBatch batch = churn.next_batch(view, rng, 8, 128, 8);
    expect_self_consistent(batch, *net, 8, 128);
    (void)net->apply(batch);
  }
}

TEST(StrategyBatch, DefaultWrapperProjectsAgainstThePopulationFloor) {
  auto net = overlay(16);
  const auto view = sim::make_view(*net);
  adversary::DeleteOnly deletes;
  support::Rng rng(3);
  // Only two deletions fit above min_n = 14; a batch of 8 must not take
  // more, however the strategy fills the rest.
  const ChurnBatch batch = deletes.next_batch(view, rng, 14, 1u << 20, 8);
  EXPECT_LE(batch.victims.size(), 2u);
  expect_self_consistent(batch, *net, 14, 1u << 20);
  // At the floor itself no deletion is admissible at all.
  const ChurnBatch floor = deletes.next_batch(view, rng, net->n(), 1u << 20, 8);
  EXPECT_TRUE(floor.victims.empty());
}

TEST(StrategyBatch, DefaultWrapperProjectsAgainstThePopulationCeiling) {
  auto net = overlay(16);
  const auto view = sim::make_view(*net);
  adversary::RandomChurn inserts(1.0);  // insert with probability 1
  support::Rng rng(5);
  const std::size_t max_n = net->n() + 2;
  const ChurnBatch batch = inserts.next_batch(view, rng, 4, max_n, 8);
  EXPECT_LE(batch.attach_to.size(), 2u);
  expect_self_consistent(batch, *net, 4, max_n);
}

TEST(StrategyBatch, ScriptedReplaysInOrderThenAborts) {
  auto net = overlay(16);
  const auto view = sim::make_view(*net);
  support::Rng rng(1);
  const auto alive = net->alive_nodes();
  adversary::Scripted scripted({{true, alive[0]},
                                {false, alive[1]},
                                {true, alive[2]},
                                {false, alive[3]}});
  EXPECT_EQ(scripted.remaining(), 4u);
  const ChurnBatch first = scripted.next_batch(view, rng, 3, 1u << 20, 3);
  ASSERT_EQ(first.attach_to.size(), 2u);
  ASSERT_EQ(first.victims.size(), 1u);
  EXPECT_EQ(first.attach_to[0], alive[0]);
  EXPECT_EQ(first.victims[0], alive[1]);
  EXPECT_EQ(first.attach_to[1], alive[2]);
  EXPECT_EQ(scripted.remaining(), 1u);
  const ChurnBatch second = scripted.next_batch(view, rng, 3, 1u << 20, 1);
  EXPECT_EQ(second.size(), 1u);
  EXPECT_EQ(scripted.remaining(), 0u);
  // Asking for more steps than were scripted is a harness bug, not a
  // workload: the strategy aborts rather than inventing churn.
  EXPECT_DEATH(scripted.next_batch(view, rng, 3, 1u << 20, 1), "exhausted");
}

TEST(StrategyBatch, CampaignQuietStepsAreEmptyBatches) {
  auto net = overlay(24);
  const auto view = sim::make_view(*net);
  support::Rng rng(9);
  // Active [0,2), quiet gap [2,4), insert-only [4,6), then past all phases.
  auto strategy = sim::make_campaign_strategy("churn:0-2;insert-only:4-6");
  for (std::size_t step = 0; step < 8; ++step) {
    const ChurnBatch batch = strategy->next_batch(view, rng, 8, 128, 4);
    const bool quiet = (step >= 2 && step < 4) || step >= 6;
    if (quiet) {
      EXPECT_TRUE(batch.empty()) << "step " << step << " should be quiet";
    } else if (step >= 4) {
      EXPECT_FALSE(batch.empty()) << "step " << step;
      EXPECT_TRUE(batch.victims.empty()) << "insert-only phase deleted";
    }
  }
}

TEST(StrategyBatch, CampaignRateGateScalesTheBatchBudget) {
  auto net = overlay(32);
  const auto view = sim::make_view(*net);
  support::Rng rng(13);
  auto strategy = sim::make_campaign_strategy("churn:0-,rate=0.5");
  std::size_t total = 0;
  for (std::size_t step = 0; step < 8; ++step) {
    const ChurnBatch batch = strategy->next_batch(view, rng, 8, 256, 4);
    EXPECT_LE(batch.size(), 2u) << "rate=0.5 of batch 4 spends at most 2";
    total += batch.size();
  }
  EXPECT_GT(total, 0u);
  // rate=0 gates every batch to empty, deterministically.
  auto gated = sim::make_campaign_strategy("churn:0-,rate=0");
  for (std::size_t step = 0; step < 4; ++step) {
    EXPECT_TRUE(gated->next_batch(view, rng, 8, 256, 4).empty());
  }
}

TEST(StrategyBatch, CampaignBatchesAreDeterministicPerSeed) {
  auto net_a = overlay(32);
  auto net_b = overlay(32);
  const auto view_a = sim::make_view(*net_a);
  const auto view_b = sim::make_view(*net_b);
  support::Rng rng_a(21);
  support::Rng rng_b(21);
  const std::string campaign = "mix(churn*2+burst*1):0-6;mass-failure:6-";
  auto a = sim::make_campaign_strategy(campaign);
  auto b = sim::make_campaign_strategy(campaign);
  for (std::size_t step = 0; step < 10; ++step) {
    const ChurnBatch ba = a->next_batch(view_a, rng_a, 8, 256, 4);
    const ChurnBatch bb = b->next_batch(view_b, rng_b, 8, 256, 4);
    EXPECT_EQ(ba.victims, bb.victims) << "step " << step;
    EXPECT_EQ(ba.attach_to, bb.attach_to) << "step " << step;
    (void)net_a->apply(ba);
    (void)net_b->apply(bb);
  }
}

TEST(StrategyBatch, CampaignReplayToleratesStaleTargets) {
  auto net = overlay(16);
  const auto view = sim::make_view(*net);
  support::Rng rng(2);
  const auto alive = net->alive_nodes();
  // Script one action whose victim is already dead by replay time (a node id
  // far past the population) between two valid ones: recorded traces replay
  // against topologies that diverge, so the stale row is skipped, not fatal.
  adversary::CampaignSpec spec;
  auto ph = adversary::phase("", 0, adversary::kOpenEnd);
  ph.strategy.clear();
  ph.trace_path = "inline";  // marks the phase as replay
  ph.script = {{true, alive[0]},
               {false, static_cast<graph::NodeId>(1u << 20)},
               {false, alive[1]}};
  spec.phases.push_back(ph);
  adversary::CampaignStrategy strategy(
      spec, [](const std::string& name) { return sim::make_strategy(name); });
  const ChurnBatch batch = strategy.next_batch(view, rng, 3, 1u << 20, 3);
  ASSERT_EQ(batch.attach_to.size(), 1u);
  EXPECT_EQ(batch.attach_to[0], alive[0]);
  ASSERT_EQ(batch.victims.size(), 1u);
  EXPECT_EQ(batch.victims[0], alive[1]);
  // Exhausted replay phases go quiet instead of aborting.
  EXPECT_TRUE(strategy.next_batch(view, rng, 3, 1u << 20, 3).empty());
}

}  // namespace
}  // namespace dex
