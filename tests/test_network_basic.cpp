// DexNetwork fundamentals: initial construction (§4's G_0), single
// insertions and deletions (Algorithms 4.2/4.3), derived-topology coherence,
// and the paper's per-step invariants (balanced surjective mapping, constant
// degree, connectivity).

#include <gtest/gtest.h>

#include <algorithm>

#include "dex/network.h"
#include "graph/bfs.h"
#include "graph/spectral.h"

using dex::DexNetwork;
using dex::NodeId;
using dex::Params;

namespace {

Params amortized(std::uint64_t seed = 1) {
  Params p;
  p.seed = seed;
  p.mode = dex::RecoveryMode::Amortized;
  return p;
}

Params worst_case(std::uint64_t seed = 1) {
  Params p;
  p.seed = seed;
  p.mode = dex::RecoveryMode::WorstCase;
  return p;
}

}  // namespace

TEST(NetworkBasic, InitialStateIsBalancedExpander) {
  DexNetwork net(32, worst_case());
  EXPECT_EQ(net.n(), 32u);
  EXPECT_GT(net.p(), 4 * 32u);
  EXPECT_LT(net.p(), 8 * 32u);
  net.check_invariants();
  const auto g = net.snapshot();
  EXPECT_TRUE(dex::graph::is_connected(g, net.alive_mask()));
  // Degrees are exactly 3 * load (Def. 2 discussion).
  for (NodeId u : net.alive_nodes()) {
    EXPECT_EQ(g.degree(u), 3 * net.mapping().load(u));
  }
}

TEST(NetworkBasic, InitialMappingIsSurjective) {
  DexNetwork net(10, worst_case());
  for (dex::Vertex z = 0; z < net.p(); ++z) {
    EXPECT_TRUE(net.alive(net.mapping().owner(z)));
  }
  for (NodeId u : net.alive_nodes()) {
    EXPECT_GE(net.mapping().load(u), 1u);
  }
}

TEST(NetworkBasic, CoordinatorIsOwnerOfVertexZero) {
  DexNetwork net(16, worst_case());
  EXPECT_EQ(net.coordinator(), net.mapping().owner(0));
  const auto& cs = net.coordinator_state();
  EXPECT_EQ(cs.n, 16u);
  EXPECT_EQ(cs.spare, net.mapping().spare_count());
  EXPECT_EQ(cs.low, net.mapping().low_count());
}

TEST(NetworkBasic, SingleInsertKeepsInvariants) {
  DexNetwork net(16, worst_case(3));
  const NodeId u = net.insert(0);
  EXPECT_TRUE(net.alive(u));
  EXPECT_EQ(net.n(), 17u);
  EXPECT_GE(net.mapping().load(u), 1u);
  net.check_invariants();
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(NetworkBasic, SingleDeleteKeepsInvariants) {
  DexNetwork net(16, worst_case(4));
  net.remove(5);
  EXPECT_FALSE(net.alive(5));
  EXPECT_EQ(net.n(), 15u);
  EXPECT_EQ(net.mapping().load(5), 0u);
  net.check_invariants();
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
  // Every vertex previously at node 5 is owned by someone alive.
  for (dex::Vertex z = 0; z < net.p(); ++z) {
    EXPECT_TRUE(net.alive(net.mapping().owner(z)));
  }
}

TEST(NetworkBasic, DeleteCoordinatorHandsOver) {
  DexNetwork net(16, worst_case(5));
  const NodeId coord = net.coordinator();
  net.remove(coord);
  net.check_invariants();
  EXPECT_NE(net.coordinator(), coord);
  EXPECT_TRUE(net.alive(net.coordinator()));
  EXPECT_EQ(net.coordinator(), net.mapping().owner(0));
}

TEST(NetworkBasic, RepeatedCoordinatorDeletionSurvives) {
  DexNetwork net(32, worst_case(6));
  for (int i = 0; i < 12; ++i) {
    net.remove(net.coordinator());
    net.insert(net.coordinator());
    net.check_invariants();
  }
  EXPECT_EQ(net.n(), 32u);
}

TEST(NetworkBasic, StepReportHasCosts) {
  DexNetwork net(64, worst_case(7));
  net.insert(1);
  const auto& rep = net.last_report();
  EXPECT_EQ(rep.op, dex::StepOp::Insert);
  EXPECT_GT(rep.cost.messages, 0u);
  EXPECT_GT(rep.cost.topology_changes, 0u);
  EXPECT_EQ(rep.n, 65u);
  net.remove(2);
  EXPECT_EQ(net.last_report().op, dex::StepOp::Delete);
}

TEST(NetworkBasic, PortsMatchSnapshotDegrees) {
  DexNetwork net(24, worst_case(8));
  for (int i = 0; i < 30; ++i) net.insert(static_cast<NodeId>(i % 24));
  const auto g = net.snapshot();
  std::vector<std::uint64_t> ports;
  for (NodeId u : net.alive_nodes()) {
    net.ports_of(u, ports);
    EXPECT_EQ(ports.size(), g.degree(u)) << "node " << u;
  }
}

TEST(NetworkBasic, DegreeStaysConstantBounded) {
  DexNetwork net(16, worst_case(9));
  for (int i = 0; i < 200; ++i) net.insert(0);
  const auto g = net.snapshot();
  const std::uint64_t cap = 3 * 2 * net.params().max_load();  // 3 * 8ζ
  for (NodeId u : net.alive_nodes()) {
    EXPECT_LE(g.degree(u), cap);
  }
}

TEST(NetworkBasic, AmortizedModeAlsoSane) {
  DexNetwork net(16, amortized(10));
  for (int i = 0; i < 50; ++i) net.insert(static_cast<NodeId>(i % 10));
  for (int i = 0; i < 30; ++i) net.remove(net.alive_nodes().front());
  net.check_invariants();
  EXPECT_EQ(net.n(), 36u);
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(NetworkBasic, TinyNetworkChurn) {
  // Degenerate sizes exercise the guards (n0 = 2 is the minimum).
  DexNetwork net(2, worst_case(11));
  for (int i = 0; i < 20; ++i) net.insert(net.alive_nodes().front());
  for (int i = 0; i < 15; ++i) net.remove(net.alive_nodes().back());
  net.check_invariants();
  EXPECT_EQ(net.n(), 7u);
}

TEST(NetworkBasic, SpectralGapAboveCheegerFloor) {
  DexNetwork net(48, worst_case(12));
  for (int i = 0; i < 100; ++i) net.insert(static_cast<NodeId>(i % 48));
  const auto spec = dex::graph::spectral_gap(net.snapshot(), net.alive_mask());
  // Lemma 9(b): at least (1-λ)²/8 of the p-cycle family gap; the contracted
  // graph in practice sits far above the p-cycle's own ~0.025.
  EXPECT_GT(spec.gap, 0.02);
}

TEST(NetworkBasic, InsertReturnsFreshIds) {
  DexNetwork net(8, worst_case(13));
  const NodeId a = net.insert(0);
  const NodeId b = net.insert(a);
  EXPECT_NE(a, b);
  EXPECT_GE(a, 8u);
  EXPECT_TRUE(net.alive(a));
  EXPECT_TRUE(net.alive(b));
}

TEST(NetworkBasic, RemoveDeadNodeAborts) {
  DexNetwork net(8, worst_case(14));
  net.remove(3);
  EXPECT_DEATH(net.remove(3), "alive");
}

TEST(NetworkBasic, InsertOnDeadNodeAborts) {
  DexNetwork net(8, worst_case(15));
  net.remove(3);
  EXPECT_DEATH(net.insert(3), "alive");
}
