// The event-driven simulation core (sim/event/): deterministic heap
// tie-breaking, the sync-vs-event byte-equivalence at zero latency/loss on
// every backend, RNG stream separation (latency/loss/straggler knobs never
// perturb the churn/traffic draws), exact straggler latency arithmetic, the
// healing-racing-churn regime's in_flight/dropped accounting, and the
// jobs-1-vs-8 byte-identity contract with the event engine selected.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/event/engine.h"
#include "sim/experiment.h"
#include "sim/overlay.h"
#include "sim/scenario.h"
#include "sim/sinks.h"
#include "support/prng.h"

using namespace dex;

namespace {

const char* kAllBackends[] = {"dex-amortized", "dex-worstcase", "flood",
                              "lawsiu",        "randomflip",    "xheal"};

sim::ScenarioSpec traffic_spec(std::uint64_t seed) {
  sim::ScenarioSpec spec;
  spec.seed = seed;
  spec.steps = 40;
  spec.batch_size = 3;
  spec.burst_every = 4;  // exercise both the single-event and batch paths
  spec.gap_every = 8;
  spec.measure_degree = true;
  spec.traffic.workload = "zipf";
  spec.traffic.ops_per_step = 12;
  spec.traffic.keyspace = 256;
  return spec;
}

sim::ScenarioResult run_backend(const char* backend,
                                const sim::ScenarioSpec& spec) {
  auto overlay = sim::make_overlay(backend, 48, spec.seed ^ 0x5eedULL);
  auto strategy = sim::make_strategy("churn");
  sim::ScenarioRunner runner(*overlay, *strategy, spec);
  return runner.run();
}

}  // namespace

// ------------------------------------------------------------- EventQueue

TEST(EventQueue, PopsFifoWithinEqualTimestamps) {
  // Same timestamp for many pushes: pops must come back in push order,
  // whatever the heap's internal layout did.
  sim::EventQueue q;
  for (std::uint32_t i = 0; i < 64; ++i) q.push(7, i, i);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto it = q.pop();
    EXPECT_EQ(it.time, 7u);
    EXPECT_EQ(it.kind, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, MatchesReferenceOrderUnderRandomizedInsertions) {
  // Model check against a std::set ordered by (time, seq): randomized
  // interleaving of pushes and pops, every pop must equal the reference
  // minimum. Duplicated timestamps are the common case by construction.
  support::Rng rng(0xabcdef12u);
  sim::EventQueue q;
  std::set<std::pair<std::uint64_t, std::uint64_t>> ref;  // (time, seq)
  std::uint64_t next_seq = 0;
  for (int round = 0; round < 2000; ++round) {
    const bool push = ref.empty() || rng.chance(0.6);
    if (push) {
      const std::uint64_t time = rng.below(16);
      q.push(time, 0, 0);
      ref.emplace(time, next_seq++);
    } else {
      const auto it = q.pop();
      const auto expect = *ref.begin();
      ref.erase(ref.begin());
      EXPECT_EQ(it.time, expect.first);
      EXPECT_EQ(it.seq, expect.second);
    }
  }
  while (!ref.empty()) {
    const auto it = q.pop();
    EXPECT_EQ(it.time, ref.begin()->first);
    EXPECT_EQ(it.seq, ref.begin()->second);
    ref.erase(ref.begin());
  }
  EXPECT_TRUE(q.empty());
}

// ------------------------------------------- sync-vs-event equivalence

TEST(EventEngine, ZeroLatencyZeroLossMatchesSyncOnAllBackends) {
  // At latency fixed:0 / loss 0 / period 1 the event schedule degenerates
  // to the lockstep schedule, and because the adversary/traffic/event RNG
  // streams are separate, the traces must be byte-identical — CSV, summary
  // aggregates, everything except the summary's engine descriptor fields.
  for (const char* backend : kAllBackends) {
    SCOPED_TRACE(backend);
    const sim::ScenarioSpec spec = traffic_spec(11);
    sim::ScenarioSpec event_spec = spec;
    event_spec.event.enabled = true;  // latency fixed:0, loss 0 defaults
    const auto sync_result = run_backend(backend, spec);
    const auto event_result = run_backend(backend, event_spec);
    EXPECT_EQ(sim::trace_csv(sync_result), sim::trace_csv(event_result));
    EXPECT_EQ(sync_result.total.messages, event_result.total.messages);
    EXPECT_EQ(sync_result.total_ops, event_result.total_ops);
    EXPECT_EQ(sync_result.total_op_hops, event_result.total_op_hops);
    EXPECT_EQ(sync_result.final_n, event_result.final_n);
    EXPECT_EQ(event_result.total_dropped, 0u);
    EXPECT_EQ(event_result.max_in_flight, 0u);
  }
}

TEST(EventEngine, StragglerMembershipConsumesNoSharedRandomness) {
  // Straggler injection multiplies latency samples; at fixed:0 the product
  // stays 0, and membership is a pure hash — so even an aggressive
  // straggler config must leave the churn and traffic draws untouched.
  // This is the stream-separation pin: any leak of event-side decisions
  // into the adversary or traffic RNG shows up as a byte diff here.
  const sim::ScenarioSpec spec = traffic_spec(29);
  sim::ScenarioSpec event_spec = spec;
  event_spec.event.enabled = true;
  event_spec.event.straggler_fraction = 0.5;
  event_spec.event.straggler_factor = 7;
  const auto sync_result = run_backend("dex-amortized", spec);
  const auto event_result = run_backend("dex-amortized", event_spec);
  EXPECT_EQ(sim::trace_csv(sync_result), sim::trace_csv(event_result));
}

// ------------------------------------------------- latency arithmetic

TEST(EventEngine, FixedLatencyAndStragglerFactorSetExactSettleLag) {
  // All-straggler network, fixed:2 links, factor 3: every constituent
  // delivery takes 6 ticks and settlement pays one more unmultiplied draw
  // (+2), so every step finalizes exactly 8 ticks after its injection.
  sim::ScenarioSpec spec;
  spec.seed = 3;
  spec.steps = 50;
  spec.event.enabled = true;
  spec.event.latency = *sim::LatencyModel::parse("fixed:2");
  spec.event.straggler_fraction = 1.0;
  spec.event.straggler_factor = 3;
  const auto result = run_backend("lawsiu", spec);
  ASSERT_EQ(result.trace.size(), spec.steps);
  bool racing = false;
  for (const auto& rec : result.trace) {
    EXPECT_EQ(rec.vtime, rec.step + 8);
    racing = racing || rec.in_flight > 0;
  }
  // Six injections are airborne before the first batch applies — the
  // healing-racing-churn regime is actually exercised, not just allowed.
  EXPECT_TRUE(racing);
}

TEST(LatencyModel, ParsesAndRoundTrips) {
  const auto fixed = sim::LatencyModel::parse("fixed:3");
  ASSERT_TRUE(fixed.has_value());
  EXPECT_EQ(fixed->to_string(), "fixed:3");
  EXPECT_DOUBLE_EQ(fixed->mean(), 3.0);
  const auto uniform = sim::LatencyModel::parse("uniform:1,4");
  ASSERT_TRUE(uniform.has_value());
  EXPECT_EQ(uniform->to_string(), "uniform:1,4");
  EXPECT_DOUBLE_EQ(uniform->mean(), 2.5);
  const auto exp = sim::LatencyModel::parse("exp:8");
  ASSERT_TRUE(exp.has_value());
  EXPECT_EQ(exp->to_string(), "exp:8");
  for (const char* bad : {"", "fixed", "fixed:", "fixed:-1", "fixed:x",
                          "uniform:4,1", "uniform:1", "gauss:3", ":5",
                          "fixed:99999999999999999999"}) {
    EXPECT_FALSE(sim::LatencyModel::parse(bad).has_value()) << bad;
  }
  // Samples respect the distribution's support.
  support::Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const auto u = uniform->sample(rng);
    EXPECT_GE(u, 1u);
    EXPECT_LE(u, 4u);
    EXPECT_EQ(fixed->sample(rng), 3u);
  }
}

// ------------------------------------------------ healing racing churn

TEST(EventEngine, RacingChurnWithLossReportsInFlightAndDrops) {
  sim::ScenarioSpec spec = traffic_spec(7);
  spec.steps = 60;
  spec.event.enabled = true;
  spec.event.latency = *sim::LatencyModel::parse("uniform:5,9");
  spec.event.loss_rate = 0.1;
  for (const char* backend : {"dex-amortized", "lawsiu"}) {
    SCOPED_TRACE(backend);
    const auto result = run_backend(backend, spec);
    ASSERT_EQ(result.trace.size(), spec.steps);
    // Every step finalizes exactly once, whatever order they settled in.
    std::vector<bool> seen(spec.steps, false);
    bool racing = false;
    std::uint64_t dropped = 0;
    for (const auto& rec : result.trace) {
      ASSERT_LT(rec.step, spec.steps);
      EXPECT_FALSE(seen[rec.step]);
      seen[rec.step] = true;
      EXPECT_GE(rec.vtime, rec.step);  // settlement never precedes injection
      racing = racing || rec.in_flight > 0;
      dropped += rec.dropped;
    }
    EXPECT_TRUE(racing);
    EXPECT_GT(result.total_dropped, 0u);
    EXPECT_EQ(result.total_dropped, dropped);
    EXPECT_GT(result.max_in_flight, 0u);
    // The summary archives the regime and its outcomes.
    const std::string json = sim::summary_json(result);
    EXPECT_NE(json.find("\"engine\": \"event\""), std::string::npos);
    EXPECT_NE(json.find("\"latency\": \"uniform:5,9\""), std::string::npos);
    EXPECT_NE(json.find("\"dropped_deliveries\""), std::string::npos);
    EXPECT_NE(json.find("\"max_in_flight\""), std::string::npos);
    // Same spec, same bytes: the asynchronous schedule is deterministic.
    const auto again = run_backend(backend, spec);
    EXPECT_EQ(sim::trace_csv(result), sim::trace_csv(again));
    EXPECT_EQ(json, sim::summary_json(again));
  }
}

// -------------------------------------------------- executor integration

TEST(EventEngine, SweepOutputByteIdenticalAcrossJobs) {
  sim::ExperimentPlan plan;
  plan.backends = {"dex-amortized", "flood", "lawsiu", "xheal"};
  plan.scenarios = {"churn"};
  plan.populations = {32};
  plan.batch_sizes = {3};
  plan.seeds = {1, 2};
  plan.base.steps = 30;
  plan.base.traffic.workload = "zipf";
  plan.base.traffic.ops_per_step = 8;
  plan.base.traffic.keyspace = 128;
  plan.base.event.enabled = true;
  plan.base.event.latency = *sim::LatencyModel::parse("uniform:1,4");
  plan.base.event.loss_rate = 0.05;

  const auto run_jobs = [&](std::size_t jobs) {
    std::ostringstream csv, json;
    sim::CsvTraceSink csv_sink(csv);
    sim::JsonSummarySink json_sink(json);
    sim::ExecutorOptions opts;
    opts.jobs = jobs;
    sim::Executor executor(opts);
    executor.add_sink(csv_sink);
    executor.add_sink(json_sink);
    executor.run(plan.expand());
    return std::make_pair(csv.str(), json.str());
  };
  const auto serial = run_jobs(1);
  const auto parallel = run_jobs(8);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_NE(serial.second.find("\"engine\": \"event\""), std::string::npos);
}
