// The inflation/deflation vertex correspondences (Eqs. 6–7 and §4.2.2) —
// Lemma 4(b) and Lemma 6(b) as executable property tests, swept over many
// prime pairs (TEST_P).

#include <gtest/gtest.h>

#include <vector>

#include "dex/index_maps.h"
#include "support/mathutil.h"

using dex::DeflationMap;
using dex::InflationMap;
using dex::Vertex;

TEST(InflationMap, SmallExample) {
  // p=5 -> q in (20,40): 23. alpha = 23/5 = 4.6.
  const InflationMap m(5, 23);
  // Clouds partition {0..22}: x=0 -> ceil(0)=0..ceil(4.6)-1=4 (5 vertices).
  EXPECT_EQ(m.cloud(0), (std::vector<Vertex>{0, 1, 2, 3, 4}));
  EXPECT_EQ(m.cloud(1), (std::vector<Vertex>{5, 6, 7, 8, 9}));   // ceil(4.6)=5..ceil(9.2)-1=9
  EXPECT_EQ(m.cloud(2), (std::vector<Vertex>{10, 11, 12, 13}));  // 10..13
  EXPECT_EQ(m.cloud(4), (std::vector<Vertex>{19, 20, 21, 22}));
}

TEST(InflationMap, ParentInvertsChild) {
  const InflationMap m(101, dex::support::inflation_prime(101));
  for (Vertex x = 0; x < 101; ++x) {
    for (std::uint64_t j = 0; j <= m.c(x); ++j) {
      EXPECT_EQ(m.parent(m.child(x, j)), x) << x << "," << j;
    }
  }
}



class InflationSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Lemma 4(b): the clouds form a partition of Z_q — every new vertex has
// exactly one generator; cloud sizes are in [4, 8].
TEST_P(InflationSweep, CloudsPartitionNewVertexSet) {
  const std::uint64_t p = GetParam();
  const std::uint64_t q = dex::support::inflation_prime(p);
  const InflationMap m(p, q);
  EXPECT_LE(m.zeta(), 8u);
  std::vector<int> covered(q, 0);
  for (Vertex x = 0; x < p; ++x) {
    const auto cloud = m.cloud(x);
    EXPECT_GE(cloud.size(), 4u) << "x=" << x;  // alpha > 4
    EXPECT_LE(cloud.size(), 8u) << "x=" << x;  // alpha < 8, zeta bound
    for (Vertex y : cloud) {
      ASSERT_LT(y, q);
      ++covered[y];
      EXPECT_EQ(m.parent(y), x);
    }
  }
  for (Vertex y = 0; y < q; ++y) EXPECT_EQ(covered[y], 1) << "y=" << y;
}

// Clouds are contiguous runs in label order (used by the staggered build's
// "active group" argument).
TEST_P(InflationSweep, CloudsAreContiguousAndOrdered) {
  const std::uint64_t p = GetParam();
  const InflationMap m(p, dex::support::inflation_prime(p));
  Vertex expected_next = 0;
  for (Vertex x = 0; x < p; ++x) {
    const auto cloud = m.cloud(x);
    EXPECT_EQ(cloud.front(), expected_next);
    for (std::size_t i = 1; i < cloud.size(); ++i) {
      EXPECT_EQ(cloud[i], cloud[i - 1] + 1);
    }
    expected_next = cloud.back() + 1;
  }
  EXPECT_EQ(expected_next, m.p_new());
}

INSTANTIATE_TEST_SUITE_P(PrimeSweep, InflationSweep,
                         ::testing::Values(5, 7, 11, 23, 101, 499, 1009,
                                           4099));

class DeflationSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Lemma 6(b): dominating vertices biject with Z_q.
TEST_P(DeflationSweep, DominatingVerticesBijectWithNewSet) {
  const std::uint64_t p = GetParam();
  const std::uint64_t q = dex::support::deflation_prime(p);
  const DeflationMap m(p, q);
  std::vector<int> hit(q, 0);
  std::uint64_t dominating_count = 0;
  for (Vertex x = 0; x < p; ++x) {
    const Vertex y = m.image(x);
    ASSERT_LT(y, q);
    if (m.is_dominating(x)) {
      ++dominating_count;
      ++hit[y];
      EXPECT_EQ(m.dominating(y), x);
    }
  }
  EXPECT_EQ(dominating_count, q);
  for (Vertex y = 0; y < q; ++y) EXPECT_EQ(hit[y], 1) << y;
}

// Deflation clouds partition the old vertex set with sizes in [4, 8].
TEST_P(DeflationSweep, CloudsPartitionOldVertexSet) {
  const std::uint64_t p = GetParam();
  const std::uint64_t q = dex::support::deflation_prime(p);
  const DeflationMap m(p, q);
  std::vector<int> covered(p, 0);
  for (Vertex y = 0; y < q; ++y) {
    const auto cloud = m.cloud(y);
    EXPECT_GE(cloud.size(), 4u) << "y=" << y;
    EXPECT_LE(cloud.size(), 8u) << "y=" << y;
    EXPECT_EQ(cloud.front(), m.dominating(y));
    for (Vertex x : cloud) {
      ASSERT_LT(x, p);
      ++covered[x];
      EXPECT_EQ(m.image(x), y);
    }
  }
  for (Vertex x = 0; x < p; ++x) EXPECT_EQ(covered[x], 1) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(PrimeSweep, DeflationSweep,
                         ::testing::Values(61, 101, 499, 1009, 4099, 16411));

// Round trip: inflating then deflating restores a cycle of comparable size
// (not identical — the primes differ — but within the paper's envelopes).
TEST(IndexMaps, InflateDeflateEnvelope) {
  for (std::uint64_t p : {101ULL, 1009ULL}) {
    const std::uint64_t up = dex::support::inflation_prime(p);
    const std::uint64_t down = dex::support::deflation_prime(up);
    EXPECT_GT(down, up / 8);
    EXPECT_LT(down, up / 4);
    EXPECT_GT(down, p / 2);  // 4p/8
    EXPECT_LT(down, 2 * p);  // 8p/4
  }
}

TEST(IndexMaps, ConstructorRejectsOutOfRangePrimes) {
  EXPECT_DEATH(InflationMap(100, 399), "inflation");   // 399 < 4*100
  EXPECT_DEATH(InflationMap(100, 801), "inflation");   // 801 > 8*100
  EXPECT_DEATH(DeflationMap(100, 26), "deflation");    // 26 > 100/4
  EXPECT_DEATH(DeflationMap(100, 12), "deflation");    // 12 < 100/8
}
