// Worst-case (staggered) type-2 recovery — Algorithms 4.7–4.9 and Lemma 9.
// Drives the network across inflation and deflation boundaries with churn
// *during* the staggered phases, auditing invariants at every step:
// connectivity, bounded loads (≤ 8ζ total mid-rebuild), coordinator counter
// exactness, and per-step costs that never spike to Θ(n).

#include <gtest/gtest.h>

#include "dex/network.h"
#include "graph/bfs.h"
#include "graph/spectral.h"
#include "support/prng.h"

using dex::DexNetwork;
using dex::NodeId;
using dex::Params;

namespace {

Params worst_case(std::uint64_t seed) {
  Params p;
  p.seed = seed;
  p.mode = dex::RecoveryMode::WorstCase;
  return p;
}

/// Insert until at least one inflation has started and completed.
void drive_through_inflation(DexNetwork& net, dex::support::Rng& rng,
                             std::size_t max_steps = 20000) {
  const auto target = net.inflation_count() + 1;
  std::size_t steps = 0;
  while ((net.inflation_count() < target || net.staggered_active()) &&
         steps++ < max_steps) {
    const auto nodes = net.alive_nodes();
    net.insert(nodes[rng.below(nodes.size())]);
    net.check_invariants();
  }
  ASSERT_LT(steps, max_steps) << "inflation never completed";
}

void drive_through_deflation(DexNetwork& net, dex::support::Rng& rng,
                             std::size_t max_steps = 30000) {
  const auto target = net.deflation_count() + 1;
  std::size_t steps = 0;
  while ((net.deflation_count() < target || net.staggered_active()) &&
         steps++ < max_steps) {
    const auto nodes = net.alive_nodes();
    if (net.n() > 8) {
      net.remove(nodes[rng.below(nodes.size())]);
    } else {
      net.insert(nodes[rng.below(nodes.size())]);
    }
    net.check_invariants();
  }
  ASSERT_LT(steps, max_steps) << "deflation never completed";
}

}  // namespace

TEST(Staggered, InflationCompletesUnderInsertOnlyChurn) {
  DexNetwork net(32, worst_case(21));
  dex::support::Rng rng(99);
  drive_through_inflation(net, rng);
  EXPECT_GE(net.inflation_count(), 1u);
  EXPECT_EQ(net.forced_sync_type2(), 0u);
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(Staggered, DeflationCompletesUnderDeleteOnlyChurn) {
  DexNetwork net(32, worst_case(22));
  dex::support::Rng rng(100);
  // Grow first so there is room to shrink.
  drive_through_inflation(net, rng);
  drive_through_deflation(net, rng);
  EXPECT_GE(net.deflation_count(), 1u);
  EXPECT_EQ(net.forced_sync_type2(), 0u);
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(Staggered, ConnectivityHoldsDuringEveryRebuildStep) {
  DexNetwork net(32, worst_case(23));
  dex::support::Rng rng(101);
  std::size_t staggered_steps_seen = 0;
  for (std::size_t t = 0; t < 3000; ++t) {
    const auto nodes = net.alive_nodes();
    net.insert(nodes[rng.below(nodes.size())]);
    if (net.staggered_active()) {
      ++staggered_steps_seen;
      EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()))
          << "disconnected mid-rebuild at step " << t;
    }
  }
  EXPECT_GT(staggered_steps_seen, 0u) << "test never exercised a rebuild";
}

TEST(Staggered, PerStepCostsStayLogarithmicDuringRebuild) {
  DexNetwork net(64, worst_case(24));
  dex::support::Rng rng(102);
  std::uint64_t worst_messages = 0;
  for (std::size_t t = 0; t < 4000; ++t) {
    const auto nodes = net.alive_nodes();
    net.insert(nodes[rng.below(nodes.size())]);
    worst_messages =
        std::max(worst_messages, net.last_report().cost.messages);
  }
  ASSERT_GE(net.inflation_count(), 1u);
  // Θ(n) would be > 3n messages in a simplified rebuild step; the staggered
  // path must stay well under that (O((1/θ)·log n) per step).
  EXPECT_LT(worst_messages, net.n())
      << "a staggered step cost Θ(n) messages";
}

TEST(Staggered, MixedChurnDuringInflationKeepsInvariants) {
  DexNetwork net(48, worst_case(25));
  dex::support::Rng rng(103);
  // Push to the brink of inflation.
  while (net.inflation_count() == 0) {
    const auto nodes = net.alive_nodes();
    net.insert(nodes[rng.below(nodes.size())]);
  }
  // Now mix deletes and inserts while the rebuild is in flight.
  std::size_t mixed = 0;
  while (net.staggered_active() && mixed < 20000) {
    const auto nodes = net.alive_nodes();
    if (rng.chance(0.4) && net.n() > 16) {
      net.remove(nodes[rng.below(nodes.size())]);
    } else {
      net.insert(nodes[rng.below(nodes.size())]);
    }
    net.check_invariants();
    ++mixed;
  }
  EXPECT_FALSE(net.staggered_active());
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(Staggered, CoordinatorDeletionDuringRebuild) {
  DexNetwork net(48, worst_case(26));
  dex::support::Rng rng(104);
  while (net.inflation_count() == 0) {
    const auto nodes = net.alive_nodes();
    net.insert(nodes[rng.below(nodes.size())]);
  }
  // Kill the coordinator repeatedly while the rebuild is staggering.
  int kills = 0;
  while (net.staggered_active() && kills < 25) {
    net.remove(net.coordinator());
    net.insert(net.alive_nodes().front());
    net.check_invariants();
    ++kills;
  }
  EXPECT_GT(kills, 0);
  EXPECT_EQ(net.coordinator(), net.mapping().owner(0));
}

TEST(Staggered, GapNeverCollapsesAcrossRebuild) {
  DexNetwork net(32, worst_case(27));
  dex::support::Rng rng(105);
  double min_gap = 1.0;
  for (std::size_t t = 0; t < 2500; ++t) {
    const auto nodes = net.alive_nodes();
    net.insert(nodes[rng.below(nodes.size())]);
    if (t % 25 == 0 || net.staggered_active()) {
      const auto spec =
          dex::graph::spectral_gap(net.snapshot(), net.alive_mask());
      min_gap = std::min(min_gap, spec.gap);
    }
  }
  ASSERT_GE(net.inflation_count(), 1u);
  // Lemma 9(b): at worst (1-λ)²/8 of the family constant. Our floor is the
  // empirical family gap (~0.025) squared over 8 ≈ 8e-5; in practice the
  // contracted network stays far above 0.01.
  EXPECT_GT(min_gap, 0.01);
}

TEST(Staggered, EpochCounterBumpsOnSwap) {
  DexNetwork net(32, worst_case(28));
  dex::support::Rng rng(106);
  const auto before = net.cycle_epoch();
  drive_through_inflation(net, rng);
  EXPECT_EQ(net.cycle_epoch(), before + 1);
}

TEST(Staggered, InflationGrowsPWithinBertrandRange) {
  DexNetwork net(32, worst_case(29));
  dex::support::Rng rng(107);
  const auto p_before = net.p();
  drive_through_inflation(net, rng);
  EXPECT_GT(net.p(), 4 * p_before);
  EXPECT_LT(net.p(), 8 * p_before);
}

TEST(Staggered, DeflationShrinksPWithinRange) {
  DexNetwork net(32, worst_case(30));
  dex::support::Rng rng(108);
  drive_through_inflation(net, rng);
  const auto p_before = net.p();
  drive_through_deflation(net, rng);
  EXPECT_GT(net.p(), p_before / 8);
  EXPECT_LT(net.p(), p_before / 4);
}

TEST(Staggered, BackToBackCyclesSurvive) {
  // Oscillate across both thresholds twice; Lemma 8 says rebuilds must be
  // separated by Ω(n) steps — verify they are and that nothing breaks.
  DexNetwork net(32, worst_case(31));
  dex::support::Rng rng(109);
  for (int cycle = 0; cycle < 2; ++cycle) {
    drive_through_inflation(net, rng);
    drive_through_deflation(net, rng);
  }
  EXPECT_GE(net.inflation_count(), 2u);
  EXPECT_GE(net.deflation_count(), 2u);
  EXPECT_EQ(net.forced_sync_type2(), 0u);
  net.check_invariants();
}
