// Batch-first churn API conformance: the default sequential
// HealingOverlay::apply equals the equivalent single-event sequence on
// every backend; DEX's parallel path (DexOverlay::apply -> dex::apply_batch)
// preserves the paper's invariants and §5 preconditions, and falls back to
// the sequential path when a batch is infeasible; the ScenarioRunner
// threads batch fields through the trace, CSV and JSON.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "dex/batch.h"
#include "graph/bfs.h"
#include "sim/overlay.h"
#include "sim/scenario.h"

using namespace dex;

namespace {

const char* kAllBackends[] = {"dex-amortized", "dex-worstcase", "flood",
                              "lawsiu",        "randomflip",    "xheal"};

/// Multigraph equality up to port order: same capacity, same per-node
/// sorted port lists.
bool same_topology(const graph::Multigraph& a, const graph::Multigraph& b) {
  if (a.node_count() != b.node_count()) return false;
  for (graph::NodeId u = 0; u < a.node_count(); ++u) {
    std::vector<graph::NodeId> pa(a.ports(u).begin(), a.ports(u).end());
    std::vector<graph::NodeId> pb(b.ports(u).begin(), b.ports(u).end());
    std::sort(pa.begin(), pa.end());
    std::sort(pb.begin(), pb.end());
    if (pa != pb) return false;
  }
  return true;
}

/// A batch any backend can absorb: a few victims that are safe to delete
/// one at a time, plus attach points disjoint from the victims.
sim::ChurnBatch mixed_batch(const sim::HealingOverlay& overlay) {
  sim::ChurnBatch batch;
  const auto nodes = overlay.alive_nodes();
  batch.victims = {nodes[0], nodes[3], nodes[6]};
  batch.attach_to = {nodes[10], nodes[11], nodes[12], nodes[13]};
  return batch;
}

Params amortized(std::uint64_t seed) {
  Params p;
  p.seed = seed;
  p.mode = RecoveryMode::Amortized;
  return p;
}

}  // namespace

// ------------------------------------------- sequential-path conformance

TEST(BatchOverlay, SequentialDefaultMatchesSingleEventSequence) {
  for (const char* backend : kAllBackends) {
    SCOPED_TRACE(backend);
    auto via_batch = sim::make_overlay(backend, 32, 5);
    auto via_events = sim::make_overlay(backend, 32, 5);
    ASSERT_NE(via_batch, nullptr);
    ASSERT_NE(via_events, nullptr);

    const auto batch = mixed_batch(*via_batch);
    const auto out = via_batch->apply_sequential(batch);

    // The canonical equivalent sequence: victims in order, then inserts.
    sim::StepCost manual_cost;
    std::vector<graph::NodeId> manual_inserted;
    for (auto v : batch.victims) {
      via_events->remove(v);
      manual_cost += via_events->last_step_cost();
    }
    for (auto a : batch.attach_to) {
      manual_inserted.push_back(via_events->insert(a));
      manual_cost += via_events->last_step_cost();
    }

    EXPECT_EQ(out.inserted, manual_inserted);
    EXPECT_EQ(out.cost.rounds, manual_cost.rounds);
    EXPECT_EQ(out.cost.messages, manual_cost.messages);
    EXPECT_EQ(out.cost.topology_changes, manual_cost.topology_changes);
    EXPECT_EQ(out.walk_epochs, 0u);
    EXPECT_FALSE(out.parallel);
    EXPECT_EQ(via_batch->n(), via_events->n());
    EXPECT_EQ(via_batch->alive_mask(), via_events->alive_mask());
    EXPECT_TRUE(same_topology(via_batch->snapshot(), via_events->snapshot()))
        << backend;
    via_batch->check_invariants();
  }
}

TEST(BatchOverlay, VirtualApplyDefaultsToSequentialOnBaselines) {
  // For non-DEX backends apply() IS the sequential default; a second
  // overlay driven through apply_sequential must match exactly.
  for (const char* backend : {"flood", "lawsiu", "randomflip", "xheal"}) {
    SCOPED_TRACE(backend);
    auto a = sim::make_overlay(backend, 32, 8);
    auto b = sim::make_overlay(backend, 32, 8);
    const auto batch = mixed_batch(*a);
    const auto out_a = a->apply(batch);
    const auto out_b = b->apply_sequential(batch);
    EXPECT_EQ(out_a.inserted, out_b.inserted);
    EXPECT_EQ(out_a.cost.rounds, out_b.cost.rounds);
    EXPECT_TRUE(same_topology(a->snapshot(), b->snapshot()));
  }
}

// --------------------------------------------- DEX parallel-path checks

TEST(BatchOverlay, DexParallelBatchPreservesInvariants) {
  sim::DexOverlay overlay(64, amortized(91));
  const auto nodes = overlay.alive_nodes();

  sim::ChurnBatch batch;
  // §5-safe victims via the shared sampler; attach points drawn from the
  // survivors, one newcomer each (well under the multiplicity cap).
  batch.victims = adversary::sample_safe_victims(
      overlay.snapshot(), overlay.alive_mask(), nodes, 6);
  ASSERT_GE(batch.victims.size(), 2u);
  for (auto it = nodes.rbegin();
       it != nodes.rend() && batch.attach_to.size() < 8; ++it) {
    if (std::find(batch.victims.begin(), batch.victims.end(), *it) ==
        batch.victims.end()) {
      batch.attach_to.push_back(*it);
    }
  }
  ASSERT_EQ(batch.attach_to.size(), 8u);

  ASSERT_TRUE(dex::batch_feasible(
      overlay.net(), dex::BatchRequest{batch.attach_to, batch.victims}));
  const auto before_n = overlay.n();
  const auto out = overlay.apply(batch);

  EXPECT_TRUE(out.parallel);
  EXPECT_GT(out.walk_epochs, 0u);
  EXPECT_EQ(out.inserted.size(), batch.attach_to.size());
  EXPECT_EQ(overlay.n(), before_n - batch.victims.size() + 8);
  for (auto v : batch.victims) EXPECT_FALSE(overlay.alive(v));
  for (auto u : out.inserted) EXPECT_TRUE(overlay.alive(u));
  overlay.check_invariants();
  EXPECT_TRUE(
      graph::is_connected(overlay.snapshot(), overlay.alive_mask()));
}

TEST(BatchOverlay, InfeasibleBatchFallsBackToSequential) {
  sim::DexOverlay overlay(32, amortized(92));
  const auto nodes = overlay.alive_nodes();
  // Six newcomers on one attach point violates the kMaxAttachPerNode cap,
  // so the parallel path must refuse — and the sequential fallback must
  // still apply the batch (single-event inserts have no multiplicity cap).
  sim::ChurnBatch batch;
  batch.attach_to.assign(6, nodes[0]);
  ASSERT_FALSE(dex::batch_feasible(
      overlay.net(), dex::BatchRequest{batch.attach_to, batch.victims}));
  const auto out = overlay.apply(batch);
  EXPECT_FALSE(out.parallel);
  EXPECT_EQ(out.walk_epochs, 0u);
  EXPECT_EQ(out.inserted.size(), 6u);
  EXPECT_EQ(overlay.n(), 38u);
  overlay.check_invariants();
}

TEST(BatchOverlay, WorstCaseModeAlwaysSequential) {
  Params prm;
  prm.seed = 93;
  prm.mode = RecoveryMode::WorstCase;
  sim::DexOverlay overlay(32, prm);
  const auto batch = mixed_batch(overlay);
  const auto out = overlay.apply(batch);
  EXPECT_FALSE(out.parallel);
  EXPECT_EQ(overlay.n(), 32u - 3 + 4);
  overlay.check_invariants();
}

TEST(BatchOverlay, ParallelDisabledKnobForcesSequential) {
  sim::DexOverlay overlay(64, amortized(94));
  overlay.set_parallel_batches(false);
  const auto batch = mixed_batch(overlay);
  const auto out = overlay.apply(batch);
  EXPECT_FALSE(out.parallel);
  EXPECT_EQ(out.walk_epochs, 0u);
  overlay.check_invariants();
}

TEST(BatchOverlay, SingleEventBatchUsesLegacyPath) {
  // A batch of one must not detour through the parallel machinery — the
  // per-event path of §2 is the contract for batch_size 1.
  sim::DexOverlay overlay(32, amortized(95));
  sim::ChurnBatch one;
  one.attach_to = {overlay.alive_nodes()[2]};
  const auto out = overlay.apply(one);
  EXPECT_FALSE(out.parallel);
  EXPECT_EQ(out.inserted.size(), 1u);
  EXPECT_EQ(overlay.n(), 33u);
}

// --------------------------------------------------- max_degree accessor

TEST(BatchOverlay, DexMaxDegreeMatchesSnapshotScan) {
  sim::DexOverlay overlay(48, amortized(96));
  adversary::RandomChurn strat(0.5);
  sim::ScenarioSpec spec;
  spec.seed = 17;
  spec.steps = 60;
  spec.min_n = 16;
  spec.max_n = 128;
  sim::ScenarioRunner runner(overlay, strat, spec);
  runner.set_observer([](const sim::StepRecord&, sim::HealingOverlay& o) {
    auto& dex_o = static_cast<sim::DexOverlay&>(o);
    const auto g = dex_o.snapshot();
    std::size_t expect = 0;
    for (auto u : dex_o.alive_nodes())
      expect = std::max(expect, g.degree(u));
    EXPECT_EQ(dex_o.max_degree(), expect);
  });
  (void)runner.run();
}

// -------------------------------------------------- runner batch plumbing

TEST(BatchOverlay, RunnerThreadsBatchFieldsThroughTraceCsvJson) {
  sim::DexOverlay overlay(64, amortized(97));
  adversary::BurstChurn strat(0.5);
  sim::ScenarioSpec spec;
  spec.seed = 23;
  spec.steps = 12;
  spec.batch_size = 8;
  spec.min_n = 16;
  spec.max_n = 256;
  sim::ScenarioRunner runner(overlay, strat, spec);
  const auto res = runner.run();

  ASSERT_EQ(res.trace.size(), 12u);
  std::size_t inserts = 0, deletes = 0;
  std::uint64_t epochs = 0;
  for (const auto& rec : res.trace) {
    EXPECT_LE(rec.batch_inserts + rec.batch_deletes, 8u);
    inserts += rec.batch_inserts;
    deletes += rec.batch_deletes;
    epochs += rec.walk_epochs;
  }
  EXPECT_EQ(inserts, res.total_inserts);
  EXPECT_EQ(deletes, res.total_deletes);
  EXPECT_EQ(epochs, res.total_walk_epochs);
  EXPECT_GT(res.parallel_steps, 0u);
  EXPECT_EQ(res.final_n,
            res.start_n + res.total_inserts - res.total_deletes);

  const auto csv = sim::trace_csv(res);
  EXPECT_NE(csv.find("batch_inserts"), std::string::npos);
  EXPECT_NE(csv.find("batch_deletes"), std::string::npos);
  EXPECT_NE(csv.find("walk_epochs"), std::string::npos);
  EXPECT_NE(csv.find("used_type2"), std::string::npos);
  EXPECT_NE(csv.find("batch"), std::string::npos);

  const auto json = sim::summary_json(res);
  EXPECT_NE(json.find("\"batch_size\": 8"), std::string::npos);
  EXPECT_NE(json.find("total_walk_epochs"), std::string::npos);
  EXPECT_NE(json.find("parallel_steps"), std::string::npos);
  overlay.check_invariants();
}

TEST(BatchOverlay, BurstEveryAlternatesBatchAndSingleSteps) {
  auto overlay = sim::make_overlay("lawsiu", 32, 3);
  adversary::RandomChurn strat(0.5);
  sim::ScenarioSpec spec;
  spec.seed = 29;
  spec.steps = 16;
  spec.batch_size = 6;
  spec.burst_every = 4;
  spec.min_n = 8;
  spec.max_n = 256;
  sim::ScenarioRunner runner(*overlay, strat, spec);
  const auto res = runner.run();
  ASSERT_EQ(res.trace.size(), 16u);
  bool saw_burst = false;
  for (const auto& rec : res.trace) {
    const std::size_t events = rec.batch_inserts + rec.batch_deletes;
    if (rec.step % 4 == 0) {
      saw_burst = saw_burst || events > 1;
    } else {
      EXPECT_LE(events, 1u) << rec.step;
    }
  }
  EXPECT_TRUE(saw_burst);
}

TEST(BatchOverlay, BatchScenarioDeterministicPerBackend) {
  for (const char* backend : kAllBackends) {
    SCOPED_TRACE(backend);
    std::vector<std::string> traces;
    for (int rep = 0; rep < 2; ++rep) {
      auto overlay = sim::make_overlay(backend, 32, 11);
      adversary::BurstChurn strat(0.5);
      sim::ScenarioSpec spec;
      spec.seed = 31;
      spec.steps = 10;
      spec.batch_size = 5;
      spec.min_n = 12;
      spec.max_n = 128;
      sim::ScenarioRunner runner(*overlay, strat, spec);
      traces.push_back(sim::trace_csv(runner.run()));
    }
    EXPECT_EQ(traces[0], traces[1]);
  }
}

TEST(BatchOverlay, EveryBackendSurvivesBatchChurnScenarios) {
  for (const char* backend : kAllBackends) {
    for (const char* scenario : {"burst", "flash-crowd", "mass-failure"}) {
      SCOPED_TRACE(std::string(backend) + "/" + scenario);
      auto overlay = sim::make_overlay(backend, 32, 13);
      auto strat = sim::make_strategy(scenario);
      ASSERT_NE(strat, nullptr);
      sim::ScenarioSpec spec;
      spec.seed = 37;
      spec.steps = 20;
      spec.batch_size = 6;
      spec.min_n = 12;
      spec.max_n = 96;
      sim::ScenarioRunner runner(*overlay, *strat, spec);
      const auto res = runner.run();
      for (const auto& rec : res.trace) {
        EXPECT_GE(rec.n, 12u - 0u);
        EXPECT_LE(rec.n, 96u);
      }
      overlay->check_invariants();
      EXPECT_TRUE(
          graph::is_connected(overlay->snapshot(), overlay->alive_mask()));
    }
  }
}
