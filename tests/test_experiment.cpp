// The declarative sweep layer (sim/experiment.h) and the streaming sinks
// (sim/sinks.h): deterministic plan expansion, executor byte-determinism
// across thread counts, index-ordered delivery, and the sink conformance
// contract (nesting, ordering, fan-out, aggregate coherence). Plus the
// per-node degree semantics of the flooding adapter the sweep relies on.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/overlay.h"
#include "sim/scenario.h"
#include "sim/sinks.h"

using namespace dex;

namespace {

/// A small but genuinely mixed grid: multiple backends, a batch axis and
/// seed replicates, sized so jobs=8 actually interleaves completions.
sim::ExperimentPlan small_plan() {
  sim::ExperimentPlan plan;
  plan.backends = {"dex-worstcase", "flood", "lawsiu"};
  plan.scenarios = {"churn", "burst"};
  plan.populations = {24};
  plan.batch_sizes = {1, 5};
  plan.seeds = {1, 2};
  plan.base.steps = 20;
  return plan;
}

struct SweepOutput {
  std::string csv;
  std::string json;
  std::vector<std::string> summaries;
};

SweepOutput run_sweep(const sim::ExperimentPlan& plan, std::size_t jobs) {
  std::ostringstream csv, json;
  sim::CsvTraceSink csv_sink(csv);
  sim::JsonSummarySink json_sink(json);
  sim::ExecutorOptions opts;
  opts.jobs = jobs;
  sim::Executor executor(opts);
  executor.add_sink(csv_sink);
  executor.add_sink(json_sink);
  const auto results = executor.run(plan.expand());
  SweepOutput out{csv.str(), json.str(), {}};
  for (const auto& r : results) out.summaries.push_back(sim::summary_json(r));
  return out;
}

}  // namespace

// ------------------------------------------------------------- expansion

TEST(ExperimentPlan, ExpandsFullGridInDeterministicOrder) {
  const auto plan = small_plan();
  const auto trials = plan.expand();
  ASSERT_EQ(trials.size(), plan.trial_count());
  ASSERT_EQ(trials.size(), 3u * 2u * 1u * 2u * 2u);

  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(trials[i].index, i);
  }
  // Nesting: backends outermost, seeds innermost.
  EXPECT_EQ(trials[0].backend, "dex-worstcase");
  EXPECT_EQ(trials[0].spec.seed, 1u);
  EXPECT_EQ(trials[1].spec.seed, 2u);
  EXPECT_EQ(trials[0].spec.batch_size, 1u);
  EXPECT_EQ(trials[2].spec.batch_size, 5u);
  EXPECT_EQ(trials[4].scenario, "burst");
  EXPECT_EQ(trials[8].backend, "flood");

  // Expansion is pure: a second expansion describes the same trials.
  const auto again = plan.expand();
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(trials[i].backend, again[i].backend);
    EXPECT_EQ(trials[i].scenario, again[i].scenario);
    EXPECT_EQ(trials[i].n0, again[i].n0);
    EXPECT_EQ(trials[i].spec.seed, again[i].spec.seed);
    EXPECT_EQ(trials[i].spec.batch_size, again[i].spec.batch_size);
    EXPECT_EQ(trials[i].spec.label, again[i].spec.label);
  }
}

TEST(ExperimentPlan, CustomizeHookAppliesPerTrial) {
  auto plan = small_plan();
  plan.customize = [](sim::TrialSpec& t) {
    t.spec.steps = t.backend == "flood" ? 5 : 20;
    t.spec.label += "/tagged";
  };
  const auto trials = plan.expand();
  for (const auto& t : trials) {
    EXPECT_EQ(t.spec.steps, t.backend == "flood" ? 5u : 20u);
    EXPECT_NE(t.spec.label.find("/tagged"), std::string::npos);
  }
}

TEST(ExperimentPlan, FactoriesProduceSelfDescribedTrial) {
  auto plan = small_plan();
  const auto trials = plan.expand();
  for (const auto& t : {trials.front(), trials.back()}) {
    auto overlay = t.make_overlay();
    ASSERT_NE(overlay, nullptr);
    EXPECT_EQ(std::string(overlay->name()), t.backend);
    EXPECT_GE(overlay->n(), t.n0);
    auto strategy = t.make_strategy();
    EXPECT_NE(strategy, nullptr);
  }
}

// ----------------------------------------------------------- determinism

TEST(Executor, ByteIdenticalOutputAcrossJobCounts) {
  const auto plan = small_plan();
  const auto serial = run_sweep(plan, 1);
  const auto parallel = run_sweep(plan, 8);
  EXPECT_EQ(serial.csv, parallel.csv);
  EXPECT_EQ(serial.json, parallel.json);
  ASSERT_EQ(serial.summaries.size(), parallel.summaries.size());
  for (std::size_t i = 0; i < serial.summaries.size(); ++i) {
    EXPECT_EQ(serial.summaries[i], parallel.summaries[i]) << i;
  }
  // The sweep actually produced output for every trial.
  EXPECT_EQ(serial.summaries.size(), plan.trial_count());
  EXPECT_NE(serial.csv.find("\n0,"), std::string::npos);
}

TEST(Executor, ResultsOrderedByTrialIndexNotFinishTime) {
  // Trials with wildly different run times: the big-n0 trials land first in
  // the plan and finish last under jobs>1.
  sim::ExperimentPlan plan;
  plan.backends = {"dex-worstcase"};
  plan.populations = {128, 16};
  plan.seeds = {1, 2};
  plan.base.steps = 60;
  sim::ExecutorOptions opts;
  opts.jobs = 4;
  opts.stream_steps = false;
  sim::Executor executor(opts);
  const auto results = executor.run(plan.expand());
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].start_n, 128u);
  EXPECT_EQ(results[1].start_n, 128u);
  EXPECT_EQ(results[2].start_n, 16u);
  EXPECT_EQ(results[3].start_n, 16u);
  for (const auto& r : results) {
    EXPECT_EQ(r.backend, "dex-worstcase");
    // The executor never materializes traces.
    EXPECT_TRUE(r.trace.empty());
    EXPECT_EQ(r.rounds.count, 60u);
  }
}

// -------------------------------------------------------------- sinks

namespace {

/// Records the event stream to verify the delivery contract: per-trial
/// nesting (start, steps, end), step counts, and global index order.
class RecordingSink final : public sim::MetricSink {
 public:
  struct TrialLog {
    std::size_t index = 0;
    std::size_t steps = 0;
    bool ended = false;
  };

  void on_trial_start(const sim::TrialInfo& trial) override {
    ASSERT_TRUE(trials.empty() || trials.back().ended)
        << "trial events must not interleave";
    ASSERT_EQ(trial.index, trials.size()) << "trials must arrive in order";
    trials.push_back({trial.index, 0, false});
  }
  void on_step(const sim::TrialInfo& trial,
               const sim::StepRecord& rec) override {
    ASSERT_FALSE(trials.empty());
    ASSERT_EQ(trial.index, trials.back().index);
    ASSERT_FALSE(trials.back().ended);
    ASSERT_EQ(rec.step, trials.back().steps) << "steps must arrive in order";
    ++trials.back().steps;
  }
  void on_trial_end(const sim::TrialInfo& trial,
                    const sim::ScenarioResult& result) override {
    ASSERT_FALSE(trials.empty());
    ASSERT_EQ(trial.index, trials.back().index);
    EXPECT_TRUE(result.trace.empty());
    EXPECT_EQ(result.rounds.count, trials.back().steps);
    trials.back().ended = true;
  }

  std::vector<TrialLog> trials;
};

}  // namespace

TEST(Sinks, DeliveryContractHoldsUnderParallelExecution) {
  const auto plan = small_plan();
  RecordingSink recorder;
  sim::ExecutorOptions opts;
  opts.jobs = 8;
  opts.collect_results = false;
  sim::Executor executor(opts);
  executor.add_sink(recorder);
  const auto results = executor.run(plan.expand());
  EXPECT_TRUE(results.empty());  // collect_results off
  ASSERT_EQ(recorder.trials.size(), plan.trial_count());
  for (const auto& t : recorder.trials) {
    EXPECT_TRUE(t.ended);
    EXPECT_EQ(t.steps, 20u);
  }
}

TEST(Sinks, CsvTraceSinkSingleTrialMatchesMaterializedTrace) {
  // The streaming emission and the classic materialize-then-trace_csv path
  // must be byte-identical on the same trial.
  sim::ExperimentPlan plan;
  plan.backends = {"dex-worstcase"};
  plan.populations = {24};
  plan.seeds = {9};
  plan.base.steps = 40;
  plan.base.measure_degree = true;
  plan.base.gap_every = 8;

  std::ostringstream streamed;
  sim::CsvTraceSink sink(streamed, /*trial_column=*/false);
  sim::Executor executor;
  executor.add_sink(sink);
  const auto results = executor.run(plan.expand());
  ASSERT_EQ(results.size(), 1u);

  auto trials = plan.expand();
  auto overlay = trials[0].make_overlay();
  auto strategy = trials[0].make_strategy();
  sim::ScenarioRunner runner(*overlay, *strategy, trials[0].spec);
  const auto materialized = runner.run();
  EXPECT_EQ(streamed.str(), sim::trace_csv(materialized));
  EXPECT_EQ(sim::summary_json(results[0]), sim::summary_json(materialized));
}

TEST(Sinks, MultiSinkFansOutAndAggregateSinkMatchesResults) {
  const auto plan = small_plan();
  sim::AggregateSink agg;
  std::ostringstream json;
  sim::JsonSummarySink json_sink(json);
  sim::MultiSink multi;
  multi.add(agg);
  multi.add(json_sink);

  sim::Executor executor;
  executor.add_sink(multi);
  const auto results = executor.run(plan.expand());

  ASSERT_EQ(agg.rows().size(), results.size());
  std::size_t json_lines = 0;
  for (char c : json.str()) json_lines += c == '\n';
  EXPECT_EQ(json_lines, results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& row = agg.rows()[i];
    EXPECT_EQ(row.info.index, i);
    EXPECT_EQ(row.result.backend, results[i].backend);
    EXPECT_EQ(sim::summary_json(row.result), sim::summary_json(results[i]));
    EXPECT_TRUE(row.result.trace.empty());
  }
}

TEST(Sinks, JsonSummarySinkLeadsWithTrialIndex) {
  sim::ExperimentPlan plan;
  plan.populations = {16};
  plan.seeds = {3, 4};
  plan.base.steps = 8;
  std::ostringstream json;
  sim::JsonSummarySink sink(json);
  sim::Executor executor;
  executor.add_sink(sink);
  executor.run(plan.expand());
  EXPECT_EQ(json.str().rfind("{\"trial\": 0, ", 0), 0u);
  EXPECT_NE(json.str().find("\n{\"trial\": 1, "), std::string::npos);
}

// ------------------------------------------------- flood per-node degree

TEST(FloodOverlay, LoadReportsPerNodeDegreeNotTheBalancedMax) {
  sim::FloodRebuildOverlay overlay(10);
  // Ownership is round-robin over p virtual vertices: every node's degree
  // is 3 * its vertex count, and the counts sum to p.
  std::size_t total = 0;
  std::size_t max_load = 0;
  for (auto u : overlay.alive_nodes()) {
    const std::size_t load = overlay.load(u);
    EXPECT_EQ(load % 3, 0u);
    total += load;
    max_load = std::max(max_load, load);
  }
  EXPECT_EQ(total, 3 * overlay.net().p());
  EXPECT_EQ(max_load, overlay.max_degree());
  // p is prime, so it is never a multiple of n >= 2: the balanced mapping
  // still leaves some node one vertex (3 edges) lighter than the max —
  // exactly the per-node signal the old max-for-everyone report erased.
  bool some_below_max = false;
  for (auto u : overlay.alive_nodes()) {
    some_below_max |= overlay.load(u) < overlay.max_degree();
  }
  EXPECT_TRUE(some_below_max);
  // Churn keeps the invariant.
  overlay.remove(3);
  overlay.insert(0);
  total = 0;
  for (auto u : overlay.alive_nodes()) total += overlay.load(u);
  EXPECT_EQ(total, 3 * overlay.net().p());
}
