// Campaign language tests: the compact-string parser (actionable rejection
// messages, ranges, options, mix weights, replay traces), the schedule
// queries (phase_at / load_at / scaled_ops / total_ops), the code
// combinators, and the summary archiving of the campaign string.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "adversary/campaign.h"
#include "sim/experiment.h"
#include "sim/overlay.h"
#include "sim/scenario.h"

namespace dex {
namespace {

using adversary::CampaignSpec;
using adversary::kOpenEnd;

std::vector<std::string> known() { return sim::known_strategies(); }

std::string parse_error(const std::string& text) {
  std::string error;
  const auto spec = adversary::parse_campaign(text, known(), error);
  EXPECT_FALSE(spec.has_value()) << "spec unexpectedly parsed: " << text;
  EXPECT_FALSE(error.empty()) << "rejection must carry a message: " << text;
  return error;
}

CampaignSpec parse_ok(const std::string& text) {
  std::string error;
  const auto spec = adversary::parse_campaign(text, known(), error);
  EXPECT_TRUE(spec.has_value()) << text << " -> " << error;
  return spec.value_or(CampaignSpec{});
}

TEST(CampaignParse, RejectsMalformedSpecsWithActionableMessages) {
  const struct {
    const char* text;
    const char* expect;  // substring the one-line message must carry
  } kCases[] = {
      {"", "empty campaign spec"},
      {"churn:0-50;;burst:60-", "stray ';'"},
      {"bogus:0-10", "unknown strategy 'bogus'"},
      {"mix(churn*2:0-10", "missing ')'"},
      {"mix():0-10", "bad mix part"},
      {"mix(churn*x):0-10", "bad mix part"},
      {"mix(churn)x:0-10", "trailing junk"},
      {"replay():0-10", "needs a file path"},
      {"replay(/nonexistent/trace.csv):0-10", "trace"},
      {"churn:10-5", "bad range"},
      {"churn:-5", "bad range"},
      {"churn:0-;burst", "open-ended"},
      {"churn;burst", "open-ended"},
      {"churn:0-10,rate=1.5", "rate must be"},
      {"churn:0-10,rate=abc", "rate must be"},
      {"churn:0-10,load=-1", "load must be"},
      {"churn:0-10,diurnal=1", "diurnal must be"},
      {"churn:0-10,bogus=2", "unknown option"},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.text);
    const std::string error = parse_error(c.text);
    EXPECT_NE(error.find(c.expect), std::string::npos)
        << "message was: " << error;
  }
}

TEST(CampaignParse, ErrorsNameTheOffendingPhase) {
  const std::string error = parse_error("churn:0-10;bogus:10-20");
  EXPECT_NE(error.find("phase 2"), std::string::npos) << error;
}

TEST(CampaignParse, UnknownStrategyListsTheValidNames) {
  const std::string error = parse_error("bogus:0-10");
  // The message must be self-serving: every registry name is in it.
  for (const auto& name : known()) {
    EXPECT_NE(error.find(name), std::string::npos)
        << "missing '" << name << "' in: " << error;
  }
}

TEST(CampaignParse, ParsesPhasesRangesAndOptions) {
  const auto spec =
      parse_ok("flash-crowd:0-50;mass-failure:50-60,rate=0.3;burst:60-");
  ASSERT_EQ(spec.phases.size(), 3u);
  EXPECT_EQ(spec.source, "flash-crowd:0-50;mass-failure:50-60,rate=0.3;burst:60-");
  EXPECT_EQ(spec.phases[0].strategy, "flash-crowd");
  EXPECT_EQ(spec.phases[0].begin, 0u);
  EXPECT_EQ(spec.phases[0].end, 50u);
  EXPECT_DOUBLE_EQ(spec.phases[0].rate, 1.0);
  EXPECT_EQ(spec.phases[1].strategy, "mass-failure");
  EXPECT_DOUBLE_EQ(spec.phases[1].rate, 0.3);
  EXPECT_EQ(spec.phases[2].end, kOpenEnd);
  EXPECT_EQ(spec.phase_index_at(49), 0u);
  EXPECT_EQ(spec.phase_index_at(50), 1u);
  EXPECT_EQ(spec.phase_index_at(59), 1u);
  EXPECT_EQ(spec.phase_index_at(60), 2u);
  EXPECT_EQ(spec.phase_index_at(1u << 20), 2u);  // open end runs forever
}

TEST(CampaignParse, OmittedRangeChainsFromPreviousPhase) {
  const auto spec = parse_ok("churn:0-10;burst");
  ASSERT_EQ(spec.phases.size(), 2u);
  EXPECT_EQ(spec.phases[1].begin, 10u);
  EXPECT_EQ(spec.phases[1].end, kOpenEnd);
  // A bare name is a whole campaign too.
  const auto solo = parse_ok("churn");
  ASSERT_EQ(solo.phases.size(), 1u);
  EXPECT_EQ(solo.phases[0].begin, 0u);
  EXPECT_EQ(solo.phases[0].end, kOpenEnd);
}

TEST(CampaignParse, MixParsesWeightsAndDefaults) {
  const auto spec = parse_ok("mix(churn*3+spectral):0-10");
  ASSERT_EQ(spec.phases.size(), 1u);
  ASSERT_TRUE(spec.phases[0].is_mix());
  ASSERT_EQ(spec.phases[0].mix.size(), 2u);
  EXPECT_EQ(spec.phases[0].mix[0].strategy, "churn");
  EXPECT_DOUBLE_EQ(spec.phases[0].mix[0].weight, 3.0);
  EXPECT_EQ(spec.phases[0].mix[1].strategy, "spectral");
  EXPECT_DOUBLE_EQ(spec.phases[0].mix[1].weight, 1.0);
}

TEST(CampaignSchedule, QuietGapsCarryNoChurnAndUnitLoad) {
  const auto spec = parse_ok("churn:0-4,load=2;burst:6-8");
  EXPECT_EQ(spec.phase_index_at(4), CampaignSpec::kNoPhase);
  EXPECT_EQ(spec.phase_index_at(5), CampaignSpec::kNoPhase);
  EXPECT_EQ(spec.phase_index_at(8), CampaignSpec::kNoPhase);
  EXPECT_DOUBLE_EQ(spec.load_at(0), 2.0);
  EXPECT_DOUBLE_EQ(spec.load_at(4), 1.0);
  EXPECT_EQ(spec.scaled_ops(10, 0), 20u);
  EXPECT_EQ(spec.scaled_ops(10, 4), 10u);
  // 4 steps at 20, then 4 quiet/flat steps at 10.
  EXPECT_EQ(spec.total_ops(10, 8), 120u);
}

TEST(CampaignSchedule, DiurnalTriangleRampsToPeakAndBack) {
  const auto spec = parse_ok("churn:0-,load=3,diurnal=4");
  EXPECT_DOUBLE_EQ(spec.load_at(0), 1.0);  // trough at phase start
  EXPECT_DOUBLE_EQ(spec.load_at(1), 2.0);  // halfway up
  EXPECT_DOUBLE_EQ(spec.load_at(2), 3.0);  // peak at half period
  EXPECT_DOUBLE_EQ(spec.load_at(3), 2.0);  // halfway down
  EXPECT_DOUBLE_EQ(spec.load_at(4), 1.0);  // periodic
  EXPECT_EQ(spec.total_ops(10, 4), 10u + 20u + 30u + 20u);
}

TEST(CampaignParse, ReplayLoadsBareAndScenarioTraceFormats) {
  const std::string bare = ::testing::TempDir() + "/campaign_bare_trace.csv";
  {
    std::ofstream out(bare);
    out << "# recorded by hand\n"
        << "insert,5\n"
        << "\n"
        << "delete,3\n";
  }
  const auto spec = parse_ok("replay(" + bare + "):0-4");
  ASSERT_EQ(spec.phases.size(), 1u);
  ASSERT_TRUE(spec.phases[0].is_replay());
  ASSERT_EQ(spec.phases[0].script.size(), 2u);
  EXPECT_TRUE(spec.phases[0].script[0].insert);
  EXPECT_EQ(spec.phases[0].script[0].target, 5u);
  EXPECT_FALSE(spec.phases[0].script[1].insert);
  EXPECT_EQ(spec.phases[0].script[1].target, 3u);

  // The ScenarioRunner's own trace format replays as-is: op/target columns
  // are located by header, batch rows are skipped.
  const std::string trace = ::testing::TempDir() + "/campaign_runner_trace.csv";
  {
    std::ofstream out(trace);
    out << "step,op,target,new_node,n\n"
        << "0,insert,7,9,10\n"
        << "1,batch,,,12\n"
        << "2,delete,4,,11\n";
  }
  const auto spec2 = parse_ok("replay(" + trace + "):0-4");
  ASSERT_EQ(spec2.phases[0].script.size(), 2u);
  EXPECT_TRUE(spec2.phases[0].script[0].insert);
  EXPECT_EQ(spec2.phases[0].script[0].target, 7u);
  EXPECT_FALSE(spec2.phases[0].script[1].insert);
  EXPECT_EQ(spec2.phases[0].script[1].target, 4u);
  std::remove(bare.c_str());
  std::remove(trace.c_str());
}

TEST(CampaignCombinators, SeqChainsRangesLikeTheParser) {
  auto spec = adversary::seq({adversary::phase("churn", 0, 10),
                              adversary::phase("burst"),
                              adversary::mix({{"churn", 2.0}, {"spectral", 1.0}},
                                             20, 30)});
  const auto parsed = parse_ok("churn:0-10;burst:10-;mix(churn*2+spectral):20-30");
  // seq() chains a defaulted range off the previous end exactly like the
  // parser (the middle phase begins at 10, still open-ended); the explicit
  // third phase pins its own range, which the first-match rule shadows.
  ASSERT_EQ(spec.phases.size(), parsed.phases.size());
  for (std::size_t i = 0; i < spec.phases.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(spec.phases[i].strategy, parsed.phases[i].strategy);
    EXPECT_EQ(spec.phases[i].begin, parsed.phases[i].begin);
    EXPECT_EQ(spec.phases[i].end, parsed.phases[i].end);
  }
}

TEST(CampaignRun, SummaryArchivesTheCampaignString) {
  const std::string campaign = "churn:0-2;burst:2-";
  auto overlay = sim::make_overlay("flood", 16, sim::overlay_seed(3));
  auto strategy = sim::make_campaign_strategy(campaign);
  sim::ScenarioSpec spec;
  spec.seed = 3;
  spec.steps = 4;
  spec.batch_size = 2;
  spec.campaign = campaign;
  sim::ScenarioRunner runner(*overlay, *strategy, spec);
  const auto result = runner.run();
  const auto json = sim::summary_json(result);
  EXPECT_NE(json.find("\"campaign\": \"churn:0-2;burst:2-\""),
            std::string::npos)
      << json;
}

TEST(CampaignRun, ParseCampaignSpecWrapsTheRegistry) {
  std::string error;
  EXPECT_TRUE(sim::parse_campaign_spec("churn:0-8;spectral-batch:8-", &error)
                  .has_value())
      << error;
  EXPECT_FALSE(sim::parse_campaign_spec("nope:0-8", &error).has_value());
  EXPECT_NE(error.find("unknown strategy"), std::string::npos);
}

}  // namespace
}  // namespace dex
