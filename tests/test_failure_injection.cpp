// Failure injection: adversarial sequences engineered at the algorithm's
// softest spots — coordinator neighborhoods, freshly repaired nodes,
// rebuild boundaries, interleaved batch/single-step churn — every one of
// which the paper's model permits.

#include <gtest/gtest.h>

#include "dex/batch.h"
#include "dex/dht.h"
#include "dex/network.h"
#include "graph/bfs.h"
#include "support/prng.h"

using dex::DexNetwork;
using dex::NodeId;
using dex::Params;

namespace {

Params mode(dex::RecoveryMode m, std::uint64_t seed) {
  Params p;
  p.seed = seed;
  p.mode = m;
  return p;
}

}  // namespace

TEST(FailureInjection, AssassinateCoordinatorNeighborhood) {
  // Kill every current neighbor of the coordinator, then the coordinator,
  // repeatedly — the replica hand-over (Alg. 4.7) must never lose state.
  DexNetwork net(48, mode(dex::RecoveryMode::WorstCase, 201));
  std::vector<std::uint64_t> ports;
  for (int round = 0; round < 6; ++round) {
    const NodeId coord = net.coordinator();
    net.ports_of(coord, ports);
    std::vector<NodeId> neighbors;
    for (auto t : ports) {
      const auto c = static_cast<NodeId>(t);
      if (c != coord && net.alive(c)) neighbors.push_back(c);
    }
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
    for (NodeId v : neighbors) {
      if (net.n() <= 8) break;
      if (net.alive(v) && v != net.coordinator()) net.remove(v);
    }
    if (net.n() > 8) net.remove(net.coordinator());
    while (net.n() < 48) net.insert(net.alive_nodes().front());
    net.check_invariants();
  }
}

TEST(FailureInjection, KillTheRepairerImmediately) {
  // Delete a node, then immediately delete whichever node absorbed its
  // vertices (the highest-load node is a good proxy for the repairer).
  DexNetwork net(32, mode(dex::RecoveryMode::WorstCase, 202));
  dex::support::Rng rng(1);
  for (int t = 0; t < 60; ++t) {
    const auto nodes = net.alive_nodes();
    net.remove(nodes[rng.below(nodes.size())]);
    NodeId heaviest = net.alive_nodes().front();
    for (NodeId u : net.alive_nodes()) {
      if (net.total_load(u) > net.total_load(heaviest)) heaviest = u;
    }
    net.remove(heaviest);
    net.insert(net.alive_nodes().front());
    net.insert(net.alive_nodes().back());
    net.check_invariants();
  }
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(FailureInjection, KillEveryNewcomerInstantly) {
  // Insert then instantly delete, forever: the spare-vertex pool must not
  // leak (loads return to their pre-insert state).
  DexNetwork net(24, mode(dex::RecoveryMode::WorstCase, 203));
  const auto p_before = net.p();
  for (int t = 0; t < 200; ++t) {
    const NodeId u = net.insert(net.alive_nodes().front());
    net.remove(u);
  }
  net.check_invariants();
  EXPECT_EQ(net.n(), 24u);
  EXPECT_EQ(net.p(), p_before);  // never crossed a rebuild threshold
  EXPECT_EQ(net.inflation_count() + net.deflation_count(), 0u);
}

TEST(FailureInjection, ChurnPinnedToOneAttachPoint) {
  // Every insertion attaches to the same victim node: its degree must still
  // stay bounded (the bootstrap edge is dropped after recovery).
  DexNetwork net(24, mode(dex::RecoveryMode::WorstCase, 204));
  const NodeId pin = net.alive_nodes()[5];
  for (int t = 0; t < 150; ++t) net.insert(pin);
  const auto g = net.snapshot();
  EXPECT_LE(g.degree(pin), 3 * 2 * net.params().max_load());
  net.check_invariants();
}

TEST(FailureInjection, BatchThenSingleStepInterleaving) {
  DexNetwork net(64, mode(dex::RecoveryMode::Amortized, 205));
  dex::support::Rng rng(2);
  for (int round = 0; round < 10; ++round) {
    dex::BatchRequest req;
    const auto nodes = net.alive_nodes();
    for (int i = 0; i < 5; ++i)
      req.attach_to.push_back(nodes[rng.below(nodes.size())]);
    dex::apply_batch(net, req);
    for (int i = 0; i < 5 && net.n() > 16; ++i) {
      net.remove(net.alive_nodes()[rng.below(net.n())]);
    }
    net.check_invariants();
  }
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(FailureInjection, DhtUnderDeflationStaggering) {
  // Drive an actual staggered *deflation* and hammer the DHT through it.
  // (Needs enough scale that the staggered window spans multiple steps —
  // below n ≈ 100 the batch covers the whole cycle in one step.)
  DexNetwork net(256, mode(dex::RecoveryMode::WorstCase, 206));
  dex::Dht dht(net);
  dex::support::Rng rng(3);
  for (std::uint64_t k = 0; k < 64; ++k) dht.put(k, ~k);
  // Grow (forces an inflation), then shrink (forces a deflation).
  while (net.inflation_count() == 0 || net.staggered_active()) {
    net.insert(net.alive_nodes()[rng.below(net.n())]);
  }
  std::size_t mid_deflation_lookups = 0;
  while ((net.deflation_count() == 0 || net.staggered_active()) &&
         net.n() > 8) {
    net.remove(net.alive_nodes()[rng.below(net.n())]);
    if (net.staggered_active() && net.deflation_count() > 0) {
      const std::uint64_t k = rng.below(64);
      ASSERT_EQ(dht.get(k), ~k);
      ++mid_deflation_lookups;
    }
  }
  EXPECT_GT(mid_deflation_lookups, 0u);
  for (std::uint64_t k = 0; k < 64; ++k) EXPECT_EQ(dht.get(k), ~k);
}

TEST(FailureInjection, AlternatingExtremesAcrossThresholds) {
  // Grow 6x, shrink 6x, twice — crosses inflation and deflation in both
  // modes, with invariant audits at the turning points.
  for (auto m : {dex::RecoveryMode::WorstCase, dex::RecoveryMode::Amortized}) {
    DexNetwork net(24, mode(m, 207));
    dex::support::Rng rng(4);
    for (int cycle = 0; cycle < 2; ++cycle) {
      while (net.n() < 144) {
        net.insert(net.alive_nodes()[rng.below(net.n())]);
      }
      net.check_invariants();
      while (net.n() > 24) {
        net.remove(net.alive_nodes()[rng.below(net.n())]);
      }
      net.check_invariants();
    }
    EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
    EXPECT_EQ(net.forced_sync_type2(), 0u)
        << (m == dex::RecoveryMode::WorstCase ? "worst-case" : "amortized");
  }
}
