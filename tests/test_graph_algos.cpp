// BFS / connectivity / diameter, the spectral solver against closed-form
// eigenvalues, conductance and sweep cuts, and the reference generators.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/bfs.h"
#include "graph/conductance.h"
#include "graph/generators.h"
#include "graph/multigraph.h"
#include "graph/spectral.h"

namespace g = dex::graph;

TEST(Bfs, DistancesOnPath) {
  const auto p = g::make_path(5);
  const auto d = g::bfs_distances(p, 0);
  for (g::NodeId u = 0; u < 5; ++u) EXPECT_EQ(d[u], u);
  EXPECT_EQ(g::eccentricity(p, 0), 4u);
  EXPECT_EQ(g::eccentricity(p, 2), 2u);
  EXPECT_EQ(g::diameter(p), 4u);
}

TEST(Bfs, DistancesOnCycle) {
  const auto c = g::make_cycle(8);
  const auto d = g::bfs_distances(c, 0);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(d[7], 1u);
  EXPECT_EQ(g::diameter(c), 4u);
}

TEST(Bfs, AliveMaskRestrictsTraversal) {
  auto p = g::make_path(5);
  std::vector<bool> alive{true, true, false, true, true};
  const auto d = g::bfs_distances(p, 0, alive);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[3], g::kUnreached);
  EXPECT_FALSE(g::is_connected(p, alive));
  alive[2] = true;
  EXPECT_TRUE(g::is_connected(p, alive));
}

TEST(Bfs, DiameterEstimateLowerBoundsAndIsExactOnPaths) {
  const auto p = g::make_path(17);
  EXPECT_EQ(g::diameter_estimate(p), 16u);
  const auto h = g::make_hypercube(5);
  const auto est = g::diameter_estimate(h);
  EXPECT_LE(est, g::diameter(h));
  EXPECT_GE(est, 3u);
}

TEST(Spectral, CompleteGraphClosedForm) {
  // K_n normalized adjacency eigenvalues: 1 and -1/(n-1).
  for (std::size_t n : {4u, 8u, 16u}) {
    const auto k = g::make_complete(n);
    const auto s = g::spectral_gap(k);
    EXPECT_TRUE(s.converged);
    EXPECT_NEAR(s.lambda2, -1.0 / static_cast<double>(n - 1), 1e-6) << n;
  }
}

TEST(Spectral, CycleClosedForm) {
  // C_n normalized adjacency second eigenvalue: cos(2π/n).
  for (std::size_t n : {6u, 12u, 40u}) {
    const auto c = g::make_cycle(n);
    const auto s = g::spectral_gap(c);
    EXPECT_TRUE(s.converged);
    EXPECT_NEAR(s.lambda2, std::cos(2.0 * M_PI / static_cast<double>(n)),
                1e-6)
        << n;
  }
}

TEST(Spectral, HypercubeClosedForm) {
  // Q_d normalized eigenvalues are 1-2k/d; second largest = 1-2/d.
  for (unsigned d : {3u, 5u}) {
    const auto h = g::make_hypercube(d);
    const auto s = g::spectral_gap(h);
    EXPECT_NEAR(s.lambda2, 1.0 - 2.0 / d, 1e-6) << d;
  }
}

TEST(Spectral, PathHasVanishingGap) {
  const auto p = g::make_path(40);
  const auto s = g::spectral_gap(p);
  EXPECT_LT(s.gap, 0.02);  // 1-cos(π/39) ≈ 0.0032
  EXPECT_GT(s.gap, 0.0);
}

TEST(Spectral, RandomRegularIsExpander) {
  dex::support::Rng rng(7);
  const auto r = g::make_random_regular(200, 6, rng);
  const auto s = g::spectral_gap(r);
  // Random 6-regular: lambda2 ≈ 2*sqrt(5)/6 ≈ 0.745 w.h.p.
  EXPECT_GT(s.gap, 0.15);
}

TEST(Spectral, SingleNodeConvention) {
  g::Multigraph one(1);
  one.add_edge(0, 0);
  const auto s = g::spectral_gap(one);
  EXPECT_TRUE(s.converged);
  EXPECT_EQ(s.gap, 1.0);
}

TEST(Conductance, EvaluateCutOnDumbbell) {
  const auto db = g::make_dumbbell(6);
  std::vector<g::NodeId> side;
  for (g::NodeId u = 0; u < 6; ++u) side.push_back(u);
  const auto cut = g::evaluate_cut(db, side);
  EXPECT_EQ(cut.cut_edges, 1u);
  EXPECT_NEAR(cut.edge_expansion, 1.0 / 6.0, 1e-9);
}

TEST(Conductance, SweepCutFindsDumbbellBottleneck) {
  const auto db = g::make_dumbbell(8);
  const auto cut = g::sweep_cut(db);
  EXPECT_EQ(cut.cut_edges, 1u);
  EXPECT_EQ(cut.side.size(), 8u);
}

TEST(Conductance, ExactExpansionMatchesSweepOnSmallGraphs) {
  const auto db = g::make_dumbbell(5);
  const double exact = g::exact_edge_expansion(db);
  const auto sweep = g::sweep_cut(db);
  EXPECT_NEAR(exact, 0.2, 1e-9);  // 1 edge / 5 nodes
  EXPECT_GE(sweep.edge_expansion + 1e-9, exact);  // sweep upper-bounds
}

TEST(Conductance, CheegerSandwich) {
  // gap/2 <= h(G) (Theorem 2). Verify on a few graphs via the exact h.
  for (auto make : {+[] { return g::make_cycle(12); },
                    +[] { return g::make_complete(10); },
                    +[] { return g::make_dumbbell(6); }}) {
    const auto graph = make();
    const auto s = g::spectral_gap(graph);
    const double h = g::exact_edge_expansion(graph);
    // Normalized Cheeger uses conductance; edge expansion >= conductance
    // since vol(S) >= |S| (degrees >= 1). So h >= gap/2 still holds.
    EXPECT_GE(h + 1e-9, s.gap / 2.0);
  }
}

TEST(Generators, RandomRegularDegrees) {
  dex::support::Rng rng(3);
  const auto r = g::make_random_regular(50, 4, rng);
  std::size_t total = 0;
  for (g::NodeId u = 0; u < 50; ++u) total += r.degree(u);
  // Stub pairing: self-loops count 1 port but consume 2 stubs, so the total
  // can fall slightly below n*d; never above.
  EXPECT_LE(total, 200u);
  EXPECT_GE(total, 180u);
}

TEST(Generators, HypercubeStructure) {
  const auto h = g::make_hypercube(4);
  EXPECT_EQ(h.node_count(), 16u);
  for (g::NodeId u = 0; u < 16; ++u) EXPECT_EQ(h.degree(u), 4u);
  EXPECT_TRUE(g::is_connected(h));
  EXPECT_EQ(g::diameter(h), 4u);
}
