// The §5 extension (Corollary 2): batches of up to εn insertions/deletions
// per step, parallel-walk recovery, precondition validation, and cost
// envelopes (O(n log² n) messages / O(log³ n) rounds per batch).

#include <gtest/gtest.h>

#include <cmath>

#include "dex/batch.h"
#include "dex/network.h"
#include "graph/bfs.h"
#include "support/prng.h"

using dex::BatchRequest;
using dex::DexNetwork;
using dex::NodeId;
using dex::Params;

namespace {

Params amortized(std::uint64_t seed) {
  Params p;
  p.seed = seed;
  p.mode = dex::RecoveryMode::Amortized;
  return p;
}

}  // namespace

TEST(Batch, BulkInsertions) {
  DexNetwork net(64, amortized(71));
  dex::support::Rng rng(1);
  BatchRequest req;
  const auto nodes = net.alive_nodes();
  for (int i = 0; i < 8; ++i)
    req.attach_to.push_back(nodes[rng.below(nodes.size())]);
  const auto res = dex::apply_batch(net, req);
  EXPECT_EQ(res.inserted.size(), 8u);
  EXPECT_EQ(net.n(), 72u);
  net.check_invariants();
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(Batch, BulkDeletions) {
  DexNetwork net(64, amortized(72));
  BatchRequest req;
  for (NodeId v = 0; v < 8; ++v) req.deletions.push_back(v);
  const auto res = dex::apply_batch(net, req);
  EXPECT_EQ(net.n(), 56u);
  EXPECT_GT(res.walk_epochs, 0u);
  net.check_invariants();
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(Batch, MixedBatch) {
  DexNetwork net(64, amortized(73));
  BatchRequest req;
  for (NodeId v = 0; v < 4; ++v) req.deletions.push_back(v);
  for (NodeId a = 20; a < 26; ++a) req.attach_to.push_back(a);
  const auto res = dex::apply_batch(net, req);
  EXPECT_EQ(res.inserted.size(), 6u);
  EXPECT_EQ(net.n(), 66u);
  net.check_invariants();
}

TEST(Batch, RepeatedBatchesWithInflation) {
  DexNetwork net(32, amortized(74));
  dex::support::Rng rng(2);
  bool saw_type2 = false;
  for (int round = 0; round < 30; ++round) {
    BatchRequest req;
    const auto nodes = net.alive_nodes();
    const std::size_t eps = std::max<std::size_t>(2, net.n() / 16);
    for (std::size_t i = 0; i < eps; ++i)
      req.attach_to.push_back(nodes[rng.below(nodes.size())]);
    const auto res = dex::apply_batch(net, req);
    saw_type2 = saw_type2 || res.used_type2;
    net.check_invariants();
  }
  EXPECT_TRUE(saw_type2) << "growth batches should eventually inflate";
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(Batch, ShrinkingBatchesWithDeflation) {
  DexNetwork net(32, amortized(75));
  dex::support::Rng rng(3);
  // Grow substantially first.
  for (int round = 0; round < 25; ++round) {
    BatchRequest req;
    const auto nodes = net.alive_nodes();
    for (std::size_t i = 0; i < std::max<std::size_t>(2, net.n() / 12); ++i)
      req.attach_to.push_back(nodes[rng.below(nodes.size())]);
    dex::apply_batch(net, req);
  }
  const auto peak = net.n();
  bool saw_type2 = false;
  while (net.n() > peak / 8 && net.n() > 16) {
    BatchRequest req;
    const auto nodes = net.alive_nodes();
    const std::size_t eps = std::max<std::size_t>(2, net.n() / 16);
    for (std::size_t i = 0; i < eps && i < nodes.size() - 8; ++i)
      req.deletions.push_back(nodes[i]);
    const auto res = dex::apply_batch(net, req);
    saw_type2 = saw_type2 || res.used_type2;
    net.check_invariants();
  }
  EXPECT_TRUE(saw_type2) << "shrink batches should eventually deflate";
}

TEST(Batch, CostEnvelopeCorollary2) {
  DexNetwork net(256, amortized(76));
  dex::support::Rng rng(4);
  BatchRequest req;
  const auto nodes = net.alive_nodes();
  for (int i = 0; i < 16; ++i)
    req.attach_to.push_back(nodes[rng.below(nodes.size())]);
  for (int i = 0; i < 16; ++i) req.deletions.push_back(nodes[200 + i]);
  const auto res = dex::apply_batch(net, req);
  const double n = static_cast<double>(net.n());
  const double lg = std::log2(n);
  // Cor. 2: O(n log² n) messages, O(log³ n) rounds (generous constants).
  EXPECT_LT(static_cast<double>(res.cost.messages), 20.0 * n * lg * lg);
  EXPECT_LT(static_cast<double>(res.cost.rounds), 60.0 * lg * lg * lg);
}

TEST(Batch, RejectsDeletionsThatDisconnect) {
  DexNetwork net(16, amortized(77));
  BatchRequest req;
  // Deleting almost everyone cannot leave each victim a surviving neighbor
  // and a connected remainder.
  for (NodeId v = 0; v < 14; ++v) req.deletions.push_back(v);
  EXPECT_DEATH(dex::apply_batch(net, req), "");
}

TEST(Batch, RejectsDuplicateVictims) {
  DexNetwork net(16, amortized(78));
  BatchRequest req;
  req.deletions = {3, 3};
  EXPECT_DEATH(dex::apply_batch(net, req), "duplicate");
}

TEST(Batch, RejectsAttachToVictim) {
  DexNetwork net(16, amortized(79));
  BatchRequest req;
  req.deletions = {3};
  req.attach_to = {3};
  EXPECT_DEATH(dex::apply_batch(net, req), "survive");
}

TEST(Batch, EmptyBatchIsNoop) {
  DexNetwork net(16, amortized(80));
  const auto res = dex::apply_batch(net, BatchRequest{});
  EXPECT_EQ(res.inserted.size(), 0u);
  EXPECT_EQ(net.n(), 16u);
  net.check_invariants();
}
