// DHT on top of DEX (§4.4.4): correctness of put/get/erase under churn,
// O(log n) routing cost, survival across type-2 rebuilds (both modes,
// including operations issued *mid-staggering*), and key load balance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "dex/dht.h"
#include "dex/network.h"
#include "support/prng.h"

using dex::DexNetwork;
using dex::Dht;
using dex::Params;

namespace {

Params mode(dex::RecoveryMode m, std::uint64_t seed) {
  Params p;
  p.seed = seed;
  p.mode = m;
  return p;
}

}  // namespace

TEST(Dht, PutGetRoundTrip) {
  DexNetwork net(32, mode(dex::RecoveryMode::WorstCase, 61));
  Dht dht(net);
  for (std::uint64_t k = 0; k < 100; ++k) dht.put(k, k * k);
  EXPECT_EQ(dht.size(), 100u);
  for (std::uint64_t k = 0; k < 100; ++k) {
    const auto v = dht.get(k);
    ASSERT_TRUE(v.has_value()) << k;
    EXPECT_EQ(*v, k * k);
  }
  EXPECT_FALSE(dht.get(1234567).has_value());
}

TEST(Dht, OverwriteAndErase) {
  DexNetwork net(16, mode(dex::RecoveryMode::WorstCase, 62));
  Dht dht(net);
  dht.put(7, 1);
  dht.put(7, 2);
  EXPECT_EQ(dht.size(), 1u);
  EXPECT_EQ(dht.get(7), 2u);
  EXPECT_TRUE(dht.erase(7));
  EXPECT_FALSE(dht.erase(7));
  EXPECT_EQ(dht.size(), 0u);
  EXPECT_FALSE(dht.get(7).has_value());
}

TEST(Dht, OperationCostIsLogarithmic) {
  DexNetwork net(256, mode(dex::RecoveryMode::WorstCase, 63));
  Dht dht(net);
  const double limit = 4.0 * std::log2(static_cast<double>(net.p()));
  for (std::uint64_t k = 0; k < 200; ++k) {
    dht.put(k, k);
    EXPECT_LT(static_cast<double>(dht.last_cost().messages), limit);
    (void)dht.get(k);
    EXPECT_LT(static_cast<double>(dht.last_cost().messages), 2 * limit);
  }
}

TEST(Dht, SurvivesChurn) {
  DexNetwork net(32, mode(dex::RecoveryMode::WorstCase, 64));
  Dht dht(net);
  dex::support::Rng rng(1);
  std::unordered_map<std::uint64_t, std::uint64_t> oracle;
  for (std::uint64_t k = 0; k < 64; ++k) {
    dht.put(k, k + 1000);
    oracle[k] = k + 1000;
  }
  for (int t = 0; t < 400; ++t) {
    const auto nodes = net.alive_nodes();
    if (rng.chance(0.5) || net.n() < 16) {
      net.insert(nodes[rng.below(nodes.size())]);
    } else {
      net.remove(nodes[rng.below(nodes.size())]);
    }
    if (t % 10 == 0) {
      const std::uint64_t k = rng.below(64);
      const auto v = dht.get(k);
      ASSERT_TRUE(v.has_value()) << "lost key " << k << " at step " << t;
      EXPECT_EQ(*v, oracle[k]);
    }
  }
  for (const auto& [k, v] : oracle) EXPECT_EQ(dht.get(k), v);
}

TEST(Dht, SurvivesAmortizedRebuilds) {
  DexNetwork net(16, mode(dex::RecoveryMode::Amortized, 65));
  Dht dht(net);
  for (std::uint64_t k = 0; k < 50; ++k) dht.put(k, 7 * k);
  const auto e0 = net.cycle_epoch();
  net.force_simplified_inflate();
  ASSERT_GT(net.cycle_epoch(), e0);
  for (std::uint64_t k = 0; k < 50; ++k) EXPECT_EQ(dht.get(k), 7 * k);
  EXPECT_GE(dht.rehash_count(), 1u);
  EXPECT_GT(dht.rehash_messages(), 0u);
}

TEST(Dht, LookupsDuringStaggeredRebuild) {
  DexNetwork net(32, mode(dex::RecoveryMode::WorstCase, 66));
  Dht dht(net);
  dex::support::Rng rng(2);
  for (std::uint64_t k = 0; k < 40; ++k) dht.put(k, k ^ 0xabc);
  // Drive into a staggered inflation and query mid-flight.
  std::size_t mid_flight_checks = 0;
  for (int t = 0; t < 6000 && mid_flight_checks < 30; ++t) {
    const auto nodes = net.alive_nodes();
    net.insert(nodes[rng.below(nodes.size())]);
    if (net.staggered_active()) {
      const std::uint64_t k = rng.below(40);
      ASSERT_EQ(dht.get(k), k ^ 0xabc) << "mid-staggering lookup failed";
      ++mid_flight_checks;
    }
  }
  EXPECT_GE(mid_flight_checks, 30u) << "staggering never observed";
  for (std::uint64_t k = 0; k < 40; ++k) EXPECT_EQ(dht.get(k), k ^ 0xabc);
}

TEST(Dht, KeysAreLoadBalanced) {
  DexNetwork net(64, mode(dex::RecoveryMode::WorstCase, 67));
  Dht dht(net);
  const std::size_t kKeys = 6400;
  for (std::uint64_t k = 0; k < kKeys; ++k) dht.put(k, k);
  const auto per_node = dht.items_per_alive_node();
  ASSERT_EQ(per_node.size(), net.n());
  const double mean = static_cast<double>(kKeys) / static_cast<double>(net.n());
  std::size_t max_items = 0;
  for (auto c : per_node) max_items = std::max(max_items, c);
  // Loads are within a small factor of the mean (4ζ vertices max per node,
  // uniform hash): generous factor 6 for randomness at this scale.
  EXPECT_LT(static_cast<double>(max_items), 6.0 * mean);
}

TEST(Dht, OriginParameterIsRespected) {
  DexNetwork net(32, mode(dex::RecoveryMode::WorstCase, 68));
  Dht dht(net);
  const auto nodes = net.alive_nodes();
  dht.put(1, 10, nodes[3]);
  EXPECT_EQ(dht.get(1, nodes[5]), 10u);
  // Dead origin falls back to a live proxy.
  net.remove(nodes[3]);
  EXPECT_EQ(dht.get(1, nodes[3]), 10u);
}

TEST(Dht, ChurnedOutOriginRoutesFromSpreadLiveProxies) {
  // Regression: operations whose origin has been churned out must route
  // from a live proxy, and the proxy choice must spread across the network
  // rather than funnel every stale origin through one fixed node (the old
  // coordinator fallback made dead-origin cost a constant, independent of
  // the origin — the signature this test rejects).
  DexNetwork net(64, mode(dex::RecoveryMode::WorstCase, 69));
  Dht dht(net);
  dex::support::Rng rng(5);
  for (std::uint64_t k = 0; k < 32; ++k) dht.put(k, k + 7);

  std::vector<dex::NodeId> dead;
  while (dead.size() < 12) {
    const auto nodes = net.alive_nodes();
    const auto victim = nodes[rng.below(nodes.size())];
    net.remove(victim);
    dead.push_back(victim);
  }

  std::vector<std::uint64_t> costs;
  for (const auto origin : dead) {
    ASSERT_FALSE(net.alive(origin));
    for (std::uint64_t k = 0; k < 32; ++k) {
      ASSERT_EQ(dht.get(k, origin), k + 7) << "origin " << origin;
    }
    // All 32 keys from one stale origin share one proxy; the per-origin
    // total is a fingerprint of where that proxy sits.
    std::uint64_t total = 0;
    for (std::uint64_t k = 0; k < 32; ++k) {
      dht.put(k, k + 7, origin);
      total += dht.last_cost().messages;
    }
    costs.push_back(total);
  }
  // At least two distinct stale origins must resolve to distinct places in
  // the topology (a single shared proxy yields identical totals).
  std::sort(costs.begin(), costs.end());
  EXPECT_GT(costs.back(), costs.front());
}
