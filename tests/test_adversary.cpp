// Adversary strategies (§2's adaptive adversary): each strategy respects
// population bounds, targets what it claims to target, and the spectral
// attack actually damages a probabilistic overlay while DEX heals.

#include <gtest/gtest.h>

#include "adversary/adversary.h"
#include "baselines/law_siu.h"
#include "dex/network.h"
#include "graph/spectral.h"

namespace adv = dex::adversary;

namespace {

adv::AdversaryView view_of(dex::DexNetwork& net) {
  return adv::AdversaryView{
      [&net] { return net.n(); },
      [&net] { return net.alive_nodes(); },
      [&net] { return net.snapshot(); },
      [&net] { return net.alive_mask(); },
      [&net](adv::NodeId u) {
        return static_cast<std::size_t>(net.total_load(u));
      },
      [&net] { return net.coordinator(); },
      {},
  };
}

adv::AdversaryView view_of(dex::baselines::LawSiuNetwork& net) {
  return adv::AdversaryView{
      [&net] { return net.n(); },
      [&net] { return net.alive_nodes(); },
      [&net] { return net.snapshot(); },
      [&net] { return net.alive_mask(); },
      [&net](adv::NodeId u) { return net.degree(u); },
      [] { return dex::graph::kInvalidNode; },
      {},
  };
}

template <class Net>
void drive(Net& net, adv::Strategy& strat, adv::AdversaryView& view,
           dex::support::Rng& rng, int steps, std::size_t min_n,
           std::size_t max_n);

void apply_action(dex::DexNetwork& net, const adv::ChurnAction& a) {
  if (a.insert) {
    net.insert(a.target);
  } else {
    net.remove(a.target);
  }
}

void apply_action(dex::baselines::LawSiuNetwork& net,
                  const adv::ChurnAction& a) {
  if (a.insert) {
    net.insert();
  } else {
    net.remove(a.target);
  }
}

template <class Net>
void drive(Net& net, adv::Strategy& strat, adv::AdversaryView& view,
           dex::support::Rng& rng, int steps, std::size_t min_n,
           std::size_t max_n) {
  for (int t = 0; t < steps; ++t) {
    apply_action(net, strat.next(view, rng, min_n, max_n));
  }
}

}  // namespace

TEST(Adversary, RandomChurnRespectsBounds) {
  dex::Params prm;
  prm.seed = 91;
  dex::DexNetwork net(32, prm);
  auto view = view_of(net);
  adv::RandomChurn strat(0.5);
  dex::support::Rng rng(1);
  drive(net, strat, view, rng, 300, 16, 64);
  EXPECT_GE(net.n(), 16u);
  EXPECT_LE(net.n(), 64u);
  net.check_invariants();
}

TEST(Adversary, InsertOnlyGrows) {
  dex::Params prm;
  prm.seed = 92;
  dex::DexNetwork net(16, prm);
  auto view = view_of(net);
  adv::InsertOnly strat;
  dex::support::Rng rng(2);
  drive(net, strat, view, rng, 50, 2, 1000000);
  EXPECT_EQ(net.n(), 66u);
}

TEST(Adversary, DeleteOnlyShrinksToFloor) {
  dex::Params prm;
  prm.seed = 93;
  dex::DexNetwork net(64, prm);
  auto view = view_of(net);
  adv::DeleteOnly strat;
  dex::support::Rng rng(3);
  drive(net, strat, view, rng, 200, 16, 1000000);
  EXPECT_EQ(net.n(), 16u);  // clamps at min_n (inserts when forced)
  net.check_invariants();
}

TEST(Adversary, OscillateAlternates) {
  dex::Params prm;
  prm.seed = 94;
  dex::DexNetwork net(32, prm);
  auto view = view_of(net);
  adv::Oscillate strat(10);
  dex::support::Rng rng(4);
  drive(net, strat, view, rng, 200, 8, 128);
  EXPECT_GE(net.n(), 8u);
  EXPECT_LE(net.n(), 128u);
  net.check_invariants();
}

TEST(Adversary, CoordinatorKillerActuallyKillsCoordinators) {
  dex::Params prm;
  prm.seed = 95;
  dex::DexNetwork net(32, prm);
  auto view = view_of(net);
  adv::CoordinatorKiller strat;
  dex::support::Rng rng(5);
  std::size_t coordinator_kills = 0;
  for (int t = 0; t < 100; ++t) {
    const auto a = strat.next(view, rng, 8, 64);
    if (!a.insert && a.target == net.coordinator()) ++coordinator_kills;
    apply_action(net, a);
  }
  EXPECT_GT(coordinator_kills, 20u);
  net.check_invariants();  // DEX shrugs it off
}

TEST(Adversary, LoadAttackTargetsHeaviest) {
  dex::Params prm;
  prm.seed = 96;
  dex::DexNetwork net(32, prm);
  auto view = view_of(net);
  adv::LoadAttack strat;
  dex::support::Rng rng(6);
  drive(net, strat, view, rng, 300, 8, 128);
  net.check_invariants();
  // Balanced mapping survives the targeted attack.
  for (auto u : net.alive_nodes()) {
    EXPECT_LE(net.mapping().load(u), net.params().max_load());
  }
}

TEST(Adversary, ScriptedReplaysExactly) {
  dex::Params prm;
  prm.seed = 97;
  dex::DexNetwork net(8, prm);
  auto view = view_of(net);
  adv::Scripted strat({{true, 0}, {true, 1}, {false, 2}});
  dex::support::Rng rng(7);
  apply_action(net, strat.next(view, rng, 2, 100));
  apply_action(net, strat.next(view, rng, 2, 100));
  apply_action(net, strat.next(view, rng, 2, 100));
  EXPECT_EQ(net.n(), 9u);
  EXPECT_FALSE(net.alive(2));
  EXPECT_DEATH(strat.next(view, rng, 2, 100), "exhausted");
}

TEST(Adversary, SweepCutAttackRunsOnBothNetworks) {
  // Smoke test for the sweep-cut strategy: bounds respected, DEX invariants
  // survive (the decisive degradation contrast uses the greedy strategy
  // below and bench E4).
  dex::Params prm;
  prm.seed = 99;
  dex::DexNetwork net(64, prm);
  auto view = view_of(net);
  adv::SpectralAttack strat(8);
  dex::support::Rng rng(8);
  drive(net, strat, view, rng, 120, 16, 256);
  net.check_invariants();
  EXPECT_GE(net.n(), 16u);
}

TEST(Adversary, GreedySpectralDeletionDegradesLawSiuButNotDex) {
  // The headline adaptive-adversary contrast (paper §1 + Table 1 col. 1):
  // the unbounded adversary picks each victim by evaluating the post-splice
  // spectral gap. Law–Siu's probabilistic expansion collapses; DEX's
  // deterministic maintenance holds its floor.
  dex::baselines::LawSiuNetwork lawsiu(160, 2, 98);
  auto lview = view_of(lawsiu);
  lview.snapshot_without = [&lawsiu](adv::NodeId v) {
    return lawsiu.snapshot_without(v);
  };
  adv::GreedySpectralDeletion attack_ls(24);
  dex::support::Rng rng(8);
  const double ls_gap0 =
      dex::graph::spectral_gap(lawsiu.snapshot(), lawsiu.alive_mask()).gap;
  for (int t = 0; t < 100; ++t) {
    apply_action(lawsiu, attack_ls.next(lview, rng, 40, 256));
  }
  const double ls_gap1 =
      dex::graph::spectral_gap(lawsiu.snapshot(), lawsiu.alive_mask()).gap;

  dex::Params prm;
  prm.seed = 99;
  dex::DexNetwork net(160, prm);
  auto dview = view_of(net);
  adv::GreedySpectralDeletion attack_dex(24);
  for (int t = 0; t < 100; ++t) {
    apply_action(net, attack_dex.next(dview, rng, 40, 256));
  }
  const double dex_gap =
      dex::graph::spectral_gap(net.snapshot(), net.alive_mask()).gap;

  EXPECT_LT(ls_gap1, 0.5 * ls_gap0);
  EXPECT_GT(dex_gap, 0.02);
  net.check_invariants();
}
