// Adversary strategies (§2's adaptive adversary): each strategy respects
// population bounds, targets what it claims to target, and the spectral
// attack actually damages a probabilistic overlay while DEX heals.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "adversary/adversary.h"
#include "baselines/law_siu.h"
#include "dex/network.h"
#include "graph/bfs.h"
#include "graph/spectral.h"

namespace adv = dex::adversary;

namespace {

adv::AdversaryView view_of(dex::DexNetwork& net) {
  return adv::AdversaryView{
      [&net] { return net.n(); },
      [&net] { return net.alive_nodes(); },
      [&net] { return net.snapshot(); },
      [&net] { return net.alive_mask(); },
      [&net](adv::NodeId u) {
        return static_cast<std::size_t>(net.total_load(u));
      },
      [&net] { return net.coordinator(); },
      {},
  };
}

adv::AdversaryView view_of(dex::baselines::LawSiuNetwork& net) {
  return adv::AdversaryView{
      [&net] { return net.n(); },
      [&net] { return net.alive_nodes(); },
      [&net] { return net.snapshot(); },
      [&net] { return net.alive_mask(); },
      [&net](adv::NodeId u) { return net.degree(u); },
      [] { return dex::graph::kInvalidNode; },
      {},
  };
}

template <class Net>
void drive(Net& net, adv::Strategy& strat, adv::AdversaryView& view,
           dex::support::Rng& rng, int steps, std::size_t min_n,
           std::size_t max_n);

void apply_action(dex::DexNetwork& net, const adv::ChurnAction& a) {
  if (a.insert) {
    net.insert(a.target);
  } else {
    net.remove(a.target);
  }
}

void apply_action(dex::baselines::LawSiuNetwork& net,
                  const adv::ChurnAction& a) {
  if (a.insert) {
    net.insert();
  } else {
    net.remove(a.target);
  }
}

template <class Net>
void drive(Net& net, adv::Strategy& strat, adv::AdversaryView& view,
           dex::support::Rng& rng, int steps, std::size_t min_n,
           std::size_t max_n) {
  for (int t = 0; t < steps; ++t) {
    apply_action(net, strat.next(view, rng, min_n, max_n));
  }
}

}  // namespace

TEST(Adversary, RandomChurnRespectsBounds) {
  dex::Params prm;
  prm.seed = 91;
  dex::DexNetwork net(32, prm);
  auto view = view_of(net);
  adv::RandomChurn strat(0.5);
  dex::support::Rng rng(1);
  drive(net, strat, view, rng, 300, 16, 64);
  EXPECT_GE(net.n(), 16u);
  EXPECT_LE(net.n(), 64u);
  net.check_invariants();
}

TEST(Adversary, InsertOnlyGrows) {
  dex::Params prm;
  prm.seed = 92;
  dex::DexNetwork net(16, prm);
  auto view = view_of(net);
  adv::InsertOnly strat;
  dex::support::Rng rng(2);
  drive(net, strat, view, rng, 50, 2, 1000000);
  EXPECT_EQ(net.n(), 66u);
}

TEST(Adversary, DeleteOnlyShrinksToFloor) {
  dex::Params prm;
  prm.seed = 93;
  dex::DexNetwork net(64, prm);
  auto view = view_of(net);
  adv::DeleteOnly strat;
  dex::support::Rng rng(3);
  drive(net, strat, view, rng, 200, 16, 1000000);
  EXPECT_EQ(net.n(), 16u);  // clamps at min_n (inserts when forced)
  net.check_invariants();
}

TEST(Adversary, OscillateAlternates) {
  dex::Params prm;
  prm.seed = 94;
  dex::DexNetwork net(32, prm);
  auto view = view_of(net);
  adv::Oscillate strat(10);
  dex::support::Rng rng(4);
  drive(net, strat, view, rng, 200, 8, 128);
  EXPECT_GE(net.n(), 8u);
  EXPECT_LE(net.n(), 128u);
  net.check_invariants();
}

TEST(Adversary, CoordinatorKillerActuallyKillsCoordinators) {
  dex::Params prm;
  prm.seed = 95;
  dex::DexNetwork net(32, prm);
  auto view = view_of(net);
  adv::CoordinatorKiller strat;
  dex::support::Rng rng(5);
  std::size_t coordinator_kills = 0;
  for (int t = 0; t < 100; ++t) {
    const auto a = strat.next(view, rng, 8, 64);
    if (!a.insert && a.target == net.coordinator()) ++coordinator_kills;
    apply_action(net, a);
  }
  EXPECT_GT(coordinator_kills, 20u);
  net.check_invariants();  // DEX shrugs it off
}

TEST(Adversary, LoadAttackTargetsHeaviest) {
  dex::Params prm;
  prm.seed = 96;
  dex::DexNetwork net(32, prm);
  auto view = view_of(net);
  adv::LoadAttack strat;
  dex::support::Rng rng(6);
  drive(net, strat, view, rng, 300, 8, 128);
  net.check_invariants();
  // Balanced mapping survives the targeted attack.
  for (auto u : net.alive_nodes()) {
    EXPECT_LE(net.mapping().load(u), net.params().max_load());
  }
}

TEST(Adversary, ScriptedReplaysExactly) {
  dex::Params prm;
  prm.seed = 97;
  dex::DexNetwork net(8, prm);
  auto view = view_of(net);
  adv::Scripted strat({{true, 0}, {true, 1}, {false, 2}});
  dex::support::Rng rng(7);
  apply_action(net, strat.next(view, rng, 2, 100));
  apply_action(net, strat.next(view, rng, 2, 100));
  apply_action(net, strat.next(view, rng, 2, 100));
  EXPECT_EQ(net.n(), 9u);
  EXPECT_FALSE(net.alive(2));
  EXPECT_DEATH(strat.next(view, rng, 2, 100), "exhausted");
}

TEST(Adversary, SweepCutAttackRunsOnBothNetworks) {
  // Smoke test for the sweep-cut strategy: bounds respected, DEX invariants
  // survive (the decisive degradation contrast uses the greedy strategy
  // below and bench E4).
  dex::Params prm;
  prm.seed = 99;
  dex::DexNetwork net(64, prm);
  auto view = view_of(net);
  adv::SpectralAttack strat(8);
  dex::support::Rng rng(8);
  drive(net, strat, view, rng, 120, 16, 256);
  net.check_invariants();
  EXPECT_GE(net.n(), 16u);
}

TEST(Adversary, GreedySpectralDeletionDegradesLawSiuButNotDex) {
  // The headline adaptive-adversary contrast (paper §1 + Table 1 col. 1):
  // the unbounded adversary picks each victim by evaluating the post-splice
  // spectral gap. Law–Siu's probabilistic expansion collapses; DEX's
  // deterministic maintenance holds its floor.
  dex::baselines::LawSiuNetwork lawsiu(160, 2, 98);
  auto lview = view_of(lawsiu);
  lview.snapshot_without = [&lawsiu](adv::NodeId v) {
    return lawsiu.snapshot_without(v);
  };
  adv::GreedySpectralDeletion attack_ls(24);
  dex::support::Rng rng(8);
  const double ls_gap0 =
      dex::graph::spectral_gap(lawsiu.snapshot(), lawsiu.alive_mask()).gap;
  for (int t = 0; t < 100; ++t) {
    apply_action(lawsiu, attack_ls.next(lview, rng, 40, 256));
  }
  const double ls_gap1 =
      dex::graph::spectral_gap(lawsiu.snapshot(), lawsiu.alive_mask()).gap;

  dex::Params prm;
  prm.seed = 99;
  dex::DexNetwork net(160, prm);
  auto dview = view_of(net);
  adv::GreedySpectralDeletion attack_dex(24);
  for (int t = 0; t < 100; ++t) {
    apply_action(net, attack_dex.next(dview, rng, 40, 256));
  }
  const double dex_gap =
      dex::graph::spectral_gap(net.snapshot(), net.alive_mask()).gap;

  EXPECT_LT(ls_gap1, 0.5 * ls_gap0);
  EXPECT_GT(dex_gap, 0.02);
  net.check_invariants();
}

// ------------------------------------------------- batch decision surface

TEST(AdversaryBatch, DefaultWrapperProducesSelfConsistentBatches) {
  dex::Params prm;
  prm.seed = 101;
  dex::DexNetwork net(32, prm);
  auto view = view_of(net);
  adv::RandomChurn strat(0.5);
  dex::support::Rng rng(9);
  const auto batch = strat.next_batch(view, rng, 8, 64, 12);
  EXPECT_LE(batch.size(), 12u);
  // Victims distinct, alive, disjoint from attach points.
  for (std::size_t i = 0; i < batch.victims.size(); ++i) {
    EXPECT_TRUE(net.alive(batch.victims[i]));
    for (std::size_t j = i + 1; j < batch.victims.size(); ++j)
      EXPECT_NE(batch.victims[i], batch.victims[j]);
  }
  for (auto a : batch.attach_to) {
    EXPECT_TRUE(net.alive(a));
    EXPECT_EQ(std::find(batch.victims.begin(), batch.victims.end(), a),
              batch.victims.end());
  }
  // Population projection respects the bounds.
  EXPECT_GE(net.n() - batch.victims.size(), 8u);
  EXPECT_LE(net.n() + batch.attach_to.size(), 64u);
}

TEST(AdversaryBatch, DefaultWrapperHonorsBoundsUnderPressure) {
  dex::Params prm;
  prm.seed = 102;
  dex::DexNetwork net(16, prm);
  auto view = view_of(net);
  dex::support::Rng rng(10);
  // Insert-only at a tight cap: at most max_n - n inserts may come back.
  adv::InsertOnly grow;
  const auto b1 = grow.next_batch(view, rng, 4, 18, 10);
  EXPECT_LE(b1.attach_to.size(), 2u);
  EXPECT_TRUE(b1.victims.empty());
  // Delete-only at a floor just below n: only n - floor deletions fit.
  adv::DeleteOnly shrink;
  const auto b2 = shrink.next_batch(view, rng, 14, 64, 10);
  EXPECT_LE(b2.victims.size(), 2u);
}

TEST(AdversaryBatch, SampleSafeVictimsKeepsSurvivorsConnected) {
  dex::Params prm;
  prm.seed = 103;
  dex::DexNetwork net(48, prm);
  const auto g = net.snapshot();
  const auto mask = net.alive_mask();
  const auto victims =
      adv::sample_safe_victims(g, mask, net.alive_nodes(), 8);
  EXPECT_GE(victims.size(), 1u);
  auto after = mask;
  for (auto v : victims) after[v] = false;
  EXPECT_TRUE(dex::graph::is_connected(g, after));
  // Every victim keeps a surviving neighbor.
  for (auto v : victims) {
    bool has_survivor = false;
    for (auto w : g.ports(v)) has_survivor = has_survivor || (w != v && after[w]);
    EXPECT_TRUE(has_survivor) << v;
  }
}

TEST(AdversaryBatch, FlashCrowdWavesInsertThenMakeRoom) {
  dex::Params prm;
  prm.seed = 104;
  dex::DexNetwork net(16, prm);
  auto view = view_of(net);
  adv::FlashCrowd strat;
  dex::support::Rng rng(11);
  const auto wave = strat.next_batch(view, rng, 8, 64, 12);
  EXPECT_EQ(wave.victims.size(), 0u);
  EXPECT_GT(wave.attach_to.size(), 0u);
  // Attach multiplicity stays under the §5 cap.
  for (auto a : wave.attach_to) {
    const auto copies = static_cast<std::size_t>(
        std::count(wave.attach_to.begin(), wave.attach_to.end(), a));
    EXPECT_LE(copies, dex::sim::kMaxAttachPerNode);
  }
  // At the cap the crowd departs instead.
  const auto full = strat.next_batch(view, rng, 8, 16, 12);
  EXPECT_TRUE(full.attach_to.empty());
  EXPECT_GT(full.victims.size(), 0u);
}

TEST(AdversaryBatch, CorrelatedFailureRespectsPreconditionsAndFloor) {
  dex::Params prm;
  prm.seed = 105;
  dex::DexNetwork net(48, prm);
  auto view = view_of(net);
  adv::CorrelatedFailure strat;
  dex::support::Rng rng(12);
  const auto batch = strat.next_batch(view, rng, 16, 128, 10);
  EXPECT_TRUE(batch.attach_to.empty());
  EXPECT_GE(net.n() - batch.victims.size(), 16u);
  auto mask = net.alive_mask();
  for (auto v : batch.victims) mask[v] = false;
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), mask));
  // At the floor it recovers with insertions instead of deleting.
  const auto floor_batch = strat.next_batch(view, rng, 48, 128, 10);
  EXPECT_TRUE(floor_batch.victims.empty());
  EXPECT_GT(floor_batch.attach_to.size(), 0u);
}

TEST(AdversaryBatch, ScriptedBatchesReplayVerbatimAndAbortWhenExhausted) {
  dex::Params prm;
  prm.seed = 106;
  dex::DexNetwork net(8, prm);
  auto view = view_of(net);
  dex::support::Rng rng(13);
  adv::Scripted strat({{true, 0}, {false, 3}, {true, 1}, {false, 4}});
  EXPECT_EQ(strat.remaining(), 4u);
  const auto batch = strat.next_batch(view, rng, 2, 100, 3);
  EXPECT_EQ(batch.attach_to, (std::vector<adv::NodeId>{0, 1}));
  EXPECT_EQ(batch.victims, (std::vector<adv::NodeId>{3}));
  EXPECT_EQ(strat.remaining(), 1u);
  EXPECT_DEATH(strat.next_batch(view, rng, 2, 100, 2), "exhausted");
}
