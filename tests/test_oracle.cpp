// The route/placement oracle layer (graph/csr.h + sim/oracle.h): the flat
// CSR live view must agree with the Multigraph + mask it was built from,
// and every DistanceOracle answer must equal a fresh graph::bfs_distances
// on randomized churned views across all six backends — whatever mix of
// probes, memoized frontiers and FIFO evictions served it. Plus the sweep
// byte-determinism contract with the oracle on the hot path.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "graph/bfs.h"
#include "graph/csr.h"
#include "sim/experiment.h"
#include "sim/oracle.h"
#include "sim/overlay.h"
#include "sim/scenario.h"
#include "sim/sinks.h"

using namespace dex;
using graph::NodeId;

// ----------------------------------------------------------------- CsrView

TEST(CsrView, MirrorsTheLiveAdjacencyAndDropsTheDead) {
  sim::LawSiuOverlay overlay(20, /*d=*/3, /*seed=*/4);
  overlay.remove(overlay.alive_nodes()[3]);
  overlay.remove(overlay.alive_nodes()[7]);
  const auto g = overlay.snapshot();
  const auto mask = overlay.alive_mask();
  graph::CsrView live;
  live.build(g, mask);
  EXPECT_EQ(live.node_count(), g.node_count());
  EXPECT_EQ(live.alive_count(), overlay.n());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    EXPECT_EQ(live.alive(u), static_cast<bool>(mask[u]));
    std::vector<NodeId> expect;
    if (mask[u]) {
      for (const NodeId v : g.ports(u)) {
        if (mask[v]) expect.push_back(v);  // port order preserved
      }
    }
    const auto got = live.neighbors(u);
    ASSERT_EQ(got.size(), expect.size()) << "node " << u;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin()));
  }
}

TEST(CsrView, BfsAndShortestPathMatchTheMultigraphReference) {
  sim::RandomFlipOverlay overlay(24, /*d=*/6, /*seed=*/9);
  overlay.remove(overlay.alive_nodes()[5]);
  const auto g = overlay.snapshot();
  const auto mask = overlay.alive_mask();
  graph::CsrView live;
  live.build(g, mask);
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> scratch;
  for (const NodeId src : overlay.alive_nodes()) {
    graph::csr_bfs_fill(live, src, dist, scratch);
    const auto ref = graph::bfs_distances(g, src, mask);
    for (const NodeId u : overlay.alive_nodes()) {
      EXPECT_EQ(dist[u], ref[u]) << src << " -> " << u;
      const auto path = graph::csr_shortest_path(live, src, u);
      if (ref[u] == graph::kUnreached) {
        EXPECT_TRUE(path.empty());
      } else {
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path.size() - 1, ref[u]);
      }
    }
  }
}

// ---------------------------------------------------------- DistanceOracle

TEST(DistanceOracle, MatchesBfsOnChurnedViewsAcrossAllSixBackends) {
  for (const auto& backend : sim::known_overlays()) {
    auto overlay = sim::make_overlay(backend, 40, /*seed=*/1234);
    ASSERT_NE(overlay, nullptr) << backend;
    auto strategy = sim::make_strategy("churn");
    support::Rng rng(77);
    sim::CachedView cache(*overlay);
    sim::DistanceOracle oracle;
    for (int step = 0; step < 50; ++step) {
      const auto action = strategy->next(cache.view(), rng, 20, 80);
      if (action.insert) {
        overlay->insert(action.target);
      } else {
        overlay->remove(action.target);
      }
      cache.invalidate();
      if (step % 5 != 0) continue;
      const auto& live = cache.view().live_csr();
      oracle.attach(live);
      const auto g = cache.view().snapshot();
      const auto mask = cache.view().alive_mask();
      const auto nodes = cache.view().alive_nodes();
      // Enough distinct roots to exercise probes, repeat-memoization and
      // FIFO eviction (> kMaxRoots of them), with repeats mixed in.
      for (int q = 0; q < 150; ++q) {
        const NodeId u = nodes[rng.below(nodes.size())];
        const NodeId v = q % 3 == 0 ? nodes[q % nodes.size()]
                                    : nodes[rng.below(nodes.size())];
        const auto ref = graph::bfs_distances(g, u, mask);
        EXPECT_EQ(oracle.distance(u, v), ref[v])
            << backend << " step " << step << ": " << u << " -> " << v;
      }
    }
  }
}

TEST(DistanceOracle, SharedFrontiersActuallyShare) {
  sim::FloodRebuildOverlay overlay(32);
  sim::CachedView cache(overlay);
  const auto& live = cache.view().live_csr();
  sim::DistanceOracle oracle;
  oracle.attach(live);
  const auto nodes = overlay.alive_nodes();
  const NodeId home = nodes[0];
  // Many origins against one home: one probe, then one full frontier —
  // every later query is a lookup.
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    (void)oracle.distance(nodes[i], home);
  }
  EXPECT_LE(oracle.bfs_runs(), 2u);
  // from() materializes the root directly and reuses it for reach().
  const auto before = oracle.bfs_runs();
  const auto& dist = oracle.from(home);
  EXPECT_EQ(dist[home], 0u);
  const auto reach = oracle.reach(home);
  EXPECT_EQ(reach.count, nodes.size());
  EXPECT_EQ(oracle.bfs_runs(), before);  // home was already a root
}

// ------------------------------------------------------- sweep determinism

TEST(OracleDeterminism, AllSixBackendsSweepBytesAreIdenticalAcrossJobs) {
  sim::ExperimentPlan plan;
  plan.backends = sim::known_overlays();
  plan.scenarios = {"churn"};
  plan.populations = {32};
  plan.batch_sizes = {3};
  plan.seeds = {6};
  plan.base.steps = 25;
  plan.base.traffic.workload = "zipf";
  plan.base.traffic.ops_per_step = 32;

  const auto run_sweep = [&plan](std::size_t jobs) {
    std::ostringstream csv, json;
    sim::CsvTraceSink csv_sink(csv);
    sim::JsonSummarySink json_sink(json);
    sim::ExecutorOptions opts;
    opts.jobs = jobs;
    sim::Executor executor(opts);
    executor.add_sink(csv_sink);
    executor.add_sink(json_sink);
    executor.run(plan.expand());
    return csv.str() + "\n---\n" + json.str();
  };
  const auto serial = run_sweep(1);
  EXPECT_EQ(serial, run_sweep(8));
  EXPECT_NE(serial.find("failed_writes"), std::string::npos);
}
