// Xheal-with-DEX-patches (src/xheal): arbitrary graphs stay connected under
// adversarial deletions, degree overhead stays bounded, patches are genuine
// expanders, and healing costs are local (O(neighborhood)).

#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/spectral.h"
#include "support/prng.h"
#include "xheal/xheal.h"

namespace g = dex::graph;
using dex::xheal::XhealNetwork;

TEST(Xheal, HealsStarCenterDeletion) {
  // Worst case for naive healing: delete the hub of a star.
  g::Multigraph star(9);
  for (g::NodeId u = 1; u < 9; ++u) star.add_edge(0, u);
  XhealNetwork net(std::move(star));
  net.remove(0);
  EXPECT_TRUE(g::is_connected(net.graph(), net.alive_mask()));
  // Patch degrees are constant-bounded.
  for (auto u : net.alive_nodes()) {
    EXPECT_LE(net.graph().degree(u), 9u);
  }
}

TEST(Xheal, PatchIsAnExpander) {
  // Delete the hub of a big star; the 40 orphans must form an expander.
  g::Multigraph star(41);
  for (g::NodeId u = 1; u < 41; ++u) star.add_edge(0, u);
  XhealNetwork net(std::move(star));
  net.remove(0);
  const auto spec = g::spectral_gap(net.graph(), net.alive_mask());
  EXPECT_GT(spec.gap, 0.02);  // the p-cycle family floor
}

TEST(Xheal, PathSurvivesMiddleDeletions) {
  XhealNetwork net(g::make_path(20));
  for (g::NodeId v : {10u, 5u, 15u, 11u, 9u}) {
    net.remove(v);
    EXPECT_TRUE(g::is_connected(net.graph(), net.alive_mask())) << v;
  }
}

TEST(Xheal, RandomChurnOnRandomGraph) {
  dex::support::Rng gen(3);
  XhealNetwork net(g::make_random_regular(64, 4, gen));
  dex::support::Rng rng(4);
  for (int t = 0; t < 150; ++t) {
    const auto nodes = net.alive_nodes();
    if (rng.chance(0.45) && net.n() > 8) {
      net.remove(nodes[rng.below(nodes.size())]);
    } else {
      // Attach to 2 random alive nodes.
      const auto a = nodes[rng.below(nodes.size())];
      const auto b = nodes[rng.below(nodes.size())];
      net.insert({a, b});
    }
    EXPECT_TRUE(g::is_connected(net.graph(), net.alive_mask()))
        << "step " << t;
  }
}

TEST(Xheal, DegreeOverheadStaysBounded) {
  dex::support::Rng gen(5);
  XhealNetwork net(g::make_random_regular(96, 4, gen));
  dex::support::Rng rng(6);
  for (int t = 0; t < 60; ++t) {
    const auto nodes = net.alive_nodes();
    net.remove(nodes[rng.below(nodes.size())]);
  }
  // Each healing adds ≤ 9 edges per orphan, and deletions also subtract;
  // the overhead must not accumulate linearly in the deletion count.
  EXPECT_LE(net.max_degree_overhead(), 30);
}

TEST(Xheal, HealingCostIsLocal) {
  dex::support::Rng gen(7);
  XhealNetwork net(g::make_random_regular(256, 6, gen));
  dex::support::Rng rng(8);
  for (int t = 0; t < 40; ++t) {
    const auto nodes = net.alive_nodes();
    net.remove(nodes[rng.below(nodes.size())]);
    // O(neighborhood) messages, O(1) rounds — never Θ(n).
    EXPECT_LT(net.last_step().messages, 128u);
    EXPECT_LE(net.last_step().rounds, 4u);
  }
}

TEST(Xheal, InsertAddsRequestedEdges) {
  XhealNetwork net(g::make_cycle(6));
  const auto u = net.insert({0, 3});
  EXPECT_TRUE(net.alive(u));
  EXPECT_TRUE(net.graph().has_edge(u, 0));
  EXPECT_TRUE(net.graph().has_edge(u, 3));
  EXPECT_EQ(net.last_step().topology_changes, 2u);
}

TEST(Xheal, DeletingEveryOriginalNodeStillConnected) {
  // Adversary wipes the entire founding population.
  XhealNetwork net(g::make_cycle(12));
  dex::support::Rng rng(9);
  for (int i = 0; i < 12; ++i) {
    const auto nodes = net.alive_nodes();
    net.insert({nodes[rng.below(nodes.size())],
                nodes[rng.below(nodes.size())]});
  }
  for (g::NodeId v = 0; v < 12; ++v) {
    net.remove(v);
    ASSERT_TRUE(g::is_connected(net.graph(), net.alive_mask())) << v;
  }
  EXPECT_EQ(net.n(), 12u);
}
