#!/usr/bin/env bash
# CLI input validation: every malformed invocation must exit 2 with a
# single-line diagnostic on stderr and produce no simulation output on
# stdout — a typo'd sweep should die before it burns an hour, and exit
# codes must be scriptable (0 ok / 2 usage). Run with the CLI binary as
# $1 (CMake passes $<TARGET_FILE:dex_sim_cli>).
set -u

cli="${1:?usage: test_cli_validation.sh <path-to-dex_sim_cli>}"
failures=0

# expect_reject <fragment-expected-in-stderr> <flag...>
# Asserts: exit code 2, exactly one stderr line, fragment present, empty
# stdout.
expect_reject() {
  local fragment="$1"
  shift
  local out err status
  out="$("$cli" "$@" 2>/tmp/cli_validation_err)"
  status=$?
  err="$(cat /tmp/cli_validation_err)"
  if [[ $status -ne 2 ]]; then
    echo "FAIL [$*]: expected exit 2, got $status"
    failures=$((failures + 1))
    return
  fi
  if [[ -n "$out" ]]; then
    echo "FAIL [$*]: rejected run still wrote to stdout: $out"
    failures=$((failures + 1))
    return
  fi
  if [[ "$(wc -l </tmp/cli_validation_err)" -ne 1 ]]; then
    echo "FAIL [$*]: expected a one-line diagnostic, got:"
    echo "$err"
    failures=$((failures + 1))
    return
  fi
  if [[ "$err" != *"$fragment"* ]]; then
    echo "FAIL [$*]: stderr missing '$fragment', got: $err"
    failures=$((failures + 1))
    return
  fi
  echo "ok   [$*] -> $err"
}

base=(--backend lawsiu --scenario churn --n0 32 --steps 5)

# Malformed --latency specs: reversed uniform bounds, negative mean,
# unknown distribution, missing parameter.
expect_reject "--latency must be" "${base[@]}" --engine event --latency uniform:4,1
expect_reject "--latency must be" "${base[@]}" --engine event --latency exp:-1
expect_reject "--latency must be" "${base[@]}" --engine event --latency bogus:3
expect_reject "--latency must be" "${base[@]}" --engine event --latency fixed:

# Unknown enum values.
expect_reject "--engine must be" "${base[@]}" --engine turbo
expect_reject "unknown backend" --backend nosuch --scenario churn --n0 32 --steps 5

# Serve-flag gating: knobs without --serve, --serve without its
# prerequisites, and out-of-range serve values.
expect_reject "need --serve" "${base[@]}" --clients 4
expect_reject "need --serve" "${base[@]}" --queue-depth 8
expect_reject "needs --engine event" "${base[@]}" --serve
expect_reject "needs --engine event" "${base[@]}" --engine event --serve
expect_reject "serve spec out of range" \
  "${base[@]}" --engine event --workload uniform --serve --clients 0
expect_reject "serve spec out of range" \
  "${base[@]}" --engine event --workload uniform --serve --shards 0

# Malformed --campaign specs surface the parser's actionable one-liner
# (phase index, offending token, valid alternatives), and a campaign next
# to a --scenario axis is contradictory.
nosc=(--backend lawsiu --n0 32 --steps 5)
expect_reject "replaces --scenario" "${base[@]}" --campaign "churn:0-"
expect_reject "unknown strategy 'bogus'" "${nosc[@]}" --campaign "bogus:0-"
expect_reject "bad range" "${nosc[@]}" --campaign "churn:9-3"
expect_reject "rate must be" "${nosc[@]}" --campaign "churn:0-,rate=2"
expect_reject "open-ended" "${nosc[@]}" --campaign "churn;burst"
expect_reject "bad --campaign" "${nosc[@]}" --campaign "mix(churn:0-"

# Positive control: a well-formed campaign run must succeed.
if ! "$cli" "${nosc[@]}" --campaign "churn:0-2;burst:2-" \
    --no-trace --json /dev/null >/dev/null 2>&1; then
  echo "FAIL: well-formed campaign invocation did not exit 0"
  failures=$((failures + 1))
else
  echo "ok   [control] well-formed campaign run exits 0"
fi

# Positive control: the same base invocation, well-formed, must succeed —
# otherwise the rejections above prove nothing.
if ! "$cli" "${base[@]}" --engine event --workload uniform --serve \
    --clients 2 --no-trace --json /dev/null >/dev/null 2>&1; then
  echo "FAIL: well-formed control invocation did not exit 0"
  failures=$((failures + 1))
else
  echo "ok   [control] well-formed serve run exits 0"
fi

rm -f /tmp/cli_validation_err
if [[ $failures -ne 0 ]]; then
  echo "$failures validation check(s) failed"
  exit 1
fi
echo "all CLI validation checks passed"
