// Structural tests of the p-cycle expander family (Definition 1): exact
// 3-regularity (self-loops at 0, 1, p−1), inverse-chord symmetry,
// connectivity, logarithmic diameter, and a directly computed spectral gap
// bounded away from zero across the family — the property everything else
// rests on.

#include <gtest/gtest.h>

#include "dex/pcycle.h"
#include "graph/bfs.h"
#include "graph/multigraph.h"
#include "graph/spectral.h"
#include "support/mathutil.h"

using dex::PCycle;
using dex::Vertex;

namespace {

dex::graph::Multigraph materialize(const PCycle& c) {
  dex::graph::Multigraph g(c.p());
  c.for_each_edge([&](Vertex x, Vertex y) {
    g.add_edge(static_cast<dex::graph::NodeId>(x),
               static_cast<dex::graph::NodeId>(y));
  });
  return g;
}

}  // namespace

TEST(PCycle, PortsOfSmallCycle) {
  const PCycle c(23);
  // Vertex 0: succ 1, pred 22, self-loop.
  auto p0 = c.ports(0);
  EXPECT_EQ(p0[0], 1u);
  EXPECT_EQ(p0[1], 22u);
  EXPECT_EQ(p0[2], 0u);
  // Vertex 1: inverse of 1 is 1 (self-loop).
  EXPECT_EQ(c.inv(1), 1u);
  // Vertex 22 = -1 mod 23: its own inverse.
  EXPECT_EQ(c.inv(22), 22u);
  // 2 * 12 = 24 = 1 mod 23.
  EXPECT_EQ(c.inv(2), 12u);
  EXPECT_EQ(c.inv(12), 2u);
}

TEST(PCycle, InverseIsInvolution) {
  for (std::uint64_t p : {5ULL, 23ULL, 101ULL, 1009ULL}) {
    const PCycle c(p);
    for (Vertex x = 1; x < p; ++x) {
      EXPECT_EQ(c.inv(c.inv(x)), x) << "p=" << p << " x=" << x;
    }
  }
}

TEST(PCycle, Exactly3Regular) {
  for (std::uint64_t p : {5ULL, 23ULL, 101ULL, 997ULL}) {
    const auto g = materialize(PCycle(p));
    for (dex::graph::NodeId u = 0; u < p; ++u) {
      EXPECT_EQ(g.degree(u), 3u) << "p=" << p << " v=" << u;
    }
  }
}

TEST(PCycle, SelfLoopsExactlyAt01AndPMinus1) {
  for (std::uint64_t p : {5ULL, 23ULL, 101ULL}) {
    const auto g = materialize(PCycle(p));
    for (dex::graph::NodeId u = 0; u < p; ++u) {
      const bool expect_loop = (u == 0 || u == 1 || u == p - 1);
      EXPECT_EQ(g.multiplicity(u, u) > 0, expect_loop) << "p=" << p << " " << u;
    }
  }
}

TEST(PCycle, EdgeCountMatchesHandshake) {
  for (std::uint64_t p : {23ULL, 101ULL, 499ULL}) {
    const auto g = materialize(PCycle(p));
    // 3-regular with self-loops counting 1 => total degree = 3p.
    EXPECT_EQ(g.total_degree(), 3 * p);
    EXPECT_TRUE(g.is_consistent());
  }
}

TEST(PCycle, Connected) {
  for (std::uint64_t p : {5ULL, 23ULL, 101ULL, 1009ULL}) {
    EXPECT_TRUE(dex::graph::is_connected(materialize(PCycle(p))));
  }
}

TEST(PCycle, DiameterIsLogarithmic) {
  // Diameter should grow like O(log p): generous absolute bounds.
  const PCycle small(101);
  const auto ecc = dex::graph::eccentricity(materialize(small), 0);
  EXPECT_LE(ecc, 14u);
  const PCycle big(1009);
  const auto ecc2 = dex::graph::eccentricity(materialize(big), 0);
  EXPECT_LE(ecc2, 22u);
  EXPECT_GE(ecc2, 5u);  // and it is not trivially small
}

TEST(PCycle, DistanceAgreesWithBfs) {
  const PCycle c(101);
  const auto g = materialize(c);
  const auto dist = dex::graph::bfs_distances(g, 0);
  for (Vertex x = 0; x < 101; x += 7) {
    EXPECT_EQ(c.distance(0, x), dist[x]) << x;
    EXPECT_EQ(c.distance(x, 0), dist[x]) << x;  // symmetric
    EXPECT_EQ(c.distance_to_zero(x), dist[x]) << x;
  }
}

TEST(PCycle, ShortestPathIsValidAndShortest) {
  const PCycle c(499);
  for (Vertex x : {1ULL, 37ULL, 250ULL, 498ULL}) {
    for (Vertex y : {0ULL, 42ULL, 313ULL}) {
      const auto path = c.shortest_path(x, y);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), x);
      EXPECT_EQ(path.back(), y);
      EXPECT_EQ(path.size(), c.distance(x, y) + 1);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto ports = c.ports(path[i]);
        EXPECT_TRUE(ports[0] == path[i + 1] || ports[1] == path[i + 1] ||
                    ports[2] == path[i + 1])
            << "hop " << i;
      }
    }
  }
}

TEST(PCycle, PathToZeroMatchesDistance) {
  const PCycle c(1009);
  for (Vertex x = 1; x < 1009; x += 97) {
    const auto path = c.path_to_zero(x);
    EXPECT_EQ(path.front(), x);
    EXPECT_EQ(path.back(), 0u);
    EXPECT_EQ(path.size(), c.distance_to_zero(x) + 1);
  }
}

// The family property (Definition 4): a constant spectral gap across sizes.
// Lubotzky's x -> {x±1, x^{-1}} graphs are expanders with a small but
// *size-independent* gap; measured values settle around 0.025 and stay flat
// from p ≈ 1000 onwards (0.0254 at p=1009, 0.0266 at p=4099).
TEST(PCycle, SpectralGapBoundedAcrossFamily) {
  double prev_gap = 1.0;
  for (std::uint64_t p : {23ULL, 101ULL, 499ULL, 1009ULL, 4099ULL}) {
    const auto g = materialize(PCycle(p));
    const auto spec = dex::graph::spectral_gap(g);
    EXPECT_TRUE(spec.converged) << p;
    EXPECT_GT(spec.gap, 0.02) << "p=" << p << " gap=" << spec.gap;
    EXPECT_LT(spec.lambda2, 1.0) << p;
    prev_gap = spec.gap;
  }
  // Not collapsing with size: the largest instance keeps a constant gap.
  EXPECT_GT(prev_gap, 0.02);
}

TEST(PCycle, RejectsNonPrime) {
  EXPECT_DEATH(PCycle(24), "prime");
}
