// Amortized (simplified) type-2 recovery — Algorithms 4.5/4.6, Lemma 5,
#include <algorithm>
// Lemma 8, Corollary 1: single-step whole-graph rebuilds triggered from
// type-1 walk failures, their cost profile (Θ(n) at the rebuild step, Ω(n)
// quiet steps in between), and post-rebuild balance.

#include <gtest/gtest.h>

#include "dex/network.h"
#include "graph/bfs.h"
#include "support/prng.h"

using dex::DexNetwork;
using dex::Params;

namespace {

Params amortized(std::uint64_t seed) {
  Params p;
  p.seed = seed;
  p.mode = dex::RecoveryMode::Amortized;
  return p;
}

}  // namespace

TEST(Type2Amortized, InsertOnlyEventuallyInflates) {
  DexNetwork net(16, amortized(41));
  dex::support::Rng rng(1);
  std::size_t steps = 0;
  while (net.inflation_count() == 0 && steps++ < 5000) {
    const auto nodes = net.alive_nodes();
    net.insert(nodes[rng.below(nodes.size())]);
    net.check_invariants();
  }
  ASSERT_GE(net.inflation_count(), 1u);
  // Post-inflation: p in (4p_old, 8p_old) relative to trigger population;
  // mapping rebalanced to <= 4ζ.
  for (auto u : net.alive_nodes()) {
    EXPECT_LE(net.mapping().load(u), net.params().max_load());
    EXPECT_GE(net.mapping().load(u), 1u);
  }
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(Type2Amortized, DeleteOnlyEventuallyDeflates) {
  DexNetwork net(16, amortized(42));
  dex::support::Rng rng(2);
  // Grow well past one inflation so deletions have room.
  while (net.inflation_count() < 1) {
    const auto nodes = net.alive_nodes();
    net.insert(nodes[rng.below(nodes.size())]);
  }
  std::size_t steps = 0;
  while (net.deflation_count() == 0 && steps++ < 8000 && net.n() > 4) {
    const auto nodes = net.alive_nodes();
    net.remove(nodes[rng.below(nodes.size())]);
    net.check_invariants();
  }
  ASSERT_GE(net.deflation_count(), 1u);
  for (auto u : net.alive_nodes()) {
    EXPECT_LE(net.mapping().load(u), net.params().max_load());
    EXPECT_GE(net.mapping().load(u), 1u);
  }
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(Type2Amortized, RebuildStepIsThetaNAndQuietStepsAreNot) {
  DexNetwork net(16, amortized(43));
  dex::support::Rng rng(3);
  std::uint64_t rebuild_messages = 0;
  std::vector<std::uint64_t> quiet;
  for (std::size_t t = 0; t < 3000 && rebuild_messages == 0; ++t) {
    const auto nodes = net.alive_nodes();
    net.insert(nodes[rng.below(nodes.size())]);
    if (net.last_report().type2_event) {
      rebuild_messages = net.last_report().cost.messages;
    } else {
      quiet.push_back(net.last_report().cost.messages);
    }
  }
  ASSERT_GT(rebuild_messages, 0u);
  // The rebuild floods + rewires: messages scale with p ~ n. Typical quiet
  // steps are two orders of magnitude cheaper (a few near the trigger pay
  // for exploratory floods, so compare against the median, not the max).
  std::sort(quiet.begin(), quiet.end());
  const std::uint64_t quiet_median = quiet[quiet.size() / 2];
  EXPECT_GT(rebuild_messages, 20 * quiet_median);
  EXPECT_GT(rebuild_messages, net.n());
}

TEST(Type2Amortized, Lemma8RebuildsAreWellSeparated) {
  DexNetwork net(16, amortized(44));
  dex::support::Rng rng(4);
  std::vector<std::size_t> rebuild_steps;
  std::vector<std::size_t> n_at_rebuild;
  for (std::size_t t = 0; t < 15000 && rebuild_steps.size() < 3; ++t) {
    const auto nodes = net.alive_nodes();
    net.insert(nodes[rng.below(nodes.size())]);
    if (net.last_report().type2_event) {
      rebuild_steps.push_back(t);
      n_at_rebuild.push_back(net.n());
    }
  }
  ASSERT_GE(rebuild_steps.size(), 2u);
  for (std::size_t i = 1; i < rebuild_steps.size(); ++i) {
    const std::size_t separation = rebuild_steps[i] - rebuild_steps[i - 1];
    // Lemma 8: at least δn type-1 steps between rebuilds; insert-only churn
    // must in fact re-fill the whole new cycle, i.e. ~3n steps.
    EXPECT_GE(separation, n_at_rebuild[i - 1])
        << "rebuilds " << i - 1 << " and " << i << " too close";
  }
}

TEST(Type2Amortized, OscillatingChurnDoesNotThrash) {
  DexNetwork net(24, amortized(45));
  dex::support::Rng rng(5);
  // Oscillate n within a narrow band: thresholds must not retrigger.
  for (std::size_t round = 0; round < 40; ++round) {
    for (int i = 0; i < 8; ++i) {
      const auto nodes = net.alive_nodes();
      net.insert(nodes[rng.below(nodes.size())]);
    }
    for (int i = 0; i < 8; ++i) {
      const auto nodes = net.alive_nodes();
      net.remove(nodes[rng.below(nodes.size())]);
    }
  }
  net.check_invariants();
  // A band of ±8 around n=24 crosses no threshold: no rebuilds at all.
  EXPECT_EQ(net.inflation_count() + net.deflation_count(), 0u);
}

TEST(Type2Amortized, ManualInflateKeepsBalance) {
  DexNetwork net(20, amortized(46));
  const auto p_before = net.p();
  net.force_simplified_inflate();
  EXPECT_GT(net.p(), 4 * p_before);
  EXPECT_LT(net.p(), 8 * p_before);
  net.check_invariants();
  for (auto u : net.alive_nodes()) {
    EXPECT_GE(net.mapping().load(u), 1u);
    EXPECT_LE(net.mapping().load(u), net.params().max_load());
  }
}

TEST(Type2Amortized, ManualDeflateKeepsBalance) {
  DexNetwork net(20, amortized(47));
  net.force_simplified_inflate();  // grow p so deflation is legal
  const auto p_before = net.p();
  net.force_simplified_deflate();
  EXPECT_GT(net.p(), p_before / 8);
  EXPECT_LT(net.p(), p_before / 4);
  net.check_invariants();
  for (auto u : net.alive_nodes()) {
    EXPECT_GE(net.mapping().load(u), 1u);
    EXPECT_LE(net.mapping().load(u), net.params().max_load());
  }
}

TEST(Type2Amortized, BackToBackManualRebuilds) {
  DexNetwork net(20, amortized(48));
  for (int i = 0; i < 2; ++i) {
    net.force_simplified_inflate();
    net.check_invariants();
    ASSERT_GT(net.p(), 8 * net.n());  // deflation precondition
    net.force_simplified_deflate();
    net.check_invariants();
  }
  EXPECT_TRUE(dex::graph::is_connected(net.snapshot(), net.alive_mask()));
}

TEST(Type2Amortized, DeflateBelowCoverageAborts) {
  // Shrinking the cycle below the population would break surjectivity; the
  // guard must refuse (the paper's trigger precondition p > 8n).
  DexNetwork net(20, amortized(50));
  // p0 ∈ (80,160): p ≤ 8n, so deflation is illegal right away.
  EXPECT_DEATH(net.force_simplified_deflate(), "deflation requires");
}

TEST(Type2Amortized, EpochAdvancesPerRebuild) {
  DexNetwork net(20, amortized(49));
  const auto e0 = net.cycle_epoch();
  net.force_simplified_inflate();
  EXPECT_EQ(net.cycle_epoch(), e0 + 1);
  net.force_simplified_deflate();
  EXPECT_EQ(net.cycle_epoch(), e0 + 2);
}
