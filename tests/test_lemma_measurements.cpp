// Quantitative lemma measurements: the statements the paper proves
// asymptotically, checked as measured frequencies/distributions —
// Lemma 2's walk success probability, the walk mixing behind it (Gillman's
// concentration), Fact 1 (contraction does not increase distances), and
// Claim 4.3's post-rebuild set sizes.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "dex/network.h"
#include "graph/bfs.h"
#include "support/prng.h"

using dex::DexNetwork;
using dex::Params;

// Lemma 2(a): with |Spare| >= θn, a Θ(log n)-walk finds a Spare node w.h.p.
// Measure the empirical success rate of raw (no-retry) walks.
TEST(LemmaMeasurements, Lemma2WalkSuccessRate) {
  Params prm;
  prm.seed = 301;
  DexNetwork net(256, prm);  // fresh network: every node is in Spare
  auto& rng = net.rng();
  const std::uint64_t len = 4 * 8;  // ~4 log2(256)
  std::size_t hits = 0;
  const std::size_t kTrials = 500;
  std::vector<std::uint64_t> ports;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    dex::NodeId cur = static_cast<dex::NodeId>(rng.below(256));
    bool found = net.mapping().in_spare(cur);
    for (std::uint64_t s = 0; s < len && !found; ++s) {
      net.ports_of(cur, ports);
      cur = static_cast<dex::NodeId>(ports[rng.below(ports.size())]);
      found = net.mapping().in_spare(cur);
    }
    if (found) ++hits;
  }
  // With Spare = everyone, success must be certain; this calibrates the
  // harness itself.
  EXPECT_EQ(hits, kTrials);
}

// The interesting regime: drain Spare to a small fraction and check the
// walk still succeeds at a rate consistent with Lemma 2 (w.h.p., so >> the
// θ fraction itself).
TEST(LemmaMeasurements, Lemma2SuccessWithScarceSpare) {
  Params prm;
  prm.seed = 302;
  prm.mode = dex::RecoveryMode::WorstCase;
  prm.theta = 1.0 / 545.0;  // paper constant: no rebuilds interfere
  DexNetwork net(64, prm);
  auto& rng = net.rng();
  // Insert until Spare is scarce (most loads drained to 1).
  while (net.mapping().spare_count() >
         std::max<std::uint64_t>(net.n() / 8, 2)) {
    net.insert(net.alive_nodes()[rng.below(net.n())]);
  }
  const double spare_frac = static_cast<double>(net.mapping().spare_count()) /
                            static_cast<double>(net.n());
  const std::uint64_t len =
      dex::support::scaled_log(4.0, net.n());
  std::size_t hits = 0;
  const std::size_t kTrials = 400;
  std::vector<std::uint64_t> ports;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    dex::NodeId cur = net.alive_nodes()[rng.below(net.n())];
    bool found = net.mapping().in_spare(cur);
    for (std::uint64_t s = 0; s < len && !found; ++s) {
      net.ports_of(cur, ports);
      cur = static_cast<dex::NodeId>(ports[rng.below(ports.size())]);
      found = net.mapping().in_spare(cur);
    }
    if (found) ++hits;
  }
  const double rate = static_cast<double>(hits) / kTrials;
  // A Θ(log n) walk on an expander visits Ω(log n) near-fresh nodes; with a
  // ~12% target set the success rate should be far above the single-sample
  // probability and well above 1/2.
  EXPECT_GT(rate, 0.80) << "spare fraction was " << spare_frac;
}

// Gillman-style mixing: the endpoint distribution of a Θ(log n) walk is
// close to the degree-proportional stationary distribution.
TEST(LemmaMeasurements, WalkEndpointDistributionMixes) {
  Params prm;
  prm.seed = 303;
  DexNetwork net(64, prm);
  auto& rng = net.rng();
  const auto g = net.snapshot();
  std::uint64_t degree_sum = 0;
  for (auto u : net.alive_nodes()) degree_sum += g.degree(u);

  const std::uint64_t len = dex::support::scaled_log(4.0, 64);
  std::map<dex::NodeId, std::size_t> counts;
  const std::size_t kTrials = 20000;
  std::vector<std::uint64_t> ports;
  for (std::size_t t = 0; t < kTrials; ++t) {
    dex::NodeId cur = 0;  // fixed start: worst case for mixing
    for (std::uint64_t s = 0; s < len; ++s) {
      net.ports_of(cur, ports);
      cur = static_cast<dex::NodeId>(ports[rng.below(ports.size())]);
    }
    ++counts[cur];
  }
  double tv = 0;
  for (auto u : net.alive_nodes()) {
    const double pi = static_cast<double>(g.degree(u)) /
                      static_cast<double>(degree_sum);
    const double freq =
        static_cast<double>(counts[u]) / static_cast<double>(kTrials);
    tv += std::abs(pi - freq);
  }
  tv /= 2;
  EXPECT_LT(tv, 0.10) << "walk endpoint distribution far from stationary";
}

// Fact 1: the virtual mapping is a metric map — real-network distances
// never exceed virtual distances.
TEST(LemmaMeasurements, Fact1ContractionShrinksDistances) {
  Params prm;
  prm.seed = 304;
  DexNetwork net(32, prm);
  const auto g = net.snapshot();
  const auto mask = net.alive_mask();
  dex::support::Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    const dex::Vertex a = rng.below(net.p());
    const dex::Vertex b = rng.below(net.p());
    const auto real_dist = dex::graph::bfs_distances(
        g, net.mapping().owner(a), mask)[net.mapping().owner(b)];
    EXPECT_LE(real_dist, net.cycle().distance(a, b))
        << "virtual " << a << "->" << b;
  }
}

// Claim 4.3 (post-inflation): right after a type-2 inflation, Low contains
// (almost) everyone — at least (θ + 1/2)·n.
TEST(LemmaMeasurements, Claim43LowIsLargeAfterInflation) {
  Params prm;
  prm.seed = 305;
  prm.mode = dex::RecoveryMode::Amortized;
  DexNetwork net(32, prm);
  dex::support::Rng rng(2);
  while (net.inflation_count() == 0) {
    net.insert(net.alive_nodes()[rng.below(net.n())]);
  }
  const double frac = static_cast<double>(net.mapping().low_count()) /
                      static_cast<double>(net.n());
  EXPECT_GT(frac, prm.theta + 0.5);
}

// Claim 4.3 (post-deflation): right after a deflation, Spare has at least
// (θ + 1/(4ζ))·n nodes.
TEST(LemmaMeasurements, Claim43SpareIsLargeAfterDeflation) {
  Params prm;
  prm.seed = 306;
  prm.mode = dex::RecoveryMode::Amortized;
  DexNetwork net(32, prm);
  dex::support::Rng rng(3);
  while (net.inflation_count() == 0) {
    net.insert(net.alive_nodes()[rng.below(net.n())]);
  }
  while (net.deflation_count() == 0 && net.n() > 4) {
    net.remove(net.alive_nodes()[rng.below(net.n())]);
  }
  ASSERT_GE(net.deflation_count(), 1u);
  const double frac = static_cast<double>(net.mapping().spare_count()) /
                      static_cast<double>(net.n());
  EXPECT_GT(frac, prm.theta + 1.0 / (4.0 * 8.0));
}
