// Multigraph substrate: port-list symmetry, multiplicity, self-loop
// conventions (loop = 1 port), and mutation operations.

#include <gtest/gtest.h>

#include "graph/multigraph.h"

using dex::graph::Multigraph;
using dex::graph::NodeId;

TEST(Multigraph, EmptyGraph) {
  Multigraph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.total_degree(), 0u);
  EXPECT_TRUE(g.is_consistent());
}

TEST(Multigraph, AddNodesAndEdges) {
  Multigraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_TRUE(g.is_consistent());
}

TEST(Multigraph, ParallelEdges) {
  Multigraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.multiplicity(0, 1), 3u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_TRUE(g.is_consistent());
}

TEST(Multigraph, SelfLoopCountsOnePort) {
  Multigraph g(1);
  g.add_edge(0, 0);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.multiplicity(0, 0), 1u);
  g.add_edge(0, 0);
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Multigraph, RemoveEdgeOneCopy) {
  Multigraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_EQ(g.multiplicity(0, 1), 1u);
  EXPECT_TRUE(g.remove_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_TRUE(g.is_consistent());
}

TEST(Multigraph, RemoveSelfLoop) {
  Multigraph g(1);
  g.add_edge(0, 0);
  EXPECT_TRUE(g.remove_edge(0, 0));
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(Multigraph, IsolateNode) {
  Multigraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 2);
  g.isolate(0);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.degree(1), 1u);  // only the 1-2 edge remains
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_TRUE(g.is_consistent());
}

TEST(Multigraph, AddNodeGrows) {
  Multigraph g(1);
  const NodeId u = g.add_node();
  EXPECT_EQ(u, 1u);
  g.add_edge(0, u);
  EXPECT_EQ(g.degree(u), 1u);
}

TEST(Multigraph, PortsSpanReflectsEdges) {
  Multigraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  auto ports = g.ports(0);
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports[0], 1u);
  EXPECT_EQ(ports[1], 2u);
}
