// The incremental live-view contract (graph/csr.h + sim/overlay.h): a
// CsrView maintained purely by draining each overlay's delta journal and
// patching (apply_delta) must stay semantically equal to a from-scratch
// rebuild after every churn step, on every backend, under randomized batch
// churn. This is the property DEX_CHECK_CSR=1 spot-checks in real runs,
// pinned here as a test so the patcher can't rot. A second suite pins the
// intra-trial parallelism contract: --trial-jobs is a wall-clock knob only,
// traces and summaries are byte-identical for every thread count.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "sim/overlay.h"
#include "sim/scenario.h"
#include "support/prng.h"

namespace {

using dex::graph::CsrView;
using dex::graph::NodeId;
using dex::graph::ViewDelta;

/// Random ChurnBatch over the overlay's current population: up to 2
/// victims and up to 2 insertions per step, bounds-guarded so the overlay
/// never shrinks below a safe floor or grows without bound.
dex::sim::ChurnBatch random_batch(const dex::sim::HealingOverlay& overlay,
                                  dex::support::Rng& rng) {
  dex::sim::ChurnBatch batch;
  const auto alive = overlay.alive_nodes();
  const std::size_t kills =
      overlay.n() > 24 ? 1 + rng.below(2) : 0;
  for (std::size_t i = 0; i < kills; ++i) {
    const NodeId v = alive[rng.below(alive.size())];
    bool dup = false;
    for (NodeId w : batch.victims) dup = dup || (w == v);
    if (!dup) batch.victims.push_back(v);
  }
  if (overlay.n() < 96) {
    const std::size_t births = rng.below(3);
    for (std::size_t i = 0; i < births; ++i) {
      const NodeId a = alive[rng.below(alive.size())];
      bool victim = false;
      for (NodeId w : batch.victims) victim = victim || (w == a);
      if (!victim) batch.attach_to.push_back(a);
    }
  }
  return batch;
}

/// True when the overlay's live-ports surface is currently available
/// (per-call capability: DEX withdraws it during staggered windows).
bool live_available(const dex::sim::HealingOverlay& overlay,
                    std::vector<NodeId>& buf) {
  const auto alive = overlay.alive_nodes();
  return !alive.empty() && overlay.live_ports(alive.front(), buf);
}

class IncrementalCsr : public ::testing::TestWithParam<std::string> {};

// The tentpole property: drain + patch == rebuild, after every one of a
// few hundred randomized batch steps. The maintenance loop below is the
// same decision procedure sim::CachedView::advance runs (patch only a
// ports-canonical view with a precise delta; anything else rebuilds), so a
// divergence here is a journal hole or a patcher bug, not test drift.
TEST_P(IncrementalCsr, PatchedViewMatchesRebuildUnderRandomChurn) {
  const std::string backend = GetParam();
  auto overlay = dex::sim::make_overlay(backend, 48, /*seed=*/7);
  ASSERT_NE(overlay, nullptr);
  dex::support::Rng rng(0xC5Full);

  std::vector<NodeId> probe;
  CsrView view;
  bool valid = false;
  bool canonical = false;  // rows in live_ports order (patchable)?
  const CsrView::PortsFn ports = [&](NodeId u, std::vector<NodeId>& out) {
    ASSERT_TRUE(overlay->live_ports(u, out))
        << "live_ports withdrawn while a canonical view depends on it";
  };

  ViewDelta delta;
  std::size_t patched_steps = 0;
  bool journaled = false;
  for (int t = 0; t < 240; ++t) {
    overlay->apply(random_batch(*overlay, rng));

    delta.clear();
    const bool drained = overlay->drain_view_delta(delta);
    journaled = journaled || drained;
    const bool live = live_available(*overlay, probe);
    if (drained && !delta.full && valid && canonical && live) {
      if (!delta.empty()) view.apply_delta(delta, ports);
      ++patched_steps;
    } else if (live) {
      view.build_from_ports(overlay->alive_mask(), ports);
      valid = true;
      canonical = true;
    } else {
      view.build(overlay->snapshot(), overlay->alive_mask());
      valid = true;
      canonical = false;
    }

    CsrView ref;
    if (canonical) {
      ref.build_from_ports(overlay->alive_mask(), ports);
    } else {
      ref.build(overlay->snapshot(), overlay->alive_mask());
    }
    ASSERT_TRUE(view.equal_to(ref))
        << backend << " diverged from a fresh rebuild at step " << t;
  }

  if (backend == "flood") {
    // Flooding rebuilds wholesale every event; it keeps no journal and the
    // runner takes the rebuild path for it by design.
    EXPECT_FALSE(journaled);
  } else {
    // Every journaled backend must actually exercise the patch path —
    // otherwise this test silently degrades to rebuild-vs-rebuild.
    EXPECT_TRUE(journaled);
    EXPECT_GT(patched_steps, 60u) << backend;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, IncrementalCsr,
                         ::testing::ValuesIn(dex::sim::known_overlays()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

namespace {

/// One full traffic-over-batch-churn trial with the given intra-trial
/// thread count; returns the emitted trace + summary bytes.
std::string run_trial(unsigned intra_jobs) {
  auto overlay = dex::sim::make_overlay("dex-amortized", 64, 1);
  overlay->set_intra_jobs(intra_jobs);
  auto strategy = dex::sim::make_strategy("churn");
  dex::sim::ScenarioSpec spec;
  spec.seed = 3;
  spec.steps = 50;
  spec.batch_size = 6;  // multi-event batches: the parallel-walk path
  spec.traffic.workload = "zipf";
  spec.traffic.ops_per_step = 16;
  spec.traffic.keyspace = 512;
  dex::sim::ScenarioRunner runner(*overlay, *strategy, spec);
  const auto res = runner.run();
  // The parallel-walk recovery must actually run for the jobs knob to be
  // exercised (walk epochs only tick on that path).
  EXPECT_GT(res.total_walk_epochs, 0u);
  return dex::sim::trace_csv(res) + dex::sim::summary_json(res);
}

}  // namespace

// The determinism contract behind --trial-jobs: sharded walk-port
// enumeration must not change a single emitted byte.
TEST(TrialJobs, ByteIdenticalAcrossThreadCounts) {
  const std::string one = run_trial(1);
  EXPECT_EQ(one, run_trial(4));
  EXPECT_EQ(one, run_trial(13));
}

}  // namespace
